"""Fault-injection study: a small Table-3-style campaign on one app.

Runs paired LetGo-B / LetGo-E campaigns (identical fault populations) on
the PENNANT proxy, prints the outcome breakdown, the Eq. 1-4 metrics with
95% confidence intervals, and the Table-4 parameters the campaign yields
for the checkpoint/restart simulation.

Run:  python examples/fault_injection_study.py [n_injections]
"""

import sys

from repro.apps import make_app
from repro.core import LETGO_B, LETGO_E
from repro.faultinject import run_paired_campaigns
from repro.reporting import ascii_table, pct, pct_ci


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    app = make_app("pennant")
    print(f"profiling {app.name}: {app.golden.instret:,} dynamic instructions")
    print(f"running 2 x {n} paired injections (single bit flips)...\n")

    campaigns = run_paired_campaigns(
        app, n, seed=7, configs=[LETGO_B, LETGO_E]
    )

    rows = []
    for name, campaign in campaigns.items():
        row = campaign.table3_row()
        rows.append(
            [name]
            + [
                pct(row[c])
                for c in (
                    "detected",
                    "benign",
                    "sdc",
                    "double_crash",
                    "c_detected",
                    "c_benign",
                    "c_sdc",
                )
            ]
        )
    print(
        ascii_table(
            ["Config", "Detected", "Benign", "SDC", "DblCrash",
             "C-Detected", "C-Benign", "C-SDC"],
            rows,
            title=f"Outcome breakdown ({app.name}, n={n} per config)",
        )
    )

    print()
    metric_rows = []
    for name, campaign in campaigns.items():
        m = campaign.metrics()
        metric_rows.append(
            [
                name,
                pct_ci(m.continuability.value, m.continuability.half_width),
                pct_ci(m.continued_correct.value, m.continued_correct.half_width),
                pct_ci(m.continued_detected.value, m.continued_detected.half_width),
                pct_ci(m.continued_sdc.value, m.continued_sdc.half_width),
            ]
        )
    print(
        ascii_table(
            ["Config", "Continuability", "Correct", "Detected", "SDC"],
            metric_rows,
            title="Eq. 1-4 metrics (fractions of crash-origin runs)",
        )
    )

    e = campaigns["LetGo-E"]
    print("\nTable-4 parameters estimated from the LetGo-E campaign:")
    print(f"  P_crash = {e.estimate_p_crash():.3f}")
    print(f"  P_v     = {e.estimate_p_v():.3f}")
    print(f"  P_v'    = {e.estimate_p_v_prime():.3f}")
    print(f"  P_letgo = {e.estimate_p_letgo():.3f}")


if __name__ == "__main__":
    main()
