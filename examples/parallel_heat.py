"""Multi-rank LetGo: coordinated checkpointing on an SPMD job.

Runs the domain-decomposed heat-equation proxy on a 4-rank cluster with
injected faults, comparing plain coordinated C/R (every crash rolls every
rank back) against C/R + comm-safe LetGo (a crashed rank is repaired in
place, saving all ranks' work -- unless the crash is on a send/recv, where
elision would tear the message protocol).

This is the paper's "towards large-scale application" future work, made
runnable.

Run:  python examples/parallel_heat.py
"""

import numpy as np

from repro.core import LETGO_E
from repro.parallel import (
    ClusterCRParams,
    ClusterPolicy,
    HeatApp,
    drive_cluster,
)
from repro.reporting import ascii_table


def main() -> None:
    app = HeatApp(size=4)
    outputs, steps = app.golden
    total0, totalf = outputs[0][0][1], outputs[0][1][1]
    print(f"golden 4-rank run: {steps:,} instructions total")
    print(f"global heat conserved: {total0:.12f} -> {totalf:.12f}")
    print(f"acceptance check: {app.acceptance_check(outputs)}\n")

    params = ClusterCRParams(
        interval=20_000,
        t_chk=3_000,
        t_sync=1_200,
        t_letgo=100,
        mtbf_faults=5_000.0,
    )
    seeds = range(10)
    rows = []
    for label, policy, kwargs in (
        ("no fault tolerance", ClusterPolicy.NONE, {}),
        ("coordinated C/R", ClusterPolicy.CR, {}),
        ("C/R + LetGo (comm-safe)", ClusterPolicy.CR_LETGO, {"letgo": LETGO_E}),
    ):
        runs = [drive_cluster(app, params, policy, seed=s, **kwargs) for s in seeds]
        rows.append(
            [
                label,
                f"{sum(r.completed for r in runs)}/{len(list(seeds))}",
                f"{np.mean([r.efficiency for r in runs]):.3f}",
                sum(r.rollbacks for r in runs),
                sum(r.letgo_repairs for r in runs),
                sum(r.outcome == 'sdc' for r in runs),
            ]
        )
    print(
        ascii_table(
            ["policy", "completed", "mean efficiency", "rollbacks",
             "LetGo repairs", "SDC runs"],
            rows,
            title="4-rank heat proxy under heavy fault injection (10 seeds)",
        )
    )
    print(
        "\nA repair costs one rank a few state edits; a rollback costs all "
        "four ranks their work since the last coordinated checkpoint."
    )


if __name__ == "__main__":
    main()
