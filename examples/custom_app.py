"""Bring your own application: write MiniC, define an acceptance check,
measure LetGo on it.

The example app is a Jacobi solver for a 1-D Poisson problem -- an
iterative, convergent kernel of exactly the class the paper argues
benefits from crash elision.  Its acceptance check verifies the residual
of the linear system, HPL-style.

Run:  python examples/custom_app.py
"""

from math import isfinite

from repro.apps.base import MiniApp, Output
from repro.core import LETGO_E
from repro.faultinject import Outcome, run_campaign
from repro.reporting import ascii_table, pct

N = 16

SOURCE = f"""
// Jacobi iteration for -u'' = 1 on a 1-D grid, u(0)=u(1)=0.
global int n = {N};
global float u[{N}];
global float unew[{N}];
global float rhs[{N}];
global float h2 = 0.0;
global int maxit = 4000;

func residual_norm() -> float {{
    var int i;
    var float worst = 0.0;
    for (i = 1; i < n - 1; i = i + 1) {{
        var float r = rhs[i] * h2 - (2.0 * u[i] - u[i - 1] - u[i + 1]);
        worst = fmax(worst, fabs(r));
    }}
    return worst;
}}

func main() -> int {{
    var int i;
    var float h = 1.0 / float(n - 1);
    h2 = h * h;
    for (i = 0; i < n; i = i + 1) {{
        u[i] = 0.0;
        rhs[i] = 1.0;
    }}
    var int iter = 0;
    var float res = 1.0;
    while (res > 1.0e-9 && iter < maxit) {{
        for (i = 1; i < n - 1; i = i + 1) {{
            unew[i] = 0.5 * (u[i - 1] + u[i + 1] + rhs[i] * h2);
        }}
        for (i = 1; i < n - 1; i = i + 1) {{ u[i] = unew[i]; }}
        res = residual_norm();
        iter = iter + 1;
    }}
    out(iter);
    out(res);
    for (i = 0; i < n; i = i + 1) {{ out(u[i]); }}
    return 0;
}}
"""


class Jacobi(MiniApp):
    """User-defined app: iterative Poisson solve with a residual check."""

    name = "jacobi"
    domain = "Iterative elliptic solver"

    @property
    def source(self) -> str:
        return SOURCE

    def acceptance_check(self, output: Output) -> bool:
        if len(output) != 2 + N:
            return False
        if output[0][0] != "i" or any(k != "f" for k, _ in output[1:]):
            return False
        iterations, res = output[0][1], output[1][1]
        solution = [v for _, v in output[2:]]
        if not (0 < iterations < 4000):
            return False
        if not (isfinite(res) and res <= 1.0e-9):
            return False
        # physical sanity: solution positive in the interior, zero at walls
        if solution[0] != 0.0 or solution[-1] != 0.0:
            return False
        return all(isfinite(v) and 0.0 <= v < 1.0 for v in solution)

    def sdc_slice(self, output: Output) -> tuple:
        return tuple(v for _, v in output[2:])


def main() -> None:
    app = Jacobi()
    print(f"custom app compiled: {len(app.program.instrs)} static instrs, "
          f"{app.golden.instret:,} dynamic")
    vals = [v for _, v in app.golden.output]
    print(f"converged in {vals[0]} iterations, residual {vals[1]:.2e}")
    assert app.acceptance_check(list(app.golden.output))

    n = 80
    print(f"\ninjecting {n} faults under LetGo-E...")
    campaign = run_campaign(app, n, seed=3, config=LETGO_E)
    rows = [
        [outcome.value, count, pct(count / n)]
        for outcome, count in sorted(
            campaign.counts.items(), key=lambda kv: -kv[1]
        )
    ]
    print(ascii_table(["outcome", "runs", "fraction"], rows))
    m = campaign.metrics()
    if m.crash_count:
        print(f"\ncontinuability: {m.continuability}")
        print(f"continued_correct: {m.continued_correct}")
    sdc = campaign.counts.get(Outcome.C_SDC, 0) + campaign.counts.get(Outcome.SDC, 0)
    print(f"total silent corruptions: {sdc}/{n}")


if __name__ == "__main__":
    main()
