"""A tour of the substrate: assembler, machine, debugger, static analysis.

Shows the layers LetGo is built from, without any physics app on top:
hand-written assembly, a gdb-style debug session, a deliberate crash, and
a manual LetGo-style repair (advance PC + fix state).

Run:  python examples/substrate_tour.py
"""

from repro.analysis import FunctionTable, objdump, profile_program
from repro.isa import assemble
from repro.isa.registers import SP
from repro.machine import DebugSession, Process, STOP_TRAP

ASM = """
; dot product of two vectors, then a deliberate wild load
.data
a: .double 1.0, 2.0, 3.0, 4.0
b: .double 10.0, 20.0, 30.0, 40.0
n: .word 4
.text
.entry _start
.func _start
_start:
    call main
    halt
.func main
main:
    push bp
    mov bp, sp
    subi sp, sp, #16
    movi r1, @n
    ld r2, [r1 + 0]          ; n
    movi r3, @a
    movi r4, @b
    movi r5, #0              ; i
    fmovi f1, #0.0           ; acc
loop:
    slt r6, r5, r2
    beqz r6, done
    fldx f2, [r3 + r5*8 + 0]
    fldx f3, [r4 + r5*8 + 0]
    fmul f2, f2, f3
    fadd f1, f1, f2
    addi r5, r5, #1
    jmp loop
done:
    fout f1                  ; 300.0
    movi r7, #0x999999       ; a wild pointer...
    ld r8, [r7 + 0]          ; ...this will SIGSEGV
    out r8
    movi r0, #0
    addi sp, sp, #16
    pop bp
    ret
"""


def main() -> None:
    program = assemble(ASM, "tour")
    print("=== static analysis (objdump) ===")
    print(objdump(program))

    print("=== golden profile of the crash-free prefix ===")
    # the program traps, so profile a patched variant with the wild load
    # replaced by a safe immediate
    table = FunctionTable(program)
    for info in table.functions:
        print(f"  {info.name}: frame {info.frame_size} bytes")

    print("\n=== run under a debug session ===")
    process = Process.load(program)
    session = DebugSession(process)
    event = session.cont(10_000)
    print(f"stop: {event}")
    assert event.kind == STOP_TRAP and event.trap is not None
    print(f"output so far: {process.output_values()}")

    print("\n=== manual LetGo-style repair ===")
    trap = event.trap
    instr = program.instrs[trap.pc]
    print(f"faulting instruction @pc={trap.pc}: {instr.text()}")
    # Heuristic I by hand: the load never completed; feed the destination 0
    written = instr.written_reg()
    if written is not None and written[0] == "r":
        session.write_reg(f"r{written[1]}", 0)
        print(f"fed r{written[1]} <- 0")
    session.set_pc(trap.pc + 1)
    event = session.cont(10_000)
    print(f"after repair: {event}")
    print(f"final output: {process.output_values()}")
    print(f"stack pointer restored to top: {process.cpu.iregs[SP]:#x}")

    print("\n=== dynamic profile of a clean variant ===")
    clean = assemble(ASM.replace("ld r8, [r7 + 0]", "movi r8, #0"), "tour-clean")
    profile = profile_program(clean)
    print(f"dynamic instructions: {profile.total}")
    print(f"hottest sites: {profile.hottest(3)}")


if __name__ == "__main__":
    main()
