"""Checkpoint/restart efficiency study (the paper's Section 7).

Simulates a long-running HPC system with and without LetGo across
checkpoint overheads and machine scales, using the per-application
probabilities from the paper's Table 3.

Run:  python examples/checkpoint_efficiency.py
"""

from repro.crsim import (
    PAPER_APP_PARAMS,
    YEAR,
    single_runs,
    sweep_checkpoint_overhead,
    sweep_system_scale,
)
from repro.crsim.params import SystemParams
from repro.reporting import ascii_table


def main() -> None:
    needed = 2 * YEAR
    seeds = [1, 2, 3]

    rows = []
    for name in ("lulesh", "clamr", "snap", "comd", "pennant"):
        for c in sweep_checkpoint_overhead(
            PAPER_APP_PARAMS[name], needed=needed, seeds=seeds
        ):
            rows.append(
                [
                    name.upper(),
                    f"{c.t_chk:.0f}s",
                    f"{c.standard:.4f}",
                    f"{c.letgo:.4f}",
                    f"{c.gain_absolute:+.4f}",
                    f"{c.gain_relative:.3f}x",
                ]
            )
    print(
        ascii_table(
            ["App", "T_chk", "Standard", "With LetGo", "abs gain", "rel"],
            rows,
            title="Efficiency vs checkpoint overhead (MTBF 12h, sync 10%)",
        )
    )

    print()
    rows = []
    for nodes, c in sweep_system_scale(
        PAPER_APP_PARAMS["clamr"], t_chk=1200.0, needed=needed, seeds=seeds
    ):
        rows.append(
            [f"{nodes:,}", f"{c.standard:.4f}", f"{c.letgo:.4f}",
             f"{c.gain_absolute:+.4f}"]
        )
    print(
        ascii_table(
            ["Nodes", "Standard", "With LetGo", "abs gain"],
            rows,
            title="CLAMR at T_chk=1200s as the machine scales (MTBF shrinks)",
        )
    )

    # peek inside one pair of runs
    system = SystemParams(t_chk=1200.0, mtbfaults=21600.0)
    std, lg = single_runs(system, PAPER_APP_PARAMS["lulesh"], needed=needed, seed=1)
    print("\none seeded LULESH run at T_chk=1200s:")
    print(f"  standard C/R : {std.summary()}")
    print(f"  with LetGo   : {lg.summary()}")
    print(f"  checkpoint interval grew from {std.interval:,.0f}s to "
          f"{lg.interval:,.0f}s (MTBF_letgo effect)")


if __name__ == "__main__":
    main()
