"""Quickstart: watch LetGo elide a crash that would kill an application.

Loads the LULESH proxy app, picks a fault that provably crashes the
baseline run, then replays the *same* fault under LetGo-E and prints what
the monitor/modifier did and how the application's own acceptance check
judged the continued run.

Run:  python examples/quickstart.py
"""

from repro.apps import make_app
from repro.core import LETGO_E
from repro.faultinject import InjectionPlan, Outcome, run_injection


def main() -> None:
    app = make_app("lulesh")
    print(f"app: {app.describe()}")
    print(f"golden acceptance check passes: "
          f"{app.acceptance_check(list(app.golden.output))}")

    # Scan a few planned faults until one crashes the unprotected run.
    crashing_plan = None
    for dyn_index in range(10_000, app.golden.instret, 7_919):
        plan = InjectionPlan(dyn_index=dyn_index, bit=45, reg_choice=0.5)
        baseline = run_injection(app, plan, config=None)
        if baseline.outcome is Outcome.CRASH:
            crashing_plan = plan
            print(
                f"\nfault at dynamic instruction {dyn_index} "
                f"(bit {plan.bit} of {baseline.target_reg}) crashes the "
                f"baseline with {baseline.first_signal.name} "
                f"after {baseline.steps:,} instructions"
            )
            break
    if crashing_plan is None:
        raise SystemExit("no crashing fault found in the scan (unexpected)")

    # Same fault, but the process runs under LetGo-E.
    letgo = run_injection(app, crashing_plan, config=LETGO_E)
    print(f"under {LETGO_E.describe()}:")
    print(f"  outcome: {letgo.outcome.value}")
    print(f"  interventions: {letgo.interventions}")
    print(f"  instructions retired: {letgo.steps:,}")
    if letgo.outcome.continued:
        verdict = {
            Outcome.C_BENIGN: "output identical to the fault-free run",
            Outcome.C_SDC: "output differs but passed the acceptance check",
            Outcome.C_DETECTED: "the acceptance check caught the corruption",
        }[letgo.outcome]
        print(f"  -> crash elided; {verdict}")
    else:
        print("  -> LetGo gave up (double crash); a C/R system would "
              "restart from the last checkpoint, exactly as without LetGo")


if __name__ == "__main__":
    main()
