"""Legacy setup shim.

The build environment is offline and has no ``wheel`` package, so the
PEP-517 editable path (which needs ``bdist_wheel``) is unavailable.  This
shim lets ``pip install -e . --no-use-pep517 --no-build-isolation`` use the
classic ``setup.py develop`` route.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
