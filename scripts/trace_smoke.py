#!/usr/bin/env python
"""Trace smoke check: run a telemetry-enabled campaign, validate the trace.

Runs one seeded campaign with telemetry on, writing both trace formats,
then asserts the observability contract end to end from the *files*
alone:

* the JSONL trace parses and every record carries the canonical fields;
* per-injection phase counts match the campaign size and the recorded
  ``outcome:*`` counters sum to n and equal the CampaignResult tallies;
* within each worker stream, per-injection phase time sums to no more
  than that stream's span of the campaign wall-clock (spans nest, they
  never double-book a worker's time);
* the Chrome trace is valid ``trace_event`` JSON with labelled tracks.

Run from the repo root:

    PYTHONPATH=src python scripts/trace_smoke.py [trace-dir]

Leaves ``campaign.jsonl`` / ``campaign.trace.json`` in *trace-dir*
(default: ``traces/``) for the CI artifact upload.  Exits 0 on success,
1 with a diagnostic on any violation.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from pathlib import Path

from repro.apps import make_app
from repro.core import VARIANTS
from repro.faultinject import CampaignConfig, CampaignEngine
from repro.telemetry import INJECTION_PHASES, read_jsonl

N = 60
SEED = 20170626
APP = "pennant"
JOBS = 2


def fail(message: str) -> None:
    print(f"trace smoke FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "traces")
    jsonl_path = out_dir / "campaign.jsonl"
    chrome_path = out_dir / "campaign.trace.json"

    app = make_app(APP)
    engine = CampaignEngine(
        config=CampaignConfig(
            jobs=JOBS, trace=str(jsonl_path), chrome_trace=str(chrome_path)
        )
    )
    result = engine.run(app, N, SEED, VARIANTS["LetGo-E"])
    report = engine.telemetry
    assert report is not None

    # -- JSONL parses and is internally consistent ------------------------
    meta, records = read_jsonl(jsonl_path)
    if meta["n"] != N or meta["seed"] != SEED or meta["app"] != app.name:
        fail(f"trace meta {meta} does not describe the campaign")
    for record in records:
        if record["kind"] not in ("span", "instant", "gauge"):
            fail(f"unknown record kind {record['kind']!r}")
        if "ts" not in record or "tid" not in record or "name" not in record:
            fail(f"record missing canonical fields: {record}")

    # -- counters equal the campaign's own tallies -------------------------
    outcomes = {
        name.split(":", 1)[1]: value
        for name, value in meta["counters"].items()
        if name.startswith("outcome:")
    }
    tallies = {outcome.value: count for outcome, count in result.counts.items()}
    if outcomes != tallies:
        fail(f"trace outcomes {outcomes} != campaign tallies {tallies}")
    if sum(outcomes.values()) != N:
        fail(f"outcome counters sum to {sum(outcomes.values())}, not {N}")

    # -- phase accounting --------------------------------------------------
    wall = engine.stats.elapsed_seconds
    for phase in ("restore", "advance-to-site", "post-fault"):
        count = report.phases[phase].count
        if count != N:
            fail(f"phase {phase!r} counted {count} spans, expected {N}")

    per_stream = defaultdict(float)
    for record in records:
        if record["kind"] == "span" and record["name"] in INJECTION_PHASES:
            per_stream[record["tid"]] += record["dur"]
    for tid, seconds in sorted(per_stream.items()):
        if seconds > wall * 1.01:  # 1% timer-resolution slack
            fail(
                f"stream {tid} accounts {seconds:.3f}s of injection phases "
                f"in a {wall:.3f}s campaign"
            )
    total_phase = sum(per_stream.values())
    if total_phase > JOBS * wall * 1.01:
        fail(f"phase total {total_phase:.3f}s exceeds {JOBS}x{wall:.3f}s wall")

    # -- Chrome trace ------------------------------------------------------
    doc = json.loads(chrome_path.read_text())
    events = doc.get("traceEvents")
    if not events:
        fail("chrome trace has no traceEvents")
    tracks = {
        e["args"]["name"] for e in events if e.get("name") == "thread_name"
    }
    if "engine" not in tracks or not any(t.startswith("shard-") for t in tracks):
        fail(f"chrome trace tracks {tracks} lack engine/shard labels")
    if any(e["ph"] == "X" and e["dur"] < 0 for e in events):
        fail("negative span duration in chrome trace")

    print(
        f"trace smoke ok: n={N} jobs={JOBS} wall={wall:.2f}s "
        f"events={len(records)} phase-seconds={total_phase:.2f} "
        f"outcomes={outcomes}"
    )
    print(f"traces left in {out_dir}/ for artifact upload")
    return 0


if __name__ == "__main__":
    sys.exit(main())
