#!/usr/bin/env bash
# Full verification: test suite + every paper table/figure bench.
# Outputs land in test_output.txt / bench_output.txt and
# benchmarks/results/*.txt.
set -u
cd "$(dirname "$0")/.."
python3 -m pytest tests/ 2>&1 | tee test_output.txt
python3 -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
