#!/usr/bin/env python
"""Chaos check: SIGKILL a campaign worker mid-run, then resume.

Stages a worker that kills itself (SIGKILL, like the OOM killer) the
first time it sees one specific injection plan.  The supervising engine
is configured with no pool rebuilds and no serial fallback, so the
campaign aborts with a durable journal.  The script then clears the
fault and resumes from that journal, asserting the reassembled
CampaignResult is bit-identical to an uninterrupted serial run.

Run from the repo root:

    PYTHONPATH=src python scripts/chaos_resume.py

Exits 0 on success, 1 with a diagnostic on any mismatch.  Used as the
CI chaos step; also runnable locally.
"""

from __future__ import annotations

import os
import signal
import sys
import tempfile
from pathlib import Path

from repro.apps import make_app
from repro.errors import CampaignAbortedError
from repro.faultinject import (
    CampaignConfig,
    CampaignEngine,
    CampaignJournal,
    run_injection,
)
from repro.faultinject import engine as engine_mod

N = 10
SEED = 41
APP = "pennant"

_SENTINEL = Path(tempfile.gettempdir()) / f"chaos-resume-kill-{os.getpid()}"


def _killer(app, plan, config=None, **kwargs):
    """Fork-inherited wrapper: first worker to reach the victim plan dies."""
    if plan == _killer.victim and _SENTINEL.exists():
        _SENTINEL.unlink()
        os.kill(os.getpid(), signal.SIGKILL)
    return run_injection(app, plan, config, **kwargs)


def _fingerprint(result):
    return (
        result.n,
        result.counts,
        [(r.outcome, r.plan, r.steps, r.timed_out) for r in result.results],
    )


def main() -> int:
    app = make_app(APP)
    app.golden  # profile once in the parent so workers inherit the cache
    print(f"[chaos] reference: serial campaign, n={N} seed={SEED}")
    reference = CampaignEngine(
        config=CampaignConfig(jobs=1, keep_results=True)
    ).run(app, N, SEED)

    from repro.faultinject import plan_injections
    import numpy as np

    plans = plan_injections(np.random.default_rng(SEED), app.golden.instret, N)
    _killer.victim = plans[N // 2]
    _SENTINEL.touch()
    engine_mod.run_injection = _killer

    journal_path = Path(tempfile.mkdtemp(prefix="chaos-resume-")) / "c.journal"
    crashy = CampaignEngine(
        config=CampaignConfig(
            jobs=2,
            shard_size=1,
            keep_results=True,
            retry_backoff=0.0,
            max_pool_rebuilds=0,
            serial_fallback=False,
        )
    )
    print("[chaos] launching campaign with a SIGKILL booby-trap...")
    try:
        crashy.run(app, N, SEED, journal=journal_path)
    except CampaignAbortedError as exc:
        print(f"[chaos] campaign aborted as staged: {exc}")
    else:
        print("[chaos] FAIL: the booby-trapped campaign did not abort")
        return 1
    finally:
        _SENTINEL.unlink(missing_ok=True)
        engine_mod.run_injection = run_injection

    completed = CampaignJournal.load(journal_path).completed_indices
    print(f"[chaos] journal holds {len(completed)}/{N} completed plans")
    if not completed or len(completed) >= N:
        print("[chaos] FAIL: expected a partial journal")
        return 1

    print(f"[chaos] resuming from {journal_path}")
    resumed_engine = CampaignEngine(
        config=CampaignConfig(jobs=2, keep_results=True)
    )
    resumed = resumed_engine.run(app, N, SEED, resume=journal_path)
    print(
        f"[chaos] resumed={resumed_engine.stats.resumed} "
        f"executed={resumed_engine.stats.executed}"
    )

    if _fingerprint(resumed) != _fingerprint(reference):
        print("[chaos] FAIL: resumed result differs from the serial run")
        return 1
    print("[chaos] OK: resumed result is bit-identical to the serial run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
