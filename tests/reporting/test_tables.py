"""Reporting helpers."""

from repro.reporting import ascii_table, pct, pct_ci


def test_ascii_table_alignment():
    text = ascii_table(["name", "v"], [["a", 1], ["longer", 22]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "-" in lines[1]
    assert lines[2].index("1") == lines[3].index("2")


def test_ascii_table_title():
    text = ascii_table(["x"], [[1]], title="Table 3")
    assert text.splitlines()[0] == "Table 3"


def test_ascii_table_wide_cells():
    text = ascii_table(["h"], [["wider-than-header"]])
    assert "wider-than-header" in text


def test_pct():
    assert pct(0.625) == "62.50%"
    assert pct(0.625, digits=0) == "62%"


def test_pct_ci():
    text = pct_ci(0.5, 0.012)
    assert text.startswith("50.00%")
    assert "±1.20" in text
