"""Multi-bit upset extension of the fault model."""

import numpy as np
import pytest

from repro.core import LETGO_E
from repro.faultinject import InjectionPlan, plan_injections, run_injection


def test_plan_bits_property():
    plan = InjectionPlan(dyn_index=10, bit=3, reg_choice=0.5, extra_bits=(7, 40))
    assert plan.bits == (3, 7, 40)


def test_duplicate_bits_rejected():
    with pytest.raises(ValueError):
        InjectionPlan(dyn_index=10, bit=3, reg_choice=0.5, extra_bits=(3,))


def test_extra_bits_range_checked():
    with pytest.raises(ValueError):
        InjectionPlan(dyn_index=10, bit=3, reg_choice=0.5, extra_bits=(64,))


def test_plan_injections_multibit():
    rng = np.random.default_rng(0)
    plans = plan_injections(rng, 1000, 50, n_bits=3)
    assert all(len(p.bits) == 3 for p in plans)
    assert all(len(set(p.bits)) == 3 for p in plans)


def test_plan_injections_nbits_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        plan_injections(rng, 1000, 5, n_bits=0)
    with pytest.raises(ValueError):
        plan_injections(rng, 1000, 5, n_bits=65)


def test_single_bit_unchanged_default():
    rng = np.random.default_rng(0)
    plans = plan_injections(rng, 1000, 5)
    assert all(p.extra_bits == () for p in plans)


def test_multibit_injection_runs(pennant_app):
    plan = InjectionPlan(
        dyn_index=5000, bit=40, reg_choice=0.5, extra_bits=(41, 42)
    )
    result = run_injection(pennant_app, plan, LETGO_E)
    assert result.outcome is not None
    assert result.target_reg is not None


def test_multibit_deterministic(pennant_app):
    plan = InjectionPlan(dyn_index=5000, bit=40, reg_choice=0.5, extra_bits=(50,))
    a = run_injection(pennant_app, plan, None)
    b = run_injection(pennant_app, plan, None)
    assert a.outcome is b.outcome


def test_multibit_crashes_at_least_as_often(pennant_app):
    """On identical sites, 3-bit faults crash at least as often as 1-bit."""
    single = crashes_multi = crashes_single = 0
    for dyn in range(2000, 2600, 60):
        one = run_injection(
            pennant_app,
            InjectionPlan(dyn_index=dyn, bit=44, reg_choice=0.5),
            None,
        )
        three = run_injection(
            pennant_app,
            InjectionPlan(dyn_index=dyn, bit=44, reg_choice=0.5, extra_bits=(45, 46)),
            None,
        )
        crashes_single += one.outcome.crash_origin
        crashes_multi += three.outcome.crash_origin
        single += 1
    assert crashes_multi >= crashes_single - 1
