"""Effectiveness metrics (Eqs. 1-4) and confidence intervals."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faultinject import (
    Outcome,
    compute_metrics,
    crash_probability,
    overall_sdc_rate,
    proportion,
)

SAMPLE = {
    Outcome.BENIGN: 40,
    Outcome.SDC: 2,
    Outcome.DETECTED: 3,
    Outcome.DOUBLE_CRASH: 15,
    Outcome.C_BENIGN: 30,
    Outcome.C_SDC: 4,
    Outcome.C_DETECTED: 6,
}


def test_metrics_values():
    m = compute_metrics(SAMPLE)
    assert m.total == 100
    assert m.crash_count == 55
    assert math.isclose(m.continuability.value, 40 / 55)
    assert math.isclose(m.continued_correct.value, 30 / 55)
    assert math.isclose(m.continued_detected.value, 6 / 55)
    assert math.isclose(m.continued_sdc.value, 4 / 55)


def test_continuability_is_sum_of_components():
    m = compute_metrics(SAMPLE)
    assert math.isclose(
        m.continuability.value,
        m.continued_detected.value + m.continued_correct.value + m.continued_sdc.value,
    )


def test_crash_rate_property():
    m = compute_metrics(SAMPLE)
    assert math.isclose(m.crash_rate.value, 0.55)


def test_overall_sdc_rate():
    rate = overall_sdc_rate(SAMPLE)
    assert math.isclose(rate.value, 6 / 100)


def test_crash_probability():
    p = crash_probability(SAMPLE)
    assert math.isclose(p.value, 0.55)


def test_zero_crash_campaign():
    counts = {Outcome.BENIGN: 10}
    m = compute_metrics(counts)
    assert m.continuability.value == 0.0
    assert m.crash_count == 0


def test_empty_counts():
    m = compute_metrics({})
    assert m.total == 0
    assert m.continuability.denominator == 0


def test_proportion_basics():
    p = proportion(30, 100)
    assert math.isclose(p.value, 0.3)
    assert 0.0 < p.half_width < 0.1
    assert "±" in str(p)


def test_proportion_zero_denominator():
    p = proportion(0, 0)
    assert p.value == 0.0 and p.half_width == 0.0


@given(st.integers(0, 500), st.integers(1, 500))
@settings(max_examples=100)
def test_proportion_bounds(num, den):
    num = min(num, den)
    p = proportion(num, den)
    assert 0.0 <= p.value <= 1.0
    assert p.half_width >= 0.0
    # CI shrinks as 1/sqrt(n)
    wider = proportion(num, den)
    bigger = proportion(num * 4, den * 4)
    assert bigger.half_width <= wider.half_width + 1e-12


def test_ci_95_reference_value():
    # p=0.5, n=400 -> half width ~ 1.96 * 0.5/20 = 0.049
    p = proportion(200, 400)
    assert math.isclose(p.half_width, 0.049, abs_tol=0.002)
