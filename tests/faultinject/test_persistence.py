"""Campaign JSON persistence and merging."""

import math

import pytest

from repro.core import LETGO_E
from repro.faultinject import run_campaign
from repro.faultinject.persistence import (
    campaign_from_json,
    campaign_to_json,
    load_campaign,
    merge_campaigns,
    save_campaign,
)


@pytest.fixture(scope="module")
def campaign(pennant_app):
    return run_campaign(pennant_app, 20, seed=13, config=LETGO_E, keep_results=True)


def test_round_trip(campaign):
    back = campaign_from_json(campaign_to_json(campaign))
    assert back.app_name == campaign.app_name
    assert back.config_name == campaign.config_name
    assert back.n == campaign.n
    assert back.counts == campaign.counts
    assert len(back.results) == len(campaign.results)


def test_round_trip_preserves_records(campaign):
    back = campaign_from_json(campaign_to_json(campaign))
    for mine, theirs in zip(campaign.results, back.results):
        assert mine.outcome is theirs.outcome
        assert mine.plan == theirs.plan
        assert mine.target_pc == theirs.target_pc
        assert mine.target_reg == theirs.target_reg
        assert mine.first_signal is theirs.first_signal
        assert mine.steps == theirs.steps


def test_metrics_survive_round_trip(campaign):
    back = campaign_from_json(campaign_to_json(campaign))
    assert math.isclose(
        back.metrics().continuability.value,
        campaign.metrics().continuability.value,
    )


def test_file_round_trip(campaign, tmp_path):
    path = save_campaign(campaign, tmp_path / "campaign.json")
    back = load_campaign(path)
    assert back.counts == campaign.counts


def test_bad_format_rejected():
    with pytest.raises(ValueError):
        campaign_from_json('{"format": 99}')


def test_merge(pennant_app):
    a = run_campaign(pennant_app, 10, seed=1, config=LETGO_E, keep_results=True)
    b = run_campaign(pennant_app, 10, seed=2, config=LETGO_E, keep_results=True)
    merged = merge_campaigns(a, b)
    assert merged.n == 20
    assert sum(merged.counts.values()) == 20
    assert len(merged.results) == 20
    # merged error bars are tighter than either part's
    if merged.metrics().crash_count > 2:
        assert (
            merged.crash_rate().half_width
            <= min(a.crash_rate().half_width, b.crash_rate().half_width) + 1e-9
        )


def test_merge_rejects_mismatched(pennant_app, hpl_app):
    a = run_campaign(pennant_app, 5, seed=1, config=LETGO_E)
    b = run_campaign(hpl_app, 5, seed=1, config=LETGO_E)
    with pytest.raises(ValueError):
        merge_campaigns(a, b)


def test_merge_empty():
    with pytest.raises(ValueError):
        merge_campaigns()


# -- atomic saves -----------------------------------------------------------


def test_save_leaves_no_temp_files(campaign, tmp_path):
    save_campaign(campaign, tmp_path / "c.json")
    save_campaign(campaign, tmp_path / "c.json")  # overwrite is fine too
    assert [p.name for p in tmp_path.iterdir()] == ["c.json"]


def test_interrupted_save_preserves_old_file(campaign, tmp_path, monkeypatch):
    """A save that dies mid-write never corrupts the previous result."""
    import os

    from repro.faultinject.persistence import atomic_write_text

    path = tmp_path / "c.json"
    save_campaign(campaign, path)
    before = path.read_text()

    def torn_replace(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(os, "replace", torn_replace)
    with pytest.raises(OSError, match="disk full"):
        atomic_write_text(path, "half-written garbage")
    monkeypatch.undo()
    assert path.read_text() == before
    assert [p.name for p in tmp_path.iterdir()] == ["c.json"]
    assert load_campaign(path).n == campaign.n
