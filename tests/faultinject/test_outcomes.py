"""Outcome taxonomy invariants (Figure 4)."""

from repro.faultinject import Outcome, classify_finished


def test_crash_origin_partition():
    crash = {o for o in Outcome if o.crash_origin}
    assert crash == {
        Outcome.CRASH,
        Outcome.DOUBLE_CRASH,
        Outcome.CRASH_UNHANDLED,
        Outcome.C_BENIGN,
        Outcome.C_SDC,
        Outcome.C_DETECTED,
        Outcome.C_HANG,
    }


def test_continued_subset_of_crash_origin():
    for outcome in Outcome:
        if outcome.continued:
            assert outcome.crash_origin


def test_sdc_flags():
    assert Outcome.SDC.is_sdc and Outcome.C_SDC.is_sdc
    assert not Outcome.BENIGN.is_sdc
    assert not Outcome.DETECTED.is_sdc


def test_double_crash_folding():
    folded = {o for o in Outcome if o.folds_to_double_crash}
    assert folded == {
        Outcome.DOUBLE_CRASH,
        Outcome.CRASH_UNHANDLED,
        Outcome.C_HANG,
    }


def test_classify_finished_baseline():
    assert classify_finished(True, True, False) is Outcome.BENIGN
    assert classify_finished(True, False, False) is Outcome.SDC
    assert classify_finished(False, True, False) is Outcome.DETECTED
    assert classify_finished(False, False, False) is Outcome.DETECTED


def test_classify_finished_continued():
    assert classify_finished(True, True, True) is Outcome.C_BENIGN
    assert classify_finished(True, False, True) is Outcome.C_SDC
    assert classify_finished(False, False, True) is Outcome.C_DETECTED


def test_hang_is_not_crash_origin():
    assert not Outcome.HANG.crash_origin
    assert Outcome.C_HANG.crash_origin  # a crash happened first
