"""Resilience layer: retries, poison-plan quarantine, pool supervision,
journaled resume, and the wall-clock watchdog.

The failure-injection trick: ``repro.faultinject.engine.run_injection`` is
monkeypatched in the parent, and the fork-based worker pool inherits the
patch, so worker crashes and poison plans can be staged deterministically.
"""

import os
import signal

import numpy as np
import pytest

from repro.core import LETGO_E
from repro.errors import CampaignAbortedError, JournalError
from repro.faultinject import (
    CampaignEngine,
    CampaignJournal,
    InjectionPlan,
    Outcome,
    plan_injections,
    run_injection,
)
from repro.faultinject import engine as engine_mod

N = 12
SEED = 23


def _fingerprint(result):
    """Everything observable about a campaign, order included."""
    return (
        result.n,
        result.counts,
        [
            (
                r.outcome,
                r.plan,
                r.target_pc,
                r.target_reg,
                r.first_signal,
                r.interventions,
                r.steps,
                r.timed_out,
            )
            for r in result.results
        ],
    )


def _plans(app, n=N, seed=SEED):
    return plan_injections(np.random.default_rng(seed), app.golden.instret, n)


def _reference(app, config=None, n=N, seed=SEED):
    return CampaignEngine(jobs=1, keep_results=True).run(app, n, seed, config)


def _engine(**kwargs):
    kwargs.setdefault("keep_results", True)
    kwargs.setdefault("retry_backoff", 0.0)
    return CampaignEngine(**kwargs)


def test_shard_size_determinism(pennant_app):
    """Arbitrary shard granularity never changes the result."""
    reference = _fingerprint(_reference(pennant_app))
    for shard_size in (1, 3, 5, N):
        engine = _engine(jobs=2, shard_size=shard_size)
        assert _fingerprint(engine.run(pennant_app, N, SEED, None)) == reference


@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "pool"])
def test_poison_plan_quarantined(pennant_app, tmp_path, monkeypatch, jobs):
    """A persistently failing plan is bisected out and quarantined; the
    rest of the campaign completes and is reported, not aborted."""
    plans = _plans(pennant_app)
    poison = plans[7]
    reference = _reference(pennant_app)

    def poisoned(app, plan, config=None, **kwargs):
        if plan == poison:
            raise RuntimeError("poison plan")
        return run_injection(app, plan, config, **kwargs)

    monkeypatch.setattr(engine_mod, "run_injection", poisoned)
    journal_path = tmp_path / "c.journal"
    engine = _engine(jobs=jobs, max_retries=1)
    result = engine.run(pennant_app, N, SEED, None, journal=journal_path)

    assert engine.stats.quarantined == (7,)
    assert result.n == N - 1

    expected = [
        pair for i, pair in enumerate(_fingerprint(reference)[2]) if i != 7
    ]
    assert _fingerprint(result)[2] == expected

    journal = CampaignJournal.load(journal_path)
    (record,) = journal.quarantined
    assert record.index == 7 and record.plan == poison
    assert "poison plan" in record.error
    assert record.attempts == 2  # first run + one retry
    assert journal.completed_indices == set(range(N)) - {7}


def test_transient_failure_is_retried(pennant_app, tmp_path, monkeypatch):
    """A failure that clears on retry costs a retry, not a quarantine."""
    plans = _plans(pennant_app)
    reference = _fingerprint(_reference(pennant_app))
    flaky, sentinel = plans[4], tmp_path / "fail-once"
    sentinel.touch()

    def transient(app, plan, config=None, **kwargs):
        if plan == flaky and sentinel.exists():
            sentinel.unlink()
            raise OSError("transient worker failure")
        return run_injection(app, plan, config, **kwargs)

    monkeypatch.setattr(engine_mod, "run_injection", transient)
    engine = _engine(jobs=1, max_retries=2)
    result = engine.run(pennant_app, N, SEED, None)
    assert engine.stats.retries >= 1
    assert engine.stats.quarantined == ()
    assert _fingerprint(result) == reference


def test_sigkilled_worker_recovers_in_run(pennant_app, tmp_path, monkeypatch):
    """An OOM-style SIGKILL breaks the pool; the supervisor rebuilds it and
    the campaign still finishes with the exact serial result."""
    plans = _plans(pennant_app)
    reference = _fingerprint(_reference(pennant_app))
    victim, sentinel = plans[6], tmp_path / "kill-once"
    sentinel.touch()

    def killer(app, plan, config=None, **kwargs):
        if plan == victim and sentinel.exists():
            sentinel.unlink()
            os.kill(os.getpid(), signal.SIGKILL)
        return run_injection(app, plan, config, **kwargs)

    monkeypatch.setattr(engine_mod, "run_injection", killer)
    engine = _engine(jobs=2, shard_size=2, max_pool_rebuilds=2)
    result = engine.run(pennant_app, N, SEED, None)
    assert engine.stats.pool_rebuilds >= 1
    assert engine.stats.quarantined == ()
    assert _fingerprint(result) == reference


def test_sigkill_abort_then_resume_is_bit_identical(
    pennant_app, tmp_path, monkeypatch
):
    """Acceptance: a campaign killed mid-run resumes from its journal to a
    result bit-identical to the uninterrupted serial run."""
    plans = _plans(pennant_app)
    reference = _fingerprint(_reference(pennant_app, LETGO_E))
    victim, sentinel = plans[8], tmp_path / "kill-always"
    sentinel.touch()

    def killer(app, plan, config=None, **kwargs):
        if plan == victim and sentinel.exists():
            os.kill(os.getpid(), signal.SIGKILL)
        return run_injection(app, plan, config, **kwargs)

    monkeypatch.setattr(engine_mod, "run_injection", killer)
    journal_path = tmp_path / "c.journal"
    crashy = _engine(
        jobs=2, shard_size=1, max_pool_rebuilds=0, serial_fallback=False
    )
    with pytest.raises(CampaignAbortedError, match="resume with"):
        crashy.run(pennant_app, N, SEED, LETGO_E, journal=journal_path)

    completed = CampaignJournal.load(journal_path).completed_indices
    assert 8 not in completed  # the killer shard never journaled

    sentinel.unlink()  # the "machine" recovered
    resumed_engine = _engine(jobs=1)
    resumed = resumed_engine.run(
        pennant_app, N, SEED, LETGO_E, resume=journal_path
    )
    assert resumed_engine.stats.resumed == len(completed)
    assert _fingerprint(resumed) == reference


def test_keyboard_interrupt_leaves_resumable_journal(
    pennant_app, tmp_path, monkeypatch
):
    """Acceptance: Ctrl-C mid-campaign loses nothing that was journaled;
    resume reproduces the uninterrupted run exactly."""
    plans = _plans(pennant_app)
    interrupt_at = plans[7]

    def interrupted(app, plan, config=None, **kwargs):
        if plan == interrupt_at:
            raise KeyboardInterrupt
        return run_injection(app, plan, config, **kwargs)

    monkeypatch.setattr(engine_mod, "run_injection", interrupted)
    journal_path = tmp_path / "c.journal"
    engine = _engine(jobs=1, shard_size=2)
    with pytest.raises(KeyboardInterrupt):
        engine.run(pennant_app, N, SEED, None, journal=journal_path)

    completed = CampaignJournal.load(journal_path).completed_indices
    assert completed == {0, 1, 2, 3, 4, 5}  # shards before the interrupt

    monkeypatch.setattr(engine_mod, "run_injection", run_injection)
    resumed_engine = _engine(jobs=1)
    resumed = resumed_engine.run(pennant_app, N, SEED, None, resume=journal_path)
    assert resumed_engine.stats.resumed == 6
    assert _fingerprint(resumed) == _fingerprint(_reference(pennant_app))


def test_degrades_to_serial_when_pool_unavailable(pennant_app, monkeypatch):
    """No multiprocessing?  Same campaign, in-process."""

    def no_pool(*args, **kwargs):
        raise OSError("no forks on this box")

    monkeypatch.setattr(engine_mod, "ProcessPoolExecutor", no_pool)
    engine = _engine(jobs=4)
    result = engine.run(pennant_app, N, SEED, None)
    assert engine.stats.degraded_serial
    assert _fingerprint(result) == _fingerprint(_reference(pennant_app))


def test_journal_resume_rejects_different_campaign(pennant_app, tmp_path):
    journal_path = tmp_path / "c.journal"
    _engine(jobs=1).run(pennant_app, N, SEED, None, journal=journal_path)
    with pytest.raises(JournalError, match="different campaign"):
        _engine(jobs=1).run(pennant_app, N, SEED + 1, None, resume=journal_path)
    with pytest.raises(JournalError, match="different campaign"):
        _engine(jobs=1).run(pennant_app, N, SEED, LETGO_E, resume=journal_path)


def test_journal_and_resume_are_exclusive(pennant_app, tmp_path):
    with pytest.raises(ValueError, match="not both"):
        _engine(jobs=1).run(
            pennant_app,
            N,
            SEED,
            None,
            journal=tmp_path / "a",
            resume=tmp_path / "b",
        )


def test_resume_of_complete_journal_runs_nothing(pennant_app, tmp_path):
    journal_path = tmp_path / "c.journal"
    reference = _engine(jobs=1).run(
        pennant_app, N, SEED, None, journal=journal_path
    )
    engine = _engine(jobs=2)
    resumed = engine.run(pennant_app, N, SEED, None, resume=journal_path)
    assert engine.stats.resumed == N
    assert engine.stats.executed == 0
    assert _fingerprint(resumed) == _fingerprint(reference)


# -- wall-clock watchdog ----------------------------------------------------


def _placed_plan():
    return InjectionPlan(dyn_index=5000, bit=45, reg_choice=0.5)


def test_watchdog_expiry_classifies_as_hang(pennant_app):
    baseline = run_injection(
        pennant_app, _placed_plan(), None, wall_clock_limit=0.0
    )
    assert baseline.outcome is Outcome.HANG
    assert baseline.timed_out

    letgo = run_injection(
        pennant_app, _placed_plan(), LETGO_E, wall_clock_limit=0.0
    )
    assert letgo.outcome is Outcome.HANG
    assert letgo.timed_out


def test_watchdog_off_is_deterministic_default(pennant_app):
    relaxed = run_injection(
        pennant_app, _placed_plan(), LETGO_E, wall_clock_limit=3600.0
    )
    unlimited = run_injection(pennant_app, _placed_plan(), LETGO_E)
    assert not unlimited.timed_out
    assert (relaxed.outcome, relaxed.steps) == (unlimited.outcome, unlimited.steps)


def test_engine_counts_watchdog_timeouts(pennant_app):
    plans = [
        InjectionPlan(dyn_index=1000 + i, bit=45, reg_choice=0.5)
        for i in range(4)
    ]
    engine = _engine(jobs=1, wall_clock_limit=0.0)
    result = engine.run(pennant_app, 4, SEED, None, plans=plans)
    assert engine.stats.timeouts == 4
    assert result.counts == {Outcome.HANG: 4}
