"""Campaign engine: ladder/parallel determinism, merge, stats, sharding."""

import pytest

from repro.apps.base import MiniApp
from repro.core import LETGO_E
from repro.faultinject import (
    NO_LADDER,
    CampaignEngine,
    CampaignResult,
    Outcome,
    run_campaign,
    run_campaign_engine,
)
from repro.faultinject.engine import _app_spec, _split

N = 12
SEED = 23


def _fingerprint(result):
    """Everything observable about a campaign, order included."""
    return (
        result.n,
        result.counts,
        [
            (
                r.outcome,
                r.plan,
                r.target_pc,
                r.target_reg,
                r.first_signal,
                r.interventions,
                r.steps,
            )
            for r in result.results
        ],
    )


@pytest.mark.parametrize("app_fixture", ["pennant_app", "hpl_app"])
@pytest.mark.parametrize("config", [None, LETGO_E], ids=["baseline", "LetGo-E"])
def test_engine_modes_identical(app_fixture, config, request):
    """Serial, ladder, and multiprocess campaigns are indistinguishable."""
    app = request.getfixturevalue(app_fixture)
    naive = CampaignEngine(jobs=1, ladder_interval=NO_LADDER, keep_results=True)
    ladder = CampaignEngine(jobs=1, keep_results=True)
    fanout = CampaignEngine(jobs=3, keep_results=True)
    reference = _fingerprint(naive.run(app, N, SEED, config))
    assert _fingerprint(ladder.run(app, N, SEED, config)) == reference
    assert _fingerprint(fanout.run(app, N, SEED, config)) == reference
    assert naive.stats.restored == 0
    assert ladder.stats.restored > 0
    assert fanout.stats.jobs == 3


def test_ladder_replays_less_prefix(pennant_app):
    naive = CampaignEngine(jobs=1, ladder_interval=NO_LADDER)
    ladder = CampaignEngine(jobs=1)
    naive.run(pennant_app, N, SEED, None)
    ladder.run(pennant_app, N, SEED, None)
    assert ladder.stats.fast_forward_steps < naive.stats.fast_forward_steps
    assert ladder.stats.mean_fast_forward <= ladder.stats.ladder_interval


def test_engine_stats_accounting(pennant_app):
    engine = CampaignEngine(jobs=2)
    engine.run(pennant_app, N, SEED, LETGO_E)
    stats = engine.stats
    assert stats.n == N
    assert stats.restored + stats.cold_starts == N
    assert sum(stats.per_worker_injections) == N
    assert len(stats.per_worker_seconds) == stats.jobs
    assert stats.injections_per_sec > 0
    assert 0.0 < stats.utilization <= 1.0
    assert "injections" in stats.describe()


def test_merge_shards_equal_unsharded(pennant_app):
    whole = run_campaign(
        pennant_app, 10, seed=SEED, config=LETGO_E, keep_results=True
    )
    import numpy as np

    from repro.faultinject import plan_injections

    plans = plan_injections(
        np.random.default_rng(SEED), pennant_app.golden.instret, 10
    )
    shards = [
        run_campaign(
            pennant_app, len(chunk), seed=SEED, config=LETGO_E,
            keep_results=True, plans=chunk,
        )
        for chunk in (plans[:4], plans[4:7], plans[7:])
    ]
    merged = CampaignResult.merge(shards)
    assert _fingerprint(merged) == _fingerprint(whole)


def test_merge_validates_input():
    a = CampaignResult("app", "cfg", 1, {Outcome.BENIGN: 1})
    b = CampaignResult("other", "cfg", 1, {Outcome.SDC: 1})
    with pytest.raises(ValueError):
        CampaignResult.merge([])
    with pytest.raises(ValueError):
        CampaignResult.merge([a, b])
    merged = CampaignResult.merge([a, a])
    assert merged.n == 2
    assert merged.counts == {Outcome.BENIGN: 2}


def test_split_contiguous_and_even():
    items = list(range(10))
    chunks = _split(items, 3)
    assert [len(c) for c in chunks] == [4, 3, 3]
    assert [x for chunk in chunks for x in chunk] == items
    assert _split(items, 20) == [[i] for i in items]
    assert _split([], 3) == [[]]


def test_local_app_degrades_to_serial():
    """An un-rederivable app (local class) runs in-process, same results."""

    class TinyApp(MiniApp):
        name = "tiny-local"
        domain = "test"

        @property
        def source(self):
            return (
                "func main() -> int {\n"
                "  var int i; var float s = 0.0;\n"
                "  for (i = 0; i < 40; i = i + 1) { s = s + float(i); }\n"
                "  out(s); out(i); return 0;\n"
                "}\n"
            )

        def acceptance_check(self, output):
            return len(output) == 2 and output[1][1] == 40

        def sdc_slice(self, output):
            return (output[0][1],)

    app = TinyApp()
    assert _app_spec(app) is None
    engine = CampaignEngine(jobs=4, keep_results=True)
    result = engine.run(app, 8, SEED, None)
    assert engine.stats.jobs == 1
    reference = CampaignEngine(
        jobs=1, ladder_interval=NO_LADDER, keep_results=True
    ).run(app, 8, SEED, None)
    assert _fingerprint(result) == _fingerprint(reference)


def test_registry_app_spec_roundtrip(pennant_app):
    from repro.faultinject.engine import _app_from_spec

    spec = _app_spec(pennant_app)
    assert spec == ("registry", "pennant")
    rebuilt = _app_from_spec(spec)
    assert rebuilt.source == pennant_app.source


def test_run_campaign_engine_wrapper(pennant_app):
    result = run_campaign_engine(pennant_app, 5, SEED, LETGO_E, jobs=2)
    assert result.n == 5
    assert sum(result.counts.values()) == 5
    assert result.results == []  # memory-safe default


def test_plans_length_mismatch_engine(pennant_app):
    import numpy as np

    from repro.faultinject import plan_injections

    plans = plan_injections(
        np.random.default_rng(0), pennant_app.golden.instret, 3
    )
    with pytest.raises(ValueError):
        CampaignEngine().run(pennant_app, 5, 0, None, plans=plans)
