"""Campaigns: aggregation, pairing, Table-3 rows, parameter estimation."""

import math

import pytest

from repro.core import LETGO_B, LETGO_E
from repro.faultinject import Outcome, run_campaign, run_paired_campaigns

N = 30
SEED = 11


@pytest.fixture(scope="module")
def paired(pennant_app):
    return run_paired_campaigns(
        pennant_app, N, SEED, configs=[None, LETGO_B, LETGO_E]
    )


def test_counts_sum_to_n(paired):
    for result in paired.values():
        assert sum(result.counts.values()) == N
        assert result.n == N


def test_baseline_has_no_letgo_outcomes(paired):
    base = paired["baseline"]
    for outcome in base.counts:
        assert not outcome.continued
        assert outcome is not Outcome.DOUBLE_CRASH


def test_letgo_has_no_plain_crash(paired):
    for name in ("LetGo-B", "LetGo-E"):
        assert Outcome.CRASH not in paired[name].counts


def test_pairing_preserves_crash_population(paired):
    """Same plans: the crash-origin count is identical across configs."""
    crash_counts = {
        name: sum(
            count for outcome, count in result.counts.items() if outcome.crash_origin
        )
        for name, result in paired.items()
    }
    assert len(set(crash_counts.values())) == 1


def test_pairing_preserves_finished_outcomes(paired):
    """Non-crash outcomes are config-independent."""
    for outcome in (Outcome.BENIGN, Outcome.SDC, Outcome.DETECTED, Outcome.HANG):
        values = {r.counts.get(outcome, 0) for r in paired.values()}
        assert len(values) == 1, outcome


def test_table3_row_sums_to_one(paired):
    row = paired["LetGo-E"].table3_row()
    assert math.isclose(sum(row.values()), 1.0, abs_tol=1e-9)


def test_metrics_consistent_with_counts(paired):
    result = paired["LetGo-E"]
    m = result.metrics()
    crash = sum(c for o, c in result.counts.items() if o.crash_origin)
    continued = sum(c for o, c in result.counts.items() if o.continued)
    if crash:
        assert math.isclose(m.continuability.value, continued / crash)


def test_parameter_estimates_in_range(paired):
    result = paired["LetGo-E"]
    for estimate in (
        result.estimate_p_crash(),
        result.estimate_p_v(),
        result.estimate_p_v_prime(),
        result.estimate_p_letgo(),
    ):
        assert 0.0 <= estimate <= 1.0


def test_run_campaign_reproducible(pennant_app):
    a = run_campaign(pennant_app, 10, seed=3, config=LETGO_E, keep_results=False)
    b = run_campaign(pennant_app, 10, seed=3, config=LETGO_E, keep_results=False)
    assert a.counts == b.counts


def test_run_campaign_keep_results(pennant_app):
    result = run_campaign(pennant_app, 5, seed=4, config=None, keep_results=True)
    assert len(result.results) == 5


def test_run_campaign_drops_results_by_default(pennant_app):
    """Memory-safe default: per-run records are not accumulated."""
    result = run_campaign(pennant_app, 5, seed=4, config=None)
    assert result.results == []
    assert result.n == 5


def test_plans_length_mismatch(pennant_app):
    from repro.faultinject import plan_injections
    import numpy as np

    plans = plan_injections(np.random.default_rng(0), pennant_app.golden.instret, 3)
    with pytest.raises(ValueError):
        run_campaign(pennant_app, 5, seed=0, plans=plans)


def test_fraction_and_rates(paired):
    result = paired["LetGo-E"]
    benign = result.fraction(Outcome.BENIGN)
    assert 0.0 <= benign.value <= 1.0
    assert result.sdc_rate().denominator == N
    assert result.crash_rate().denominator == N


# -- CampaignResult.merge edge cases ----------------------------------------


def test_merge_empty_shard_list_raises():
    from repro.faultinject import CampaignResult

    with pytest.raises(ValueError, match="nothing to merge"):
        CampaignResult.merge([])


def test_merge_shard_with_zero_results():
    """An empty shard (n=0) is a no-op contribution, not an error."""
    from repro.faultinject import CampaignResult

    empty = CampaignResult("app", "cfg", 0, {})
    full = CampaignResult("app", "cfg", 2, {Outcome.BENIGN: 2})
    merged = CampaignResult.merge([empty, full, empty])
    assert merged.n == 2
    assert merged.counts == {Outcome.BENIGN: 2}
    assert merged.results == []
    assert CampaignResult.merge([empty]).n == 0


def test_duplicate_plans_on_bad_resume_raise(pennant_app, tmp_path):
    """A doctored journal that repeats a shard must raise at resume time,
    not silently double-count the duplicated plans."""
    import json

    from repro.errors import JournalError
    from repro.faultinject import CampaignEngine

    path = tmp_path / "c.journal"
    CampaignEngine(jobs=1).run(pennant_app, 4, seed=SEED, journal=path)
    payload = json.loads(path.read_text())
    payload["shards"].append(payload["shards"][0])
    path.write_text(json.dumps(payload))
    with pytest.raises(JournalError, match="twice"):
        CampaignEngine(jobs=1).run(pennant_app, 4, seed=SEED, resume=path)
