"""Fault-site analysis."""

import pytest

from repro.core import LETGO_E
from repro.faultinject import run_campaign
from repro.faultinject.sites import INSTR_CLASSES, analyze_sites, classify_op
from repro.isa import Op


@pytest.fixture(scope="module")
def report(pennant_app):
    campaign = run_campaign(pennant_app, 40, seed=9, config=LETGO_E, keep_results=True)
    return analyze_sites(pennant_app, campaign), campaign


def test_classify_op():
    assert classify_op(Op.LD) == "load"
    assert classify_op(Op.FSTX) == "store"
    assert classify_op(Op.JMP) == "branch"
    assert classify_op(Op.RET) == "branch"
    assert classify_op(Op.FADD) == "float"
    assert classify_op(Op.ADDI) == "int"
    assert classify_op(Op.FTOI) == "int"
    assert classify_op(Op.HALT) == "other"
    assert all(classify_op(op) in INSTR_CLASSES for op in Op)


def test_tallies_cover_all_injected(report):
    site_report, campaign = report
    injected = sum(
        1 for r in campaign.results if r.target_pc is not None
    )
    assert sum(sum(c.values()) for c in site_report.by_function.values()) == injected
    assert sum(sum(c.values()) for c in site_report.by_class.values()) == injected


def test_functions_are_real(report, pennant_app):
    site_report, _ = report
    known = {f.name for f in pennant_app.functions.functions}
    assert set(site_report.by_function) <= known


def test_crashiest_functions_sorted(report):
    site_report, _ = report
    ranked = site_report.crashiest_functions(10)
    counts = [c for _, c in ranked]
    assert counts == sorted(counts, reverse=True)
    assert all(c > 0 for c in counts)


def test_crash_rate_bounds(report):
    site_report, _ = report
    for cls in INSTR_CLASSES:
        assert 0.0 <= site_report.crash_rate_of_class(cls) <= 1.0


def test_signals_match_crash_runs(report):
    site_report, campaign = report
    signals = sum(site_report.by_signal.values())
    with_signal = sum(1 for r in campaign.results if r.first_signal is not None)
    assert signals == with_signal


def test_render(report):
    site_report, _ = report
    text = site_report.render()
    assert "instr class" in text
    assert "flipped-bit position" in text


def test_requires_kept_results(pennant_app):
    campaign = run_campaign(pennant_app, 5, seed=1, config=None, keep_results=False)
    with pytest.raises(ValueError):
        analyze_sites(pennant_app, campaign)


def test_high_bits_crash_more(pennant_app):
    """Exponent/sign-range flips crash more than low-mantissa flips."""
    campaign = run_campaign(pennant_app, 120, seed=4, config=LETGO_E, keep_results=True)
    site_report = analyze_sites(pennant_app, campaign)
    low = site_report.by_bit_range.get("00-15 (low mantissa)")
    high = site_report.by_bit_range.get("48-63 (exponent/sign)")
    if low and high:
        low_rate = sum(v for o, v in low.items() if o.crash_origin) / sum(low.values())
        high_rate = sum(v for o, v in high.items() if o.crash_origin) / sum(high.values())
        assert high_rate >= low_rate
