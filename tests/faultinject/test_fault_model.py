"""Fault model: plan drawing, target selection, bit flips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faultinject import InjectionPlan, flip_bit, plan_injections, select_target
from repro.isa import Instr, Op, Program
from repro.isa.registers import SP
from repro.machine import CPU, Memory


def make_cpu():
    program = Program(instrs=[Instr(Op.HALT)], functions={"main": 0})
    return CPU(program, Memory())


def test_plan_validation():
    with pytest.raises(ValueError):
        InjectionPlan(dyn_index=0, bit=3, reg_choice=0.5)
    with pytest.raises(ValueError):
        InjectionPlan(dyn_index=1, bit=64, reg_choice=0.5)
    with pytest.raises(ValueError):
        InjectionPlan(dyn_index=1, bit=1, reg_choice=1.0)


def test_plan_injections_ranges():
    rng = np.random.default_rng(1)
    plans = plan_injections(rng, total_instret=1000, n=500)
    assert len(plans) == 500
    assert all(1 <= p.dyn_index <= 1000 for p in plans)
    assert all(0 <= p.bit < 64 for p in plans)
    assert len({p.dyn_index for p in plans}) > 300  # spread out


def test_plan_injections_deterministic():
    a = plan_injections(np.random.default_rng(7), 1000, 50)
    b = plan_injections(np.random.default_rng(7), 1000, 50)
    assert a == b


def test_plan_injections_empty_program():
    with pytest.raises(ValueError):
        plan_injections(np.random.default_rng(0), 0, 10)


def test_select_target_written_reg_priority():
    assert select_target(Instr(Op.ADD, rd=3, ra=1, rb=2), 0.99) == ("r", 3)
    assert select_target(Instr(Op.FLD, rd=4, ra=1), 0.0) == ("f", 4)


def test_select_target_store_picks_source():
    instr = Instr(Op.ST, rd=5, ra=6, imm=0)
    low = select_target(instr, 0.0)
    high = select_target(instr, 0.99)
    assert low in instr.read_regs() and high in instr.read_regs()
    assert low != high  # choice actually varies with reg_choice


def test_select_target_branch():
    assert select_target(Instr(Op.BEQZ, ra=2, imm=0), 0.5) == ("r", 2)


def test_select_target_none_for_jmp():
    assert select_target(Instr(Op.JMP, imm=0), 0.5) is None
    assert select_target(Instr(Op.NOP), 0.5) is None


def test_select_target_ret_hits_sp():
    assert select_target(Instr(Op.RET), 0.5) == ("r", SP)


@given(st.integers(-(2**63), 2**63 - 1), st.integers(0, 63))
@settings(max_examples=200)
def test_int_flip_involution(value, bit):
    cpu = make_cpu()
    cpu.iregs[3] = value
    flip_bit(cpu, "r", 3, bit)
    assert cpu.iregs[3] != value
    flip_bit(cpu, "r", 3, bit)
    assert cpu.iregs[3] == value


@given(
    st.floats(allow_nan=False, width=64),
    st.integers(0, 63),
)
@settings(max_examples=200)
def test_float_flip_involution(value, bit):
    cpu = make_cpu()
    cpu.fregs[3] = value
    flip_bit(cpu, "f", 3, bit)
    flip_bit(cpu, "f", 3, bit)
    assert cpu.fregs[3] == value or (
        np.isnan(cpu.fregs[3]) and np.isnan(value)
    )


def test_int_flip_sign_bit():
    cpu = make_cpu()
    cpu.iregs[1] = 0
    flip_bit(cpu, "r", 1, 63)
    assert cpu.iregs[1] == -(2**63)


def test_float_flip_sign_bit():
    cpu = make_cpu()
    cpu.fregs[1] = 1.0
    flip_bit(cpu, "f", 1, 63)
    assert cpu.fregs[1] == -1.0


def test_float_flip_exponent_explodes():
    cpu = make_cpu()
    cpu.fregs[1] = 1.0
    flip_bit(cpu, "f", 1, 62)  # top exponent bit of 1.0 -> huge value
    assert abs(cpu.fregs[1]) > 1e300
