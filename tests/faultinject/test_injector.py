"""Single-injection runs: placement, determinism, classification."""

import pytest

from repro.core import LETGO_E
from repro.faultinject import InjectionPlan, Outcome, run_injection


def plan(dyn_index, bit=62, reg_choice=0.0):
    return InjectionPlan(dyn_index=dyn_index, bit=bit, reg_choice=reg_choice)


def test_injection_deterministic(pennant_app):
    p = plan(5000, bit=40)
    a = run_injection(pennant_app, p, None)
    b = run_injection(pennant_app, p, None)
    assert a.outcome is b.outcome
    assert a.target_pc == b.target_pc
    assert a.target_reg == b.target_reg


def test_bit_zero_flip_often_benign(pennant_app):
    """A low-bit flip in an fp mantissa perturbs without crashing."""
    outcomes = set()
    for dyn in (3000, 9000, 15000):
        result = run_injection(pennant_app, plan(dyn, bit=0), None)
        outcomes.add(result.outcome)
    assert outcomes <= {
        Outcome.BENIGN,
        Outcome.SDC,
        Outcome.DETECTED,
        Outcome.CRASH,
        Outcome.HANG,
    }


def test_late_injection_near_end_mostly_benign(pennant_app):
    total = pennant_app.golden.instret
    result = run_injection(pennant_app, plan(total - 2, bit=1), None)
    # flipping the result of one of the last instructions: output already
    # produced, so this can only be benign (or NOT_INJECTED)
    assert result.outcome in (Outcome.BENIGN, Outcome.NOT_INJECTED)


def test_target_recorded(pennant_app):
    result = run_injection(pennant_app, plan(4000), None)
    assert result.target_pc is not None
    assert 0 <= result.target_pc < len(pennant_app.program.instrs)
    assert result.target_reg is not None
    bank, index = result.target_reg
    assert bank in ("r", "f") and 0 <= index < 16


def test_steps_recorded(pennant_app):
    result = run_injection(pennant_app, plan(4000), None)
    assert result.steps >= 4000


def test_crash_has_signal(pennant_app):
    """Flipping a high bit of an address register eventually crashes some run."""
    crashes = []
    for dyn in range(2000, 2200, 20):
        result = run_injection(pennant_app, plan(dyn, bit=45), None)
        if result.outcome is Outcome.CRASH:
            crashes.append(result)
    assert crashes, "expected at least one crash in this window"
    assert all(r.first_signal is not None for r in crashes)


def test_letgo_pairing_same_fault(pennant_app):
    """The same plan under LetGo engages exactly on baseline crashes."""
    for dyn in range(2000, 2200, 40):
        p = plan(dyn, bit=45)
        base = run_injection(pennant_app, p, None)
        letgo = run_injection(pennant_app, p, LETGO_E)
        if base.outcome is Outcome.CRASH:
            assert letgo.outcome.crash_origin
        else:
            assert not letgo.outcome.crash_origin
            assert letgo.outcome is base.outcome


def test_letgo_interventions_counted(pennant_app):
    for dyn in range(2000, 2400, 40):
        p = plan(dyn, bit=45)
        result = run_injection(pennant_app, p, LETGO_E)
        if result.outcome.continued or result.outcome is Outcome.DOUBLE_CRASH:
            assert result.interventions >= 1
        if result.outcome is Outcome.CRASH_UNHANDLED:
            assert result.interventions == 0
