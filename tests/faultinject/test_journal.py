"""Campaign journal: durability, identity, and duplicate detection."""

import json

import numpy as np
import pytest

from repro.errors import JournalError
from repro.faultinject import InjectionResult, Outcome, plan_injections
from repro.faultinject.journal import (
    JOURNAL_FORMAT,
    CampaignJournal,
    JournalHeader,
    plans_digest,
)

SEED = 5


@pytest.fixture
def plans():
    return plan_injections(np.random.default_rng(SEED), 100_000, 8)


@pytest.fixture
def header(plans):
    return JournalHeader.for_campaign("pennant", "LetGo-E", 8, SEED, plans)


def _result(plan, outcome=Outcome.BENIGN):
    return InjectionResult(outcome=outcome, plan=plan, steps=123)


def test_roundtrip(tmp_path, plans, header):
    path = tmp_path / "c.journal"
    journal = CampaignJournal.create(path, header)
    journal.record_shard([0, 1], [_result(plans[0]), _result(plans[1])])
    journal.record_shard([4], [_result(plans[4], Outcome.SDC)])
    journal.record_quarantine(2, plans[2], "RuntimeError('poison')", attempts=3)

    loaded = CampaignJournal.load(path)
    assert loaded.header == header
    assert loaded.completed_indices == {0, 1, 4}
    assert loaded.settled_indices == {0, 1, 2, 4}
    assert [idx for idx, _ in loaded.pairs()] == [0, 1, 4]
    assert loaded.pairs()[2][1].outcome is Outcome.SDC
    (record,) = loaded.quarantined
    assert record.index == 2 and record.plan == plans[2]
    assert record.attempts == 3 and "poison" in record.error


def test_every_append_is_durable_and_atomic(tmp_path, plans, header):
    """The on-disk file parses after every append; no temp litter."""
    path = tmp_path / "c.journal"
    journal = CampaignJournal.create(path, header)
    assert CampaignJournal.load(path).completed_indices == frozenset()
    for idx in range(3):
        journal.record_shard([idx], [_result(plans[idx])])
        assert CampaignJournal.load(path).completed_indices == set(range(idx + 1))
    assert [p.name for p in tmp_path.iterdir()] == ["c.journal"]


def test_create_refuses_existing(tmp_path, header):
    path = tmp_path / "c.journal"
    CampaignJournal.create(path, header)
    with pytest.raises(JournalError, match="already exists"):
        CampaignJournal.create(path, header)
    CampaignJournal.create(path, header, overwrite=True)


def test_duplicate_plan_rejected_on_append(tmp_path, plans, header):
    journal = CampaignJournal.create(tmp_path / "c.journal", header)
    journal.record_shard([0, 1], [_result(plans[0]), _result(plans[1])])
    with pytest.raises(JournalError, match="twice"):
        journal.record_shard([1], [_result(plans[1])])
    with pytest.raises(JournalError, match="twice"):
        journal.record_quarantine(0, plans[0], "boom", attempts=1)


def test_duplicate_plan_rejected_on_load(tmp_path, plans, header):
    """A journal doctored to repeat a shard must raise, not double-count."""
    path = tmp_path / "c.journal"
    journal = CampaignJournal.create(path, header)
    journal.record_shard([3], [_result(plans[3])])
    payload = json.loads(path.read_text())
    payload["shards"].append(payload["shards"][0])
    path.write_text(json.dumps(payload))
    with pytest.raises(JournalError, match="twice"):
        CampaignJournal.load(path)


def test_out_of_range_index_rejected(tmp_path, plans, header):
    journal = CampaignJournal.create(tmp_path / "c.journal", header)
    with pytest.raises(JournalError, match="outside"):
        journal.record_shard([8], [_result(plans[0])])


def test_shard_length_mismatch_rejected(tmp_path, plans, header):
    journal = CampaignJournal.create(tmp_path / "c.journal", header)
    with pytest.raises(JournalError, match="indices"):
        journal.record_shard([0, 1], [_result(plans[0])])


def test_verify_rejects_other_campaign(tmp_path, plans, header):
    journal = CampaignJournal.create(tmp_path / "c.journal", header)
    journal.verify(header)  # same campaign: fine
    other_seed = JournalHeader.for_campaign("pennant", "LetGo-E", 8, 99, plans)
    with pytest.raises(JournalError, match="seed"):
        journal.verify(other_seed)
    other_plans = plan_injections(np.random.default_rng(SEED + 1), 100_000, 8)
    shifted = JournalHeader.for_campaign("pennant", "LetGo-E", 8, SEED, other_plans)
    with pytest.raises(JournalError, match="plans"):
        journal.verify(shifted)


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "c.journal"
    with pytest.raises(JournalError, match="no journal"):
        CampaignJournal.load(path)
    path.write_text("{ not json")
    with pytest.raises(JournalError, match="unreadable"):
        CampaignJournal.load(path)
    path.write_text(json.dumps({"format": 99, "header": {}}))
    with pytest.raises(JournalError, match="format"):
        CampaignJournal.load(path)
    path.write_text(json.dumps({"format": JOURNAL_FORMAT, "header": {"bad": 1}}))
    with pytest.raises(JournalError, match="malformed"):
        CampaignJournal.load(path)


def test_plans_digest_pins_population(plans):
    assert plans_digest(plans) == plans_digest(list(plans))
    assert plans_digest(plans) != plans_digest(plans[:-1])
    reordered = [plans[1], plans[0], *plans[2:]]
    assert plans_digest(plans) != plans_digest(reordered)
