"""CampaignConfig: CLI parity, the deprecation shim, validation.

The api_redesign contract: one frozen config object is the single source
of truth for every campaign knob, the CLI derives its flags from the
dataclass fields (so the two surfaces cannot drift), and every old loose
keyword keeps working behind a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import argparse
import dataclasses

import pytest

from repro.cli import build_parser
from repro.faultinject import (
    CampaignConfig,
    CampaignEngine,
    add_campaign_arguments,
    campaign_config_from_args,
    run_campaign,
    run_campaign_engine,
    run_paired_campaigns,
)

FIELD_NAMES = {spec.name for spec in dataclasses.fields(CampaignConfig)}


def _campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="test")
    add_campaign_arguments(parser)
    return parser


# -- CLI parity --------------------------------------------------------------


def test_every_config_field_has_a_flag_and_vice_versa():
    parser = _campaign_parser()
    dests = {
        action.dest
        for action in parser._actions
        if action.dest != "help"
    }
    assert dests == FIELD_NAMES  # both directions at once


def test_cli_campaign_subcommand_exposes_all_config_fields():
    parser = build_parser()
    args = parser.parse_args(["campaign", "--app", "pennant"])
    for name in FIELD_NAMES:
        assert hasattr(args, name), f"campaign subcommand lost --{name}"


def test_parsed_defaults_round_trip_into_a_config():
    args = _campaign_parser().parse_args([])
    cfg = campaign_config_from_args(args)
    # jobs is the one deliberate CLI-vs-API divergence: the CLI defaults
    # to all cores (None), the library to serial determinism (1).
    assert cfg.jobs is None
    assert dataclasses.replace(cfg, jobs=1) == CampaignConfig()


def test_flags_parse_types_and_groups():
    parser = _campaign_parser()
    args = parser.parse_args(
        [
            "--jobs", "3",
            "--ladder-interval", "0",
            "--wall-clock-limit", "1.5",
            "--keep-results",
            "--no-serial-fallback",
            "--telemetry",
            "--trace", "t.jsonl",
            "--probe-interval", "100",
            "--journal", "j.path",
        ]
    )
    cfg = campaign_config_from_args(args)
    assert cfg.jobs == 3
    assert cfg.ladder_interval == 0
    assert cfg.wall_clock_limit == 1.5
    assert cfg.keep_results is True
    assert cfg.serial_fallback is False
    assert cfg.telemetry is True and cfg.trace == "t.jsonl"
    assert cfg.probe_interval == 100
    assert cfg.journal == "j.path" and cfg.resume is None


def test_journal_and_resume_flags_are_mutually_exclusive():
    parser = _campaign_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["--journal", "a", "--resume", "b"])


def test_negative_ladder_interval_rejected_at_parse_time():
    parser = _campaign_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["--ladder-interval", "-1"])


def test_every_field_has_help_text():
    for spec in dataclasses.fields(CampaignConfig):
        assert spec.metadata.get("help"), f"{spec.name} has no help metadata"


# -- the config object -------------------------------------------------------


def test_config_is_frozen():
    cfg = CampaignConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.jobs = 8


def test_config_validation():
    with pytest.raises(ValueError, match="shard_size"):
        CampaignConfig(shard_size=0)
    with pytest.raises(ValueError, match="probe_interval"):
        CampaignConfig(probe_interval=-1)
    with pytest.raises(ValueError, match="journal"):
        CampaignConfig(journal="a", resume="b")


def test_telemetry_enabled_implied_by_outputs():
    assert not CampaignConfig().telemetry_enabled
    assert CampaignConfig(telemetry=True).telemetry_enabled
    assert CampaignConfig(trace="t.jsonl").telemetry_enabled
    assert CampaignConfig(chrome_trace="c.json").telemetry_enabled
    assert CampaignConfig(probe_interval=10).telemetry_enabled


# -- the deprecation shim ----------------------------------------------------


def test_engine_accepts_config_object_silently():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        engine = CampaignEngine(config=CampaignConfig(jobs=2, max_retries=0))
    assert engine.jobs == 2 and engine.max_retries == 0


def test_legacy_engine_kwargs_warn_and_still_work():
    with pytest.deprecated_call(match="CampaignEngine"):
        engine = CampaignEngine(jobs=2, shard_size=5)
    assert engine.jobs == 2 and engine.shard_size == 5
    assert engine.campaign_config.shard_size == 5


def test_legacy_kwargs_override_supplied_config():
    with pytest.deprecated_call():
        engine = CampaignEngine(jobs=3, config=CampaignConfig(jobs=1))
    assert engine.jobs == 3


def test_run_campaign_legacy_kwargs_warn(pennant_app):
    with pytest.deprecated_call(match="run_campaign"):
        result = run_campaign(pennant_app, 2, 0, jobs=1)
    assert result.n == 2


def test_run_campaign_engine_legacy_kwargs_warn(pennant_app):
    with pytest.deprecated_call(match="run_campaign_engine"):
        result = run_campaign_engine(pennant_app, 2, 0, keep_results=True)
    assert len(result.results) == 2


def test_run_paired_campaigns_legacy_kwargs_warn(pennant_app):
    with pytest.deprecated_call(match="run_paired_campaigns"):
        out = run_paired_campaigns(pennant_app, 2, 0, [None], jobs=1)
    assert out["baseline"].n == 2


def test_config_spelling_matches_legacy_spelling(pennant_app):
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = run_campaign(pennant_app, 4, 7, keep_results=True)
    modern = run_campaign(
        pennant_app, 4, 7, campaign=CampaignConfig(keep_results=True)
    )
    assert legacy.counts == modern.counts
    assert len(legacy.results) == len(modern.results) == 4
