"""The distributed conjugate-gradient proxy."""

import math

import numpy as np
import pytest

from repro.core import LETGO_E
from repro.parallel import ClusterCRParams, ClusterPolicy, drive_cluster
from repro.parallel.cg import CgApp


@pytest.fixture(scope="module")
def cg():
    app = CgApp(size=4)
    app.golden
    return app


def test_converges(cg):
    rank0 = cg.golden_outputs[0]
    iterations, residual = rank0[0][1], rank0[1][1]
    assert 0 < iterations < cg.max_iters
    assert residual < 1e-10


def test_matches_direct_solve(cg):
    n = cg.size * cg.n_local
    laplacian = 2 * np.eye(n) - np.eye(n, k=1) - np.eye(n, k=-1)
    x = np.arange(1, n + 1) / (n + 1)
    rhs = x * (1 - x)
    reference = np.linalg.solve(laplacian, rhs)
    solution = np.array(cg.sdc_slice(cg.golden_outputs))
    assert np.max(np.abs(solution - reference)) < 1e-9


def test_acceptance(cg):
    assert cg.acceptance_check(cg.golden_outputs)
    assert cg.matches_golden(cg.golden_outputs)


def test_acceptance_rejects_asymmetry(cg):
    outputs = [list(s) for s in cg.golden_outputs]
    kind, value = outputs[3][-1]
    outputs[3][-1] = (kind, value + 1.0)
    assert not cg.acceptance_check(outputs)


def test_acceptance_rejects_bad_residual(cg):
    outputs = [list(s) for s in cg.golden_outputs]
    outputs[0][1] = ("f", 1.0)
    assert not cg.acceptance_check(outputs)


def test_size_independence():
    """2-rank and 4-rank decompositions of the same system agree."""
    two = CgApp(size=2, n_local=24)
    four = CgApp(size=4, n_local=12)
    a = np.array(two.sdc_slice(two.golden_outputs))
    b = np.array(four.sdc_slice(four.golden_outputs))
    assert np.max(np.abs(a - b)) < 1e-8


def test_under_coordinated_cr(cg):
    params = ClusterCRParams(
        interval=25_000, t_chk=3_000, t_letgo=100, mtbf_faults=20_000.0
    )
    completed = 0
    for seed in range(4):
        result = drive_cluster(
            cg, params, ClusterPolicy.CR_LETGO, seed=seed, letgo=LETGO_E
        )
        completed += result.completed
    assert completed >= 3


def test_math_isfinite_guard(cg):
    outputs = [list(s) for s in cg.golden_outputs]
    outputs[1][0] = ("f", math.inf)
    assert not cg.acceptance_check(outputs)
