"""Coordinated cluster C/R driver."""

import numpy as np
import pytest

from repro.core import LETGO_E
from repro.errors import SimulationError
from repro.parallel import (
    ClusterCRParams,
    ClusterPolicy,
    CoordinatedRun,
    HeatApp,
    drive_cluster,
    restore_cluster,
    take_cluster_snapshot,
)

PARAMS = ClusterCRParams(
    interval=20_000, t_chk=4_000, t_sync=400, t_letgo=100, mtbf_faults=15_000.0
)
CALM = ClusterCRParams(interval=40_000, t_chk=1_000, mtbf_faults=10**9)


@pytest.fixture(scope="module")
def heat():
    app = HeatApp(size=4)
    app.golden
    return app


def test_params_validation():
    with pytest.raises(SimulationError):
        ClusterCRParams(interval=0, t_chk=1)


def test_letgo_policy_needs_config(heat):
    with pytest.raises(SimulationError):
        CoordinatedRun(heat, PARAMS, ClusterPolicy.CR_LETGO, seed=0)


def test_cluster_snapshot_roundtrip(heat):
    cluster = heat.make_cluster()
    cluster.run(5_000)
    snap = take_cluster_snapshot(cluster)
    in_flight = cluster.network.in_flight()
    # run on, then roll back and check everything resumed correctly
    cluster.run(5_000)
    restore_cluster(cluster, snap)
    assert cluster.network.in_flight() == in_flight
    event = cluster.run(10**8)
    assert event.kind == "exited"
    assert cluster.outputs() == heat.golden_outputs


def test_fault_free_run(heat):
    result = drive_cluster(heat, CALM, ClusterPolicy.CR, seed=1)
    assert result.completed and result.outcome == "benign"
    assert result.faults_injected == 0
    assert result.rollbacks == 0
    assert result.cost == heat.golden_steps + result.checkpoints * CALM.t_chk


def test_none_policy_no_checkpoints(heat):
    result = drive_cluster(heat, CALM, ClusterPolicy.NONE, seed=1)
    assert result.completed
    assert result.checkpoints == 0
    assert result.cost == heat.golden_steps


def test_deterministic(heat):
    a = drive_cluster(heat, PARAMS, ClusterPolicy.CR_LETGO, seed=7, letgo=LETGO_E)
    b = drive_cluster(heat, PARAMS, ClusterPolicy.CR_LETGO, seed=7, letgo=LETGO_E)
    assert a.cost == b.cost and a.outcome == b.outcome


def test_cr_completes_under_faults(heat):
    completed = 0
    for seed in range(6):
        result = drive_cluster(heat, PARAMS, ClusterPolicy.CR, seed=seed)
        completed += result.completed
    assert completed >= 5


def test_letgo_not_worse_than_cr(heat):
    cr = np.mean(
        [drive_cluster(heat, PARAMS, ClusterPolicy.CR, seed=s).efficiency
         for s in range(6)]
    )
    lg = np.mean(
        [
            drive_cluster(
                heat, PARAMS, ClusterPolicy.CR_LETGO, seed=s, letgo=LETGO_E
            ).efficiency
            for s in range(6)
        ]
    )
    assert lg >= cr - 0.03


def test_unprotected_cluster_can_die(heat):
    hot = ClusterCRParams(interval=20_000, t_chk=4_000, mtbf_faults=4_000.0)
    outcomes = [
        drive_cluster(heat, hot, ClusterPolicy.NONE, seed=s).outcome
        for s in range(6)
    ]
    assert any(o in ("dead", "deadlocked") for o in outcomes)


def test_poisoned_checkpoint_restart_bounded(heat):
    """No run should loop forever on a corrupt checkpoint."""
    hot = ClusterCRParams(
        interval=15_000, t_chk=3_000, t_letgo=100, mtbf_faults=6_000.0
    )
    for seed in range(4):
        result = drive_cluster(heat, hot, ClusterPolicy.CR, seed=seed)
        # either completes, or gives up within the budget with few rollbacks
        assert result.rollbacks < 200
