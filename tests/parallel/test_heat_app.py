"""The SPMD heat-diffusion proxy app."""

import math

import pytest

from repro.parallel import HeatApp


@pytest.fixture(scope="module")
def heat():
    app = HeatApp(size=4)
    app.golden  # warm
    return app


def test_golden_completes(heat):
    outputs, steps = heat.golden
    assert len(outputs) == 4
    assert steps > 10_000


def test_conservation(heat):
    rank0 = heat.golden_outputs[0]
    total0, totalf = rank0[0][1], rank0[1][1]
    assert math.isclose(total0, heat.expected_total(), rel_tol=1e-12)
    assert math.isclose(totalf, total0, rel_tol=1e-12)


def test_acceptance_passes_golden(heat):
    assert heat.acceptance_check(heat.golden_outputs)
    assert heat.matches_golden(heat.golden_outputs)


def test_acceptance_rejects_malformed(heat):
    outputs = [list(s) for s in heat.golden_outputs]
    assert not heat.acceptance_check(outputs[:-1])        # missing rank
    truncated = [list(s) for s in outputs]
    truncated[2] = truncated[2][:-1]
    assert not heat.acceptance_check(truncated)
    poisoned = [list(s) for s in outputs]
    poisoned[1] = [(k, math.nan) for k, _ in poisoned[1]]
    assert not heat.acceptance_check(poisoned)


def test_acceptance_rejects_conservation_violation(heat):
    outputs = [list(s) for s in heat.golden_outputs]
    kind, totalf = outputs[0][1]
    outputs[0][1] = (kind, totalf * 1.001)
    assert not heat.acceptance_check(outputs)


def test_solution_smooths_over_time(heat):
    """Diffusion flattens the hump: final spread < initial spread."""
    field = heat.sdc_slice(heat.golden_outputs)
    assert max(field) - min(field) < 1.0  # initial profile spans 1.0


def test_solution_symmetric(heat):
    field = heat.sdc_slice(heat.golden_outputs)
    n = len(field)
    asym = max(abs(field[i] - field[n - 1 - i]) for i in range(n))
    assert asym < 1e-9


def test_different_sizes_agree_on_physics():
    """2 ranks and 4 ranks of the same global problem: same totals."""
    two = HeatApp(size=2, n_local=24)
    four = HeatApp(size=4, n_local=12)
    t2 = two.golden_outputs[0][1][1]
    t4 = four.golden_outputs[0][1][1]
    assert math.isclose(t2, t4, rel_tol=1e-9)
    # and the same final field
    f2 = two.sdc_slice(two.golden_outputs)
    f4 = four.sdc_slice(four.golden_outputs)
    assert max(abs(a - b) for a, b in zip(f2, f4)) < 1e-9
