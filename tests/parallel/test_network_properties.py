"""Property-based tests of the network and cluster snapshots."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cluster import Network

MESSAGES = st.lists(
    st.tuples(
        st.integers(0, 3),                # src
        st.integers(0, 3),                # dst
        st.integers(0, (1 << 64) - 1),    # pattern
    ),
    max_size=40,
)


@given(MESSAGES)
@settings(max_examples=100)
def test_fifo_per_channel(messages):
    """Each (src, dst) channel delivers in send order."""
    net = Network(4)
    per_channel: dict[tuple[int, int], list[int]] = {}
    for src, dst, pattern in messages:
        net.send(src, dst, pattern)
        per_channel.setdefault((src, dst), []).append(pattern)
    for (src, dst), expected in per_channel.items():
        received = []
        while True:
            value = net.recv(dst, src)
            if value is None:
                break
            received.append(value)
        assert received == expected


@given(MESSAGES)
@settings(max_examples=100)
def test_in_flight_count(messages):
    net = Network(4)
    for src, dst, pattern in messages:
        net.send(src, dst, pattern)
    assert net.in_flight() == len(messages)


@given(MESSAGES, st.integers(0, 10))
@settings(max_examples=100)
def test_capture_reset_is_lossless(messages, drain):
    net = Network(4)
    for src, dst, pattern in messages:
        net.send(src, dst, pattern)
    state = net.capture()
    # drain some messages, then reset: contents must be restored exactly
    for _ in range(drain):
        for dst in range(4):
            for src in range(4):
                net.recv(dst, src)
    net.reset(state)
    assert net.in_flight() == len(messages)
    # and capture is idempotent
    assert net.capture() == state


@given(st.integers(-5, 10))
def test_valid_rank_bounds(rank):
    net = Network(4)
    assert net.valid_rank(rank) == (0 <= rank < 4)
