"""Cluster scheduling + message passing."""

import pytest

from repro.errors import SimulationError
from repro.lang import compile_source
from repro.machine import Process, Signal
from repro.machine.cluster import Cluster, Network

RING = """
func main() -> int {
    var int me = myrank();
    var int np = nranks();
    var int nxt = me + 1;
    if (nxt == np) { nxt = 0; }
    var int prev = me - 1;
    if (prev < 0) { prev = np - 1; }
    var int tok;
    if (me == 0) {
        sendi(nxt, 100);
        tok = recvi(prev);
        out(tok);
    } else {
        tok = recvi(prev);
        sendi(nxt, tok + me);
    }
    return 0;
}
"""


@pytest.fixture(scope="module")
def ring_program():
    return compile_source(RING, "ring")


def test_network_basics():
    net = Network(3)
    assert net.valid_rank(0) and net.valid_rank(2)
    assert not net.valid_rank(3) and not net.valid_rank(-1)
    net.send(0, 1, 42)
    net.send(0, 1, 43)
    assert net.pending(1, 0) == 2
    assert net.recv(1, 0) == 42
    assert net.recv(1, 0) == 43
    assert net.recv(1, 0) is None
    assert net.in_flight() == 0


def test_network_capture_reset():
    net = Network(2)
    net.send(0, 1, 7)
    state = net.capture()
    assert net.recv(1, 0) == 7
    net.reset(state)
    assert net.recv(1, 0) == 7


def test_bad_cluster_size():
    with pytest.raises(SimulationError):
        Network(0)


@pytest.mark.parametrize("size", [2, 3, 5, 8])
def test_ring_token(ring_program, size):
    cluster = Cluster(ring_program, size)
    event = cluster.run(10**7)
    assert event.kind == "exited"
    expected = 100 + sum(range(1, size))
    assert cluster.outputs()[0] == [("i", expected)]


def test_ring_deterministic(ring_program):
    a = Cluster(ring_program, 4)
    b = Cluster(ring_program, 4)
    a.run(10**7)
    b.run(10**7)
    assert a.outputs() == b.outputs()
    assert a.total_steps() == b.total_steps()


def test_deadlock_detected():
    program = compile_source(
        "func main() -> int { var int v = recvi(myrank()); out(v); return 0; }",
        "deadlock",
    )
    cluster = Cluster(program, 2)
    event = cluster.run(10**6)
    assert event.kind == "deadlock"


def test_trap_reports_rank():
    # ranks > 0 divide by zero; rank 0 would finish
    program = compile_source(
        """
        func main() -> int {
            var int z = 0;
            if (myrank() > 0) { out(1 / z); }
            return 0;
        }
        """,
        "trapper",
    )
    cluster = Cluster(program, 3)
    event = cluster.run(10**6)
    assert event.kind == "trap"
    assert event.rank in (1, 2)
    assert event.trap.signal is Signal.SIGFPE


def test_send_to_invalid_rank_is_sigbus():
    program = compile_source(
        "func main() -> int { sendi(99, 1); return 0; }", "badrank"
    )
    cluster = Cluster(program, 2)
    event = cluster.run(10**6)
    assert event.kind == "trap"
    assert event.trap.signal is Signal.SIGBUS


def test_comm_outside_cluster_is_sigbus():
    program = compile_source(
        "func main() -> int { sendi(0, 1); return 0; }", "solo"
    )
    process = Process.load(program)
    result = process.run(10**4)
    assert result.reason == "terminated"
    assert result.signal is Signal.SIGBUS


def test_rank_nranks_outside_cluster():
    program = compile_source(
        "func main() -> int { out(myrank()); out(nranks()); return 0; }", "solo2"
    )
    process = Process.load(program)
    process.run(10**4)
    assert process.output_values() == [0, 1]


def test_budget_event(ring_program):
    cluster = Cluster(ring_program, 4)
    event = cluster.run(10)
    assert event.kind == "budget"
    assert event.steps <= 10 + 4  # quantum slicing slack


def test_replace_process(ring_program):
    cluster = Cluster(ring_program, 2)
    cluster.run(50)
    fresh = Process.load(ring_program)
    cluster.replace_process(0, fresh)
    assert cluster.process(0) is fresh
    assert fresh.cpu.rank == 0
    assert fresh.cpu.network is cluster.network
    event = cluster.run(10**7)
    assert event.kind in ("exited", "deadlock")  # old messages may misalign
