"""MiniC semantic analysis: typing rules and rejections."""

import pytest

from repro.errors import CompileError
from repro.lang.ast_nodes import Type
from repro.lang.parser import parse
from repro.lang.semantics import analyze


def check(source):
    return analyze(parse(source))


MAIN = "func main() -> int { return 0; }"


def test_minimal_module():
    info = check(MAIN)
    assert "main" in info.funcs


def test_missing_main():
    with pytest.raises(CompileError, match="main"):
        check("func f() -> int { return 0; }")


def test_main_signature_enforced():
    with pytest.raises(CompileError):
        check("func main(int a) -> int { return 0; }")
    with pytest.raises(CompileError):
        check("func main() -> float { return 0.0; }")


def test_global_symbols():
    info = check("global int n = 3; global float a[4];" + MAIN)
    assert info.globals["n"].ty is Type.INT and not info.globals["n"].is_array
    assert info.globals["a"].is_array and info.globals["a"].cells == 4


def test_duplicate_global():
    with pytest.raises(CompileError, match="duplicate global"):
        check("global int x; global float x;" + MAIN)


def test_duplicate_function():
    with pytest.raises(CompileError, match="duplicate function"):
        check("func f() -> int { return 0; } func f() -> int { return 0; }" + MAIN)


def test_intrinsic_names_reserved():
    with pytest.raises(CompileError, match="reserved"):
        check("global int sqrt;" + MAIN)
    with pytest.raises(CompileError, match="reserved"):
        check("func fabs() -> int { return 0; }" + MAIN)


def test_local_types_annotated():
    info = check(
        "func main() -> int { var float x = 1.5; var int y = 2; return y; }"
    )
    scope = info.locals_of("main")
    assert scope["x"].ty is Type.FLOAT
    assert scope["y"].ty is Type.INT
    assert info.n_locals("main") == 2


@pytest.mark.parametrize(
    "body,fragment",
    [
        ("x = 1;", "undeclared"),
        ("var int x = 1.0;", "initializer"),
        ("var int x; x = 1.5;", "cannot assign"),
        ("var int x; var int x;", "duplicate local"),
        ("var float f; if (f) { }", "condition must be int"),
        ("var int a; a = 1 + 2.0;", "mixed types"),
        ("var float a; a = 1.0 % 2.0;", "integer-only"),
        ("var float a; var int b; b = a && 1;", "needs int"),
        ("var float a; var int b; b = !a;", "'!' needs an int"),
        ("break;", "outside a loop"),
        ("continue;", "outside a loop"),
        ("g(1);", "undefined function"),
        ("out(sqrt(2));", "argument is int"),
        ("out(sqrt(1.0, 2.0));", "takes 1"),
        ("1 + 2;", "must be calls"),
        ("return 1.5;", "return type"),
        ("return;", "must carry a value"),
    ],
)
def test_rejections(body, fragment):
    source = f"func main() -> int {{ {body} return 0; }}"
    with pytest.raises(CompileError) as info:
        check(source)
    assert fragment in str(info.value)


def test_unreachable_after_return():
    with pytest.raises(CompileError, match="unreachable"):
        check("func main() -> int { return 0; out(1); }")


def test_must_return_on_all_paths():
    with pytest.raises(CompileError, match="fall off"):
        check("func f(int a) -> int { if (a) { return 1; } } " + MAIN)


def test_if_else_both_return_ok():
    check("func f(int a) -> int { if (a) { return 1; } else { return 2; } } " + MAIN)


def test_array_usage_rules():
    with pytest.raises(CompileError, match="needs an index"):
        check("global float a[4]; func main() -> int { out(a); return 0; }")
    with pytest.raises(CompileError, match="scalar"):
        check("global float s; func main() -> int { out(s[0]); return 0; }")
    with pytest.raises(CompileError, match="index must be int"):
        check("global float a[4]; func main() -> int { out(a[1.0]); return 0; }")


def test_shadowing_global_rejected():
    with pytest.raises(CompileError, match="shadows"):
        check("global int n; func main() -> int { var int n; return 0; }")


def test_call_type_checking():
    source = (
        "func f(int a, float b) -> float { return b; }"
        "func main() -> int { out(f(1, 2.0)); return 0; }"
    )
    check(source)
    with pytest.raises(CompileError, match="argument is"):
        check(
            "func f(int a) -> int { return a; }"
            "func main() -> int { out(f(1.0)); return 0; }"
        )
    with pytest.raises(CompileError, match="takes 1"):
        check(
            "func f(int a) -> int { return a; }"
            "func main() -> int { out(f(1, 2)); return 0; }"
        )


def test_expression_types_annotated():
    module = parse("func main() -> int { var float x; x = 1.0 + 2.0; return 0; }")
    analyze(module)
    assign = module.funcs[0].body.stmts[1]
    assert assign.value.ty is Type.FLOAT
    cmp_module = parse("func main() -> int { var int b; b = 1.0 < 2.0; return 0; }")
    analyze(cmp_module)
    assert cmp_module.funcs[0].body.stmts[1].value.ty is Type.INT
