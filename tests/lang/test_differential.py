"""Differential testing: random MiniC expressions vs a Python reference.

Hypothesis generates expression trees; each is compiled, executed on the
machine, and compared against direct evaluation with 64-bit wrapping
semantics.  This exercises the lexer, parser, type checker, code
generator (scratch-stack discipline, short-circuiting), assembler, and
CPU in one shot.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import compile_source
from repro.machine import Process

MASK = (1 << 64) - 1


def wrap(x: int) -> int:
    x &= MASK
    return x - (1 << 64) if x >= (1 << 63) else x


# -- expression AST for the generator ------------------------------------


class E:
    """Reference expression node: renders MiniC and evaluates in Python."""

    def __init__(self, text: str, value: int):
        self.text = text
        self.value = value


SMALL = st.integers(-50, 50)


@st.composite
def int_exprs(draw, depth=0):
    if depth >= 4:
        n = draw(SMALL)
        return E(f"({n})" if n < 0 else str(n), n)
    kind = draw(
        st.sampled_from(
            ["lit", "add", "sub", "mul", "div", "mod", "cmp", "and", "or", "not", "neg"]
        )
    )
    if kind == "lit":
        n = draw(SMALL)
        return E(f"({n})" if n < 0 else str(n), n)
    if kind in ("add", "sub", "mul"):
        a = draw(int_exprs(depth=depth + 1))
        b = draw(int_exprs(depth=depth + 1))
        op = {"add": "+", "sub": "-", "mul": "*"}[kind]
        value = wrap({"add": a.value + b.value, "sub": a.value - b.value, "mul": a.value * b.value}[kind])
        return E(f"({a.text} {op} {b.text})", value)
    if kind in ("div", "mod"):
        a = draw(int_exprs(depth=depth + 1))
        b = draw(int_exprs(depth=depth + 1))
        if b.value == 0:
            return a  # avoid SIGFPE in the reference population
        q = abs(a.value) // abs(b.value)
        if (a.value < 0) != (b.value < 0):
            q = -q
        value = wrap(q) if kind == "div" else wrap(a.value - q * b.value)
        op = "/" if kind == "div" else "%"
        return E(f"({a.text} {op} {b.text})", value)
    if kind == "cmp":
        a = draw(int_exprs(depth=depth + 1))
        b = draw(int_exprs(depth=depth + 1))
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        value = int(
            {
                "<": a.value < b.value,
                "<=": a.value <= b.value,
                ">": a.value > b.value,
                ">=": a.value >= b.value,
                "==": a.value == b.value,
                "!=": a.value != b.value,
            }[op]
        )
        return E(f"({a.text} {op} {b.text})", value)
    if kind in ("and", "or"):
        a = draw(int_exprs(depth=depth + 1))
        b = draw(int_exprs(depth=depth + 1))
        if kind == "and":
            value = int(bool(a.value) and bool(b.value))
            return E(f"({a.text} && {b.text})", value)
        value = int(bool(a.value) or bool(b.value))
        return E(f"({a.text} || {b.text})", value)
    if kind == "not":
        a = draw(int_exprs(depth=depth + 1))
        return E(f"(!{a.text})", int(a.value == 0))
    a = draw(int_exprs(depth=depth + 1))
    return E(f"(-{a.text})", wrap(-a.value))


@given(int_exprs())
@settings(max_examples=120, deadline=None)
def test_int_expression_differential(expr):
    source = f"func main() -> int {{ out({expr.text}); return 0; }}"
    process = Process.load(compile_source(source))
    result = process.run(10**6)
    assert result.reason == "exited", f"{expr.text}: {result}"
    assert process.output_values() == [expr.value], expr.text


@st.composite
def float_exprs(draw, depth=0):
    if depth >= 4:
        v = draw(st.floats(-100, 100, allow_nan=False))
        return E(f"({v!r})", v)
    kind = draw(st.sampled_from(["lit", "add", "sub", "mul", "neg", "fabs", "fmin"]))
    if kind == "lit":
        v = draw(st.floats(-100, 100, allow_nan=False))
        return E(f"({v!r})", v)
    if kind in ("add", "sub", "mul"):
        a = draw(float_exprs(depth=depth + 1))
        b = draw(float_exprs(depth=depth + 1))
        op = {"add": "+", "sub": "-", "mul": "*"}[kind]
        value = {"add": a.value + b.value, "sub": a.value - b.value, "mul": a.value * b.value}[kind]
        return E(f"({a.text} {op} {b.text})", value)
    if kind == "neg":
        a = draw(float_exprs(depth=depth + 1))
        return E(f"(-{a.text})", -a.value)
    if kind == "fabs":
        a = draw(float_exprs(depth=depth + 1))
        return E(f"fabs({a.text})", abs(a.value))
    a = draw(float_exprs(depth=depth + 1))
    b = draw(float_exprs(depth=depth + 1))
    value = a.value if a.value < b.value else b.value
    return E(f"fmin({a.text}, {b.text})", value)


@given(float_exprs())
@settings(max_examples=120, deadline=None)
def test_float_expression_differential(expr):
    source = f"func main() -> int {{ out({expr.text}); return 0; }}"
    process = Process.load(compile_source(source))
    result = process.run(10**6)
    assert result.reason == "exited", f"{expr.text}: {result}"
    (value,) = process.output_values()
    assert value == expr.value, expr.text


@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_array_sum_differential(values):
    n = len(values)
    assigns = "\n".join(f"a[{i}] = {v};" for i, v in enumerate(values))
    source = f"""
    global int a[{n}];
    func main() -> int {{
        var int i;
        var int s = 0;
        {assigns}
        for (i = 0; i < {n}; i = i + 1) {{ s = s + a[i]; }}
        out(s);
        return 0;
    }}
    """
    process = Process.load(compile_source(source))
    process.run(10**6)
    assert process.output_values() == [sum(values)]


@given(st.integers(0, 12), st.integers(0, 12))
@settings(max_examples=40, deadline=None)
def test_recursive_ackermann_like(m, n):
    """Deep call stacks: compile-and-run a two-argument recursion."""
    source = """
    func weird(int a, int b) -> int {
        if (a <= 0) { return b + 1; }
        if (b <= 0) { return weird(a - 1, 1); }
        return weird(a - 1, b - 1) + 1;
    }
    func main() -> int { out(weird(%d, %d)); return 0; }
    """ % (m, n)

    def reference(a, b):
        if a <= 0:
            return b + 1
        if b <= 0:
            return reference(a - 1, 1)
        return reference(a - 1, b - 1) + 1

    process = Process.load(compile_source(source))
    result = process.run(10**7)
    assert result.reason == "exited"
    assert process.output_values() == [reference(m, n)]
