"""MiniC lexer."""

import pytest

from repro.errors import CompileError
from repro.lang.lexer import Tok, tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]


def test_empty_gives_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is Tok.EOF


def test_keywords_vs_idents():
    tokens = kinds("func foo while whileish")
    assert tokens == [
        (Tok.KW, "func"),
        (Tok.IDENT, "foo"),
        (Tok.KW, "while"),
        (Tok.IDENT, "whileish"),
    ]


def test_int_literals():
    tokens = kinds("0 42 0x1F")
    assert tokens == [(Tok.INT, 0), (Tok.INT, 42), (Tok.INT, 31)]


def test_float_literals():
    tokens = kinds("1.5 0.0 2e3 1.5e-2 .5")
    values = [v for _, v in tokens]
    assert values == [1.5, 0.0, 2000.0, 0.015, 0.5]
    assert all(k is Tok.FLOAT for k, _ in tokens)


def test_int_then_member_like_is_float():
    # "1." is not valid here; "1.0" is
    assert kinds("1.0")[0] == (Tok.FLOAT, 1.0)


def test_operators_longest_match():
    tokens = [v for _, v in kinds("a<=b==c&&d||e!=f->g")]
    assert "<=" in tokens and "==" in tokens and "&&" in tokens
    assert "||" in tokens and "!=" in tokens and "->" in tokens


def test_line_numbers():
    tokens = tokenize("a\nb\n\nc")
    assert [t.line for t in tokens[:-1]] == [1, 2, 4]


def test_line_comments():
    assert kinds("a // comment\nb") == [(Tok.IDENT, "a"), (Tok.IDENT, "b")]


def test_block_comments():
    assert kinds("a /* x\ny */ b") == [(Tok.IDENT, "a"), (Tok.IDENT, "b")]
    tokens = tokenize("a /* x\ny */ b")
    assert tokens[1].line == 2


def test_unterminated_block_comment():
    with pytest.raises(CompileError):
        tokenize("a /* never ends")


def test_unexpected_character():
    with pytest.raises(CompileError) as info:
        tokenize("a $ b")
    assert "$" in str(info.value)


def test_bad_hex():
    with pytest.raises(CompileError):
        tokenize("0x")


def test_token_helpers():
    token = tokenize("while")[0]
    assert token.is_kw("while")
    assert not token.is_kw("for")
    punct = tokenize("->")[0]
    assert punct.is_punct("->")
    assert not punct.is_punct("-")
