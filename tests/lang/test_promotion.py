"""Register promotion: hot locals live in callee-saved registers."""

from repro.isa import Op
from repro.isa.registers import int_reg_index
from repro.lang import compile_unit
from repro.lang.codegen import FLOAT_PROMOTE_REGS, INT_PROMOTE_REGS
from repro.machine import Process

LOOP_SRC = """
func main() -> int {
    var int i;
    var float s = 0.0;
    for (i = 0; i < 100; i = i + 1) {
        s = s + float(i);
    }
    out(s);
    out(i);
    return 0;
}
"""


def test_loop_variable_promoted():
    unit = compile_unit(LOOP_SRC)
    text = unit.asm_text
    # the loop counter must live in a promotion register: no ld/st of a
    # bp-relative slot inside the loop for i
    assert any(f"mov {INT_PROMOTE_REGS[0]}" in line or f"mov r1, {INT_PROMOTE_REGS[0]}" in line
               for line in text.splitlines())


def test_promoted_program_correct():
    process = Process.load(compile_unit(LOOP_SRC).program)
    process.run(10**6)
    assert process.output_values() == [4950.0, 100]


def test_float_accumulator_promoted():
    unit = compile_unit(LOOP_SRC)
    assert FLOAT_PROMOTE_REGS[0] in unit.asm_text


def test_callee_saves_promotion_registers():
    """A callee using promotion regs must not clobber the caller's."""
    source = """
    func burn() -> int {
        var int k;
        var int t = 0;
        for (k = 0; k < 10; k = k + 1) { t = t + k; }
        return t;
    }
    func main() -> int {
        var int i;
        var int s = 0;
        for (i = 0; i < 5; i = i + 1) {
            s = s + burn();     // burn() promotes k/t to the same regs
        }
        out(s);
        out(i);
        return 0;
    }
    """
    process = Process.load(compile_unit(source).program)
    process.run(10**6)
    assert process.output_values() == [225, 5]


def test_prologue_pushes_promoted_regs():
    unit = compile_unit(LOOP_SRC)
    program = unit.program
    main_pc = program.functions["main"]
    # after push bp / mov / subi, promoted saves follow
    ops = [program.instrs[main_pc + k].op for k in range(6)]
    assert ops[0] is Op.PUSH and ops[1] is Op.MOV and ops[2] is Op.SUBI
    assert Op.PUSH in ops[3:] or Op.FPUSH in ops[3:]


def test_promoted_regs_are_callee_saved_set():
    for reg in INT_PROMOTE_REGS:
        index = int_reg_index(reg)
        assert index not in (14, 15)  # never sp/bp
        assert index not in range(1, 8)  # never scratch


def test_params_never_promoted():
    source = """
    func f(int a) -> int {
        var int i;
        var int s = 0;
        for (i = 0; i < a; i = i + 1) { s = s + a; }
        return s;
    }
    func main() -> int { out(f(7)); return 0; }
    """
    unit = compile_unit(source)
    process = Process.load(unit.program)
    process.run(10**6)
    assert process.output_values() == [49]


def test_frame_smaller_with_promotion():
    """Promoted locals need no stack slots."""
    from repro.analysis import FunctionTable

    unit = compile_unit(LOOP_SRC)
    table = FunctionTable(unit.program)
    main = table.by_name("main")
    # two locals, both promoted -> zero frame
    assert main.frame_size == 0
