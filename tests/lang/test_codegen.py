"""Code generation: compile-and-execute behavioural checks."""

import pytest

from repro.errors import CompileError
from repro.lang import compile_source, compile_unit
from repro.machine import Process, Signal


def run(source, max_steps=10**7):
    process = Process.load(compile_source(source))
    result = process.run(max_steps)
    return result, process.output_values()


def expect(source, values, exit_code=0):
    result, output = run(source)
    assert result.reason == "exited", result
    assert output == values
    return output


def test_arithmetic_int():
    expect(
        "func main() -> int { out(7 + 3); out(7 - 3); out(7 * 3);"
        " out(7 / 3); out(7 % 3); out(-7 / 2); return 0; }",
        [10, 4, 21, 2, 1, -3],
    )


def test_arithmetic_float():
    expect(
        "func main() -> int { out(1.5 + 2.0); out(1.0 / 4.0); out(-2.5); return 0; }",
        [3.5, 0.25, -2.5],
    )


def test_comparisons():
    expect(
        "func main() -> int { out(1 < 2); out(2 < 1); out(2 <= 2);"
        " out(3 > 2); out(2 >= 3); out(2 == 2); out(2 != 2); return 0; }",
        [1, 0, 1, 1, 0, 1, 0],
    )


def test_float_comparisons():
    expect(
        "func main() -> int { out(1.5 < 2.5); out(2.5 > 1.5);"
        " out(2.5 == 2.5); out(1.0 >= 2.0); return 0; }",
        [1, 1, 1, 0],
    )


def test_short_circuit_and():
    # the right side would divide by zero if evaluated
    expect(
        "func main() -> int { var int z = 0;"
        " out(0 && (1 / z)); return 0; }",
        [0],
    )


def test_short_circuit_or():
    expect(
        "func main() -> int { var int z = 0;"
        " out(1 || (1 / z)); return 0; }",
        [1],
    )


def test_logical_not():
    expect("func main() -> int { out(!0); out(!5); out(!!7); return 0; }", [1, 0, 1])


def test_globals_scalar_and_array():
    expect(
        "global int n = 3; global float a[4];"
        "func main() -> int { a[0] = 1.5; a[n - 1] = 2.5;"
        " out(a[0] + a[2]); out(n); return 0; }",
        [4.0, 3],
    )


def test_uninitialised_locals_are_zero():
    expect(
        "func main() -> int { var int i; var float x; out(i); out(x); return 0; }",
        [0, 0.0],
    )


def test_while_loop():
    expect(
        "func main() -> int { var int i = 0; var int s = 0;"
        " while (i < 5) { s = s + i; i = i + 1; } out(s); return 0; }",
        [10],
    )


def test_for_loop_with_break_continue():
    expect(
        "func main() -> int { var int i; var int s = 0;"
        " for (i = 0; i < 10; i = i + 1) {"
        "   if (i == 3) { continue; }"
        "   if (i == 6) { break; }"
        "   s = s + i;"
        " } out(s); return 0; }",
        [0 + 1 + 2 + 4 + 5],
    )


def test_nested_loops():
    expect(
        "func main() -> int { var int i; var int j; var int s = 0;"
        " for (i = 0; i < 4; i = i + 1) {"
        "   for (j = 0; j < i; j = j + 1) { s = s + 1; } }"
        " out(s); return 0; }",
        [6],
    )


def test_function_calls_and_args():
    expect(
        "func add3(int a, int b, int c) -> int { return a + b + c; }"
        "func main() -> int { out(add3(1, 2, 3)); return 0; }",
        [6],
    )


def test_float_args_and_return():
    expect(
        "func mix(float a, int b, float c) -> float { return a + float(b) * c; }"
        "func main() -> int { out(mix(0.5, 2, 1.25)); return 0; }",
        [3.0],
    )


def test_recursion():
    expect(
        "func fact(int n) -> int { if (n <= 1) { return 1; }"
        " return n * fact(n - 1); }"
        "func main() -> int { out(fact(10)); return 0; }",
        [3628800],
    )


def test_mutual_recursion():
    expect(
        "func is_even(int n) -> int { if (n == 0) { return 1; }"
        " return is_odd(n - 1); }"
        "func is_odd(int n) -> int { if (n == 0) { return 0; }"
        " return is_even(n - 1); }"
        "func main() -> int { out(is_even(10)); out(is_odd(7)); return 0; }",
        [1, 1],
    )


def test_call_preserves_live_intermediates():
    # f() is called while an addition is half-evaluated in scratch regs
    expect(
        "func f() -> int { return 100; }"
        "func main() -> int { out(1 + f() + 2); return 0; }",
        [103],
    )


def test_call_preserves_live_float_intermediates():
    expect(
        "func f() -> float { return 100.0; }"
        "func main() -> int { out(0.5 + f() + 0.25); return 0; }",
        [100.75],
    )


def test_intrinsics():
    expect(
        "func main() -> int { out(sqrt(9.0)); out(fabs(-2.0));"
        " out(fmin(1.0, 2.0)); out(fmax(1.0, 2.0));"
        " out(float(7)); out(int(3.9)); out(int(-3.9)); return 0; }",
        [3.0, 2.0, 1.0, 2.0, 7.0, 3, -3],
    )


def test_exit_code_from_main():
    result, _ = run("func main() -> int { return 42; }")
    assert result.reason == "exited"


def test_exit_code_value():
    process = Process.load(compile_source("func main() -> int { return 42; }"))
    process.run(10**6)
    assert process.exit_code == 42


def test_abort_statement():
    result, _ = run("func main() -> int { abort(); return 0; }")
    assert result.reason == "terminated"
    assert result.signal is Signal.SIGABRT


def test_assert_pass_and_fail():
    result, output = run(
        "func main() -> int { assert(1 < 2); out(1); return 0; }"
    )
    assert result.reason == "exited" and output == [1]
    result, _ = run("func main() -> int { assert(2 < 1); return 0; }")
    assert result.signal is Signal.SIGABRT


def test_int_division_by_zero_sigfpe():
    result, _ = run(
        "func main() -> int { var int z = 0; out(1 / z); return 0; }"
    )
    assert result.signal is Signal.SIGFPE


def test_float_division_by_zero_is_inf():
    _, output = run(
        "func main() -> int { var float z = 0.0; out(1.0 / z); return 0; }"
    )
    assert output[0] == float("inf")


def test_out_of_bounds_index_segfaults():
    result, _ = run(
        "global float a[4];"
        "func main() -> int { var int i = 1000000; out(a[i]); return 0; }"
    )
    assert result.reason == "terminated"
    assert result.signal is Signal.SIGSEGV


def test_deep_expression_rejected():
    nested = "1 + (" * 12 + "1" + ")" * 12
    with pytest.raises(CompileError, match="too deep"):
        compile_source(f"func main() -> int {{ out({nested} + 1); return 0; }}")


def test_prologue_idiom_every_function(demo_unit):
    """Every compiled function opens with the Listing-1 idiom."""
    from repro.isa import Op
    from repro.isa.registers import BP, SP

    program = demo_unit.program
    for name, pc in program.functions.items():
        if name == "_start":
            continue
        assert program.instrs[pc].op is Op.PUSH and program.instrs[pc].ra == BP
        assert program.instrs[pc + 1].op is Op.MOV
        assert program.instrs[pc + 2].op is Op.SUBI
        assert program.instrs[pc + 2].rd == SP


def test_asm_text_reassembles(demo_unit):
    from repro.isa import assemble

    back = assemble(demo_unit.asm_text)
    assert back.instrs == demo_unit.program.instrs
