"""MiniC parser: structure and diagnostics."""

import pytest

from repro.errors import CompileError
from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Call,
    For,
    If,
    Index,
    IntLit,
    Name,
    Out,
    Return,
    Type,
    UnOp,
    VarDecl,
    While,
)
from repro.lang.parser import parse


def parse_main(body):
    module = parse(f"func main() -> int {{ {body} return 0; }}")
    return module.funcs[0].body.stmts[:-1]


def first_expr(text):
    (stmt,) = parse_main(f"x = {text};")
    assert isinstance(stmt, Assign)
    return stmt.value


def test_globals():
    module = parse(
        "global int n = 4;\n"
        "global float a[8];\n"
        "global float pi = 3.14;\n"
        "global int neg = -2;\n"
        "func main() -> int { return 0; }"
    )
    n, a, pi, neg = module.globals
    assert n.declared is Type.INT and n.init == 4 and n.size is None
    assert a.declared is Type.FLOAT and a.size == 8 and a.init is None
    assert pi.init == 3.14
    assert neg.init == -2


def test_func_signature():
    module = parse("func f(int a, float b) -> float { return b; }"
                   "func main() -> int { return 0; }")
    f = module.funcs[0]
    assert [p.declared for p in f.params] == [Type.INT, Type.FLOAT]
    assert f.ret is Type.FLOAT


def test_precedence_mul_over_add():
    expr = first_expr("1 + 2 * 3")
    assert isinstance(expr, BinOp) and expr.op == "+"
    assert isinstance(expr.right, BinOp) and expr.right.op == "*"


def test_precedence_cmp_over_and():
    expr = first_expr("a < b && c < d")
    assert expr.op == "&&"
    assert expr.left.op == "<" and expr.right.op == "<"


def test_precedence_and_over_or():
    expr = first_expr("a || b && c")
    assert expr.op == "||"
    assert expr.right.op == "&&"


def test_parentheses():
    expr = first_expr("(1 + 2) * 3")
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_unary():
    expr = first_expr("-a")
    assert isinstance(expr, UnOp) and expr.op == "-"
    expr = first_expr("!!a")
    assert isinstance(expr, UnOp) and isinstance(expr.operand, UnOp)


def test_index_and_call():
    expr = first_expr("a[i + 1]")
    assert isinstance(expr, Index)
    assert isinstance(expr.index, BinOp)
    expr = first_expr("f(1, g(2))")
    assert isinstance(expr, Call) and len(expr.args) == 2
    assert isinstance(expr.args[1], Call)


def test_conversion_keywords_parse_as_calls():
    expr = first_expr("float(3)")
    assert isinstance(expr, Call) and expr.name == "float"
    expr = first_expr("int(3.5)")
    assert isinstance(expr, Call) and expr.name == "int"


def test_if_else_chain():
    (stmt,) = parse_main("if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }")
    assert isinstance(stmt, If)
    nested = stmt.orelse.stmts[0]
    assert isinstance(nested, If)
    assert nested.orelse is not None


def test_while_and_for():
    (w,) = parse_main("while (i < 3) { i = i + 1; }")
    assert isinstance(w, While)
    (f,) = parse_main("for (i = 0; i < 3; i = i + 1) { x = i; }")
    assert isinstance(f, For)
    assert isinstance(f.init, Assign) and isinstance(f.step, Assign)


def test_for_without_init_step():
    (f,) = parse_main("for (; i < 3;) { i = i + 1; }")
    assert f.init is None and f.step is None


def test_statements():
    decl, out = parse_main("var float y = 1.0; out(y);")
    assert isinstance(decl, VarDecl) and decl.declared is Type.FLOAT
    assert isinstance(out, Out)


def test_return_value():
    module = parse("func main() -> int { return 1 + 2; }")
    ret = module.funcs[0].body.stmts[0]
    assert isinstance(ret, Return) and isinstance(ret.value, BinOp)


@pytest.mark.parametrize(
    "source,fragment",
    [
        ("func main() -> int { x = ; }", "unexpected token"),
        ("func main() -> int { if a { } }", "expected '('"),
        ("func main() -> int {", "unterminated block"),
        ("global int a[0]; func main() -> int { return 0; }", "positive"),
        ("global float a[4] = 1.0; func main() -> int { return 0; }", "initializer"),
        ("func main() -> int { 1 = 2; }", "assignment target"),
        ("func main() -> int { for (g(1); a; ) {} }", "for-init"),
        ("bogus", "expected 'global' or 'func'"),
        ("func main() { return 0; }", "expected '->'"),
    ],
)
def test_parse_errors(source, fragment):
    with pytest.raises(CompileError) as info:
        parse(source)
    assert fragment in str(info.value)


def test_error_line_numbers():
    with pytest.raises(CompileError) as info:
        parse("func main() -> int {\n\n  x = ;\n}")
    assert info.value.line == 3
