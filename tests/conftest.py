"""Shared fixtures: compiled demo programs and session-cached apps."""

from __future__ import annotations

import pytest

from repro.apps import make_app
from repro.isa import assemble
from repro.lang import compile_unit

#: A small hand-written assembly program exercising most opcodes.
DEMO_ASM = """
.data
arr: .space 8
cnt: .word 5
vals: .double 1.5, 2.5
.text
.entry _start
.func _start
_start:
    call main
    halt
.func main
main:
    push bp
    mov bp, sp
    subi sp, sp, #16
    movi r1, @cnt
    ld r2, [r1 + 0]
    movi r3, @arr
    movi r4, #0
loop:
    slt r5, r4, r2
    beqz r5, done
    itof f1, r4
    fmul f2, f1, f1
    fstx [r3 + r4*8 + 0], f2
    addi r4, r4, #1
    jmp loop
done:
    movi r4, #0
    fmovi f3, #0.0
sumloop:
    slt r5, r4, r2
    beqz r5, sdone
    fldx f4, [r3 + r4*8 + 0]
    fadd f3, f3, f4
    addi r4, r4, #1
    jmp sumloop
sdone:
    fout f3
    out r2
    movi r0, #0
    addi sp, sp, #16
    pop bp
    ret
"""

#: A MiniC program exercising the full language.
DEMO_MINIC = """
global int n = 10;
global float acc[16];

func square(float x) -> float {
    return x * x;
}

func fib(int k) -> int {
    if (k < 2) { return k; }
    return fib(k - 1) + fib(k - 2);
}

func main() -> int {
    var int i;
    var float total = 0.0;
    for (i = 0; i < n; i = i + 1) {
        acc[i] = square(float(i));
    }
    for (i = 0; i < n; i = i + 1) {
        total = total + acc[i];
    }
    out(total);
    out(fib(10));
    out(sqrt(16.0));
    assert(total > 0.0);
    return 0;
}
"""


@pytest.fixture(scope="session")
def demo_program():
    """Assembled demo program (sum of squares 0..4 = 30.0)."""
    return assemble(DEMO_ASM, "demo-asm")


@pytest.fixture(scope="session")
def demo_unit():
    """Compiled MiniC demo unit."""
    return compile_unit(DEMO_MINIC, "demo-minic")


def _cached_app(name):
    app = make_app(name)
    app.golden  # warm the profile/golden caches once per session
    return app


@pytest.fixture(scope="session")
def lulesh_app():
    return _cached_app("lulesh")


@pytest.fixture(scope="session")
def clamr_app():
    return _cached_app("clamr")


@pytest.fixture(scope="session")
def hpl_app():
    return _cached_app("hpl")


@pytest.fixture(scope="session")
def comd_app():
    return _cached_app("comd")


@pytest.fixture(scope="session")
def snap_app():
    return _cached_app("snap")


@pytest.fixture(scope="session")
def pennant_app():
    return _cached_app("pennant")


@pytest.fixture(scope="session")
def suite(lulesh_app, clamr_app, hpl_app, comd_app, snap_app, pennant_app):
    """All six cached apps, keyed by name."""
    return {
        app.name: app
        for app in (
            lulesh_app,
            clamr_app,
            hpl_app,
            comd_app,
            snap_app,
            pennant_app,
        )
    }
