"""Dynamic profiler: counts, totals, dynamic->static site mapping."""

import pytest

from repro.analysis import profile_program
from repro.errors import AnalysisError
from repro.isa import Instr, Op, Program


def test_demo_profile(demo_program):
    prof = profile_program(demo_program)
    assert prof.total == sum(prof.counts)
    assert prof.counts[0] == 1  # _start: call main
    assert prof.exit_code == 0
    assert prof.output == [("f", 30.0), ("i", 5)]


def test_coverage(demo_program):
    prof = profile_program(demo_program)
    assert 0.9 <= prof.coverage() <= 1.0
    executed = prof.executed_pcs()
    assert all(prof.counts[pc] > 0 for pc in executed)


def test_hottest_sorted(demo_program):
    prof = profile_program(demo_program)
    hottest = prof.hottest(5)
    counts = [c for _, c in hottest]
    assert counts == sorted(counts, reverse=True)
    assert len(hottest) == 5


def test_static_site_of(demo_program):
    prof = profile_program(demo_program)
    assert prof.static_site_of(1) == 0  # first instruction is the entry
    # the site of the last retired instruction is the HALT predecessor: RET
    last_pc = prof.static_site_of(prof.total)
    assert demo_program.instrs[last_pc].op in (Op.HALT, Op.RET)


def test_static_site_bounds(demo_program):
    prof = profile_program(demo_program)
    with pytest.raises(AnalysisError):
        prof.static_site_of(0)
    with pytest.raises(AnalysisError):
        prof.static_site_of(prof.total + 1)


def test_trapping_program_rejected():
    program = Program(
        instrs=[Instr(Op.ABORT)],
        functions={"main": 0},
    )
    with pytest.raises(AnalysisError):
        profile_program(program)


def test_nonhalting_program_rejected():
    program = Program(instrs=[Instr(Op.JMP, imm=0)], functions={"main": 0})
    with pytest.raises(AnalysisError):
        profile_program(program, max_steps=1000)


def test_app_profiles_consistent(suite):
    for app in suite.values():
        prof = app.profile
        assert prof.total == app.golden.instret
        assert tuple(prof.output) == app.golden.output
        assert prof.coverage() > 0.5, app.name
