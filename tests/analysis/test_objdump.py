"""objdump-style reports."""

from repro.analysis import cfg_summary, objdump


def test_objdump_sections(demo_program):
    text = objdump(demo_program)
    assert "functions:" in text
    assert "_start" in text and "main" in text
    assert "frame=" in text
    assert "checksum:" in text
    assert "entry: _start" in text


def test_objdump_data_symbols(demo_program):
    text = objdump(demo_program)
    assert "arr" in text and "cnt" in text


def test_cfg_summary(demo_program):
    text = cfg_summary(demo_program)
    assert "main" in text
    assert "blocks=" in text and "edges=" in text


def test_objdump_on_app(lulesh_app):
    text = objdump(lulesh_app.program)
    assert "main" in text
    assert "compute_dt" in text
