"""CFG construction: leaders, edges, reachability."""

import networkx as nx

from repro.analysis import build_cfg, function_cfg, leaders, reachable_blocks
from repro.isa import Instr, Op, Program


def straight_line():
    return Program(
        instrs=[
            Instr(Op.MOVI, rd=1, imm=1),
            Instr(Op.ADDI, rd=1, ra=1, imm=1),
            Instr(Op.HALT),
        ],
        functions={"main": 0},
    )


def test_straight_line_single_block():
    graph = build_cfg(straight_line())
    assert graph.number_of_nodes() == 1
    assert graph.number_of_edges() == 0


def branchy():
    return Program(
        instrs=[
            Instr(Op.MOVI, rd=1, imm=3),      # 0
            Instr(Op.SUBI, rd=1, ra=1, imm=1),  # 1: loop head
            Instr(Op.BNEZ, ra=1, imm=1),      # 2
            Instr(Op.HALT),                   # 3
        ],
        functions={"main": 0},
    )


def test_leaders_branchy():
    assert leaders(branchy()) == [0, 1, 3]


def test_edges_branchy():
    graph = build_cfg(branchy())
    assert set(graph.edges) == {(0, 1), (1, 1), (1, 3)}
    kinds = nx.get_edge_attributes(graph, "kind")
    assert kinds[(1, 1)] == "taken"
    assert kinds[(1, 3)] == "fallthrough"


def test_call_gets_return_edge():
    program = Program(
        instrs=[
            Instr(Op.CALL, imm=2),  # 0
            Instr(Op.HALT),         # 1
            Instr(Op.RET),          # 2
        ],
        functions={"main": 0, "f": 2},
    )
    graph = build_cfg(program)
    assert (0, 1) in graph.edges
    assert graph.edges[0, 1]["kind"] == "call-return"
    # RET has no static successor
    assert list(graph.successors(2)) == []


def test_reachable_blocks_include_callee():
    program = Program(
        instrs=[
            Instr(Op.CALL, imm=3),
            Instr(Op.HALT),
            Instr(Op.NOP),   # dead code
            Instr(Op.RET),   # callee
        ],
        functions={"main": 0, "f": 3},
    )
    reach = reachable_blocks(program)
    assert 0 in reach and 3 in reach
    assert 1 in reach


def test_function_cfg_restricted(demo_unit):
    sub = function_cfg(demo_unit.program, "fib")
    table_start = demo_unit.program.functions["fib"]
    for node in sub.nodes:
        assert node >= table_start


def test_demo_cfg_blocks_partition(demo_program):
    graph = build_cfg(demo_program)
    covered = set()
    for node in graph.nodes:
        block = graph.nodes[node]["block"]
        span = set(range(block.start, block.end))
        assert not (span & covered)  # disjoint
        covered |= span
    assert covered == set(range(len(demo_program.instrs)))


def test_apps_cfgs_build(suite):
    for app in suite.values():
        graph = build_cfg(app.program)
        assert graph.number_of_nodes() > 10
        reach = reachable_blocks(app.program)
        # all functions are live in the apps
        for name, pc in app.program.functions.items():
            assert pc in reach, f"{app.name}:{name} unreachable"
