"""FunctionTable: extents, prologue frame recovery (Heuristic II's input)."""

import pytest

from repro.analysis import FunctionTable
from repro.errors import AnalysisError
from repro.isa import Instr, Op, Program, assemble


def test_demo_functions(demo_program):
    table = FunctionTable(demo_program)
    names = [f.name for f in table.functions]
    assert names == ["_start", "main"]
    start, main = table.functions
    assert start.start == 0 and start.end == main.start
    assert main.end == len(demo_program.instrs)


def test_frame_size_from_prologue(demo_program):
    table = FunctionTable(demo_program)
    main = table.by_name("main")
    assert main.frame_size == 16  # subi sp, sp, #16
    assert main.has_frame


def test_function_at_bisect(demo_program):
    table = FunctionTable(demo_program)
    main_pc = demo_program.functions["main"]
    assert table.function_at(main_pc).name == "main"
    assert table.function_at(main_pc + 2).name == "main"
    assert table.function_at(0).name == "_start"
    assert table.frame_size_at(main_pc + 2) == 16


def test_function_at_out_of_image(demo_program):
    table = FunctionTable(demo_program)
    with pytest.raises(AnalysisError):
        table.function_at(-1)
    with pytest.raises(AnalysisError):
        table.function_at(10**6)


def test_by_name_unknown(demo_program):
    with pytest.raises(AnalysisError):
        FunctionTable(demo_program).by_name("ghost")


def test_no_functions_rejected():
    program = Program(instrs=[Instr(Op.HALT)], functions={"main": 0})
    program.functions.clear()
    with pytest.raises(AnalysisError):
        FunctionTable(program)


def test_leaf_function_no_frame():
    program = assemble(
        ".text\n.entry main\n.func main\nmain:\n    call leaf\n    halt\n"
        ".func leaf\nleaf:\n    movi r1, #1\n    ret\n"
    )
    table = FunctionTable(program)
    leaf = table.by_name("leaf")
    assert leaf.frame_size == 0
    assert not leaf.has_frame


def test_minic_functions_all_have_frames(demo_unit):
    table = FunctionTable(demo_unit.program)
    for info in table.functions:
        if info.name == "_start":
            continue
        assert info.has_frame, info.name


def test_minic_frame_matches_locals(suite):
    """Every app function's recovered frame is a non-negative multiple of 8."""
    for app in suite.values():
        for info in app.functions.functions:
            assert info.frame_size % 8 == 0
            assert info.frame_size >= 0


def test_contains(demo_program):
    table = FunctionTable(demo_program)
    main = table.by_name("main")
    assert main.start in main
    assert main.end not in main


def test_len(demo_program):
    assert len(FunctionTable(demo_program)) == 2
