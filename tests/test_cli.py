"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_apps(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    assert "lulesh" in out and "pennant" in out and "direct" in out


def test_objdump(capsys):
    assert main(["objdump", "--app", "hpl"]) == 0
    out = capsys.readouterr().out
    assert "factor" in out and "frame=" in out


def test_golden(capsys):
    assert main(["golden", "--app", "pennant"]) == 0
    out = capsys.readouterr().out
    assert "acceptance check: PASS" in out


def test_inject_baseline(capsys):
    code = main(
        ["inject", "--app", "pennant", "--dyn-index", "5000", "--bit", "1"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "outcome:" in out


def test_inject_with_letgo(capsys):
    code = main(
        [
            "inject",
            "--app",
            "pennant",
            "--dyn-index",
            "5000",
            "--bit",
            "45",
            "--letgo",
            "LetGo-E",
        ]
    )
    assert code == 0
    assert "interventions:" in capsys.readouterr().out


def test_campaign(capsys):
    assert main(["campaign", "--app", "pennant", "-n", "8", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "continuability" in out
    assert "crash rate" in out


def test_simulate_paper_params(capsys):
    assert main(["simulate", "--app", "lulesh", "--t-chk", "120"]) == 0
    out = capsys.readouterr().out
    assert "paper Table 3" in out and "gain" in out


def test_simulate_estimated(capsys):
    code = main(
        ["simulate", "--app", "pennant", "--estimate", "-n", "10",
         "--t-chk", "120", "--years", "0.2"]
    )
    assert code == 0
    assert "fresh campaign" in capsys.readouterr().out


def test_unknown_variant_rejected():
    with pytest.raises(SystemExit):
        main(["inject", "--app", "hpl", "--dyn-index", "10", "--letgo", "LetGo-X"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_sites(capsys):
    assert main(["sites", "--app", "pennant", "-n", "15"]) == 0
    out = capsys.readouterr().out
    assert "instr class" in out and "crash" in out


def test_parallel(capsys):
    assert main(["parallel", "--ranks", "2", "--seeds", "2"]) == 0
    out = capsys.readouterr().out
    assert "cr+letgo" in out and "efficiency" in out


def test_campaign_journal_then_resume(tmp_path, capsys):
    journal = str(tmp_path / "c.journal")
    base = ["campaign", "--app", "pennant", "-n", "6", "--seed", "2",
            "--max-retries", "1", "--wall-clock-limit", "3600"]
    assert main([*base, "--journal", journal]) == 0
    capsys.readouterr()
    assert main([*base, "--resume", journal]) == 0
    out = capsys.readouterr().out
    assert "resumed=6" in out  # nothing re-run; result rebuilt from journal
    assert "crash rate" in out


def test_campaign_journal_resume_mutually_exclusive(tmp_path):
    with pytest.raises(SystemExit):
        main(["campaign", "--app", "pennant", "-n", "4",
              "--journal", str(tmp_path / "a"), "--resume", str(tmp_path / "b")])


def test_campaign_abort_prints_one_line_error(monkeypatch, capsys):
    from repro.errors import CampaignAbortedError
    from repro.faultinject.engine import CampaignEngine

    def doomed(self, *args, **kwargs):
        raise CampaignAbortedError("worker pool broke 3 times; giving up",
                                   journal="pennant.journal")

    monkeypatch.setattr(CampaignEngine, "run", doomed)
    assert main(["campaign", "--app", "pennant", "-n", "4"]) == 1
    captured = capsys.readouterr()
    assert captured.err.count("\n") == 1  # one line, not a traceback
    assert "campaign failed" in captured.err
    assert "--resume pennant.journal" in captured.err


def test_campaign_interrupt_names_resume_journal(monkeypatch, capsys, tmp_path):
    from repro.faultinject.engine import CampaignEngine

    journal = str(tmp_path / "c.journal")

    def interrupted(self, *args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(CampaignEngine, "run", interrupted)
    assert main(["campaign", "--app", "pennant", "-n", "4",
                 "--journal", journal]) == 130
    err = capsys.readouterr().err
    assert "interrupted" in err and f"--resume {journal}" in err
    assert main(["campaign", "--app", "pennant", "-n", "4"]) == 130
    assert "no journal" in capsys.readouterr().err
