"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_apps(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    assert "lulesh" in out and "pennant" in out and "direct" in out


def test_objdump(capsys):
    assert main(["objdump", "--app", "hpl"]) == 0
    out = capsys.readouterr().out
    assert "factor" in out and "frame=" in out


def test_golden(capsys):
    assert main(["golden", "--app", "pennant"]) == 0
    out = capsys.readouterr().out
    assert "acceptance check: PASS" in out


def test_inject_baseline(capsys):
    code = main(
        ["inject", "--app", "pennant", "--dyn-index", "5000", "--bit", "1"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "outcome:" in out


def test_inject_with_letgo(capsys):
    code = main(
        [
            "inject",
            "--app",
            "pennant",
            "--dyn-index",
            "5000",
            "--bit",
            "45",
            "--letgo",
            "LetGo-E",
        ]
    )
    assert code == 0
    assert "interventions:" in capsys.readouterr().out


def test_campaign(capsys):
    assert main(["campaign", "--app", "pennant", "-n", "8", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "continuability" in out
    assert "crash rate" in out


def test_simulate_paper_params(capsys):
    assert main(["simulate", "--app", "lulesh", "--t-chk", "120"]) == 0
    out = capsys.readouterr().out
    assert "paper Table 3" in out and "gain" in out


def test_simulate_estimated(capsys):
    code = main(
        ["simulate", "--app", "pennant", "--estimate", "-n", "10",
         "--t-chk", "120", "--years", "0.2"]
    )
    assert code == 0
    assert "fresh campaign" in capsys.readouterr().out


def test_unknown_variant_rejected():
    with pytest.raises(SystemExit):
        main(["inject", "--app", "hpl", "--dyn-index", "10", "--letgo", "LetGo-X"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_sites(capsys):
    assert main(["sites", "--app", "pennant", "-n", "15"]) == 0
    out = capsys.readouterr().out
    assert "instr class" in out and "crash" in out


def test_parallel(capsys):
    assert main(["parallel", "--ranks", "2", "--seeds", "2"]) == 0
    out = capsys.readouterr().out
    assert "cr+letgo" in out and "efficiency" in out
