"""Oracle behaviour: clean programs pass, every planted mutant is caught,
campaign metamorphic properties hold, and observations compare strictly."""

import random

import pytest

from repro.core.config import VARIANTS
from repro.fuzz.app import FuzzAppA, LangApp
from repro.fuzz.generator import gen_isa_program, gen_lang_source, gen_segments
from repro.fuzz.mutations import MUTATIONS
from repro.fuzz.observe import observe
from repro.fuzz.oracles import (
    check_backends,
    check_jobs,
    check_merge,
    check_program,
    check_resume,
)
from repro.isa.instructions import Instr, Op
from repro.isa.layout import DATA_BASE
from repro.isa.program import DataSymbol, Program
from repro.machine.process import Process

pytestmark = pytest.mark.fuzz


def _program(instrs, cells=0, data_init=None):
    symbols = {"g": DataSymbol("g", DATA_BASE, cells)} if cells else {}
    return Program(
        instrs=instrs, functions={"main": 0}, data_symbols=symbols,
        data_init=data_init or {}, source_name="test",
    )


# -- differential oracles on clean programs ----------------------------------


def test_clean_programs_have_no_divergence():
    for i in range(30):
        rng = random.Random(f"oracle-clean:{i}")
        program = gen_isa_program(rng)
        assert check_program(
            program, budget=128, segments=gen_segments(rng, 128),
            cut=rng.randint(1, 127), breakpoints=[2, 5],
        ) == []


def test_lang_program_passes_all_oracles():
    source = gen_lang_source(random.Random("oracle-lang:1"))
    app = LangApp(source)
    budget = app.golden.instret + 16
    assert check_program(app.program, budget=budget, cut=budget // 3) == []


# -- every mutant must be caught by a targeted trigger ------------------------

#: mutation name -> a minimal program exercising exactly its fault.
_TRIGGERS = {
    "fmin-nan": _program([
        Instr(Op.FMOVI, rd=0, imm=float("nan")),
        Instr(Op.FMOVI, rd=1, imm=1.5),
        Instr(Op.FMIN, rd=2, ra=0, rb=1),
        Instr(Op.HALT),
    ]),
    "halt-pc": _program([Instr(Op.HALT)]),
    "shri-logical": _program([
        Instr(Op.MOVI, rd=1, imm=-8),
        Instr(Op.SHRI, rd=2, ra=1, imm=1),
        Instr(Op.HALT),
    ]),
    "segv-order": _program([
        Instr(Op.MOVI, rd=1, imm=3),
        Instr(Op.LD, rd=2, ra=1),
        Instr(Op.HALT),
    ]),
}


@pytest.mark.parametrize("mutation", sorted(MUTATIONS))
def test_mutant_is_caught(mutation):
    program = _TRIGGERS[mutation]
    divergences = check_backends(
        program, segments=[16], a="interpreter", b=MUTATIONS[mutation]
    )
    assert divergences, f"{mutation} mutant survived its trigger program"
    # ...and the fixed substrate passes the same trigger.
    assert check_program(program, budget=16) == []


# -- observation strictness ---------------------------------------------------


def test_observation_compares_float_bit_patterns():
    neg = _program([Instr(Op.FMOVI, rd=0, imm=-0.0), Instr(Op.HALT)])
    pos = _program([Instr(Op.FMOVI, rd=0, imm=0.0), Instr(Op.HALT)])
    pa, pb = Process.load(neg), Process.load(pos)
    pa.run(4)
    pb.run(4)
    diff = observe(pa).diff(observe(pb))
    assert diff is not None and diff.startswith("fregs")


def test_observation_ignores_exit_code_until_halted():
    program = _program([
        Instr(Op.MOVI, rd=0, imm=42),
        Instr(Op.NOP),
        Instr(Op.HALT),
    ])
    process = Process.load(program)
    process.run(1)
    assert observe(process).exit_code is None
    process.run(16)
    assert observe(process).exit_code == 42


# -- campaign metamorphic oracles ---------------------------------------------


def test_merge_oracle_holds():
    app = LangApp(gen_lang_source(random.Random("oracle-merge:0")))
    assert check_merge(app, 6, 11, VARIANTS["LetGo-E"], split=2) == []
    assert check_merge(app, 5, 12, None, split=3) == []


def test_resume_oracle_holds(tmp_path):
    app = LangApp(gen_lang_source(random.Random("oracle-resume:0")))
    assert check_resume(
        app, 5, 13, VARIANTS["LetGo-E"], prefix=2, workdir=tmp_path
    ) == []


def test_jobs_oracle_holds():
    assert check_jobs(FuzzAppA(), 5, 14, VARIANTS["LetGo-E"], jobs=2) == []
