"""Generator contracts: determinism, well-formedness, golden-trap-free lang."""

import random

import pytest

from repro.fuzz.generator import (
    DEFAULT_BUDGET,
    gen_breakpoints,
    gen_isa_program,
    gen_lang_source,
    gen_segments,
)
from repro.isa.instructions import Op
from repro.lang.compiler import compile_source
from repro.machine.process import Process
from repro.machine.signals import Trap

pytestmark = pytest.mark.fuzz


def test_isa_program_deterministic():
    a = gen_isa_program(random.Random("7:isa:3"))
    b = gen_isa_program(random.Random("7:isa:3"))
    assert a.instrs == b.instrs
    assert a.data_init == b.data_init
    assert a.checksum() == b.checksum()


def test_isa_programs_vary_by_seed():
    a = gen_isa_program(random.Random("7:isa:3"))
    b = gen_isa_program(random.Random("7:isa:4"))
    assert a.instrs != b.instrs


def test_isa_program_shape():
    for i in range(50):
        program = gen_isa_program(random.Random(f"shape:{i}"))
        assert program.instrs[-1].op is Op.HALT
        assert program.entry_pc == 0
        # Loadable and runnable under the budget harness: the only
        # acceptable escape is a precise Trap.
        process = Process.load(program, backend="interpreter")
        try:
            process.run(DEFAULT_BUDGET)
        except Trap:  # pragma: no cover - Process.run catches traps
            pytest.fail("Process.run must absorb traps")


def test_segments_sum_to_budget():
    for i in range(20):
        rng = random.Random(f"seg:{i}")
        segments = gen_segments(rng, 256)
        assert sum(segments) == 256
        assert all(s >= 1 for s in segments)


def test_breakpoints_in_image():
    for i in range(20):
        rng = random.Random(f"bp:{i}")
        bps = gen_breakpoints(rng, 30)
        assert len(bps) <= 3
        assert all(0 <= bp < 30 for bp in bps)
        assert bps == sorted(set(bps))


def test_lang_sources_compile_and_halt_trap_free():
    for i in range(25):
        source = gen_lang_source(random.Random(f"lang:{i}"))
        program = compile_source(source, name=f"fuzz-lang-{i}")
        process = Process.load(program)
        result = process.run(200_000)
        assert result.reason == "exited", (i, result.reason, source)


def test_lang_source_deterministic():
    a = gen_lang_source(random.Random("lang:0"))
    b = gen_lang_source(random.Random("lang:0"))
    assert a == b
