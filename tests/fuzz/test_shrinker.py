"""Shrinker contracts: minimality, branch remapping, valid pytest emission."""

import pytest

from repro.fuzz.mutations import MUTATIONS
from repro.fuzz.oracles import check_backends, check_program
from repro.fuzz.runner import mutation_selftest
from repro.fuzz.shrinker import emit_pytest, shrink
from repro.isa.instructions import Instr, Op
from repro.isa.layout import DATA_BASE
from repro.isa.program import DataSymbol, Program

pytestmark = pytest.mark.fuzz


def _program(instrs, cells=0, data_init=None):
    symbols = {"g": DataSymbol("g", DATA_BASE, cells)} if cells else {}
    return Program(
        instrs=instrs, functions={"main": 0}, data_symbols=symbols,
        data_init=data_init or {}, source_name="test",
    )


def test_shrink_preserves_predicate_and_reduces():
    # Plant the halt-pc mutant; divergence needs only the HALT.
    program = _program([
        Instr(Op.MOVI, rd=1, imm=5),
        Instr(Op.ADDI, rd=2, ra=1, imm=3),
        Instr(Op.NOP),
        Instr(Op.OUT, ra=2),
        Instr(Op.HALT),
    ])
    mutant = MUTATIONS["halt-pc"]

    def diverges(p):
        return bool(check_backends(p, [8], a="interpreter", b=mutant))

    assert diverges(program)
    shrunk = shrink(program, diverges)
    assert diverges(shrunk)
    assert len(shrunk.instrs) == 1
    assert shrunk.instrs[0].op is Op.HALT


def test_shrink_remaps_branch_targets():
    # BNEZ jumps over dead instructions to the OUT; removing the dead
    # block must retarget the branch for the divergence to survive.
    program = _program([
        Instr(Op.MOVI, rd=1, imm=1),
        Instr(Op.BNEZ, ra=1, imm=5),
        Instr(Op.NOP),
        Instr(Op.NOP),
        Instr(Op.NOP),
        Instr(Op.MOVI, rd=2, imm=-16),
        Instr(Op.SHRI, rd=3, ra=2, imm=2),
        Instr(Op.HALT),
    ])
    mutant = MUTATIONS["shri-logical"]

    def diverges(p):
        return bool(check_backends(p, [16], a="interpreter", b=mutant))

    assert diverges(program)
    shrunk = shrink(program, diverges)
    assert diverges(shrunk)
    assert len(shrunk.instrs) <= 3


@pytest.mark.parametrize("mutation", sorted(MUTATIONS))
def test_selftest_shrinks_every_mutant_to_25_or_fewer(mutation):
    result = mutation_selftest(mutation)
    assert result.killed, f"{mutation} not killed"
    assert result.shrunk_len <= 25
    assert result.ok


def test_emitted_pytest_is_valid_python_and_passes():
    result = mutation_selftest("halt-pc")
    source = result.finding.pytest_source
    assert source is not None
    code = compile(source, "<reproducer>", "exec")
    # The reproducer asserts check_program(...) == [] -- true on the
    # fixed substrate (the divergence only existed against the mutant).
    namespace = {}
    exec(code, namespace)
    test_fns = [v for k, v in namespace.items() if k.startswith("test_")]
    assert len(test_fns) == 1
    test_fns[0]()


def test_emit_pytest_renders_nan_and_negative_imms():
    program = _program([
        Instr(Op.FMOVI, rd=1, imm=float("nan")),
        Instr(Op.MOVI, rd=2, imm=-7),
        Instr(Op.HALT),
    ])
    source = emit_pytest("roundtrip", program, budget=8)
    namespace = {}
    exec(compile(source, "<emit>", "exec"), namespace)
    rendered = namespace["PROGRAM"]
    assert rendered.instrs == program.instrs or (
        # NaN compares unequal through Instr equality; compare fields.
        [i.op for i in rendered.instrs] == [i.op for i in program.instrs]
    )
    assert check_program(rendered, budget=8) == []
