"""Regression corpus replay: every checked-in case must pass all of its
recorded oracles, and the JSON schema must round-trip programs exactly."""

import math
import random
from pathlib import Path

import pytest

from repro.fuzz.corpus import (
    case_to_dict,
    check_case,
    iter_corpus,
    load_case,
    program_from_dict,
    program_to_dict,
    save_case,
)
from repro.fuzz.generator import gen_isa_program
from repro.isa.instructions import Instr, Op
from repro.isa.layout import DATA_BASE
from repro.isa.program import DataSymbol, Program

pytestmark = pytest.mark.fuzz

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"
CASES = list(iter_corpus(CORPUS_DIR))


def test_corpus_is_not_empty():
    assert len(CASES) >= 5


@pytest.mark.parametrize(
    "name,case", CASES, ids=[name for name, _ in CASES]
)
def test_corpus_case_replays_clean(name, case):
    divergences = check_case(case)
    assert divergences == [], (
        f"regression corpus case {name!r} diverged: "
        + "; ".join(str(d) for d in divergences)
    )


def test_program_dict_roundtrip_generated():
    for i in range(10):
        program = gen_isa_program(random.Random(f"corpus-rt:{i}"))
        encoded = program_to_dict(program)
        restored = program_from_dict(encoded)
        # NaN immediates break Instr equality; the encoding (repr strings
        # for float imms) is exact, so a stable round trip shows up as a
        # fixpoint of the dict form.
        assert program_to_dict(restored) == encoded
        assert restored.data_init == program.data_init
        assert restored.checksum() == program.checksum()


def test_program_dict_roundtrip_special_floats():
    program = Program(
        instrs=[
            Instr(Op.FMOVI, rd=0, imm=float("nan")),
            Instr(Op.FMOVI, rd=1, imm=float("-inf")),
            Instr(Op.FMOVI, rd=2, imm=-0.0),
            Instr(Op.FMOVI, rd=3, imm=5e-324),
            Instr(Op.HALT),
        ],
        functions={"main": 0},
        data_symbols={"g": DataSymbol("g", DATA_BASE, 2)},
        data_init={DATA_BASE: float("inf"), DATA_BASE + 8: -7},
        source_name="special",
    )
    restored = program_from_dict(program_to_dict(program))
    assert math.isnan(restored.instrs[0].imm)
    assert restored.instrs[1].imm == float("-inf")
    assert math.copysign(1.0, restored.instrs[2].imm) == -1.0
    assert restored.instrs[3].imm == 5e-324
    assert restored.data_init[DATA_BASE] == float("inf")
    assert restored.data_init[DATA_BASE + 8] == -7


def test_save_and_load_case(tmp_path):
    program = gen_isa_program(random.Random("corpus-save:0"))
    case = case_to_dict(
        "tmp-case", "round-trip check", program,
        budget=64, segments=[32, 32], cut=16, breakpoints=[1],
        oracles=("backend", "snapshot"),
    )
    path = save_case(tmp_path / "tmp-case.json", case)
    loaded = load_case(path)
    assert loaded == case
    names = [name for name, _ in iter_corpus(tmp_path)]
    assert names == ["tmp-case"]
