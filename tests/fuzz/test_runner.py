"""Runner contracts: zero findings on the fixed substrate, determinism
across jobs counts, coverage floor, and the long nightly loop."""

import json
from pathlib import Path

import pytest

from repro.fuzz.coverage import FuzzCoverage
from repro.fuzz.runner import FuzzConfig, plan_cases, run_case, run_fuzz

pytestmark = pytest.mark.fuzz

FLOOR_PATH = Path(__file__).parent / "coverage_floor.json"
#: The exact configuration the checked-in floor was recorded from.
FLOOR_CONFIG = FuzzConfig(
    iterations=120, lang_iterations=12, seed=0, jobs_cases=0
)


@pytest.fixture(scope="module")
def floor_report():
    return run_fuzz(FLOOR_CONFIG)


def test_fixed_substrate_has_zero_findings(floor_report):
    assert [f.to_dict() for f in floor_report.findings] == []


def test_coverage_meets_checked_in_floor(floor_report):
    floor = json.loads(FLOOR_PATH.read_text())
    deficits = floor_report.coverage.deficits(floor)
    assert deficits == [], (
        "coverage regressed below tests/fuzz/coverage_floor.json; if the "
        "generator changed intentionally, regenerate the floor (see "
        "docs/TESTING.md): " + "; ".join(deficits)
    )


def test_case_results_are_deterministic():
    config = FuzzConfig(iterations=4, lang_iterations=2, seed=9)
    for kind, index in plan_cases(config):
        if kind == "jobs":
            continue  # pool-spawning; covered by the jobs oracle test
        f1, c1 = run_case(config, kind, index)
        f2, c2 = run_case(config, kind, index)
        assert [f.to_dict() for f in f1] == [f.to_dict() for f in f2]
        assert c1.to_dict() == c2.to_dict()


def test_jobs_partitioning_does_not_change_results():
    base = FuzzConfig(iterations=16, lang_iterations=2, seed=5,
                      oracles=("backend", "snapshot"), jobs_cases=0)
    fanned = FuzzConfig(iterations=16, lang_iterations=2, seed=5,
                        oracles=("backend", "snapshot"), jobs_cases=0, jobs=2)
    r1 = run_fuzz(base)
    r2 = run_fuzz(fanned)
    assert [f.to_dict() for f in r1.findings] == [f.to_dict() for f in r2.findings]
    assert r1.coverage.to_dict() == r2.coverage.to_dict()


def test_mutation_run_produces_shrunk_findings():
    config = FuzzConfig(
        iterations=60, lang_iterations=0, seed=0,
        oracles=("backend",), budget=96, mutation="halt-pc",
    )
    report = run_fuzz(config)
    assert report.findings, "halt-pc mutant survived 60 programs"
    for finding in report.findings:
        assert finding.case is not None
        assert finding.pytest_source is not None
        assert finding.shrunk_len <= 25


def test_coverage_merge_is_additive():
    a, b = FuzzCoverage(), FuzzCoverage()
    a.opcodes["ADD"] = 2
    a.stops["halt"] = 1
    b.opcodes["ADD"] = 3
    b.heuristics["H1"] = 1
    a.merge(b)
    assert a.opcodes["ADD"] == 5
    assert a.stops["halt"] == 1
    assert a.heuristics["H1"] == 1
    assert a.deficits({"opcodes": {"ADD": 5}, "heuristics": {"H1": 1}}) == []
    assert a.deficits({"opcodes": {"SUB": 1}}) == ["opcodes:SUB = 0 < 1"]


@pytest.mark.slow
def test_long_fuzz_loop_finds_nothing():
    """The nightly loop (10k ISA + 1k lang programs); hours of margin."""
    report = run_fuzz(FuzzConfig(iterations=10_000, lang_iterations=1_000,
                                 seed=0))
    assert [f.to_dict() for f in report.findings] == []
