"""Signal model: numbers, default membership, trap formatting."""

from repro.machine import LETGO_DEFAULT_SIGNALS, Signal, Trap


def test_linux_numbers():
    assert Signal.SIGABRT == 6
    assert Signal.SIGBUS == 7
    assert Signal.SIGFPE == 8
    assert Signal.SIGSEGV == 11


def test_letgo_default_signals_match_table1():
    assert LETGO_DEFAULT_SIGNALS == {
        Signal.SIGSEGV,
        Signal.SIGBUS,
        Signal.SIGABRT,
    }
    assert Signal.SIGFPE not in LETGO_DEFAULT_SIGNALS


def test_trap_str_with_address():
    trap = Trap(Signal.SIGSEGV, pc=7, detail="boom", address=0x1234)
    text = str(trap)
    assert "SIGSEGV" in text
    assert "pc=7" in text
    assert "0x1234" in text
    assert "boom" in text


def test_trap_str_without_address():
    trap = Trap(Signal.SIGABRT, pc=3, detail="abort")
    assert "addr" not in str(trap)


def test_trap_is_exception():
    assert issubclass(Trap, Exception)
