"""Memory: segments, protection, alignment, typed views."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.memory import (
    AccessError,
    Memory,
    float_to_pattern,
    int_to_pattern,
    pattern_to_float,
    pattern_to_int,
)


@pytest.fixture
def mem():
    m = Memory()
    m.map_segment("data", 0x1000, 0x1000)
    m.map_segment("stack", 0x8000, 0x800)
    return m


def test_read_unwritten_is_zero(mem):
    assert mem.read_pattern(0x1000) == 0
    assert mem.read_int(0x1008) == 0
    assert mem.read_float(0x1010) == 0.0


def test_write_read_pattern(mem):
    mem.write_pattern(0x1000, 0xDEADBEEF)
    assert mem.read_pattern(0x1000) == 0xDEADBEEF


def test_unmapped_read_segv(mem):
    with pytest.raises(AccessError) as info:
        mem.read_pattern(0x0)
    assert info.value.kind == "segv"
    assert info.value.mode == "read"


def test_unmapped_write_segv(mem):
    with pytest.raises(AccessError) as info:
        mem.write_pattern(0x7FF8, 1)  # just below the stack segment
    assert info.value.kind == "segv"


def test_misaligned_bus(mem):
    with pytest.raises(AccessError) as info:
        mem.read_pattern(0x1001)
    assert info.value.kind == "bus"
    with pytest.raises(AccessError) as info:
        mem.write_pattern(0x1004, 1)
    assert info.value.kind == "bus"


def test_segment_end_exclusive(mem):
    mem.write_pattern(0x1FF8, 5)  # last cell of data
    with pytest.raises(AccessError):
        mem.write_pattern(0x2000, 5)


def test_negative_address_segv(mem):
    with pytest.raises(AccessError):
        mem.read_pattern(-8)


def test_overlapping_segments_rejected():
    m = Memory()
    m.map_segment("a", 0x1000, 0x100)
    with pytest.raises(ValueError):
        m.map_segment("b", 0x1080, 0x100)


def test_unaligned_segment_rejected():
    with pytest.raises(ValueError):
        Memory().map_segment("x", 0x1001, 0x100)


def test_segment_for(mem):
    assert mem.segment_for(0x1000).name == "data"
    assert mem.segment_for(0x8000).name == "stack"
    assert mem.segment_for(0x0) is None


def test_is_mapped(mem):
    assert mem.is_mapped(0x1000)
    assert not mem.is_mapped(0x3000)


def test_int_roundtrip_signed(mem):
    mem.write_int(0x1000, -1)
    assert mem.read_int(0x1000) == -1
    assert mem.read_pattern(0x1000) == (1 << 64) - 1


def test_float_roundtrip(mem):
    mem.write_float(0x1000, -2.5)
    assert mem.read_float(0x1000) == -2.5


def test_type_punning(mem):
    mem.write_float(0x1000, 1.0)
    assert mem.read_int(0x1000) == 0x3FF0000000000000


def test_written_cells_and_clear(mem):
    mem.write_pattern(0x1000, 7)
    assert mem.written_cells() == {0x1000: 7}
    mem.clear()
    assert mem.read_pattern(0x1000) == 0
    assert mem.is_mapped(0x1000)  # map survives clear


@given(st.integers(0, (1 << 64) - 1))
@settings(max_examples=200)
def test_pattern_int_roundtrip(pattern):
    assert int_to_pattern(pattern_to_int(pattern)) == pattern


@given(st.floats(width=64, allow_nan=False))
@settings(max_examples=200)
def test_pattern_float_roundtrip(value):
    assert pattern_to_float(float_to_pattern(value)) == value


def test_nan_pattern_preserved():
    pattern = 0x7FF8DEADBEEF0001
    value = pattern_to_float(pattern)
    assert math.isnan(value)
    assert float_to_pattern(value) == pattern


@given(st.integers(-(2**63), 2**63 - 1), st.integers(0, 63))
@settings(max_examples=200)
def test_flip_twice_is_identity(value, bit):
    pattern = int_to_pattern(value)
    flipped = pattern ^ (1 << bit)
    assert pattern_to_int(flipped ^ (1 << bit)) == value


def test_unmapped_and_misaligned_is_segv(mem):
    """Regression: mapping is checked before alignment.

    Real hardware walks the page tables before it complains about
    alignment, so an access that is both unmapped *and* misaligned must
    report SIGSEGV, not SIGBUS (this used to skew the Table-1 signal
    distribution).
    """
    for address in (0x3001, 0x2FFF, 0x7FF9, -3):
        with pytest.raises(AccessError) as info:
            mem.read_pattern(address)
        assert info.value.kind == "segv", hex(address)
        with pytest.raises(AccessError) as info:
            mem.write_pattern(address, 1)
        assert info.value.kind == "segv", hex(address)
