"""CPU memory instructions: loads, stores, stack ops, precise faults."""

import pytest

from repro.isa import DATA_BASE, STACK_TOP, Instr, Op, Program
from repro.isa.program import DataSymbol
from repro.isa.registers import SP
from repro.machine import Process, Signal, Trap


def make_process(instrs, data_cells=8):
    program = Program(
        instrs=list(instrs) + [Instr(Op.HALT)],
        functions={"main": 0},
        data_symbols={"d": DataSymbol("d", DATA_BASE, data_cells)},
    )
    return Process.load(program)


def test_ld_st_roundtrip():
    p = make_process(
        [
            Instr(Op.MOVI, rd=1, imm=DATA_BASE),
            Instr(Op.MOVI, rd=2, imm=-99),
            Instr(Op.ST, rd=2, ra=1, imm=8),
            Instr(Op.LD, rd=3, ra=1, imm=8),
        ]
    )
    p.run(100)
    assert p.cpu.iregs[3] == -99


def test_ldx_stx_scaling():
    p = make_process(
        [
            Instr(Op.MOVI, rd=1, imm=DATA_BASE),
            Instr(Op.MOVI, rd=2, imm=3),       # index
            Instr(Op.MOVI, rd=3, imm=77),
            Instr(Op.STX, rd=3, ra=1, rb=2, imm=0),
            Instr(Op.LDX, rd=4, ra=1, rb=2, imm=0),
        ]
    )
    p.run(100)
    assert p.cpu.iregs[4] == 77
    assert p.memory.read_int(DATA_BASE + 24) == 77


def test_fld_fst():
    p = make_process(
        [
            Instr(Op.MOVI, rd=1, imm=DATA_BASE),
            Instr(Op.FMOVI, rd=2, imm=2.75),
            Instr(Op.FST, rd=2, ra=1, imm=16),
            Instr(Op.FLD, rd=5, ra=1, imm=16),
        ]
    )
    p.run(100)
    assert p.cpu.fregs[5] == 2.75


def test_push_pop():
    p = make_process(
        [
            Instr(Op.MOVI, rd=1, imm=123),
            Instr(Op.PUSH, ra=1),
            Instr(Op.POP, rd=2),
        ]
    )
    p.run(100)
    assert p.cpu.iregs[2] == 123
    assert p.cpu.iregs[SP] == STACK_TOP  # balanced


def test_fpush_fpop():
    p = make_process(
        [
            Instr(Op.FMOVI, rd=1, imm=1.25),
            Instr(Op.FPUSH, ra=1),
            Instr(Op.FPOP, rd=2),
        ]
    )
    p.run(100)
    assert p.cpu.fregs[2] == 1.25


def test_pop_into_sp_keeps_loaded_value():
    p = make_process(
        [
            Instr(Op.MOVI, rd=1, imm=STACK_TOP - 64),
            Instr(Op.PUSH, ra=1),
            Instr(Op.POP, rd=SP),
        ]
    )
    p.run(100)
    assert p.cpu.iregs[SP] == STACK_TOP - 64


def test_null_load_segfaults_precisely():
    p = make_process([Instr(Op.MOVI, rd=1, imm=0), Instr(Op.LD, rd=2, ra=1)])
    result = p.run(100)
    assert result.reason == "terminated"
    assert result.signal is Signal.SIGSEGV
    assert result.trap.pc == 1
    assert result.trap.address == 0
    assert p.cpu.iregs[2] == 0  # destination untouched (precise)


def test_misaligned_access_sigbus():
    p = make_process(
        [Instr(Op.MOVI, rd=1, imm=DATA_BASE + 1), Instr(Op.LD, rd=2, ra=1)]
    )
    result = p.run(100)
    assert result.signal is Signal.SIGBUS


def test_store_fault_does_not_move_sp():
    # push with sp pointing into unmapped space: sp must stay unchanged
    p = make_process([Instr(Op.MOVI, rd=SP, imm=0x10), Instr(Op.PUSH, ra=1)])
    result = p.run(100)
    assert result.signal is Signal.SIGSEGV
    assert p.cpu.iregs[SP] == 0x10


def test_pop_fault_does_not_change_rd():
    p = make_process(
        [
            Instr(Op.MOVI, rd=2, imm=55),
            Instr(Op.MOVI, rd=SP, imm=0x10),
            Instr(Op.POP, rd=2),
        ]
    )
    p.run(100)
    assert p.cpu.iregs[2] == 55


def test_stack_overflow_segfaults():
    instrs = [Instr(Op.MOVI, rd=1, imm=7)]
    # push far beyond the stack reservation
    loop = [
        Instr(Op.PUSH, ra=1),
        Instr(Op.JMP, imm=1),
    ]
    p = make_process(instrs + loop)
    result = p.run(10**6)
    assert result.reason == "terminated"
    assert result.signal is Signal.SIGSEGV


def test_trap_exception_str():
    p = make_process([Instr(Op.MOVI, rd=1, imm=0), Instr(Op.LD, rd=2, ra=1)])
    result = p.run(100)
    text = str(result.trap)
    assert "SIGSEGV" in text and "pc=1" in text
