"""DebugSession: the gdb-substitute control surface."""

import pytest

from repro.isa import Instr, Op, Program
from repro.machine import (
    STOP_BREAKPOINT,
    STOP_BUDGET,
    STOP_EXITED,
    STOP_STEPS_DONE,
    STOP_TRAP,
    DebugSession,
    Process,
    ProcessStatus,
    Signal,
)


def make_session(instrs):
    program = Program(instrs=list(instrs), functions={"main": 0})
    return DebugSession(Process.load(program))


COUNTER_LOOP = [
    Instr(Op.MOVI, rd=1, imm=0),          # 0
    Instr(Op.ADDI, rd=1, ra=1, imm=1),    # 1
    Instr(Op.MOVI, rd=2, imm=10),         # 2
    Instr(Op.SLT, rd=3, ra=1, rb=2),      # 3
    Instr(Op.BNEZ, ra=3, imm=1),          # 4
    Instr(Op.HALT),                       # 5
]


def test_cont_to_exit():
    s = make_session(COUNTER_LOOP)
    event = s.cont(10**6)
    assert event.kind == STOP_EXITED
    assert s.process.status is ProcessStatus.EXITED
    assert s.read_reg("r1") == 10


def test_cont_budget():
    s = make_session([Instr(Op.JMP, imm=0)])
    event = s.cont(50)
    assert event.kind == STOP_BUDGET
    assert event.steps == 50


def test_run_steps_exact():
    s = make_session(COUNTER_LOOP)
    event = s.run_steps(3)
    assert event.kind == STOP_STEPS_DONE
    assert event.steps == 3
    assert s.process.cpu.instret == 3


def test_trap_stops_without_killing():
    s = make_session([Instr(Op.MOVI, rd=1, imm=0), Instr(Op.LD, rd=2, ra=1)])
    event = s.cont(100)
    assert event.kind == STOP_TRAP
    assert event.trap.signal is Signal.SIGSEGV
    # unlike Process.run, the process is still RUNNING (gdb-style stop)
    assert s.process.status is ProcessStatus.RUNNING


def test_deliver_default_kills():
    s = make_session([Instr(Op.ABORT)])
    event = s.cont(100)
    s.deliver_default(event.trap)
    assert s.process.status is ProcessStatus.TERMINATED
    assert s.process.term_signal is Signal.SIGABRT


def test_resume_after_trap_with_pc_advance():
    s = make_session(
        [
            Instr(Op.MOVI, rd=1, imm=0),
            Instr(Op.LD, rd=2, ra=1),  # faults
            Instr(Op.MOVI, rd=3, imm=42),
            Instr(Op.HALT),
        ]
    )
    event = s.cont(100)
    assert event.kind == STOP_TRAP
    s.set_pc(event.pc + 1)  # the LetGo move
    event = s.cont(100)
    assert event.kind == STOP_EXITED
    assert s.read_reg("r3") == 42


def test_breakpoint():
    s = make_session(COUNTER_LOOP)
    s.set_breakpoint(5)
    event = s.cont(10**6)
    assert event.kind == STOP_BREAKPOINT
    assert event.pc == 5
    assert s.read_reg("r1") == 10


def test_breakpoint_hit_repeatedly():
    s = make_session(COUNTER_LOOP)
    s.set_breakpoint(1)
    hits = 0
    while True:
        event = s.cont(10**6)
        if event.kind != STOP_BREAKPOINT:
            break
        hits += 1
    assert hits == 10
    assert event.kind == STOP_EXITED


def test_clear_breakpoint():
    s = make_session(COUNTER_LOOP)
    s.set_breakpoint(1)
    s.clear_breakpoint(1)
    assert s.cont(10**6).kind == STOP_EXITED


def test_read_write_regs():
    s = make_session(COUNTER_LOOP)
    s.write_reg("r7", -5)
    assert s.read_reg("r7") == -5
    s.write_reg("f3", 2.5)
    assert s.read_reg("f3") == 2.5
    s.write_reg("pc", 5)
    assert s.read_reg("pc") == 5
    with pytest.raises(KeyError):
        s.read_reg("nope")
    with pytest.raises(KeyError):
        s.write_reg("nope", 0)


def test_read_write_mem(demo_program):
    s = DebugSession(Process.load(demo_program))
    addr = demo_program.data_symbols["cnt"].addr
    assert s.read_mem(addr) == 5
    s.write_mem(addr, 2)
    s.cont(10**6)
    assert s.process.output == [("f", 1.0), ("i", 2)]  # 0^2 + 1^2


def test_last_stop_recorded():
    s = make_session(COUNTER_LOOP)
    event = s.cont(10**6)
    assert s.last_stop is event
    assert "exited" in str(event)
