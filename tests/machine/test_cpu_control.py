"""CPU control flow: branches, calls, rets, halt, fetch faults, output."""

import pytest

from repro.isa import STACK_TOP, Instr, Op, Program
from repro.isa.registers import SP
from repro.machine import CPU, Memory, Process, Signal


def make_process(instrs, functions=None):
    program = Program(
        instrs=list(instrs),
        functions=functions or {"main": 0},
    )
    return Process.load(program)


def test_jmp():
    p = make_process(
        [
            Instr(Op.JMP, imm=2),
            Instr(Op.MOVI, rd=1, imm=111),  # skipped
            Instr(Op.HALT),
        ]
    )
    p.run(10)
    assert p.cpu.iregs[1] == 0


def test_beqz_taken_and_not():
    p = make_process(
        [
            Instr(Op.MOVI, rd=1, imm=0),
            Instr(Op.BEQZ, ra=1, imm=3),
            Instr(Op.MOVI, rd=2, imm=5),  # skipped
            Instr(Op.MOVI, rd=3, imm=7),
            Instr(Op.HALT),
        ]
    )
    p.run(10)
    assert p.cpu.iregs[2] == 0 and p.cpu.iregs[3] == 7


def test_bnez():
    p = make_process(
        [
            Instr(Op.MOVI, rd=1, imm=1),
            Instr(Op.BNEZ, ra=1, imm=3),
            Instr(Op.MOVI, rd=2, imm=5),
            Instr(Op.HALT),
        ]
    )
    p.run(10)
    assert p.cpu.iregs[2] == 0


def test_call_ret():
    p = make_process(
        [
            Instr(Op.CALL, imm=3),
            Instr(Op.MOVI, rd=2, imm=9),
            Instr(Op.HALT),
            Instr(Op.MOVI, rd=1, imm=4),  # callee
            Instr(Op.RET),
        ],
        functions={"main": 0, "callee": 3},
    )
    p.run(20)
    assert p.cpu.iregs[1] == 4 and p.cpu.iregs[2] == 9
    assert p.cpu.iregs[SP] == STACK_TOP


def test_ret_to_garbage_fetch_faults():
    p = make_process(
        [
            Instr(Op.MOVI, rd=1, imm=99999),
            Instr(Op.PUSH, ra=1),
            Instr(Op.RET),
        ]
    )
    result = p.run(10)
    assert result.reason == "terminated"
    assert result.signal is Signal.SIGSEGV
    assert result.trap.instr is None  # fetch fault carries no instruction
    assert result.trap.pc == 99999


def test_negative_pc_fetch_faults():
    p = make_process([Instr(Op.JMP, imm=-5), Instr(Op.HALT)])
    result = p.run(10)
    assert result.signal is Signal.SIGSEGV


def test_halt_exit_code_from_r0():
    p = make_process([Instr(Op.MOVI, rd=0, imm=3), Instr(Op.HALT)])
    result = p.run(10)
    assert result.reason == "exited"
    assert p.exit_code == 3


def test_out_fout_stream_order():
    p = make_process(
        [
            Instr(Op.MOVI, rd=1, imm=4),
            Instr(Op.OUT, ra=1),
            Instr(Op.FMOVI, rd=2, imm=0.5),
            Instr(Op.FOUT, ra=2),
            Instr(Op.HALT),
        ]
    )
    p.run(10)
    assert p.output == [("i", 4), ("f", 0.5)]
    assert p.output_values() == [4, 0.5]


def test_abort_raises_sigabrt():
    p = make_process([Instr(Op.ABORT), Instr(Op.HALT)])
    result = p.run(10)
    assert result.signal is Signal.SIGABRT
    assert result.trap.pc == 0


def test_nop_advances():
    p = make_process([Instr(Op.NOP), Instr(Op.HALT)])
    p.run(10)
    assert p.cpu.instret == 2


def test_budget_stops_without_halt():
    p = make_process([Instr(Op.JMP, imm=0)])
    result = p.run(1000)
    assert result.reason == "budget"
    assert result.steps == 1000
    assert p.cpu.instret == 1000


def test_instret_counts_across_runs():
    p = make_process([Instr(Op.JMP, imm=0)])
    p.run(10)
    p.run(15)
    assert p.cpu.instret == 25


def test_instret_excludes_trapped_instruction():
    p = make_process([Instr(Op.NOP), Instr(Op.ABORT)])
    p.run(10)
    assert p.cpu.instret == 1  # ABORT did not retire


def test_run_profiled_counts(demo_program):
    cpu = CPU(demo_program, Memory())
    # reuse Process.load for a proper memory map instead
    p = Process.load(demo_program)
    counts = [0] * len(demo_program.instrs)
    p.cpu.run_profiled(counts, 10**6)
    assert sum(counts) == p.cpu.instret
    assert counts[0] == 1  # _start executes once
    del cpu


def test_cannot_run_terminated_process():
    p = make_process([Instr(Op.ABORT)])
    p.run(10)
    with pytest.raises(Exception):
        p.run(10)


def test_halt_leaves_pc_on_halt_site():
    """Regression: HALT used to advance pc past the image, so state
    captured at the halt fetch-faulted on resume instead of re-reporting
    a clean halt."""
    p = make_process([Instr(Op.NOP), Instr(Op.HALT)])
    result = p.run(10)
    assert result.reason == "exited"
    assert p.cpu.halted
    assert p.cpu.pc == 1
    assert p.program.instrs[p.cpu.pc].op is Op.HALT
