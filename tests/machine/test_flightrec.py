"""Flight recorder post-mortems."""

from repro.isa import Instr, Op, Program
from repro.machine import Process, Signal
from repro.machine.flightrec import record


def make_process(instrs):
    return Process.load(Program(instrs=list(instrs), functions={"main": 0}))


def test_records_clean_run():
    p = make_process(
        [
            Instr(Op.MOVI, rd=1, imm=1),
            Instr(Op.ADDI, rd=1, ra=1, imm=2),
            Instr(Op.HALT),
        ]
    )
    rec = record(p, max_steps=100)
    assert rec.stopped_by is None
    assert rec.steps == 3
    assert [e.pc for e in rec.entries] == [0, 1, 2]
    assert "movi" in rec.entries[0].text


def test_window_keeps_tail_only():
    loop = [
        Instr(Op.MOVI, rd=1, imm=50),       # 0
        Instr(Op.SUBI, rd=1, ra=1, imm=1),  # 1
        Instr(Op.BNEZ, ra=1, imm=1),        # 2
        Instr(Op.HALT),                     # 3
    ]
    rec = record(make_process(loop), max_steps=10_000, window=8)
    assert len(rec.entries) == 8
    assert rec.entries[-1].pc == 3  # the halt is recorded? no: halt retires
    assert rec.steps > 8


def test_captures_trap_and_tail():
    p = make_process(
        [
            Instr(Op.MOVI, rd=1, imm=5),
            Instr(Op.MOVI, rd=2, imm=0),
            Instr(Op.LD, rd=3, ra=2),  # null deref
            Instr(Op.HALT),
        ]
    )
    rec = record(p, max_steps=100)
    assert rec.stopped_by is not None
    assert rec.stopped_by.signal is Signal.SIGSEGV
    # the faulting instruction did not retire, so the tail ends before it
    assert [e.pc for e in rec.entries] == [0, 1]
    assert rec.final_regs["pc"] == 2


def test_final_regs_snapshot():
    p = make_process([Instr(Op.MOVI, rd=4, imm=-9), Instr(Op.HALT)])
    rec = record(p, max_steps=10)
    assert rec.final_regs["r4"] == -9
    assert "sp" in rec.final_regs and "f0" in rec.final_regs


def test_render_and_tail():
    p = make_process(
        [Instr(Op.MOVI, rd=1, imm=1), Instr(Op.NOP), Instr(Op.HALT)]
    )
    rec = record(p, max_steps=10)
    text = rec.render()
    assert "flight recording" in text and "pc=" in text
    assert len(rec.tail(2)) == 2


def test_budget_stop():
    rec = record(make_process([Instr(Op.JMP, imm=0)]), max_steps=25)
    assert rec.steps == 25
    assert rec.stopped_by is None
