"""CPU floating-point semantics: IEEE behaviour, no traps on fp edge cases."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import INT64_MIN, Instr, Op, Program
from repro.machine import CPU, Memory

FINITE = st.floats(allow_nan=False, allow_infinity=False, width=64)


def make_cpu(instrs):
    program = Program(instrs=list(instrs) + [Instr(Op.HALT)], functions={"main": 0})
    return CPU(program, Memory())


def run_fop(op, a=0.0, b=0.0):
    cpu = make_cpu([Instr(op, rd=3, ra=1, rb=2)])
    cpu.fregs[1] = a
    cpu.fregs[2] = b
    cpu.run(1)
    return cpu.fregs[3]


@given(FINITE, FINITE)
@settings(max_examples=150)
def test_fadd_matches_python(a, b):
    assert run_fop(Op.FADD, a, b) == a + b


@given(FINITE, FINITE)
@settings(max_examples=100)
def test_fmul_matches_python(a, b):
    assert run_fop(Op.FMUL, a, b) == a * b


def test_fdiv_by_zero_is_inf_not_trap():
    assert run_fop(Op.FDIV, 1.0, 0.0) == math.inf
    assert run_fop(Op.FDIV, -1.0, 0.0) == -math.inf
    assert run_fop(Op.FDIV, 1.0, -0.0) == -math.inf
    assert math.isnan(run_fop(Op.FDIV, 0.0, 0.0))
    assert math.isnan(run_fop(Op.FDIV, math.nan, 0.0))


def test_fdiv_normal():
    assert run_fop(Op.FDIV, 7.0, 2.0) == 3.5


def test_fsqrt_negative_is_nan():
    assert math.isnan(run_fop(Op.FSQRT, -1.0))
    assert run_fop(Op.FSQRT, 4.0) == 2.0
    assert math.isnan(run_fop(Op.FSQRT, math.nan))


def test_fabs_fneg():
    assert run_fop(Op.FABS, -3.5) == 3.5
    assert run_fop(Op.FNEG, 2.0) == -2.0
    assert run_fop(Op.FNEG, -0.0) == 0.0


def test_fmin_fmax():
    assert run_fop(Op.FMIN, 1.0, 2.0) == 1.0
    assert run_fop(Op.FMAX, 1.0, 2.0) == 2.0


def test_overflow_to_inf():
    assert run_fop(Op.FMUL, 1e308, 1e308) == math.inf


@pytest.mark.parametrize(
    "op,a,b,expected",
    [
        (Op.FEQ, 1.0, 1.0, 1),
        (Op.FEQ, 1.0, 2.0, 0),
        (Op.FNE, 1.0, 2.0, 1),
        (Op.FLT, 1.0, 2.0, 1),
        (Op.FLE, 2.0, 2.0, 1),
        (Op.FLT, math.nan, 1.0, 0),   # NaN compares false
        (Op.FEQ, math.nan, math.nan, 0),
        (Op.FNE, math.nan, math.nan, 1),
    ],
)
def test_float_compares_write_int(op, a, b, expected):
    cpu = make_cpu([Instr(op, rd=4, ra=1, rb=2)])
    cpu.fregs[1] = a
    cpu.fregs[2] = b
    cpu.run(1)
    assert cpu.iregs[4] == expected


def test_itof():
    cpu = make_cpu([Instr(Op.ITOF, rd=1, ra=2)])
    cpu.iregs[2] = -7
    cpu.run(1)
    assert cpu.fregs[1] == -7.0


def test_ftoi_truncates():
    for value, expected in [(2.9, 2), (-2.9, -2), (0.0, 0)]:
        cpu = make_cpu([Instr(Op.FTOI, rd=1, ra=2)])
        cpu.fregs[2] = value
        cpu.run(1)
        assert cpu.iregs[1] == expected


def test_ftoi_indefinite_like_x86():
    for value in (math.nan, math.inf, -math.inf, 1e300):
        cpu = make_cpu([Instr(Op.FTOI, rd=1, ra=2)])
        cpu.fregs[2] = value
        cpu.run(1)
        assert cpu.iregs[1] == INT64_MIN


def test_fmov_fmovi():
    cpu = make_cpu([Instr(Op.FMOVI, rd=1, imm=2.5), Instr(Op.FMOV, rd=2, ra=1)])
    cpu.run(2)
    assert cpu.fregs[1] == 2.5 and cpu.fregs[2] == 2.5


def test_fmin_fmax_nan_loses_to_number():
    """Regression: IEEE-754 minNum/maxNum -- the non-NaN operand wins.

    The old `a if a < b else b` returned the NaN whenever b was NaN
    (any comparison with NaN is False), which corrupted SDC
    classification after exponent-bit flips.  See FAULT_MODEL.md.
    """
    assert run_fop(Op.FMIN, math.nan, 2.0) == 2.0
    assert run_fop(Op.FMIN, 2.0, math.nan) == 2.0
    assert run_fop(Op.FMAX, math.nan, -3.0) == -3.0
    assert run_fop(Op.FMAX, -3.0, math.nan) == -3.0
    assert math.isnan(run_fop(Op.FMIN, math.nan, math.nan))
    assert math.isnan(run_fop(Op.FMAX, math.nan, math.nan))


def test_fmin_fmax_nan_semantics_backend_invariant():
    from repro.machine import CompiledCPU, Memory
    from repro.isa import Program

    for cls in (CPU, CompiledCPU):
        for op, expected in ((Op.FMIN, 2.0), (Op.FMAX, 2.0)):
            program = Program(
                instrs=[Instr(op, rd=3, ra=1, rb=2), Instr(Op.HALT)],
                functions={"main": 0},
            )
            cpu = cls(program, Memory())
            cpu.fregs[1] = math.nan
            cpu.fregs[2] = 2.0
            cpu.run(1)
            assert cpu.fregs[3] == expected, cls.__name__
