"""``CPU.run_probed``: instret-bucketed progress probes on both backends.

The telemetry progress probe slices a budget through the public ``run``
contract, so trap sites, retirement counts and stop reasons must be
bit-identical to one unprobed ``run`` call -- on the interpreter and the
compiled backend alike.
"""

from __future__ import annotations

import pytest

from repro.isa import assemble
from repro.machine.cpu import STOP_HALT, STOP_STEPS
from repro.machine.process import Process
from repro.machine.signals import Trap

BACKENDS = ("interpreter", "compiled")

FAULTY_ASM = """
.text
.entry main
.func main
main:
    movi r1, #0
    movi r2, #50
loop:
    addi r1, r1, #1
    slt r3, r1, r2
    bnez r3, loop
    movi r4, #1
    ld r5, [r4 + 0]
    halt
"""


def _state(process):
    cpu = process.cpu
    return (cpu.pc, cpu.instret, cpu.halted, list(cpu.iregs), list(cpu.fregs))


@pytest.fixture(scope="module")
def demo(demo_program):
    return demo_program


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("interval", [1, 7, 64, 10_000])
def test_probed_run_matches_plain_run(demo, backend, interval):
    plain = Process.load(demo, backend=backend)
    stop_plain = plain.cpu.run(10_000)

    probed = Process.load(demo, backend=backend)
    seen: list[int] = []
    stop_probed = probed.cpu.run_probed(10_000, seen.append, interval)

    assert stop_probed == stop_plain == STOP_HALT
    assert _state(probed) == _state(plain)
    assert probed.output == plain.output
    # Monotone probe trail ending at the final retirement count.
    assert seen == sorted(seen)
    assert seen[-1] == probed.cpu.instret


@pytest.mark.parametrize("backend", BACKENDS)
def test_probed_budget_exhaustion_is_exact(demo, backend):
    budget = 37
    plain = Process.load(demo, backend=backend)
    assert plain.cpu.run(budget) == STOP_STEPS

    probed = Process.load(demo, backend=backend)
    seen: list[int] = []
    assert probed.cpu.run_probed(budget, seen.append, 10) == STOP_STEPS
    assert _state(probed) == _state(plain)
    assert probed.cpu.instret == budget
    assert seen == [10, 20, 30, 37]


@pytest.mark.parametrize("backend", BACKENDS)
def test_probed_trap_propagates_at_same_site(backend):
    program = assemble(FAULTY_ASM, "probe-faulty")
    plain = Process.load(program, backend=backend)
    with pytest.raises(Trap) as plain_trap:
        plain.cpu.run(10_000)

    probed = Process.load(program, backend=backend)
    seen: list[int] = []
    with pytest.raises(Trap) as probed_trap:
        probed.cpu.run_probed(10_000, seen.append, 16)

    assert probed_trap.value.signal == plain_trap.value.signal
    assert _state(probed) == _state(plain)
    # The bucket the trap interrupted never completed, so no trailing probe.
    assert all(i <= probed.cpu.instret for i in seen)


@pytest.mark.parametrize("backend", BACKENDS)
def test_probe_interval_must_be_positive(demo, backend):
    process = Process.load(demo, backend=backend)
    with pytest.raises(ValueError, match="interval"):
        process.cpu.run_probed(10, lambda _: None, 0)
