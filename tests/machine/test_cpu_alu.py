"""CPU integer ALU semantics: 64-bit wraparound, shifts, div/mod, compares."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import INT64_MAX, INT64_MIN, Instr, Op, Program
from repro.machine import CPU, Memory, Signal, Trap

I64 = st.integers(INT64_MIN, INT64_MAX)


def make_cpu():
    program = Program(instrs=[Instr(Op.HALT)], functions={"main": 0})
    return CPU(program, Memory())


def run_op(op, a=0, b=0, imm=0):
    cpu = make_cpu()
    cpu.iregs[1] = a
    cpu.iregs[2] = b
    cpu.instrs = [Instr(op, rd=3, ra=1, rb=2, imm=imm), Instr(Op.HALT)]
    cpu._n_instrs = 2
    cpu.run(1)
    return cpu.iregs[3]


def _wrap(x):
    x &= (1 << 64) - 1
    return x - (1 << 64) if x >= (1 << 63) else x


@given(I64, I64)
@settings(max_examples=150)
def test_add_wraps(a, b):
    assert run_op(Op.ADD, a, b) == _wrap(a + b)


@given(I64, I64)
@settings(max_examples=150)
def test_sub_wraps(a, b):
    assert run_op(Op.SUB, a, b) == _wrap(a - b)


@given(I64, I64)
@settings(max_examples=100)
def test_mul_wraps(a, b):
    assert run_op(Op.MUL, a, b) == _wrap(a * b)


def test_add_overflow_wraps_exactly():
    assert run_op(Op.ADD, INT64_MAX, 1) == INT64_MIN


def test_div_truncates_toward_zero():
    assert run_op(Op.DIV, 7, 2) == 3
    assert run_op(Op.DIV, -7, 2) == -3
    assert run_op(Op.DIV, 7, -2) == -3
    assert run_op(Op.DIV, -7, -2) == 3


def test_mod_sign_of_dividend():
    assert run_op(Op.MOD, 7, 3) == 1
    assert run_op(Op.MOD, -7, 3) == -1
    assert run_op(Op.MOD, 7, -3) == 1
    assert run_op(Op.MOD, -7, -3) == -1


@given(I64, I64.filter(lambda b: b != 0))
@settings(max_examples=150)
def test_div_mod_identity(a, b):
    q = run_op(Op.DIV, a, b)
    r = run_op(Op.MOD, a, b)
    assert _wrap(q * b + r) == a


def test_div_by_zero_traps():
    cpu = make_cpu()
    cpu.instrs = [Instr(Op.DIV, rd=3, ra=1, rb=2), Instr(Op.HALT)]
    cpu._n_instrs = 2
    with pytest.raises(Trap) as info:
        cpu.run(1)
    assert info.value.signal is Signal.SIGFPE
    assert cpu.pc == 0  # precise: pc still at the faulter
    assert cpu.instret == 0  # did not retire


def test_mod_by_zero_traps():
    cpu = make_cpu()
    cpu.instrs = [Instr(Op.MOD, rd=3, ra=1, rb=2), Instr(Op.HALT)]
    cpu._n_instrs = 2
    with pytest.raises(Trap):
        cpu.run(1)


def test_shifts_mask_count():
    assert run_op(Op.SHL, 1, 64) == 1       # 64 & 63 == 0
    assert run_op(Op.SHL, 1, 65) == 2
    assert run_op(Op.SHR, -8, 1) == -4      # arithmetic
    assert run_op(Op.SHR, 8, 200) == 8 >> (200 & 63)


def test_shift_immediates():
    assert run_op(Op.SHLI, 3, imm=2) == 12
    assert run_op(Op.SHRI, -16, imm=2) == -4


def test_bitwise():
    assert run_op(Op.AND, 0b1100, 0b1010) == 0b1000
    assert run_op(Op.OR, 0b1100, 0b1010) == 0b1110
    assert run_op(Op.XOR, 0b1100, 0b1010) == 0b0110
    assert run_op(Op.AND, -1, 5) == 5


def test_neg_not():
    assert run_op(Op.NEG, 5) == -5
    assert run_op(Op.NEG, INT64_MIN) == INT64_MIN  # classic wrap
    assert run_op(Op.NOT, 0) == -1


def test_imm_forms():
    assert run_op(Op.ADDI, 5, imm=3) == 8
    assert run_op(Op.SUBI, 5, imm=3) == 2
    assert run_op(Op.MULI, 5, imm=3) == 15
    assert run_op(Op.ANDI, 0b111, imm=0b101) == 0b101
    assert run_op(Op.ORI, 0b001, imm=0b100) == 0b101
    assert run_op(Op.XORI, 0b111, imm=0b010) == 0b101


@pytest.mark.parametrize(
    "op,a,b,expected",
    [
        (Op.SEQ, 3, 3, 1),
        (Op.SEQ, 3, 4, 0),
        (Op.SNE, 3, 4, 1),
        (Op.SLT, -1, 0, 1),
        (Op.SLT, 0, 0, 0),
        (Op.SLE, 0, 0, 1),
        (Op.SLE, 1, 0, 0),
    ],
)
def test_compares(op, a, b, expected):
    assert run_op(op, a, b) == expected


def test_mov_movi():
    cpu = make_cpu()
    cpu.instrs = [
        Instr(Op.MOVI, rd=1, imm=-42),
        Instr(Op.MOV, rd=2, ra=1),
        Instr(Op.HALT),
    ]
    cpu._n_instrs = 3
    cpu.run(10)
    assert cpu.iregs[1] == -42 and cpu.iregs[2] == -42
