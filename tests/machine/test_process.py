"""Process: loading, memory map, status lifecycle, register snapshots."""

import pytest

from repro.errors import LoaderError
from repro.isa import (
    DATA_BASE,
    STACK_LIMIT,
    STACK_TOP,
    Instr,
    Op,
    Program,
)
from repro.isa.program import DataSymbol
from repro.isa.registers import BP, SP
from repro.machine import Process, ProcessStatus


def test_load_sets_sp_bp_pc(demo_program):
    p = Process.load(demo_program)
    assert p.cpu.iregs[SP] == STACK_TOP
    assert p.cpu.iregs[BP] == STACK_TOP
    assert p.cpu.pc == demo_program.entry_pc
    assert p.status is ProcessStatus.RUNNING


def test_data_segment_mapped_and_initialised(demo_program):
    p = Process.load(demo_program)
    cnt = demo_program.data_symbols["cnt"]
    assert p.memory.read_int(cnt.addr) == 5
    vals = demo_program.data_symbols["vals"]
    assert p.memory.read_float(vals.addr) == 1.5
    assert p.memory.read_float(vals.addr + 8) == 2.5


def test_stack_mapped():
    program = Program(instrs=[Instr(Op.HALT)], functions={"main": 0})
    p = Process.load(program)
    assert p.memory.is_mapped(STACK_LIMIT)
    assert p.memory.is_mapped(STACK_TOP - 8)
    assert not p.memory.is_mapped(STACK_TOP)
    assert not p.memory.is_mapped(STACK_LIMIT - 8)


def test_no_data_segment_when_no_globals():
    program = Program(instrs=[Instr(Op.HALT)], functions={"main": 0})
    p = Process.load(program)
    assert not p.memory.is_mapped(DATA_BASE)


def test_empty_program_rejected():
    with pytest.raises(LoaderError):
        Process.load(Program(instrs=[], functions={}))


def test_run_to_exit(demo_program):
    p = Process.load(demo_program)
    result = p.run(10**6)
    assert result.reason == "exited"
    assert p.status is ProcessStatus.EXITED
    assert p.output == [("f", 30.0), ("i", 5)]


def test_fresh_loads_independent(demo_program):
    a = Process.load(demo_program)
    b = Process.load(demo_program)
    a.run(10**6)
    assert b.cpu.instret == 0
    assert b.status is ProcessStatus.RUNNING


def test_terminated_process_records_trap():
    program = Program(
        instrs=[Instr(Op.MOVI, rd=1, imm=0), Instr(Op.LD, rd=2, ra=1)],
        functions={"main": 0},
    )
    p = Process.load(program)
    result = p.run(10)
    assert p.status is ProcessStatus.TERMINATED
    assert p.term_signal is result.signal
    assert p.last_trap is result.trap


def test_snapshot_registers(demo_program):
    p = Process.load(demo_program)
    snap = p.snapshot_registers()
    assert snap["sp"] == STACK_TOP
    assert snap["pc"] == demo_program.entry_pc
    assert snap["f0"] == 0.0
    assert len([k for k in snap if k.startswith("r")]) == 14  # r0..r13
