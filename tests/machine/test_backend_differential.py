"""Differential suite: interpreter vs compiled backend, bit-identical.

The compiled backend is only admissible if no observable differs from the
reference interpreter: golden-run facts, architectural state at arbitrary
pause points, trap sites and signals, and -- the property campaigns stand
on -- injection outcomes addressed by ``dyn_index``.  Every check here
runs the same workload on both backends and compares exhaustively.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import VARIANTS
from repro.faultinject.fault_model import plan_injections
from repro.faultinject.injector import run_injection
from repro.isa import Instr, Op, Program
from repro.machine import CPU, CompiledCPU, Process, Signal
from repro.machine.signals import Trap

APP_NAMES = ("lulesh", "clamr", "hpl", "comd", "snap", "pennant")

BACKENDS = ("interpreter", "compiled")


def _fresh(program: Program, backend: str) -> Process:
    return Process.load(program, backend=backend)


# -- unit-level: trap sites and budget accounting ---------------------------


def test_backend_classes_differ():
    p_i = Process.load(
        Program(instrs=[Instr(Op.HALT)], functions={"main": 0}),
        backend="interpreter",
    )
    p_c = Process.load(
        Program(instrs=[Instr(Op.HALT)], functions={"main": 0}),
        backend="compiled",
    )
    assert type(p_i.cpu) is CPU
    assert isinstance(p_c.cpu, CompiledCPU)
    assert p_i.backend == "interpreter"
    assert p_c.backend == "compiled"


def test_unknown_backend_rejected():
    program = Program(instrs=[Instr(Op.HALT)], functions={"main": 0})
    with pytest.raises(ValueError):
        Process.load(program, backend="jit")


def test_budget_stop_at_wild_pc_matches_interpreter():
    """Budget expiring right after an out-of-image jump must stop with the
    wild pc and *no* trap (the fault belongs to the next fetch)."""
    program = Program(
        instrs=[
            Instr(Op.MOVI, rd=1, imm=99999),
            Instr(Op.PUSH, ra=1),
            Instr(Op.RET),
        ],
        functions={"main": 0},
    )
    states = []
    for backend in BACKENDS:
        process = _fresh(program, backend)
        cpu = process.cpu
        stop = cpu.run(3)          # exactly consumes the budget on the RET
        assert stop == "steps"
        assert cpu.pc == 99999     # wild pc exposed, not trapped
        assert cpu.instret == 3
        with pytest.raises(Trap) as info:
            cpu.run(1)             # the next fetch faults
        assert info.value.signal is Signal.SIGSEGV
        assert info.value.pc == 99999
        assert info.value.instr is None
        states.append((cpu.pc, cpu.instret, str(info.value)))
    assert states[0] == states[1]


def test_trapped_instruction_not_retired_both_backends():
    program = Program(
        instrs=[Instr(Op.NOP), Instr(Op.ABORT), Instr(Op.HALT)],
        functions={"main": 0},
    )
    for backend in BACKENDS:
        cpu = _fresh(program, backend).cpu
        with pytest.raises(Trap) as info:
            cpu.run(10)
        assert cpu.instret == 1, backend
        assert cpu.pc == 1, backend
        assert info.value.pc == 1


def test_fused_pair_respects_step_budget():
    """cmp+branch fuses; a budget landing between the two must still split
    them (the final budgeted step runs unfused)."""
    program = Program(
        instrs=[
            Instr(Op.MOVI, rd=1, imm=0),
            Instr(Op.MOVI, rd=2, imm=1),
            Instr(Op.SLT, rd=3, ra=1, rb=2),   # fuses with the BNEZ below
            Instr(Op.BNEZ, ra=3, imm=5),
            Instr(Op.HALT),
            Instr(Op.HALT),
        ],
        functions={"main": 0},
    )
    for budget in range(1, 6):
        pcs = []
        for backend in BACKENDS:
            cpu = _fresh(program, backend).cpu
            stop = cpu.run(budget)
            pcs.append((stop, cpu.pc, cpu.instret, cpu.iregs[3]))
        assert pcs[0] == pcs[1], f"budget={budget}"


def test_lockstep_random_budgets_demo(demo_program):
    """Pause both backends at random points; every pause must agree on the
    complete architectural state."""
    rng = random.Random(20260806)
    a = _fresh(demo_program, "interpreter").cpu
    b = _fresh(demo_program, "compiled").cpu
    while not a.halted:
        k = rng.choice([1, 1, 2, 3, 5, 8, 13, 50])
        ra, rb = a.run(k), b.run(k)
        assert ra == rb
        assert (a.pc, a.instret) == (b.pc, b.instret)
        assert a.iregs == b.iregs
        assert a.fregs == b.fregs
    assert a.output == b.output
    assert a.exit_code == b.exit_code
    assert a.memory.written_cells() == b.memory.written_cells()


# -- app-level: golden runs --------------------------------------------------


@pytest.mark.parametrize("name", APP_NAMES)
def test_golden_run_bit_identical(suite, name):
    app = suite[name]
    facts = []
    for backend in BACKENDS:
        process = app.load(backend)
        result = process.run(app.max_steps)
        facts.append(
            (
                result.reason,
                process.cpu.instret,
                process.cpu.pc,
                process.exit_code,
                tuple(process.output),
            )
        )
    assert facts[0] == facts[1]
    # and both agree with the cached golden facts
    assert facts[0][1] == app.golden.instret
    assert facts[0][4] == app.golden.output


# -- app-level: seeded injection sample --------------------------------------

#: Injections per (app, config) pair.  Small but seeded: dyn_index spreads
#: across the run, bit positions across the word, so crash/benign/SDC and
#: repair paths all appear across the suite.
N_PLANS = 5


def _result_facts(result):
    return (
        result.outcome,
        result.target_pc,
        result.target_reg,
        result.first_signal,
        result.interventions,
        result.steps,
        result.timed_out,
    )


@pytest.mark.parametrize("name", APP_NAMES)
@pytest.mark.parametrize("config_name", [None, "LetGo-E"])
def test_injection_outcomes_bit_identical(suite, name, config_name):
    app = suite[name]
    config = VARIANTS[config_name] if config_name else None
    rng = np.random.default_rng(0xD1FF + len(name))
    plans = plan_injections(rng, app.golden.instret, N_PLANS)
    for plan in plans:
        facts = [
            _result_facts(run_injection(app, plan, config, backend=backend))
            for backend in BACKENDS
        ]
        assert facts[0] == facts[1], (name, config_name, plan)
