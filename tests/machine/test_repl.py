"""The gdb-style REPL, driven as pexpect drove gdb."""

import pytest

from repro.isa import assemble
from repro.machine.repl import DebuggerRepl, run_script

CRASHY = """
.text
.entry main
.func main
main:
    push bp
    mov bp, sp
    subi sp, sp, #16
    movi r1, #7
    movi r2, #0
    ld r3, [r2 + 0]     ; null deref at pc 5
    movi r4, #42
    out r4
    movi r0, #0
    addi sp, sp, #16
    pop bp
    halt
"""


@pytest.fixture
def repl():
    return DebuggerRepl(assemble(CRASHY, "crashy"))


def test_help(repl):
    assert "break" in repl.execute("help")


def test_unknown_command(repl):
    assert "unknown command" in repl.execute("frobnicate")


def test_run_hits_trap(repl):
    reply = repl.execute("run")
    assert "SIGSEGV" in reply
    assert "handle letgo" in reply


def test_breakpoints(repl):
    assert "pc=3" in repl.execute("break 3")
    assert "breakpoint hit at pc=3" in repl.execute("run")
    assert "breakpoints: [3]" in repl.execute("info breakpoints")
    repl.execute("delete 3")
    assert "no breakpoints" in repl.execute("info breakpoints")


def test_step_and_where(repl):
    reply = repl.execute("step 4")
    assert "pc=4 in main" in reply


def test_print_and_set(repl):
    repl.execute("step 4")
    assert "r1 = 7" in repl.execute("print r1")
    repl.execute("set r1 99")
    assert "r1 = 99" in repl.execute("print r1")
    repl.execute("set f2 2.5")
    assert "f2 = 2.5" in repl.execute("print f2")
    assert "unknown register" in repl.execute("print zz")


def test_memory_access(repl):
    repl.execute("step 2")  # sp moved below STACK_TOP by the push
    sp = repl.session.read_reg("sp")
    assert "mem[" in repl.execute(f"print *{sp}")
    assert "<-" in repl.execute(f"setmem {sp} 0x1234")
    assert "1234" in repl.execute(f"print *{sp}")


def test_info_regs(repl):
    reply = repl.execute("info regs")
    assert "pc = 0" in reply and "sp" in reply


def test_disas_marks_pc(repl):
    reply = repl.execute("disas 0 4")
    assert "=>" in reply
    assert "push bp" in reply


def test_handle_letgo_repairs_and_continues(repl):
    repl.execute("run")
    reply = repl.execute("handle letgo")
    assert "repaired (LetGo-E)" in reply
    assert "fill-load" in reply
    reply = repl.execute("continue")
    assert "exited with code 0" in reply
    assert repl.session.process.output_values() == [42]


def test_handle_letgo_b(repl):
    repl.execute("run")
    reply = repl.execute("handle letgo B")
    assert "LetGo-B" in reply and "pc advance only" in reply


def test_handle_without_trap(repl):
    assert "no pending trap" in repl.execute("handle letgo")


def test_info_trap(repl):
    assert "no pending trap" in repl.execute("info trap")
    repl.execute("run")
    assert "SIGSEGV" in repl.execute("info trap")


def test_run_script_quits():
    replies = run_script(
        assemble(CRASHY), ["break 3", "quit", "print r1"]
    )
    assert replies[-1] == "bye"
    assert len(replies) == 2


def test_full_letgo_session_via_script():
    """The paper's whole flow, as a command script."""
    replies = run_script(
        assemble(CRASHY),
        ["run", "info trap", "handle letgo E", "continue", "quit"],
    )
    assert "SIGSEGV" in replies[0]
    assert "repaired" in replies[2]
    assert "exited" in replies[3]


def test_bad_arguments(repl):
    assert "error" in repl.execute("break")
    assert "error" in repl.execute("set r1")
    assert "error" in repl.execute("set r1 notanumber")
    assert "error" in repl.execute("print *zzz")
    assert "error" in repl.execute("info nonsense")
    assert "error" in repl.execute("handle gdb")
