"""Register-name resolution and architectural roles."""

import pytest

from repro.isa import registers as R


def test_counts():
    assert R.NUM_INT_REGS == 16
    assert R.NUM_FP_REGS == 16
    assert len(R.INT_REG_NAMES) == 16
    assert len(R.FP_REG_NAMES) == 16


def test_sp_bp_are_last_two():
    assert R.BP == 14
    assert R.SP == 15
    assert R.INT_REG_NAMES[R.BP] == "bp"
    assert R.INT_REG_NAMES[R.SP] == "sp"


def test_roundtrip_int_names():
    for i, name in enumerate(R.INT_REG_NAMES):
        assert R.int_reg_index(name) == i
        assert R.int_reg_name(i) == name


def test_roundtrip_fp_names():
    for i, name in enumerate(R.FP_REG_NAMES):
        assert R.fp_reg_index(name) == i
        assert R.fp_reg_name(i) == name


def test_aliases():
    assert R.int_reg_index("r14") == R.BP
    assert R.int_reg_index("r15") == R.SP
    assert R.int_reg_index("SP") == R.SP  # case-insensitive
    assert R.int_reg_index("Bp") == R.BP


def test_is_int_reg():
    assert R.is_int_reg("r0")
    assert R.is_int_reg("sp")
    assert not R.is_int_reg("f0")
    assert not R.is_int_reg("r16")
    assert not R.is_int_reg("x1")


def test_is_fp_reg():
    assert R.is_fp_reg("f0")
    assert R.is_fp_reg("f15")
    assert not R.is_fp_reg("r0")
    assert not R.is_fp_reg("f16")


def test_unknown_name_raises():
    with pytest.raises(KeyError):
        R.int_reg_index("nope")
    with pytest.raises(KeyError):
        R.fp_reg_index("r1")
