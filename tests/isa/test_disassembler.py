"""Disassembler: text output re-assembles to an equivalent program."""

from repro.isa import assemble, disassemble, dump
from repro.machine import Process


def test_roundtrip_demo(demo_program):
    text = disassemble(demo_program)
    back = assemble(text)
    assert back.instrs == demo_program.instrs
    assert back.functions == demo_program.functions
    assert back.data_cells == demo_program.data_cells


def test_roundtrip_minic(demo_unit):
    text = disassemble(demo_unit.program)
    back = assemble(text)
    assert back.instrs == demo_unit.program.instrs


def test_roundtrip_executes_identically(demo_unit):
    program = demo_unit.program
    back = assemble(disassemble(program))
    a = Process.load(program)
    b = Process.load(back)
    a.run(10**7)
    b.run(10**7)
    assert a.output == b.output


def test_data_initializers_preserved(demo_program):
    back = assemble(disassemble(demo_program))
    # 'cnt' has value 5 and 'vals' two doubles; initialised patterns match
    assert back.data_init == demo_program.data_init


def test_dump_contains_symbols(demo_program):
    text = dump(demo_program)
    assert "main:" in text
    assert "_start:" in text
    assert "data arr" in text


def test_dump_lists_every_pc(demo_program):
    text = dump(demo_program)
    for pc in range(len(demo_program.instrs)):
        assert f"{pc:6d}: " in text


def test_labels_generated_for_anonymous_targets():
    program = assemble(
        ".text\n.entry m\n.func m\nm:\n"
        "    movi r1, #3\nt:\n    subi r1, r1, #1\n    bnez r1, t\n    halt\n"
    )
    text = disassemble(program)
    assert ".L" in text
    back = assemble(text)
    assert back.instrs == program.instrs
