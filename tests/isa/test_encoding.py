"""Binary encoding: exact round trips, including property-based coverage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.isa import (
    Instr,
    Op,
    assemble,
    decode_instr,
    decode_program,
    encode_instr,
    encode_program,
)
from repro.isa.instructions import FLOAT_IMM_OPS

_INT_OPS = [op for op in Op if op not in FLOAT_IMM_OPS]


@st.composite
def instructions(draw):
    op = draw(st.sampled_from(list(Op)))
    rd = draw(st.integers(0, 15))
    ra = draw(st.integers(0, 15))
    rb = draw(st.integers(0, 15))
    if op in FLOAT_IMM_OPS:
        imm = draw(
            st.floats(allow_nan=False, allow_infinity=True, width=64)
        )
    else:
        imm = draw(st.integers(-(2**63), 2**63 - 1))
    return Instr(op, rd=rd, ra=ra, rb=rb, imm=imm)


@given(instructions())
@settings(max_examples=300)
def test_instr_roundtrip(instr):
    assert decode_instr(encode_instr(instr)) == instr


def test_record_is_16_bytes():
    assert len(encode_instr(Instr(Op.NOP))) == 16
    assert len(encode_instr(Instr(Op.FMOVI, rd=1, imm=3.14))) == 16


def test_float_imm_bit_exact():
    for value in (0.1, -0.0, 1e308, 5e-324, float("inf")):
        instr = Instr(Op.FMOVI, rd=2, imm=value)
        decoded = decode_instr(encode_instr(instr))
        assert str(decoded.imm) == str(value)


def test_decode_bad_length():
    with pytest.raises(EncodingError):
        decode_instr(b"\x00" * 15)


def test_decode_unknown_opcode():
    blob = bytes([200]) + b"\x00" * 15
    with pytest.raises(EncodingError):
        decode_instr(blob)


def test_program_roundtrip(demo_program):
    blob = encode_program(demo_program)
    back = decode_program(blob)
    assert back.instrs == demo_program.instrs
    assert back.functions == demo_program.functions
    assert back.entry == demo_program.entry
    assert back.data_init == demo_program.data_init
    assert {n: (s.addr, s.cells) for n, s in back.data_symbols.items()} == {
        n: (s.addr, s.cells) for n, s in demo_program.data_symbols.items()
    }
    assert back.checksum() == demo_program.checksum()


def test_program_roundtrip_preserves_syms(demo_program):
    back = decode_program(encode_program(demo_program))
    for mine, theirs in zip(demo_program.instrs, back.instrs):
        assert mine.sym == theirs.sym


def test_bad_magic():
    with pytest.raises(EncodingError):
        decode_program(b"XXXX" + b"\x00" * 20)


def test_truncated_image(demo_program):
    blob = encode_program(demo_program)
    with pytest.raises(EncodingError):
        decode_program(blob[: len(blob) // 4])


def test_short_header():
    with pytest.raises(EncodingError):
        decode_program(b"LG")


def test_minic_program_roundtrip(demo_unit):
    blob = encode_program(demo_unit.program)
    back = decode_program(blob)
    assert back.checksum() == demo_unit.program.checksum()


def test_roundtrip_executes_identically(demo_program):
    from repro.machine import Process

    original = Process.load(demo_program)
    original.run(10**6)
    back = Process.load(decode_program(encode_program(demo_program)))
    back.run(10**6)
    assert back.output == original.output
    assert back.exit_code == original.exit_code
