"""Instruction metadata: classification, written/read registers, text."""

import pytest

from repro.isa import BP, SP
from repro.isa.instructions import (
    BRANCH_OPS,
    LOAD_OPS,
    MEMORY_OPS,
    STORE_OPS,
    Instr,
    Op,
)


def test_load_store_partition_disjoint():
    assert not (LOAD_OPS & STORE_OPS)
    assert LOAD_OPS | STORE_OPS <= MEMORY_OPS


def test_is_load_is_store():
    assert Instr(Op.LD, rd=1, ra=2).is_load()
    assert Instr(Op.FLDX, rd=1, ra=2, rb=3).is_load()
    assert Instr(Op.POP, rd=1).is_load()
    assert Instr(Op.ST, rd=1, ra=2).is_store()
    assert Instr(Op.FPUSH, ra=1).is_store()
    assert not Instr(Op.ADD, rd=1, ra=2, rb=3).is_load()
    assert not Instr(Op.ADD, rd=1, ra=2, rb=3).is_store()


def test_call_ret_are_memory_ops():
    assert Instr(Op.CALL, imm=5).is_memory()
    assert Instr(Op.RET).is_memory()


@pytest.mark.parametrize(
    "instr,expected",
    [
        (Instr(Op.ADD, rd=3, ra=1, rb=2), ("r", 3)),
        (Instr(Op.LD, rd=4, ra=1), ("r", 4)),
        (Instr(Op.FLD, rd=5, ra=1), ("f", 5)),
        (Instr(Op.FADD, rd=6, ra=1, rb=2), ("f", 6)),
        (Instr(Op.POP, rd=7), ("r", 7)),
        (Instr(Op.FTOI, rd=2, ra=3), ("r", 2)),
        (Instr(Op.ITOF, rd=2, ra=3), ("f", 2)),
        (Instr(Op.MOVI, rd=1, imm=9), ("r", 1)),
        (Instr(Op.SEQ, rd=1, ra=2, rb=3), ("r", 1)),
        (Instr(Op.FLT, rd=1, ra=2, rb=3), ("r", 1)),  # float cmp writes int
    ],
)
def test_written_reg(instr, expected):
    assert instr.written_reg() == expected


@pytest.mark.parametrize(
    "instr",
    [
        Instr(Op.ST, rd=1, ra=2),
        Instr(Op.STX, rd=1, ra=2, rb=3),
        Instr(Op.PUSH, ra=1),
        Instr(Op.FPUSH, ra=1),
        Instr(Op.JMP, imm=0),
        Instr(Op.BEQZ, ra=1, imm=0),
        Instr(Op.CALL, imm=0),
        Instr(Op.RET),
        Instr(Op.HALT),
        Instr(Op.OUT, ra=1),
        Instr(Op.NOP),
        Instr(Op.ABORT),
    ],
)
def test_no_written_reg(instr):
    assert instr.written_reg() is None


def test_read_regs_store():
    regs = Instr(Op.STX, rd=4, ra=1, rb=2).read_regs()
    assert ("r", 1) in regs and ("r", 2) in regs and ("r", 4) in regs


def test_read_regs_push_includes_sp():
    assert ("r", SP) in Instr(Op.PUSH, ra=3).read_regs()
    assert ("r", SP) in Instr(Op.RET).read_regs()
    assert ("r", SP) in Instr(Op.CALL, imm=0).read_regs()


def test_read_regs_float_ops():
    regs = Instr(Op.FADD, rd=1, ra=2, rb=3).read_regs()
    assert regs == [("f", 2), ("f", 3)]


def test_uses_frame_regs():
    assert Instr(Op.LD, rd=1, ra=BP, imm=-8).uses_frame_regs()
    assert Instr(Op.PUSH, ra=1).uses_frame_regs()  # implicit sp
    assert not Instr(Op.LD, rd=1, ra=2).uses_frame_regs()
    assert not Instr(Op.ADD, rd=1, ra=2, rb=3).uses_frame_regs()


def test_branch_ops_members():
    assert Op.JMP in BRANCH_OPS
    assert Op.CALL in BRANCH_OPS
    assert Op.BEQZ in BRANCH_OPS
    assert Op.RET not in BRANCH_OPS  # target comes from the stack


def test_text_formats_every_opcode():
    samples = {
        Op.NOP: Instr(Op.NOP),
        Op.MOV: Instr(Op.MOV, rd=1, ra=2),
        Op.MOVI: Instr(Op.MOVI, rd=1, imm=42),
        Op.FMOV: Instr(Op.FMOV, rd=1, ra=2),
        Op.FMOVI: Instr(Op.FMOVI, rd=1, imm=1.5),
        Op.LD: Instr(Op.LD, rd=1, ra=2, imm=8),
        Op.ST: Instr(Op.ST, rd=1, ra=2, imm=8),
        Op.LDX: Instr(Op.LDX, rd=1, ra=2, rb=3),
        Op.STX: Instr(Op.STX, rd=1, ra=2, rb=3),
        Op.FLD: Instr(Op.FLD, rd=1, ra=2),
        Op.FST: Instr(Op.FST, rd=1, ra=2),
        Op.FLDX: Instr(Op.FLDX, rd=1, ra=2, rb=3),
        Op.FSTX: Instr(Op.FSTX, rd=1, ra=2, rb=3),
        Op.PUSH: Instr(Op.PUSH, ra=1),
        Op.POP: Instr(Op.POP, rd=1),
        Op.FPUSH: Instr(Op.FPUSH, ra=1),
        Op.FPOP: Instr(Op.FPOP, rd=1),
        Op.JMP: Instr(Op.JMP, imm=3),
        Op.BEQZ: Instr(Op.BEQZ, ra=1, imm=3),
        Op.BNEZ: Instr(Op.BNEZ, ra=1, imm=3),
        Op.CALL: Instr(Op.CALL, imm=3),
        Op.RET: Instr(Op.RET),
        Op.HALT: Instr(Op.HALT),
        Op.OUT: Instr(Op.OUT, ra=1),
        Op.FOUT: Instr(Op.FOUT, ra=1),
        Op.ABORT: Instr(Op.ABORT),
        Op.ITOF: Instr(Op.ITOF, rd=1, ra=2),
        Op.FTOI: Instr(Op.FTOI, rd=1, ra=2),
    }
    for op in Op:
        instr = samples.get(op, Instr(op, rd=1, ra=2, rb=3, imm=4))
        text = instr.text()
        assert isinstance(text, str) and text
        assert text.split()[0] == op.name.lower()


def test_instr_frozen():
    instr = Instr(Op.ADD, rd=1, ra=2, rb=3)
    with pytest.raises(AttributeError):
        instr.rd = 5  # type: ignore[misc]


def test_sym_not_in_equality():
    a = Instr(Op.JMP, imm=3, sym="foo")
    b = Instr(Op.JMP, imm=3, sym="bar")
    assert a == b
