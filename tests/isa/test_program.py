"""Program container: geometry, symbol queries, checksums."""

import pytest

from repro.errors import LoaderError
from repro.isa import DATA_BASE, Instr, Op, Program
from repro.isa.program import DataSymbol


def _prog(**kwargs):
    defaults = dict(
        instrs=[Instr(Op.HALT)],
        functions={"main": 0},
        entry="main",
    )
    defaults.update(kwargs)
    return Program(**defaults)


def test_entry_pc():
    program = _prog(instrs=[Instr(Op.NOP), Instr(Op.HALT)], functions={"main": 1})
    assert program.entry_pc == 1


def test_bad_entry_rejected():
    with pytest.raises(LoaderError):
        _prog(functions={"other": 0})


def test_data_cells_contiguous():
    program = _prog(
        data_symbols={
            "a": DataSymbol("a", DATA_BASE, 4),
            "b": DataSymbol("b", DATA_BASE + 32, 2),
        }
    )
    assert program.data_cells == 6
    assert program.data_end() == DATA_BASE + 48


def test_data_cells_empty():
    assert _prog().data_cells == 0


def test_symbol_for_pc(demo_program):
    assert demo_program.symbol_for_pc(0) == "_start"
    main_pc = demo_program.functions["main"]
    assert demo_program.symbol_for_pc(main_pc) == "main"
    assert demo_program.symbol_for_pc(main_pc + 3) == "main"
    assert demo_program.symbol_for_pc(10**6) is None


def test_function_names_by_pc(demo_program):
    pairs = demo_program.function_names_by_pc()
    assert pairs == sorted(pairs)
    assert pairs[0][1] == "_start"


def test_checksum_stable(demo_program):
    assert demo_program.checksum() == demo_program.checksum()


def test_checksum_changes_with_code(demo_program):
    altered = Program(
        instrs=demo_program.instrs[:-1] + [Instr(Op.NOP)],
        functions=dict(demo_program.functions),
        data_symbols=dict(demo_program.data_symbols),
        data_init=dict(demo_program.data_init),
        entry=demo_program.entry,
    )
    assert altered.checksum() != demo_program.checksum()


def test_len(demo_program):
    assert len(demo_program) == len(demo_program.instrs)
