"""Communication instructions: metadata, assembly, encoding round trips."""

from repro.isa import Instr, Op, assemble, decode_instr, disassemble, encode_instr
from repro.isa.registers import SP


def test_written_regs():
    assert Instr(Op.RANK, rd=3).written_reg() == ("r", 3)
    assert Instr(Op.NRANKS, rd=4).written_reg() == ("r", 4)
    assert Instr(Op.RECV, rd=5, ra=1).written_reg() == ("r", 5)
    assert Instr(Op.FRECV, rd=6, ra=1).written_reg() == ("f", 6)
    assert Instr(Op.SEND, ra=1, rb=2).written_reg() is None
    assert Instr(Op.FSEND, ra=1, rb=2).written_reg() is None


def test_read_regs():
    assert Instr(Op.SEND, ra=1, rb=2).read_regs() == [("r", 1), ("r", 2)]
    assert Instr(Op.FSEND, ra=1, rb=2).read_regs() == [("r", 1), ("f", 2)]
    assert Instr(Op.RECV, rd=5, ra=3).read_regs() == [("r", 3)]
    assert Instr(Op.FRECV, rd=5, ra=3).read_regs() == [("r", 3)]
    assert Instr(Op.RANK, rd=1).read_regs() == []


def test_not_memory_ops():
    assert not Instr(Op.SEND, ra=1, rb=2).is_memory()
    assert not Instr(Op.RECV, rd=1, ra=2).is_load()
    assert not Instr(Op.FSEND, ra=1, rb=2).is_store()


def test_uses_frame_regs_only_via_sp():
    assert Instr(Op.SEND, ra=SP, rb=2).uses_frame_regs()
    assert not Instr(Op.SEND, ra=1, rb=2).uses_frame_regs()


def test_text_round_trips_through_assembler():
    source = (
        ".text\n.entry main\n.func main\nmain:\n"
        "    rank r1\n"
        "    nranks r2\n"
        "    send r1, r3\n"
        "    fsend r1, f4\n"
        "    recv r5, r1\n"
        "    frecv f6, r1\n"
        "    halt\n"
    )
    program = assemble(source)
    expected = [
        Instr(Op.RANK, rd=1),
        Instr(Op.NRANKS, rd=2),
        Instr(Op.SEND, ra=1, rb=3),
        Instr(Op.FSEND, ra=1, rb=4),
        Instr(Op.RECV, rd=5, ra=1),
        Instr(Op.FRECV, rd=6, ra=1),
        Instr(Op.HALT),
    ]
    assert program.instrs == expected
    back = assemble(disassemble(program))
    assert back.instrs == program.instrs


def test_binary_encoding_round_trip():
    for instr in (
        Instr(Op.RANK, rd=7),
        Instr(Op.NRANKS, rd=8),
        Instr(Op.SEND, ra=1, rb=2),
        Instr(Op.FSEND, ra=3, rb=4),
        Instr(Op.RECV, rd=5, ra=6),
        Instr(Op.FRECV, rd=7, ra=8),
    ):
        assert decode_instr(encode_instr(instr)) == instr
