"""Assembler: syntax, symbol resolution, data layout, diagnostics."""

import pytest

from repro.errors import AssemblerError
from repro.isa import DATA_BASE, Instr, Op, assemble
from repro.isa.registers import BP, SP


def _single(line: str, data: str = "") -> Instr:
    src = ""
    if data:
        src += f".data\n{data}\n"
    src += f".text\n.entry main\n.func main\nmain:\n    {line}\n    halt\n"
    return assemble(src).instrs[0]


def test_empty_and_comment_lines_ignored():
    program = assemble(
        "; leading comment\n\n.text\n.entry main\n.func main\nmain:\n halt ; trailing\n"
    )
    assert len(program.instrs) == 1
    assert program.instrs[0].op is Op.HALT


def test_label_same_line_as_instruction():
    program = assemble(
        ".text\n.entry main\n.func main\nmain: halt\n"
    )
    assert program.instrs[0].op is Op.HALT
    assert program.functions["main"] == 0


def test_mov_and_movi():
    assert _single("mov r1, r2") == Instr(Op.MOV, rd=1, ra=2)
    assert _single("movi r3, #-7") == Instr(Op.MOVI, rd=3, imm=-7)
    assert _single("movi r3, #0x10") == Instr(Op.MOVI, rd=3, imm=16)


def test_fmovi_float():
    instr = _single("fmovi f2, #2.5")
    assert instr.op is Op.FMOVI and instr.imm == 2.5


def test_memory_operands():
    assert _single("ld r1, [r2 + 16]") == Instr(Op.LD, rd=1, ra=2, imm=16)
    assert _single("ld r1, [r2 - 8]") == Instr(Op.LD, rd=1, ra=2, imm=-8)
    assert _single("ld r1, [r2]") == Instr(Op.LD, rd=1, ra=2, imm=0)
    assert _single("st [bp - 8], r3") == Instr(Op.ST, rd=3, ra=BP, imm=-8)
    assert _single("ld r1, [r2 + r3*8 + 8]") == Instr(
        Op.LDX, rd=1, ra=2, rb=3, imm=8
    )
    assert _single("fstx [r2 + r4*8 + 0], f1") == Instr(
        Op.FSTX, rd=1, ra=2, rb=4, imm=0
    )


def test_sp_bp_spellings():
    assert _single("push bp") == Instr(Op.PUSH, ra=BP)
    assert _single("mov sp, bp") == Instr(Op.MOV, rd=SP, ra=BP)


def test_alu_three_operand():
    assert _single("add r1, r2, r3") == Instr(Op.ADD, rd=1, ra=2, rb=3)
    assert _single("subi sp, sp, #32") == Instr(Op.SUBI, rd=SP, ra=SP, imm=32)
    assert _single("fmin f1, f2, f3") == Instr(Op.FMIN, rd=1, ra=2, rb=3)
    assert _single("flt r1, f2, f3") == Instr(Op.FLT, rd=1, ra=2, rb=3)


def test_branch_resolution():
    program = assemble(
        ".text\n.entry main\n.func main\nmain:\n"
        "    movi r1, #0\n"
        "top:\n"
        "    addi r1, r1, #1\n"
        "    beqz r1, top\n"
        "    jmp end\n"
        "end:\n"
        "    halt\n"
    )
    beqz = program.instrs[2]
    assert beqz.op is Op.BEQZ and beqz.imm == 1
    jmp = program.instrs[3]
    assert jmp.op is Op.JMP and jmp.imm == 4


def test_data_layout_sequential():
    program = assemble(
        ".data\n"
        "a: .space 4\n"
        "b: .word 7, 8\n"
        "c: .double 1.5\n"
        ".text\n.entry main\n.func main\nmain:\n    halt\n"
    )
    a, b, c = (program.data_symbols[k] for k in "abc")
    assert a.addr == DATA_BASE and a.cells == 4
    assert b.addr == DATA_BASE + 32 and b.cells == 2
    assert c.addr == b.addr + 16 and c.cells == 1
    assert program.data_init[b.addr] == 7
    assert program.data_init[b.addr + 8] == 8
    assert program.data_cells == 7


def test_symbol_immediate():
    program = assemble(
        ".data\nn: .word 3\n.text\n.entry main\n.func main\nmain:\n"
        "    movi r1, @n\n    halt\n"
    )
    movi = program.instrs[0]
    assert movi.imm == DATA_BASE
    assert movi.sym == "n"


def test_entry_defaults_to_main():
    program = assemble(".text\n.func main\nmain:\n    halt\n")
    assert program.entry == "main"


@pytest.mark.parametrize(
    "source,fragment",
    [
        (".text\n.func m\nm:\n    frobnicate r1\n", "unknown mnemonic"),
        (".text\n.func m\nm:\n    add r1, r2\n", "expects 3"),
        (".text\n.func m\nm:\n    jmp nowhere\n    halt\n", "undefined label"),
        (".text\n.func m\nm:\n    movi r1, @nothing\n", "undefined data symbol"),
        (".text\n.func m\nm:\n    ld r1, [f1 + 0]\n", "integer register"),
        (".data\nx: .space 0\n", "positive size"),
        (".data\n.space 4\n", "without a label"),
        (".text\nl:\nl:\n    halt\n", "duplicate label"),
        (".text\n.func m\nm:\n    mov r1, #5\n", "register"),
        (".bogus\n", "unknown directive"),
    ],
)
def test_errors(source, fragment):
    with pytest.raises(AssemblerError) as info:
        assemble(source)
    assert fragment in str(info.value)


def test_error_carries_line_number():
    with pytest.raises(AssemblerError) as info:
        assemble(".text\n.func m\nm:\n    halt\n    bogus r1\n")
    assert info.value.line == 5


def test_func_directive_binds_next_label():
    program = assemble(
        ".text\n.entry a\n.func a\na:\n    halt\n.func b\nb:\n    halt\n"
    )
    assert program.functions == {"a": 0, "b": 1}


def test_data_in_text_section_rejected():
    with pytest.raises(AssemblerError):
        assemble(".text\nx: .word 1\n")
