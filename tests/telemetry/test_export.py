"""Trace export: JSONL round-trip and the Chrome ``trace_event`` schema."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import Tracer, chrome_trace, read_jsonl, write_jsonl
from repro.telemetry.export import TRACE_FORMAT, write_chrome_trace


def _sample_tracer() -> Tracer:
    tracer = Tracer(tid="engine")
    with tracer.span("execute"):
        tracer.instant("flip", pc=64, reg="r3")
        tracer.gauge("queue-depth", 4)
    tracer.count("outcome:masked", 3)
    return tracer


# -- JSON lines --------------------------------------------------------------


def test_jsonl_round_trip(tmp_path):
    tracer = _sample_tracer()
    path = tmp_path / "trace.jsonl"
    write_jsonl(
        path, tracer.records(), counters=tracer.counters, meta={"app": "x"}
    )
    meta, records = read_jsonl(path)
    assert meta["format"] == TRACE_FORMAT
    assert meta["app"] == "x"
    assert meta["counters"] == {"outcome:masked": 3}
    assert records == tracer.records()


def test_jsonl_header_is_first_line_and_one_object_per_line(tmp_path):
    tracer = _sample_tracer()
    path = write_jsonl(tmp_path / "t.jsonl", tracer.records())
    lines = path.read_text().splitlines()
    assert json.loads(lines[0])["kind"] == "meta"
    # Every line parses alone: the file is greppable/streamable.
    assert all(isinstance(json.loads(line), dict) for line in lines)
    assert len(lines) == 1 + len(tracer.records())


def test_read_jsonl_rejects_foreign_files(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty"):
        read_jsonl(empty)

    headerless = tmp_path / "headerless.jsonl"
    headerless.write_text('{"kind": "span"}\n')
    with pytest.raises(ValueError, match="meta header"):
        read_jsonl(headerless)

    futuristic = tmp_path / "future.jsonl"
    futuristic.write_text('{"kind": "meta", "format": 999}\n')
    with pytest.raises(ValueError, match="format"):
        read_jsonl(futuristic)


# -- Chrome trace_event ------------------------------------------------------


def test_chrome_trace_schema():
    tracer = _sample_tracer()
    doc = chrome_trace(tracer.records(), process_name="unit")
    events = doc["traceEvents"]

    meta = [e for e in events if e["ph"] == "M"]
    assert {e["name"] for e in meta} == {"process_name", "thread_name"}
    assert meta[0]["args"]["name"] == "unit"

    (span,) = [e for e in events if e["ph"] == "X"]
    assert span["name"] == "execute"
    assert span["dur"] >= 0  # microseconds
    (instant,) = [e for e in events if e["ph"] == "i"]
    assert instant["name"] == "flip" and instant["args"] == {"pc": 64, "reg": "r3"}
    (counter,) = [e for e in events if e["ph"] == "C"]
    assert counter["args"] == {"queue-depth": 4.0}

    # All events share pid 0 and carry integer tids with a name mapping.
    tids = {e["args"]["name"]: e["tid"] for e in meta if e["name"] == "thread_name"}
    assert all(e["pid"] == 0 for e in events)
    assert span["tid"] == tids["engine"]


def test_chrome_trace_timestamps_are_microseconds():
    tracer = Tracer(tid="t")
    tracer.instant("tick")
    record = tracer.records()[0]
    (event,) = [
        e for e in chrome_trace(tracer.records())["traceEvents"] if e["ph"] == "i"
    ]
    assert event["ts"] == pytest.approx(record["ts"] * 1e6, abs=0.01)


def test_chrome_trace_tid_mapping_is_stable_per_stream():
    parent = Tracer(tid="engine")
    parent.instant("a")
    leaf = Tracer(tid="shard-00000")
    leaf.instant("b")
    leaf.instant("c")
    parent.absorb(leaf.export(), offset=parent.now())
    events = chrome_trace(parent.records())["traceEvents"]
    shard_tids = {
        e["tid"] for e in events if e["ph"] == "i" and e["name"] in ("b", "c")
    }
    assert len(shard_tids) == 1  # one track per stream label


def test_write_chrome_trace_is_valid_json(tmp_path):
    tracer = _sample_tracer()
    path = write_chrome_trace(tmp_path / "chrome.json", tracer.records())
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
