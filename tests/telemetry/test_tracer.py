"""Tracer unit tests: no-op contract, spans, counters, ring, merge."""

from __future__ import annotations

import pickle

from repro.telemetry import NULL_TRACER, Tracer


# -- disabled tracer ---------------------------------------------------------


def test_null_tracer_is_disabled_and_inert():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.probe_interval == 0
    with NULL_TRACER.span("anything"):
        pass
    NULL_TRACER.count("x")
    NULL_TRACER.instant("x", detail=1)
    NULL_TRACER.gauge("x", 3.0)
    assert NULL_TRACER.now() == 0.0


def test_null_tracer_span_is_shared_singleton():
    # The no-op span is reusable, so disabled instrumentation allocates
    # nothing per phase.
    assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


# -- spans -------------------------------------------------------------------


def test_span_records_name_duration_and_nesting():
    tracer = Tracer(tid="t")
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    records = tracer.records()
    # records() sorts by start timestamp, so the enclosing span leads.
    assert [r["name"] for r in records] == ["outer", "inner"]
    outer, inner = records
    assert inner["depth"] == 1 and outer["depth"] == 0
    assert 0 <= inner["dur"] <= outer["dur"]
    assert all(r["kind"] == "span" and r["tid"] == "t" for r in records)


def test_span_records_on_exception():
    tracer = Tracer()
    try:
        with tracer.span("failing"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    (record,) = tracer.records()
    assert record["name"] == "failing"


# -- counters ----------------------------------------------------------------


def test_counters_accumulate():
    tracer = Tracer()
    tracer.count("hits")
    tracer.count("hits", 4)
    tracer.count("misses")
    assert tracer.counters == {"hits": 5, "misses": 1}


# -- ring buffer -------------------------------------------------------------


def test_ring_buffer_drops_oldest_but_never_counters():
    tracer = Tracer(capacity=3)
    for i in range(5):
        tracer.instant(f"e{i}")
        tracer.count("events")
    assert [r["name"] for r in tracer.records()] == ["e2", "e3", "e4"]
    assert tracer.dropped == 2
    assert tracer.counters == {"events": 5}


# -- merge protocol ----------------------------------------------------------


def test_export_is_picklable_and_absorb_shifts_timestamps():
    leaf = Tracer(tid="shard-0")
    with leaf.span("work"):
        pass
    leaf.count("done", 2)
    payload = pickle.loads(pickle.dumps(leaf.export()))

    parent = Tracer(tid="engine")
    parent.count("done", 1)
    parent.absorb(payload, offset=10.0)
    (record,) = parent.records()
    assert record["tid"] == "shard-0"
    assert record["ts"] >= 10.0
    assert parent.counters == {"done": 3}


def test_absorb_order_does_not_change_counters():
    payloads = []
    for name, n in (("a", 1), ("b", 2), ("c", 3)):
        leaf = Tracer(tid=name)
        leaf.count("runs", n)
        leaf.count(f"only-{name}")
        payloads.append(leaf.export())

    forward, backward = Tracer(), Tracer()
    for p in payloads:
        forward.absorb(p)
    for p in reversed(payloads):
        backward.absorb(p)
    assert forward.counters == backward.counters


def test_records_sorted_across_streams():
    parent = Tracer(tid="engine")
    parent.instant("late")
    leaf = Tracer(tid="shard-1")
    leaf.instant("early")
    parent.absorb(leaf.export(), offset=-1.0)
    names = [r["name"] for r in parent.records()]
    assert names == ["early", "late"]
