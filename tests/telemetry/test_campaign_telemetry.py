"""Campaign-level telemetry: exact tallies, merge determinism, trace files.

The acceptance contract this file pins:

* a seeded campaign's aggregated ``outcome:*`` counters exactly match the
  campaign's :class:`CampaignResult` tallies;
* the same seed yields an identical aggregated report signature across
  ``jobs=1`` and ``jobs=4`` (sharding never leaks into the numbers);
* telemetry never changes campaign outcomes, and disabled telemetry
  leaves no report behind;
* the exported trace files parse and their per-injection phase times sum
  to no more than the campaign's wall-clock.
"""

from __future__ import annotations

import json

from repro.core import LETGO_E
from repro.faultinject import CampaignConfig, CampaignEngine
from repro.telemetry import INJECTION_PHASES, read_jsonl

N = 14
SEED = 71


def _run(app, config=None, **knobs):
    engine = CampaignEngine(config=CampaignConfig(telemetry=True, **knobs))
    result = engine.run(app, N, SEED, config)
    assert engine.telemetry is not None
    return result, engine.telemetry


def test_outcome_counters_match_campaign_result_exactly(pennant_app):
    for config in (None, LETGO_E):
        result, report = _run(pennant_app, config, jobs=1)
        assert report.outcome_counts() == {
            outcome.value: count for outcome, count in result.counts.items()
        }
        assert sum(report.outcome_counts().values()) == N


def test_intervention_counter_matches_results(pennant_app):
    result, report = _run(pennant_app, LETGO_E, jobs=1, keep_results=True)
    interventions = sum(r.interventions for r in result.results)
    assert report.counters.get("intervention", 0) == interventions
    if interventions:  # every repair passes through the heuristics
        assert sum(report.heuristic_counts().values()) > 0


def test_signature_identical_across_jobs_1_and_4(pennant_app):
    result_serial, serial = _run(pennant_app, LETGO_E, jobs=1)
    result_fanout, fanout = _run(pennant_app, LETGO_E, jobs=4)
    assert result_serial.counts == result_fanout.counts
    assert serial.signature() == fanout.signature()
    # Restore/cold-start split is geometry-dependent, but their sum is one
    # positioning per injection either way.
    for report in (serial, fanout):
        assert (
            report.counters.get("restore", 0)
            + report.counters.get("cold-start", 0)
            == N
        )


def test_telemetry_does_not_change_outcomes(pennant_app):
    plain = CampaignEngine(config=CampaignConfig(jobs=1))
    traced = CampaignEngine(config=CampaignConfig(jobs=1, telemetry=True))
    assert (
        plain.run(pennant_app, N, SEED, LETGO_E).counts
        == traced.run(pennant_app, N, SEED, LETGO_E).counts
    )
    assert plain.telemetry is None
    assert traced.telemetry is not None


def test_per_injection_phases_present_and_bounded_by_wall(pennant_app):
    _, report = _run(pennant_app, LETGO_E, jobs=2)
    assert report.phases["advance-to-site"].count == N
    assert report.phases["post-fault"].count == N
    assert report.phases["restore"].count == N
    assert report.wall_seconds > 0
    # Per-injection phase spans never overlap each other within a worker,
    # so across jobs workers their sum is bounded by jobs * wall.
    phase_sum = sum(
        stat.total_seconds
        for name, stat in report.phases.items()
        if name in INJECTION_PHASES
    )
    assert phase_sum <= 2 * report.wall_seconds


def test_trace_files_written_and_parse(pennant_app, tmp_path):
    jsonl = tmp_path / "campaign.jsonl"
    chrome = tmp_path / "campaign.chrome.json"
    engine = CampaignEngine(
        config=CampaignConfig(jobs=2, trace=str(jsonl), chrome_trace=str(chrome))
    )
    engine.run(pennant_app, N, SEED, LETGO_E)

    meta, records = read_jsonl(jsonl)
    assert meta["app"] == pennant_app.name
    assert meta["n"] == N and meta["seed"] == SEED
    assert meta["counters"] == engine.telemetry.counters
    assert any(r["kind"] == "span" and r["name"] == "shard" for r in records)
    # Worker streams survived the cross-process merge.
    assert any(r["tid"].startswith("shard-") for r in records)
    assert all(r["ts"] >= 0 for r in records)

    doc = json.loads(chrome.read_text())
    assert doc["traceEvents"]
    names = {e["name"] for e in doc["traceEvents"]}
    assert "post-fault" in names and "thread_name" in names


def test_probe_interval_emits_progress_instants(pennant_app):
    engine = CampaignEngine(config=CampaignConfig(jobs=1, probe_interval=50))
    engine.run(pennant_app, 3, SEED, None)
    report = engine.telemetry
    assert report is not None  # probe_interval implies telemetry
    # Progress instants are events, not phases; check via the engine trace.


def test_resumed_campaign_records_resume_event(pennant_app, tmp_path):
    journal = tmp_path / "campaign.journal"
    engine = CampaignEngine(
        config=CampaignConfig(jobs=1, telemetry=True, journal=str(journal))
    )
    engine.run(pennant_app, N, SEED, LETGO_E)
    assert engine.telemetry.phases["journal-append"].count > 0

    resumed = CampaignEngine(
        config=CampaignConfig(jobs=1, telemetry=True, resume=str(journal))
    )
    result = resumed.run(pennant_app, N, SEED, LETGO_E)
    assert result.n == N
    # Fully settled journal: nothing executes, counters stay empty.
    assert resumed.telemetry.outcome_counts() == {}
