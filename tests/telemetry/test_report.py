"""TelemetryReport: aggregation, the deterministic signature, rendering."""

from __future__ import annotations

from repro.telemetry import INJECTION_PHASES, PhaseStat, TelemetryReport, Tracer


def _span(name, ts, dur, tid="t"):
    return {"kind": "span", "name": name, "ts": ts, "dur": dur, "depth": 0, "tid": tid}


# -- phase aggregation -------------------------------------------------------


def test_phase_stats_aggregate_count_total_mean_max():
    records = [
        _span("restore", 0.0, 0.010),
        _span("restore", 0.1, 0.030),
        _span("post-fault", 0.2, 0.500),
    ]
    report = TelemetryReport.from_records(records, wall_seconds=1.0)
    restore = report.phases["restore"]
    assert restore.count == 2
    assert restore.total_seconds == 0.04
    assert restore.mean_seconds == 0.02
    assert restore.max_seconds == 0.03
    assert report.phases["post-fault"].count == 1
    assert report.events == 3


def test_non_span_records_counted_but_not_phased():
    records = [
        {"kind": "instant", "name": "flip", "ts": 0.0, "args": None, "tid": "t"},
        {"kind": "gauge", "name": "queue-depth", "ts": 0.0, "value": 1.0, "tid": "t"},
    ]
    report = TelemetryReport.from_records(records)
    assert report.phases == {}
    assert report.events == 2


def test_from_tracer_carries_counters_and_dropped():
    tracer = Tracer(capacity=1)
    tracer.instant("a")
    tracer.instant("b")  # evicts "a"
    tracer.count("outcome:masked", 2)
    report = TelemetryReport.from_tracer(tracer, wall_seconds=0.5)
    assert report.counters == {"outcome:masked": 2}
    assert report.dropped == 1
    assert report.wall_seconds == 0.5


def test_empty_phase_stat_mean_is_zero():
    assert PhaseStat().mean_seconds == 0.0


# -- the deterministic signature ---------------------------------------------


def test_signature_keeps_injection_phases_and_counters_only():
    records = [
        _span("restore", 0.0, 0.01),
        _span("shard", 0.0, 1.0),  # engine-level: geometry-dependent
        _span("journal-append", 0.5, 0.002),
    ]
    report = TelemetryReport.from_records(records, counters={"retry": 1})
    signature = report.signature()
    assert signature == {
        "counters": {"retry": 1},
        "phase_counts": {"restore": 1},
    }
    assert "shard" not in signature["phase_counts"]


def test_signature_independent_of_durations():
    fast = TelemetryReport.from_records([_span("repair", 0.0, 0.001)])
    slow = TelemetryReport.from_records([_span("repair", 9.0, 5.000)])
    assert fast.signature() == slow.signature()


def test_injection_phases_cover_the_paper_loop():
    assert {
        "restore",
        "advance-to-site",
        "post-fault",
        "repair",
        "acceptance-check",
    } <= INJECTION_PHASES


# -- accessors ---------------------------------------------------------------


def test_outcome_and_heuristic_accessors_strip_prefixes():
    report = TelemetryReport(
        counters={
            "outcome:masked": 5,
            "outcome:sdc": 1,
            "heuristic:H1": 3,
            "retry": 2,
        }
    )
    assert report.outcome_counts() == {"masked": 5, "sdc": 1}
    assert report.heuristic_counts() == {"H1": 3}


def test_phase_seconds_totals():
    report = TelemetryReport.from_records(
        [_span("restore", 0.0, 0.25), _span("restore", 1.0, 0.25)]
    )
    assert report.phase_seconds() == {"restore": 0.5}


# -- rendering ---------------------------------------------------------------


def test_render_mentions_phases_counters_and_wall():
    report = TelemetryReport.from_records(
        [_span("post-fault", 0.0, 0.6)],
        counters={"outcome:masked": 7},
        wall_seconds=1.2,
    )
    text = report.render(title="telemetry: demo")
    assert "telemetry: demo" in text
    assert "post-fault" in text
    assert "outcome:masked" in text
    assert "50.0%" in text  # 0.6s of 1.2s wall
    assert "1.20s wall-clock" in text


def test_render_notes_ring_buffer_drops():
    report = TelemetryReport.from_records([], dropped=4)
    assert "4 dropped" in report.render()
