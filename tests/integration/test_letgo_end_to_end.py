"""End-to-end: injection campaigns reproduce the paper's qualitative claims.

Campaign sizes here are small (CI budget); the benches run the full-size
versions.  The assertions target the paper's *shape*, with slack for the
wide error bars at this N.
"""

import pytest

from repro.core import LETGO_B, LETGO_E
from repro.faultinject import Outcome, run_paired_campaigns

N = 40
SEED = 2026


@pytest.fixture(scope="module")
def pennant_paired(pennant_app):
    return run_paired_campaigns(
        pennant_app, N, SEED, configs=[None, LETGO_B, LETGO_E]
    )


@pytest.fixture(scope="module")
def hpl_paired(hpl_app):
    return run_paired_campaigns(hpl_app, N, SEED, configs=[None, LETGO_E])


def test_faults_sometimes_crash(pennant_paired):
    crash_rate = pennant_paired["baseline"].crash_rate().value
    assert 0.1 < crash_rate < 0.9


def test_letgo_elides_majority_of_crashes(pennant_paired):
    m = pennant_paired["LetGo-E"].metrics()
    assert m.crash_count > 0
    assert m.continuability.value > 0.5  # paper: 62% on average


def test_most_continued_runs_pass_checks(pennant_paired):
    result = pennant_paired["LetGo-E"]
    continued = sum(c for o, c in result.counts.items() if o.continued)
    correct_or_detected = result.counts.get(Outcome.C_BENIGN, 0) + result.counts.get(
        Outcome.C_DETECTED, 0
    )
    if continued:
        assert correct_or_detected / continued > 0.4


def test_letgo_e_no_worse_than_b_on_continuability(pennant_paired):
    e = pennant_paired["LetGo-E"].metrics().continuability.value
    b = pennant_paired["LetGo-B"].metrics().continuability.value
    assert e >= b - 0.10  # paper: E beats B by ~14% on average


def test_sdc_rate_increase_bounded(pennant_paired):
    base = pennant_paired["baseline"].sdc_rate().value
    letgo = pennant_paired["LetGo-E"].sdc_rate().value
    # SDCs grow (continuation trades confidence for progress) but stay
    # within a few x of baseline, not catastrophic
    assert letgo <= max(4 * base, base + 0.25)


def test_hpl_crashes_and_continues(hpl_paired):
    m = hpl_paired["LetGo-E"].metrics()
    assert m.crash_count > 0
    # Section 8: ~70% continuability for HPL
    assert 0.3 <= m.continuability.value <= 1.0


def test_hpl_acceptance_check_selective(hpl_paired):
    """HPL's residual check catches most corrupted-but-finished runs."""
    base = hpl_paired["baseline"]
    p_v = base.estimate_p_v()
    assert p_v < 0.98  # it is noticeably more selective than the hydro apps


def test_double_crashes_exist_somewhere(pennant_paired, hpl_paired):
    total_folds = 0
    for paired in (pennant_paired, hpl_paired):
        result = paired["LetGo-E"]
        total_folds += sum(
            c for o, c in result.counts.items() if o.folds_to_double_crash
        )
    assert total_folds > 0  # LetGo is not magic: some crashes stay fatal
