"""Full-stack pipeline checks crossing every package boundary."""

from repro.analysis import FunctionTable, profile_program
from repro.core import LETGO_E, run_under_letgo
from repro.crsim import SystemParams, compare_efficiency
from repro.crsim.params import AppParams
from repro.faultinject import run_campaign
from repro.isa import decode_program, disassemble, encode_program, assemble
from repro.lang import compile_unit
from repro.machine import Process


def test_source_to_binary_to_letgo_roundtrip():
    """MiniC -> asm -> binary image -> decode -> run under LetGo."""
    source = """
    global float a[8];
    func main() -> int {
        var int i;
        for (i = 0; i < 8; i = i + 1) { a[i] = float(i) * 0.5; }
        var float s = 0.0;
        for (i = 0; i < 8; i = i + 1) { s = s + a[i]; }
        out(s);
        return 0;
    }
    """
    unit = compile_unit(source, "pipe")
    image = encode_program(unit.program)
    program = decode_program(image)
    process = Process.load(program)
    report = run_under_letgo(process, LETGO_E, FunctionTable(program), 10**6)
    assert report.status == "completed"
    assert report.output == [("f", 14.0)]


def test_disassembled_app_behaves_identically(pennant_app):
    text = disassemble(pennant_app.program)
    rebuilt = assemble(text)
    process = Process.load(rebuilt)
    result = process.run(pennant_app.max_steps)
    assert result.reason == "exited"
    assert tuple(process.output) == pennant_app.golden.output


def test_profile_feeds_injection(pennant_app):
    profile = profile_program(pennant_app.program)
    assert profile.total == pennant_app.golden.instret


def test_campaign_parameters_feed_simulation(pennant_app):
    """The paper's full loop: inject faults, estimate Table-4 parameters,
    simulate C/R efficiency, observe a LetGo gain."""
    campaign = run_campaign(pennant_app, 30, seed=5, config=LETGO_E)
    app_params = AppParams(
        name=pennant_app.name,
        p_crash=campaign.estimate_p_crash(),
        p_v=campaign.estimate_p_v(),
        p_v_prime=campaign.estimate_p_v_prime(),
        p_letgo=campaign.estimate_p_letgo(),
    )
    system = SystemParams(t_chk=1200.0, mtbfaults=21600.0)
    month = 30 * 24 * 3600.0
    comparison = compare_efficiency(system, app_params, needed=month, seeds=[1, 2])
    assert comparison.letgo > 0.0
    # The paper's gain claim holds in its parameter regime: crashes common
    # and post-continuation verification usually passing.  Small-N campaign
    # estimates can land outside it (e.g. a low P_v'), where longer LetGo
    # intervals + frequent verify failures legitimately hurt.
    if app_params.p_crash > 0.05 and app_params.p_letgo > 0.3 and app_params.p_v_prime > 0.85:
        assert comparison.gain_absolute > -0.02
