"""Acceptance checks must reject malformed and corrupted outputs.

After a fault (especially with LetGo's PC-skipping), program output can be
truncated, retyped, or numerically wrong; the checks are the paper's
defence against SDCs and must fail closed.
"""

import math

import pytest

from repro.apps import make_app, app_names


@pytest.fixture(params=app_names(), scope="module")
def app(request, suite):
    return suite[request.param]


def test_empty_output_rejected(app):
    assert not app.acceptance_check([])


def test_truncated_output_rejected(app):
    output = list(app.golden.output)
    assert not app.acceptance_check(output[:-1])


def test_extended_output_rejected(app):
    output = list(app.golden.output) + [("f", 0.0)]
    assert not app.acceptance_check(output)


def test_retyped_leading_value_rejected(app):
    output = list(app.golden.output)
    kind, value = output[0]
    flipped = ("f", float(value)) if kind == "i" else ("i", 0)
    assert not app.acceptance_check([flipped] + output[1:])


def test_nan_poisoned_output_rejected(app):
    output = list(app.golden.output)
    poisoned = [
        (kind, math.nan if kind == "f" else value) for kind, value in output
    ]
    assert not app.acceptance_check(poisoned)


def test_inf_poisoned_output_rejected(app):
    output = list(app.golden.output)
    poisoned = [
        (kind, math.inf if kind == "f" else value) for kind, value in output
    ]
    assert not app.acceptance_check(poisoned)


def test_grossly_scaled_output_rejected(app):
    output = [
        (kind, value * 1e6 if kind == "f" else value)
        for kind, value in app.golden.output
    ]
    assert not app.acceptance_check(output)


def test_visible_perturbation_of_sdc_data_flips_match(app):
    """Perturbing SDC data above print granularity flips matches_golden."""
    output = list(app.golden.output)
    for i in range(len(output) - 1, -1, -1):
        kind, value = output[i]
        if kind == "f" and value != 0.0 and math.isfinite(value):
            output[i] = (kind, value * (1.0 + 1e-6))
            break
    assert not app.matches_golden(output)


def test_sub_print_precision_perturbation_masked(app):
    """A last-bit nudge is below the printed granularity: still golden."""
    output = list(app.golden.output)
    for i in range(len(output) - 1, -1, -1):
        kind, value = output[i]
        if kind == "f" and value != 0.0 and math.isfinite(value):
            output[i] = (kind, math.nextafter(value, math.inf))
            break
    assert app.matches_golden(output)


def test_golden_is_not_rejected(app):
    assert app.acceptance_check(list(app.golden.output))


def test_pack_output_handles_any_int64():
    """Regression (found by the differential fuzzer, seed 0, lang case 50):
    a fault-corrupted OUT can emit any int64, but pack_output packed the
    unsigned-masked value with the signed "<q" format, so every negative
    integer in an SDC slice crashed the golden comparison mid-campaign."""
    from repro.apps.base import pack_output

    values = [0, 1, -1, (1 << 63) - 1, -(1 << 63)]
    packed = pack_output(values, None)
    assert packed == pack_output(values, None)
    # Distinct values stay distinct through the two's-complement mask.
    assert pack_output([-1], None) != pack_output([1], None)
    assert pack_output([-(1 << 63)], None) != pack_output([(1 << 63) - 1], None)
