"""Golden-run properties of every benchmark application."""

import pytest

from repro.apps import APP_CLASSES, app_names


def test_suite_composition():
    assert len(APP_CLASSES) == 6
    assert app_names() == ["lulesh", "clamr", "hpl", "comd", "snap", "pennant"]
    assert app_names(iterative_only=True) == [
        "lulesh",
        "clamr",
        "comd",
        "snap",
        "pennant",
    ]


def test_hpl_is_the_only_direct_method(suite):
    assert not suite["hpl"].iterative
    assert all(app.iterative for name, app in suite.items() if name != "hpl")


def test_goldens_accept_and_match(suite):
    for app in suite.values():
        output = list(app.golden.output)
        assert app.acceptance_check(output), app.name
        assert app.matches_golden(output), app.name


def test_golden_exit_code_zero(suite):
    for app in suite.values():
        assert app.golden.exit_code == 0, app.name


def test_golden_sizes_in_range(suite):
    """Dynamic instruction counts comparable across the suite (Table 2)."""
    for app in suite.values():
        assert 50_000 <= app.golden.instret <= 2_000_000, app.name


def test_golden_deterministic(suite):
    for app in suite.values():
        process = app.load()
        result = process.run(app.max_steps)
        assert result.reason == "exited"
        assert tuple(process.output) == app.golden.output, app.name
        assert process.cpu.instret == app.golden.instret, app.name


def test_max_steps_exceeds_golden(suite):
    for app in suite.values():
        assert app.max_steps > app.golden.instret * 2


def test_describe(suite):
    for app in suite.values():
        text = app.describe()
        assert app.name in text and str(app.golden.instret) in text


def test_domains_match_table2(suite):
    assert suite["lulesh"].domain == "Hydrodynamics"
    assert suite["clamr"].domain == "Adaptive mesh refinement"
    assert suite["hpl"].domain == "Dense linear solver"
    assert suite["comd"].domain == "Classical molecular dynamics"
    assert suite["snap"].domain == "Discrete ordinates transport"
    assert suite["pennant"].domain == "Unstructured mesh physics"


def test_all_functions_discovered(suite):
    """Static analysis sees every compiled function with a frame."""
    for app in suite.values():
        names = {f.name for f in app.functions.functions}
        assert "main" in names and "_start" in names


def test_sdc_slice_nonempty(suite):
    for app in suite.values():
        data = app.sdc_slice(list(app.golden.output))
        assert len(data) >= 10, app.name
