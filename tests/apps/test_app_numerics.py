"""Cross-validation of app numerics against NumPy/SciPy references."""

import numpy as np

from repro.apps.hpl import N_DIM
from repro.apps.snap import MAX_ITERS, N_ANG, N_CELLS


def _lcg_stream(seed):
    state = seed
    mask = (1 << 64) - 1
    while True:
        state = (state * 6364136223846793005 + 1442695040888963407) & mask
        signed = state - (1 << 64) if state >= (1 << 63) else state
        magnitude, base = abs(signed), 9007199254740992
        mant = magnitude - (magnitude // base) * base
        if signed < 0:
            mant = -mant
        if mant < 0:
            mant += base
        yield mant / 9007199254740992.0 - 0.5


def test_hpl_solution_matches_numpy(hpl_app):
    values = [v for _, v in hpl_app.golden.output]
    gen = _lcg_stream(42)
    matrix = np.zeros((N_DIM, N_DIM))
    rhs = np.zeros(N_DIM)
    for i in range(N_DIM):
        for j in range(N_DIM):
            matrix[i, j] = next(gen)
        rhs[i] = next(gen)
    expected = np.linalg.solve(matrix, rhs)
    solution = np.array(values[1:])
    assert np.max(np.abs(expected - solution)) < 1e-12


def test_hpl_residual_consistent(hpl_app):
    values = [v for _, v in hpl_app.golden.output]
    assert 0.0 < values[0] < 1.0  # far below the 16.0 threshold


def test_snap_flux_matches_python_reference(snap_app):
    """Re-run the Sn source iteration in pure NumPy and compare."""
    mu = np.array(
        [0.0694318442029737, 0.3300094782075719, 0.6699905217924281, 0.9305681557970263]
    )
    wt = np.array(
        [0.1739274225687269, 0.3260725774312731, 0.3260725774312731, 0.1739274225687269]
    )
    sigt, sigs, q0, dx, tol = 1.0, 0.3, 1.0, 0.25, 0.0
    phi = np.zeros(N_CELLS)
    for _ in range(MAX_ITERS):
        phiold = phi.copy()
        src = 0.5 * (sigs * phiold + q0)
        phi = np.zeros(N_CELLS)
        for k in range(N_ANG):
            m = mu[k]
            psin = 0.0
            for i in range(N_CELLS):
                psic = (src[i] * dx + 2 * m * psin) / (2 * m + sigt * dx)
                phi[i] += 0.5 * wt[k] * psic
                psin = max(2 * psic - psin, 0.0)
            psin = 0.0
            for i in range(N_CELLS - 1, -1, -1):
                psic = (src[i] * dx + 2 * m * psin) / (2 * m + sigt * dx)
                phi[i] += 0.5 * wt[k] * psic
                psin = max(2 * psic - psin, 0.0)
        if np.max(np.abs(phi - phiold)) <= tol:
            break
    values = [v for _, v in snap_app.golden.output]
    flux = np.array(values[3:])
    assert np.max(np.abs(flux - phi)) < 1e-12


def test_lulesh_energy_positive_and_peaked(lulesh_app):
    values = [v for _, v in lulesh_app.golden.output]
    energies = np.array(values[3:])
    assert np.all(energies >= 0.0)
    # the blast peak stays in the interior
    assert energies.argmax() not in (0, len(energies) - 1)


def test_clamr_mass_conserved_vs_initial(clamr_app):
    values = [v for _, v in clamr_app.golden.output]
    mass0, massf = values[2], values[3]
    assert abs(massf - mass0) < 1e-9


def test_comd_momentum_near_zero(comd_app):
    """LJ forces are pairwise-equal-and-opposite: total momentum ~ 0."""
    from repro.apps.comd import N_ATOMS

    values = [v for _, v in comd_app.golden.output]
    velocities = np.array(values[3 + N_ATOMS :])
    assert abs(velocities.sum()) < 1e-10


def test_pennant_energy_split_sane(pennant_app):
    values = [v for _, v in pennant_app.golden.output]
    e0, ef = values[1], values[2]
    assert abs(ef - e0) / e0 < 1e-12
