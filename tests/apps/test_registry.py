"""App registry."""

import pytest

from repro.apps import all_apps, make_app


def test_make_app_by_name():
    app = make_app("hpl")
    assert app.name == "hpl"


def test_make_app_unknown():
    with pytest.raises(KeyError, match="unknown app"):
        make_app("doom")


def test_all_apps_fresh_instances():
    a = all_apps()
    b = all_apps()
    assert [x.name for x in a] == [x.name for x in b]
    assert all(x is not y for x, y in zip(a, b))


def test_all_apps_iterative_filter():
    names = [a.name for a in all_apps(iterative_only=True)]
    assert "hpl" not in names
    assert len(names) == 5
