"""Heuristics I and II: direct unit tests on synthetic traps."""

import pytest

from repro.analysis import FunctionTable
from repro.core.heuristics import (
    HeuristicReport,
    apply_heuristic1,
    apply_heuristic2,
)
from repro.isa import STACK_LIMIT, STACK_TOP, Instr, Op, assemble
from repro.isa.registers import BP, SP
from repro.machine import Process, Signal, Trap

FRAME = 32

ASM = f"""
.text
.entry main
.func main
main:
    push bp
    mov bp, sp
    subi sp, sp, #{FRAME}
    ld r1, [bp - 8]
    st [bp - 16], r1
    fld f1, [bp - 24]
    pop r2
    addi sp, sp, #{FRAME}
    pop bp
    ret
"""


@pytest.fixture
def env():
    program = assemble(ASM)
    process = Process.load(program)
    # simulate being inside main after the prologue
    process.cpu.iregs[SP] = STACK_TOP - 64 - FRAME
    process.cpu.iregs[BP] = STACK_TOP - 64
    return process, FunctionTable(program)


def _trap_at(process, pc, signal=Signal.SIGSEGV):
    return Trap(signal, pc=pc, instr=process.program.instrs[pc], detail="test")


# -- Heuristic I -----------------------------------------------------------


def test_h1_fills_int_load(env):
    process, _ = env
    process.cpu.iregs[1] = 999
    report = HeuristicReport()
    apply_heuristic1(process, _trap_at(process, 3), 0, 0.0, report)
    assert report.h1_fired
    assert process.cpu.iregs[1] == 0
    assert any(a.kind == "fill-load" for a in report.actions)


def test_h1_fill_value_configurable(env):
    process, _ = env
    report = HeuristicReport()
    apply_heuristic1(process, _trap_at(process, 3), -7, 0.0, report)
    assert process.cpu.iregs[1] == -7


def test_h1_fills_float_load(env):
    process, _ = env
    process.cpu.fregs[1] = 9.9
    report = HeuristicReport()
    apply_heuristic1(process, _trap_at(process, 5), 0, 1.25, report)
    assert process.cpu.fregs[1] == 1.25


def test_h1_store_untouched(env):
    process, _ = env
    before = dict(process.memory.written_cells())
    report = HeuristicReport()
    apply_heuristic1(process, _trap_at(process, 4), 0, 0.0, report)
    assert report.h1_fired
    assert process.memory.written_cells() == before
    assert any(a.kind == "skip-store" for a in report.actions)


def test_h1_never_zeroes_frame_registers(env):
    process, _ = env
    bp_before = process.cpu.iregs[BP]
    report = HeuristicReport()
    # pc 8 is "pop bp": a load whose destination is bp
    apply_heuristic1(process, _trap_at(process, 8), 0, 0.0, report)
    assert process.cpu.iregs[BP] == bp_before
    assert any(a.kind == "keep-frame-reg" for a in report.actions)


def test_h1_ignores_alu_instruction(env):
    process, _ = env
    report = HeuristicReport()
    apply_heuristic1(process, _trap_at(process, 7), 0, 0.0, report)
    # pc 7 is addi: neither load nor store
    assert not report.h1_fired


def test_h1_fetch_fault_noop(env):
    process, _ = env
    report = HeuristicReport()
    trap = Trap(Signal.SIGSEGV, pc=10**6, instr=None)
    apply_heuristic1(process, trap, 0, 0.0, report)
    assert not report.h1_fired and not report.actions


# -- Heuristic II -----------------------------------------------------------


def test_h2_plausible_pair_untouched(env):
    process, functions = env
    sp, bp = process.cpu.iregs[SP], process.cpu.iregs[BP]
    report = HeuristicReport()
    apply_heuristic2(process, _trap_at(process, 3), functions, 4096, report)
    assert not report.h2_fired
    assert (process.cpu.iregs[SP], process.cpu.iregs[BP]) == (sp, bp)


def test_h2_repairs_corrupt_bp(env):
    process, functions = env
    process.cpu.iregs[BP] = 0x40000000000  # wild
    report = HeuristicReport()
    apply_heuristic2(process, _trap_at(process, 3), functions, 4096, report)
    assert report.h2_fired
    assert process.cpu.iregs[BP] == process.cpu.iregs[SP] + FRAME
    assert any(a.kind == "fix-bp" for a in report.actions)


def test_h2_repairs_corrupt_sp(env):
    process, functions = env
    process.cpu.iregs[SP] = -12345
    report = HeuristicReport()
    apply_heuristic2(process, _trap_at(process, 6), functions, 4096, report)
    assert report.h2_fired
    assert process.cpu.iregs[SP] == process.cpu.iregs[BP] - FRAME
    assert any(a.kind == "fix-sp" for a in report.actions)


def test_h2_blames_used_register_when_both_in_stack(env):
    process, functions = env
    # both in the stack segment but relationship broken: bp far below sp
    process.cpu.iregs[BP] = STACK_LIMIT + 8
    process.cpu.iregs[SP] = STACK_TOP - 8
    report = HeuristicReport()
    # faulting instruction at pc 3 uses bp -> bp gets recomputed
    apply_heuristic2(process, _trap_at(process, 3), functions, 4096, report)
    assert report.h2_fired
    assert process.cpu.iregs[BP] == process.cpu.iregs[SP] + FRAME


def test_h2_ignores_non_frame_instruction(env):
    process, functions = env
    process.cpu.iregs[BP] = 0x40000000000
    report = HeuristicReport()
    # ADDI does not address memory through sp/bp... use a synthetic LD via r3
    trap = Trap(
        Signal.SIGSEGV, pc=3, instr=Instr(Op.LD, rd=1, ra=3, imm=0), detail="x"
    )
    apply_heuristic2(process, trap, functions, 4096, report)
    assert not report.h2_fired


def test_h2_slack_allows_pushes(env):
    process, functions = env
    # pushes move sp down: bp - sp = FRAME + 24 must stay plausible
    process.cpu.iregs[SP] -= 24
    report = HeuristicReport()
    apply_heuristic2(process, _trap_at(process, 3), functions, 4096, report)
    assert not report.h2_fired


def test_h2_fetch_fault_noop(env):
    process, functions = env
    report = HeuristicReport()
    trap = Trap(Signal.SIGSEGV, pc=10**6, instr=None)
    apply_heuristic2(process, trap, functions, 4096, report)
    assert not report.h2_fired


def test_h2_both_wild_repair_lands_in_stack(env):
    """Regression: with *both* frame registers wild, the repair used to
    recompute the blamed register from the other, equally wild one --
    leaving the "repaired" value outside the stack and guaranteeing the
    give-up double crash.  The anchor is clamped into the stack first."""
    process, functions = env
    process.cpu.iregs[SP] = 0x123456789AB   # wild
    process.cpu.iregs[BP] = 0x40000000000   # wild
    report = HeuristicReport()
    # faulting instruction at pc 3 uses bp -> bp is blamed, sp is anchor
    apply_heuristic2(process, _trap_at(process, 3), functions, 4096, report)
    assert report.h2_fired
    sp, bp = process.cpu.iregs[SP], process.cpu.iregs[BP]
    assert STACK_LIMIT <= sp <= STACK_TOP
    assert STACK_LIMIT <= bp <= STACK_TOP
    assert any(a.kind == "clamp-sp" for a in report.actions)
    assert any(a.kind == "fix-bp" for a in report.actions)


def test_h2_both_wild_repair_sp_direction(env):
    process, functions = env
    process.cpu.iregs[SP] = -1             # wild, below the segment
    process.cpu.iregs[BP] = 1 << 50        # wild, above the segment
    report = HeuristicReport()
    # faulting instruction at pc 6 is "pop r2": uses sp -> sp is blamed
    apply_heuristic2(process, _trap_at(process, 6), functions, 4096, report)
    assert report.h2_fired
    sp, bp = process.cpu.iregs[SP], process.cpu.iregs[BP]
    assert STACK_LIMIT <= sp <= STACK_TOP
    assert STACK_LIMIT <= bp <= STACK_TOP
    assert any(a.kind == "clamp-bp" for a in report.actions)
    assert any(a.kind == "fix-sp" for a in report.actions)
