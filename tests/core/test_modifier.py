"""Modifier: repair records and PC advancement."""

from repro.analysis import FunctionTable
from repro.core import LETGO_B, LETGO_E, Modifier
from repro.machine import DebugSession, Process, Signal, Trap
from repro.isa import assemble

ASM = """
.text
.entry main
.func main
main:
    push bp
    mov bp, sp
    subi sp, sp, #16
    movi r1, #0
    ld r2, [r1 + 0]
    halt
"""


def _stopped_session():
    program = assemble(ASM)
    process = Process.load(program)
    session = DebugSession(process)
    event = session.cont(100)
    assert event.trap is not None
    return session, event.trap, FunctionTable(program)


def test_repair_advances_pc():
    session, trap, functions = _stopped_session()
    record = Modifier(LETGO_E, functions).repair(session, trap)
    assert session.read_reg("pc") == trap.pc + 1
    assert record.pc == trap.pc
    assert record.signal is Signal.SIGSEGV


def test_repair_records_instruction_text():
    session, trap, functions = _stopped_session()
    record = Modifier(LETGO_E, functions).repair(session, trap)
    assert "ld r2" in record.instr_text


def test_letgo_b_repair_no_actions():
    session, trap, functions = _stopped_session()
    record = Modifier(LETGO_B, functions).repair(session, trap)
    assert not record.actions
    assert not record.h1_fired and not record.h2_fired


def test_fetch_fault_repair():
    session, trap, functions = _stopped_session()
    fetch = Trap(Signal.SIGSEGV, pc=424242, instr=None, detail="fetch")
    record = Modifier(LETGO_E, functions).repair(session, fetch)
    assert session.read_reg("pc") == 424243
    assert record.instr_text == "<fetch fault>"


def test_repair_timed():
    session, trap, functions = _stopped_session()
    record = Modifier(LETGO_E, functions).repair(session, trap)
    assert record.repair_seconds >= 0.0
