"""LetGo configuration variants."""

from repro.core import LETGO_B, LETGO_E, LETGO_H1, LETGO_H2, VARIANTS, LetGoConfig
from repro.machine import LETGO_DEFAULT_SIGNALS, Signal


def test_letgo_b_has_no_heuristics():
    assert not LETGO_B.heuristic1
    assert not LETGO_B.heuristic2


def test_letgo_e_has_both():
    assert LETGO_E.heuristic1 and LETGO_E.heuristic2


def test_ablation_variants():
    assert LETGO_H1.heuristic1 and not LETGO_H1.heuristic2
    assert LETGO_H2.heuristic2 and not LETGO_H2.heuristic1


def test_default_signals_match_table1():
    for config in VARIANTS.values():
        assert config.handled_signals == LETGO_DEFAULT_SIGNALS


def test_one_intervention_default():
    assert LETGO_E.max_interventions == 1


def test_default_fill_is_zero():
    assert LETGO_E.fill_int == 0
    assert LETGO_E.fill_float == 0.0


def test_describe():
    text = LETGO_E.describe()
    assert "LetGo-E" in text and "H1=on" in text and "H2=on" in text
    assert "SIGSEGV" in text


def test_custom_config():
    config = LetGoConfig(
        name="custom",
        heuristic1=True,
        heuristic2=False,
        fill_int=7,
        handled_signals=frozenset({Signal.SIGSEGV}),
        max_interventions=3,
    )
    assert config.fill_int == 7
    assert Signal.SIGABRT not in config.handled_signals


def test_variants_registry():
    assert set(VARIANTS) == {"LetGo-B", "LetGo-E", "LetGo-H1", "LetGo-H2"}
