"""LetGo session: end-to-end crash elision on small programs."""

import pytest

from repro.analysis import FunctionTable
from repro.core import (
    COMPLETED,
    HUNG,
    LETGO_B,
    LETGO_E,
    TERMINATED,
    LetGoConfig,
    run_under_letgo,
)
from repro.isa import assemble
from repro.isa.registers import SP
from repro.lang import compile_source
from repro.machine import Process, Signal

#: A program whose single crash site is skippable: after the bad load the
#: program carries on and prints a value.
SKIPPABLE = """
.text
.entry main
.func main
main:
    push bp
    mov bp, sp
    subi sp, sp, #16
    movi r1, #0
    ld r2, [r1 + 0]      ; segfault (null load)
    movi r3, #77
    out r3
    movi r0, #0
    addi sp, sp, #16
    pop bp
    halt                 ; entry function: exit instead of ret
"""


def _run(asm_or_prog, config, max_steps=10**6):
    program = assemble(asm_or_prog) if isinstance(asm_or_prog, str) else asm_or_prog
    process = Process.load(program)
    return run_under_letgo(process, config, FunctionTable(program), max_steps), process


def test_clean_program_untouched(demo_program):
    process = Process.load(demo_program)
    report = run_under_letgo(
        process, LETGO_E, FunctionTable(demo_program), 10**6
    )
    assert report.status == COMPLETED
    assert not report.intervened
    assert report.output == [("f", 30.0), ("i", 5)]
    assert report.exit_code == 0


def test_elides_single_segfault():
    report, _ = _run(SKIPPABLE, LETGO_E)
    assert report.status == COMPLETED
    assert len(report.interventions) == 1
    record = report.interventions[0]
    assert record.signal is Signal.SIGSEGV
    assert "ld" in record.instr_text
    assert report.output == [("i", 77)]


def test_letgo_b_advances_pc_only():
    report, process = _run(SKIPPABLE, LETGO_B)
    assert report.status == COMPLETED
    record = report.interventions[0]
    assert not record.h1_fired and not record.h2_fired
    # destination keeps its stale value under LetGo-B
    assert not any(a.kind == "fill-load" for a in record.actions)


def test_letgo_e_fills_destination():
    report, process = _run(SKIPPABLE, LETGO_E)
    record = report.interventions[0]
    assert record.h1_fired
    assert process.cpu.iregs[2] == 0


def test_second_crash_gives_up():
    asm = """
.text
.entry main
.func main
main:
    push bp
    mov bp, sp
    subi sp, sp, #0
    movi r1, #0
    ld r2, [r1 + 0]
    ld r3, [r1 + 8]      ; crashes again
    halt
"""
    report, _ = _run(asm, LETGO_E)
    assert report.status == TERMINATED
    assert report.gave_up
    assert len(report.interventions) == 1
    assert report.final_signal is Signal.SIGSEGV


def test_max_interventions_configurable():
    asm = """
.text
.entry main
.func main
main:
    push bp
    mov bp, sp
    subi sp, sp, #0
    movi r1, #0
    ld r2, [r1 + 0]
    ld r3, [r1 + 8]
    movi r0, #0
    halt
"""
    generous = LetGoConfig(name="x", max_interventions=5)
    program = assemble(asm)
    process = Process.load(program)
    report = run_under_letgo(process, generous, FunctionTable(program), 10**6)
    assert report.status == COMPLETED
    assert len(report.interventions) == 2


def test_unhandled_signal_terminates_without_intervention():
    asm = """
.text
.entry main
.func main
main:
    push bp
    mov bp, sp
    subi sp, sp, #0
    movi r1, #0
    movi r2, #5
    div r3, r2, r1       ; SIGFPE: not in Table 1
    halt
"""
    report, _ = _run(asm, LETGO_E)
    assert report.status == TERMINATED
    assert not report.intervened
    assert not report.gave_up
    assert report.final_signal is Signal.SIGFPE


def test_sigabrt_elided():
    source = """
    func main() -> int {
        assert(1 == 2);       // fails -> SIGABRT
        out(5);
        return 0;
    }
    """
    program = compile_source(source)
    process = Process.load(program)
    report = run_under_letgo(process, LETGO_E, FunctionTable(program), 10**6)
    assert report.status == COMPLETED
    assert report.interventions[0].signal is Signal.SIGABRT
    assert report.output == [("i", 5)]


def test_hang_reported():
    asm = """
.text
.entry main
.func main
main:
    jmp main
"""
    report, _ = _run(asm, LETGO_E, max_steps=5000)
    assert report.status == HUNG
    assert report.steps == 5000


def test_heuristic2_recovers_corrupt_sp(demo_program):
    process = Process.load(demo_program)
    process.cpu.run(12)  # inside main's loop
    process.cpu.iregs[SP] ^= 1 << 45
    report = run_under_letgo(
        process, LETGO_E, FunctionTable(demo_program), 10**6
    )
    assert report.intervened
    assert any(
        action.kind in ("fix-sp", "fix-bp")
        for record in report.interventions
        for action in record.actions
    )


def test_repair_seconds_measured():
    report, _ = _run(SKIPPABLE, LETGO_E)
    assert report.repair_seconds() > 0.0
    assert report.repair_seconds() < 1.0


def test_intervention_summary():
    report, _ = _run(SKIPPABLE, LETGO_E)
    text = report.interventions[0].summary()
    assert "SIGSEGV" in text and "H1" in text
