"""Monitor: Table-1 signal dispositions."""

from repro.core import LETGO_E, Monitor
from repro.machine import Signal, Trap


def test_intercepts_crash_signals():
    monitor = Monitor(LETGO_E)
    assert monitor.intercepts(Signal.SIGSEGV)
    assert monitor.intercepts(Signal.SIGBUS)
    assert monitor.intercepts(Signal.SIGABRT)
    assert not monitor.intercepts(Signal.SIGFPE)


def test_table1_rows():
    monitor = Monitor(LETGO_E)
    rows = {p.signal: p for p in monitor.signal_table()}
    segv = rows[Signal.SIGSEGV]
    assert segv.stop and not segv.pass_to_program
    assert segv.row() == ("SIGSEGV", "Yes", "No", "Segfault")
    bus = rows[Signal.SIGBUS]
    assert bus.row() == ("SIGBUS", "Yes", "No", "Bus error")
    abrt = rows[Signal.SIGABRT]
    assert abrt.row() == ("SIGABRT", "Yes", "No", "Aborted")
    fpe = rows[Signal.SIGFPE]
    assert not fpe.stop and fpe.pass_to_program


def test_classify():
    monitor = Monitor(LETGO_E)
    segv = Trap(Signal.SIGSEGV, pc=0)
    fpe = Trap(Signal.SIGFPE, pc=0)
    assert monitor.classify(segv) == "intercept"
    assert monitor.classify(fpe) == "default"


def test_attach_returns_session(demo_program):
    from repro.machine import DebugSession, Process

    session = Monitor(LETGO_E).attach(Process.load(demo_program))
    assert isinstance(session, DebugSession)
