"""Snapshot/restore: bit-exact process state capture."""

import pytest

from repro.checkpoint import restore, snapshot
from repro.errors import SimulationError
from repro.lang import compile_source
from repro.machine import Process


@pytest.fixture(scope="module")
def program():
    return compile_source(
        """
        global float data[16];
        func main() -> int {
            var int i;
            var float s = 0.0;
            var int rep;
            for (rep = 0; rep < 8; rep = rep + 1) {
            for (i = 0; i < 16; i = i + 1) {
                data[i] = float(i) * 1.5;
                s = s + data[i];
                out(s);
            }
            }
            out(s);
            return 0;
        }
        """,
        "snap-test",
    )


def test_restore_resumes_identically(program):
    reference = Process.load(program)
    reference.run(10**6)

    process = Process.load(program)
    process.cpu.run(500)
    snap = snapshot(process)
    # diverge the original, then restore and finish
    process.cpu.iregs[1] = 424242
    restored = restore(program, snap)
    result = restored.run(10**6)
    assert result.reason == "exited"
    assert restored.output == reference.output
    assert restored.cpu.instret == reference.cpu.instret


def test_snapshot_captures_everything(program):
    process = Process.load(program)
    process.cpu.run(300)
    snap = snapshot(process)
    assert snap.pc == process.cpu.pc
    assert snap.instret == 300
    assert snap.iregs == tuple(process.cpu.iregs)
    assert snap.fregs == tuple(process.cpu.fregs)
    assert snap.output == tuple(process.cpu.output)
    assert snap.size_cells > 0


def test_restore_isolates_from_donor(program):
    from repro.isa import DATA_BASE

    process = Process.load(program)
    process.cpu.run(300)
    donor_reg = process.cpu.iregs[2]
    donor_cell = process.memory.read_pattern(DATA_BASE)
    snap = snapshot(process)
    restored = restore(program, snap)
    # mutating the restored process leaves the donor untouched
    restored.cpu.iregs[2] = donor_reg + 1
    restored.memory.write_pattern(DATA_BASE, (donor_cell + 1) & ((1 << 64) - 1))
    assert process.cpu.iregs[2] == donor_reg
    assert process.memory.read_pattern(DATA_BASE) == donor_cell


def test_snapshot_immutable_against_later_writes(program):
    process = Process.load(program)
    process.cpu.run(300)
    snap = snapshot(process)
    before = dict(snap.cells)
    process.cpu.run(500)
    assert snap.cells == before


def test_wrong_program_rejected(program):
    other = compile_source("func main() -> int { return 0; }", "other")
    process = Process.load(program)
    process.cpu.run(10)
    snap = snapshot(process)
    with pytest.raises(SimulationError):
        restore(other, snap)


def test_cannot_snapshot_dead_process(program):
    process = Process.load(program)
    process.run(10**6)
    with pytest.raises(SimulationError):
        snapshot(process)


def test_roundtrip_at_every_phase(program):
    """Snapshot/restore at several points; each resumes to the same end."""
    reference = Process.load(program)
    reference.run(10**6)
    for when in (1, 50, 1000, 2000):
        process = Process.load(program)
        process.cpu.run(when)
        if process.cpu.halted:
            break
        resumed = restore(program, snapshot(process))
        resumed.run(10**6)
        assert resumed.output == reference.output, f"at step {when}"


def test_resume_from_halt_state_reports_clean_halt(program):
    """Regression: HALT used to leave pc past the image, so state captured
    at the halt fetch-faulted with SIGSEGV on resume.  Now pc stays on the
    HALT site and a resumed halt-state re-reports a clean exit."""
    from repro.checkpoint.snapshot import Snapshot
    from repro.isa import Op

    process = Process.load(program)
    process.run(10**6)
    cpu = process.cpu
    assert cpu.halted
    assert program.instrs[cpu.pc].op is Op.HALT
    # snapshot() refuses finished processes by design; capture the halt
    # state directly, as a checkpoint driver racing the final interval
    # boundary would have.
    snap = Snapshot(
        checksum=program.checksum(),
        iregs=tuple(cpu.iregs),
        fregs=tuple(cpu.fregs),
        pc=cpu.pc,
        instret=cpu.instret,
        cells=process.memory.written_cells(),
        output=tuple(cpu.output),
    )
    resumed = restore(program, snap)
    result = resumed.run(10**6)
    assert result.reason == "exited"          # not a SIGSEGV fetch fault
    assert resumed.cpu.instret == snap.instret + 1  # HALT retired once more
    assert resumed.output == process.output
