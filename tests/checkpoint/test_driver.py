"""In-vivo C/R driver: policies, accounting, and the Figure-1 story."""

import numpy as np
import pytest

from repro.checkpoint import CRParams, CheckpointedRun, Policy, drive
from repro.core import LETGO_E
from repro.errors import SimulationError

PARAMS = CRParams(interval=15_000, t_chk=3_000, t_letgo=100, mtbf_faults=12_000.0)
CALM = CRParams(interval=30_000, t_chk=1_000, t_letgo=100, mtbf_faults=10**9)


def test_params_validation():
    with pytest.raises(SimulationError):
        CRParams(interval=0, t_chk=1)
    with pytest.raises(SimulationError):
        CRParams(interval=10, t_chk=1, mtbf_faults=0)


def test_recovery_defaults_to_t_chk():
    assert CRParams(interval=10, t_chk=7).recovery == 7
    assert CRParams(interval=10, t_chk=7, t_r=3).recovery == 3


def test_letgo_policy_needs_config(pennant_app):
    with pytest.raises(SimulationError):
        CheckpointedRun(pennant_app, PARAMS, Policy.CR_LETGO, seed=0)


def test_fault_free_run_overheads(pennant_app):
    """With ~no faults, cost = work + checkpoints * t_chk."""
    result = drive(pennant_app, CALM, Policy.CR, seed=1)
    assert result.completed and result.outcome == "benign"
    assert result.faults_injected == 0
    assert result.rollbacks == 0
    expected_ckpts = pennant_app.golden.instret // CALM.interval
    assert abs(result.checkpoints - expected_ckpts) <= 1
    assert result.cost == pennant_app.golden.instret + result.checkpoints * CALM.t_chk


def test_policy_none_takes_no_checkpoints(pennant_app):
    result = drive(pennant_app, CALM, Policy.NONE, seed=1)
    assert result.completed
    assert result.checkpoints == 0
    assert result.cost == pennant_app.golden.instret


def test_efficiency_zero_for_dead_runs(pennant_app):
    # guaranteed crashes: very high fault rate without protection
    params = CRParams(interval=10_000, t_chk=100, mtbf_faults=2_000.0)
    dead = [
        drive(pennant_app, params, Policy.NONE, seed=s)
        for s in range(8)
    ]
    killed = [r for r in dead if not r.completed]
    assert killed, "expected some unprotected run to die"
    assert all(r.efficiency == 0.0 for r in killed)
    assert all(r.outcome == "dead" for r in killed)


def test_cr_survives_where_none_dies(pennant_app):
    params = PARAMS
    completed_cr = 0
    for seed in range(6):
        result = drive(pennant_app, params, Policy.CR, seed=seed)
        if result.completed:
            completed_cr += 1
            assert result.cost >= pennant_app.golden.instret
    assert completed_cr >= 4  # C/R completes almost always


def test_letgo_reduces_rollbacks_paired(pennant_app):
    """Same seeds: CR+LetGo rolls back less than CR (repairs instead)."""
    cr_rollbacks = letgo_rollbacks = repairs = 0
    for seed in range(6):
        cr = drive(pennant_app, PARAMS, Policy.CR, seed=seed)
        lg = drive(pennant_app, PARAMS, Policy.CR_LETGO, seed=seed, letgo=LETGO_E)
        cr_rollbacks += cr.rollbacks
        letgo_rollbacks += lg.rollbacks
        repairs += lg.letgo_repairs
    assert repairs > 0
    assert letgo_rollbacks < cr_rollbacks


def test_letgo_efficiency_at_least_cr(pennant_app):
    """Averaged over seeds, CR+LetGo does not lose to CR."""
    cr = np.mean(
        [drive(pennant_app, PARAMS, Policy.CR, seed=s).efficiency for s in range(8)]
    )
    lg = np.mean(
        [
            drive(pennant_app, PARAMS, Policy.CR_LETGO, seed=s, letgo=LETGO_E).efficiency
            for s in range(8)
        ]
    )
    assert lg >= cr - 0.03


def test_accounting_consistency(pennant_app):
    result = drive(pennant_app, PARAMS, Policy.CR_LETGO, seed=3, letgo=LETGO_E)
    if result.completed:
        overhead = (
            result.checkpoints * PARAMS.t_chk
            + result.rollbacks * PARAMS.recovery
            + result.letgo_repairs * PARAMS.t_letgo
        )
        # cost = executed instructions (>= useful) + charged overheads
        assert result.cost >= result.useful + overhead - PARAMS.interval
        assert 0.0 < result.efficiency <= 1.0


def test_deterministic_per_seed(pennant_app):
    a = drive(pennant_app, PARAMS, Policy.CR_LETGO, seed=9, letgo=LETGO_E)
    b = drive(pennant_app, PARAMS, Policy.CR_LETGO, seed=9, letgo=LETGO_E)
    assert a.cost == b.cost
    assert a.outcome == b.outcome
    assert a.rollbacks == b.rollbacks
    assert a.letgo_repairs == b.letgo_repairs
