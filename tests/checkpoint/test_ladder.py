"""Snapshot ladder: rung spacing, nearest-rung lookup, golden fidelity."""

import pytest

from repro.checkpoint import build_ladder, restore, restore_into, snapshot
from repro.errors import SimulationError
from repro.lang import compile_source
from repro.machine import Process


@pytest.fixture(scope="module")
def program():
    return compile_source(
        """
        global float data[8];
        func main() -> int {
            var int i;
            var float s = 0.0;
            for (i = 0; i < 200; i = i + 1) {
                data[i - (i / 8) * 8] = float(i);
                s = s + float(i);
            }
            out(s);
            return 0;
        }
        """,
        "ladder-test",
    )


@pytest.fixture(scope="module")
def reference(program):
    process = Process.load(program)
    process.run(10**6)
    return process


def test_rung_spacing(program, reference):
    ladder = build_ladder(program, interval=100)
    total = reference.cpu.instret
    assert ladder.total == total
    assert len(ladder) == (total - 1) // 100
    for i, rung in enumerate(ladder.rungs):
        assert rung.instret == (i + 1) * 100


def test_nearest(program):
    ladder = build_ladder(program, interval=100)
    assert ladder.nearest(0) is None
    assert ladder.nearest(99) is None
    assert ladder.nearest(100).instret == 100
    assert ladder.nearest(199).instret == 100
    assert ladder.nearest(200).instret == 200
    last = ladder.rungs[-1]
    assert ladder.nearest(10**9) is last


def test_every_rung_resumes_to_golden_end(program, reference):
    ladder = build_ladder(program, interval=150)
    for rung in ladder.rungs:
        resumed = restore(program, rung)
        result = resumed.run(10**6)
        assert result.reason == "exited"
        assert resumed.output == reference.output
        assert resumed.cpu.instret == reference.cpu.instret


def test_restore_into_reuses_finished_process(program, reference):
    donor = Process.load(program)
    donor.cpu.run(100)
    snap = snapshot(donor)
    # run a process to completion, then rewind it onto the snapshot
    process = Process.load(program)
    process.run(10**6)
    restore_into(process, snap)
    assert process.cpu.instret == 100
    result = process.run(10**6)
    assert result.reason == "exited"
    assert process.output == reference.output


def test_bad_interval_rejected(program):
    with pytest.raises(ValueError):
        build_ladder(program, interval=0)


def test_runaway_golden_run_rejected():
    looper = compile_source(
        "func main() -> int { while (1 == 1) { } return 0; }", "looper"
    )
    with pytest.raises(SimulationError):
        build_ladder(looper, interval=64, max_steps=1_000)


def test_restore_into_wrong_program_rejected(program):
    other = compile_source("func main() -> int { return 0; }", "other")
    donor = Process.load(program)
    donor.cpu.run(50)
    snap = snapshot(donor)
    with pytest.raises(SimulationError):
        restore_into(Process.load(other), snap)
