"""Closed-form approximations vs the simulation ground truth."""

import math

import pytest

from repro.crsim import PAPER_APP_PARAMS, SystemParams, simulate_letgo, simulate_standard
from repro.crsim.analytic import (
    daly_optimal_interval,
    expected_efficiency_letgo,
    expected_efficiency_standard,
)
from repro.errors import SimulationError

MONTH = 30 * 24 * 3600.0


def test_daly_reduces_to_young_for_small_cost():
    t_chk, mtbf = 12.0, 1e7
    young = math.sqrt(2 * t_chk * mtbf)
    daly = daly_optimal_interval(t_chk, mtbf)
    assert abs(daly - young) / young < 0.01


def test_daly_below_young_for_large_cost():
    t_chk, mtbf = 1200.0, 43200.0
    young = math.sqrt(2 * t_chk * mtbf)
    assert daly_optimal_interval(t_chk, mtbf) < young


def test_daly_degenerate_regime():
    assert daly_optimal_interval(1000.0, 400.0) == 400.0


def test_daly_validation():
    with pytest.raises(SimulationError):
        daly_optimal_interval(0.0, 100.0)


@pytest.mark.parametrize("t_chk", [12.0, 120.0, 1200.0])
@pytest.mark.parametrize("app_name", ["lulesh", "snap", "pennant"])
def test_formula_tracks_simulation_standard(t_chk, app_name):
    system = SystemParams(t_chk=t_chk, mtbfaults=21600.0)
    app = PAPER_APP_PARAMS[app_name]
    predicted = expected_efficiency_standard(system, app)
    simulated = simulate_standard(system, app, needed=MONTH, seed=3).efficiency
    assert abs(predicted - simulated) < 0.08, (predicted, simulated)


@pytest.mark.parametrize("app_name", ["lulesh", "clamr"])
def test_formula_tracks_simulation_letgo(app_name):
    system = SystemParams(t_chk=120.0, mtbfaults=21600.0)
    app = PAPER_APP_PARAMS[app_name]
    predicted = expected_efficiency_letgo(system, app)
    simulated = simulate_letgo(system, app, needed=MONTH, seed=3).efficiency
    assert abs(predicted - simulated) < 0.08, (predicted, simulated)


def test_formula_predicts_letgo_gain_direction():
    system = SystemParams(t_chk=1200.0, mtbfaults=21600.0)
    app = PAPER_APP_PARAMS["lulesh"]
    assert expected_efficiency_letgo(system, app) > expected_efficiency_standard(
        system, app
    )


def test_efficiencies_bounded():
    for t_chk in (12.0, 1200.0):
        system = SystemParams(t_chk=t_chk, mtbfaults=21600.0)
        for app in PAPER_APP_PARAMS.values():
            for fn in (expected_efficiency_standard, expected_efficiency_letgo):
                value = fn(system, app)
                assert 0.0 < value < 1.0
