"""State-machine simulations: invariants and limiting behaviour."""

import math

import pytest

from repro.crsim import (
    AppParams,
    SystemParams,
    simulate_letgo,
    simulate_standard,
    young_interval,
)
from repro.errors import SimulationError

SYSTEM = SystemParams(t_chk=120.0, mtbfaults=21600.0)
APP = AppParams(name="t", p_crash=0.5, p_v=0.95, p_v_prime=0.9, p_letgo=0.6)
NEEDED = 30 * 24 * 3600.0  # one month of useful work: fast but stable


@pytest.mark.parametrize("simulate", [simulate_standard, simulate_letgo])
def test_useful_work_reached(simulate):
    result = simulate(SYSTEM, APP, needed=NEEDED, seed=1)
    assert result.useful >= NEEDED
    assert result.cost >= result.useful
    assert 0.0 < result.efficiency <= 1.0


@pytest.mark.parametrize("simulate", [simulate_standard, simulate_letgo])
def test_deterministic_per_seed(simulate):
    a = simulate(SYSTEM, APP, needed=NEEDED, seed=42)
    b = simulate(SYSTEM, APP, needed=NEEDED, seed=42)
    assert a.efficiency == b.efficiency
    assert a.checkpoints == b.checkpoints


def test_seeds_differ():
    a = simulate_standard(SYSTEM, APP, needed=NEEDED, seed=1)
    b = simulate_standard(SYSTEM, APP, needed=NEEDED, seed=2)
    assert a.efficiency != b.efficiency


def test_interval_is_youngs_by_default():
    result = simulate_standard(SYSTEM, APP, needed=NEEDED, seed=1)
    expected = young_interval(SYSTEM.t_chk, APP.mtbf_failures(SYSTEM.mtbfaults))
    assert math.isclose(result.interval, expected)


def test_letgo_uses_longer_interval():
    std = simulate_standard(SYSTEM, APP, needed=NEEDED, seed=1)
    lg = simulate_letgo(SYSTEM, APP, needed=NEEDED, seed=1)
    assert lg.interval > std.interval


def test_letgo_beats_standard_on_average():
    std = [simulate_standard(SYSTEM, APP, needed=NEEDED, seed=s).efficiency for s in range(5)]
    lg = [simulate_letgo(SYSTEM, APP, needed=NEEDED, seed=s).efficiency for s in range(5)]
    assert sum(lg) / 5 > sum(std) / 5


def test_no_faults_limit_efficiency():
    """With essentially no faults, efficiency -> T / (T + T_v + T_chk + T_sync)."""
    quiet = SystemParams(t_chk=120.0, mtbfaults=1e12)
    result = simulate_standard(quiet, APP, needed=NEEDED, seed=1)
    T = result.interval
    expected = T / (T + quiet.t_v + quiet.t_chk + quiet.t_sync)
    assert math.isclose(result.efficiency, expected, rel_tol=1e-3)
    assert result.crashes == 0
    assert result.verify_failures == 0


def test_higher_fault_rate_lower_efficiency():
    calm = simulate_standard(
        SystemParams(t_chk=120.0, mtbfaults=400_000.0), APP, needed=NEEDED, seed=3
    )
    stormy = simulate_standard(
        SystemParams(t_chk=120.0, mtbfaults=4_000.0), APP, needed=NEEDED, seed=3
    )
    assert stormy.efficiency < calm.efficiency


def test_bigger_checkpoints_lower_efficiency():
    small = simulate_standard(
        SystemParams(t_chk=12.0, mtbfaults=21600.0), APP, needed=NEEDED, seed=3
    )
    large = simulate_standard(
        SystemParams(t_chk=1200.0, mtbfaults=21600.0), APP, needed=NEEDED, seed=3
    )
    assert large.efficiency < small.efficiency


def test_letgo_gain_grows_with_checkpoint_cost():
    def gain(t_chk):
        system = SystemParams(t_chk=t_chk, mtbfaults=21600.0)
        std = [simulate_standard(system, APP, needed=NEEDED, seed=s).efficiency for s in range(3)]
        lg = [simulate_letgo(system, APP, needed=NEEDED, seed=s).efficiency for s in range(3)]
        return sum(lg) / 3 - sum(std) / 3

    assert gain(1200.0) > gain(12.0)


def test_letgo_event_counters():
    result = simulate_letgo(SYSTEM, APP, needed=NEEDED, seed=1)
    assert result.letgo_continues > 0
    assert result.letgo_continues + result.letgo_failures > 0
    assert result.checkpoints > 0


def test_zero_continuability_matches_standard_behaviour():
    """p_letgo=0: every crash rolls back (plus the wasted T_letgo)."""
    never = AppParams(name="n", p_crash=0.5, p_v=0.95, p_v_prime=0.9, p_letgo=0.0)
    lg = simulate_letgo(SYSTEM, never, needed=NEEDED, seed=5)
    std = simulate_standard(SYSTEM, never, needed=NEEDED, seed=5)
    assert lg.letgo_continues == 0
    # efficiencies are close; LetGo slightly worse due to T_letgo overhead
    assert abs(lg.efficiency - std.efficiency) < 0.05


def test_explicit_interval_override():
    result = simulate_standard(SYSTEM, APP, needed=NEEDED, seed=1, interval=500.0)
    assert result.interval == 500.0


def test_bad_needed_rejected():
    with pytest.raises(SimulationError):
        simulate_standard(SYSTEM, APP, needed=0.0)


def test_summary():
    result = simulate_letgo(SYSTEM, APP, needed=NEEDED, seed=1)
    text = result.summary()
    assert "eff=" in text and "letgo=" in text
