"""Interval optimisation vs Young's formula."""

import pytest

from repro.crsim import PAPER_APP_PARAMS, SystemParams
from repro.crsim.optimize import optimize_interval
from repro.errors import SimulationError

MONTH = 30 * 24 * 3600.0
SYSTEM = SystemParams(t_chk=120.0, mtbfaults=21600.0)


@pytest.fixture(scope="module")
def lulesh_opt():
    return optimize_interval(
        SYSTEM, PAPER_APP_PARAMS["lulesh"], needed=MONTH, seeds=(1, 2)
    )


def test_optimum_at_least_young(lulesh_opt):
    assert lulesh_opt.improvement >= -0.01  # search never loses to Young


def test_young_near_optimal_in_its_regime(lulesh_opt):
    """High-P_v apps: Young is within a couple points of the optimum."""
    assert lulesh_opt.improvement < 0.05
    assert 0.1 < lulesh_opt.ratio_to_young < 10.0


def test_letgo_variant_runs():
    result = optimize_interval(
        SYSTEM, PAPER_APP_PARAMS["clamr"], letgo=True, needed=MONTH, seeds=(1,)
    )
    assert 0.0 < result.efficiency <= 1.0
    assert result.interval > 0


def test_low_pv_prefers_shorter_intervals():
    """HPL's failing verification: the optimum sits below Young's choice."""
    result = optimize_interval(
        SystemParams(t_chk=1200.0, mtbfaults=21600.0),
        PAPER_APP_PARAMS["hpl"],
        needed=MONTH,
        seeds=(1, 2),
    )
    assert result.ratio_to_young < 1.0
    assert result.improvement > 0.0


def test_bad_span():
    with pytest.raises(SimulationError):
        optimize_interval(SYSTEM, PAPER_APP_PARAMS["snap"], span=0.5)
