"""Table-4 parameter model."""

import math

import pytest

from repro.crsim import (
    BASELINE_MTBFAULTS,
    PAPER_APP_PARAMS,
    T_CHK_CHOICES,
    AppParams,
    SystemParams,
    young_interval,
)
from repro.errors import SimulationError


def test_young_interval_formula():
    assert math.isclose(young_interval(120.0, 43200.0), math.sqrt(2 * 120 * 43200))


def test_young_interval_validation():
    with pytest.raises(SimulationError):
        young_interval(0.0, 100.0)
    with pytest.raises(SimulationError):
        young_interval(10.0, -1.0)


def test_system_derived_parameters():
    system = SystemParams(t_chk=120.0, mtbfaults=21600.0)
    assert system.t_sync == 12.0       # 10% default
    assert system.t_v == 1.2           # 1%
    assert system.recovery == 120.0    # T_r = T_chk
    assert system.t_letgo == 5.0


def test_system_sync_choices():
    fifty = SystemParams(t_chk=100.0, mtbfaults=1000.0, sync_frac=0.5)
    assert fifty.t_sync == 50.0


def test_system_validation():
    with pytest.raises(SimulationError):
        SystemParams(t_chk=0.0, mtbfaults=100.0)


def test_scaled_divides_mtbf():
    system = SystemParams(t_chk=12.0, mtbfaults=21600.0)
    doubled = system.scaled(2.0)
    assert doubled.mtbfaults == 10800.0
    assert doubled.t_chk == 12.0


def test_app_params_validation():
    with pytest.raises(SimulationError):
        AppParams(name="x", p_crash=1.5, p_v=0.5, p_v_prime=0.5, p_letgo=0.5)


def test_mtbf_failures():
    app = AppParams(name="x", p_crash=0.5, p_v=0.9, p_v_prime=0.9, p_letgo=0.6)
    assert app.mtbf_failures(21600.0) == 43200.0
    # paper simplification: MTBFaults = 2 * MTBF at p_crash ~ 0.5


def test_mtbf_letgo_extends_mtbf():
    app = AppParams(name="x", p_crash=0.5, p_v=0.9, p_v_prime=0.9, p_letgo=0.62)
    base = app.mtbf_failures(21600.0)
    extended = app.mtbf_letgo(21600.0)
    assert math.isclose(extended, base / 0.38)


def test_mtbf_letgo_perfect_continuability():
    app = AppParams(name="x", p_crash=0.5, p_v=0.9, p_v_prime=0.9, p_letgo=1.0)
    assert app.mtbf_letgo(21600.0) == float("inf")


def test_paper_params_cover_suite():
    assert set(PAPER_APP_PARAMS) == {
        "lulesh",
        "clamr",
        "snap",
        "comd",
        "pennant",
        "hpl",
    }


def test_paper_params_match_table3_arithmetic():
    lulesh = PAPER_APP_PARAMS["lulesh"]
    assert math.isclose(lulesh.p_crash, 0.7697, abs_tol=1e-4)
    assert math.isclose(lulesh.p_letgo, 0.5197 / 0.7697, rel_tol=1e-3)
    # mean continuability across the five iterative apps ~ 62% (paper)
    iterative = [PAPER_APP_PARAMS[n] for n in ("lulesh", "clamr", "snap", "comd", "pennant")]
    mean = sum(a.p_letgo for a in iterative) / 5
    assert 0.55 <= mean <= 0.70


def test_paper_crash_rate_average():
    iterative = [PAPER_APP_PARAMS[n] for n in ("lulesh", "clamr", "snap", "comd", "pennant")]
    mean = sum(a.p_crash for a in iterative) / 5
    assert 0.5 <= mean <= 0.62  # paper: ~56%


def test_constants():
    assert T_CHK_CHOICES == (12.0, 120.0, 1200.0)
    assert BASELINE_MTBFAULTS == 21600.0
