"""Figure-7/8 sweeps and the interval ablation."""

from repro.crsim import (
    FIG8_NODE_COUNTS,
    PAPER_APP_PARAMS,
    SystemParams,
    sweep_checkpoint_overhead,
    sweep_interval_multiplier,
    sweep_system_scale,
)

MONTH = 30 * 24 * 3600.0


def test_fig7_shape_gain_grows_with_tchk():
    comparisons = sweep_checkpoint_overhead(
        PAPER_APP_PARAMS["lulesh"], needed=MONTH, seeds=[1, 2]
    )
    assert [c.t_chk for c in comparisons] == [12.0, 120.0, 1200.0]
    gains = [c.gain_absolute for c in comparisons]
    assert gains[0] < gains[-1]
    efficiencies = [c.standard for c in comparisons]
    assert efficiencies[0] > efficiencies[-1]  # absolute efficiency drops


def test_fig8_shape_scaling():
    points = sweep_system_scale(
        PAPER_APP_PARAMS["clamr"], t_chk=120.0, needed=MONTH, seeds=[1, 2]
    )
    nodes = [n for n, _ in points]
    assert nodes == list(FIG8_NODE_COUNTS)
    # efficiency decreases with scale for both schemes
    standard = [c.standard for _, c in points]
    letgo = [c.letgo for _, c in points]
    assert standard[0] > standard[-1]
    assert letgo[0] > letgo[-1]
    # LetGo degrades more slowly (paper: "rate of decrease is lower")
    assert (standard[0] - standard[-1]) > (letgo[0] - letgo[-1])


def test_fig8_mtbf_scales_inversely():
    points = sweep_system_scale(
        PAPER_APP_PARAMS["pennant"], t_chk=12.0, needed=MONTH, seeds=[1]
    )
    assert points[0][1].mtbfaults == 21600.0
    assert points[1][1].mtbfaults == 10800.0
    assert points[3][1].mtbfaults == 5400.0


def test_interval_ablation_youngs_near_optimal():
    system = SystemParams(t_chk=120.0, mtbfaults=21600.0)
    points = sweep_interval_multiplier(
        PAPER_APP_PARAMS["lulesh"], system, needed=MONTH, seed=2
    )
    by_mult = {p.multiplier: p for p in points}
    optimum = by_mult[1.0].standard
    # Young's choice within a small margin of the best sampled multiplier
    best = max(p.standard for p in points)
    assert optimum >= best - 0.02
    # extremes are worse
    assert by_mult[0.25].standard < optimum + 1e-9 or by_mult[4.0].standard < optimum + 1e-9
