"""Operator decision support (paper Section 8 discussion)."""

import pytest

from repro.crsim import PAPER_APP_PARAMS, SystemParams
from repro.crsim.decision import GainPoint, gain_surface, recommend

MONTH = 30 * 24 * 3600.0
SYSTEM = SystemParams(t_chk=1200.0, mtbfaults=21600.0)


def test_gain_surface_grid():
    points = gain_surface(
        PAPER_APP_PARAMS["lulesh"],
        t_chk_values=(12.0, 1200.0),
        mtbfaults_values=(5400.0, 86400.0),
        needed=MONTH,
    )
    assert len(points) == 4
    assert all(isinstance(p, GainPoint) for p in points)
    by_key = {(p.t_chk, p.mtbfaults): p for p in points}
    # gain grows with checkpoint cost and with fault rate
    assert by_key[(1200.0, 5400.0)].gain > by_key[(12.0, 86400.0)].gain


def test_recommend_enables_for_iterative_app():
    rec = recommend(
        PAPER_APP_PARAMS["lulesh"],
        SYSTEM,
        sdc_fraction_without=0.0075,
        sdc_fraction_with=0.0166,
        needed=MONTH,
    )
    assert rec.use_letgo
    assert rec.expected_gain > 0.005
    assert "ENABLE" in rec.summary()


def test_recommend_rejects_on_sdc_budget():
    rec = recommend(
        PAPER_APP_PARAMS["lulesh"],
        SYSTEM,
        sdc_fraction_without=0.01,
        sdc_fraction_with=0.10,     # +9 points of silent corruption
        max_sdc_increase=0.02,
        needed=MONTH,
    )
    assert not rec.use_letgo
    assert any("SDC increase" in r for r in rec.reasons)


def test_recommend_rejects_direct_method():
    rec = recommend(
        PAPER_APP_PARAMS["hpl"],
        SYSTEM,
        sdc_fraction_without=0.01,
        sdc_fraction_with=0.03,
        needed=MONTH,
    )
    assert not rec.use_letgo
    assert any("wasted work" in r or "below" in r for r in rec.reasons)


def test_recommend_rejects_tiny_gain():
    calm = SystemParams(t_chk=12.0, mtbfaults=86400.0 * 10)
    rec = recommend(
        PAPER_APP_PARAMS["snap"],
        calm,
        sdc_fraction_without=0.0,
        sdc_fraction_with=0.0,
        min_gain=0.01,
        needed=MONTH,
    )
    assert not rec.use_letgo


def test_summary_readable():
    rec = recommend(
        PAPER_APP_PARAMS["pennant"],
        SYSTEM,
        sdc_fraction_without=0.02,
        sdc_fraction_with=0.048,
        needed=MONTH,
    )
    text = rec.summary()
    assert "SDC exposure" in text
    assert text.count("-") >= 2  # reasons listed
