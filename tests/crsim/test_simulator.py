"""High-level efficiency comparisons."""

import math

from repro.crsim import (
    PAPER_APP_PARAMS,
    SystemParams,
    compare_efficiency,
    mean_efficiency,
    simulate_standard,
    single_runs,
)

MONTH = 30 * 24 * 3600.0
SYSTEM = SystemParams(t_chk=120.0, mtbfaults=21600.0)


def test_compare_structure():
    comparison = compare_efficiency(
        SYSTEM, PAPER_APP_PARAMS["lulesh"], needed=MONTH, seeds=[1, 2]
    )
    assert comparison.app == "lulesh"
    assert 0.0 < comparison.standard < 1.0
    assert 0.0 < comparison.letgo < 1.0
    assert comparison.gain_absolute == comparison.letgo - comparison.standard
    assert math.isclose(
        comparison.gain_relative, comparison.letgo / comparison.standard
    )
    assert len(comparison.row()) == 7


def test_letgo_gains_for_paper_apps():
    for name in ("lulesh", "clamr", "snap", "comd", "pennant"):
        comparison = compare_efficiency(
            SYSTEM, PAPER_APP_PARAMS[name], needed=MONTH, seeds=[1, 2]
        )
        assert comparison.gain_absolute > 0.0, name


def test_hpl_gain_marginal():
    """Section 8: LetGo only marginally improves HPL."""
    comparison = compare_efficiency(
        SYSTEM, PAPER_APP_PARAMS["hpl"], needed=MONTH, seeds=[1, 2, 3]
    )
    best_iterative = compare_efficiency(
        SYSTEM, PAPER_APP_PARAMS["lulesh"], needed=MONTH, seeds=[1, 2, 3]
    )
    assert comparison.gain_absolute < best_iterative.gain_absolute


def test_mean_efficiency_averages():
    single = mean_efficiency(
        simulate_standard, SYSTEM, PAPER_APP_PARAMS["snap"], MONTH, [7]
    )
    expected = simulate_standard(
        SYSTEM, PAPER_APP_PARAMS["snap"], needed=MONTH, seed=7
    ).efficiency
    assert math.isclose(single, expected)


def test_single_runs_pair():
    std, lg = single_runs(SYSTEM, PAPER_APP_PARAMS["comd"], needed=MONTH, seed=9)
    assert std.useful >= MONTH and lg.useful >= MONTH
    assert lg.letgo_continues >= 0
