"""Parallel (SPMD) applications and the flagship heat-diffusion proxy.

The paper's "towards large-scale application" discussion asks how LetGo
integrates with MPI-style programs; this module supplies the workload: a
domain-decomposed explicit heat equation with halo exchange each step and
a tree-free reduction to rank 0, conserving total heat exactly (flux
form + reflective walls) -- so the acceptance check is again a
conservation law, now a *global* one across ranks.
"""

from __future__ import annotations

from functools import cached_property
from math import isfinite

from repro.apps.base import pack_output
from repro.errors import SimulationError
from repro.isa.program import Program
from repro.lang.compiler import CompiledUnit, compile_unit
from repro.machine.cluster import Cluster

RankOutputs = list[list[tuple[str, int | float]]]

# Cluster golden runs are deterministic in (source, size); share them
# across instances like MiniApp does.
_UNIT_CACHE: dict[str, CompiledUnit] = {}
_GOLDEN_CACHE: dict[tuple[str, int], tuple] = {}


class ParallelApp:
    """Base for SPMD benchmark applications.

    Like :class:`repro.apps.base.MiniApp`, but golden facts come from a
    cluster run and checks see the per-rank output streams.
    """

    name: str = ""
    domain: str = ""
    size: int = 4
    hang_factor: float = 10.0
    sdc_digits: int = 9

    @property
    def source(self) -> str:
        raise NotImplementedError

    @cached_property
    def unit(self) -> CompiledUnit:
        source = self.source
        unit = _UNIT_CACHE.get(source)
        if unit is None:
            unit = compile_unit(source, name=self.name)
            _UNIT_CACHE[source] = unit
        return unit

    @property
    def program(self) -> Program:
        return self.unit.program

    def make_cluster(self) -> Cluster:
        """A fresh cluster for one run."""
        return Cluster(self.program, self.size)

    @cached_property
    def golden(self) -> tuple[RankOutputs, int]:
        """(per-rank outputs, total instructions) of a fault-free run."""
        key = (self.source, self.size)
        cached = _GOLDEN_CACHE.get(key)
        if cached is not None:
            return cached
        cluster = self.make_cluster()
        event = cluster.run(500_000_000)
        if event.kind != "exited":
            raise SimulationError(
                f"golden cluster run ended with {event.kind}: {event}"
            )
        result = (cluster.outputs(), cluster.total_steps())
        _GOLDEN_CACHE[key] = result
        return result

    @property
    def golden_outputs(self) -> RankOutputs:
        return self.golden[0]

    @property
    def golden_steps(self) -> int:
        return self.golden[1]

    @property
    def max_steps(self) -> int:
        return int(self.golden_steps * self.hang_factor) + 10_000

    @cached_property
    def functions(self):
        from repro.analysis.functions import FunctionTable

        return FunctionTable(self.program)

    # -- checks ------------------------------------------------------------

    def acceptance_check(self, outputs: RankOutputs) -> bool:
        raise NotImplementedError

    def sdc_slice(self, outputs: RankOutputs) -> tuple:
        raise NotImplementedError

    def matches_golden(self, outputs: RankOutputs) -> bool:
        try:
            candidate = self.sdc_slice(outputs)
        except (IndexError, TypeError, ValueError):
            return False
        reference = self.sdc_slice(self.golden_outputs)
        return pack_output(candidate, self.sdc_digits) == pack_output(
            reference, self.sdc_digits
        )


#: Cells owned by each rank and time steps for the heat proxy.
N_LOCAL = 12
N_STEPS = 40


def _heat_source(n_local: int, n_steps: int) -> str:
    return f"""
// SPMD heat diffusion: halo exchange + global conservation check.
global int nloc = {n_local};
global int nsteps = {n_steps};
global float u[{n_local + 2}];      // [0] and [nloc+1] are ghosts
global float unew[{n_local + 2}];
global float alpha = 0.25;

func partial_sum() -> float {{
    var int i;
    var float s = 0.0;
    for (i = 1; i <= nloc; i = i + 1) {{ s = s + u[i]; }}
    return s;
}}

// reduce partial sums to rank 0 (returns the total there, 0 elsewhere)
func reduce_total() -> float {{
    var int me = myrank();
    var int np = nranks();
    var float s = partial_sum();
    if (me == 0) {{
        var int k;
        for (k = 1; k < np; k = k + 1) {{ s = s + recvf(k); }}
        return s;
    }}
    sendf(0, s);
    return 0.0;
}}

func main() -> int {{
    var int me = myrank();
    var int np = nranks();
    var int i;
    // deterministic initial profile: a hump centred in the global domain
    var float gtotal = float(np * nloc);
    for (i = 1; i <= nloc; i = i + 1) {{
        var float g = float(me * nloc + i - 1);
        var float x = (g + 0.5) / gtotal;           // in (0, 1)
        u[i] = 1.0 + fmax(0.0, 1.0 - 4.0 * fabs(x - 0.5));
    }}
    var float total0 = reduce_total();
    if (me == 0) {{ out(total0); }}

    var int step;
    for (step = 0; step < nsteps; step = step + 1) {{
        // halo exchange (async sends first: deadlock-free)
        if (me > 0) {{ sendf(me - 1, u[1]); }}
        if (me < np - 1) {{ sendf(me + 1, u[nloc]); }}
        if (me > 0) {{ u[0] = recvf(me - 1); }} else {{ u[0] = u[1]; }}
        if (me < np - 1) {{
            u[nloc + 1] = recvf(me + 1);
        }} else {{
            u[nloc + 1] = u[nloc];
        }}
        for (i = 1; i <= nloc; i = i + 1) {{
            unew[i] = u[i] + alpha * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
        }}
        for (i = 1; i <= nloc; i = i + 1) {{ u[i] = unew[i]; }}
    }}

    var float totalf = reduce_total();
    if (me == 0) {{
        out(totalf);
        out(nsteps);
    }}
    for (i = 1; i <= nloc; i = i + 1) {{ out(u[i]); }}
    return 0;
}}
"""


class HeatApp(ParallelApp):
    """Domain-decomposed heat diffusion with a global conservation check."""

    name = "heat"
    domain = "SPMD stencil (heat equation)"

    #: Conservation tolerance, relative to the initial total.
    TOTAL_RTOL = 1e-9

    def __init__(self, size: int = 4, n_local: int = N_LOCAL, n_steps: int = N_STEPS):
        self.size = size
        self.n_local = n_local
        self.n_steps = n_steps

    @property
    def source(self) -> str:
        return _heat_source(self.n_local, self.n_steps)

    def expected_total(self) -> float:
        """Initial heat, analytically: sum of the deterministic profile."""
        n = self.size * self.n_local
        total = 0.0
        for g in range(n):
            x = (g + 0.5) / n
            total += 1.0 + max(0.0, 1.0 - 4.0 * abs(x - 0.5))
        return total

    def acceptance_check(self, outputs: RankOutputs) -> bool:
        if len(outputs) != self.size:
            return False
        rank0 = outputs[0]
        if len(rank0) != 3 + self.n_local:
            return False
        if [k for k, _ in rank0[:3]] != ["f", "f", "i"]:
            return False
        total0, totalf, steps = (v for _, v in rank0[:3])
        if steps != self.n_steps:
            return False
        if not (isfinite(total0) and isfinite(totalf)):
            return False
        expected = self.expected_total()
        if abs(total0 - expected) > 1e-9 * expected:
            return False
        if abs(totalf - total0) > self.TOTAL_RTOL * expected:
            return False
        for rank, stream in enumerate(outputs):
            cells = stream[3:] if rank == 0 else stream
            if len(cells) != self.n_local:
                return False
            if any(k != "f" for k, _ in cells):
                return False
            if not all(isfinite(v) and 0.0 < v < 3.0 for _, v in cells):
                return False
        return True

    def sdc_slice(self, outputs: RankOutputs) -> tuple:
        # the full temperature field, rank order
        values: list[float] = []
        for rank, stream in enumerate(outputs):
            cells = stream[3:] if rank == 0 else stream
            values.extend(v for _, v in cells)
        return tuple(values)


__all__ = ["ParallelApp", "HeatApp", "RankOutputs", "N_LOCAL", "N_STEPS"]
