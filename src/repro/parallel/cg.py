"""Distributed conjugate gradient: the second SPMD proxy.

Solves the 1-D Poisson system ``A u = b`` (A = tridiagonal Laplacian,
Dirichlet walls) with unpreconditioned CG, domain-decomposed: the
matrix-free ``A·p`` needs a halo exchange per iteration, and every dot
product needs a global reduction -- implemented as gather-to-0 +
broadcast, so communication is on the critical path twice per iteration.
That makes CG the adversarial case for crash elision in parallel: most of
its state is *shared arithmetic* (the reduced scalars), and a perturbed
reduction desynchronises every rank at once.

Acceptance (HPL-style, per Table 2's "residual check"): the final
true residual ``||b - A u||_inf`` must sit below a fixed tolerance, the
iteration count must be positive and below the cap, and the solution
must be finite and symmetric (the RHS is mirror-symmetric).
"""

from __future__ import annotations

from math import isfinite

from repro.parallel.app import ParallelApp, RankOutputs

#: Default decomposition: cells per rank and CG iteration cap.
N_LOCAL = 12
MAX_ITERS = 200


def _cg_source(n_local: int, max_iters: int) -> str:
    return f"""
// SPMD conjugate gradient for the 1-D Dirichlet Laplacian.
global int nloc = {n_local};
global int maxit = {max_iters};
global float u[{n_local + 2}];      // iterate, with ghosts
global float r[{n_local + 2}];      // residual
global float p[{n_local + 2}];      // search direction, with ghosts
global float ap[{n_local + 2}];     // A * p
global float b[{n_local + 2}];      // right-hand side
global float tol = 1.0e-12;

// global sum via gather-to-0 + broadcast
func allreduce(float x) -> float {{
    var int me = myrank();
    var int np = nranks();
    var int k;
    if (me == 0) {{
        var float s = x;
        for (k = 1; k < np; k = k + 1) {{ s = s + recvf(k); }}
        for (k = 1; k < np; k = k + 1) {{ sendf(k, s); }}
        return s;
    }}
    sendf(0, x);
    return recvf(0);
}}

// exchange p's halo cells with the neighbours (walls are zero: Dirichlet)
func halo() -> int {{
    var int me = myrank();
    var int np = nranks();
    if (me > 0) {{ sendf(me - 1, p[1]); }}
    if (me < np - 1) {{ sendf(me + 1, p[nloc]); }}
    if (me > 0) {{ p[0] = recvf(me - 1); }} else {{ p[0] = 0.0; }}
    if (me < np - 1) {{ p[nloc + 1] = recvf(me + 1); }} else {{ p[nloc + 1] = 0.0; }}
    return 0;
}}

func local_dot(int which) -> float {{
    // which: 0 -> r.r, 1 -> p.ap
    var int i;
    var float s = 0.0;
    for (i = 1; i <= nloc; i = i + 1) {{
        if (which == 0) {{ s = s + r[i] * r[i]; }}
        else {{ s = s + p[i] * ap[i]; }}
    }}
    return s;
}}

func main() -> int {{
    var int me = myrank();
    var int np = nranks();
    var int i;
    var float n2 = float(np * nloc + 1);
    // symmetric RHS: b(x) = x(1-x) scaled; exact u is smooth
    for (i = 1; i <= nloc; i = i + 1) {{
        var float x = float(me * nloc + i) / n2;
        b[i] = x * (1.0 - x);
        u[i] = 0.0;
        r[i] = b[i];
        p[i] = b[i];
    }}
    var float rr = allreduce(local_dot(0));
    var int iter = 0;
    while (rr > tol && iter < maxit) {{
        halo();
        for (i = 1; i <= nloc; i = i + 1) {{
            ap[i] = 2.0 * p[i] - p[i - 1] - p[i + 1];
        }}
        var float pap = allreduce(local_dot(1));
        var float alpha = rr / pap;
        for (i = 1; i <= nloc; i = i + 1) {{
            u[i] = u[i] + alpha * p[i];
            r[i] = r[i] - alpha * ap[i];
        }}
        var float rrnew = allreduce(local_dot(0));
        var float beta = rrnew / rr;
        for (i = 1; i <= nloc; i = i + 1) {{
            p[i] = r[i] + beta * p[i];
        }}
        rr = rrnew;
        iter = iter + 1;
    }}
    // true residual of the final iterate: reuse p as u's halo carrier
    for (i = 1; i <= nloc; i = i + 1) {{ p[i] = u[i]; }}
    halo();
    var float res = 0.0;
    for (i = 1; i <= nloc; i = i + 1) {{
        var float ri = b[i] - (2.0 * p[i] - p[i - 1] - p[i + 1]);
        res = fmax(res, fabs(ri));
    }}
    var float gres = allreduce(res);   // sum of per-rank maxima: still tiny
    if (me == 0) {{
        out(iter);
        out(gres);
    }}
    for (i = 1; i <= nloc; i = i + 1) {{ out(u[i]); }}
    return 0;
}}
"""


class CgApp(ParallelApp):
    """Distributed CG with an HPL-style residual acceptance check."""

    name = "cg"
    domain = "SPMD Krylov solver (conjugate gradient)"

    RESIDUAL_TOL = 1e-5
    SYMMETRY_TOL = 1e-8

    def __init__(self, size: int = 4, n_local: int = N_LOCAL, max_iters: int = MAX_ITERS):
        self.size = size
        self.n_local = n_local
        self.max_iters = max_iters

    @property
    def source(self) -> str:
        return _cg_source(self.n_local, self.max_iters)

    def acceptance_check(self, outputs: RankOutputs) -> bool:
        if len(outputs) != self.size:
            return False
        rank0 = outputs[0]
        if len(rank0) != 2 + self.n_local:
            return False
        if rank0[0][0] != "i" or any(k != "f" for k, _ in rank0[1:]):
            return False
        iterations = rank0[0][1]
        residual = rank0[1][1]
        if not (0 < iterations <= self.max_iters):
            return False
        if not (isfinite(residual) and residual < self.RESIDUAL_TOL):
            return False
        solution: list[float] = []
        for rank, stream in enumerate(outputs):
            cells = stream[2:] if rank == 0 else stream
            if len(cells) != self.n_local:
                return False
            if any(k != "f" for k, _ in cells):
                return False
            values = [v for _, v in cells]
            # unscaled Laplacian: the solution peaks around n^2/32 ~ 70 here
            if not all(isfinite(v) and 0.0 <= v < 1000.0 for v in values):
                return False
            solution.extend(values)
        # the RHS is mirror-symmetric, so the solution must be too
        n = len(solution)
        return all(
            abs(solution[i] - solution[n - 1 - i]) < self.SYMMETRY_TOL
            for i in range(n // 2)
        )

    def sdc_slice(self, outputs: RankOutputs) -> tuple:
        values: list[float] = []
        for rank, stream in enumerate(outputs):
            cells = stream[2:] if rank == 0 else stream
            values.extend(v for _, v in cells)
        return tuple(values)


__all__ = ["CgApp", "N_LOCAL", "MAX_ITERS"]
