"""Coordinated checkpoint/restart for SPMD clusters, with LetGo.

Implements the paper's Section-7 multi-node assumptions *in vivo*:
synchronous coordinated checkpoints (all ranks + in-flight messages
captured together), and global rollback -- "when one node crashes, all
nodes in the system have to fall back to the last checkpoint and
re-execute together".  With LetGo attached, a crash on one rank is
repaired locally and *every* rank's work since the checkpoint is saved,
which is exactly why the paper expects LetGo's advantage to grow with
scale.

A deadlock (e.g. a receiver starved because LetGo elided a crashed send)
is treated like a failure: global rollback under C/R, death without it.

Comm-safe repair: by default the driver refuses to elide crashes whose
faulting instruction is a communication op (send/recv and friends) --
skipping a message does not perturb a number, it tears the synchronisation
structure, and measurements show the resulting deadlocks cost more than
the rollback LetGo avoided.  ``repair_comm=True`` restores the naive
behaviour for ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.checkpoint.snapshot import Snapshot, restore, snapshot
from repro.core.config import LetGoConfig
from repro.core.modifier import Modifier
from repro.core.monitor import Monitor
from repro.errors import SimulationError
from repro.faultinject.fault_model import flip_bit, select_target
from repro.isa.instructions import Op
from repro.machine.cluster import Cluster
from repro.machine.debugger import DebugSession
from repro.parallel.app import ParallelApp

#: Instructions whose elision tears the message protocol.
COMM_OPS = frozenset({Op.SEND, Op.FSEND, Op.RECV, Op.FRECV})


class ClusterPolicy(Enum):
    """Failure handling for a cluster run."""

    NONE = "none"
    CR = "cr"
    CR_LETGO = "cr+letgo"


@dataclass(frozen=True)
class ClusterCRParams:
    """Platform parameters in cluster-total instruction units."""

    interval: int                 # work between coordinated checkpoints
    t_chk: int                    # charged cost of one coordinated checkpoint
    t_r: int | None = None       # rollback cost (default t_chk)
    t_sync: int = 0               # extra per-checkpoint coordination cost
    t_letgo: int = 0              # charged cost of one LetGo repair
    mtbf_faults: float = 50_000.0  # mean cluster-instructions between faults

    def __post_init__(self) -> None:
        if self.interval <= 0 or self.mtbf_faults <= 0:
            raise SimulationError("invalid ClusterCRParams")

    @property
    def recovery(self) -> int:
        return (self.t_chk if self.t_r is None else self.t_r) + self.t_sync


@dataclass(frozen=True)
class ClusterSnapshot:
    """Coordinated checkpoint: every rank + the network, atomically."""

    ranks: tuple[Snapshot, ...]
    channels: dict = field(hash=False)


def take_cluster_snapshot(cluster: Cluster) -> ClusterSnapshot:
    """Capture all ranks and in-flight messages (all must be running)."""
    return ClusterSnapshot(
        ranks=tuple(snapshot(cluster.process(r)) for r in range(cluster.size)),
        channels=cluster.network.capture(),
    )


def restore_cluster(cluster: Cluster, snap: ClusterSnapshot) -> None:
    """Roll every rank and the network back to the checkpoint."""
    for rank, rank_snap in enumerate(snap.ranks):
        cluster.replace_process(rank, restore(cluster.program, rank_snap))
    cluster.network.reset(snap.channels)


@dataclass
class ClusterRunResult:
    """Outcome of one coordinated run."""

    policy: ClusterPolicy
    size: int
    completed: bool
    outcome: str                  # benign|sdc|detected|dead|hung|deadlocked
    useful: int
    cost: int
    checkpoints: int = 0
    rollbacks: int = 0
    deadlock_rollbacks: int = 0
    restarts: int = 0             # fell back to the initial state (poisoned ckpt)
    faults_injected: int = 0
    letgo_repairs: int = 0

    @property
    def efficiency(self) -> float:
        if not self.completed or self.cost <= 0:
            return 0.0
        return self.useful / self.cost


class CoordinatedRun:
    """Drives one cluster run under a policy with injected faults."""

    def __init__(
        self,
        app: ParallelApp,
        params: ClusterCRParams,
        policy: ClusterPolicy,
        seed: int,
        letgo: LetGoConfig | None = None,
        repair_comm: bool = False,
    ):
        if policy is ClusterPolicy.CR_LETGO and letgo is None:
            raise SimulationError("CR_LETGO policy needs a LetGo config")
        self.app = app
        self.params = params
        self.policy = policy
        self.letgo = letgo
        self.repair_comm = repair_comm
        self.rng = np.random.default_rng(seed)
        self._monitor = Monitor(letgo) if letgo is not None else None
        self._modifier = (
            Modifier(letgo, app.functions) if letgo is not None else None
        )

    def run(self) -> ClusterRunResult:
        app, params = self.app, self.params
        cluster = app.make_cluster()
        result = ClusterRunResult(
            policy=self.policy,
            size=app.size,
            completed=False,
            outcome="dead",
            useful=app.golden_steps,
            cost=0,
        )
        can_checkpoint = self.policy is not ClusterPolicy.NONE
        initial = take_cluster_snapshot(cluster) if can_checkpoint else None
        ckpt = initial
        since_ckpt = 0
        to_fault = self._next_fault()
        budget = app.max_steps * 4
        repairs_since_rollback = 0
        # Repeated failures from one checkpoint mean the checkpoint itself
        # captured corrupted (e.g. deadlock-bound) state; after a few tries
        # the job restarts from scratch, as an operator would.
        failures_since_ckpt = 0
        self._restart_pending = False

        while result.cost < budget:
            stride = min(params.interval - since_ckpt, to_fault)
            if not can_checkpoint:
                stride = to_fault
            event = cluster.run(stride)
            result.cost += event.steps
            since_ckpt += event.steps
            to_fault -= event.steps

            if event.kind == "exited":
                outputs = cluster.outputs()
                result.completed = True
                result.outcome = self._classify(outputs)
                return result

            if event.kind == "trap":
                assert event.trap is not None and event.rank is not None
                comm_fault = (
                    event.trap.instr is not None
                    and event.trap.instr.op in COMM_OPS
                )
                handled = (
                    self.policy is ClusterPolicy.CR_LETGO
                    and self._monitor is not None
                    and self._monitor.intercepts(event.trap.signal)
                    and (self.repair_comm or not comm_fault)
                    and repairs_since_rollback
                    < self.letgo.max_interventions * self.app.size  # type: ignore[union-attr]
                )
                if handled:
                    assert self._modifier is not None
                    session = DebugSession(cluster.process(event.rank))
                    self._modifier.repair(session, event.trap)
                    result.cost += params.t_letgo
                    result.letgo_repairs += 1
                    repairs_since_rollback += 1
                    continue
                if self.policy is ClusterPolicy.NONE:
                    result.outcome = "dead"
                    return result
                failures_since_ckpt += 1
                if failures_since_ckpt > 3:
                    ckpt = initial
                    result.restarts += 1
                    failures_since_ckpt = 0
                self._rollback(cluster, ckpt, result)
                since_ckpt = 0
                to_fault = self._next_fault()
                repairs_since_rollback = 0
                continue

            if event.kind == "deadlock":
                if self.policy is ClusterPolicy.NONE:
                    result.outcome = "deadlocked"
                    return result
                result.deadlock_rollbacks += 1
                failures_since_ckpt += 1
                if failures_since_ckpt > 1:
                    # deterministic re-deadlock: the checkpoint is poisoned
                    ckpt = initial
                    result.restarts += 1
                    failures_since_ckpt = 0
                self._rollback(cluster, ckpt, result)
                since_ckpt = 0
                to_fault = self._next_fault()
                repairs_since_rollback = 0
                continue

            assert event.kind == "budget"
            if to_fault <= 0:
                self._inject(cluster)
                result.faults_injected += 1
                to_fault = self._next_fault()
            if (
                can_checkpoint
                and since_ckpt >= params.interval
                and self._all_running(cluster)
            ):
                ckpt = take_cluster_snapshot(cluster)
                result.cost += params.t_chk + params.t_sync
                result.checkpoints += 1
                since_ckpt = 0
                repairs_since_rollback = 0
                failures_since_ckpt = 0

        result.outcome = "hung"
        return result

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _all_running(cluster: Cluster) -> bool:
        return not any(r.exited or r.terminated for r in cluster.ranks)

    def _rollback(self, cluster: Cluster, ckpt, result: ClusterRunResult) -> None:
        assert ckpt is not None
        restore_cluster(cluster, ckpt)
        result.cost += self.params.recovery
        result.rollbacks += 1

    def _next_fault(self) -> int:
        return max(1, int(self.rng.exponential(self.params.mtbf_faults)))

    def _inject(self, cluster: Cluster) -> None:
        live = [
            r for r in range(cluster.size)
            if not (cluster.ranks[r].exited or cluster.ranks[r].terminated)
        ]
        if not live:
            return
        rank = live[int(self.rng.integers(len(live)))]
        cpu = cluster.process(rank).cpu
        pc = cpu.pc
        instrs = cluster.program.instrs
        if not 0 <= pc < len(instrs):
            return
        target = select_target(instrs[pc], float(self.rng.random()))
        if target is None:
            return
        flip_bit(cpu, target[0], target[1], int(self.rng.integers(64)))

    def _classify(self, outputs) -> str:
        if not self.app.acceptance_check(outputs):
            return "detected"
        if self.app.matches_golden(outputs):
            return "benign"
        return "sdc"


def drive_cluster(
    app: ParallelApp,
    params: ClusterCRParams,
    policy: ClusterPolicy,
    seed: int = 0,
    letgo: LetGoConfig | None = None,
    repair_comm: bool = False,
) -> ClusterRunResult:
    """One-shot convenience wrapper."""
    return CoordinatedRun(app, params, policy, seed, letgo, repair_comm).run()


__all__ = [
    "ClusterPolicy",
    "ClusterCRParams",
    "ClusterSnapshot",
    "take_cluster_snapshot",
    "restore_cluster",
    "ClusterRunResult",
    "CoordinatedRun",
    "drive_cluster",
]
