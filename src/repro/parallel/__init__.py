"""SPMD parallelism: clusters, a parallel proxy app, coordinated C/R.

The paper's "towards large-scale application" extension, built for real:
multi-rank jobs with message passing, synchronous coordinated
checkpointing, global rollback on failure, and per-rank LetGo repair that
saves every rank's work at once.
"""

from repro.machine.cluster import Cluster, ClusterEvent, Network
from repro.parallel.app import HeatApp, ParallelApp, RankOutputs
from repro.parallel.cg import CgApp
from repro.parallel.driver import (
    ClusterCRParams,
    ClusterPolicy,
    ClusterRunResult,
    ClusterSnapshot,
    CoordinatedRun,
    drive_cluster,
    restore_cluster,
    take_cluster_snapshot,
)

__all__ = [
    "Cluster",
    "ClusterEvent",
    "Network",
    "ParallelApp",
    "HeatApp",
    "CgApp",
    "RankOutputs",
    "ClusterPolicy",
    "ClusterCRParams",
    "ClusterSnapshot",
    "take_cluster_snapshot",
    "restore_cluster",
    "ClusterRunResult",
    "CoordinatedRun",
    "drive_cluster",
]
