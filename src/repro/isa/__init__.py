"""The repro instruction-set architecture.

A compact 64-bit register ISA with x86-style stack discipline (``sp``/``bp``,
``push``/``pop``/``call``/``ret``), IEEE-754 doubles, an assembler, a
disassembler and a fixed-width binary encoding.  This is the substrate that
replaces x86-64 in the LetGo reproduction.
"""

from repro.isa.assembler import Assembler, assemble
from repro.isa.disassembler import disassemble, dump
from repro.isa.encoding import (
    decode_instr,
    decode_program,
    encode_instr,
    encode_program,
)
from repro.isa.instructions import (
    BRANCH_OPS,
    LOAD_OPS,
    MEMORY_OPS,
    STORE_OPS,
    Instr,
    Op,
)
from repro.isa.layout import (
    CELL,
    DATA_BASE,
    INT64_MAX,
    INT64_MIN,
    MASK64,
    STACK_LIMIT,
    STACK_SIZE,
    STACK_TOP,
)
from repro.isa.program import DataSymbol, Program
from repro.isa.registers import (
    BP,
    FP_REG_NAMES,
    INT_REG_NAMES,
    NUM_FP_REGS,
    NUM_INT_REGS,
    SP,
    fp_reg_index,
    fp_reg_name,
    int_reg_index,
    int_reg_name,
)

__all__ = [
    "Assembler",
    "assemble",
    "disassemble",
    "dump",
    "encode_instr",
    "decode_instr",
    "encode_program",
    "decode_program",
    "Instr",
    "Op",
    "BRANCH_OPS",
    "LOAD_OPS",
    "STORE_OPS",
    "MEMORY_OPS",
    "Program",
    "DataSymbol",
    "BP",
    "SP",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "INT_REG_NAMES",
    "FP_REG_NAMES",
    "int_reg_index",
    "int_reg_name",
    "fp_reg_index",
    "fp_reg_name",
    "CELL",
    "DATA_BASE",
    "STACK_TOP",
    "STACK_SIZE",
    "STACK_LIMIT",
    "MASK64",
    "INT64_MIN",
    "INT64_MAX",
]
