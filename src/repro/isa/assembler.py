"""Two-pass assembler: text assembly -> :class:`~repro.isa.program.Program`.

Syntax overview (see tests for a working example)::

    ; comment
    .data
    grid:   .space 64           ; 64 zero cells
    n:      .word 8             ; one int cell
    pi:     .double 3.14159     ; one float cell
    .text
    .entry _start
    .func _start
    _start:
        call main
        halt
    .func main
    main:
        push bp
        mov bp, sp
        subi sp, sp, #16
        movi r1, @grid          ; address of a data symbol
        fld f1, [r1 + 8]
        beqz r2, done
    done:
        addi sp, sp, #16
        pop bp
        ret

Labels defined under ``.func NAME`` belong to that function; branch targets
may be any label.  Immediates are written ``#value`` (int, hex int, or
float) or ``@symbol`` (address of a data symbol).
"""

from __future__ import annotations

import re

from repro.errors import AssemblerError
from repro.isa.instructions import FLOAT_IMM_OPS, BRANCH_OPS, Instr, Op
from repro.isa.layout import CELL, DATA_BASE, MASK64
from repro.isa.program import DataSymbol, Program
from repro.isa.registers import fp_reg_index, int_reg_index, is_fp_reg, is_int_reg

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):(.*)$")
_MEM_RE = re.compile(
    r"^\[\s*([A-Za-z_]\w*)\s*"           # base register
    r"(?:\+\s*([A-Za-z_]\w*)\s*\*\s*8\s*)?"  # optional "+ idx*8"
    r"(?:([+-])\s*(\d+|0x[0-9A-Fa-f]+)\s*)?"  # optional offset
    r"\]$"
)

#: Mnemonics taking "rd, ra, rb" integer form.
_RRR = {
    "add": Op.ADD, "sub": Op.SUB, "mul": Op.MUL, "div": Op.DIV,
    "mod": Op.MOD, "and": Op.AND, "or": Op.OR, "xor": Op.XOR,
    "shl": Op.SHL, "shr": Op.SHR,
    "seq": Op.SEQ, "sne": Op.SNE, "slt": Op.SLT, "sle": Op.SLE,
}
#: Mnemonics taking "rd, ra, #imm" form.
_RRI = {
    "addi": Op.ADDI, "subi": Op.SUBI, "muli": Op.MULI, "andi": Op.ANDI,
    "ori": Op.ORI, "xori": Op.XORI, "shli": Op.SHLI, "shri": Op.SHRI,
}
#: Mnemonics taking "fd, fa, fb" float form.
_FFF = {
    "fadd": Op.FADD, "fsub": Op.FSUB, "fmul": Op.FMUL, "fdiv": Op.FDIV,
    "fmin": Op.FMIN, "fmax": Op.FMAX,
}
#: Float compares: "rd, fa, fb".
_RFF = {"feq": Op.FEQ, "fne": Op.FNE, "flt": Op.FLT, "fle": Op.FLE}
#: Unary: int "rd, ra" / float "fd, fa".
_RR = {"neg": Op.NEG, "not": Op.NOT}
_FF = {"fneg": Op.FNEG, "fsqrt": Op.FSQRT, "fabs": Op.FABS}


def _parse_int(text: str, line: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"bad integer literal {text!r}", line) from None


def _float_pattern(value: float) -> int:
    import struct

    return struct.unpack("<Q", struct.pack("<d", value))[0]


class Assembler:
    """Stateful two-pass assembler.  Use :func:`assemble` for one-shots."""

    def __init__(self) -> None:
        self._instrs: list[tuple[Instr, int]] = []  # (instr, source line)
        self._labels: dict[str, int] = {}
        self._functions: dict[str, int] = {}
        self._pending_funcs: list[str] = []
        self._data_symbols: dict[str, DataSymbol] = {}
        self._data_init: dict[int, int] = {}
        self._data_cursor = DATA_BASE
        self._entry = "_start"
        self._section = ".text"

    # -- public API --------------------------------------------------------

    def assemble(self, source: str, source_name: str = "") -> Program:
        """Assemble *source*, returning a linked :class:`Program`."""
        for lineno, raw in enumerate(source.splitlines(), start=1):
            self._line(raw, lineno)
        instrs = self._resolve()
        if self._entry not in self._functions and "main" in self._functions:
            self._entry = "main"
        return Program(
            instrs=instrs,
            functions=dict(self._functions),
            data_symbols=dict(self._data_symbols),
            data_init=dict(self._data_init),
            entry=self._entry,
            source_name=source_name,
        )

    # -- first pass ----------------------------------------------------------

    def _line(self, raw: str, lineno: int) -> None:
        text = raw.split(";", 1)[0].strip()
        if not text:
            return
        m = _LABEL_RE.match(text)
        if m:
            label, rest = m.group(1), m.group(2).strip()
            self._define_label(label, lineno)
            if rest:
                self._line(rest, lineno)
            return
        if text.startswith("."):
            self._directive(text, lineno)
            return
        if self._section != ".text":
            raise AssemblerError(f"instruction outside .text: {text!r}", lineno)
        self._instruction(text, lineno)

    def _define_label(self, label: str, lineno: int) -> None:
        if self._section == ".text":
            if label in self._labels:
                raise AssemblerError(f"duplicate label {label!r}", lineno)
            self._labels[label] = len(self._instrs)
            if self._pending_funcs:
                for name in self._pending_funcs:
                    if name != label:
                        raise AssemblerError(
                            f".func {name} not followed by its label", lineno
                        )
                    self._functions[name] = len(self._instrs)
                self._pending_funcs.clear()
        else:
            # data label: applies to the next data directive
            if label in self._data_symbols:
                raise AssemblerError(f"duplicate data symbol {label!r}", lineno)
            self._pending_data_label = (label, lineno)

    def _directive(self, text: str, lineno: int) -> None:
        parts = text.split(None, 1)
        name = parts[0]
        arg = parts[1].strip() if len(parts) > 1 else ""
        if name in (".data", ".text"):
            self._section = name
        elif name == ".entry":
            self._entry = arg
        elif name == ".func":
            if not arg:
                raise AssemblerError(".func needs a name", lineno)
            self._pending_funcs.append(arg)
        elif name == ".space":
            self._data_directive(lineno, cells=_parse_int(arg, lineno))
        elif name == ".word":
            values = [_parse_int(v.strip(), lineno) for v in arg.split(",")]
            self._data_directive(lineno, values=[v & MASK64 for v in values])
        elif name == ".double":
            try:
                values = [float(v.strip()) for v in arg.split(",")]
            except ValueError:
                raise AssemblerError(f"bad float list {arg!r}", lineno) from None
            self._data_directive(
                lineno, values=[_float_pattern(v) for v in values]
            )
        else:
            raise AssemblerError(f"unknown directive {name!r}", lineno)

    def _data_directive(
        self,
        lineno: int,
        cells: int | None = None,
        values: list[int] | None = None,
    ) -> None:
        if self._section != ".data":
            raise AssemblerError("data directive outside .data", lineno)
        label = getattr(self, "_pending_data_label", None)
        if label is None:
            raise AssemblerError("data directive without a label", lineno)
        name, _ = label
        del self._pending_data_label
        n = cells if cells is not None else len(values or [])
        if n <= 0:
            raise AssemblerError("data region must have positive size", lineno)
        addr = self._data_cursor
        self._data_symbols[name] = DataSymbol(name=name, addr=addr, cells=n)
        if values:
            for i, pattern in enumerate(values):
                if pattern:
                    self._data_init[addr + i * CELL] = pattern
        self._data_cursor = addr + n * CELL

    # -- instruction parsing ---------------------------------------------

    def _instruction(self, text: str, lineno: int) -> None:
        parts = text.split(None, 1)
        mn = parts[0].lower()
        ops = [o.strip() for o in parts[1].split(",")] if len(parts) > 1 else []
        ins = self._build(mn, ops, lineno)
        self._instrs.append((ins, lineno))

    def _reg(self, tok: str, lineno: int) -> int:
        if not is_int_reg(tok):
            raise AssemblerError(f"expected integer register, got {tok!r}", lineno)
        return int_reg_index(tok)

    def _freg(self, tok: str, lineno: int) -> int:
        if not is_fp_reg(tok):
            raise AssemblerError(f"expected fp register, got {tok!r}", lineno)
        return fp_reg_index(tok)

    def _imm(self, tok: str, lineno: int, want_float: bool = False):
        if tok.startswith("@"):
            return ("@", tok[1:])  # resolved in pass 2
        if not tok.startswith("#"):
            raise AssemblerError(f"expected immediate, got {tok!r}", lineno)
        body = tok[1:]
        if want_float:
            try:
                return float(body)
            except ValueError:
                raise AssemblerError(f"bad float {body!r}", lineno) from None
        try:
            return int(body, 0)
        except ValueError:
            raise AssemblerError(f"bad integer {body!r}", lineno) from None

    def _mem(self, tok: str, lineno: int) -> tuple[int, int | None, int]:
        """Parse a memory operand -> (base, index-or-None, offset)."""
        m = _MEM_RE.match(tok.replace(" ", " "))
        if not m:
            raise AssemblerError(f"bad memory operand {tok!r}", lineno)
        base = self._reg(m.group(1), lineno)
        idx = self._reg(m.group(2), lineno) if m.group(2) else None
        off = 0
        if m.group(4):
            off = _parse_int(m.group(4), lineno)
            if m.group(3) == "-":
                off = -off
        return base, idx, off

    def _build(self, mn: str, ops: list[str], lineno: int) -> Instr:
        def need(n: int) -> None:
            if len(ops) != n:
                raise AssemblerError(
                    f"{mn} expects {n} operand(s), got {len(ops)}", lineno
                )

        if mn in ("nop", "ret", "halt", "abort"):
            need(0)
            return Instr(Op[mn.upper()])
        if mn == "mov":
            need(2)
            return Instr(Op.MOV, rd=self._reg(ops[0], lineno), ra=self._reg(ops[1], lineno))
        if mn == "movi":
            need(2)
            imm = self._imm(ops[1], lineno)
            if isinstance(imm, tuple):
                return Instr(Op.MOVI, rd=self._reg(ops[0], lineno), imm=0, sym=imm[1])
            return Instr(Op.MOVI, rd=self._reg(ops[0], lineno), imm=imm)
        if mn == "fmov":
            need(2)
            return Instr(Op.FMOV, rd=self._freg(ops[0], lineno), ra=self._freg(ops[1], lineno))
        if mn == "fmovi":
            need(2)
            return Instr(
                Op.FMOVI,
                rd=self._freg(ops[0], lineno),
                imm=self._imm(ops[1], lineno, want_float=True),
            )
        if mn in ("ld", "fld"):
            need(2)
            base, idx, off = self._mem(ops[1], lineno)
            rd = self._reg(ops[0], lineno) if mn == "ld" else self._freg(ops[0], lineno)
            if idx is None:
                return Instr(Op[mn.upper()], rd=rd, ra=base, imm=off)
            return Instr(Op.LDX if mn == "ld" else Op.FLDX, rd=rd, ra=base, rb=idx, imm=off)
        if mn in ("st", "fst"):
            need(2)
            base, idx, off = self._mem(ops[0], lineno)
            src = self._reg(ops[1], lineno) if mn == "st" else self._freg(ops[1], lineno)
            if idx is None:
                return Instr(Op[mn.upper()], rd=src, ra=base, imm=off)
            return Instr(Op.STX if mn == "st" else Op.FSTX, rd=src, ra=base, rb=idx, imm=off)
        if mn in ("ldx", "fldx"):
            need(2)
            base, idx, off = self._mem(ops[1], lineno)
            if idx is None:
                raise AssemblerError(f"{mn} needs an index register", lineno)
            rd = self._reg(ops[0], lineno) if mn == "ldx" else self._freg(ops[0], lineno)
            return Instr(Op[mn.upper()], rd=rd, ra=base, rb=idx, imm=off)
        if mn in ("stx", "fstx"):
            need(2)
            base, idx, off = self._mem(ops[0], lineno)
            if idx is None:
                raise AssemblerError(f"{mn} needs an index register", lineno)
            src = self._reg(ops[1], lineno) if mn == "stx" else self._freg(ops[1], lineno)
            return Instr(Op[mn.upper()], rd=src, ra=base, rb=idx, imm=off)
        if mn == "push":
            need(1)
            return Instr(Op.PUSH, ra=self._reg(ops[0], lineno))
        if mn == "pop":
            need(1)
            return Instr(Op.POP, rd=self._reg(ops[0], lineno))
        if mn == "fpush":
            need(1)
            return Instr(Op.FPUSH, ra=self._freg(ops[0], lineno))
        if mn == "fpop":
            need(1)
            return Instr(Op.FPOP, rd=self._freg(ops[0], lineno))
        if mn in _RRR:
            need(3)
            return Instr(
                _RRR[mn],
                rd=self._reg(ops[0], lineno),
                ra=self._reg(ops[1], lineno),
                rb=self._reg(ops[2], lineno),
            )
        if mn in _RRI:
            need(3)
            imm = self._imm(ops[2], lineno)
            if isinstance(imm, tuple):
                raise AssemblerError("@symbol not allowed here", lineno)
            return Instr(
                _RRI[mn],
                rd=self._reg(ops[0], lineno),
                ra=self._reg(ops[1], lineno),
                imm=imm,
            )
        if mn in _FFF:
            need(3)
            return Instr(
                _FFF[mn],
                rd=self._freg(ops[0], lineno),
                ra=self._freg(ops[1], lineno),
                rb=self._freg(ops[2], lineno),
            )
        if mn in _RFF:
            need(3)
            return Instr(
                _RFF[mn],
                rd=self._reg(ops[0], lineno),
                ra=self._freg(ops[1], lineno),
                rb=self._freg(ops[2], lineno),
            )
        if mn in _RR:
            need(2)
            return Instr(_RR[mn], rd=self._reg(ops[0], lineno), ra=self._reg(ops[1], lineno))
        if mn in _FF:
            need(2)
            return Instr(_FF[mn], rd=self._freg(ops[0], lineno), ra=self._freg(ops[1], lineno))
        if mn == "itof":
            need(2)
            return Instr(Op.ITOF, rd=self._freg(ops[0], lineno), ra=self._reg(ops[1], lineno))
        if mn == "ftoi":
            need(2)
            return Instr(Op.FTOI, rd=self._reg(ops[0], lineno), ra=self._freg(ops[1], lineno))
        if mn in ("jmp", "call"):
            need(1)
            return Instr(Op[mn.upper()], imm=-1, sym=ops[0])
        if mn in ("beqz", "bnez"):
            need(2)
            return Instr(Op[mn.upper()], ra=self._reg(ops[0], lineno), imm=-1, sym=ops[1])
        if mn == "out":
            need(1)
            return Instr(Op.OUT, ra=self._reg(ops[0], lineno))
        if mn == "fout":
            need(1)
            return Instr(Op.FOUT, ra=self._freg(ops[0], lineno))
        if mn in ("rank", "nranks"):
            need(1)
            return Instr(Op[mn.upper()], rd=self._reg(ops[0], lineno))
        if mn == "send":
            need(2)
            return Instr(Op.SEND, ra=self._reg(ops[0], lineno), rb=self._reg(ops[1], lineno))
        if mn == "fsend":
            need(2)
            return Instr(Op.FSEND, ra=self._reg(ops[0], lineno), rb=self._freg(ops[1], lineno))
        if mn == "recv":
            need(2)
            return Instr(Op.RECV, rd=self._reg(ops[0], lineno), ra=self._reg(ops[1], lineno))
        if mn == "frecv":
            need(2)
            return Instr(Op.FRECV, rd=self._freg(ops[0], lineno), ra=self._reg(ops[1], lineno))
        raise AssemblerError(f"unknown mnemonic {mn!r}", lineno)

    # -- second pass: resolve symbols -----------------------------------

    def _resolve(self) -> list[Instr]:
        out: list[Instr] = []
        for ins, lineno in self._instrs:
            if ins.op in BRANCH_OPS and ins.sym is not None:
                target = self._labels.get(ins.sym)
                if target is None:
                    raise AssemblerError(f"undefined label {ins.sym!r}", lineno)
                out.append(
                    Instr(ins.op, rd=ins.rd, ra=ins.ra, rb=ins.rb, imm=target, sym=ins.sym)
                )
            elif ins.op is Op.MOVI and ins.sym is not None:
                symbol = self._data_symbols.get(ins.sym)
                if symbol is None:
                    raise AssemblerError(f"undefined data symbol {ins.sym!r}", lineno)
                out.append(
                    Instr(Op.MOVI, rd=ins.rd, imm=symbol.addr, sym=ins.sym)
                )
            else:
                out.append(ins)
        return out


def assemble(source: str, source_name: str = "") -> Program:
    """Assemble *source* text into a :class:`Program`."""
    return Assembler().assemble(source, source_name)


__all__ = ["Assembler", "assemble", "FLOAT_IMM_OPS"]
