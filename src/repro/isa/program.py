"""Program image: decoded instructions + symbols + data layout.

A :class:`Program` is what the assembler produces, the loader consumes, and
static analysis (:mod:`repro.analysis`) inspects.  It plays the role of an
ELF executable in the original LetGo setup.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import LoaderError
from repro.isa.instructions import Instr
from repro.isa.layout import CELL, DATA_BASE


@dataclass(frozen=True)
class DataSymbol:
    """A named region in the data segment.

    ``addr`` is an absolute byte address, ``cells`` the region length in
    8-byte cells.
    """

    name: str
    addr: int
    cells: int

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.addr + self.cells * CELL


@dataclass
class Program:
    """A fully-linked executable image.

    Attributes
    ----------
    instrs:
        Decoded instruction list; the PC indexes it.
    functions:
        Function name -> entry PC.  Function extents are derived by static
        analysis (a function runs until the next function's entry).
    data_symbols:
        Global name -> :class:`DataSymbol`.
    data_init:
        Absolute address -> initial 64-bit pattern (unsigned).  Cells not
        listed start as zero.
    entry:
        Name of the function execution starts in.
    source_name:
        Informational tag (e.g. the MiniC app that produced the image).
    """

    instrs: list[Instr]
    functions: dict[str, int] = field(default_factory=dict)
    data_symbols: dict[str, DataSymbol] = field(default_factory=dict)
    data_init: dict[int, int] = field(default_factory=dict)
    entry: str = "_start"
    source_name: str = ""

    def __post_init__(self) -> None:
        if self.entry not in self.functions and self.instrs:
            if "main" in self.functions:
                self.entry = "main"
            else:
                raise LoaderError(
                    f"entry point {self.entry!r} is not a declared function"
                )

    # -- geometry ----------------------------------------------------------

    @property
    def entry_pc(self) -> int:
        """PC of the entry function."""
        return self.functions[self.entry]

    @property
    def data_cells(self) -> int:
        """Total data-segment length in cells (contiguous from DATA_BASE)."""
        if not self.data_symbols:
            return 0
        end = max(s.end for s in self.data_symbols.values())
        return (end - DATA_BASE) // CELL

    def data_end(self) -> int:
        """One past the last data-segment byte."""
        return DATA_BASE + self.data_cells * CELL

    # -- symbol queries ------------------------------------------------------

    def function_names_by_pc(self) -> list[tuple[int, str]]:
        """(entry_pc, name) pairs sorted by entry PC."""
        return sorted((pc, name) for name, pc in self.functions.items())

    def symbol_for_pc(self, pc: int) -> str | None:
        """Name of the function containing *pc*, or None if out of range."""
        best: str | None = None
        best_pc = -1
        for name, fpc in self.functions.items():
            if fpc <= pc and fpc > best_pc:
                best, best_pc = name, fpc
        return best if 0 <= pc < len(self.instrs) else None

    # -- identity ------------------------------------------------------------

    def checksum(self) -> str:
        """Stable content hash of the image (code + data + symbols).

        Cached after the first call: images are immutable once assembled,
        and the restore fast path verifies the checksum per injection.
        """
        cached = self.__dict__.get("_checksum")
        if cached is not None:
            return cached
        h = hashlib.sha256()
        for ins in self.instrs:
            h.update(
                f"{int(ins.op)}|{ins.rd}|{ins.ra}|{ins.rb}|{ins.imm!r}".encode()
            )
        for name in sorted(self.functions):
            h.update(f"F{name}:{self.functions[name]}".encode())
        for name in sorted(self.data_symbols):
            s = self.data_symbols[name]
            h.update(f"D{name}:{s.addr}:{s.cells}".encode())
        for addr in sorted(self.data_init):
            h.update(f"I{addr}:{self.data_init[addr]}".encode())
        digest = h.hexdigest()
        self.__dict__["_checksum"] = digest
        return digest

    def __len__(self) -> int:
        return len(self.instrs)
