"""Disassembler: :class:`Program` -> assembly text.

Output from :func:`disassemble` re-assembles to an equivalent program
(label names are regenerated from the symbol table where available);
:func:`dump` produces a human-oriented listing with PCs and function
headers, the equivalent of ``objdump -d`` used when no source is around.
"""

from __future__ import annotations

from repro.isa.instructions import BRANCH_OPS, Instr, Op
from repro.isa.program import Program


def _branch_labels(program: Program) -> dict[int, str]:
    """Assign a label name to every PC that is a branch target or function."""
    labels: dict[int, str] = {}
    for name, pc in program.functions.items():
        labels[pc] = name
    counter = 0
    for ins in program.instrs:
        if ins.op in BRANCH_OPS:
            target = int(ins.imm)
            if target not in labels:
                labels[target] = f".L{counter}"
                counter += 1
    return labels


def _instr_text(ins: Instr, labels: dict[int, str]) -> str:
    if ins.op in BRANCH_OPS:
        name = labels.get(int(ins.imm), str(ins.imm))
        ins = Instr(ins.op, rd=ins.rd, ra=ins.ra, rb=ins.rb, imm=ins.imm, sym=name)
    text = ins.text()
    # Strip the "<sym>" annotations Instr.text adds; the assembler syntax
    # for address immediates is "@sym" which we re-introduce for MOVI.
    if ins.op is Op.MOVI and ins.sym is not None:
        return f"movi {text.split()[1]} @{ins.sym}"
    return text.split(" <", 1)[0]


def disassemble(program: Program) -> str:
    """Round-trippable assembly text for *program*."""
    labels = _branch_labels(program)
    func_starts = {pc: name for name, pc in program.functions.items()}
    lines: list[str] = []
    if program.data_symbols:
        lines.append(".data")
        for sym in sorted(program.data_symbols.values(), key=lambda s: s.addr):
            inits = [
                program.data_init.get(sym.addr + i * 8, 0) for i in range(sym.cells)
            ]
            if any(inits):
                body = ", ".join(str(v) for v in inits)
                lines.append(f"{sym.name}: .word {body}")
            else:
                lines.append(f"{sym.name}: .space {sym.cells}")
    lines.append(".text")
    lines.append(f".entry {program.entry}")
    for pc, ins in enumerate(program.instrs):
        if pc in func_starts:
            lines.append(f".func {func_starts[pc]}")
        if pc in labels:
            lines.append(f"{labels[pc]}:")
        lines.append(f"    {_instr_text(ins, labels)}")
    return "\n".join(lines) + "\n"


def dump(program: Program) -> str:
    """Human-oriented listing with PCs (objdump-style)."""
    labels = _branch_labels(program)
    func_starts = {pc: name for name, pc in program.functions.items()}
    lines = [f"; image {program.source_name or '<anonymous>'}"]
    lines.append(f"; {len(program.instrs)} instructions, entry {program.entry}")
    for sym in sorted(program.data_symbols.values(), key=lambda s: s.addr):
        lines.append(f"; data {sym.name} @ 0x{sym.addr:x} ({sym.cells} cells)")
    for pc, ins in enumerate(program.instrs):
        if pc in func_starts:
            lines.append(f"\n{func_starts[pc]}:")
        elif pc in labels:
            lines.append(f"{labels[pc]}:")
        lines.append(f"  {pc:6d}: {_instr_text(ins, labels)}")
    return "\n".join(lines) + "\n"


__all__ = ["disassemble", "dump"]
