"""Address-space layout constants shared by the assembler and the machine.

The layout mirrors a conventional (simplified) Unix process image:

* page zero is never mapped, so null-pointer-like dereferences raise
  SIGSEGV exactly as on Linux;
* a data segment holds globals, starting at :data:`DATA_BASE`;
* the stack occupies ``[STACK_TOP - STACK_SIZE, STACK_TOP)`` and grows
  downward; running past its guard raises SIGSEGV.

All data cells are :data:`CELL` = 8 bytes and accesses must be 8-aligned
(misalignment raises SIGBUS).
"""

from __future__ import annotations

#: Size of every memory cell / register, in bytes.
CELL = 8

#: First address of the data segment (globals).
DATA_BASE = 0x1_0000

#: One-past-the-highest stack address; initial ``sp``.
STACK_TOP = 0x10_0000

#: Stack reservation in bytes.
STACK_SIZE = 0x1_0000

#: Lowest mapped stack address.
STACK_LIMIT = STACK_TOP - STACK_SIZE

#: Mask for 64-bit register/memory patterns.
MASK64 = (1 << 64) - 1

#: Smallest signed 64-bit integer (FTOI overflow sentinel, like x86).
INT64_MIN = -(1 << 63)

#: Largest signed 64-bit integer.
INT64_MAX = (1 << 63) - 1
