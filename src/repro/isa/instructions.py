"""Instruction model for the repro ISA.

Design notes
------------
* Instructions are stored *decoded*: a program is a list of :class:`Instr`
  and the program counter indexes that list, so "advance the PC past the
  faulting instruction" (LetGo's core move) is ``pc + 1``.  A fixed-width
  binary encoding also exists (:mod:`repro.isa.encoding`) so that static
  analysis can work from an image alone, like PIN on a stripped binary.
* Every opcode declares which register it *writes* and which it *reads*.
  The fault injector flips a bit in the written register of the selected
  dynamic instruction (the paper's "destination register"); LetGo's
  Heuristic I needs to know whether the faulting instruction is a load or a
  store, and Heuristic II whether it touches ``sp``/``bp``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.isa.registers import (
    BP,
    SP,
    fp_reg_name,
    int_reg_name,
)


class Op(IntEnum):
    """Opcodes.  Grouped; the numeric values are stable (used in encoding)."""

    # data movement
    NOP = 0
    MOV = 1      # rd <- ra
    MOVI = 2     # rd <- imm (int); also used for addresses ("la")
    FMOV = 3     # fd <- fa
    FMOVI = 4    # fd <- imm (float)
    # memory (byte addressed, 8-byte cells, 8-aligned)
    LD = 10      # rd <- mem[ra + imm]
    ST = 11      # mem[ra + imm] <- rd (rd is the *source*)
    LDX = 12     # rd <- mem[ra + rb*8 + imm]
    STX = 13     # mem[ra + rb*8 + imm] <- rd (source)
    FLD = 14     # fd <- mem[ra + imm]
    FST = 15     # mem[ra + imm] <- fd (source)
    FLDX = 16    # fd <- mem[ra + rb*8 + imm]
    FSTX = 17    # mem[ra + rb*8 + imm] <- fd (source)
    PUSH = 18    # sp -= 8; mem[sp] <- ra
    POP = 19     # rd <- mem[sp]; sp += 8
    FPUSH = 20   # sp -= 8; mem[sp] <- fa
    FPOP = 21    # fd <- mem[sp]; sp += 8
    # integer ALU (64-bit two's complement, wraparound)
    ADD = 30
    SUB = 31
    MUL = 32
    DIV = 33     # signed, trunc toward zero; divisor 0 -> SIGFPE
    MOD = 34     # sign of dividend; divisor 0 -> SIGFPE
    AND = 35
    OR = 36
    XOR = 37
    SHL = 38     # shift count masked to 6 bits (x86 semantics)
    SHR = 39     # arithmetic right shift, count masked
    NEG = 40
    NOT = 41
    ADDI = 42    # rd <- ra + imm
    SUBI = 43
    MULI = 44
    ANDI = 45
    ORI = 46
    XORI = 47
    SHLI = 48
    SHRI = 49
    # comparisons producing 0/1 in an int register
    SEQ = 55
    SNE = 56
    SLT = 57
    SLE = 58
    FEQ = 60     # rd <- (fa == fb)
    FNE = 61
    FLT = 62
    FLE = 63
    # floating point ALU (IEEE-754 binary64)
    FADD = 70
    FSUB = 71
    FMUL = 72
    FDIV = 73    # /0 -> inf per IEEE, not a trap
    FNEG = 74
    FSQRT = 75   # sqrt of negative -> NaN
    FABS = 76
    FMIN = 77
    FMAX = 78
    # conversions
    ITOF = 80    # fd <- float(ra)
    FTOI = 81    # rd <- trunc(fa); NaN/inf/out-of-range -> INT64_MIN
    # control flow (targets are instruction indices, resolved from labels)
    JMP = 90     # pc <- imm
    BEQZ = 91    # if ra == 0: pc <- imm
    BNEZ = 92    # if ra != 0: pc <- imm
    CALL = 93    # push pc+1; pc <- imm
    RET = 94     # pop pc
    # system
    HALT = 100   # exit; code taken from r0
    OUT = 101    # append int in ra to the process output buffer
    FOUT = 102   # append float in fa to the process output buffer
    ABORT = 103  # raise SIGABRT (application-level assertion failure)
    # inter-rank communication (SPMD clusters; repro.machine.cluster)
    RANK = 110   # rd <- this process's rank (0 outside a cluster)
    NRANKS = 111 # rd <- cluster size (1 outside a cluster)
    SEND = 112   # send int in rb to rank in ra (async, unbounded queue)
    RECV = 113   # rd <- next int from rank in ra (blocks: see cluster)
    FSEND = 114  # send float in fb (register index in rb) to rank in ra
    FRECV = 115  # fd <- next float from rank in ra


#: Opcodes whose immediate is a float (everything else: signed 64-bit int).
FLOAT_IMM_OPS = frozenset({Op.FMOVI})

#: Loads: Heuristic I feeds the destination a fill value for these.
LOAD_OPS = frozenset({Op.LD, Op.LDX, Op.FLD, Op.FLDX, Op.POP, Op.FPOP})
#: Stores: Heuristic I leaves memory untouched for these.
STORE_OPS = frozenset({Op.ST, Op.STX, Op.FST, Op.FSTX, Op.PUSH, Op.FPUSH})
#: All opcodes that access data memory (can raise SIGSEGV / SIGBUS).
MEMORY_OPS = LOAD_OPS | STORE_OPS | frozenset({Op.CALL, Op.RET})

#: Control transfers (the assembler resolves their label immediates).
BRANCH_OPS = frozenset({Op.JMP, Op.BEQZ, Op.BNEZ, Op.CALL})

_FP_OPS_WRITING_FD = frozenset(
    {
        Op.FMOV,
        Op.FMOVI,
        Op.FLD,
        Op.FLDX,
        Op.FPOP,
        Op.FADD,
        Op.FSUB,
        Op.FMUL,
        Op.FDIV,
        Op.FNEG,
        Op.FSQRT,
        Op.FABS,
        Op.FMIN,
        Op.FMAX,
        Op.ITOF,
        Op.FRECV,
    }
)

_INT_OPS_WRITING_RD = frozenset(
    {
        Op.MOV,
        Op.MOVI,
        Op.LD,
        Op.LDX,
        Op.POP,
        Op.ADD,
        Op.SUB,
        Op.MUL,
        Op.DIV,
        Op.MOD,
        Op.AND,
        Op.OR,
        Op.XOR,
        Op.SHL,
        Op.SHR,
        Op.NEG,
        Op.NOT,
        Op.ADDI,
        Op.SUBI,
        Op.MULI,
        Op.ANDI,
        Op.ORI,
        Op.XORI,
        Op.SHLI,
        Op.SHRI,
        Op.SEQ,
        Op.SNE,
        Op.SLT,
        Op.SLE,
        Op.FEQ,
        Op.FNE,
        Op.FLT,
        Op.FLE,
        Op.FTOI,
        Op.RANK,
        Op.NRANKS,
        Op.RECV,
    }
)

# Opcodes reading fa/fb slots as fp registers.
_FP_SRC_OPS = frozenset(
    {
        Op.FMOV,
        Op.FST,
        Op.FSTX,
        Op.FPUSH,
        Op.FADD,
        Op.FSUB,
        Op.FMUL,
        Op.FDIV,
        Op.FNEG,
        Op.FSQRT,
        Op.FABS,
        Op.FMIN,
        Op.FMAX,
        Op.FTOI,
        Op.FEQ,
        Op.FNE,
        Op.FLT,
        Op.FLE,
        Op.FOUT,
    }
)


@dataclass(frozen=True)
class Instr:
    """One decoded instruction.

    Field roles depend on the opcode (see :class:`Op` comments):

    ``rd``
        destination register index, or the *source* register for stores
        (this mirrors x86, where the same operand slot is written by loads
        and read by stores).
    ``ra``, ``rb``
        source register indices (base / index registers for memory ops).
    ``imm``
        immediate: int for most opcodes, float for :data:`FLOAT_IMM_OPS`,
        branch/call target instruction index for control flow, byte offset
        for memory ops.
    ``sym``
        optional symbol the immediate refers to (label or data name); purely
        informational, used by the disassembler.
    """

    op: Op
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int | float = 0
    sym: str | None = field(default=None, compare=False)

    # -- classification helpers (used by LetGo and the injector) ----------

    def is_load(self) -> bool:
        """True for instructions that read data memory into a register."""
        return self.op in LOAD_OPS

    def is_store(self) -> bool:
        """True for instructions that write register data to memory."""
        return self.op in STORE_OPS

    def is_memory(self) -> bool:
        """True for any instruction that can fault on a data access."""
        return self.op in MEMORY_OPS

    def written_reg(self) -> tuple[str, int] | None:
        """The (bank, index) this instruction writes, or ``None``.

        The fault injector flips a bit here ("destination register").
        ``sp`` updates from push/pop/call/ret are architectural side
        effects, not destinations, and are excluded -- except POP/FPOP
        whose data destination is ``rd``.
        """
        op = self.op
        if op in _INT_OPS_WRITING_RD:
            return ("r", self.rd)
        if op in _FP_OPS_WRITING_FD:
            return ("f", self.rd)
        return None

    def read_regs(self) -> list[tuple[str, int]]:
        """Registers read by this instruction, in operand order.

        Implicit ``sp`` reads by push/pop/call/ret are included: faults in
        the stack pointer are a scenario the paper's Heuristic II targets.
        """
        op = self.op
        regs: list[tuple[str, int]] = []
        if op in (Op.MOV, Op.NEG, Op.NOT, Op.ITOF, Op.OUT):
            regs.append(("r", self.ra))
        elif op in (Op.FMOV, Op.FNEG, Op.FSQRT, Op.FABS, Op.FOUT):
            regs.append(("f", self.ra))
        elif op in (Op.LD, Op.FLD):
            regs.append(("r", self.ra))
        elif op in (Op.LDX, Op.FLDX):
            regs.extend((("r", self.ra), ("r", self.rb)))
        elif op is Op.ST:
            regs.extend((("r", self.ra), ("r", self.rd)))
        elif op is Op.STX:
            regs.extend((("r", self.ra), ("r", self.rb), ("r", self.rd)))
        elif op is Op.FST:
            regs.extend((("r", self.ra), ("f", self.rd)))
        elif op is Op.FSTX:
            regs.extend((("r", self.ra), ("r", self.rb), ("f", self.rd)))
        elif op is Op.PUSH:
            regs.extend((("r", self.ra), ("r", SP)))
        elif op is Op.FPUSH:
            regs.extend((("f", self.ra), ("r", SP)))
        elif op in (Op.POP, Op.FPOP, Op.RET):
            regs.append(("r", SP))
        elif op in (
            Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR, Op.XOR,
            Op.SHL, Op.SHR, Op.SEQ, Op.SNE, Op.SLT, Op.SLE,
        ):
            regs.extend((("r", self.ra), ("r", self.rb)))
        elif op in (
            Op.ADDI, Op.SUBI, Op.MULI, Op.ANDI, Op.ORI, Op.XORI,
            Op.SHLI, Op.SHRI,
        ):
            regs.append(("r", self.ra))
        elif op in (Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FMIN, Op.FMAX,
                    Op.FEQ, Op.FNE, Op.FLT, Op.FLE):
            regs.extend((("f", self.ra), ("f", self.rb)))
        elif op is Op.FTOI:
            regs.append(("f", self.ra))
        elif op in (Op.BEQZ, Op.BNEZ):
            regs.append(("r", self.ra))
        elif op is Op.CALL:
            regs.append(("r", SP))
        elif op is Op.HALT:
            regs.append(("r", 0))
        elif op is Op.SEND:
            regs.extend((("r", self.ra), ("r", self.rb)))
        elif op is Op.FSEND:
            regs.extend((("r", self.ra), ("f", self.rb)))
        elif op in (Op.RECV, Op.FRECV):
            regs.append(("r", self.ra))
        return regs

    def uses_frame_regs(self) -> bool:
        """True if the instruction reads ``sp`` or ``bp`` (Heuristic II scope)."""
        return any(bank == "r" and idx in (SP, BP) for bank, idx in self.read_regs())

    # -- formatting --------------------------------------------------------

    def text(self) -> str:
        """Assembly text for this instruction (parsable back)."""
        op = self.op
        n = op.name.lower()
        sym = f" <{self.sym}>" if self.sym else ""

        def off(imm) -> str:
            imm = int(imm)
            return f"- {-imm}" if imm < 0 else f"+ {imm}"
        if op is Op.NOP or op is Op.RET or op is Op.HALT or op is Op.ABORT:
            return n
        if op is Op.MOV:
            return f"mov {int_reg_name(self.rd)}, {int_reg_name(self.ra)}"
        if op is Op.MOVI:
            return f"movi {int_reg_name(self.rd)}, #{self.imm}{sym}"
        if op is Op.FMOV:
            return f"fmov {fp_reg_name(self.rd)}, {fp_reg_name(self.ra)}"
        if op is Op.FMOVI:
            return f"fmovi {fp_reg_name(self.rd)}, #{self.imm!r}"
        if op in (Op.LD, Op.FLD):
            d = int_reg_name(self.rd) if op is Op.LD else fp_reg_name(self.rd)
            return f"{n} {d}, [{int_reg_name(self.ra)} {off(self.imm)}]{sym}"
        if op in (Op.ST, Op.FST):
            s = int_reg_name(self.rd) if op is Op.ST else fp_reg_name(self.rd)
            return f"{n} [{int_reg_name(self.ra)} {off(self.imm)}], {s}{sym}"
        if op in (Op.LDX, Op.FLDX):
            d = int_reg_name(self.rd) if op is Op.LDX else fp_reg_name(self.rd)
            return (
                f"{n} {d}, [{int_reg_name(self.ra)} + "
                f"{int_reg_name(self.rb)}*8 {off(self.imm)}]{sym}"
            )
        if op in (Op.STX, Op.FSTX):
            s = int_reg_name(self.rd) if op is Op.STX else fp_reg_name(self.rd)
            return (
                f"{n} [{int_reg_name(self.ra)} + "
                f"{int_reg_name(self.rb)}*8 {off(self.imm)}], {s}{sym}"
            )
        if op in (Op.PUSH, Op.OUT):
            return f"{n} {int_reg_name(self.ra)}"
        if op in (Op.FPUSH, Op.FOUT):
            return f"{n} {fp_reg_name(self.ra)}"
        if op in (Op.POP,):
            return f"pop {int_reg_name(self.rd)}"
        if op in (Op.FPOP,):
            return f"fpop {fp_reg_name(self.rd)}"
        if op in (Op.NEG, Op.NOT):
            return f"{n} {int_reg_name(self.rd)}, {int_reg_name(self.ra)}"
        if op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR,
                  Op.XOR, Op.SHL, Op.SHR, Op.SEQ, Op.SNE, Op.SLT, Op.SLE):
            return (
                f"{n} {int_reg_name(self.rd)}, {int_reg_name(self.ra)}, "
                f"{int_reg_name(self.rb)}"
            )
        if op in (Op.ADDI, Op.SUBI, Op.MULI, Op.ANDI, Op.ORI, Op.XORI,
                  Op.SHLI, Op.SHRI):
            return f"{n} {int_reg_name(self.rd)}, {int_reg_name(self.ra)}, #{self.imm}"
        if op in (Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FMIN, Op.FMAX):
            return (
                f"{n} {fp_reg_name(self.rd)}, {fp_reg_name(self.ra)}, "
                f"{fp_reg_name(self.rb)}"
            )
        if op in (Op.FEQ, Op.FNE, Op.FLT, Op.FLE):
            return (
                f"{n} {int_reg_name(self.rd)}, {fp_reg_name(self.ra)}, "
                f"{fp_reg_name(self.rb)}"
            )
        if op in (Op.FNEG, Op.FSQRT, Op.FABS):
            return f"{n} {fp_reg_name(self.rd)}, {fp_reg_name(self.ra)}"
        if op is Op.ITOF:
            return f"itof {fp_reg_name(self.rd)}, {int_reg_name(self.ra)}"
        if op is Op.FTOI:
            return f"ftoi {int_reg_name(self.rd)}, {fp_reg_name(self.ra)}"
        if op is Op.JMP or op is Op.CALL:
            return f"{n} {self.sym or self.imm}"
        if op in (Op.BEQZ, Op.BNEZ):
            return f"{n} {int_reg_name(self.ra)}, {self.sym or self.imm}"
        if op in (Op.RANK, Op.NRANKS):
            return f"{n} {int_reg_name(self.rd)}"
        if op is Op.SEND:
            return f"send {int_reg_name(self.ra)}, {int_reg_name(self.rb)}"
        if op is Op.FSEND:
            return f"fsend {int_reg_name(self.ra)}, {fp_reg_name(self.rb)}"
        if op is Op.RECV:
            return f"recv {int_reg_name(self.rd)}, {int_reg_name(self.ra)}"
        if op is Op.FRECV:
            return f"frecv {fp_reg_name(self.rd)}, {int_reg_name(self.ra)}"
        raise AssertionError(f"unformattable opcode {op!r}")

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text()
