"""Register file definition for the repro ISA.

The ISA models an x86-64-like register architecture at the level of detail
LetGo cares about: 16 64-bit integer registers including a stack pointer
``sp`` and a base (frame) pointer ``bp``, and 16 IEEE-754 double-precision
floating point registers.  LetGo's Heuristic II reasons specifically about
``sp``/``bp`` (the paper's ``rsp``/``rbp``), so those two have architectural
roles: ``push``/``pop``/``call``/``ret`` use ``sp`` implicitly and compiled
functions address locals through ``bp``.
"""

from __future__ import annotations

NUM_INT_REGS = 16
NUM_FP_REGS = 16

#: Architectural index of the frame (base) pointer, mirrors x86-64 ``rbp``.
BP = 14
#: Architectural index of the stack pointer, mirrors x86-64 ``rsp``.
SP = 15

#: Canonical integer-register names, index -> name.
INT_REG_NAMES: tuple[str, ...] = tuple(
    [f"r{i}" for i in range(NUM_INT_REGS - 2)] + ["bp", "sp"]
)
#: Canonical fp-register names, index -> name.
FP_REG_NAMES: tuple[str, ...] = tuple(f"f{i}" for i in range(NUM_FP_REGS))

_INT_NAME_TO_INDEX = {name: i for i, name in enumerate(INT_REG_NAMES)}
# Aliases accepted by the assembler (x86-ish spellings).
_INT_NAME_TO_INDEX["r14"] = BP
_INT_NAME_TO_INDEX["r15"] = SP
_FP_NAME_TO_INDEX = {name: i for i, name in enumerate(FP_REG_NAMES)}

#: Banks, used wherever a register must be identified bank-and-index.
INT_BANK = "r"
FP_BANK = "f"


def int_reg_index(name: str) -> int:
    """Resolve an integer register name (or alias) to its index.

    Raises :class:`KeyError` for unknown names.
    """
    return _INT_NAME_TO_INDEX[name.lower()]


def fp_reg_index(name: str) -> int:
    """Resolve a floating-point register name to its index."""
    return _FP_NAME_TO_INDEX[name.lower()]


def is_int_reg(name: str) -> bool:
    """True if *name* names an integer register (including aliases)."""
    return name.lower() in _INT_NAME_TO_INDEX


def is_fp_reg(name: str) -> bool:
    """True if *name* names a floating-point register."""
    return name.lower() in _FP_NAME_TO_INDEX


def int_reg_name(index: int) -> str:
    """Canonical name of integer register *index*."""
    return INT_REG_NAMES[index]


def fp_reg_name(index: int) -> str:
    """Canonical name of fp register *index*."""
    return FP_REG_NAMES[index]
