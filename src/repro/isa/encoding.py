"""Fixed-width binary encoding of program images.

Each instruction encodes to a 16-byte record::

    u8 opcode | u8 rd | u8 ra | u8 rb | 4 pad bytes | 8-byte immediate

The immediate is a signed 64-bit integer except for opcodes in
:data:`~repro.isa.instructions.FLOAT_IMM_OPS`, which carry an IEEE-754
double.  A full image is::

    magic "LGRI" | u16 version | u16 reserved | u32 n_instrs |
    n_instrs records | metadata (UTF-8 JSON: symbols, entry, data init)

The encoding exists so static analysis can operate on an image with no
in-memory objects around (the PIN-on-a-binary scenario); it is also the
canonical persistence format for compiled apps.
"""

from __future__ import annotations

import json
import struct

from repro.errors import EncodingError
from repro.isa.instructions import FLOAT_IMM_OPS, Instr, Op
from repro.isa.program import DataSymbol, Program

MAGIC = b"LGRI"
VERSION = 1

_REC_INT = struct.Struct("<BBBBxxxxq")
_REC_FLOAT = struct.Struct("<BBBBxxxxd")
_HEADER = struct.Struct("<4sHHI")


def encode_instr(ins: Instr) -> bytes:
    """Encode one instruction to its 16-byte record."""
    rec = _REC_FLOAT if ins.op in FLOAT_IMM_OPS else _REC_INT
    try:
        return rec.pack(int(ins.op), ins.rd, ins.ra, ins.rb, ins.imm)
    except (struct.error, ValueError) as exc:
        raise EncodingError(f"cannot encode {ins!r}: {exc}") from exc


def decode_instr(blob: bytes) -> Instr:
    """Decode one 16-byte record."""
    if len(blob) != 16:
        raise EncodingError(f"instruction record must be 16 bytes, got {len(blob)}")
    opcode = blob[0]
    try:
        op = Op(opcode)
    except ValueError:
        raise EncodingError(f"unknown opcode byte {opcode}") from None
    rec = _REC_FLOAT if op in FLOAT_IMM_OPS else _REC_INT
    _, rd, ra, rb, imm = rec.unpack(blob)
    return Instr(op, rd=rd, ra=ra, rb=rb, imm=imm)


def encode_program(program: Program) -> bytes:
    """Serialize a full image."""
    body = b"".join(encode_instr(i) for i in program.instrs)
    meta = {
        "entry": program.entry,
        "source_name": program.source_name,
        "functions": program.functions,
        "data_symbols": {
            name: [sym.addr, sym.cells]
            for name, sym in program.data_symbols.items()
        },
        "data_init": {str(addr): pattern for addr, pattern in program.data_init.items()},
        "syms": {
            str(pc): ins.sym
            for pc, ins in enumerate(program.instrs)
            if ins.sym is not None
        },
    }
    header = _HEADER.pack(MAGIC, VERSION, 0, len(program.instrs))
    return header + body + json.dumps(meta, sort_keys=True).encode("utf-8")


def decode_program(blob: bytes) -> Program:
    """Deserialize an image produced by :func:`encode_program`."""
    if len(blob) < _HEADER.size:
        raise EncodingError("image too short for header")
    magic, version, _, n = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise EncodingError(f"bad magic {magic!r}")
    if version != VERSION:
        raise EncodingError(f"unsupported image version {version}")
    offset = _HEADER.size
    end = offset + 16 * n
    if len(blob) < end:
        raise EncodingError("image truncated in instruction section")
    instrs = [decode_instr(blob[offset + 16 * i : offset + 16 * (i + 1)]) for i in range(n)]
    try:
        meta = json.loads(blob[end:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise EncodingError(f"bad metadata section: {exc}") from exc
    syms = meta.get("syms", {})
    if syms:
        instrs = [
            Instr(i.op, rd=i.rd, ra=i.ra, rb=i.rb, imm=i.imm, sym=syms.get(str(pc)))
            for pc, i in enumerate(instrs)
        ]
    return Program(
        instrs=instrs,
        functions={k: int(v) for k, v in meta["functions"].items()},
        data_symbols={
            name: DataSymbol(name=name, addr=addr, cells=cells)
            for name, (addr, cells) in meta["data_symbols"].items()
        },
        data_init={int(a): int(p) for a, p in meta["data_init"].items()},
        entry=meta["entry"],
        source_name=meta.get("source_name", ""),
    )


__all__ = [
    "encode_instr",
    "decode_instr",
    "encode_program",
    "decode_program",
    "MAGIC",
    "VERSION",
]
