"""Fault model: single bit flips in the destination register (paper 5.1/5.4).

* Soft errors in computational units (ALUs, pipeline latches, register
  file); caches/DRAM assumed ECC-protected and out of scope.
* Single bit flip, at most one fault per run.
* Every dynamic instruction is equally likely to be hit; the flip lands in
  the register *written* by the selected instruction, **after** it
  completes.  Instructions that write no register (stores, branches) flip
  one of their source registers instead -- corrupting the produced
  value/address the same way a latch fault would; ineligible instructions
  (no register operands at all) defer to the next eligible one.

Plans are fully deterministic: the random register choice for multi-source
instructions is pre-drawn into the plan, so the same plan replayed under
different LetGo configurations experiences the identical fault (paired
comparisons for Figure 5).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.isa.instructions import Instr
from repro.isa.layout import MASK64
from repro.machine.cpu import CPU

_PACK_D = struct.Struct("<d")
_PACK_Q = struct.Struct("<Q")


@dataclass(frozen=True)
class InjectionPlan:
    """One planned fault.

    ``dyn_index`` is the 1-based ordinal of the dynamic instruction whose
    result is corrupted; ``bit`` the flipped bit (0..63); ``reg_choice`` a
    pre-drawn uniform value used to pick among source registers when the
    instruction writes none.  ``extra_bits`` extends the model to
    multi-bit upsets (the paper's Section-8 discussion notes ~30% of
    uncorrectable memory errors are multi-bit); all bits land in the same
    register on the same instruction.
    """

    dyn_index: int
    bit: int
    reg_choice: float
    extra_bits: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.dyn_index < 1:
            raise ValueError("dyn_index is 1-based")
        if not 0 <= self.bit < 64:
            raise ValueError("bit must be in [0, 64)")
        if not 0.0 <= self.reg_choice < 1.0:
            raise ValueError("reg_choice must be in [0, 1)")
        if any(not 0 <= b < 64 for b in self.extra_bits):
            raise ValueError("extra bits must be in [0, 64)")
        all_bits = (self.bit, *self.extra_bits)
        if len(set(all_bits)) != len(all_bits):
            raise ValueError("flip bits must be distinct")

    @property
    def bits(self) -> tuple[int, ...]:
        """All bits this fault flips."""
        return (self.bit, *self.extra_bits)


def plan_injections(
    rng: np.random.Generator, total_instret: int, n: int, n_bits: int = 1
) -> list[InjectionPlan]:
    """Draw *n* independent plans over a run of *total_instret* instructions.

    ``n_bits`` > 1 draws multi-bit upsets: that many distinct bits of the
    same target register flip together.
    """
    if total_instret < 1:
        raise ValueError("profiled run has no instructions")
    if not 1 <= n_bits <= 64:
        raise ValueError("n_bits must be in [1, 64]")
    indices = rng.integers(1, total_instret + 1, size=n)
    choices = rng.random(size=n)
    plans = []
    for i, c in zip(indices, choices):
        bits = rng.choice(64, size=n_bits, replace=False)
        plans.append(
            InjectionPlan(
                dyn_index=int(i),
                bit=int(bits[0]),
                reg_choice=float(c),
                extra_bits=tuple(int(b) for b in bits[1:]),
            )
        )
    return plans


def select_target(instr: Instr, reg_choice: float) -> tuple[str, int] | None:
    """The (bank, index) register the fault lands in for *instr*.

    Written register if any; otherwise one of the read registers picked by
    ``reg_choice``; ``None`` if the instruction touches no registers.
    """
    written = instr.written_reg()
    if written is not None:
        return written
    reads = instr.read_regs()
    if not reads:
        return None
    return reads[min(int(reg_choice * len(reads)), len(reads) - 1)]


def flip_bit(cpu: CPU, bank: str, index: int, bit: int) -> None:
    """Flip one bit of a live register, bit-exactly.

    Integer registers flip in two's-complement representation; fp
    registers flip in their IEEE-754 binary64 pattern (so exponent/sign
    bits can produce huge values, NaNs, or denormals, as in hardware).
    """
    if bank == "f":
        pattern = _PACK_Q.unpack(_PACK_D.pack(cpu.fregs[index]))[0]
        pattern ^= 1 << bit
        cpu.fregs[index] = _PACK_D.unpack(_PACK_Q.pack(pattern))[0]
    else:
        pattern = cpu.iregs[index] & MASK64
        pattern ^= 1 << bit
        cpu.iregs[index] = pattern - (1 << 64) if pattern >= (1 << 63) else pattern


__all__ = ["InjectionPlan", "plan_injections", "select_target", "flip_bit"]
