"""Campaign engine: snapshot-ladder prefix reuse + multiprocess fan-out.

The naive campaign loop replays the golden prefix from instruction 0 for
every injection and runs the N independent injections strictly serially:
O(N·L) interpreted instructions on one core.  Both costs are accidental --
the paper's methodology is one profiling pass followed by N *independent*
runs -- and this engine removes them with two composable optimizations:

**Snapshot ladder.**  One extra golden run per app drops a
:class:`~repro.checkpoint.snapshot.Snapshot` every K retired instructions
(cached on the app next to its profile).  Each injection restores the
nearest rung at or below its injection point and fast-forwards only the
remainder, turning O(N·L) prefix replay into O(L + N·K).

**Multiprocess fan-out.**  Plans are split into contiguous shards, each
shard sorted by injection depth for ladder locality, and executed on a
``ProcessPoolExecutor``.  Nothing un-picklable crosses the process
boundary: workers re-derive the app (registry name or import path) and
rebuild the ladder from (source, interval) -- on fork-based platforms the
parent's caches are inherited, so this is free.  Shard results are merged
in submission order via :meth:`CampaignResult.merge`, which makes the
parallel output *identical* to the serial output for the same seed --
counts, per-plan outcomes, and result ordering -- preserving the
paired-campaign property every Figure-5/Table-3 comparison relies on.

Throughput observability comes back in an :class:`EngineStats` record:
injections/sec, ladder restore-distance, and per-worker utilization.
"""

from __future__ import annotations

import importlib
import os
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.apps.base import MiniApp
from repro.checkpoint.snapshot import SnapshotLadder, restore
from repro.core.config import LetGoConfig
from repro.faultinject.campaign import CampaignResult
from repro.faultinject.fault_model import InjectionPlan, plan_injections
from repro.faultinject.injector import InjectionResult, run_injection
from repro.faultinject.outcomes import Outcome
from repro.machine.debugger import DebugSession

#: ``ladder_interval`` value that disables the ladder entirely.
NO_LADDER = 0


@dataclass(frozen=True)
class EngineStats:
    """Throughput observability for one engine campaign."""

    n: int
    jobs: int                      # worker processes actually used (1 = in-process)
    elapsed_seconds: float
    ladder_interval: int           # 0 when the ladder was disabled
    ladder_rungs: int
    restored: int                  # injections launched from a ladder rung
    cold_starts: int               # injections replayed from instruction 0
    fast_forward_steps: int        # golden-prefix instructions actually replayed
    per_worker_injections: tuple[int, ...]
    per_worker_seconds: tuple[float, ...]

    @property
    def injections_per_sec(self) -> float:
        """End-to-end campaign throughput."""
        return self.n / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    @property
    def mean_fast_forward(self) -> float:
        """Mean golden-prefix instructions replayed per injection."""
        return self.fast_forward_steps / self.n if self.n else 0.0

    @property
    def utilization(self) -> float:
        """Mean fraction of the wall-clock each worker spent injecting."""
        if not self.per_worker_seconds or self.elapsed_seconds <= 0:
            return 0.0
        busy = sum(self.per_worker_seconds)
        return busy / (len(self.per_worker_seconds) * self.elapsed_seconds)

    def describe(self) -> str:
        """One-line human-readable summary."""
        ladder = (
            f"ladder K={self.ladder_interval} ({self.ladder_rungs} rungs, "
            f"mean ff {self.mean_fast_forward:,.0f})"
            if self.ladder_interval
            else "ladder off"
        )
        return (
            f"{self.n} injections in {self.elapsed_seconds:.2f}s "
            f"({self.injections_per_sec:.1f}/s) | jobs={self.jobs} "
            f"util={self.utilization:.0%} | {ladder}"
        )


# -- golden-path session seeding -------------------------------------------


def _seed_session(
    app: MiniApp, plan: InjectionPlan, ladder: SnapshotLadder | None
) -> tuple[DebugSession, bool, int]:
    """A session positioned for *plan*: nearest rung, or a cold load.

    Returns (session, restored_from_rung, golden_steps_still_to_replay).
    """
    target = plan.dyn_index - 1
    snap = ladder.nearest(target) if ladder is not None else None
    if snap is None:
        return DebugSession(app.load()), False, target
    return DebugSession(restore(app.program, snap)), True, target - snap.instret


def _run_shard(
    app: MiniApp,
    ladder: SnapshotLadder | None,
    config: LetGoConfig | None,
    batch: list[tuple[int, InjectionPlan]],
) -> tuple[list[tuple[int, InjectionResult]], tuple[int, int, int, float]]:
    """Run one shard of (index, plan) pairs.

    Plans execute in injection-depth order (ladder/cache locality) but the
    returned pairs are in index order, so the caller's concatenation of
    contiguous shards reproduces the serial result order exactly.
    Shard stats: (restored, cold_starts, fast_forward_steps, seconds).
    """
    t0 = perf_counter()
    restored = cold = fast_forward = 0
    out: dict[int, InjectionResult] = {}
    for idx, plan in sorted(batch, key=lambda pair: pair[1].dyn_index):
        session, from_rung, remaining = _seed_session(app, plan, ladder)
        out[idx] = run_injection(app, plan, config, session=session)
        restored += from_rung
        cold += not from_rung
        fast_forward += remaining
    pairs = [(idx, out[idx]) for idx in sorted(out)]
    return pairs, (restored, cold, fast_forward, perf_counter() - t0)


# -- worker protocol --------------------------------------------------------
#
# Workers receive only picklable primitives: an app *spec* (registry name
# or module:qualname import path), the ladder interval, and the LetGo
# config (a frozen dataclass).  App, program image and ladder are
# re-derived worker-side through the same module caches the parent uses.

_WORKER: dict = {}


def _app_from_spec(spec: tuple) -> MiniApp:
    """Rebuild an app from its worker spec."""
    if spec[0] == "registry":
        from repro.apps.registry import make_app

        return make_app(spec[1])
    _, module, qualname = spec
    obj = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj()


def _app_spec(app: MiniApp) -> tuple | None:
    """A picklable spec a worker can rebuild *app* from (None: not possible)."""
    try:
        from repro.apps.registry import make_app

        if type(make_app(app.name)) is type(app):
            return ("registry", app.name)
    except KeyError:
        pass
    cls = type(app)
    if "<locals>" in cls.__qualname__ or cls.__module__ == "__main__":
        return None
    spec = ("import", cls.__module__, cls.__qualname__)
    try:
        rebuilt = _app_from_spec(spec)
    except Exception:
        return None
    if not isinstance(rebuilt, MiniApp) or rebuilt.source != app.source:
        return None
    return spec


def _worker_init(
    spec: tuple, interval: int | None, config: LetGoConfig | None
) -> None:
    app = _app_from_spec(spec)
    _WORKER["app"] = app
    _WORKER["ladder"] = app.ladder(interval) if interval != NO_LADDER else None
    _WORKER["config"] = config


def _worker_run(batch: list[tuple[int, InjectionPlan]]):
    return _run_shard(_WORKER["app"], _WORKER["ladder"], _WORKER["config"], batch)


def _split(items: list, k: int) -> list[list]:
    """Split into *k* contiguous, nearly-even, non-empty chunks."""
    k = max(1, min(k, len(items)))
    base, extra = divmod(len(items), k)
    chunks, lo = [], 0
    for i in range(k):
        hi = lo + base + (1 if i < extra else 0)
        chunks.append(items[lo:hi])
        lo = hi
    return chunks


# -- the engine -------------------------------------------------------------


class CampaignEngine:
    """Runs injection campaigns with prefix reuse and process fan-out.

    ``jobs``: worker processes (1 = in-process; None = ``os.cpu_count()``).
    ``ladder_interval``: rung spacing in retired instructions (None = the
    app's :attr:`~repro.apps.base.MiniApp.default_ladder_interval`;
    :data:`NO_LADDER` / 0 = replay every prefix from instruction 0).
    ``keep_results``: keep per-run :class:`InjectionResult` records on the
    campaign (memory-unsafe at large N, hence off by default).

    For the same (app, n, seed, config, plans) every (jobs,
    ladder_interval) combination produces an identical
    :class:`CampaignResult`; the engine only changes how fast it arrives.
    The last run's :class:`EngineStats` is kept on :attr:`stats`.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        ladder_interval: int | None = None,
        keep_results: bool = False,
    ):
        self.jobs = (os.cpu_count() or 1) if jobs is None else max(1, jobs)
        self.ladder_interval = ladder_interval
        self.keep_results = keep_results
        self.stats: EngineStats | None = None

    def run(
        self,
        app: MiniApp,
        n: int,
        seed: int,
        config: LetGoConfig | None = None,
        plans: list[InjectionPlan] | None = None,
    ) -> CampaignResult:
        """Run *n* injections on *app* under *config* (None = baseline)."""
        if plans is None:
            rng = np.random.default_rng(seed)
            plans = plan_injections(rng, app.golden.instret, n)
        elif len(plans) != n:
            raise ValueError("len(plans) must equal n")
        t0 = perf_counter()

        use_ladder = self.ladder_interval != NO_LADDER
        # Building (or fetching) the ladder in the parent warms the
        # per-source cache, which fork-based workers inherit for free.
        ladder = app.ladder(self.ladder_interval) if use_ladder else None

        jobs = min(self.jobs, n) if n else 1
        spec = _app_spec(app) if jobs > 1 else None
        if jobs > 1 and spec is None:
            jobs = 1  # un-rederivable app (e.g. a local class): stay in-process

        indexed = list(enumerate(plans))
        if jobs == 1:
            shard_outputs = [_run_shard(app, ladder, config, indexed)]
        else:
            chunks = _split(indexed, jobs)
            jobs = len(chunks)
            interval = ladder.interval if ladder is not None else NO_LADDER
            with ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_worker_init,
                initargs=(spec, interval, config),
            ) as pool:
                futures = [pool.submit(_worker_run, chunk) for chunk in chunks]
                shard_outputs = [f.result() for f in futures]

        config_name = config.name if config is not None else "baseline"
        shards = []
        for pairs, _ in shard_outputs:
            counts: Counter[Outcome] = Counter()
            for _, result in pairs:
                counts[result.outcome] += 1
            shards.append(
                CampaignResult(
                    app_name=app.name,
                    config_name=config_name,
                    n=len(pairs),
                    counts=dict(counts),
                    results=(
                        [result for _, result in pairs]
                        if self.keep_results
                        else []
                    ),
                )
            )
        merged = CampaignResult.merge(shards)

        elapsed = perf_counter() - t0
        self.stats = EngineStats(
            n=n,
            jobs=jobs,
            elapsed_seconds=elapsed,
            ladder_interval=ladder.interval if ladder is not None else NO_LADDER,
            ladder_rungs=len(ladder) if ladder is not None else 0,
            restored=sum(s[0] for _, s in shard_outputs),
            cold_starts=sum(s[1] for _, s in shard_outputs),
            fast_forward_steps=sum(s[2] for _, s in shard_outputs),
            per_worker_injections=tuple(len(pairs) for pairs, _ in shard_outputs),
            per_worker_seconds=tuple(s[3] for _, s in shard_outputs),
        )
        return merged


def run_campaign_engine(
    app: MiniApp,
    n: int,
    seed: int,
    config: LetGoConfig | None = None,
    *,
    jobs: int | None = 1,
    ladder_interval: int | None = None,
    keep_results: bool = False,
    plans: list[InjectionPlan] | None = None,
) -> CampaignResult:
    """One-shot convenience wrapper around :class:`CampaignEngine`."""
    engine = CampaignEngine(
        jobs=jobs, ladder_interval=ladder_interval, keep_results=keep_results
    )
    return engine.run(app, n, seed, config, plans=plans)


__all__ = [
    "CampaignEngine",
    "EngineStats",
    "run_campaign_engine",
    "NO_LADDER",
]
