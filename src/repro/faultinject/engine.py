"""Campaign engine: prefix reuse, process fan-out, and failure survival.

The naive campaign loop replays the golden prefix from instruction 0 for
every injection and runs the N independent injections strictly serially:
O(N·L) interpreted instructions on one core.  Both costs are accidental --
the paper's methodology is one profiling pass followed by N *independent*
runs -- and this engine removes them with two composable optimizations:

**Snapshot ladder.**  One extra golden run per app drops a
:class:`~repro.checkpoint.snapshot.Snapshot` every K retired instructions
(cached on the app next to its profile).  Each injection restores the
nearest rung at or below its injection point and fast-forwards only the
remainder, turning O(N·L) prefix replay into O(L + N·K).

**Multiprocess fan-out.**  Plans are split into contiguous shards, each
shard sorted by injection depth for ladder locality, and executed on a
``ProcessPoolExecutor``.  Nothing un-picklable crosses the process
boundary: workers re-derive the app (registry name or import path) and
rebuild the ladder from (source, interval) -- on fork-based platforms the
parent's caches are inherited, so this is free.  Shard results are merged
in plan order, which makes the parallel output *identical* to the serial
output for the same seed -- counts, per-plan outcomes, and result
ordering -- preserving the paired-campaign property every
Figure-5/Table-3 comparison relies on.

On top of both sits the **resilience layer**, applying the paper's own
checkpoint/restart discipline to the campaign runner itself:

* a write-ahead **campaign journal**
  (:class:`~repro.faultinject.journal.CampaignJournal`) durably records
  each completed shard, and ``resume=`` skips journaled plans and merges
  old + new shards into a result bit-identical to an uninterrupted run;
* a **supervisor** retries failed shards with bounded exponential
  backoff, rebuilds a broken process pool, bisects a persistently
  failing shard down to the single **poison plan** and quarantines it
  (recorded in :class:`EngineStats` and the journal, never silently
  dropped), and degrades to in-process serial execution when
  multiprocessing is unavailable or keeps breaking;
* a per-run **wall-clock watchdog** (``wall_clock_limit``) complements
  the instruction-budget ``HANG`` detection so a pathological repaired
  run cannot stall a worker forever.

Throughput and resilience observability come back in an
:class:`EngineStats` record: injections/sec, ladder restore-distance,
per-shard utilization, retries, pool rebuilds, and quarantined plans.
"""

from __future__ import annotations

import importlib
import math
import os
from collections import Counter, deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter, sleep

import numpy as np

from repro.apps.base import MiniApp
from repro.checkpoint.snapshot import SnapshotLadder, restore, restore_into, snapshot
from repro.core.config import LetGoConfig
from repro.errors import CampaignAbortedError
from repro.faultinject.campaign import (
    _UNSET,
    CampaignConfig,
    CampaignResult,
    _Unset,
    _with_legacy,
)
from repro.faultinject.fault_model import InjectionPlan, plan_injections
from repro.faultinject.injector import InjectionResult, run_injection
from repro.faultinject.journal import CampaignJournal, JournalHeader
from repro.machine.debugger import DebugSession
from repro.telemetry import NULL_TRACER, TelemetryReport, Tracer
from repro.telemetry.export import write_chrome_trace, write_jsonl

#: ``ladder_interval`` value that disables the ladder entirely.
NO_LADDER = 0


@dataclass(frozen=True)
class EngineStats:
    """Throughput + resilience observability for one engine campaign."""

    n: int
    jobs: int                      # worker processes actually used (1 = in-process)
    elapsed_seconds: float
    ladder_interval: int           # 0 when the ladder was disabled
    ladder_rungs: int
    restored: int                  # injections launched from a ladder rung
    cold_starts: int               # injections replayed from instruction 0
    fast_forward_steps: int        # golden-prefix instructions actually replayed
    per_worker_injections: tuple[int, ...]   # per committed shard
    per_worker_seconds: tuple[float, ...]    # per committed shard
    retries: int = 0               # shard re-executions after failures
    pool_rebuilds: int = 0         # broken process pools replaced
    degraded_serial: bool = False  # fell back to in-process execution
    resumed: int = 0               # plans skipped: already journaled
    timeouts: int = 0              # runs stopped by the wall-clock watchdog
    quarantined: tuple[int, ...] = ()  # poison-plan indices, never re-run

    @property
    def executed(self) -> int:
        """Injections actually run this invocation."""
        return self.restored + self.cold_starts

    @property
    def injections_per_sec(self) -> float:
        """End-to-end campaign throughput."""
        return self.n / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    @property
    def mean_fast_forward(self) -> float:
        """Mean golden-prefix instructions replayed per executed injection."""
        return self.fast_forward_steps / self.executed if self.executed else 0.0

    @property
    def utilization(self) -> float:
        """Mean fraction of the wall-clock each worker spent injecting."""
        if not self.per_worker_seconds or self.elapsed_seconds <= 0:
            return 0.0
        busy = sum(self.per_worker_seconds)
        return busy / (len(self.per_worker_seconds) * self.elapsed_seconds)

    def describe(self) -> str:
        """One-line human-readable summary."""
        ladder = (
            f"ladder K={self.ladder_interval} ({self.ladder_rungs} rungs, "
            f"mean ff {self.mean_fast_forward:,.0f})"
            if self.ladder_interval
            else "ladder off"
        )
        line = (
            f"{self.n} injections in {self.elapsed_seconds:.2f}s "
            f"({self.injections_per_sec:.1f}/s) | jobs={self.jobs} "
            f"util={self.utilization:.0%} | {ladder}"
        )
        extras = []
        if self.resumed:
            extras.append(f"resumed={self.resumed}")
        if self.retries:
            extras.append(f"retries={self.retries}")
        if self.pool_rebuilds:
            extras.append(f"pool rebuilds={self.pool_rebuilds}")
        if self.degraded_serial:
            extras.append("serial fallback")
        if self.timeouts:
            extras.append(f"timeouts={self.timeouts}")
        if self.quarantined:
            extras.append(f"quarantined={list(self.quarantined)}")
        if extras:
            line += " | " + " ".join(extras)
        return line


# -- golden-path session seeding -------------------------------------------


def _seed_session(
    app: MiniApp,
    plan: InjectionPlan,
    ladder: SnapshotLadder | None,
    backend: str | None = None,
) -> tuple[DebugSession, bool, int]:
    """A session positioned for *plan*: nearest rung, or a cold load.

    Returns (session, restored_from_rung, golden_steps_still_to_replay).
    """
    target = plan.dyn_index - 1
    snap = ladder.nearest(target) if ladder is not None else None
    if snap is None:
        return DebugSession(app.load(backend)), False, target
    return (
        DebugSession(restore(app.program, snap, backend=backend)),
        True,
        target - snap.instret,
    )


def _run_shard(
    app: MiniApp,
    ladder: SnapshotLadder | None,
    config: LetGoConfig | None,
    batch: list[tuple[int, InjectionPlan]],
    wall_clock_limit: float | None = None,
    backend: str | None = None,
    telemetry: bool = False,
    probe_interval: int = 0,
) -> tuple[
    list[tuple[int, InjectionResult]], tuple[int, int, int, float], dict | None
]:
    """Run one shard of (index, plan) pairs.

    Plans execute in injection-depth order (ladder/cache locality) but the
    returned pairs are in index order, so reassembling shards by plan
    index reproduces the serial result order exactly.
    Shard stats: (restored, cold_starts, fast_forward_steps, seconds).

    One *host process* serves the whole shard: every plan restores its
    launch state (ladder rung, or a pristine instret-0 snapshot) into the
    same process, so segment mapping, CPU construction and -- on the
    compiled backend -- closure-table compilation are paid once per shard
    rather than once per injection.

    With ``telemetry`` a leaf :class:`~repro.telemetry.Tracer` records the
    shard's phase spans and counters; its picklable export is the third
    return element (None when disabled), absorbed by the supervisor.  The
    leaf is created here -- identically for in-process and pooled shards
    -- so the merged stream is independent of *where* the shard ran.
    """
    t0 = perf_counter()
    if telemetry:
        tracer = Tracer(
            tid=f"shard-{min(idx for idx, _ in batch):05d}",
            probe_interval=probe_interval,
        )
        tracer.instant("worker-start", pid=os.getpid(), plans=len(batch))
    else:
        tracer = NULL_TRACER
    restored = cold = fast_forward = 0
    out: dict[int, InjectionResult] = {}
    with tracer.span("shard"):
        host = app.load(backend)
        pristine = snapshot(host)
        for idx, plan in sorted(batch, key=lambda pair: pair[1].dyn_index):
            target = plan.dyn_index - 1
            snap = ladder.nearest(target) if ladder is not None else None
            with tracer.span("restore"):
                restore_into(host, pristine if snap is None else snap)
            if snap is None:
                cold += 1
                fast_forward += target
                tracer.count("cold-start")
            else:
                restored += 1
                fast_forward += target - snap.instret
                tracer.count("restore")
            out[idx] = run_injection(
                app,
                plan,
                config,
                session=DebugSession(host),
                wall_clock_limit=wall_clock_limit,
                tracer=tracer,
            )
    pairs = [(idx, out[idx]) for idx in sorted(out)]
    payload = tracer.export() if telemetry else None
    return pairs, (restored, cold, fast_forward, perf_counter() - t0), payload


# -- worker protocol --------------------------------------------------------
#
# Workers receive only picklable primitives: an app *spec* (registry name
# or module:qualname import path), the ladder interval, the LetGo config
# (a frozen dataclass), and the wall-clock limit.  App, program image and
# ladder are re-derived worker-side through the same module caches the
# parent uses.

_WORKER: dict = {}


def _app_from_spec(spec: tuple) -> MiniApp:
    """Rebuild an app from its worker spec."""
    if spec[0] == "registry":
        from repro.apps.registry import make_app

        return make_app(spec[1])
    _, module, qualname = spec
    obj = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj()


def _app_spec(app: MiniApp) -> tuple | None:
    """A picklable spec a worker can rebuild *app* from (None: not possible)."""
    try:
        from repro.apps.registry import make_app

        if type(make_app(app.name)) is type(app):
            return ("registry", app.name)
    except KeyError:
        pass
    cls = type(app)
    if "<locals>" in cls.__qualname__ or cls.__module__ == "__main__":
        return None
    spec = ("import", cls.__module__, cls.__qualname__)
    try:
        rebuilt = _app_from_spec(spec)
    except Exception:
        return None
    if not isinstance(rebuilt, MiniApp) or rebuilt.source != app.source:
        return None
    return spec


def _worker_init(
    spec: tuple,
    interval: int | None,
    config: LetGoConfig | None,
    wall_clock_limit: float | None = None,
    backend: str | None = None,
    telemetry: bool = False,
    probe_interval: int = 0,
) -> None:
    app = _app_from_spec(spec)
    _WORKER["app"] = app
    _WORKER["ladder"] = app.ladder(interval) if interval != NO_LADDER else None
    _WORKER["config"] = config
    _WORKER["wall_clock_limit"] = wall_clock_limit
    _WORKER["backend"] = backend
    _WORKER["telemetry"] = telemetry
    _WORKER["probe_interval"] = probe_interval


def _worker_run(batch: list[tuple[int, InjectionPlan]]):
    return _run_shard(
        _WORKER["app"],
        _WORKER["ladder"],
        _WORKER["config"],
        batch,
        _WORKER.get("wall_clock_limit"),
        _WORKER.get("backend"),
        _WORKER.get("telemetry", False),
        _WORKER.get("probe_interval", 0),
    )


def _split(items: list, k: int) -> list[list]:
    """Split into *k* contiguous, nearly-even, non-empty chunks."""
    k = max(1, min(k, len(items)))
    base, extra = divmod(len(items), k)
    chunks, lo = [], 0
    for i in range(k):
        hi = lo + base + (1 if i < extra else 0)
        chunks.append(items[lo:hi])
        lo = hi
    return chunks


# -- the supervisor ---------------------------------------------------------


@dataclass
class _Supervisor:
    """Drives shards to completion through failures.

    Policy ladder, applied per shard: retry with bounded exponential
    backoff -> bisect a still-failing shard to isolate the poison plan ->
    quarantine the single plan that keeps failing.  Pool breakage
    (SIGKILLed/OOM-killed workers) rebuilds the executor up to
    ``max_pool_rebuilds`` times, then either degrades to in-process serial
    execution or -- with ``serial_fallback`` off -- aborts with
    :class:`~repro.errors.CampaignAbortedError` naming the journal.
    Every completed shard is journaled *before* its results are merged.
    """

    engine: "CampaignEngine"
    app: MiniApp
    ladder: SnapshotLadder | None
    config: LetGoConfig | None
    spec: tuple | None
    jobs: int
    journal: CampaignJournal | None

    pairs: dict[int, InjectionResult] = field(default_factory=dict)
    shard_sizes: list[int] = field(default_factory=list)
    shard_stats: list[tuple[int, int, int, float]] = field(default_factory=list)
    attempts: dict[tuple[int, ...], int] = field(default_factory=dict)
    quarantined: list[int] = field(default_factory=list)
    retries: int = 0
    pool_rebuilds: int = 0
    degraded: bool = False
    timeouts: int = 0
    tracer: object = NULL_TRACER      # parent-side merged event stream
    telemetry: bool = False           # shards create leaf tracers
    probe_interval: int = 0
    total: int = 0                    # campaign n, for progress reporting
    done_base: int = 0                # plans settled before this invocation

    def run(self, shards: list[list[tuple[int, InjectionPlan]]]) -> None:
        self.queue: deque = deque(shard for shard in shards if shard)
        if self.jobs > 1:
            self._run_pool()
        else:
            self._run_serial()

    # -- serial ------------------------------------------------------------

    def _run_serial(self) -> None:
        while self.queue:
            self.tracer.gauge("queue-depth", len(self.queue))
            shard = self.queue.popleft()
            try:
                pairs, stat, payload = _run_shard(
                    self.app,
                    self.ladder,
                    self.config,
                    shard,
                    self.engine.wall_clock_limit,
                    self.engine.backend,
                    self.telemetry,
                    self.probe_interval,
                )
            except Exception as exc:
                self._failure(shard, exc)
            else:
                self._commit(pairs, stat, payload)

    # -- pool --------------------------------------------------------------

    def _make_pool(self) -> ProcessPoolExecutor | None:
        interval = (
            self.ladder.interval if self.ladder is not None else NO_LADDER
        )
        try:
            return ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_worker_init,
                initargs=(
                    self.spec,
                    interval,
                    self.config,
                    self.engine.wall_clock_limit,
                    self.engine.backend,
                    self.telemetry,
                    self.probe_interval,
                ),
            )
        except Exception:
            return None

    def _run_pool(self) -> None:
        pool = self._make_pool()
        if pool is None:
            self._degrade()
            return
        try:
            while self.queue:
                self.tracer.gauge("queue-depth", len(self.queue))
                batch = list(self.queue)
                self.queue.clear()
                futures = {}
                broken = False
                for shard in batch:
                    if broken:
                        self.queue.append(shard)
                        continue
                    try:
                        futures[pool.submit(_worker_run, shard)] = shard
                    except BrokenExecutor:
                        broken = True
                        self.queue.append(shard)
                for future in as_completed(futures):
                    shard = futures[future]
                    try:
                        pairs, stat, payload = future.result()
                    except BrokenExecutor:
                        broken = True
                        self.queue.append(shard)
                    except Exception as exc:
                        self._failure(shard, exc)
                    else:
                        self._commit(pairs, stat, payload)
                if broken:
                    pool.shutdown(wait=False, cancel_futures=True)
                    self.pool_rebuilds += 1
                    self.tracer.count("pool-rebuild")
                    self.tracer.instant("pool-rebuild", n=self.pool_rebuilds)
                    if self.pool_rebuilds > self.engine.max_pool_rebuilds:
                        if not self.engine.serial_fallback:
                            raise CampaignAbortedError(
                                f"worker pool broke "
                                f"{self.pool_rebuilds} times; giving up",
                                journal=(
                                    self.journal.path if self.journal else None
                                ),
                            )
                        pool = None
                        self._degrade()
                        return
                    pool = self._make_pool()
                    if pool is None:
                        self._degrade()
                        return
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _degrade(self) -> None:
        """Multiprocessing unavailable or unreliable: finish in-process."""
        self.degraded = True
        self.tracer.count("serial-degrade")
        self.tracer.instant("serial-degrade")
        self._run_serial()

    # -- shared bookkeeping ------------------------------------------------

    def _commit(
        self,
        pairs: list[tuple[int, InjectionResult]],
        stat: tuple[int, int, int, float],
        payload: dict | None = None,
    ) -> None:
        if payload is not None:
            # Re-base the shard's events to where the shard actually ran
            # on the parent timeline: it finished "now" and lasted
            # stat[3] seconds.
            self.tracer.absorb(
                payload, offset=max(0.0, self.tracer.now() - stat[3])
            )
        # Journal first: the shard is durable before its results count.
        if self.journal is not None:
            self.journal.record_shard(
                [idx for idx, _ in pairs], [result for _, result in pairs]
            )
        self.pairs.update(pairs)
        self.shard_sizes.append(len(pairs))
        self.shard_stats.append(stat)
        self.timeouts += sum(1 for _, result in pairs if result.timed_out)
        on_progress = self.engine.on_progress
        if on_progress is not None:
            on_progress(self.done_base + len(self.pairs), self.total)

    def _failure(self, shard: list[tuple[int, InjectionPlan]], exc: Exception) -> None:
        key = tuple(idx for idx, _ in shard)
        count = self.attempts.get(key, 0) + 1
        self.attempts[key] = count
        if count <= self.engine.max_retries:
            self.retries += 1
            self.tracer.count("retry")
            self.tracer.instant(
                "retry", plans=len(shard), attempt=count,
                error=type(exc).__name__,
            )
            backoff = self.engine.retry_backoff
            if backoff > 0:
                sleep(
                    min(
                        self.engine.retry_backoff_cap,
                        backoff * 2 ** (count - 1),
                    )
                )
            self.queue.append(shard)
        elif len(shard) > 1:
            # Bisect: isolate the poison plan instead of discarding the
            # healthy majority of the shard alongside it.
            mid = len(shard) // 2
            self.tracer.count("bisect")
            self.tracer.instant("bisect", plans=len(shard))
            self.queue.append(shard[:mid])
            self.queue.append(shard[mid:])
        else:
            ((index, plan),) = shard
            self.quarantined.append(index)
            self.tracer.count("quarantine")
            self.tracer.instant(
                "quarantine", index=index, error=type(exc).__name__
            )
            if self.journal is not None:
                self.journal.record_quarantine(index, plan, repr(exc), count)


# -- the engine -------------------------------------------------------------


class CampaignEngine:
    """Runs injection campaigns with prefix reuse, fan-out, and supervision.

    Execution knobs:

    * ``jobs``: worker processes (1 = in-process; None = ``os.cpu_count()``).
    * ``ladder_interval``: rung spacing in retired instructions (None = the
      app's :attr:`~repro.apps.base.MiniApp.default_ladder_interval`;
      :data:`NO_LADDER` / 0 = replay every prefix from instruction 0).
    * ``keep_results``: keep per-run :class:`InjectionResult` records on the
      campaign (memory-unsafe at large N, hence off by default).
    * ``shard_size``: plans per shard (None = one shard per worker, or a
      finer default grain when journaling so resume loses little work).

    Resilience knobs:

    * ``max_retries``: re-executions of a failing shard before bisection.
    * ``retry_backoff`` / ``retry_backoff_cap``: exponential backoff seconds
      between retries (0 disables sleeping).
    * ``max_pool_rebuilds``: broken process pools replaced before degrading.
    * ``serial_fallback``: finish in-process when the pool keeps breaking
      (False: raise :class:`~repro.errors.CampaignAbortedError` instead).
    * ``wall_clock_limit``: per-injection watchdog seconds (None = off;
      expired runs classify as ``HANG`` -- a non-deterministic safety
      valve, so leave it off when bit-identical reruns matter).
    * ``backend``: execution engine for injection runs ("interpreter" or
      "compiled"; None = the package default).  Outcomes are
      backend-invariant -- the differential suite proves it -- so this
      only changes speed.

    For the same (app, n, seed, config, plans) every (jobs,
    ladder_interval, shard_size, backend) combination produces an
    identical :class:`CampaignResult`; the engine only changes how fast
    it arrives and what it survives.  The last run's :class:`EngineStats`
    is kept on :attr:`stats`.

    All knobs live in one :class:`~repro.faultinject.campaign.CampaignConfig`
    (``config=``); the loose per-knob kwargs are the deprecated
    pre-config spelling and override it when passed.  With telemetry
    enabled the last run's aggregated
    :class:`~repro.telemetry.TelemetryReport` is kept on
    :attr:`telemetry`; :attr:`on_progress` optionally receives
    ``(done, total)`` after every committed shard.
    """

    def __init__(
        self,
        jobs: int | None | _Unset = _UNSET,
        ladder_interval: int | None | _Unset = _UNSET,
        keep_results: bool | _Unset = _UNSET,
        *,
        shard_size: int | None | _Unset = _UNSET,
        max_retries: int | _Unset = _UNSET,
        retry_backoff: float | _Unset = _UNSET,
        retry_backoff_cap: float | _Unset = _UNSET,
        max_pool_rebuilds: int | _Unset = _UNSET,
        serial_fallback: bool | _Unset = _UNSET,
        wall_clock_limit: float | None | _Unset = _UNSET,
        backend: str | None | _Unset = _UNSET,
        config: CampaignConfig | None = None,
    ):
        cfg = _with_legacy(
            config,
            "CampaignEngine",
            jobs=jobs,
            ladder_interval=ladder_interval,
            keep_results=keep_results,
            shard_size=shard_size,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            retry_backoff_cap=retry_backoff_cap,
            max_pool_rebuilds=max_pool_rebuilds,
            serial_fallback=serial_fallback,
            wall_clock_limit=wall_clock_limit,
            backend=backend,
        )
        self.campaign_config = cfg
        self.jobs = (
            (os.cpu_count() or 1) if cfg.jobs is None else max(1, cfg.jobs)
        )
        self.ladder_interval = cfg.ladder_interval
        self.keep_results = cfg.keep_results
        self.backend = cfg.backend
        self.shard_size = cfg.shard_size
        self.max_retries = max(0, cfg.max_retries)
        self.retry_backoff = max(0.0, cfg.retry_backoff)
        self.retry_backoff_cap = max(0.0, cfg.retry_backoff_cap)
        self.max_pool_rebuilds = max(0, cfg.max_pool_rebuilds)
        self.serial_fallback = cfg.serial_fallback
        self.wall_clock_limit = cfg.wall_clock_limit
        self.stats: EngineStats | None = None
        self.telemetry: TelemetryReport | None = None
        self.on_progress = None  # optional callable(done, total)

    def _shard_count(self, pending: int, jobs: int, journaling: bool) -> int:
        if self.shard_size is not None:
            return max(1, math.ceil(pending / self.shard_size))
        if journaling:
            # Finer grain: each journaled shard is resume credit, and
            # bisection isolates poison plans in fewer halvings.
            return min(pending, 8 * jobs)
        return jobs

    def run(
        self,
        app: MiniApp,
        n: int,
        seed: int,
        config: LetGoConfig | None = None,
        plans: list[InjectionPlan] | None = None,
        *,
        journal: str | Path | None = None,
        resume: str | Path | None = None,
    ) -> CampaignResult:
        """Run *n* injections on *app* under *config* (None = baseline).

        ``journal`` starts a fresh write-ahead journal at that path;
        ``resume`` loads an existing one, verifies it belongs to this
        exact campaign, skips already-journaled plans, and appends new
        shards to the same file.  Either way the returned result is
        bit-identical to an uninterrupted run with the same seed.  Both
        default to the engine's :class:`CampaignConfig` values.
        """
        cfg = self.campaign_config
        tracer = (
            Tracer(tid="engine", probe_interval=cfg.probe_interval)
            if cfg.telemetry_enabled
            else NULL_TRACER
        )
        self.telemetry = None
        t0 = perf_counter()
        if journal is None:
            journal = cfg.journal
        if resume is None:
            resume = cfg.resume
        if plans is None:
            rng = np.random.default_rng(seed)
            with tracer.span("plan"):
                plans = plan_injections(rng, app.golden.instret, n)
        elif len(plans) != n:
            raise ValueError("len(plans) must equal n")
        if journal is not None and resume is not None:
            raise ValueError(
                "pass either journal= (fresh) or resume= (existing), not both"
            )

        config_name = config.name if config is not None else "baseline"
        journal_obj: CampaignJournal | None = None
        if resume is not None:
            journal_obj = CampaignJournal.load(resume)
            journal_obj.verify(
                JournalHeader.for_campaign(app.name, config_name, n, seed, plans)
            )
        elif journal is not None:
            journal_obj = CampaignJournal.create(
                journal,
                JournalHeader.for_campaign(app.name, config_name, n, seed, plans),
            )
        if journal_obj is not None:
            journal_obj.tracer = tracer

        settled = (
            journal_obj.settled_indices if journal_obj is not None else frozenset()
        )
        indexed = [
            (idx, plan) for idx, plan in enumerate(plans) if idx not in settled
        ]
        resumed_pairs = journal_obj.pairs() if journal_obj is not None else []
        prior_quarantine = (
            [record.index for record in journal_obj.quarantined]
            if journal_obj is not None
            else []
        )
        if resume is not None:
            tracer.instant(
                "journal-resume", settled=len(settled), pending=len(indexed)
            )

        use_ladder = self.ladder_interval != NO_LADDER
        # Building (or fetching) the ladder in the parent warms the
        # per-source cache, which fork-based workers inherit for free.
        with tracer.span("ladder"):
            ladder = app.ladder(self.ladder_interval) if use_ladder else None

        jobs = max(1, min(self.jobs, len(indexed))) if indexed else 1
        spec = _app_spec(app) if jobs > 1 else None
        if jobs > 1 and spec is None:
            jobs = 1  # un-rederivable app (e.g. a local class): stay in-process

        supervisor = _Supervisor(
            engine=self,
            app=app,
            ladder=ladder,
            config=config,
            spec=spec,
            jobs=jobs,
            journal=journal_obj,
            tracer=tracer,
            telemetry=tracer.enabled,
            probe_interval=cfg.probe_interval,
            total=n,
            done_base=len(settled),
        )
        if indexed:
            shards = _split(
                indexed,
                self._shard_count(len(indexed), jobs, journal_obj is not None),
            )
            with tracer.span("execute"):
                supervisor.run(shards)

        with tracer.span("merge"):
            all_pairs = dict(resumed_pairs)
            all_pairs.update(supervisor.pairs)
            ordered = [all_pairs[idx] for idx in sorted(all_pairs)]
            counts: Counter = Counter()
            for result in ordered:
                counts[result.outcome] += 1
            merged = CampaignResult(
                app_name=app.name,
                config_name=config_name,
                n=len(ordered),
                counts=dict(counts),
                results=list(ordered) if self.keep_results else [],
            )

        elapsed = perf_counter() - t0
        self.stats = EngineStats(
            n=n,
            jobs=jobs,
            elapsed_seconds=elapsed,
            ladder_interval=ladder.interval if ladder is not None else NO_LADDER,
            ladder_rungs=len(ladder) if ladder is not None else 0,
            restored=sum(s[0] for s in supervisor.shard_stats),
            cold_starts=sum(s[1] for s in supervisor.shard_stats),
            fast_forward_steps=sum(s[2] for s in supervisor.shard_stats),
            per_worker_injections=tuple(supervisor.shard_sizes),
            per_worker_seconds=tuple(s[3] for s in supervisor.shard_stats),
            retries=supervisor.retries,
            pool_rebuilds=supervisor.pool_rebuilds,
            degraded_serial=supervisor.degraded,
            resumed=len(resumed_pairs),
            timeouts=supervisor.timeouts,
            quarantined=tuple(sorted(prior_quarantine + supervisor.quarantined)),
        )
        if tracer.enabled:
            self.telemetry = TelemetryReport.from_tracer(
                tracer, wall_seconds=elapsed
            )
            meta = {
                "app": app.name,
                "config": config_name,
                "n": n,
                "seed": seed,
                "jobs": jobs,
                "wall_seconds": elapsed,
            }
            if cfg.trace is not None:
                write_jsonl(
                    cfg.trace, tracer.records(),
                    counters=tracer.counters, meta=meta,
                )
            if cfg.chrome_trace is not None:
                write_chrome_trace(
                    cfg.chrome_trace, tracer.records(),
                    process_name=f"{app.name} under {config_name}",
                )
        return merged


def run_campaign_engine(
    app: MiniApp,
    n: int,
    seed: int,
    config: LetGoConfig | None = None,
    *,
    jobs: int | None | _Unset = _UNSET,
    ladder_interval: int | None | _Unset = _UNSET,
    keep_results: bool | _Unset = _UNSET,
    plans: list[InjectionPlan] | None = None,
    backend: str | None | _Unset = _UNSET,
    campaign: CampaignConfig | None = None,
) -> CampaignResult:
    """One-shot convenience wrapper around :class:`CampaignEngine`.

    ``campaign`` supplies the :class:`CampaignConfig`; the loose kwargs
    are the deprecated spelling and override it when passed.
    """
    cfg = _with_legacy(
        campaign,
        "run_campaign_engine",
        jobs=jobs,
        ladder_interval=ladder_interval,
        keep_results=keep_results,
        backend=backend,
    )
    engine = CampaignEngine(config=cfg)
    return engine.run(app, n, seed, config, plans=plans)


__all__ = [
    "CampaignEngine",
    "EngineStats",
    "run_campaign_engine",
    "NO_LADDER",
]
