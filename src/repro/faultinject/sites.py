"""Fault-site analysis: where crashes come from and what LetGo saves.

Post-processes the per-run records a campaign keeps (``keep_results=True``)
into the characterisation views the paper discusses qualitatively: outcome
by faulting *function*, by instruction class (memory / control / integer /
float), by crash signal, and by flipped-bit position.  Useful both for
understanding a campaign and for debugging the heuristics.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.analysis.functions import FunctionTable
from repro.apps.base import MiniApp
from repro.faultinject.campaign import CampaignResult
from repro.faultinject.injector import InjectionResult
from repro.faultinject.outcomes import Outcome
from repro.isa.instructions import BRANCH_OPS, LOAD_OPS, STORE_OPS, Op
from repro.reporting import ascii_table

#: Coarse instruction classes for site bucketing.
INSTR_CLASSES = ("load", "store", "branch", "float", "int", "other")


def classify_op(op: Op) -> str:
    """Coarse class of an opcode (site bucketing)."""
    if op in LOAD_OPS:
        return "load"
    if op in STORE_OPS:
        return "store"
    if op in BRANCH_OPS or op in (Op.RET, Op.BEQZ, Op.BNEZ):
        return "branch"
    name = op.name
    if name.startswith("F") and op not in (Op.FTOI,):
        return "float"
    if op in (
        Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR, Op.XOR,
        Op.SHL, Op.SHR, Op.NEG, Op.NOT, Op.ADDI, Op.SUBI, Op.MULI,
        Op.ANDI, Op.ORI, Op.XORI, Op.SHLI, Op.SHRI, Op.SEQ, Op.SNE,
        Op.SLT, Op.SLE, Op.MOV, Op.MOVI, Op.FTOI,
    ):
        return "int"
    return "other"


@dataclass
class SiteReport:
    """Aggregated views of one campaign's fault sites."""

    app_name: str
    config_name: str
    by_function: dict[str, Counter] = field(default_factory=dict)
    by_class: dict[str, Counter] = field(default_factory=dict)
    by_signal: Counter = field(default_factory=Counter)
    by_bit_range: dict[str, Counter] = field(default_factory=dict)

    def crashiest_functions(self, n: int = 5) -> list[tuple[str, int]]:
        """Functions ranked by crash-origin faults landing in them."""
        ranked = sorted(
            (
                (name, sum(c for o, c in counts.items() if o.crash_origin))
                for name, counts in self.by_function.items()
            ),
            key=lambda t: -t[1],
        )
        return [(name, count) for name, count in ranked[:n] if count > 0]

    def crash_rate_of_class(self, cls: str) -> float:
        """Crash-origin fraction of faults hitting one instruction class."""
        counts = self.by_class.get(cls)
        if not counts:
            return 0.0
        total = sum(counts.values())
        crash = sum(c for o, c in counts.items() if o.crash_origin)
        return crash / total if total else 0.0

    def render(self) -> str:
        """Human-readable multi-table report."""
        sections = [f"fault sites: {self.app_name} under {self.config_name}"]
        rows = [
            [cls,
             sum(self.by_class.get(cls, Counter()).values()),
             f"{self.crash_rate_of_class(cls):.1%}"]
            for cls in INSTR_CLASSES
            if cls in self.by_class
        ]
        sections.append(
            ascii_table(["instr class", "faults", "crash rate"], rows)
        )
        rows = [[name, count] for name, count in self.crashiest_functions(8)]
        if rows:
            sections.append(
                ascii_table(["function", "crash-origin faults"], rows,
                            title="crashiest functions")
            )
        if self.by_signal:
            rows = [[sig.name, count] for sig, count in self.by_signal.most_common()]
            sections.append(
                ascii_table(["first signal", "runs"], rows, title="crash signals")
            )
        rows = [
            [rng, sum(c.values()),
             f"{sum(v for o, v in c.items() if o.crash_origin) / max(sum(c.values()), 1):.1%}"]
            for rng, c in sorted(self.by_bit_range.items())
        ]
        sections.append(
            ascii_table(["bit range", "faults", "crash rate"], rows,
                        title="flipped-bit position")
        )
        return "\n\n".join(sections)


def _bit_range(bit: int) -> str:
    if bit < 16:
        return "00-15 (low mantissa)"
    if bit < 32:
        return "16-31"
    if bit < 48:
        return "32-47 (high value)"
    return "48-63 (exponent/sign)"


def analyze_sites(app: MiniApp, campaign: CampaignResult) -> SiteReport:
    """Aggregate a campaign's kept results into a :class:`SiteReport`."""
    if not campaign.results:
        raise ValueError(
            "campaign has no per-run records; run with keep_results=True"
        )
    table: FunctionTable = app.functions
    report = SiteReport(app_name=app.name, config_name=campaign.config_name)
    by_function: dict[str, Counter] = defaultdict(Counter)
    by_class: dict[str, Counter] = defaultdict(Counter)
    by_bits: dict[str, Counter] = defaultdict(Counter)
    for result in campaign.results:
        _tally(result, app, table, by_function, by_class, by_bits, report)
    report.by_function = dict(by_function)
    report.by_class = dict(by_class)
    report.by_bit_range = dict(by_bits)
    return report


def _tally(
    result: InjectionResult,
    app: MiniApp,
    table: FunctionTable,
    by_function,
    by_class,
    by_bits,
    report: SiteReport,
) -> None:
    if result.outcome is Outcome.NOT_INJECTED or result.target_pc is None:
        return
    function = table.function_at(result.target_pc).name
    by_function[function][result.outcome] += 1
    op = app.program.instrs[result.target_pc].op
    by_class[classify_op(op)][result.outcome] += 1
    by_bits[_bit_range(result.plan.bit)][result.outcome] += 1
    if result.first_signal is not None:
        report.by_signal[result.first_signal] += 1


__all__ = ["SiteReport", "analyze_sites", "classify_op", "INSTR_CLASSES"]
