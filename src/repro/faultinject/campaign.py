"""Campaign runner: many injections, aggregated per app and LetGo config.

Mirrors the paper's two-phase methodology: one profiling run per app
(cached on the :class:`~repro.apps.base.MiniApp`), then N injection runs
with independently drawn (dynamic-instruction, bit) pairs.  Plans are
drawn once per seed, so campaigns for different LetGo configurations are
*paired*: every config experiences the identical fault population, which
is what makes the Figure-5 B-vs-E comparison tight at moderate N.
"""

from __future__ import annotations

import argparse
import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Sequence

import numpy as np

from repro.apps.base import MiniApp
from repro.core.config import LetGoConfig
from repro.faultinject.fault_model import InjectionPlan, plan_injections
from repro.faultinject.injector import InjectionResult
from repro.faultinject.metrics import (
    LetGoMetrics,
    Proportion,
    compute_metrics,
    crash_probability,
    overall_sdc_rate,
    proportion,
)
from repro.faultinject.outcomes import Outcome


@dataclass
class CampaignResult:
    """Aggregated outcomes of one (app, config) campaign."""

    app_name: str
    config_name: str           # "baseline" when no LetGo was attached
    n: int
    counts: dict[Outcome, int]
    results: list[InjectionResult] = field(default_factory=list, repr=False)

    # -- combination -------------------------------------------------------

    @classmethod
    def merge(cls, shards: Sequence["CampaignResult"]) -> "CampaignResult":
        """Pool shards of one (app, config) campaign into a single result.

        Sums ``counts`` and ``n`` and concatenates ``results`` in shard
        order: merging contiguous shards in plan order reassembles the
        serial campaign bit-for-bit.  Merging knows nothing about plan
        identity, so it cannot detect a shard counted twice -- resume
        deduplication is the journal's job
        (:class:`~repro.faultinject.journal.CampaignJournal` refuses
        duplicate plan indices).
        """
        if not shards:
            raise ValueError("nothing to merge")
        first = shards[0]
        for other in shards[1:]:
            if (other.app_name, other.config_name) != (
                first.app_name,
                first.config_name,
            ):
                raise ValueError(
                    "cannot merge campaigns of different apps or configs"
                )
        counts: dict[Outcome, int] = {}
        results: list[InjectionResult] = []
        total = 0
        for shard in shards:
            total += shard.n
            results.extend(shard.results)
            for outcome, count in shard.counts.items():
                counts[outcome] = counts.get(outcome, 0) + count
        return cls(
            app_name=first.app_name,
            config_name=first.config_name,
            n=total,
            counts=counts,
            results=results,
        )

    # -- basic accessors ---------------------------------------------------

    def fraction(self, outcome: Outcome) -> Proportion:
        """Share of all injections landing in *outcome*."""
        return proportion(self.counts.get(outcome, 0), self.n)

    def crash_rate(self) -> Proportion:
        """Fraction of faults that raised a crash-causing signal."""
        return crash_probability(self.counts)

    def sdc_rate(self) -> Proportion:
        """Overall undetected-wrong-result rate (SDC + C-SDC)."""
        return overall_sdc_rate(self.counts)

    def metrics(self) -> LetGoMetrics:
        """Eq. 1-4 metrics (meaningful for LetGo campaigns)."""
        return compute_metrics(self.counts)

    # -- Table 3 row -----------------------------------------------------------

    def table3_row(self) -> dict[str, float]:
        """The seven Table-3 leaf fractions, normalised by total runs.

        'double crash' folds in unhandled-signal crashes and continued
        hangs, matching the paper's accounting (everything LetGo failed to
        convert into a finished run).
        """
        n = self.n or 1
        fold = sum(
            count
            for outcome, count in self.counts.items()
            if outcome.folds_to_double_crash or outcome is Outcome.CRASH
        )
        return {
            "detected": self.counts.get(Outcome.DETECTED, 0) / n,
            "benign": self.counts.get(Outcome.BENIGN, 0) / n,
            "sdc": self.counts.get(Outcome.SDC, 0) / n,
            "double_crash": fold / n,
            "c_detected": self.counts.get(Outcome.C_DETECTED, 0) / n,
            "c_benign": self.counts.get(Outcome.C_BENIGN, 0) / n,
            "c_sdc": self.counts.get(Outcome.C_SDC, 0) / n,
        }

    # -- C/R-model parameter estimation (Table 4 "Estimated") -----------------

    def estimate_p_crash(self) -> float:
        """P_crash: fault -> crash probability."""
        return self.crash_rate().value

    def estimate_p_v(self) -> float:
        """P_v: P(acceptance check passes | fault, finished without crash)."""
        finished = (
            self.counts.get(Outcome.BENIGN, 0)
            + self.counts.get(Outcome.SDC, 0)
            + self.counts.get(Outcome.DETECTED, 0)
        )
        passed = self.counts.get(Outcome.BENIGN, 0) + self.counts.get(Outcome.SDC, 0)
        return passed / finished if finished else 1.0

    def estimate_p_v_prime(self) -> float:
        """P_v': P(acceptance check passes | LetGo continued the run)."""
        continued = (
            self.counts.get(Outcome.C_BENIGN, 0)
            + self.counts.get(Outcome.C_SDC, 0)
            + self.counts.get(Outcome.C_DETECTED, 0)
        )
        passed = self.counts.get(Outcome.C_BENIGN, 0) + self.counts.get(
            Outcome.C_SDC, 0
        )
        return passed / continued if continued else 1.0

    def estimate_p_letgo(self) -> float:
        """P_letgo: Continuability (Eq. 1)."""
        return self.metrics().continuability.value


# -- the unified campaign configuration --------------------------------------


class _Unset:
    """Sentinel distinguishing 'not passed' from an explicit None."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unset>"


_UNSET = _Unset()


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _knob(
    default,
    help: str,
    *,
    kind: str = "str",
    metavar: str | None = None,
    choices: str | None = None,
    cli_default=_UNSET,
    group: str | None = None,
):
    """A :class:`CampaignConfig` field whose metadata drives CLI flag
    generation (see :func:`add_campaign_arguments`)."""
    meta = {"help": help, "kind": kind}
    if metavar is not None:
        meta["metavar"] = metavar
    if choices is not None:
        meta["choices"] = choices
    if cli_default is not _UNSET:
        meta["cli_default"] = cli_default
    if group is not None:
        meta["group"] = group
    return field(default=default, metadata=meta)


@dataclass(frozen=True)
class CampaignConfig:
    """Every execution / resilience / observability knob of a campaign.

    One frozen value object replaces the kwarg soup previously spread
    across :class:`~repro.faultinject.engine.CampaignEngine`,
    :func:`run_campaign`, :func:`run_paired_campaigns` and the CLI.  None
    of these knobs changes campaign *outcomes* (``wall_clock_limit`` is
    the documented safety-valve exception); they change how fast the
    result arrives, what it survives, and what gets observed on the way.

    Each field's metadata (help text, flag type, default) is the single
    source of truth the CLI derives its ``campaign`` flags from, so
    config and command line cannot drift apart (a parity test pins this).
    """

    # -- execution --------------------------------------------------------
    jobs: int | None = _knob(
        1,
        "worker processes (default: all cores; results are identical "
        "to --jobs 1 for the same seed)",
        kind="int",
        metavar="J",
        cli_default=None,
    )
    ladder_interval: int | None = _knob(
        None,
        "snapshot-ladder rung spacing in retired instructions "
        "(default: auto; 0 disables the ladder)",
        kind="ladder",
        metavar="K",
    )
    shard_size: int | None = _knob(
        None,
        "plans per shard (default: one shard per worker, finer when "
        "journaling)",
        kind="int",
        metavar="P",
    )
    backend: str | None = _knob(
        None,
        "execution engine (default: compiled, or $REPRO_BACKEND); "
        "outcomes are backend-invariant",
        choices="backends",
    )
    keep_results: bool = _knob(
        False,
        "retain per-run InjectionResult records on the campaign "
        "(memory-unsafe at large N)",
        kind="bool",
    )
    # -- resilience -------------------------------------------------------
    max_retries: int = _knob(
        2,
        "re-executions of a failing shard before it is bisected down "
        "to the poison plan (default: 2)",
        kind="int",
        metavar="R",
    )
    retry_backoff: float = _knob(
        0.1,
        "exponential backoff seconds between shard retries "
        "(0 disables sleeping)",
        kind="float",
        metavar="SECONDS",
    )
    retry_backoff_cap: float = _knob(
        2.0,
        "upper bound on the retry backoff (seconds)",
        kind="float",
        metavar="SECONDS",
    )
    max_pool_rebuilds: int = _knob(
        2,
        "broken process pools replaced before degrading to in-process "
        "serial execution",
        kind="int",
        metavar="N",
    )
    serial_fallback: bool = _knob(
        True,
        "finish in-process when the worker pool keeps breaking "
        "(--no-serial-fallback aborts instead)",
        kind="bool",
    )
    wall_clock_limit: float | None = _knob(
        None,
        "per-injection wall-clock watchdog: a run exceeding this "
        "real-time budget classifies as HANG (default: off)",
        kind="float",
        metavar="SECONDS",
    )
    # -- durability -------------------------------------------------------
    journal: str | None = _knob(
        None,
        "write-ahead journal: every completed shard is recorded durably, "
        "so an interrupted campaign can be resumed with --resume",
        metavar="PATH",
        group="durability",
    )
    resume: str | None = _knob(
        None,
        "resume from an existing journal: skips already-completed plans "
        "and appends new shards; the merged result is identical to an "
        "uninterrupted run",
        metavar="PATH",
        group="durability",
    )
    # -- observability ----------------------------------------------------
    telemetry: bool = _knob(
        False,
        "record structured telemetry (phase spans + counters) and print "
        "the end-of-campaign breakdown",
        kind="bool",
    )
    trace: str | None = _knob(
        None,
        "write the merged event stream as a JSON-lines trace file "
        "(implies telemetry)",
        metavar="PATH",
    )
    chrome_trace: str | None = _knob(
        None,
        "write a chrome://tracing / Perfetto trace_event view "
        "(implies telemetry)",
        metavar="PATH",
    )
    probe_interval: int = _knob(
        0,
        "emit a progress probe every N retired instructions of golden-"
        "prefix replay (0: off; implies telemetry)",
        kind="probe",
        metavar="N",
    )

    def __post_init__(self) -> None:
        if self.shard_size is not None and self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if self.probe_interval < 0:
            raise ValueError("probe_interval must be >= 0")
        if self.journal is not None and self.resume is not None:
            raise ValueError(
                "pass either journal= (fresh) or resume= (existing), not both"
            )

    @property
    def telemetry_enabled(self) -> bool:
        """True when any observability output was requested."""
        return (
            self.telemetry
            or self.trace is not None
            or self.chrome_trace is not None
            or self.probe_interval > 0
        )


def _with_legacy(
    campaign: CampaignConfig | None, caller: str, **overrides
) -> CampaignConfig:
    """Fold deprecated per-knob kwargs into a :class:`CampaignConfig`.

    Explicitly passed legacy kwargs (anything not ``_UNSET``) win over
    the supplied config and emit one :class:`DeprecationWarning` naming
    the replacement, so old call sites keep working verbatim while new
    code converges on the config object.
    """
    supplied = {
        name: value for name, value in overrides.items() if value is not _UNSET
    }
    base = campaign if campaign is not None else CampaignConfig()
    if not supplied:
        return base
    warnings.warn(
        f"{caller}: pass config=CampaignConfig(...) instead of the "
        f"deprecated keyword(s) {sorted(supplied)}",
        DeprecationWarning,
        stacklevel=3,
    )
    return replace(base, **supplied)


#: argparse flag types, keyed by field-metadata ``kind``.
_FLAG_TYPES = {
    "int": int,
    "float": float,
    "str": str,
    "ladder": _nonnegative_int,
    "probe": _nonnegative_int,
}


def add_campaign_arguments(parser: argparse.ArgumentParser) -> None:
    """Derive one CLI flag per :class:`CampaignConfig` field.

    Flag name, type, default and help text all come from the field and
    its metadata; fields sharing a metadata ``group`` become mutually
    exclusive (journal vs resume).  Bool fields get paired
    ``--flag/--no-flag`` switches.
    """
    groups: dict[str, argparse._MutuallyExclusiveGroup] = {}
    for spec in fields(CampaignConfig):
        meta = spec.metadata
        flag = "--" + spec.name.replace("_", "-")
        target: argparse._ActionsContainer = parser
        group = meta.get("group")
        if group is not None:
            if group not in groups:
                groups[group] = parser.add_mutually_exclusive_group()
            target = groups[group]
        kwargs: dict = {
            "dest": spec.name,
            "default": meta.get("cli_default", spec.default),
            "help": meta["help"],
        }
        if meta["kind"] == "bool":
            kwargs["action"] = argparse.BooleanOptionalAction
        else:
            kwargs["type"] = _FLAG_TYPES[meta["kind"]]
            if "metavar" in meta:
                kwargs["metavar"] = meta["metavar"]
            if meta.get("choices") == "backends":
                from repro.machine.compiled import BACKENDS

                kwargs["choices"] = sorted(BACKENDS)
        target.add_argument(flag, **kwargs)


def campaign_config_from_args(args: argparse.Namespace) -> CampaignConfig:
    """The :class:`CampaignConfig` a parsed command line describes."""
    return CampaignConfig(
        **{spec.name: getattr(args, spec.name) for spec in fields(CampaignConfig)}
    )


def run_campaign(
    app: MiniApp,
    n: int,
    seed: int,
    config: LetGoConfig | None = None,
    keep_results: bool | _Unset = _UNSET,
    plans: list[InjectionPlan] | None = None,
    *,
    jobs: int | None | _Unset = _UNSET,
    ladder_interval: int | None | _Unset = _UNSET,
    campaign: CampaignConfig | None = None,
) -> CampaignResult:
    """Run *n* injections on *app* under *config* (None = baseline).

    A thin wrapper over :class:`~repro.faultinject.engine.CampaignEngine`:
    by default the golden prefix of each run is restored from the app's
    snapshot ladder instead of replayed from instruction 0, and ``jobs``
    fans the independent runs out across worker processes.  Results are
    identical to the naive serial loop for the same seed regardless of
    ``jobs``/``ladder_interval`` (pass ``ladder_interval=0`` to disable
    the ladder).

    ``keep_results`` retains the per-run :class:`InjectionResult` records;
    it defaults to False because at large N the accumulation is unbounded
    (matching :func:`run_paired_campaigns`).

    ``campaign`` supplies the full :class:`CampaignConfig`; the loose
    ``keep_results`` / ``jobs`` / ``ladder_interval`` kwargs are the
    deprecated pre-config spelling and override it when passed.
    """
    from repro.faultinject.engine import CampaignEngine

    cfg = _with_legacy(
        campaign,
        "run_campaign",
        keep_results=keep_results,
        jobs=jobs,
        ladder_interval=ladder_interval,
    )
    engine = CampaignEngine(config=cfg)
    return engine.run(app, n, seed, config, plans=plans)


def run_paired_campaigns(
    app: MiniApp,
    n: int,
    seed: int,
    configs: list[LetGoConfig | None],
    keep_results: bool | _Unset = _UNSET,
    *,
    jobs: int | None | _Unset = _UNSET,
    ladder_interval: int | None | _Unset = _UNSET,
    campaign: CampaignConfig | None = None,
) -> dict[str, CampaignResult]:
    """Run the same fault population under several configurations.

    Returns config-name -> result ("baseline" for None).  ``campaign``
    (a :class:`CampaignConfig`) passes through to :func:`run_campaign`;
    the loose kwargs are the deprecated spelling.
    """
    cfg = _with_legacy(
        campaign,
        "run_paired_campaigns",
        keep_results=keep_results,
        jobs=jobs,
        ladder_interval=ladder_interval,
    )
    rng = np.random.default_rng(seed)
    plans = plan_injections(rng, app.golden.instret, n)
    out: dict[str, CampaignResult] = {}
    for config in configs:
        name = config.name if config is not None else "baseline"
        out[name] = run_campaign(
            app, n, seed, config, plans=plans, campaign=cfg
        )
    return out


__all__ = [
    "CampaignResult",
    "CampaignConfig",
    "add_campaign_arguments",
    "campaign_config_from_args",
    "run_campaign",
    "run_paired_campaigns",
]
