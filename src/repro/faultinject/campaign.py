"""Campaign runner: many injections, aggregated per app and LetGo config.

Mirrors the paper's two-phase methodology: one profiling run per app
(cached on the :class:`~repro.apps.base.MiniApp`), then N injection runs
with independently drawn (dynamic-instruction, bit) pairs.  Plans are
drawn once per seed, so campaigns for different LetGo configurations are
*paired*: every config experiences the identical fault population, which
is what makes the Figure-5 B-vs-E comparison tight at moderate N.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.apps.base import MiniApp
from repro.core.config import LetGoConfig
from repro.faultinject.fault_model import InjectionPlan, plan_injections
from repro.faultinject.injector import InjectionResult
from repro.faultinject.metrics import (
    LetGoMetrics,
    Proportion,
    compute_metrics,
    crash_probability,
    overall_sdc_rate,
    proportion,
)
from repro.faultinject.outcomes import Outcome


@dataclass
class CampaignResult:
    """Aggregated outcomes of one (app, config) campaign."""

    app_name: str
    config_name: str           # "baseline" when no LetGo was attached
    n: int
    counts: dict[Outcome, int]
    results: list[InjectionResult] = field(default_factory=list, repr=False)

    # -- combination -------------------------------------------------------

    @classmethod
    def merge(cls, shards: Sequence["CampaignResult"]) -> "CampaignResult":
        """Pool shards of one (app, config) campaign into a single result.

        Sums ``counts`` and ``n`` and concatenates ``results`` in shard
        order: merging contiguous shards in plan order reassembles the
        serial campaign bit-for-bit.  Merging knows nothing about plan
        identity, so it cannot detect a shard counted twice -- resume
        deduplication is the journal's job
        (:class:`~repro.faultinject.journal.CampaignJournal` refuses
        duplicate plan indices).
        """
        if not shards:
            raise ValueError("nothing to merge")
        first = shards[0]
        for other in shards[1:]:
            if (other.app_name, other.config_name) != (
                first.app_name,
                first.config_name,
            ):
                raise ValueError(
                    "cannot merge campaigns of different apps or configs"
                )
        counts: dict[Outcome, int] = {}
        results: list[InjectionResult] = []
        total = 0
        for shard in shards:
            total += shard.n
            results.extend(shard.results)
            for outcome, count in shard.counts.items():
                counts[outcome] = counts.get(outcome, 0) + count
        return cls(
            app_name=first.app_name,
            config_name=first.config_name,
            n=total,
            counts=counts,
            results=results,
        )

    # -- basic accessors ---------------------------------------------------

    def fraction(self, outcome: Outcome) -> Proportion:
        """Share of all injections landing in *outcome*."""
        return proportion(self.counts.get(outcome, 0), self.n)

    def crash_rate(self) -> Proportion:
        """Fraction of faults that raised a crash-causing signal."""
        return crash_probability(self.counts)

    def sdc_rate(self) -> Proportion:
        """Overall undetected-wrong-result rate (SDC + C-SDC)."""
        return overall_sdc_rate(self.counts)

    def metrics(self) -> LetGoMetrics:
        """Eq. 1-4 metrics (meaningful for LetGo campaigns)."""
        return compute_metrics(self.counts)

    # -- Table 3 row -----------------------------------------------------------

    def table3_row(self) -> dict[str, float]:
        """The seven Table-3 leaf fractions, normalised by total runs.

        'double crash' folds in unhandled-signal crashes and continued
        hangs, matching the paper's accounting (everything LetGo failed to
        convert into a finished run).
        """
        n = self.n or 1
        fold = sum(
            count
            for outcome, count in self.counts.items()
            if outcome.folds_to_double_crash or outcome is Outcome.CRASH
        )
        return {
            "detected": self.counts.get(Outcome.DETECTED, 0) / n,
            "benign": self.counts.get(Outcome.BENIGN, 0) / n,
            "sdc": self.counts.get(Outcome.SDC, 0) / n,
            "double_crash": fold / n,
            "c_detected": self.counts.get(Outcome.C_DETECTED, 0) / n,
            "c_benign": self.counts.get(Outcome.C_BENIGN, 0) / n,
            "c_sdc": self.counts.get(Outcome.C_SDC, 0) / n,
        }

    # -- C/R-model parameter estimation (Table 4 "Estimated") -----------------

    def estimate_p_crash(self) -> float:
        """P_crash: fault -> crash probability."""
        return self.crash_rate().value

    def estimate_p_v(self) -> float:
        """P_v: P(acceptance check passes | fault, finished without crash)."""
        finished = (
            self.counts.get(Outcome.BENIGN, 0)
            + self.counts.get(Outcome.SDC, 0)
            + self.counts.get(Outcome.DETECTED, 0)
        )
        passed = self.counts.get(Outcome.BENIGN, 0) + self.counts.get(Outcome.SDC, 0)
        return passed / finished if finished else 1.0

    def estimate_p_v_prime(self) -> float:
        """P_v': P(acceptance check passes | LetGo continued the run)."""
        continued = (
            self.counts.get(Outcome.C_BENIGN, 0)
            + self.counts.get(Outcome.C_SDC, 0)
            + self.counts.get(Outcome.C_DETECTED, 0)
        )
        passed = self.counts.get(Outcome.C_BENIGN, 0) + self.counts.get(
            Outcome.C_SDC, 0
        )
        return passed / continued if continued else 1.0

    def estimate_p_letgo(self) -> float:
        """P_letgo: Continuability (Eq. 1)."""
        return self.metrics().continuability.value


def run_campaign(
    app: MiniApp,
    n: int,
    seed: int,
    config: LetGoConfig | None = None,
    keep_results: bool = False,
    plans: list[InjectionPlan] | None = None,
    *,
    jobs: int | None = 1,
    ladder_interval: int | None = None,
) -> CampaignResult:
    """Run *n* injections on *app* under *config* (None = baseline).

    A thin wrapper over :class:`~repro.faultinject.engine.CampaignEngine`:
    by default the golden prefix of each run is restored from the app's
    snapshot ladder instead of replayed from instruction 0, and ``jobs``
    fans the independent runs out across worker processes.  Results are
    identical to the naive serial loop for the same seed regardless of
    ``jobs``/``ladder_interval`` (pass ``ladder_interval=0`` to disable
    the ladder).

    ``keep_results`` retains the per-run :class:`InjectionResult` records;
    it defaults to False because at large N the accumulation is unbounded
    (matching :func:`run_paired_campaigns`).
    """
    from repro.faultinject.engine import CampaignEngine

    engine = CampaignEngine(
        jobs=jobs, ladder_interval=ladder_interval, keep_results=keep_results
    )
    return engine.run(app, n, seed, config, plans=plans)


def run_paired_campaigns(
    app: MiniApp,
    n: int,
    seed: int,
    configs: list[LetGoConfig | None],
    keep_results: bool = False,
    *,
    jobs: int | None = 1,
    ladder_interval: int | None = None,
) -> dict[str, CampaignResult]:
    """Run the same fault population under several configurations.

    Returns config-name -> result ("baseline" for None).  ``jobs`` and
    ``ladder_interval`` pass through to :func:`run_campaign`.
    """
    rng = np.random.default_rng(seed)
    plans = plan_injections(rng, app.golden.instret, n)
    out: dict[str, CampaignResult] = {}
    for config in configs:
        name = config.name if config is not None else "baseline"
        out[name] = run_campaign(
            app,
            n,
            seed,
            config,
            keep_results=keep_results,
            plans=plans,
            jobs=jobs,
            ladder_interval=ladder_interval,
        )
    return out


__all__ = ["CampaignResult", "run_campaign", "run_paired_campaigns"]
