"""Single-fault injection runs (paper section 5.4, phase 2).

A run advances a fresh process to the planned dynamic instruction, flips
the planned bit in the register that instruction produced, and then either
lets the default OS behaviour apply (baseline: any trap kills the process)
or hands supervision to LetGo.  The resulting :class:`InjectionResult`
carries the Figure-4 leaf plus enough detail for per-site analysis.

Runs accept an optional **wall-clock watchdog** (``wall_clock_limit``
seconds): the instruction budget already converts infinite loops into
``HANG``, but a pathological repaired run can be *slow* rather than
unbounded -- e.g. a corrupted trip count that still fits the budget yet
takes minutes of interpreter time.  The watchdog caps real time per run so
one bad injection cannot stall a campaign worker forever.  Expired runs
classify as ``HANG`` (with ``timed_out=True`` for observability); the
default of ``None`` keeps runs bit-for-bit deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.apps.base import MiniApp
from repro.core.config import LetGoConfig
from repro.core.session import COMPLETED, HUNG, WATCHDOG_SLICE, LetGoSession
from repro.errors import InjectionError
from repro.faultinject.fault_model import InjectionPlan, flip_bit, select_target
from repro.faultinject.outcomes import Outcome, classify_finished
from repro.machine.debugger import (
    STOP_BUDGET,
    STOP_EXITED,
    STOP_STEPS_DONE,
    STOP_TRAP,
    DebugSession,
    StopEvent,
)
from repro.machine.signals import Signal
from repro.telemetry.tracer import NULL_TRACER


@dataclass
class InjectionResult:
    """One fault-injection run, fully described."""

    outcome: Outcome
    plan: InjectionPlan
    target_pc: int | None = None        # static site of the corrupted instr
    target_reg: tuple[str, int] | None = None
    first_signal: Signal | None = None  # first crash signal, if any
    interventions: int = 0              # LetGo repairs performed
    steps: int = 0                      # total retired instructions
    timed_out: bool = False             # wall-clock watchdog expired


def _probed_steps(
    session: DebugSession, steps: int, tracer
) -> StopEvent:
    """``session.run_steps(steps)`` in instret buckets, emitting progress.

    One ``progress`` instant per :attr:`Tracer.probe_interval` retired
    instructions -- the golden-prefix heartbeat a stalled worker shows in
    its trace.  Chunking through the exact-budget ``run_steps`` contract
    leaves the architectural outcome identical on both backends.
    """
    cpu = session.process.cpu
    interval = tracer.probe_interval
    remaining = steps
    while True:
        event = session.run_steps(min(interval, remaining))
        tracer.instant("progress", instret=cpu.instret)
        remaining -= event.steps
        if event.kind != STOP_STEPS_DONE or remaining <= 0:
            return event


def _advance_and_flip(
    session: DebugSession, plan: InjectionPlan, tracer=NULL_TRACER
) -> tuple[int, tuple[str, int]] | None:
    """Run to the injection point and apply the flip.

    Returns (target_pc, target_reg), or None if the program halted before
    an eligible instruction appeared.  The pre-injection path is the golden
    path, so traps are impossible here by construction.

    The session may already be part-way down the golden path (restored
    from a snapshot-ladder rung); only the remaining prefix is replayed.
    """
    cpu = session.process.cpu
    remaining = plan.dyn_index - 1 - cpu.instret
    if remaining < 0:
        raise InjectionError(
            f"session already past the injection point "
            f"(instret={cpu.instret}, dyn_index={plan.dyn_index})"
        )
    if remaining > 0:
        if tracer.probe_interval > 0:
            event = _probed_steps(session, remaining, tracer)
        else:
            event = session.run_steps(remaining)
        if event.kind == STOP_EXITED:
            return None
        if event.kind != STOP_STEPS_DONE:
            raise InjectionError(
                f"unexpected stop {event.kind!r} on the golden prefix"
            )
    instrs = session.process.program.instrs
    while True:
        pc = cpu.pc
        if not 0 <= pc < len(instrs):
            # A malformed image can step to a pc outside it without
            # trapping until the next fetch; surface that as a golden-path
            # failure instead of an IndexError (or a bogus negative-index
            # fetch) on the line below.
            raise InjectionError(
                f"golden prefix walked off the image (pc={pc})"
            )
        instr = instrs[pc]
        event = session.run_steps(1)
        if event.kind == STOP_TRAP:  # pragma: no cover - golden path
            raise InjectionError(f"golden prefix trapped: {event.trap}")
        target = select_target(instr, plan.reg_choice)
        if target is not None:
            for bit in plan.bits:
                flip_bit(cpu, target[0], target[1], bit)
            return pc, target
        if event.kind == STOP_EXITED:
            return None


def _cont_watchdog(
    session: DebugSession, budget: int, deadline: float | None
) -> tuple[StopEvent, bool]:
    """``session.cont(budget)`` with an optional wall-clock deadline.

    Returns (event, timed_out).  With no deadline this is exactly one
    ``cont`` call; with one, the budget is consumed in watchdog slices and
    the clock checked between them, so an expired run surfaces as a
    budget-style stop at the next slice boundary.
    """
    if deadline is None:
        return session.cont(budget), False
    remaining = budget
    while True:
        if perf_counter() >= deadline:
            return (
                StopEvent(STOP_BUDGET, 0, pc=session.process.cpu.pc),
                True,
            )
        event = session.cont(min(remaining, WATCHDOG_SLICE))
        remaining -= event.steps
        if event.kind != STOP_BUDGET or remaining <= 0:
            return event, False


def run_injection(
    app: MiniApp,
    plan: InjectionPlan,
    config: LetGoConfig | None = None,
    *,
    session: DebugSession | None = None,
    wall_clock_limit: float | None = None,
    backend: str | None = None,
    tracer=None,
) -> InjectionResult:
    """Execute one injection run; ``config=None`` is the no-LetGo baseline.

    ``session`` optionally supplies a pre-positioned golden-path session
    (e.g. restored from a snapshot-ladder rung at or before the plan's
    injection point); by default a fresh process is loaded and the whole
    prefix replayed.  Results are identical either way.

    ``wall_clock_limit`` caps the post-injection continuation in real
    seconds (the golden prefix is bounded by construction); expiry
    classifies as ``HANG`` with ``timed_out=True``.

    ``backend`` picks the execution engine for the freshly loaded process
    (ignored when *session* is supplied); outcomes are backend-invariant.

    ``tracer`` (a :class:`repro.telemetry.Tracer`) times the run's phases
    (``advance-to-site``, ``post-fault``, ``repair``, ``acceptance-check``)
    and tallies outcome / first-signal counters; the default null tracer
    costs nothing and never alters the result.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    deadline = (
        perf_counter() + wall_clock_limit
        if wall_clock_limit is not None
        else None
    )
    if session is None:
        session = DebugSession(app.load(backend))
    process = session.process
    with tracer.span("advance-to-site"):
        placed = _advance_and_flip(session, plan, tracer)
    if placed is None:
        result = InjectionResult(
            outcome=Outcome.NOT_INJECTED,
            plan=plan,
            steps=process.cpu.instret,
        )
    else:
        target_pc, target_reg = placed
        tracer.instant("flip", pc=target_pc, reg=target_reg[0])
        budget = max(app.max_steps - process.cpu.instret, 1)
        if config is None:
            result = _finish_baseline(
                app, session, plan, target_pc, target_reg, budget, deadline,
                tracer,
            )
        else:
            result = _finish_letgo(
                app, session, plan, target_pc, target_reg, budget, config,
                deadline, tracer,
            )
    tracer.count(f"outcome:{result.outcome.value}")
    if result.timed_out:
        tracer.count("timeout")
    if result.first_signal is not None:
        tracer.count(f"first-signal:{result.first_signal.name}")
    return result


def _finish_baseline(
    app: MiniApp,
    session: DebugSession,
    plan: InjectionPlan,
    target_pc: int,
    target_reg: tuple[str, int],
    budget: int,
    deadline: float | None = None,
    tracer=NULL_TRACER,
) -> InjectionResult:
    process = session.process
    with tracer.span("post-fault"):
        event, timed_out = _cont_watchdog(session, budget, deadline)
    if event.kind == STOP_TRAP:
        assert event.trap is not None
        session.deliver_default(event.trap)
        outcome: Outcome = Outcome.CRASH
        signal: Signal | None = event.trap.signal
    elif event.kind == STOP_EXITED:
        output = list(process.output)
        with tracer.span("acceptance-check"):
            outcome = classify_finished(
                passed_check=app.acceptance_check(output),
                matches_golden=app.matches_golden(output),
                continued=False,
            )
        signal = None
    else:
        outcome = Outcome.HANG
        signal = None
    return InjectionResult(
        outcome=outcome,
        plan=plan,
        target_pc=target_pc,
        target_reg=target_reg,
        first_signal=signal,
        steps=process.cpu.instret,
        timed_out=timed_out,
    )


def _finish_letgo(
    app: MiniApp,
    session: DebugSession,
    plan: InjectionPlan,
    target_pc: int,
    target_reg: tuple[str, int],
    budget: int,
    config: LetGoConfig,
    deadline: float | None = None,
    tracer=NULL_TRACER,
) -> InjectionResult:
    process = session.process
    with tracer.span("post-fault"):
        report = LetGoSession(config, app.functions).run(
            process, budget, deadline=deadline, tracer=tracer
        )
    if report.status == COMPLETED:
        output = list(process.output)
        with tracer.span("acceptance-check"):
            outcome = classify_finished(
                passed_check=app.acceptance_check(output),
                matches_golden=app.matches_golden(output),
                continued=report.intervened,
            )
    elif report.status == HUNG:
        outcome = Outcome.C_HANG if report.intervened else Outcome.HANG
    elif report.intervened:
        outcome = Outcome.DOUBLE_CRASH
    else:
        # first signal was outside LetGo's table (e.g. SIGFPE)
        outcome = Outcome.CRASH_UNHANDLED
    first_signal = (
        report.interventions[0].signal
        if report.intervened
        else report.final_signal
    )
    return InjectionResult(
        outcome=outcome,
        plan=plan,
        target_pc=target_pc,
        target_reg=target_reg,
        first_signal=first_signal,
        interventions=len(report.interventions),
        steps=process.cpu.instret,
        timed_out=report.timed_out,
    )


__all__ = ["InjectionResult", "run_injection"]
