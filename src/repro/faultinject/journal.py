"""Write-ahead campaign journal: durable, resumable injection campaigns.

The paper's thesis -- long-running work should survive failures instead of
restarting from zero -- applies to the campaign runner itself.  A
:class:`CampaignJournal` applies the checkpoint/restart discipline to the
engine: every completed shard is recorded durably *before* its results are
merged, so a campaign killed at 90% (worker OOM, wall-clock, Ctrl-C)
resumes from its journal and re-runs only the missing 10%.

Durability contract
-------------------
The journal is a single JSON document rewritten atomically on every
appended record (temp file in the same directory + fsync + ``os.replace``,
via :func:`~repro.faultinject.persistence.atomic_write_text`).  A reader
therefore always sees a complete, parseable journal: either the state
before the append or the state after, never a torn write.  Rewriting the
whole document keeps the format trivially recoverable; at campaign scale
the journal is small relative to the injection work it checkpoints.

Identity contract
-----------------
The header pins (app, config, n, seed) plus a SHA-256 digest of the full
plan list.  :meth:`CampaignJournal.verify` refuses to resume a campaign
whose parameters differ in any way, which is what makes a resumed result
bit-identical to an uninterrupted run: the plan population is provably the
same, and completed plans are never re-executed.

Every plan index may appear in the journal at most once, across completed
shards and quarantine records alike -- a duplicate (e.g. a journal edited
by hand, or two engines appending to one file) raises
:class:`~repro.errors.JournalError` instead of silently double-counting.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import JournalError
from repro.faultinject.fault_model import InjectionPlan
from repro.faultinject.injector import InjectionResult
from repro.faultinject.persistence import (
    atomic_write_text,
    plan_from_dict,
    plan_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.telemetry.tracer import NULL_TRACER

#: Format version written into every journal.
JOURNAL_FORMAT = 1


def plans_digest(plans: Sequence[InjectionPlan]) -> str:
    """SHA-256 over the canonical JSON encoding of *plans*.

    Pins the exact fault population a journal belongs to; (n, seed) alone
    would miss externally supplied plan lists.
    """
    payload = json.dumps(
        [plan_to_dict(p) for p in plans], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class JournalHeader:
    """Identity of the campaign a journal checkpoints."""

    app_name: str
    config_name: str
    n: int
    seed: int
    plans_sha256: str

    @classmethod
    def for_campaign(
        cls,
        app_name: str,
        config_name: str,
        n: int,
        seed: int,
        plans: Sequence[InjectionPlan],
    ) -> "JournalHeader":
        return cls(
            app_name=app_name,
            config_name=config_name,
            n=n,
            seed=seed,
            plans_sha256=plans_digest(plans),
        )

    def to_dict(self) -> dict:
        return {
            "app_name": self.app_name,
            "config_name": self.config_name,
            "n": self.n,
            "seed": self.seed,
            "plans_sha256": self.plans_sha256,
        }


@dataclass(frozen=True)
class QuarantineRecord:
    """One poison plan: persistently failing, excluded but never dropped."""

    index: int                  # position in the campaign's plan list
    plan: InjectionPlan
    error: str                  # repr of the final exception
    attempts: int               # executions before the engine gave up


class CampaignJournal:
    """Append-only record of completed shards and quarantined plans.

    Use :meth:`create` for a fresh campaign and :meth:`load` +
    :meth:`verify` to resume one; :meth:`record_shard` /
    :meth:`record_quarantine` persist durably before returning.
    """

    def __init__(self, path: str | Path, header: JournalHeader):
        self.path = Path(path)
        self.header = header
        #: Telemetry sink for append events; the engine swaps in its own
        #: tracer so durable-write latency shows up in the phase table.
        self.tracer = NULL_TRACER
        self._shards: list[tuple[tuple[int, ...], list[InjectionResult]]] = []
        self._quarantined: list[QuarantineRecord] = []
        self._seen: set[int] = set()

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls, path: str | Path, header: JournalHeader, overwrite: bool = False
    ) -> "CampaignJournal":
        """Start a fresh journal at *path* (written immediately)."""
        path = Path(path)
        if path.exists() and not overwrite:
            raise JournalError(
                f"journal {path} already exists; resume from it or remove it"
            )
        journal = cls(path, header)
        journal._flush()
        return journal

    @classmethod
    def load(cls, path: str | Path) -> "CampaignJournal":
        """Read a journal back, validating format and uniqueness."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise JournalError(f"no journal at {path}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise JournalError(f"unreadable journal {path}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != JOURNAL_FORMAT:
            raise JournalError(
                f"unsupported journal format {payload.get('format')!r} in {path}"
                if isinstance(payload, dict)
                else f"journal {path} is not a JSON object"
            )
        try:
            header = JournalHeader(**payload["header"])
            journal = cls(path, header)
            for shard in payload.get("shards", []):
                indices = [int(i) for i in shard["indices"]]
                results = [result_from_dict(r) for r in shard["results"]]
                journal._admit_shard(indices, results)
            for record in payload.get("quarantined", []):
                journal._admit_quarantine(
                    QuarantineRecord(
                        index=int(record["index"]),
                        plan=plan_from_dict(record["plan"]),
                        error=record["error"],
                        attempts=int(record.get("attempts", 1)),
                    )
                )
        except JournalError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"malformed journal {path}: {exc!r}") from exc
        return journal

    def verify(self, header: JournalHeader) -> None:
        """Refuse to resume a journal from a different campaign."""
        if header == self.header:
            return
        mismatches = [
            f"{name}: journal={ours!r} run={theirs!r}"
            for name, ours, theirs in (
                ("app", self.header.app_name, header.app_name),
                ("config", self.header.config_name, header.config_name),
                ("n", self.header.n, header.n),
                ("seed", self.header.seed, header.seed),
                ("plans", self.header.plans_sha256, header.plans_sha256),
            )
            if ours != theirs
        ]
        raise JournalError(
            f"journal {self.path} belongs to a different campaign "
            f"({'; '.join(mismatches)})"
        )

    # -- appends (durable before returning) --------------------------------

    def record_shard(
        self, indices: Iterable[int], results: Sequence[InjectionResult]
    ) -> None:
        """Durably journal one completed shard."""
        self._admit_shard(list(indices), list(results))
        with self.tracer.span("journal-append"):
            self._flush()

    def record_quarantine(
        self, index: int, plan: InjectionPlan, error: str, attempts: int
    ) -> None:
        """Durably journal one poison plan."""
        self._admit_quarantine(
            QuarantineRecord(index=index, plan=plan, error=error, attempts=attempts)
        )
        with self.tracer.span("journal-append"):
            self._flush()

    def _claim(self, indices: Iterable[int]) -> None:
        for index in indices:
            if index in self._seen:
                raise JournalError(
                    f"plan {index} appears twice in journal {self.path}; "
                    f"refusing to double-count"
                )
            if not 0 <= index < self.header.n:
                raise JournalError(
                    f"plan index {index} outside campaign of n={self.header.n}"
                )
            self._seen.add(index)

    def _admit_shard(
        self, indices: list[int], results: list[InjectionResult]
    ) -> None:
        if len(indices) != len(results):
            raise JournalError(
                f"shard with {len(indices)} indices but {len(results)} results"
            )
        self._claim(indices)
        self._shards.append((tuple(indices), results))

    def _admit_quarantine(self, record: QuarantineRecord) -> None:
        self._claim((record.index,))
        self._quarantined.append(record)

    # -- views -------------------------------------------------------------

    @property
    def completed_indices(self) -> frozenset[int]:
        """Plan indices with a journaled result."""
        return frozenset(i for indices, _ in self._shards for i in indices)

    @property
    def quarantined(self) -> tuple[QuarantineRecord, ...]:
        """Poison plans, in quarantine order."""
        return tuple(self._quarantined)

    @property
    def settled_indices(self) -> frozenset[int]:
        """Every index that must not be re-run: completed or quarantined."""
        return frozenset(self._seen)

    def pairs(self) -> list[tuple[int, InjectionResult]]:
        """All journaled (index, result) pairs, sorted by index."""
        out = [
            (index, result)
            for indices, results in self._shards
            for index, result in zip(indices, results)
        ]
        out.sort(key=lambda pair: pair[0])
        return out

    # -- serialization -----------------------------------------------------

    def _flush(self) -> None:
        payload = {
            "format": JOURNAL_FORMAT,
            "header": self.header.to_dict(),
            "shards": [
                {
                    "indices": list(indices),
                    "results": [result_to_dict(r) for r in results],
                }
                for indices, results in self._shards
            ],
            "quarantined": [
                {
                    "index": record.index,
                    "plan": plan_to_dict(record.plan),
                    "error": record.error,
                    "attempts": record.attempts,
                }
                for record in self._quarantined
            ],
        }
        atomic_write_text(self.path, json.dumps(payload, indent=1))


__all__ = [
    "CampaignJournal",
    "JournalHeader",
    "QuarantineRecord",
    "plans_digest",
    "JOURNAL_FORMAT",
]
