"""Fault-injection framework (paper section 5).

Single-bit-flip injection into the destination register of a uniformly
chosen dynamic instruction, with Figure-4 outcome classification, campaign
aggregation, and the Eq. 1-4 effectiveness metrics.
"""

from repro.faultinject.campaign import (
    CampaignConfig,
    CampaignResult,
    add_campaign_arguments,
    campaign_config_from_args,
    run_campaign,
    run_paired_campaigns,
)
from repro.faultinject.engine import (
    NO_LADDER,
    CampaignEngine,
    EngineStats,
    run_campaign_engine,
)
from repro.faultinject.fault_model import (
    InjectionPlan,
    flip_bit,
    plan_injections,
    select_target,
)
from repro.faultinject.injector import InjectionResult, run_injection
from repro.faultinject.journal import (
    CampaignJournal,
    JournalHeader,
    QuarantineRecord,
    plans_digest,
)
from repro.faultinject.metrics import (
    LetGoMetrics,
    Proportion,
    compute_metrics,
    crash_probability,
    overall_sdc_rate,
    proportion,
)
from repro.faultinject.outcomes import (
    FINISHED_OUTCOMES,
    LETGO_CRASH_OUTCOMES,
    Outcome,
    classify_finished,
)
from repro.faultinject.persistence import (
    atomic_write_text,
    campaign_from_json,
    campaign_to_json,
    load_campaign,
    merge_campaigns,
    save_campaign,
)
from repro.faultinject.sites import (
    INSTR_CLASSES,
    SiteReport,
    analyze_sites,
    classify_op,
)

__all__ = [
    "InjectionPlan",
    "plan_injections",
    "select_target",
    "flip_bit",
    "InjectionResult",
    "run_injection",
    "CampaignConfig",
    "CampaignResult",
    "add_campaign_arguments",
    "campaign_config_from_args",
    "run_campaign",
    "run_paired_campaigns",
    "CampaignEngine",
    "EngineStats",
    "run_campaign_engine",
    "NO_LADDER",
    "Outcome",
    "FINISHED_OUTCOMES",
    "LETGO_CRASH_OUTCOMES",
    "classify_finished",
    "LetGoMetrics",
    "Proportion",
    "proportion",
    "compute_metrics",
    "overall_sdc_rate",
    "crash_probability",
    "SiteReport",
    "analyze_sites",
    "classify_op",
    "INSTR_CLASSES",
    "campaign_to_json",
    "campaign_from_json",
    "save_campaign",
    "load_campaign",
    "merge_campaigns",
    "atomic_write_text",
    "CampaignJournal",
    "JournalHeader",
    "QuarantineRecord",
    "plans_digest",
]
