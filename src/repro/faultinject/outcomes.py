"""Fault-outcome taxonomy (paper Figure 4).

Top split: did the run *crash* (receive a crash-causing signal) or finish?
Finished runs break down by the application acceptance check and a bitwise
golden comparison; crash-origin runs under LetGo break down by whether the
continuation completed and what it produced.

The paper's "Double crash" column absorbs every crash LetGo could not
convert into a completed run; we keep three distinct reasons
(:data:`DOUBLE_CRASH`, :data:`CRASH_UNHANDLED`, :data:`C_HANG`) and
provide :meth:`Outcome.folds_to_double_crash` for Table-3 accounting.
Hangs of *non*-crash origin get their own bucket (the paper notes they are
rare; they are, here too).
"""

from __future__ import annotations

from enum import Enum


class Outcome(Enum):
    """Leaf classification of one fault-injection run."""

    # -- finished, no crash signal ever raised ---------------------------
    BENIGN = "benign"            # passed checks, bitwise-identical to golden
    SDC = "sdc"                  # passed checks, output differs from golden
    DETECTED = "detected"        # acceptance check caught the corruption
    HANG = "hang"                # never finished (budget exhausted), no crash

    # -- crash-causing error, baseline (no LetGo) ---------------------------
    CRASH = "crash"              # default disposition: terminated

    # -- crash-causing error, LetGo engaged -----------------------------
    DOUBLE_CRASH = "double-crash"        # repaired, crashed again, gave up
    CRASH_UNHANDLED = "crash-unhandled"  # signal outside LetGo's table
    C_BENIGN = "c-benign"        # continued; correct output
    C_SDC = "c-sdc"              # continued; undetected wrong output
    C_DETECTED = "c-detected"    # continued; acceptance check caught it
    C_HANG = "c-hang"            # continued but never finished

    # -- degenerate -------------------------------------------------------
    NOT_INJECTED = "not-injected"  # run ended before any eligible target

    # -- taxonomy helpers ---------------------------------------------------

    @property
    def crash_origin(self) -> bool:
        """True if the underlying fault raised a crash-causing signal."""
        return self in _CRASH_ORIGIN

    @property
    def continued(self) -> bool:
        """True if LetGo successfully continued the run to completion."""
        return self in (Outcome.C_BENIGN, Outcome.C_SDC, Outcome.C_DETECTED)

    @property
    def is_sdc(self) -> bool:
        """Undetected wrong output (with or without LetGo continuation)."""
        return self in (Outcome.SDC, Outcome.C_SDC)

    @property
    def folds_to_double_crash(self) -> bool:
        """True for crash-origin runs LetGo failed to convert (Table 3)."""
        return self in (
            Outcome.DOUBLE_CRASH,
            Outcome.CRASH_UNHANDLED,
            Outcome.C_HANG,
        )


_CRASH_ORIGIN = frozenset(
    {
        Outcome.CRASH,
        Outcome.DOUBLE_CRASH,
        Outcome.CRASH_UNHANDLED,
        Outcome.C_BENIGN,
        Outcome.C_SDC,
        Outcome.C_DETECTED,
        Outcome.C_HANG,
    }
)

#: Finished-branch outcomes (Figure 4, left subtree).
FINISHED_OUTCOMES = (Outcome.DETECTED, Outcome.BENIGN, Outcome.SDC)

#: Crash-branch outcomes under LetGo (Figure 4, right subtree).
LETGO_CRASH_OUTCOMES = (
    Outcome.DOUBLE_CRASH,
    Outcome.CRASH_UNHANDLED,
    Outcome.C_DETECTED,
    Outcome.C_BENIGN,
    Outcome.C_SDC,
    Outcome.C_HANG,
)


def classify_finished(
    passed_check: bool, matches_golden: bool, continued: bool
) -> Outcome:
    """Leaf for a run that reached HALT (Figure 4 left/right-lower split)."""
    if not passed_check:
        return Outcome.C_DETECTED if continued else Outcome.DETECTED
    if matches_golden:
        return Outcome.C_BENIGN if continued else Outcome.BENIGN
    return Outcome.C_SDC if continued else Outcome.SDC


__all__ = [
    "Outcome",
    "FINISHED_OUTCOMES",
    "LETGO_CRASH_OUTCOMES",
    "classify_finished",
]
