"""Campaign persistence: JSON round trips for results and plans.

Large campaigns are the expensive artifact of this package; saving them
lets reports (Table 3, Figure 5, fault-site analysis) be regenerated and
extended without re-running injections, and makes results shareable.

All saves go through :func:`atomic_write_text` (write to a temp file in
the destination directory, then ``os.replace``), so an interrupted save
can never leave a corrupt or truncated file behind -- the reader sees
either the old contents or the new, never a prefix.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.faultinject.campaign import CampaignResult
from repro.faultinject.fault_model import InjectionPlan
from repro.faultinject.injector import InjectionResult
from repro.faultinject.outcomes import Outcome
from repro.machine.signals import Signal

#: Format version written into every file.
FORMAT_VERSION = 1


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Durably replace *path* with *text*: temp file + fsync + rename.

    The temp file lives in the destination directory so the final
    ``os.replace`` is atomic (same filesystem); on any failure the temp
    file is removed and the original *path* is untouched.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def plan_to_dict(plan: InjectionPlan) -> dict:
    """JSON-safe dict for one :class:`InjectionPlan`."""
    return {
        "dyn_index": plan.dyn_index,
        "bit": plan.bit,
        "reg_choice": plan.reg_choice,
        "extra_bits": list(plan.extra_bits),
    }


def plan_from_dict(data: dict) -> InjectionPlan:
    """Inverse of :func:`plan_to_dict`."""
    return InjectionPlan(
        dyn_index=data["dyn_index"],
        bit=data["bit"],
        reg_choice=data["reg_choice"],
        extra_bits=tuple(data.get("extra_bits", ())),
    )


def result_to_dict(result: InjectionResult) -> dict:
    """JSON-safe dict for one :class:`InjectionResult`."""
    return {
        "outcome": result.outcome.value,
        "plan": plan_to_dict(result.plan),
        "target_pc": result.target_pc,
        "target_reg": list(result.target_reg) if result.target_reg else None,
        "first_signal": result.first_signal.name if result.first_signal else None,
        "interventions": result.interventions,
        "steps": result.steps,
        "timed_out": result.timed_out,
    }


def result_from_dict(data: dict) -> InjectionResult:
    """Inverse of :func:`result_to_dict`."""
    target = data.get("target_reg")
    signal = data.get("first_signal")
    return InjectionResult(
        outcome=Outcome(data["outcome"]),
        plan=plan_from_dict(data["plan"]),
        target_pc=data.get("target_pc"),
        target_reg=(target[0], target[1]) if target else None,
        first_signal=Signal[signal] if signal else None,
        interventions=data.get("interventions", 0),
        steps=data.get("steps", 0),
        timed_out=data.get("timed_out", False),
    )


# Backwards-compatible private aliases (pre-journal spelling).
_plan_to_dict = plan_to_dict
_plan_from_dict = plan_from_dict
_result_to_dict = result_to_dict
_result_from_dict = result_from_dict


def campaign_to_json(campaign: CampaignResult) -> str:
    """Serialize a campaign (including per-run records if kept)."""
    payload = {
        "format": FORMAT_VERSION,
        "app_name": campaign.app_name,
        "config_name": campaign.config_name,
        "n": campaign.n,
        "counts": {o.value: c for o, c in campaign.counts.items()},
        "results": [result_to_dict(r) for r in campaign.results],
    }
    return json.dumps(payload, indent=1)


def campaign_from_json(text: str) -> CampaignResult:
    """Inverse of :func:`campaign_to_json`."""
    payload = json.loads(text)
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported campaign format {payload.get('format')!r}")
    return CampaignResult(
        app_name=payload["app_name"],
        config_name=payload["config_name"],
        n=payload["n"],
        counts={Outcome(k): v for k, v in payload["counts"].items()},
        results=[result_from_dict(r) for r in payload.get("results", [])],
    )


def save_campaign(campaign: CampaignResult, path: str | Path) -> Path:
    """Atomically write a campaign to *path*."""
    return atomic_write_text(path, campaign_to_json(campaign))


def load_campaign(path: str | Path) -> CampaignResult:
    """Read a campaign from *path*."""
    return campaign_from_json(Path(path).read_text())


def merge_campaigns(*campaigns: CampaignResult) -> CampaignResult:
    """Pool several campaigns of the same (app, config) into one.

    Useful for growing a campaign incrementally across sessions (run with
    different seeds, merge, report tighter error bars).
    """
    return CampaignResult.merge(campaigns)


__all__ = [
    "atomic_write_text",
    "plan_to_dict",
    "plan_from_dict",
    "result_to_dict",
    "result_from_dict",
    "campaign_to_json",
    "campaign_from_json",
    "save_campaign",
    "load_campaign",
    "merge_campaigns",
    "FORMAT_VERSION",
]
