"""Effectiveness metrics (paper section 5.3, equations 1-4) + error bars.

All four metrics are conditional on the *Crash* population (runs whose
fault raised a crash-causing signal)::

    Continuability     = (C-Pass-check + C-Detected) / Crash      (Eq. 1)
    Continued_detected = C-Detected / Crash                       (Eq. 2)
    Continued_correct  = C-Benign / Crash                         (Eq. 3)
    Continued_SDC      = C-SDC / Crash                            (Eq. 4)

Continuability = Continued_detected + Continued_correct + Continued_SDC
holds by construction.  Error bars are normal-approximation binomial
confidence intervals at 95%, as the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt

from scipy import stats

from repro.faultinject.outcomes import Outcome


@dataclass(frozen=True)
class Proportion:
    """A binomial estimate with its confidence half-width."""

    value: float
    half_width: float
    numerator: int
    denominator: int

    def __str__(self) -> str:
        return f"{self.value:.3%} ± {self.half_width:.3%}"


def proportion(numerator: int, denominator: int, confidence: float = 0.95) -> Proportion:
    """Normal-approximation binomial proportion with CI half-width."""
    if denominator <= 0:
        return Proportion(0.0, 0.0, numerator, denominator)
    p = numerator / denominator
    z = stats.norm.ppf(0.5 + confidence / 2.0)
    half = z * sqrt(max(p * (1.0 - p), 0.0) / denominator)
    return Proportion(p, half, numerator, denominator)


@dataclass(frozen=True)
class LetGoMetrics:
    """The four Eq. 1-4 metrics for one campaign."""

    continuability: Proportion
    continued_detected: Proportion
    continued_correct: Proportion
    continued_sdc: Proportion
    crash_count: int
    total: int

    @property
    def crash_rate(self) -> Proportion:
        """Fraction of all faults that raised a crash signal."""
        return proportion(self.crash_count, self.total)


def compute_metrics(counts: dict[Outcome, int]) -> LetGoMetrics:
    """Eqs. 1-4 from an outcome histogram of a LetGo campaign."""
    total = sum(counts.values())
    crash = sum(n for outcome, n in counts.items() if outcome.crash_origin)
    c_detected = counts.get(Outcome.C_DETECTED, 0)
    c_benign = counts.get(Outcome.C_BENIGN, 0)
    c_sdc = counts.get(Outcome.C_SDC, 0)
    continued = c_detected + c_benign + c_sdc
    return LetGoMetrics(
        continuability=proportion(continued, crash),
        continued_detected=proportion(c_detected, crash),
        continued_correct=proportion(c_benign, crash),
        continued_sdc=proportion(c_sdc, crash),
        crash_count=crash,
        total=total,
    )


def overall_sdc_rate(counts: dict[Outcome, int]) -> Proportion:
    """SDCs (undetected wrong results) as a fraction of all injections.

    With LetGo this includes both the original SDCs and those introduced
    by continuation -- the quantity the paper tracks as "the increase in
    the SDC rate".
    """
    total = sum(counts.values())
    sdc = sum(n for outcome, n in counts.items() if outcome.is_sdc)
    return proportion(sdc, total)


def crash_probability(counts: dict[Outcome, int]) -> Proportion:
    """P_crash: probability that a fault crashes the application.

    Feeds the C/R simulation's per-application parameters (Table 4).
    """
    total = sum(counts.values())
    crash = sum(n for outcome, n in counts.items() if outcome.crash_origin)
    return proportion(crash, total)


__all__ = [
    "Proportion",
    "proportion",
    "LetGoMetrics",
    "compute_metrics",
    "overall_sdc_rate",
    "crash_probability",
]
