"""LetGo session: run a process to completion under LetGo supervision.

This is the public entry point of the core package.  It wires together the
monitor (signal interception) and the modifier (state repair) around a
debug session, implementing the full Figure-3 interaction loop:

1. attach, configure signal handling;
2. run; on an intercepted signal, stop;
3. repair state, advance the PC;
4. resume; a *second* crash (or an unhandled signal) terminates the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.analysis.functions import FunctionTable
from repro.core.config import LetGoConfig
from repro.core.modifier import InterventionRecord, Modifier
from repro.core.monitor import Monitor
from repro.machine.debugger import STOP_BUDGET, STOP_EXITED, STOP_TRAP
from repro.machine.process import Process
from repro.machine.signals import Signal
from repro.telemetry.tracer import NULL_TRACER

#: Final status values of a LetGo-supervised run.
COMPLETED = "completed"      # program halted cleanly
TERMINATED = "terminated"    # killed by a signal LetGo did not (re)handle
HUNG = "hung"                # instruction budget (or wall-clock deadline) exhausted

#: Instructions run between wall-clock deadline checks (~tens of ms of
#: interpreted execution); only used when a deadline is supplied, so
#: deadline-free runs stay bit-for-bit deterministic.
WATCHDOG_SLICE = 1 << 18


@dataclass
class LetGoRunReport:
    """Everything observable about one supervised run."""

    status: str
    steps: int
    interventions: list[InterventionRecord] = field(default_factory=list)
    final_signal: Signal | None = None
    exit_code: int | None = None
    output: list[tuple[str, int | float]] = field(default_factory=list)
    timed_out: bool = False      # HUNG because the wall-clock deadline passed

    @property
    def intervened(self) -> bool:
        """True if LetGo elided at least one crash."""
        return bool(self.interventions)

    @property
    def gave_up(self) -> bool:
        """True if LetGo intervened but the program still died (double crash)."""
        return self.status == TERMINATED and self.intervened

    def repair_seconds(self) -> float:
        """Total wall-clock time spent inside the modifier."""
        return sum(r.repair_seconds for r in self.interventions)


class LetGoSession:
    """Supervise processes of one program image under a LetGo config.

    The function table is computed once (the paper's one-time PIN pass)
    and shared across runs.
    """

    def __init__(self, config: LetGoConfig, functions: FunctionTable):
        self.config = config
        self.monitor = Monitor(config)
        self.modifier = Modifier(config, functions)

    def run(
        self,
        process: Process,
        max_steps: int,
        *,
        deadline: float | None = None,
        tracer=None,
    ) -> LetGoRunReport:
        """Run *process* under LetGo until exit, death, budget, or deadline.

        ``deadline`` is an absolute :func:`~time.perf_counter` instant: a
        wall-clock watchdog complementing the instruction budget, so a
        pathological repaired run (e.g. a corrupted loop bound far beyond
        the budget's intent) cannot stall its host forever.  When set, the
        budget is consumed in :data:`WATCHDOG_SLICE` chunks and the clock
        is checked between chunks; expiry reports ``HUNG`` with
        ``timed_out=True``.  ``None`` (the default) keeps runs fully
        deterministic.

        ``tracer`` (a :class:`repro.telemetry.Tracer`) records per-repair
        spans plus signal-disposition and heuristic-firing counters; the
        default null tracer costs nothing and never alters control flow.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        session = self.monitor.attach(process)
        interventions: list[InterventionRecord] = []
        remaining = max_steps
        total_steps = 0
        while True:
            if deadline is not None and perf_counter() >= deadline:
                return LetGoRunReport(
                    status=HUNG,
                    steps=total_steps,
                    interventions=interventions,
                    output=list(process.output),
                    timed_out=True,
                )
            chunk = (
                remaining
                if deadline is None
                else min(remaining, WATCHDOG_SLICE)
            )
            event = session.cont(chunk)
            total_steps += event.steps
            remaining -= event.steps
            if event.kind == STOP_EXITED:
                return LetGoRunReport(
                    status=COMPLETED,
                    steps=total_steps,
                    interventions=interventions,
                    exit_code=process.exit_code,
                    output=list(process.output),
                )
            if event.kind == STOP_BUDGET:
                if remaining > 0:
                    continue  # artificial watchdog-slice boundary, not a hang
                return LetGoRunReport(
                    status=HUNG,
                    steps=total_steps,
                    interventions=interventions,
                    output=list(process.output),
                )
            assert event.kind == STOP_TRAP and event.trap is not None
            trap = event.trap
            intercepted = self.monitor.intercepts(trap.signal)
            tracer.count(
                f"signal:{trap.signal.name}:"
                + ("intercept" if intercepted else "default")
            )
            can_repair = (
                intercepted
                and len(interventions) < self.config.max_interventions
                and remaining > 0
            )
            if not can_repair:
                session.deliver_default(trap)
                return LetGoRunReport(
                    status=TERMINATED,
                    steps=total_steps,
                    interventions=interventions,
                    final_signal=trap.signal,
                    output=list(process.output),
                )
            with tracer.span("repair"):
                record = self.modifier.repair(session, trap)
            interventions.append(record)
            tracer.count("intervention")
            if record.h1_fired:
                tracer.count("heuristic:H1")
            if record.h2_fired:
                tracer.count("heuristic:H2")


def run_under_letgo(
    process: Process,
    config: LetGoConfig,
    functions: FunctionTable,
    max_steps: int,
) -> LetGoRunReport:
    """One-shot convenience wrapper around :class:`LetGoSession`."""
    return LetGoSession(config, functions).run(process, max_steps)


__all__ = [
    "LetGoSession",
    "LetGoRunReport",
    "run_under_letgo",
    "COMPLETED",
    "TERMINATED",
    "HUNG",
    "WATCHDOG_SLICE",
]
