"""LetGo configuration: which heuristics run, which signals are elided.

The paper evaluates two variants:

* **LetGo-B(asic)**  -- intercept the signal and advance the PC, nothing else;
* **LetGo-E(nhanced)** -- additionally apply Heuristic I (feed faulted loads a
  fill value, skip stores) and Heuristic II (detect and repair corrupted
  ``sp``/``bp`` from the function's static frame size).

Per-heuristic toggles (H1-only / H2-only) are exposed for the ablation
benches, and the Heuristic-I fill value is configurable (the paper uses 0
and calls fancier choices future work).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.signals import LETGO_DEFAULT_SIGNALS, Signal


@dataclass(frozen=True)
class LetGoConfig:
    """One LetGo variant.

    ``max_interventions`` is 1 in the paper: LetGo repairs the first crash;
    if the application crashes again it is allowed to die ("double crash").
    """

    name: str
    heuristic1: bool = True
    heuristic2: bool = True
    fill_int: int = 0
    fill_float: float = 0.0
    handled_signals: frozenset[Signal] = field(default=LETGO_DEFAULT_SIGNALS)
    max_interventions: int = 1
    #: Heuristic-II slack: how many bytes of callee pushes beyond the frame
    #: the sp/bp relationship check tolerates.
    frame_slack: int = 4096

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [self.name]
        parts.append(f"H1={'on' if self.heuristic1 else 'off'}")
        parts.append(f"H2={'on' if self.heuristic2 else 'off'}")
        signals = ",".join(s.name for s in sorted(self.handled_signals))
        parts.append(f"signals={signals}")
        return " ".join(parts)


#: The paper's basic variant: PC advance only.
LETGO_B = LetGoConfig(name="LetGo-B", heuristic1=False, heuristic2=False)

#: The paper's enhanced variant: both heuristics.
LETGO_E = LetGoConfig(name="LetGo-E", heuristic1=True, heuristic2=True)

#: Ablations (not in the paper; used by bench_ablation_heuristics).
LETGO_H1 = LetGoConfig(name="LetGo-H1", heuristic1=True, heuristic2=False)
LETGO_H2 = LetGoConfig(name="LetGo-H2", heuristic1=False, heuristic2=True)

#: All named variants, for sweeps.
VARIANTS: dict[str, LetGoConfig] = {
    c.name: c for c in (LETGO_B, LETGO_E, LETGO_H1, LETGO_H2)
}

__all__ = ["LetGoConfig", "LETGO_B", "LETGO_E", "LETGO_H1", "LETGO_H2", "VARIANTS"]
