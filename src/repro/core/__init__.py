"""LetGo core: monitor + modifier + heuristics + session runner.

The paper's primary contribution.  ``run_under_letgo`` takes a loaded
process and continues it across crash-causing errors instead of letting
the OS kill it, per the configured variant (LetGo-B / LetGo-E / ablations).
"""

from repro.core.config import (
    LETGO_B,
    LETGO_E,
    LETGO_H1,
    LETGO_H2,
    VARIANTS,
    LetGoConfig,
)
from repro.core.heuristics import (
    HeuristicReport,
    RepairAction,
    apply_heuristic1,
    apply_heuristic2,
)
from repro.core.modifier import InterventionRecord, Modifier
from repro.core.monitor import Monitor, SignalPolicy
from repro.core.session import (
    COMPLETED,
    HUNG,
    TERMINATED,
    LetGoRunReport,
    LetGoSession,
    run_under_letgo,
)

__all__ = [
    "LetGoConfig",
    "LETGO_B",
    "LETGO_E",
    "LETGO_H1",
    "LETGO_H2",
    "VARIANTS",
    "Monitor",
    "SignalPolicy",
    "Modifier",
    "InterventionRecord",
    "HeuristicReport",
    "RepairAction",
    "apply_heuristic1",
    "apply_heuristic2",
    "LetGoSession",
    "LetGoRunReport",
    "run_under_letgo",
    "COMPLETED",
    "TERMINATED",
    "HUNG",
]
