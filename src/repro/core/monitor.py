"""The LetGo monitor: signal-table management (paper Table 1, section 4.1).

The monitor is the component "attached to the application at startup": it
re-defines the behaviour of crash signals from *terminate* to *stop and
hand control to the modifier*, exactly what the original does with gdb's
``handle SIGSEGV stop nopass``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import LetGoConfig
from repro.machine.debugger import DebugSession
from repro.machine.process import Process
from repro.machine.signals import Signal, Trap


@dataclass(frozen=True)
class SignalPolicy:
    """Disposition of one signal under the monitor (a Table-1 row)."""

    signal: Signal
    stop: bool             # program stops (monitor takes control)
    pass_to_program: bool  # signal delivered to the program (kills it)
    description: str

    def row(self) -> tuple[str, str, str, str]:
        """(signal, stop, pass, description) formatted like Table 1."""
        return (
            self.signal.name,
            "Yes" if self.stop else "No",
            "Yes" if self.pass_to_program else "No",
            self.description,
        )


_DESCRIPTIONS = {
    Signal.SIGSEGV: "Segfault",
    Signal.SIGBUS: "Bus error",
    Signal.SIGABRT: "Aborted",
    Signal.SIGFPE: "FP/div exception",
}


class Monitor:
    """Installs LetGo's signal handling over a process.

    Use :meth:`attach` to get a :class:`DebugSession` whose traps the
    monitor classifies via :meth:`intercepts`.
    """

    def __init__(self, config: LetGoConfig):
        self.config = config

    def attach(self, process: Process) -> DebugSession:
        """Attach to *process* (the gdb 'run inside the debugger' step)."""
        return DebugSession(process)

    def intercepts(self, signal: Signal) -> bool:
        """True if this signal stops the program for repair."""
        return signal in self.config.handled_signals

    def policy_for(self, signal: Signal) -> SignalPolicy:
        """The monitor's disposition for *signal*."""
        handled = self.intercepts(signal)
        return SignalPolicy(
            signal=signal,
            stop=handled,
            pass_to_program=not handled,
            description=_DESCRIPTIONS.get(signal, signal.name),
        )

    def signal_table(self) -> list[SignalPolicy]:
        """All modelled signals with their dispositions (Table 1 + SIGFPE)."""
        return [self.policy_for(s) for s in Signal]

    def classify(self, trap: Trap) -> str:
        """'intercept' if the monitor takes control, else 'default'."""
        return "intercept" if self.intercepts(trap.signal) else "default"


__all__ = ["Monitor", "SignalPolicy"]
