"""LetGo's two state-repair heuristics (paper section 4.2).

Heuristic I -- faulted memory operations:
    If the crash-causing instruction is a *load*, the destination register
    never received its value; feed it a fill value (0 by default, "because
    the memory often contains a lot of 0s as initialization data").  If it
    is a *store*, the memory cell simply keeps its old value; do nothing.

Heuristic II -- corrupted stack/base pointer:
    If a fault lands in ``sp`` or ``bp``, continuing execution tends to
    fault again and again because those registers are used by nearly every
    instruction in a frame.  Static analysis recovers the frame size ``N``
    from the function prologue, which bounds the legal relationship
    ``N <= bp - sp <= N + slack`` (the slack covers transient pushes); both
    registers must also point into the stack segment.  When the invariant
    is violated, the register *used by the faulting instruction* is assumed
    corrupt and recomputed from the other one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.functions import FunctionTable
from repro.errors import AnalysisError
from repro.isa.instructions import Instr, Op
from repro.isa.layout import STACK_LIMIT, STACK_TOP
from repro.isa.registers import BP, SP, fp_reg_name, int_reg_name
from repro.machine.process import Process
from repro.machine.signals import Trap


@dataclass
class RepairAction:
    """One concrete state edit made during repair."""

    kind: str        # 'fill-load' | 'skip-store' | 'fix-bp' | 'fix-sp' | ...
    description: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.description}"


@dataclass
class HeuristicReport:
    """What the heuristics did for one intervention."""

    h1_fired: bool = False
    h2_fired: bool = False
    actions: list[RepairAction] = field(default_factory=list)


def _in_stack(value: int) -> bool:
    # sp == STACK_TOP is legal (empty stack); anything else must be inside.
    return STACK_LIMIT <= value <= STACK_TOP


def _clamp_stack(value: int) -> int:
    """Nearest address inside the stack segment."""
    return min(STACK_TOP, max(STACK_LIMIT, value))


def _frame_base_reg(instr: Instr) -> int | None:
    """Which of sp/bp the faulting instruction addresses memory through."""
    if instr.op in (Op.PUSH, Op.FPUSH, Op.POP, Op.FPOP, Op.CALL, Op.RET):
        return SP
    if instr.op in (
        Op.LD, Op.ST, Op.LDX, Op.STX, Op.FLD, Op.FST, Op.FLDX, Op.FSTX
    ):
        if instr.ra in (SP, BP):
            return instr.ra
        # Indexed forms can also be corrupted through the index register,
        # but Heuristic II only reasons about frame registers.
        if instr.op in (Op.LDX, Op.STX, Op.FLDX, Op.FSTX) and instr.rb in (SP, BP):
            return instr.rb
    return None


def apply_heuristic2(
    process: Process,
    trap: Trap,
    functions: FunctionTable,
    frame_slack: int,
    report: HeuristicReport,
) -> None:
    """Detect and repair an implausible sp/bp pair (detection + correction)."""
    instr = trap.instr
    if instr is None:
        return
    used = _frame_base_reg(instr)
    if used is None:
        return
    try:
        frame = functions.frame_size_at(trap.pc)
    except AnalysisError:
        return
    regs = process.cpu.iregs
    sp, bp = regs[SP], regs[BP]
    delta = bp - sp
    relationship_ok = frame <= delta <= frame + frame_slack
    plausible = _in_stack(sp) and _in_stack(bp) and relationship_ok
    if plausible:
        return
    report.h2_fired = True
    sp_ok = _in_stack(sp)
    bp_ok = _in_stack(bp)
    if bp_ok and not sp_ok:
        corrupt = SP
    elif sp_ok and not bp_ok:
        corrupt = BP
    else:
        # Both in range but relationship broken (or both wild): blame the
        # register the faulting instruction used, per the paper.
        corrupt = used
    # The anchor register the blamed one is recomputed from may itself be
    # wild (both-wild case): clamp it into the stack first, otherwise the
    # "repair" reproduces the corruption and guarantees a give-up double
    # crash.  After clamping, frame arithmetic from an anchor at a segment
    # edge can step just outside it, so the recomputed value is clamped
    # too.  An in-stack anchor is trusted as-is (Heuristic II's original
    # behaviour for the single-corruption case).
    if corrupt == BP:
        if not _in_stack(sp):
            clamped = _clamp_stack(sp)
            report.actions.append(
                RepairAction(
                    kind="clamp-sp",
                    description=f"sp 0x{sp:x} -> 0x{clamped:x} (wild anchor clamped into stack)",
                )
            )
            regs[SP] = sp = clamped
            new_bp = _clamp_stack(sp + frame)
        else:
            new_bp = sp + frame
        report.actions.append(
            RepairAction(
                kind="fix-bp",
                description=f"bp 0x{bp:x} -> sp+frame = 0x{new_bp:x} (frame={frame})",
            )
        )
        regs[BP] = new_bp
    else:
        if not _in_stack(bp):
            clamped = _clamp_stack(bp)
            report.actions.append(
                RepairAction(
                    kind="clamp-bp",
                    description=f"bp 0x{bp:x} -> 0x{clamped:x} (wild anchor clamped into stack)",
                )
            )
            regs[BP] = bp = clamped
            new_sp = _clamp_stack(bp - frame)
        else:
            new_sp = bp - frame
        report.actions.append(
            RepairAction(
                kind="fix-sp",
                description=f"sp 0x{sp:x} -> bp-frame = 0x{new_sp:x} (frame={frame})",
            )
        )
        regs[SP] = new_sp


def apply_heuristic1(
    process: Process,
    trap: Trap,
    fill_int: int,
    fill_float: float,
    report: HeuristicReport,
) -> None:
    """Feed faulted loads a fill value; leave faulted stores alone."""
    instr = trap.instr
    if instr is None:
        return
    if instr.is_load():
        written = instr.written_reg()
        if written is None:  # pragma: no cover - loads always write
            return
        bank, index = written
        report.h1_fired = True
        if bank == "f":
            process.cpu.fregs[index] = fill_float
            report.actions.append(
                RepairAction(
                    kind="fill-load",
                    description=f"{fp_reg_name(index)} <- {fill_float!r} (faulted load)",
                )
            )
        elif index in (SP, BP):
            # Never zero a frame register: that guarantees a second crash.
            # Heuristic II owns sp/bp repair; keep the old (plausible) value.
            report.actions.append(
                RepairAction(
                    kind="keep-frame-reg",
                    description=(
                        f"faulted load into {int_reg_name(index)} left unchanged "
                        "(frame registers are Heuristic II territory)"
                    ),
                )
            )
        else:
            process.cpu.iregs[index] = fill_int
            report.actions.append(
                RepairAction(
                    kind="fill-load",
                    description=f"{int_reg_name(index)} <- {fill_int} (faulted load)",
                )
            )
    elif instr.is_store():
        report.h1_fired = True
        report.actions.append(
            RepairAction(
                kind="skip-store",
                description="store skipped; memory keeps its previous value",
            )
        )


__all__ = [
    "RepairAction",
    "HeuristicReport",
    "apply_heuristic1",
    "apply_heuristic2",
]
