"""The LetGo modifier: repairs application state after an intercepted crash.

Step 4 of the paper's sequence diagram (Figure 3): move the program counter
past the crash-causing instruction and apply the heuristics that raise the
odds of a successful continuation.  Heuristic II runs first (a corrupted
``sp``/``bp`` would invalidate everything else), then Heuristic I, then the
PC advance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.functions import FunctionTable
from repro.core.config import LetGoConfig
from repro.core.heuristics import (
    HeuristicReport,
    RepairAction,
    apply_heuristic1,
    apply_heuristic2,
)
from repro.machine.debugger import DebugSession
from repro.machine.signals import Signal, Trap


@dataclass
class InterventionRecord:
    """One crash elision: what was trapped and what was repaired."""

    signal: Signal
    pc: int
    instr_text: str
    actions: list[RepairAction] = field(default_factory=list)
    h1_fired: bool = False
    h2_fired: bool = False
    repair_seconds: float = 0.0

    def summary(self) -> str:
        fired = "+".join(
            name for name, on in (("H1", self.h1_fired), ("H2", self.h2_fired)) if on
        )
        return (
            f"{self.signal.name}@pc={self.pc} [{self.instr_text}] "
            f"{fired or 'pc-advance only'}"
        )


class Modifier:
    """Applies the configured repair to a stopped, trapped process."""

    def __init__(self, config: LetGoConfig, functions: FunctionTable):
        self.config = config
        self.functions = functions

    def repair(self, session: DebugSession, trap: Trap) -> InterventionRecord:
        """Repair state and advance the PC; the process is ready to resume.

        Works for fetch faults too (``trap.instr is None``): the only
        possible action is the PC advance, which -- as in the original --
        usually leads to a second crash and a give-up.
        """
        start = time.perf_counter()
        process = session.process
        report = HeuristicReport()
        if self.config.heuristic2:
            apply_heuristic2(
                process, trap, self.functions, self.config.frame_slack, report
            )
        if self.config.heuristic1:
            apply_heuristic1(
                process, trap, self.config.fill_int, self.config.fill_float, report
            )
        session.set_pc(trap.pc + 1)
        elapsed = time.perf_counter() - start
        return InterventionRecord(
            signal=trap.signal,
            pc=trap.pc,
            instr_text=trap.instr.text() if trap.instr is not None else "<fetch fault>",
            actions=report.actions,
            h1_fired=report.h1_fired,
            h2_fired=report.h2_fired,
            repair_seconds=elapsed,
        )


__all__ = ["Modifier", "InterventionRecord"]
