"""Plain-text table rendering shared by benches and examples."""

from __future__ import annotations

from typing import Iterable, Sequence


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a boxless aligned table (benchmark-log friendly)."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def pct(value: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def pct_ci(value: float, half_width: float, digits: int = 2) -> str:
    """Percentage with a +- confidence half-width."""
    return f"{100.0 * value:.{digits}f}% ±{100.0 * half_width:.{digits}f}"


__all__ = ["ascii_table", "pct", "pct_ci"]
