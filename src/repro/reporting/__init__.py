"""Text reporting helpers (tables, percentage formatting)."""

from repro.reporting.tables import ascii_table, pct, pct_ci

__all__ = ["ascii_table", "pct", "pct_ci"]
