"""Operator decision support: when is LetGo worth turning on?

The paper's Section 8 ("Determining when/how to use LetGo") lists the
factors an operator weighs: fault rate, the application's SDC exposure
under LetGo, checkpoint overhead, and the acceptable SDC increase.  This
module turns the Figure-6 model into that decision: a gain surface over
the parameter space and a recommendation with the reasons attached.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crsim.params import AppParams, SystemParams, YEAR
from repro.crsim.simulator import compare_efficiency


@dataclass(frozen=True)
class GainPoint:
    """One cell of the gain surface."""

    t_chk: float
    mtbfaults: float
    standard: float
    letgo: float

    @property
    def gain(self) -> float:
        return self.letgo - self.standard


def gain_surface(
    app: AppParams,
    t_chk_values: tuple[float, ...] = (12.0, 120.0, 1200.0),
    mtbfaults_values: tuple[float, ...] = (5400.0, 21600.0, 86400.0),
    sync_frac: float = 0.10,
    needed: float = YEAR,
    seeds: list[int] | None = None,
) -> list[GainPoint]:
    """Efficiency gain over a (T_chk, MTBFaults) grid."""
    seeds = seeds if seeds is not None else [1, 2]
    points = []
    for t_chk in t_chk_values:
        for mtbfaults in mtbfaults_values:
            comparison = compare_efficiency(
                SystemParams(t_chk=t_chk, mtbfaults=mtbfaults, sync_frac=sync_frac),
                app,
                needed=needed,
                seeds=seeds,
            )
            points.append(
                GainPoint(
                    t_chk=t_chk,
                    mtbfaults=mtbfaults,
                    standard=comparison.standard,
                    letgo=comparison.letgo,
                )
            )
    return points


@dataclass(frozen=True)
class Recommendation:
    """Whether to enable LetGo for an (app, platform) pair, and why."""

    use_letgo: bool
    expected_gain: float
    sdc_rate_without: float     # expected fraction of runs with silent errors
    sdc_rate_with: float
    reasons: tuple[str, ...]

    def summary(self) -> str:
        verdict = "ENABLE LetGo" if self.use_letgo else "keep plain C/R"
        lines = [
            f"{verdict} (expected efficiency gain {self.expected_gain:+.4f})",
            f"SDC exposure: {self.sdc_rate_without:.3%} -> {self.sdc_rate_with:.3%}",
        ]
        lines += [f"  - {reason}" for reason in self.reasons]
        return "\n".join(lines)


def recommend(
    app: AppParams,
    system: SystemParams,
    sdc_fraction_without: float,
    sdc_fraction_with: float,
    max_sdc_increase: float = 0.02,
    min_gain: float = 0.005,
    needed: float = YEAR,
    seeds: list[int] | None = None,
) -> Recommendation:
    """Decide per the Section-8 factor list.

    ``sdc_fraction_without`` / ``sdc_fraction_with`` are overall SDC rates
    from fault injection (fractions of faulty runs ending in silent
    corruption) -- :meth:`CampaignResult.sdc_rate` values for baseline and
    LetGo campaigns.  ``max_sdc_increase`` is the operator's tolerance for
    additional silent corruption; ``min_gain`` the efficiency gain that
    justifies deployment.
    """
    comparison = compare_efficiency(system, app, needed=needed, seeds=seeds or [1, 2])
    gain = comparison.gain_absolute
    sdc_increase = sdc_fraction_with - sdc_fraction_without
    reasons: list[str] = []
    ok = True
    if gain < min_gain:
        ok = False
        reasons.append(
            f"efficiency gain {gain:+.4f} below the {min_gain:+.4f} threshold "
            f"(crash rate {app.p_crash:.0%}, continuability {app.p_letgo:.0%})"
        )
    else:
        reasons.append(
            f"efficiency gain {gain:+.4f} at T_chk={system.t_chk:.0f}s, "
            f"MTBFaults={system.mtbfaults:.0f}s"
        )
    if sdc_increase > max_sdc_increase:
        ok = False
        reasons.append(
            f"SDC increase {sdc_increase:+.3%} exceeds the operator limit "
            f"{max_sdc_increase:+.3%}"
        )
    else:
        reasons.append(f"SDC increase {sdc_increase:+.3%} within tolerance")
    if app.p_v_prime < 0.5:
        ok = False
        reasons.append(
            f"acceptance check passes only {app.p_v_prime:.0%} of continued "
            "runs: most continuations are wasted work"
        )
    return Recommendation(
        use_letgo=ok,
        expected_gain=gain,
        sdc_rate_without=sdc_fraction_without,
        sdc_rate_with=sdc_fraction_with,
        reasons=tuple(reasons),
    )


__all__ = ["GainPoint", "gain_surface", "Recommendation", "recommend"]
