"""High-level simulation driver: efficiency with vs. without LetGo."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crsim.machines import SimResult, simulate_letgo, simulate_standard
from repro.crsim.params import AppParams, SystemParams, YEAR


@dataclass(frozen=True)
class EfficiencyComparison:
    """Asymptotic efficiency of both schemes for one configuration."""

    app: str
    t_chk: float
    mtbfaults: float
    standard: float
    letgo: float

    @property
    def gain_absolute(self) -> float:
        """Absolute efficiency gain (paper reports 1% .. 11%)."""
        return self.letgo - self.standard

    @property
    def gain_relative(self) -> float:
        """Relative gain (time-to-solution speedup, 1.01x .. 1.20x)."""
        return self.letgo / self.standard if self.standard > 0 else float("inf")

    def row(self) -> tuple:
        return (
            self.app,
            self.t_chk,
            self.mtbfaults,
            self.standard,
            self.letgo,
            self.gain_absolute,
            self.gain_relative,
        )


def mean_efficiency(
    simulate,
    system: SystemParams,
    app: AppParams,
    needed: float,
    seeds: list[int],
) -> float:
    """Average efficiency across seeds (the asymptotic value stabilises
    quickly because ``needed`` spans thousands of checkpoint intervals)."""
    return float(
        np.mean([simulate(system, app, needed=needed, seed=s).efficiency for s in seeds])
    )


def compare_efficiency(
    system: SystemParams,
    app: AppParams,
    needed: float = 2 * YEAR,
    seeds: list[int] | None = None,
) -> EfficiencyComparison:
    """Run both machines on the same configuration."""
    seeds = seeds if seeds is not None else [1, 2, 3]
    return EfficiencyComparison(
        app=app.name,
        t_chk=system.t_chk,
        mtbfaults=system.mtbfaults,
        standard=mean_efficiency(simulate_standard, system, app, needed, seeds),
        letgo=mean_efficiency(simulate_letgo, system, app, needed, seeds),
    )


def single_runs(
    system: SystemParams,
    app: AppParams,
    needed: float = 2 * YEAR,
    seed: int = 1,
) -> tuple[SimResult, SimResult]:
    """One seeded run of each machine, with full event counts."""
    return (
        simulate_standard(system, app, needed=needed, seed=seed),
        simulate_letgo(system, app, needed=needed, seed=seed),
    )


__all__ = ["EfficiencyComparison", "compare_efficiency", "mean_efficiency", "single_runs"]
