"""Parameter sweeps reproducing the paper's Figures 7 and 8.

* Figure 7: efficiency with/without LetGo as the checkpoint overhead grows
  (T_chk in {12, 120, 1200} s) at MTBFaults = 21600 s, sync = 10%.
* Figure 8: efficiency as the system scales from 100k to 400k nodes --
  MTBF shrinks proportionally (12 h at the 100k-node reference, 6 h at
  200k, 3 h at 400k), shown for T_chk = 12 s and 1200 s.
* Checkpoint-interval sensitivity (extension): efficiency as the interval
  moves around Young's optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crsim.machines import simulate_letgo, simulate_standard
from repro.crsim.params import (
    BASELINE_MTBFAULTS,
    T_CHK_CHOICES,
    AppParams,
    SystemParams,
    YEAR,
    young_interval,
)
from repro.crsim.simulator import EfficiencyComparison, compare_efficiency

#: Node counts on the Figure-8 x-axis; the first is the reference scale.
FIG8_NODE_COUNTS = (100_000, 200_000, 300_000, 400_000)


def sweep_checkpoint_overhead(
    app: AppParams,
    t_chk_values: tuple[float, ...] = T_CHK_CHOICES,
    mtbfaults: float = BASELINE_MTBFAULTS,
    sync_frac: float = 0.10,
    needed: float = 2 * YEAR,
    seeds: list[int] | None = None,
) -> list[EfficiencyComparison]:
    """Figure 7: one comparison per checkpoint overhead."""
    return [
        compare_efficiency(
            SystemParams(t_chk=t_chk, mtbfaults=mtbfaults, sync_frac=sync_frac),
            app,
            needed=needed,
            seeds=seeds,
        )
        for t_chk in t_chk_values
    ]


def sweep_system_scale(
    app: AppParams,
    t_chk: float,
    node_counts: tuple[int, ...] = FIG8_NODE_COUNTS,
    reference_nodes: int = 100_000,
    reference_mtbfaults: float = BASELINE_MTBFAULTS,
    sync_frac: float = 0.10,
    needed: float = 2 * YEAR,
    seeds: list[int] | None = None,
) -> list[tuple[int, EfficiencyComparison]]:
    """Figure 8: MTBF scales inversely with node count."""
    out = []
    for nodes in node_counts:
        mtbfaults = reference_mtbfaults * reference_nodes / nodes
        comparison = compare_efficiency(
            SystemParams(t_chk=t_chk, mtbfaults=mtbfaults, sync_frac=sync_frac),
            app,
            needed=needed,
            seeds=seeds,
        )
        out.append((nodes, comparison))
    return out


@dataclass(frozen=True)
class IntervalPoint:
    """One point of the interval-sensitivity ablation."""

    multiplier: float
    interval: float
    standard: float
    letgo: float


def sweep_interval_multiplier(
    app: AppParams,
    system: SystemParams,
    multipliers: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
    needed: float = 2 * YEAR,
    seed: int = 1,
) -> list[IntervalPoint]:
    """Ablation: move the checkpoint interval around Young's optimum.

    El-Sayed & Schroeder (cited in Table 4) report Young's formula is
    near-optimal in practice; this sweep lets the benches confirm the
    efficiency curve is flat-topped around the optimum in our model too.
    """
    t_standard = young_interval(system.t_chk, app.mtbf_failures(system.mtbfaults))
    t_letgo = young_interval(system.t_chk, app.mtbf_letgo(system.mtbfaults))
    points = []
    for mult in multipliers:
        std = simulate_standard(
            system, app, needed=needed, seed=seed, interval=t_standard * mult
        )
        lg = simulate_letgo(
            system, app, needed=needed, seed=seed, interval=t_letgo * mult
        )
        points.append(
            IntervalPoint(
                multiplier=mult,
                interval=t_standard * mult,
                standard=std.efficiency,
                letgo=lg.efficiency,
            )
        )
    return points


__all__ = [
    "FIG8_NODE_COUNTS",
    "sweep_checkpoint_overhead",
    "sweep_system_scale",
    "IntervalPoint",
    "sweep_interval_multiplier",
]
