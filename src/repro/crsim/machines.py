"""The two C/R state machines of Figure 6: M-S (standard) and M-L (LetGo).

Both are continuous-time simulations driven by exponentially distributed
fault inter-arrival times (a Poisson process, as in the paper).  ``t`` is
always "time until the next fault"; transitions redraw it, which is valid
because the exponential is memoryless.  Variables follow the figure:

``cost``    accumulated wall-clock time,
``u``       accumulated *useful* work,
``q``       useful work inside the current checkpoint interval,
``faults``  faults accumulated since the state they were last reset in --
            the acceptance check passes with probability ``P_v^faults``
            (``P_v'^faults`` after a LetGo continuation),
``isLetGo`` whether the interval reaching VERIF went through a repair.

Efficiency is ``u / cost`` at termination (``u`` >= the needed compute
time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crsim.params import AppParams, SystemParams, YEAR, young_interval
from repro.errors import SimulationError


#: Runs whose cost exceeds ``needed * COST_GUARD_FACTOR`` are declared
#: non-converging (efficiency below 0.1%) and stopped -- a pathological
#: parameter corner (e.g. an interval so long that verification can never
#: pass) must not hang the simulation.
COST_GUARD_FACTOR = 1000.0

#: Upper bound on the checkpoint interval, in mean-times-between-faults:
#: beyond ~50 faults per interval every acceptance check fails anyway.
MAX_INTERVAL_MTBFAULTS = 50.0


@dataclass
class SimResult:
    """Outcome of one state-machine simulation."""

    efficiency: float
    cost: float
    useful: float
    interval: float            # checkpoint interval T used
    checkpoints: int = 0
    crashes: int = 0           # crash events (rollbacks in M-S)
    letgo_continues: int = 0   # LETGO -> CONT transitions (M-L only)
    letgo_failures: int = 0    # LETGO -> COMP rollbacks (M-L only)
    verify_failures: int = 0   # VERIF -> COMP rollbacks
    faults_total: int = 0      # non-crash faults observed
    converged: bool = True     # False: stopped by the cost guard

    def summary(self) -> str:
        return (
            f"eff={self.efficiency:.4f} ckpts={self.checkpoints} "
            f"crashes={self.crashes} verif_fail={self.verify_failures} "
            f"letgo={self.letgo_continues}/{self.letgo_continues + self.letgo_failures}"
        )


@dataclass
class _Clock:
    """Fault arrivals + coin flips, seeded."""

    rng: np.random.Generator
    mtbfaults: float
    draws: int = field(default=0)

    def next_fault(self) -> float:
        self.draws += 1
        return float(self.rng.exponential(self.mtbfaults))

    def happens(self, probability: float) -> bool:
        return bool(self.rng.random() < probability)


def _check(needed: float) -> None:
    if needed <= 0:
        raise SimulationError("needed compute time must be positive")


def simulate_standard(
    system: SystemParams,
    app: AppParams,
    needed: float = 10 * YEAR,
    seed: int = 0,
    interval: float | None = None,
) -> SimResult:
    """M-S: the standard C/R scheme (Figure 6a)."""
    _check(needed)
    clock = _Clock(np.random.default_rng(seed), system.mtbfaults)
    T = interval if interval is not None else young_interval(
        system.t_chk, app.mtbf_failures(system.mtbfaults)
    )
    # Termination guards: near-infinite MTBF, and intervals so long that
    # faults accumulate beyond any acceptance check's survival.
    T = min(T, needed, MAX_INTERVAL_MTBFAULTS * system.mtbfaults)
    t_r, t_sync, t_v, t_chk = system.recovery, system.t_sync, system.t_v, system.t_chk
    result = SimResult(efficiency=0.0, cost=0.0, useful=0.0, interval=T)
    cost_guard = needed * COST_GUARD_FACTOR

    cost = 0.0
    u = 0.0
    q = 0.0
    faults = 0
    t = clock.next_fault()
    while cost < cost_guard:
        # -- COMP ------------------------------------------------------------
        while t <= T - q:
            if clock.happens(app.p_crash):  # (4) crash: roll back
                cost += t + t_r + t_sync
                q = 0.0
                faults = 0
                t = clock.next_fault()
                result.crashes += 1
            else:  # (3) latent fault
                cost += t
                q += t
                faults += 1
                t = clock.next_fault()
                result.faults_total += 1
        # (1) interval complete -> VERIF
        cost += T - q
        q = T
        t = clock.next_fault()
        # -- VERIF ------------------------------------------------------------
        if clock.happens(app.p_v**faults):  # (5) check passed -> CHK
            cost += t_v
            u += T
            q = 0.0
            faults = 0
            t = clock.next_fault()
            # -- CHK -------------------------------------------------------
            if u >= needed:  # (7) done
                break
            cost += t_chk + t_sync  # (6)
            q = 0.0
            faults = 0
            t = clock.next_fault()
            result.checkpoints += 1
        else:  # (2) check failed: roll back
            cost += t_v + t_r + t_sync
            q = 0.0
            faults = 0
            t = clock.next_fault()
            result.verify_failures += 1
    else:
        result.converged = False

    result.cost = cost
    result.useful = u
    result.efficiency = u / cost if cost > 0 else 0.0
    return result


def simulate_letgo(
    system: SystemParams,
    app: AppParams,
    needed: float = 10 * YEAR,
    seed: int = 0,
    interval: float | None = None,
) -> SimResult:
    """M-L: the C/R scheme with LetGo (Figure 6b).

    The checkpoint interval uses ``MTBF_letgo = MTBF / (1 - Continuability)``
    -- crashes are rarer under LetGo, so checkpoints are taken less often.
    """
    _check(needed)
    clock = _Clock(np.random.default_rng(seed), system.mtbfaults)
    T = interval if interval is not None else young_interval(
        system.t_chk, app.mtbf_letgo(system.mtbfaults)
    )
    # Termination guards (continuability -> 1 gives an infinite MTBF, and
    # fault-saturated intervals would loop on failed verifications forever).
    T = min(T, needed, MAX_INTERVAL_MTBFAULTS * system.mtbfaults)
    t_r, t_sync, t_v, t_chk = system.recovery, system.t_sync, system.t_v, system.t_chk
    t_letgo = system.t_letgo
    result = SimResult(efficiency=0.0, cost=0.0, useful=0.0, interval=T)
    cost_guard = needed * COST_GUARD_FACTOR

    cost = 0.0
    u = 0.0
    q = 0.0
    faults = 0
    is_letgo = False
    t = clock.next_fault()
    while cost < cost_guard:
        # -- COMP / CONT (identical dynamics except crash handling) --------
        in_cont = False
        reached_verify = False
        while not reached_verify:
            if t > T - q:  # (1)/(5) interval complete -> VERIF
                cost += T - q
                if in_cont:
                    is_letgo = True  # (5) sets the flag
                q = T
                t = clock.next_fault()
                reached_verify = True
            elif clock.happens(app.p_crash):  # crash-causing fault
                if not in_cont:
                    # (3) COMP -> LETGO: work so far is kept
                    cost += t
                    q += t
                    faults += 1
                    t = clock.next_fault()
                    if clock.happens(app.p_letgo):  # (4) repaired -> CONT
                        cost += t_letgo
                        in_cont = True
                        result.letgo_continues += 1
                    else:  # (11) give up: roll back
                        cost += t_letgo + t_r + t_sync
                        q = 0.0
                        faults = 0
                        t = clock.next_fault()
                        is_letgo = False
                        result.letgo_failures += 1
                else:
                    # (6) second crash in CONT: roll back for real
                    cost += t + t_r + t_sync
                    q = 0.0
                    faults = 0
                    t = clock.next_fault()
                    in_cont = False
                    is_letgo = False
                    result.crashes += 1
            else:  # (7)/COMP-self-loop: latent fault
                cost += t
                q += t
                faults += 1
                t = clock.next_fault()
                result.faults_total += 1
        # -- VERIF ------------------------------------------------------------
        p_pass = (app.p_v_prime if is_letgo else app.p_v) ** faults
        if clock.happens(p_pass):  # (9) -> CHK
            cost += t_v
            u += T
            q = 0.0
            is_letgo = False
            if u >= needed:
                break
            cost += t_chk + t_sync
            faults = 0
            t = clock.next_fault()
            result.checkpoints += 1
        else:  # (2) roll back
            cost += t_v + t_r + t_sync
            q = 0.0
            faults = 0
            t = clock.next_fault()
            is_letgo = False
            result.verify_failures += 1
    else:
        result.converged = False

    result.cost = cost
    result.useful = u
    result.efficiency = u / cost if cost > 0 else 0.0
    return result


__all__ = [
    "SimResult",
    "simulate_standard",
    "simulate_letgo",
    "COST_GUARD_FACTOR",
    "MAX_INTERVAL_MTBFAULTS",
]
