"""Checkpoint-interval optimisation against the simulated machines.

Young's formula is the paper's (and this package's) default; this module
finds the *simulation-optimal* interval by golden-section search on the
seeded M-S / M-L efficiency curves.  Used by the interval ablation to
quantify how close Young's choice lands, and available to users tuning a
deployment whose parameters fall outside the formula's assumptions (e.g.
low ``P_v``, where verification failures dominate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.crsim.machines import simulate_letgo, simulate_standard
from repro.crsim.params import AppParams, SystemParams, YEAR, young_interval
from repro.errors import SimulationError


@dataclass(frozen=True)
class OptimalInterval:
    """Result of an interval search."""

    interval: float
    efficiency: float
    young: float              # Young's choice for the same configuration
    young_efficiency: float

    @property
    def improvement(self) -> float:
        """Efficiency gained over Young's choice (>= 0 up to noise)."""
        return self.efficiency - self.young_efficiency

    @property
    def ratio_to_young(self) -> float:
        """Optimal interval relative to Young's."""
        return self.interval / self.young if self.young > 0 else float("inf")


def _mean_eff(simulate, system, app, interval, needed, seeds) -> float:
    return float(
        np.mean(
            [
                simulate(system, app, needed=needed, seed=s, interval=interval).efficiency
                for s in seeds
            ]
        )
    )


def optimize_interval(
    system: SystemParams,
    app: AppParams,
    letgo: bool = False,
    needed: float = YEAR,
    seeds: tuple[int, ...] = (1, 2),
    span: float = 8.0,
) -> OptimalInterval:
    """Golden-section search for the best checkpoint interval.

    Searches ``[young/span, young*span]`` on the mean seeded efficiency of
    the chosen machine.  The curve is noisy (finite simulation) but
    unimodal enough in practice; ``seeds`` averages the noise down.
    """
    if span <= 1.0:
        raise SimulationError("span must exceed 1")
    simulate = simulate_letgo if letgo else simulate_standard
    mtbf = (
        app.mtbf_letgo(system.mtbfaults) if letgo else app.mtbf_failures(system.mtbfaults)
    )
    young = young_interval(system.t_chk, min(mtbf, 1e15))
    young = min(young, needed)

    def negative_efficiency(interval: float) -> float:
        return -_mean_eff(simulate, system, app, interval, needed, seeds)

    result = optimize.minimize_scalar(
        negative_efficiency,
        bounds=(young / span, young * span),
        method="bounded",
        options={"xatol": young * 0.02, "maxiter": 24},
    )
    best_interval = float(result.x)
    return OptimalInterval(
        interval=best_interval,
        efficiency=-float(result.fun),
        young=young,
        young_efficiency=_mean_eff(simulate, system, app, young, needed, seeds),
    )


__all__ = ["OptimalInterval", "optimize_interval"]
