"""Closed-form checkpoint/restart approximations (Young, Daly).

The Figure-6 simulation is the ground truth of this package; these
first-order formulas exist to sanity-check it (tests assert simulation ~
formula in the regimes where the formula's assumptions hold) and to give
users instant estimates without simulating.

Notation: ``T`` useful work per interval, ``C`` checkpoint cost (incl.
synchronisation), ``R`` recovery cost, ``M`` mean time between *failures*
(crashes).  Young's classic result: ``T* = sqrt(2 C M)``.
"""

from __future__ import annotations

from math import exp, sqrt

from repro.crsim.params import AppParams, SystemParams
from repro.errors import SimulationError


def daly_optimal_interval(t_chk: float, mtbf: float) -> float:
    """Daly's higher-order optimum (reduces to Young's for small C/M)."""
    if t_chk <= 0 or mtbf <= 0:
        raise SimulationError("t_chk and mtbf must be positive")
    if t_chk >= 2 * mtbf:
        return mtbf  # degenerate regime: checkpoint as rarely as possible
    root = sqrt(2 * t_chk * mtbf)
    return root * (1 + sqrt(t_chk / (18 * mtbf))) - t_chk


def expected_efficiency_standard(
    system: SystemParams, app: AppParams, interval: float | None = None
) -> float:
    """First-order efficiency of the M-S machine.

    Model: per attempted interval of length ``T`` the machine spends
    ``T + T_v + C`` on success; a crash arrives within the interval with
    probability ``1 - exp(-T/M)`` and costs (on average) half the interval
    plus recovery; verification fails with probability
    ``1 - P_v^lambda_latent`` where ``lambda_latent`` is the expected
    number of non-crash faults per interval.  Valid when failure costs
    are small relative to ``M`` (the usual Young regime).
    """
    mtbf = app.mtbf_failures(system.mtbfaults)
    T = interval if interval is not None else sqrt(2 * system.t_chk * mtbf)
    overhead = system.t_v + system.t_chk + system.t_sync
    restart = system.recovery + system.t_sync
    # crash interruptions per successful interval
    p_crash_interval = 1.0 - exp(-T / mtbf)
    crash_cost = p_crash_interval / max(1.0 - p_crash_interval, 1e-12) * (
        T / 2.0 + restart
    )
    # latent faults and verification failures
    latent_rate = T / system.mtbfaults * (1.0 - app.p_crash)
    p_verify_pass = app.p_v**latent_rate
    verify_cost = (1.0 - p_verify_pass) / max(p_verify_pass, 1e-12) * (
        T + system.t_v + restart
    )
    return T / (T + overhead + crash_cost + verify_cost)


def expected_efficiency_letgo(
    system: SystemParams, app: AppParams, interval: float | None = None
) -> float:
    """First-order efficiency of the M-L machine (same approximations).

    Crashes arrive at the original rate but only ``1 - P_letgo`` of them
    roll back; elided crashes cost ``T_letgo`` and push the interval's
    verification to ``P_v'``.
    """
    mtbf = app.mtbf_failures(system.mtbfaults)
    mtbf_letgo = app.mtbf_letgo(system.mtbfaults)
    T = interval if interval is not None else sqrt(
        2 * system.t_chk * min(mtbf_letgo, 1e18)
    )
    overhead = system.t_v + system.t_chk + system.t_sync
    restart = system.recovery + system.t_sync
    # rolled-back crashes: rate reduced by continuability
    p_crash_interval = 1.0 - exp(-T / mtbf_letgo)
    crash_cost = p_crash_interval / max(1.0 - p_crash_interval, 1e-12) * (
        T / 2.0 + restart
    )
    # repairs: all crashes pay T_letgo
    repairs_per_interval = T / mtbf
    repair_cost = repairs_per_interval * system.t_letgo
    # verification: latent faults use P_v; a repaired interval uses P_v'
    latent_rate = T / system.mtbfaults * (1.0 - app.p_crash)
    p_repaired = 1.0 - exp(-T / mtbf * app.p_letgo)
    p_pass = (app.p_v**latent_rate) * (
        p_repaired * app.p_v_prime + (1.0 - p_repaired)
    )
    verify_cost = (1.0 - p_pass) / max(p_pass, 1e-12) * (T + system.t_v + restart)
    return T / (T + overhead + repair_cost + crash_cost + verify_cost)


__all__ = [
    "daly_optimal_interval",
    "expected_efficiency_standard",
    "expected_efficiency_letgo",
]
