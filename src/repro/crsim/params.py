"""C/R model parameters (paper Table 4) and Young's checkpoint interval.

Three parameter classes, as in the paper:

* **Configured** -- checkpoint write time ``T_chk`` and the mean time
  between *faults* (``MTBFaults``), set from platform characteristics;
* **Estimated** -- per-application probabilities (``P_crash``, ``P_v``,
  ``P_v'``, ``P_letgo``) obtained from fault-injection campaigns (ours or
  the paper's Table 3, shipped as :data:`PAPER_APP_PARAMS`);
* **Derived** -- Young's interval, recovery time ``T_r = T_chk``,
  verification time ``T_v = 1% T_chk``, synchronisation ``T_sync`` as a
  fraction of ``T_chk``, ``T_letgo = 5 s``, and
  ``MTBF_letgo = MTBF / (1 - Continuability)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt

from repro.errors import SimulationError

#: Seconds in a Julian year (simulation horizon unit).
YEAR = 365.25 * 24 * 3600


def young_interval(t_chk: float, mtbf: float) -> float:
    """Young's first-order optimal checkpoint interval: sqrt(2 * T_chk * MTBF)."""
    if t_chk <= 0 or mtbf <= 0:
        raise SimulationError("t_chk and mtbf must be positive")
    return sqrt(2.0 * t_chk * mtbf)


@dataclass(frozen=True)
class SystemParams:
    """Platform-level (Configured + Derived) parameters, in seconds."""

    t_chk: float                 # checkpoint write time
    mtbfaults: float             # mean time between hardware faults
    sync_frac: float = 0.10      # T_sync = sync_frac * t_chk (10% or 50%)
    verify_frac: float = 0.01    # T_v = verify_frac * t_chk
    t_letgo: float = 5.0         # time spent inside LetGo per repair
    t_r: float | None = None     # recovery time; defaults to t_chk

    def __post_init__(self) -> None:
        if self.t_chk <= 0 or self.mtbfaults <= 0:
            raise SimulationError("t_chk and mtbfaults must be positive")

    @property
    def t_sync(self) -> float:
        """Multi-node coordination overhead per checkpoint/recovery."""
        return self.sync_frac * self.t_chk

    @property
    def t_v(self) -> float:
        """Application acceptance-check time."""
        return self.verify_frac * self.t_chk

    @property
    def recovery(self) -> float:
        """T_r: time to load the previous checkpoint."""
        return self.t_chk if self.t_r is None else self.t_r

    def scaled(self, factor: float) -> "SystemParams":
        """Same platform with MTBFaults scaled by 1/factor (more nodes)."""
        return SystemParams(
            t_chk=self.t_chk,
            mtbfaults=self.mtbfaults / factor,
            sync_frac=self.sync_frac,
            verify_frac=self.verify_frac,
            t_letgo=self.t_letgo,
            t_r=self.t_r,
        )


@dataclass(frozen=True)
class AppParams:
    """Per-application (Estimated) probabilities."""

    name: str
    p_crash: float    # P(fault crashes the application)
    p_v: float        # P(acceptance check passes | fault, no crash)
    p_v_prime: float  # P(acceptance check passes | LetGo continued)
    p_letgo: float    # Continuability (Eq. 1)

    def __post_init__(self) -> None:
        for field_name in ("p_crash", "p_v", "p_v_prime", "p_letgo"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{field_name}={value} outside [0, 1]")

    def mtbf_failures(self, mtbfaults: float) -> float:
        """Mean time between *failures* (crashes): MTBFaults / P_crash."""
        if self.p_crash <= 0.0:
            return float("inf")
        return mtbfaults / self.p_crash

    def mtbf_letgo(self, mtbfaults: float) -> float:
        """MTBF after LetGo elides crashes: MTBF / (1 - Continuability)."""
        base = self.mtbf_failures(mtbfaults)
        survive = 1.0 - self.p_letgo
        return base / survive if survive > 0.0 else float("inf")


def _from_table3(
    name: str,
    detected: float,
    benign: float,
    sdc: float,
    double_crash: float,
    c_detected: float,
    c_benign: float,
    c_sdc: float,
) -> AppParams:
    """Build AppParams from a Table-3 row (values as fractions of runs)."""
    crash = double_crash + c_detected + c_benign + c_sdc
    finished = detected + benign + sdc
    continued = c_detected + c_benign + c_sdc
    return AppParams(
        name=name,
        p_crash=crash,
        p_v=(benign + sdc) / finished if finished else 1.0,
        p_v_prime=(c_benign + c_sdc) / continued if continued else 1.0,
        p_letgo=continued / crash if crash else 0.0,
    )


#: Per-application parameters lifted from the paper's Table 3 (LetGo-E).
PAPER_APP_PARAMS: dict[str, AppParams] = {
    "lulesh": _from_table3("lulesh", 0.0090, 0.2200, 0.0013, 0.2500, 0.0230, 0.4950, 0.0017),
    "clamr": _from_table3("clamr", 0.0050, 0.3330, 0.0050, 0.2500, 0.0110, 0.3960, 0.0000),
    "snap": _from_table3("snap", 0.0002, 0.4394, 0.0001, 0.2077, 0.0006, 0.3520, 0.0000),
    "comd": _from_table3("comd", 0.0100, 0.5500, 0.0110, 0.1832, 0.0085, 0.2213, 0.0160),
    "pennant": _from_table3("pennant", 0.0100, 0.5000, 0.0200, 0.1900, 0.0250, 0.2270, 0.0280),
    # HPL from the Section-8 discussion: 34% crash, ~70% continuability,
    # SDC 1% -> 3%, acceptance checks "much more selective" (P_v ~ 0.42).
    "hpl": AppParams(name="hpl", p_crash=0.34, p_v=0.424, p_v_prime=0.45, p_letgo=0.70),
}

#: The checkpoint overheads the paper sweeps (well/average/under-provisioned).
T_CHK_CHOICES = (12.0, 120.0, 1200.0)

#: The baseline platform: MTBF = 12 h => MTBFaults = 21600 s (Section 7).
BASELINE_MTBFAULTS = 21600.0


__all__ = [
    "SystemParams",
    "AppParams",
    "young_interval",
    "PAPER_APP_PARAMS",
    "T_CHK_CHOICES",
    "BASELINE_MTBFAULTS",
    "YEAR",
]
