"""Continuous-time C/R simulation (paper section 7).

State machines M-S (standard checkpoint/restart) and M-L (C/R + LetGo)
over Poisson fault arrivals, with Young-interval checkpointing and the
Table-4 parameter model.  Used to reproduce Figures 7 and 8 and the
Section-8 HPL discussion.
"""

from repro.crsim.analytic import (
    daly_optimal_interval,
    expected_efficiency_letgo,
    expected_efficiency_standard,
)
from repro.crsim.decision import (
    GainPoint,
    Recommendation,
    gain_surface,
    recommend,
)
from repro.crsim.machines import SimResult, simulate_letgo, simulate_standard
from repro.crsim.optimize import OptimalInterval, optimize_interval
from repro.crsim.params import (
    BASELINE_MTBFAULTS,
    PAPER_APP_PARAMS,
    T_CHK_CHOICES,
    YEAR,
    AppParams,
    SystemParams,
    young_interval,
)
from repro.crsim.simulator import (
    EfficiencyComparison,
    compare_efficiency,
    mean_efficiency,
    single_runs,
)
from repro.crsim.sweep import (
    FIG8_NODE_COUNTS,
    IntervalPoint,
    sweep_checkpoint_overhead,
    sweep_interval_multiplier,
    sweep_system_scale,
)

__all__ = [
    "daly_optimal_interval",
    "expected_efficiency_standard",
    "expected_efficiency_letgo",
    "GainPoint",
    "gain_surface",
    "Recommendation",
    "recommend",
    "OptimalInterval",
    "optimize_interval",
    "SimResult",
    "simulate_standard",
    "simulate_letgo",
    "SystemParams",
    "AppParams",
    "young_interval",
    "PAPER_APP_PARAMS",
    "T_CHK_CHOICES",
    "BASELINE_MTBFAULTS",
    "YEAR",
    "EfficiencyComparison",
    "compare_efficiency",
    "mean_efficiency",
    "single_runs",
    "FIG8_NODE_COUNTS",
    "IntervalPoint",
    "sweep_checkpoint_overhead",
    "sweep_interval_multiplier",
    "sweep_system_scale",
]
