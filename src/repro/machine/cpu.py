"""The CPU: a precise-exception interpreter for the repro ISA.

Performance notes (single-core budget; see the optimization guide): the
interpreter pre-builds a handler table indexed by opcode, keeps the hot
loop free of per-step allocations and hooks, and exposes dedicated loop
variants (plain / profiled) so the common path pays nothing for
instrumentation.  Registers live in plain Python lists -- faster than NumPy
for scalar element access.

Exception model: every fault is *precise*.  When a handler raises
:class:`~repro.machine.signals.Trap`, no architectural state has been
committed for the faulting instruction and ``cpu.pc`` still points at it.
This is what lets LetGo advance the PC and resume.
"""

from __future__ import annotations

from math import copysign, inf, isinf, isnan, nan, sqrt

from repro.isa.instructions import Instr, Op
from repro.isa.layout import INT64_MAX, INT64_MIN, MASK64
from repro.isa.program import Program
from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS, SP
from repro.machine.memory import (
    AccessError,
    Memory,
    float_to_pattern,
    int_to_pattern,
    pattern_to_float,
    pattern_to_int,
)
from repro.machine.signals import Blocked, Signal, Trap

_SIGN_BIT = 1 << 63
_WRAP = 1 << 64

#: Reasons a run loop can stop (traps propagate as exceptions instead).
STOP_HALT = "halt"
STOP_STEPS = "steps"


def _wrap64(value: int) -> int:
    value &= MASK64
    return value - _WRAP if value >= _SIGN_BIT else value


class CPU:
    """Architectural state + interpreter.

    The CPU does not own policy: it raises :class:`Trap` and lets the
    caller (a :class:`~repro.machine.process.Process` or a debugger)
    decide between termination and repair.
    """

    __slots__ = (
        "iregs",
        "fregs",
        "pc",
        "memory",
        "instrs",
        "output",
        "instret",
        "halted",
        "exit_code",
        "rank",
        "network",
        "_handlers",
        "_n_instrs",
    )

    def __init__(self, program: Program, memory: Memory):
        self.memory = memory
        self.instrs: list[Instr] = program.instrs
        self._n_instrs = len(program.instrs)
        self.iregs: list[int] = [0] * NUM_INT_REGS
        self.fregs: list[float] = [0.0] * NUM_FP_REGS
        self.pc: int = 0
        #: (kind, value) pairs emitted by OUT/FOUT; kind is 'i' or 'f'.
        self.output: list[tuple[str, int | float]] = []
        #: Retired dynamic instruction count.
        self.instret: int = 0
        self.halted = False
        self.exit_code: int = 0
        #: SPMD identity: set by repro.machine.cluster; standalone defaults.
        self.rank: int = 0
        self.network = None
        self._handlers = self._build_handlers()

    # -- run loops -----------------------------------------------------------

    def run(self, max_steps: int) -> str:
        """Execute until HALT or *max_steps* instructions retire.

        Returns :data:`STOP_HALT` or :data:`STOP_STEPS`.  Raises
        :class:`Trap` on a fault, with ``pc`` left at the faulter.
        """
        instrs = self.instrs
        handlers = self._handlers
        n = self._n_instrs
        steps = 0
        try:
            while steps < max_steps:
                if self.halted:
                    return STOP_HALT
                pc = self.pc
                if pc < 0 or pc >= n:
                    raise Trap(
                        Signal.SIGSEGV,
                        pc=pc,
                        instr=None,
                        detail=f"instruction fetch out of image (pc={pc})",
                    )
                ins = instrs[pc]
                handlers[ins.op](ins)
                steps += 1
            return STOP_HALT if self.halted else STOP_STEPS
        finally:
            # A trapped instruction did not retire; ``steps`` excludes it.
            self.instret += steps

    def run_profiled(self, counts: list[int], max_steps: int) -> str:
        """Like :meth:`run` but increments ``counts[pc]`` per retirement.

        ``counts`` must have one slot per static instruction.
        """
        instrs = self.instrs
        handlers = self._handlers
        n = self._n_instrs
        steps = 0
        try:
            while steps < max_steps:
                if self.halted:
                    return STOP_HALT
                pc = self.pc
                if pc < 0 or pc >= n:
                    raise Trap(
                        Signal.SIGSEGV,
                        pc=pc,
                        instr=None,
                        detail=f"instruction fetch out of image (pc={pc})",
                    )
                ins = instrs[pc]
                handlers[ins.op](ins)
                counts[pc] += 1
                steps += 1
            return STOP_HALT if self.halted else STOP_STEPS
        finally:
            self.instret += steps

    def run_probed(self, max_steps: int, probe, interval: int) -> str:
        """Like :meth:`run`, calling ``probe(instret)`` every *interval* retirements.

        The instret-bucketed progress probe behind campaign telemetry:
        the budget is consumed in *interval*-sized buckets through the
        public :meth:`run` contract, so the architectural behaviour --
        trap sites, retirement counts, stop reasons -- is bit-identical
        to a single ``run(max_steps)`` call on every backend (both the
        interpreter and the compiled backend honour exact budgets).  The
        probe only observes; a trap propagates without a trailing probe
        call because the bucket did not complete.
        """
        if interval < 1:
            raise ValueError("probe interval must be >= 1")
        remaining = max_steps
        stop = STOP_HALT if self.halted else STOP_STEPS
        while remaining > 0:
            before = self.instret
            stop = self.run(min(interval, remaining))
            remaining -= self.instret - before
            probe(self.instret)
            if stop == STOP_HALT:
                break
        return stop

    def step(self) -> None:
        """Execute exactly one instruction (slow path, debugger use)."""
        self.run(1)

    # -- handler construction ----------------------------------------------

    def _build_handlers(self):
        table = [None] * 128
        for op in Op:
            table[int(op)] = getattr(self, f"_op_{op.name.lower()}")
        return table

    # -- fault helper ---------------------------------------------------------

    def _mem_trap(self, exc: AccessError, ins: Instr) -> Trap:
        signal = Signal.SIGSEGV if exc.kind == "segv" else Signal.SIGBUS
        return Trap(
            signal,
            pc=self.pc,
            instr=ins,
            detail=str(exc),
            address=exc.address,
        )

    # -- data movement ---------------------------------------------------------

    def _op_nop(self, ins: Instr) -> None:
        self.pc += 1

    def _op_mov(self, ins: Instr) -> None:
        self.iregs[ins.rd] = self.iregs[ins.ra]
        self.pc += 1

    def _op_movi(self, ins: Instr) -> None:
        self.iregs[ins.rd] = ins.imm
        self.pc += 1

    def _op_fmov(self, ins: Instr) -> None:
        self.fregs[ins.rd] = self.fregs[ins.ra]
        self.pc += 1

    def _op_fmovi(self, ins: Instr) -> None:
        self.fregs[ins.rd] = ins.imm
        self.pc += 1

    # -- memory ------------------------------------------------------------

    def _op_ld(self, ins: Instr) -> None:
        try:
            value = self.memory.read_int(self.iregs[ins.ra] + ins.imm)
        except AccessError as exc:
            raise self._mem_trap(exc, ins) from None
        self.iregs[ins.rd] = value
        self.pc += 1

    def _op_st(self, ins: Instr) -> None:
        try:
            self.memory.write_int(self.iregs[ins.ra] + ins.imm, self.iregs[ins.rd])
        except AccessError as exc:
            raise self._mem_trap(exc, ins) from None
        self.pc += 1

    def _op_ldx(self, ins: Instr) -> None:
        addr = self.iregs[ins.ra] + self.iregs[ins.rb] * 8 + ins.imm
        try:
            value = self.memory.read_int(addr)
        except AccessError as exc:
            raise self._mem_trap(exc, ins) from None
        self.iregs[ins.rd] = value
        self.pc += 1

    def _op_stx(self, ins: Instr) -> None:
        addr = self.iregs[ins.ra] + self.iregs[ins.rb] * 8 + ins.imm
        try:
            self.memory.write_int(addr, self.iregs[ins.rd])
        except AccessError as exc:
            raise self._mem_trap(exc, ins) from None
        self.pc += 1

    def _op_fld(self, ins: Instr) -> None:
        try:
            value = self.memory.read_float(self.iregs[ins.ra] + ins.imm)
        except AccessError as exc:
            raise self._mem_trap(exc, ins) from None
        self.fregs[ins.rd] = value
        self.pc += 1

    def _op_fst(self, ins: Instr) -> None:
        try:
            self.memory.write_float(self.iregs[ins.ra] + ins.imm, self.fregs[ins.rd])
        except AccessError as exc:
            raise self._mem_trap(exc, ins) from None
        self.pc += 1

    def _op_fldx(self, ins: Instr) -> None:
        addr = self.iregs[ins.ra] + self.iregs[ins.rb] * 8 + ins.imm
        try:
            value = self.memory.read_float(addr)
        except AccessError as exc:
            raise self._mem_trap(exc, ins) from None
        self.fregs[ins.rd] = value
        self.pc += 1

    def _op_fstx(self, ins: Instr) -> None:
        addr = self.iregs[ins.ra] + self.iregs[ins.rb] * 8 + ins.imm
        try:
            self.memory.write_float(addr, self.fregs[ins.rd])
        except AccessError as exc:
            raise self._mem_trap(exc, ins) from None
        self.pc += 1

    def _op_push(self, ins: Instr) -> None:
        sp = self.iregs[SP] - 8
        try:
            self.memory.write_int(sp, self.iregs[ins.ra])
        except AccessError as exc:
            raise self._mem_trap(exc, ins) from None
        self.iregs[SP] = sp
        self.pc += 1

    def _op_pop(self, ins: Instr) -> None:
        sp = self.iregs[SP]
        try:
            value = self.memory.read_int(sp)
        except AccessError as exc:
            raise self._mem_trap(exc, ins) from None
        # sp first, value second: "pop sp" must end with the loaded value.
        self.iregs[SP] = sp + 8
        self.iregs[ins.rd] = value
        self.pc += 1

    def _op_fpush(self, ins: Instr) -> None:
        sp = self.iregs[SP] - 8
        try:
            self.memory.write_float(sp, self.fregs[ins.ra])
        except AccessError as exc:
            raise self._mem_trap(exc, ins) from None
        self.iregs[SP] = sp
        self.pc += 1

    def _op_fpop(self, ins: Instr) -> None:
        sp = self.iregs[SP]
        try:
            value = self.memory.read_float(sp)
        except AccessError as exc:
            raise self._mem_trap(exc, ins) from None
        self.fregs[ins.rd] = value
        self.iregs[SP] = sp + 8
        self.pc += 1

    # -- integer ALU ---------------------------------------------------------

    def _op_add(self, ins: Instr) -> None:
        r = self.iregs
        r[ins.rd] = _wrap64(r[ins.ra] + r[ins.rb])
        self.pc += 1

    def _op_sub(self, ins: Instr) -> None:
        r = self.iregs
        r[ins.rd] = _wrap64(r[ins.ra] - r[ins.rb])
        self.pc += 1

    def _op_mul(self, ins: Instr) -> None:
        r = self.iregs
        r[ins.rd] = _wrap64(r[ins.ra] * r[ins.rb])
        self.pc += 1

    def _op_div(self, ins: Instr) -> None:
        r = self.iregs
        b = r[ins.rb]
        if b == 0:
            raise Trap(Signal.SIGFPE, pc=self.pc, instr=ins, detail="integer divide by zero")
        a = r[ins.ra]
        q = abs(a) // abs(b)
        r[ins.rd] = _wrap64(-q if (a < 0) != (b < 0) else q)
        self.pc += 1

    def _op_mod(self, ins: Instr) -> None:
        r = self.iregs
        b = r[ins.rb]
        if b == 0:
            raise Trap(Signal.SIGFPE, pc=self.pc, instr=ins, detail="integer remainder by zero")
        a = r[ins.ra]
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        r[ins.rd] = _wrap64(a - q * b)
        self.pc += 1

    def _op_and(self, ins: Instr) -> None:
        r = self.iregs
        r[ins.rd] = _wrap64((r[ins.ra] & MASK64) & (r[ins.rb] & MASK64))
        self.pc += 1

    def _op_or(self, ins: Instr) -> None:
        r = self.iregs
        r[ins.rd] = _wrap64((r[ins.ra] & MASK64) | (r[ins.rb] & MASK64))
        self.pc += 1

    def _op_xor(self, ins: Instr) -> None:
        r = self.iregs
        r[ins.rd] = _wrap64((r[ins.ra] & MASK64) ^ (r[ins.rb] & MASK64))
        self.pc += 1

    def _op_shl(self, ins: Instr) -> None:
        r = self.iregs
        r[ins.rd] = _wrap64(r[ins.ra] << (r[ins.rb] & 63))
        self.pc += 1

    def _op_shr(self, ins: Instr) -> None:
        r = self.iregs
        r[ins.rd] = r[ins.ra] >> (r[ins.rb] & 63)
        self.pc += 1

    def _op_neg(self, ins: Instr) -> None:
        self.iregs[ins.rd] = _wrap64(-self.iregs[ins.ra])
        self.pc += 1

    def _op_not(self, ins: Instr) -> None:
        self.iregs[ins.rd] = _wrap64(~self.iregs[ins.ra])
        self.pc += 1

    def _op_addi(self, ins: Instr) -> None:
        self.iregs[ins.rd] = _wrap64(self.iregs[ins.ra] + ins.imm)
        self.pc += 1

    def _op_subi(self, ins: Instr) -> None:
        self.iregs[ins.rd] = _wrap64(self.iregs[ins.ra] - ins.imm)
        self.pc += 1

    def _op_muli(self, ins: Instr) -> None:
        self.iregs[ins.rd] = _wrap64(self.iregs[ins.ra] * ins.imm)
        self.pc += 1

    def _op_andi(self, ins: Instr) -> None:
        self.iregs[ins.rd] = _wrap64((self.iregs[ins.ra] & MASK64) & (ins.imm & MASK64))
        self.pc += 1

    def _op_ori(self, ins: Instr) -> None:
        self.iregs[ins.rd] = _wrap64((self.iregs[ins.ra] & MASK64) | (ins.imm & MASK64))
        self.pc += 1

    def _op_xori(self, ins: Instr) -> None:
        self.iregs[ins.rd] = _wrap64((self.iregs[ins.ra] & MASK64) ^ (ins.imm & MASK64))
        self.pc += 1

    def _op_shli(self, ins: Instr) -> None:
        self.iregs[ins.rd] = _wrap64(self.iregs[ins.ra] << (ins.imm & 63))
        self.pc += 1

    def _op_shri(self, ins: Instr) -> None:
        self.iregs[ins.rd] = self.iregs[ins.ra] >> (ins.imm & 63)
        self.pc += 1

    # -- comparisons -----------------------------------------------------------

    def _op_seq(self, ins: Instr) -> None:
        r = self.iregs
        r[ins.rd] = 1 if r[ins.ra] == r[ins.rb] else 0
        self.pc += 1

    def _op_sne(self, ins: Instr) -> None:
        r = self.iregs
        r[ins.rd] = 1 if r[ins.ra] != r[ins.rb] else 0
        self.pc += 1

    def _op_slt(self, ins: Instr) -> None:
        r = self.iregs
        r[ins.rd] = 1 if r[ins.ra] < r[ins.rb] else 0
        self.pc += 1

    def _op_sle(self, ins: Instr) -> None:
        r = self.iregs
        r[ins.rd] = 1 if r[ins.ra] <= r[ins.rb] else 0
        self.pc += 1

    def _op_feq(self, ins: Instr) -> None:
        f = self.fregs
        self.iregs[ins.rd] = 1 if f[ins.ra] == f[ins.rb] else 0
        self.pc += 1

    def _op_fne(self, ins: Instr) -> None:
        f = self.fregs
        self.iregs[ins.rd] = 1 if f[ins.ra] != f[ins.rb] else 0
        self.pc += 1

    def _op_flt(self, ins: Instr) -> None:
        f = self.fregs
        self.iregs[ins.rd] = 1 if f[ins.ra] < f[ins.rb] else 0
        self.pc += 1

    def _op_fle(self, ins: Instr) -> None:
        f = self.fregs
        self.iregs[ins.rd] = 1 if f[ins.ra] <= f[ins.rb] else 0
        self.pc += 1

    # -- floating point --------------------------------------------------------

    def _op_fadd(self, ins: Instr) -> None:
        f = self.fregs
        f[ins.rd] = f[ins.ra] + f[ins.rb]
        self.pc += 1

    def _op_fsub(self, ins: Instr) -> None:
        f = self.fregs
        f[ins.rd] = f[ins.ra] - f[ins.rb]
        self.pc += 1

    def _op_fmul(self, ins: Instr) -> None:
        f = self.fregs
        f[ins.rd] = f[ins.ra] * f[ins.rb]
        self.pc += 1

    def _op_fdiv(self, ins: Instr) -> None:
        f = self.fregs
        a, b = f[ins.ra], f[ins.rb]
        if b == 0.0:
            # IEEE-754: x/0 -> signed inf; 0/0 and nan/0 -> nan.  No trap.
            if a == 0.0 or isnan(a):
                f[ins.rd] = nan
            else:
                f[ins.rd] = copysign(inf, a) * copysign(1.0, b)
        else:
            f[ins.rd] = a / b
        self.pc += 1

    def _op_fneg(self, ins: Instr) -> None:
        f = self.fregs
        f[ins.rd] = -f[ins.ra]
        self.pc += 1

    def _op_fsqrt(self, ins: Instr) -> None:
        f = self.fregs
        a = f[ins.ra]
        # IEEE: sqrt of a negative is NaN (quiet), not a trap.
        f[ins.rd] = nan if a < 0.0 else (a if isnan(a) else sqrt(a))
        self.pc += 1

    def _op_fabs(self, ins: Instr) -> None:
        f = self.fregs
        f[ins.rd] = abs(f[ins.ra])
        self.pc += 1

    def _op_fmin(self, ins: Instr) -> None:
        # IEEE-754 minNum: a quiet NaN loses to a number (see FAULT_MODEL.md).
        f = self.fregs
        a, b = f[ins.ra], f[ins.rb]
        if isnan(a):
            f[ins.rd] = b
        elif isnan(b):
            f[ins.rd] = a
        else:
            f[ins.rd] = a if a < b else b
        self.pc += 1

    def _op_fmax(self, ins: Instr) -> None:
        # IEEE-754 maxNum: a quiet NaN loses to a number (see FAULT_MODEL.md).
        f = self.fregs
        a, b = f[ins.ra], f[ins.rb]
        if isnan(a):
            f[ins.rd] = b
        elif isnan(b):
            f[ins.rd] = a
        else:
            f[ins.rd] = a if a > b else b
        self.pc += 1

    # -- conversions -----------------------------------------------------------

    def _op_itof(self, ins: Instr) -> None:
        self.fregs[ins.rd] = float(self.iregs[ins.ra])
        self.pc += 1

    def _op_ftoi(self, ins: Instr) -> None:
        a = self.fregs[ins.ra]
        if isnan(a) or isinf(a):
            value = INT64_MIN  # x86 cvttsd2si "integer indefinite"
        else:
            value = int(a)
            if value < INT64_MIN or value > INT64_MAX:
                value = INT64_MIN
        self.iregs[ins.rd] = value
        self.pc += 1

    # -- control flow ----------------------------------------------------------

    def _op_jmp(self, ins: Instr) -> None:
        self.pc = ins.imm

    def _op_beqz(self, ins: Instr) -> None:
        self.pc = ins.imm if self.iregs[ins.ra] == 0 else self.pc + 1

    def _op_bnez(self, ins: Instr) -> None:
        self.pc = ins.imm if self.iregs[ins.ra] != 0 else self.pc + 1

    def _op_call(self, ins: Instr) -> None:
        sp = self.iregs[SP] - 8
        try:
            self.memory.write_int(sp, self.pc + 1)
        except AccessError as exc:
            raise self._mem_trap(exc, ins) from None
        self.iregs[SP] = sp
        self.pc = ins.imm

    def _op_ret(self, ins: Instr) -> None:
        sp = self.iregs[SP]
        try:
            target = self.memory.read_int(sp)
        except AccessError as exc:
            raise self._mem_trap(exc, ins) from None
        self.iregs[SP] = sp + 8
        self.pc = target

    # -- system ------------------------------------------------------------

    def _op_halt(self, ins: Instr) -> None:
        # pc stays on the HALT site: state captured at (or resumed into)
        # the halt re-reports a clean halt instead of fetch-faulting past
        # the end of the image.
        self.halted = True
        self.exit_code = self.iregs[0]

    def _op_out(self, ins: Instr) -> None:
        self.output.append(("i", self.iregs[ins.ra]))
        self.pc += 1

    def _op_fout(self, ins: Instr) -> None:
        self.output.append(("f", self.fregs[ins.ra]))
        self.pc += 1

    def _op_abort(self, ins: Instr) -> None:
        raise Trap(
            Signal.SIGABRT,
            pc=self.pc,
            instr=ins,
            detail="application abort",
        )

    # -- inter-rank communication ------------------------------------------

    def _net_trap(self, ins: Instr, detail: str) -> Trap:
        # A bad rank behaves like a bad address: SIGBUS, elidable by LetGo.
        return Trap(Signal.SIGBUS, pc=self.pc, instr=ins, detail=detail)

    def _op_rank(self, ins: Instr) -> None:
        self.iregs[ins.rd] = self.rank
        self.pc += 1

    def _op_nranks(self, ins: Instr) -> None:
        self.iregs[ins.rd] = self.network.size if self.network is not None else 1
        self.pc += 1

    def _op_send(self, ins: Instr) -> None:
        if self.network is None:
            raise self._net_trap(ins, "send outside a cluster")
        dst = self.iregs[ins.ra]
        if not self.network.valid_rank(dst):
            raise self._net_trap(ins, f"send to invalid rank {dst}")
        self.network.send(self.rank, dst, int_to_pattern(self.iregs[ins.rb]))
        self.pc += 1

    def _op_fsend(self, ins: Instr) -> None:
        if self.network is None:
            raise self._net_trap(ins, "fsend outside a cluster")
        dst = self.iregs[ins.ra]
        if not self.network.valid_rank(dst):
            raise self._net_trap(ins, f"fsend to invalid rank {dst}")
        self.network.send(self.rank, dst, float_to_pattern(self.fregs[ins.rb]))
        self.pc += 1

    def _op_recv(self, ins: Instr) -> None:
        if self.network is None:
            raise self._net_trap(ins, "recv outside a cluster")
        src = self.iregs[ins.ra]
        if not self.network.valid_rank(src):
            raise self._net_trap(ins, f"recv from invalid rank {src}")
        pattern = self.network.recv(self.rank, src)
        if pattern is None:
            raise Blocked(pc=self.pc, rank=self.rank, src=src)
        self.iregs[ins.rd] = pattern_to_int(pattern)
        self.pc += 1

    def _op_frecv(self, ins: Instr) -> None:
        if self.network is None:
            raise self._net_trap(ins, "frecv outside a cluster")
        src = self.iregs[ins.ra]
        if not self.network.valid_rank(src):
            raise self._net_trap(ins, f"frecv from invalid rank {src}")
        pattern = self.network.recv(self.rank, src)
        if pattern is None:
            raise Blocked(pc=self.pc, rank=self.rank, src=src)
        self.fregs[ins.rd] = pattern_to_float(pattern)
        self.pc += 1


__all__ = ["CPU", "STOP_HALT", "STOP_STEPS"]
