"""Protected, sparse, cell-granular memory.

Memory holds raw 64-bit *patterns* (unsigned ints); typed views (signed
integer / IEEE double) are applied at the load/store boundary by the CPU.
That makes behaviour after corruption fully defined: a bit-flipped address
register may load a cell that was written as a float into an integer
register, and the result is exactly the reinterpretation x86 would give.

Protection is segment-based: accesses must fall inside a mapped segment
(else the access *faults*, reported by the CPU as SIGSEGV) and be 8-byte
aligned (else SIGBUS).  The segment check happens first -- real hardware
walks the page tables before it complains about alignment -- so an access
that is both unmapped *and* misaligned reports SIGSEGV.  Faults are
signalled with the lightweight :class:`AccessError` carrying the kind; the
CPU converts it to a full :class:`~repro.machine.signals.Trap` with PC
context.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.isa.layout import CELL, MASK64

_PACK_D = struct.Struct("<d")
_PACK_Q = struct.Struct("<Q")


class AccessError(Exception):
    """A faulting memory access.  ``kind`` is 'segv' or 'bus'."""

    def __init__(self, kind: str, address: int, mode: str):
        self.kind = kind
        self.address = address
        self.mode = mode  # 'read' | 'write'
        super().__init__(f"{kind} on {mode} at 0x{address & MASK64:x}")


@dataclass(frozen=True)
class Segment:
    """A mapped address range ``[start, end)``."""

    name: str
    start: int
    end: int

    def __contains__(self, address: int) -> bool:
        return self.start <= address < self.end


class Memory:
    """Sparse cell store with segment protection.

    Cells not yet written read as zero -- deliberately: the paper's
    Heuristic I picks 0 as the fill value "because the memory often
    contains a lot of 0s as initialization data".
    """

    __slots__ = ("_cells", "_segments", "_ranges")

    def __init__(self) -> None:
        self._cells: dict[int, int] = {}
        self._segments: list[Segment] = []
        self._ranges: list[tuple[int, int]] = []

    # -- mapping -----------------------------------------------------------

    def map_segment(self, name: str, start: int, size: int) -> Segment:
        """Map ``[start, start+size)``; start/size must be cell-aligned."""
        if start % CELL or size % CELL or size <= 0:
            raise ValueError(f"segment {name!r} not cell-aligned: {start:#x}+{size:#x}")
        end = start + size
        for seg in self._segments:
            if start < seg.end and seg.start < end:
                raise ValueError(f"segment {name!r} overlaps {seg.name!r}")
        seg = Segment(name, start, end)
        self._segments.append(seg)
        self._segments.sort(key=lambda s: s.start)
        self._ranges = [(s.start, s.end) for s in self._segments]
        return seg

    @property
    def segments(self) -> tuple[Segment, ...]:
        """Mapped segments, sorted by start address."""
        return tuple(self._segments)

    def segment_for(self, address: int) -> Segment | None:
        """The segment containing *address*, or None."""
        for seg in self._segments:
            if address in seg:
                return seg
        return None

    def is_mapped(self, address: int) -> bool:
        """True if *address* lies in a mapped segment."""
        for lo, hi in self._ranges:
            if lo <= address < hi:
                return True
        return False

    # -- raw pattern access --------------------------------------------------

    def read_pattern(self, address: int) -> int:
        """Read the 64-bit pattern at *address* (checked, mapping first)."""
        for lo, hi in self._ranges:
            if lo <= address < hi:
                if address % CELL:
                    raise AccessError("bus", address, "read")
                return self._cells.get(address, 0)
        raise AccessError("segv", address, "read")

    def write_pattern(self, address: int, pattern: int) -> None:
        """Write a 64-bit pattern at *address* (checked, mapping first)."""
        for lo, hi in self._ranges:
            if lo <= address < hi:
                if address % CELL:
                    raise AccessError("bus", address, "write")
                self._cells[address] = pattern & MASK64
                return
        raise AccessError("segv", address, "write")

    # -- typed access (CPU load/store boundary) ---------------------------

    def read_int(self, address: int) -> int:
        """Read a signed 64-bit integer."""
        pattern = self.read_pattern(address)
        return pattern - (1 << 64) if pattern >= (1 << 63) else pattern

    def write_int(self, address: int, value: int) -> None:
        """Write a signed 64-bit integer (wraps)."""
        self.write_pattern(address, value & MASK64)

    def read_float(self, address: int) -> float:
        """Read an IEEE-754 double."""
        pattern = self.read_pattern(address)
        return _PACK_D.unpack(_PACK_Q.pack(pattern))[0]

    def write_float(self, address: int, value: float) -> None:
        """Write an IEEE-754 double."""
        self.write_pattern(address, _PACK_Q.unpack(_PACK_D.pack(value))[0])

    # -- debugging / inspection helpers ------------------------------------

    def written_cells(self) -> dict[int, int]:
        """Copy of all cells that have been explicitly written."""
        return dict(self._cells)

    def load_cells(self, cells: dict[int, int]) -> None:
        """Wholesale-replace contents with *cells* (bulk restore path).

        Skips the per-cell segment/alignment checks of
        :meth:`write_pattern`: callers pass cells captured from a process
        with an identical segment map (see ``repro.checkpoint.snapshot``),
        where every address was validated when originally written.
        """
        self._cells = dict(cells)

    def clear(self) -> None:
        """Drop contents but keep the segment map."""
        self._cells.clear()

    @property
    def n_written(self) -> int:
        """Number of cells holding an explicitly written pattern."""
        return len(self._cells)


def float_to_pattern(value: float) -> int:
    """IEEE-754 bit pattern of *value* as an unsigned 64-bit int."""
    return _PACK_Q.unpack(_PACK_D.pack(value))[0]


def pattern_to_float(pattern: int) -> float:
    """Reinterpret an unsigned 64-bit pattern as an IEEE-754 double."""
    return _PACK_D.unpack(_PACK_Q.pack(pattern & MASK64))[0]


def int_to_pattern(value: int) -> int:
    """Two's-complement pattern of a (possibly out-of-range) int."""
    return value & MASK64


def pattern_to_int(pattern: int) -> int:
    """Signed value of an unsigned 64-bit pattern."""
    pattern &= MASK64
    return pattern - (1 << 64) if pattern >= (1 << 63) else pattern


__all__ = [
    "Memory",
    "Segment",
    "AccessError",
    "float_to_pattern",
    "pattern_to_float",
    "int_to_pattern",
    "pattern_to_int",
]
