"""A gdb-flavoured command interpreter over :class:`DebugSession`.

The original LetGo is a gdb script; this module closes the loop by
offering the same command surface on the reproduction's machine, usable
interactively (``python -m repro.machine.repl <image>``) or
programmatically (feed command strings, read reply strings -- which is
how the tests drive it, and how pexpect drove gdb in the paper).

Supported commands::

    break PC | delete PC      breakpoints
    run N | continue N        execute (N = instruction budget)
    step [N]                  single-step
    print REG | print *ADDR   inspect a register / memory cell
    set REG VALUE             write a register (floats for f*, ints else)
    setmem ADDR PATTERN       write a memory cell
    info regs | info trap | info breakpoints
    handle letgo [B|E]        repair the pending trap LetGo-style, resume-ready
    disas [PC [N]]            disassemble around PC
    where                     current pc + containing function
    quit
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.functions import FunctionTable
from repro.core.config import LETGO_B, LETGO_E
from repro.core.modifier import Modifier
from repro.errors import AnalysisError, ReproError
from repro.isa.program import Program
from repro.isa.registers import FP_REG_NAMES, INT_REG_NAMES
from repro.machine.debugger import (
    STOP_BREAKPOINT,
    STOP_BUDGET,
    STOP_EXITED,
    STOP_TRAP,
    DebugSession,
    StopEvent,
)
from repro.machine.memory import AccessError
from repro.machine.process import Process


class ReplError(ReproError):
    """Bad command or argument."""


@dataclass
class _State:
    program: Program
    session: DebugSession
    pending_trap: StopEvent | None = None


class DebuggerRepl:
    """Stateful command interpreter; each ``execute`` returns the reply."""

    def __init__(self, program: Program):
        self._state = _State(
            program=program, session=DebugSession(Process.load(program))
        )
        self._functions = FunctionTable(program)
        self.done = False

    # -- public API --------------------------------------------------------

    def execute(self, line: str) -> str:
        """Run one command line; returns the textual reply."""
        parts = line.split()
        if not parts:
            return ""
        command, args = parts[0].lower(), parts[1:]
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            return f"error: unknown command {command!r} (try 'help')"
        try:
            return handler(args)
        except ReplError as exc:
            return f"error: {exc}"
        except (AccessError, AnalysisError) as exc:
            return f"error: {exc}"

    # -- helpers ------------------------------------------------------------

    @property
    def session(self) -> DebugSession:
        return self._state.session

    def _int(self, text: str, what: str) -> int:
        try:
            return int(text, 0)
        except ValueError:
            raise ReplError(f"bad {what}: {text!r}") from None

    def _describe_stop(self, event: StopEvent) -> str:
        if event.kind == STOP_EXITED:
            code = self.session.process.exit_code
            return f"exited with code {code} after {event.steps} steps"
        if event.kind == STOP_TRAP:
            self._state.pending_trap = event
            return f"stopped: {event.trap} (use 'handle letgo' to repair)"
        if event.kind == STOP_BREAKPOINT:
            return f"breakpoint hit at pc={event.pc}"
        if event.kind == STOP_BUDGET:
            return f"budget exhausted at pc={event.pc}"
        return f"stopped after {event.steps} steps at pc={event.pc}"

    # -- commands -----------------------------------------------------------

    def _cmd_help(self, _args) -> str:
        return (
            "commands: break/delete PC, run N, continue N, step [N], "
            "print REG|*ADDR, set REG VALUE, setmem ADDR PATTERN, "
            "info regs|trap|breakpoints, handle letgo [B|E], "
            "disas [PC [N]], where, quit"
        )

    def _cmd_break(self, args) -> str:
        if len(args) != 1:
            raise ReplError("usage: break PC")
        pc = self._int(args[0], "pc")
        self.session.set_breakpoint(pc)
        return f"breakpoint set at pc={pc}"

    def _cmd_delete(self, args) -> str:
        if len(args) != 1:
            raise ReplError("usage: delete PC")
        self.session.clear_breakpoint(self._int(args[0], "pc"))
        return "breakpoint cleared"

    def _cmd_run(self, args) -> str:
        budget = self._int(args[0], "budget") if args else 10_000_000
        return self._describe_stop(self.session.cont(budget))

    _cmd_continue = _cmd_run
    _cmd_c = _cmd_run

    def _cmd_step(self, args) -> str:
        n = self._int(args[0], "count") if args else 1
        event = self.session.run_steps(n)
        reply = self._describe_stop(event)
        return f"{reply}\n{self._cmd_where([])}"

    def _cmd_print(self, args) -> str:
        if len(args) != 1:
            raise ReplError("usage: print REG or print *ADDR")
        token = args[0]
        if token.startswith("*"):
            address = self._int(token[1:], "address")
            pattern = self.session.read_mem(address)
            return f"mem[0x{address:x}] = 0x{pattern:016x}"
        try:
            value = self.session.read_reg(token)
        except KeyError:
            raise ReplError(f"unknown register {token!r}") from None
        return f"{token} = {value!r}"

    def _cmd_set(self, args) -> str:
        if len(args) != 2:
            raise ReplError("usage: set REG VALUE")
        name, literal = args
        try:
            value: int | float
            value = float(literal) if name.startswith("f") else int(literal, 0)
            self.session.write_reg(name, value)
        except KeyError:
            raise ReplError(f"unknown register {name!r}") from None
        except ValueError:
            raise ReplError(f"bad value {literal!r}") from None
        return f"{name} <- {value!r}"

    def _cmd_setmem(self, args) -> str:
        if len(args) != 2:
            raise ReplError("usage: setmem ADDR PATTERN")
        address = self._int(args[0], "address")
        pattern = self._int(args[1], "pattern")
        self.session.write_mem(address, pattern)
        return f"mem[0x{address:x}] <- 0x{pattern:016x}"

    def _cmd_info(self, args) -> str:
        topic = args[0] if args else "regs"
        if topic == "regs":
            cpu = self.session.process.cpu
            lines = [f"pc = {cpu.pc}"]
            for i, name in enumerate(INT_REG_NAMES):
                lines.append(f"{name:4s} = {cpu.iregs[i]}")
            for i, name in enumerate(FP_REG_NAMES):
                if cpu.fregs[i] != 0.0:
                    lines.append(f"{name:4s} = {cpu.fregs[i]!r}")
            return "\n".join(lines)
        if topic == "trap":
            pending = self._state.pending_trap
            return str(pending.trap) if pending else "no pending trap"
        if topic == "breakpoints":
            bps = sorted(self.session.breakpoints)
            return f"breakpoints: {bps}" if bps else "no breakpoints"
        raise ReplError(f"unknown info topic {topic!r}")

    def _cmd_handle(self, args) -> str:
        if not args or args[0] != "letgo":
            raise ReplError("usage: handle letgo [B|E]")
        pending = self._state.pending_trap
        if pending is None or pending.trap is None:
            raise ReplError("no pending trap to repair")
        config = LETGO_B if len(args) > 1 and args[1].upper() == "B" else LETGO_E
        record = Modifier(config, self._functions).repair(
            self.session, pending.trap
        )
        self._state.pending_trap = None
        actions = "; ".join(str(a) for a in record.actions) or "pc advance only"
        return f"repaired ({config.name}): {actions}"

    def _cmd_disas(self, args) -> str:
        cpu = self.session.process.cpu
        center = self._int(args[0], "pc") if args else cpu.pc
        count = self._int(args[1], "count") if len(args) > 1 else 8
        lines = []
        instrs = self._state.program.instrs
        lo = max(0, center - count // 2)
        for pc in range(lo, min(len(instrs), lo + count)):
            marker = "=>" if pc == cpu.pc else "  "
            lines.append(f"{marker} {pc:6d}: {instrs[pc].text()}")
        return "\n".join(lines) if lines else "pc outside the image"

    def _cmd_where(self, _args) -> str:
        pc = self.session.process.cpu.pc
        try:
            function = self._functions.function_at(pc).name
        except AnalysisError:
            function = "<outside image>"
        return f"pc={pc} in {function}"

    def _cmd_quit(self, _args) -> str:
        self.done = True
        return "bye"


def run_script(program: Program, commands: list[str]) -> list[str]:
    """Drive a REPL with a fixed command list (the pexpect pattern)."""
    repl = DebuggerRepl(program)
    replies = []
    for command in commands:
        replies.append(repl.execute(command))
        if repl.done:
            break
    return replies


def main() -> int:  # pragma: no cover - interactive convenience
    import sys

    from repro.isa.encoding import decode_program

    if len(sys.argv) != 2:
        print("usage: python -m repro.machine.repl <image-file>")
        return 2
    with open(sys.argv[1], "rb") as handle:
        program = decode_program(handle.read())
    repl = DebuggerRepl(program)
    print(f"loaded {program.source_name or sys.argv[1]}; 'help' for commands")
    while not repl.done:
        try:
            line = input("(repro-db) ")
        except EOFError:
            break
        reply = repl.execute(line)
        if reply:
            print(reply)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())


__all__ = ["DebuggerRepl", "run_script", "ReplError"]
