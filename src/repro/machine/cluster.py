"""SPMD clusters: N ranks of one program with message passing.

Models the multi-node HPC job of the paper's Section-7 assumptions: ranks
run the same image (SPMD), communicate through asynchronous unbounded
point-to-point queues (``send``/``fsend`` never block; ``recv``/``frecv``
block until a message from the named source arrives), and are scheduled
round-robin by :class:`Cluster` with a configurable quantum.

The scheduler surfaces exactly the events a fault-tolerance layer needs:
the first trap (with its rank), completion of all ranks, deadlock (every
live rank blocked on an empty queue), and budget exhaustion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.isa.program import Program
from repro.machine.cpu import STOP_HALT
from repro.machine.process import Process, ProcessStatus
from repro.machine.signals import Blocked, Trap


class Network:
    """Point-to-point message queues between ranks.

    Messages are raw 64-bit patterns (typed views applied at the
    send/recv instruction boundary, like memory cells).
    """

    def __init__(self, size: int):
        if size < 1:
            raise SimulationError("cluster size must be >= 1")
        self.size = size
        self._queues: dict[tuple[int, int], deque[int]] = {}

    def valid_rank(self, rank: int) -> bool:
        """True if *rank* names a member of this cluster."""
        return 0 <= rank < self.size

    def send(self, src: int, dst: int, pattern: int) -> None:
        """Enqueue a message (asynchronous, unbounded)."""
        self._queues.setdefault((src, dst), deque()).append(pattern)

    def recv(self, dst: int, src: int) -> int | None:
        """Dequeue the next message from *src* to *dst*, or ``None``."""
        queue = self._queues.get((src, dst))
        if not queue:
            return None
        return queue.popleft()

    def pending(self, dst: int, src: int) -> int:
        """Messages waiting from *src* to *dst*."""
        queue = self._queues.get((src, dst))
        return len(queue) if queue else 0

    def in_flight(self) -> int:
        """Total queued messages across all channels."""
        return sum(len(q) for q in self._queues.values())

    # -- checkpoint support ----------------------------------------------

    def capture(self) -> dict[tuple[int, int], tuple[int, ...]]:
        """Immutable copy of all channel contents."""
        return {key: tuple(q) for key, q in self._queues.items() if q}

    def reset(self, state: dict[tuple[int, int], tuple[int, ...]]) -> None:
        """Restore channel contents from :meth:`capture`."""
        self._queues = {key: deque(values) for key, values in state.items()}


@dataclass
class ClusterEvent:
    """Why :meth:`Cluster.run` returned."""

    kind: str                    # 'exited' | 'trap' | 'deadlock' | 'budget'
    steps: int                   # instructions retired across ranks this call
    rank: int | None = None     # the trapping rank, for 'trap'
    trap: Trap | None = None

    def __str__(self) -> str:
        base = f"cluster[{self.kind}] steps={self.steps}"
        if self.trap is not None:
            return f"{base} rank={self.rank} ({self.trap})"
        return base


@dataclass
class _RankState:
    process: Process
    blocked_on: int | None = None   # src rank when blocked
    exited: bool = False
    terminated: bool = False
    steps: int = 0                  # retired instructions, lifetime


class Cluster:
    """N ranks of one program sharing a :class:`Network`."""

    def __init__(self, program: Program, size: int):
        self.program = program
        self.network = Network(size)
        self.ranks: list[_RankState] = []
        for rank in range(size):
            process = Process.load(program)
            process.cpu.rank = rank
            process.cpu.network = self.network
            self.ranks.append(_RankState(process=process))

    @property
    def size(self) -> int:
        return self.network.size

    def process(self, rank: int) -> Process:
        """The process running as *rank*."""
        return self.ranks[rank].process

    def replace_process(self, rank: int, process: Process) -> None:
        """Swap in a restored process for *rank* (rollback support)."""
        process.cpu.rank = rank
        process.cpu.network = self.network
        state = self.ranks[rank]
        state.process = process
        state.blocked_on = None
        state.exited = process.status is ProcessStatus.EXITED
        state.terminated = process.status is ProcessStatus.TERMINATED

    # -- scheduling -----------------------------------------------------------

    def all_exited(self) -> bool:
        """True when every rank has halted cleanly."""
        return all(r.exited for r in self.ranks)

    def outputs(self) -> list[list[tuple[str, int | float]]]:
        """Per-rank output streams, rank order."""
        return [list(r.process.cpu.output) for r in self.ranks]

    def total_steps(self) -> int:
        """Instructions retired across all ranks, lifetime."""
        return sum(r.steps for r in self.ranks)

    def run(self, max_steps: int, quantum: int = 2000) -> ClusterEvent:
        """Round-robin schedule until an event; *max_steps* is the total
        (all-rank) instruction budget for this call."""
        remaining = max_steps
        executed_total = 0
        while remaining > 0:
            progress = False
            for rank_state in self.ranks:
                if rank_state.exited or rank_state.terminated:
                    continue
                cpu = rank_state.process.cpu
                if rank_state.blocked_on is not None:
                    if self.network.pending(cpu.rank, rank_state.blocked_on) == 0:
                        continue  # still nothing for it
                    rank_state.blocked_on = None
                before = cpu.instret
                try:
                    stop = cpu.run(min(quantum, remaining))
                except Blocked as blocked:
                    executed = cpu.instret - before
                    rank_state.steps += executed
                    remaining -= executed
                    executed_total += executed
                    rank_state.blocked_on = blocked.src
                    progress = progress or executed > 0
                    continue
                except Trap as trap:
                    executed = cpu.instret - before
                    rank_state.steps += executed
                    executed_total += executed
                    return ClusterEvent(
                        kind="trap",
                        steps=executed_total,
                        rank=cpu.rank,
                        trap=trap,
                    )
                executed = cpu.instret - before
                rank_state.steps += executed
                remaining -= executed
                executed_total += executed
                progress = progress or executed > 0
                if stop == STOP_HALT:
                    rank_state.exited = True
                    rank_state.process.status = ProcessStatus.EXITED
            if self.all_exited():
                return ClusterEvent(kind="exited", steps=executed_total)
            if not progress:
                return ClusterEvent(kind="deadlock", steps=executed_total)
        return ClusterEvent(kind="budget", steps=executed_total)


__all__ = ["Network", "Cluster", "ClusterEvent"]
