"""Flight recorder: the last N instructions before a stop.

A crash post-mortem tool: wraps a process and keeps a ring buffer of
recently executed (pc, instruction) pairs plus the register deltas of the
final few steps.  Used to diagnose double crashes (what did the repaired
run do between the repair and the second trap?) without paying tracing
costs on the fast path of normal runs -- recording is explicit opt-in and
runs the slow single-step loop.

Recording works on any execution backend: it only needs budget-1 ``run``
calls and the architectural registers, both part of the backend contract.
(On the compiled backend single-stepping forgoes fusion, so a recorded
stretch runs at roughly interpreter speed -- fine for post-mortems, which
cover only the last few hundred instructions.)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.isa.registers import FP_REG_NAMES, INT_REG_NAMES
from repro.machine.process import Process
from repro.machine.signals import Trap


@dataclass
class TraceEntry:
    """One executed instruction."""

    index: int      # dynamic ordinal within the recording
    pc: int
    text: str


@dataclass
class FlightRecording:
    """Result of a recorded run."""

    entries: list[TraceEntry]
    stopped_by: Trap | None
    steps: int
    final_regs: dict[str, int | float] = field(default_factory=dict)

    def tail(self, n: int = 10) -> list[TraceEntry]:
        """The last *n* executed instructions."""
        return self.entries[-n:]

    def render(self) -> str:
        lines = [f"flight recording: {self.steps} steps"]
        if self.stopped_by is not None:
            lines.append(f"stopped by: {self.stopped_by}")
        for entry in self.entries:
            lines.append(f"  [{entry.index:6d}] pc={entry.pc:5d}  {entry.text}")
        return "\n".join(lines)


def record(
    process: Process,
    max_steps: int,
    window: int = 32,
) -> FlightRecording:
    """Single-step *process*, keeping the last *window* instructions.

    Stops on halt, trap, or budget; the trap (if any) is captured rather
    than raised so callers can inspect the recording alongside it.
    """
    cpu = process.cpu
    ring: deque[TraceEntry] = deque(maxlen=window)
    trap: Trap | None = None
    steps = 0
    instrs = process.program.instrs
    while steps < max_steps and not cpu.halted:
        pc = cpu.pc
        if 0 <= pc < len(instrs):
            text = instrs[pc].text()
        else:
            text = "<fetch fault>"
        try:
            cpu.run(1)
        except Trap as caught:
            trap = caught
            break
        ring.append(TraceEntry(index=steps, pc=pc, text=text))
        steps += 1
    regs: dict[str, int | float] = {
        name: cpu.iregs[i] for i, name in enumerate(INT_REG_NAMES)
    }
    regs.update({name: cpu.fregs[i] for i, name in enumerate(FP_REG_NAMES)})
    regs["pc"] = cpu.pc
    return FlightRecording(
        entries=list(ring),
        stopped_by=trap,
        steps=steps,
        final_regs=regs,
    )


__all__ = ["FlightRecording", "TraceEntry", "record"]
