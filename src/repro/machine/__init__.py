"""Machine substrate: memory, CPU, processes, signals, and a debugger.

Replaces the hardware + Linux + gdb layer of the original LetGo prototype.
"""

from repro.machine.cluster import Cluster, ClusterEvent, Network
from repro.machine.compiled import (
    BACKENDS,
    CompiledCPU,
    cpu_class,
    default_backend,
)
from repro.machine.cpu import CPU, STOP_HALT, STOP_STEPS
from repro.machine.flightrec import FlightRecording, TraceEntry, record
from repro.machine.debugger import (
    STOP_BREAKPOINT,
    STOP_BUDGET,
    STOP_EXITED,
    STOP_STEPS_DONE,
    STOP_TRAP,
    DebugSession,
    StopEvent,
)
from repro.machine.memory import (
    AccessError,
    Memory,
    Segment,
    float_to_pattern,
    int_to_pattern,
    pattern_to_float,
    pattern_to_int,
)
from repro.machine.process import Process, ProcessStatus, RunResult
from repro.machine.signals import LETGO_DEFAULT_SIGNALS, Blocked, Signal, Trap

__all__ = [
    "Cluster",
    "ClusterEvent",
    "Network",
    "Blocked",
    "FlightRecording",
    "TraceEntry",
    "record",
    "CPU",
    "CompiledCPU",
    "BACKENDS",
    "cpu_class",
    "default_backend",
    "STOP_HALT",
    "STOP_STEPS",
    "DebugSession",
    "StopEvent",
    "STOP_EXITED",
    "STOP_TRAP",
    "STOP_BREAKPOINT",
    "STOP_BUDGET",
    "STOP_STEPS_DONE",
    "Memory",
    "Segment",
    "AccessError",
    "float_to_pattern",
    "pattern_to_float",
    "int_to_pattern",
    "pattern_to_int",
    "Process",
    "ProcessStatus",
    "RunResult",
    "Signal",
    "Trap",
    "LETGO_DEFAULT_SIGNALS",
]
