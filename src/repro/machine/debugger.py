"""A gdb-like debug session over a :class:`~repro.machine.process.Process`.

This is the control surface the original LetGo scripts through
gdb + pexpect: attach, configure which signals *stop* the program instead of
killing it, run / step / continue, read and write registers, and resume
after editing state.  Both the LetGo monitor and the fault injector are
built on this class, mirroring the paper's implementation strategy.

The session is backend-agnostic: it drives the process through the public
``cpu.run(n)`` contract (budgeted execution, precise traps, ``instret``
accounting), which both the reference interpreter and the compiled backend
honour bit-for-bit.  Attaching to a compiled process costs nothing extra --
single-stepping simply runs with a budget of one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import (
    fp_reg_index,
    int_reg_index,
    is_fp_reg,
    is_int_reg,
)
from repro.machine.cpu import STOP_HALT
from repro.machine.process import Process, ProcessStatus
from repro.machine.signals import Trap

#: Stop kinds reported by :class:`StopEvent`.
STOP_EXITED = "exited"
STOP_TRAP = "trap"
STOP_BREAKPOINT = "breakpoint"
STOP_BUDGET = "budget"
STOP_STEPS_DONE = "steps"


@dataclass
class StopEvent:
    """Why the debuggee stopped."""

    kind: str
    steps: int
    pc: int
    trap: Trap | None = None

    def __str__(self) -> str:
        base = f"stop[{self.kind}] pc={self.pc} steps={self.steps}"
        return f"{base} ({self.trap})" if self.trap else base


class DebugSession:
    """Attach-and-control wrapper.

    Unlike :meth:`Process.run`, traps do NOT terminate the process here --
    they stop it and are reported in the :class:`StopEvent`, exactly like
    gdb with ``handle SIG stop nopass``.  The controller decides whether to
    repair and continue (LetGo) or deliver the default action (kill).
    """

    def __init__(self, process: Process):
        self.process = process
        self.breakpoints: set[int] = set()
        self.last_stop: StopEvent | None = None

    # -- execution ---------------------------------------------------------

    def cont(self, max_steps: int) -> StopEvent:
        """Continue until halt, trap, breakpoint, or *max_steps*."""
        cpu = self.process.cpu
        before = cpu.instret
        if self.breakpoints:
            event = self._run_with_breakpoints(max_steps)
        else:
            try:
                stop = cpu.run(max_steps)
            except Trap as trap:
                event = StopEvent(
                    STOP_TRAP, cpu.instret - before, pc=cpu.pc, trap=trap
                )
            else:
                kind = STOP_EXITED if stop == STOP_HALT else STOP_BUDGET
                event = StopEvent(kind, cpu.instret - before, pc=cpu.pc)
        if event.kind == STOP_EXITED:
            self.process.status = ProcessStatus.EXITED
        self.last_stop = event
        return event

    def run_steps(self, n: int) -> StopEvent:
        """Execute exactly *n* instructions (early stop on halt/trap)."""
        cpu = self.process.cpu
        before = cpu.instret
        try:
            stop = cpu.run(n)
        except Trap as trap:
            event = StopEvent(STOP_TRAP, cpu.instret - before, pc=cpu.pc, trap=trap)
        else:
            if stop == STOP_HALT:
                self.process.status = ProcessStatus.EXITED
                event = StopEvent(STOP_EXITED, cpu.instret - before, pc=cpu.pc)
            else:
                event = StopEvent(STOP_STEPS_DONE, cpu.instret - before, pc=cpu.pc)
        self.last_stop = event
        return event

    def _run_with_breakpoints(self, max_steps: int) -> StopEvent:
        cpu = self.process.cpu
        before = cpu.instret
        bps = self.breakpoints
        for _ in range(max_steps):
            if cpu.halted:
                return StopEvent(STOP_EXITED, cpu.instret - before, pc=cpu.pc)
            try:
                cpu.run(1)
            except Trap as trap:
                return StopEvent(
                    STOP_TRAP, cpu.instret - before, pc=cpu.pc, trap=trap
                )
            if cpu.pc in bps:
                return StopEvent(
                    STOP_BREAKPOINT, cpu.instret - before, pc=cpu.pc
                )
        if cpu.halted:
            return StopEvent(STOP_EXITED, cpu.instret - before, pc=cpu.pc)
        return StopEvent(STOP_BUDGET, cpu.instret - before, pc=cpu.pc)

    # -- signal delivery -------------------------------------------------------

    def deliver_default(self, trap: Trap) -> None:
        """Let the default disposition apply: terminate the process."""
        self.process.last_trap = trap
        self.process.term_signal = trap.signal
        self.process.status = ProcessStatus.TERMINATED

    # -- state access (gdb "print" / "set") ----------------------------------

    def read_reg(self, name: str) -> int | float:
        """Read a register by name (``pc`` included)."""
        if name == "pc":
            return self.process.cpu.pc
        if is_int_reg(name):
            return self.process.cpu.iregs[int_reg_index(name)]
        if is_fp_reg(name):
            return self.process.cpu.fregs[fp_reg_index(name)]
        raise KeyError(name)

    def write_reg(self, name: str, value: int | float) -> None:
        """Write a register by name (``pc`` included)."""
        if name == "pc":
            self.process.cpu.pc = int(value)
        elif is_int_reg(name):
            self.process.cpu.iregs[int_reg_index(name)] = int(value)
        elif is_fp_reg(name):
            self.process.cpu.fregs[fp_reg_index(name)] = float(value)
        else:
            raise KeyError(name)

    def set_pc(self, pc: int) -> None:
        """Move the program counter (LetGo's "advance PC" primitive)."""
        self.process.cpu.pc = pc

    def read_mem(self, address: int) -> int:
        """Raw 64-bit pattern at *address* (checked like a load)."""
        return self.process.memory.read_pattern(address)

    def write_mem(self, address: int, pattern: int) -> None:
        """Write a raw pattern (checked like a store)."""
        self.process.memory.write_pattern(address, pattern)

    # -- breakpoints ----------------------------------------------------------

    def set_breakpoint(self, pc: int) -> None:
        """Stop whenever execution reaches *pc*."""
        self.breakpoints.add(pc)

    def clear_breakpoint(self, pc: int) -> None:
        """Remove a breakpoint if present."""
        self.breakpoints.discard(pc)


__all__ = [
    "DebugSession",
    "StopEvent",
    "STOP_EXITED",
    "STOP_TRAP",
    "STOP_BREAKPOINT",
    "STOP_BUDGET",
    "STOP_STEPS_DONE",
]
