"""Closure-compiled execution backend: the interpreter's fast twin.

:class:`CompiledCPU` translates every static instruction into an
operand-specialized closure at first run: register indices, immediates,
branch targets and bound memory methods are baked into the closure's cells,
so the hot loop is ``pc = code[pc]()`` -- no per-step ``Instr`` attribute
loads, no handler-table indexing, no ``self.*`` lookups.  Two hot pairs are
fused into superinstructions (compare+branch and addi+load); the second
member of a pair keeps its own closure slot, so branches into the middle of
a pair still work.

The backend preserves the interpreter's contract exactly:

* **Precise exceptions.**  A :class:`~repro.machine.signals.Trap` carries
  the pc of the faulter, the faulting instruction does not retire, and
  ``cpu.pc`` is left at the fault site -- bit-identical trap sites, signals
  and detail strings.
* **Exact ``instret`` accounting.**  Fused pairs execute inside bounded
  chunks sized so a pair can never overrun the step budget, and the final
  budgeted step always runs unfused; ``run(n)`` retires exactly what the
  interpreter would.  This is what keeps ``dyn_index``-addressed fault
  injection deterministic across backends.
* **Live state.**  Closures bind the *identities* of the register files,
  memory and output stream -- exactly the objects
  :func:`~repro.checkpoint.snapshot.restore_into` refills in place -- so
  snapshot/restore, debugger register writes and ``set_pc`` all work
  unchanged.
* **Out-of-image control flow.**  A computed or encoded jump target outside
  the image retires the jump, parks the wild pc, and faults on the *next*
  fetch, exactly like the interpreter (a run whose budget expires right
  after such a jump stops with the wild pc and no trap).

``run_profiled`` is inherited from the interpreter: profiling is a
one-time golden pass and the per-pc counts must stay reference-exact.

Fusion plans are cached per program image (the per-program code cache);
closure tables themselves bind per-process state, so each process builds
its own lazily on first run.  Campaign workers amortize that by reusing
one host process per shard (see ``repro.faultinject.engine``).
"""

from __future__ import annotations

import os
from math import copysign, inf, isinf, isnan, nan, sqrt
from operator import eq, le, lt, ne

from repro.isa.instructions import Instr, Op
from repro.isa.layout import INT64_MAX, INT64_MIN, MASK64
from repro.isa.registers import SP
from repro.machine.cpu import CPU, STOP_HALT, STOP_STEPS
from repro.machine.memory import (
    AccessError,
    float_to_pattern,
    pattern_to_float,
)
from repro.machine.signals import Blocked, Signal, Trap

_SIGN = 1 << 63
_WRAP = 1 << 64


class _HaltSignal(Exception):
    """Internal: unwinds a fused chunk when HALT retires.  Never escapes."""


_HALT = _HaltSignal()

# -- fusion planning ---------------------------------------------------------

#: No fusion at this pc.
FUSE_NONE = 0
#: compare (SEQ/SNE/SLT/SLE/FEQ/FNE/FLT/FLE) + BEQZ/BNEZ on the flag reg.
FUSE_CMP_BRANCH = 1
#: ADDI + LD/FLD (address bump feeding a load is the classic hot pair).
FUSE_ADDI_LOAD = 2

_CMP_TO_OPERATOR = {
    Op.SEQ: eq, Op.SNE: ne, Op.SLT: lt, Op.SLE: le,
    Op.FEQ: eq, Op.FNE: ne, Op.FLT: lt, Op.FLE: le,
}
_FCMP_OPS = frozenset((Op.FEQ, Op.FNE, Op.FLT, Op.FLE))
_BRANCH_OPS = (Op.BEQZ, Op.BNEZ)


def fusion_plan(instrs: list[Instr]) -> tuple[int, ...]:
    """Per-pc fusion decisions for one instruction list."""
    n = len(instrs)
    plan = [FUSE_NONE] * n
    for pc in range(n - 1):
        ins = instrs[pc]
        tail = instrs[pc + 1]
        if (
            ins.op in _CMP_TO_OPERATOR
            and tail.op in _BRANCH_OPS
            and tail.ra == ins.rd
            and 0 <= tail.imm <= n  # wild branch targets stay unfused
        ):
            plan[pc] = FUSE_CMP_BRANCH
        elif ins.op is Op.ADDI and tail.op in (Op.LD, Op.FLD):
            plan[pc] = FUSE_ADDI_LOAD
    return tuple(plan)


# The per-program code cache: fusion plans keyed by instruction-list
# identity (programs are interned per source by the app layer, so this
# stays a handful of entries; the instrs reference both keeps the id
# stable and guards against id reuse).
_PLAN_CACHE: dict[int, tuple[list[Instr], tuple[int, ...]]] = {}


def _plan_for(instrs: list[Instr]) -> tuple[int, ...]:
    key = id(instrs)
    hit = _PLAN_CACHE.get(key)
    if hit is not None and hit[0] is instrs:
        return hit[1]
    plan = fusion_plan(instrs)
    _PLAN_CACHE[key] = (instrs, plan)
    return plan


def _mem_trap(exc: AccessError, pc: int, ins: Instr | None) -> Trap:
    return Trap(
        Signal.SIGSEGV if exc.kind == "segv" else Signal.SIGBUS,
        pc=pc,
        instr=ins,
        detail=str(exc),
        address=exc.address,
    )


def _fetch_trap(pc: int) -> Trap:
    return Trap(
        Signal.SIGSEGV,
        pc=pc,
        instr=None,
        detail=f"instruction fetch out of image (pc={pc})",
    )


def _build_tables(cpu: "CompiledCPU"):
    """Compile *cpu*'s program into (chunk table, safe table).

    Both tables have ``n + 1`` slots; slot ``n`` is the fetch-fault pad so
    natural fall-through past the image (and parked wild jump targets)
    fault exactly like the interpreter's bounds check.  The *safe* table is
    fully unfused and never raises on HALT (used for the final budgeted
    step); the *chunk* table fuses hot pairs and unwinds HALT with an
    internal exception so a fused chunk can stop mid-flight.
    """
    instrs = cpu.instrs
    n = len(instrs)
    plan = _plan_for(instrs)

    # State identities -- shared with restore_into / debugger mutation.
    iregs = cpu.iregs
    fregs = cpu.fregs
    memory = cpu.memory
    read_pattern = memory.read_pattern
    write_pattern = memory.write_pattern
    read_float = memory.read_float
    write_float = memory.write_float
    out_append = cpu.output.append
    extra = cpu._extra
    wild = cpu._wild

    M = MASK64
    S = _SIGN
    W = _WRAP
    I64MIN = INT64_MIN
    I64MAX = INT64_MAX
    SP_ = SP
    isnan_ = isnan
    isinf_ = isinf
    sqrt_ = sqrt
    nan_ = nan
    inf_ = inf
    copysign_ = copysign
    p2f = pattern_to_float
    f2p = float_to_pattern

    def make(pc: int, ins: Instr):
        """Operand-specialized closure for one instruction.

        Every closure returns the next pc (always within ``[0, n]``); a
        computed target outside that range is parked in ``wild`` and the
        pad slot is returned instead, deferring the fetch fault by exactly
        one dispatch, as the interpreter does.
        """
        op = ins.op
        rd, ra, rb, imm = ins.rd, ins.ra, ins.rb, ins.imm
        nxt = pc + 1

        # -- data movement --------------------------------------------------
        if op is Op.NOP:
            def cl():
                return nxt
        elif op is Op.MOV:
            def cl():
                iregs[rd] = iregs[ra]
                return nxt
        elif op is Op.MOVI:
            def cl():
                iregs[rd] = imm
                return nxt
        elif op is Op.FMOV:
            def cl():
                fregs[rd] = fregs[ra]
                return nxt
        elif op is Op.FMOVI:
            def cl():
                fregs[rd] = imm
                return nxt

        # -- memory ---------------------------------------------------------
        elif op is Op.LD:
            def cl():
                try:
                    p = read_pattern(iregs[ra] + imm)
                except AccessError as exc:
                    raise _mem_trap(exc, pc, ins) from None
                iregs[rd] = p - W if p >= S else p
                return nxt
        elif op is Op.ST:
            def cl():
                try:
                    write_pattern(iregs[ra] + imm, iregs[rd] & M)
                except AccessError as exc:
                    raise _mem_trap(exc, pc, ins) from None
                return nxt
        elif op is Op.LDX:
            def cl():
                try:
                    p = read_pattern(iregs[ra] + iregs[rb] * 8 + imm)
                except AccessError as exc:
                    raise _mem_trap(exc, pc, ins) from None
                iregs[rd] = p - W if p >= S else p
                return nxt
        elif op is Op.STX:
            def cl():
                try:
                    write_pattern(iregs[ra] + iregs[rb] * 8 + imm, iregs[rd] & M)
                except AccessError as exc:
                    raise _mem_trap(exc, pc, ins) from None
                return nxt
        elif op is Op.FLD:
            def cl():
                try:
                    value = read_float(iregs[ra] + imm)
                except AccessError as exc:
                    raise _mem_trap(exc, pc, ins) from None
                fregs[rd] = value
                return nxt
        elif op is Op.FST:
            def cl():
                try:
                    write_float(iregs[ra] + imm, fregs[rd])
                except AccessError as exc:
                    raise _mem_trap(exc, pc, ins) from None
                return nxt
        elif op is Op.FLDX:
            def cl():
                try:
                    value = read_float(iregs[ra] + iregs[rb] * 8 + imm)
                except AccessError as exc:
                    raise _mem_trap(exc, pc, ins) from None
                fregs[rd] = value
                return nxt
        elif op is Op.FSTX:
            def cl():
                try:
                    write_float(iregs[ra] + iregs[rb] * 8 + imm, fregs[rd])
                except AccessError as exc:
                    raise _mem_trap(exc, pc, ins) from None
                return nxt
        elif op is Op.PUSH:
            def cl():
                sp = iregs[SP_] - 8
                try:
                    write_pattern(sp, iregs[ra] & M)
                except AccessError as exc:
                    raise _mem_trap(exc, pc, ins) from None
                iregs[SP_] = sp
                return nxt
        elif op is Op.POP:
            def cl():
                sp = iregs[SP_]
                try:
                    p = read_pattern(sp)
                except AccessError as exc:
                    raise _mem_trap(exc, pc, ins) from None
                # sp first, value second: "pop sp" ends with the loaded value.
                iregs[SP_] = sp + 8
                iregs[rd] = p - W if p >= S else p
                return nxt
        elif op is Op.FPUSH:
            def cl():
                sp = iregs[SP_] - 8
                try:
                    write_float(sp, fregs[ra])
                except AccessError as exc:
                    raise _mem_trap(exc, pc, ins) from None
                iregs[SP_] = sp
                return nxt
        elif op is Op.FPOP:
            def cl():
                sp = iregs[SP_]
                try:
                    value = read_float(sp)
                except AccessError as exc:
                    raise _mem_trap(exc, pc, ins) from None
                fregs[rd] = value
                iregs[SP_] = sp + 8
                return nxt

        # -- integer ALU ------------------------------------------------------
        elif op is Op.ADD:
            def cl():
                v = (iregs[ra] + iregs[rb]) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.SUB:
            def cl():
                v = (iregs[ra] - iregs[rb]) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.MUL:
            def cl():
                v = (iregs[ra] * iregs[rb]) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.DIV:
            def cl():
                b = iregs[rb]
                if b == 0:
                    raise Trap(
                        Signal.SIGFPE, pc=pc, instr=ins,
                        detail="integer divide by zero",
                    )
                a = iregs[ra]
                q = abs(a) // abs(b)
                v = (-q if (a < 0) != (b < 0) else q) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.MOD:
            def cl():
                b = iregs[rb]
                if b == 0:
                    raise Trap(
                        Signal.SIGFPE, pc=pc, instr=ins,
                        detail="integer remainder by zero",
                    )
                a = iregs[ra]
                q = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    q = -q
                v = (a - q * b) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.AND:
            def cl():
                v = (iregs[ra] & iregs[rb]) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.OR:
            def cl():
                v = (iregs[ra] | iregs[rb]) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.XOR:
            def cl():
                v = (iregs[ra] ^ iregs[rb]) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.SHL:
            def cl():
                v = (iregs[ra] << (iregs[rb] & 63)) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.SHR:
            def cl():
                iregs[rd] = iregs[ra] >> (iregs[rb] & 63)
                return nxt
        elif op is Op.NEG:
            def cl():
                v = (-iregs[ra]) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.NOT:
            def cl():
                v = (~iregs[ra]) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.ADDI:
            def cl():
                v = (iregs[ra] + imm) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.SUBI:
            def cl():
                v = (iregs[ra] - imm) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.MULI:
            def cl():
                v = (iregs[ra] * imm) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.ANDI:
            def cl():
                v = (iregs[ra] & imm) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.ORI:
            def cl():
                v = (iregs[ra] | imm) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.XORI:
            def cl():
                v = (iregs[ra] ^ imm) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.SHLI:
            shift = imm & 63
            def cl():
                v = (iregs[ra] << shift) & M
                iregs[rd] = v - W if v >= S else v
                return nxt
        elif op is Op.SHRI:
            shift = imm & 63
            def cl():
                iregs[rd] = iregs[ra] >> shift
                return nxt

        # -- comparisons ------------------------------------------------------
        elif op is Op.SEQ:
            def cl():
                iregs[rd] = 1 if iregs[ra] == iregs[rb] else 0
                return nxt
        elif op is Op.SNE:
            def cl():
                iregs[rd] = 1 if iregs[ra] != iregs[rb] else 0
                return nxt
        elif op is Op.SLT:
            def cl():
                iregs[rd] = 1 if iregs[ra] < iregs[rb] else 0
                return nxt
        elif op is Op.SLE:
            def cl():
                iregs[rd] = 1 if iregs[ra] <= iregs[rb] else 0
                return nxt
        elif op is Op.FEQ:
            def cl():
                iregs[rd] = 1 if fregs[ra] == fregs[rb] else 0
                return nxt
        elif op is Op.FNE:
            def cl():
                iregs[rd] = 1 if fregs[ra] != fregs[rb] else 0
                return nxt
        elif op is Op.FLT:
            def cl():
                iregs[rd] = 1 if fregs[ra] < fregs[rb] else 0
                return nxt
        elif op is Op.FLE:
            def cl():
                iregs[rd] = 1 if fregs[ra] <= fregs[rb] else 0
                return nxt

        # -- floating point ---------------------------------------------------
        elif op is Op.FADD:
            def cl():
                fregs[rd] = fregs[ra] + fregs[rb]
                return nxt
        elif op is Op.FSUB:
            def cl():
                fregs[rd] = fregs[ra] - fregs[rb]
                return nxt
        elif op is Op.FMUL:
            def cl():
                fregs[rd] = fregs[ra] * fregs[rb]
                return nxt
        elif op is Op.FDIV:
            def cl():
                a = fregs[ra]
                b = fregs[rb]
                if b == 0.0:
                    # IEEE-754: x/0 -> signed inf; 0/0 and nan/0 -> nan.
                    if a == 0.0 or isnan_(a):
                        fregs[rd] = nan_
                    else:
                        fregs[rd] = copysign_(inf_, a) * copysign_(1.0, b)
                else:
                    fregs[rd] = a / b
                return nxt
        elif op is Op.FNEG:
            def cl():
                fregs[rd] = -fregs[ra]
                return nxt
        elif op is Op.FSQRT:
            def cl():
                a = fregs[ra]
                fregs[rd] = nan_ if a < 0.0 else (a if isnan_(a) else sqrt_(a))
                return nxt
        elif op is Op.FABS:
            def cl():
                fregs[rd] = abs(fregs[ra])
                return nxt
        elif op is Op.FMIN:
            def cl():
                a = fregs[ra]
                b = fregs[rb]
                if isnan_(a):
                    fregs[rd] = b
                elif isnan_(b):
                    fregs[rd] = a
                else:
                    fregs[rd] = a if a < b else b
                return nxt
        elif op is Op.FMAX:
            def cl():
                a = fregs[ra]
                b = fregs[rb]
                if isnan_(a):
                    fregs[rd] = b
                elif isnan_(b):
                    fregs[rd] = a
                else:
                    fregs[rd] = a if a > b else b
                return nxt

        # -- conversions ------------------------------------------------------
        elif op is Op.ITOF:
            def cl():
                fregs[rd] = float(iregs[ra])
                return nxt
        elif op is Op.FTOI:
            def cl():
                a = fregs[ra]
                if isnan_(a) or isinf_(a):
                    value = I64MIN  # x86 cvttsd2si "integer indefinite"
                else:
                    value = int(a)
                    if value < I64MIN or value > I64MAX:
                        value = I64MIN
                iregs[rd] = value
                return nxt

        # -- control flow -----------------------------------------------------
        elif op is Op.JMP:
            target = imm
            if 0 <= target <= n:
                def cl():
                    return target
            else:
                def cl():
                    wild[0] = target
                    return n
        elif op is Op.BEQZ:
            target = imm
            if 0 <= target <= n:
                def cl():
                    return target if iregs[ra] == 0 else nxt
            else:
                def cl():
                    if iregs[ra] == 0:
                        wild[0] = target
                        return n
                    return nxt
        elif op is Op.BNEZ:
            target = imm
            if 0 <= target <= n:
                def cl():
                    return target if iregs[ra] != 0 else nxt
            else:
                def cl():
                    if iregs[ra] != 0:
                        wild[0] = target
                        return n
                    return nxt
        elif op is Op.CALL:
            target = imm
            ret_addr = (pc + 1) & M
            if 0 <= target <= n:
                def cl():
                    sp = iregs[SP_] - 8
                    try:
                        write_pattern(sp, ret_addr)
                    except AccessError as exc:
                        raise _mem_trap(exc, pc, ins) from None
                    iregs[SP_] = sp
                    return target
            else:
                def cl():
                    sp = iregs[SP_] - 8
                    try:
                        write_pattern(sp, ret_addr)
                    except AccessError as exc:
                        raise _mem_trap(exc, pc, ins) from None
                    iregs[SP_] = sp
                    wild[0] = target
                    return n
        elif op is Op.RET:
            def cl():
                sp = iregs[SP_]
                try:
                    p = read_pattern(sp)
                except AccessError as exc:
                    raise _mem_trap(exc, pc, ins) from None
                iregs[SP_] = sp + 8
                target = p - W if p >= S else p
                if 0 <= target <= n:
                    return target
                wild[0] = target
                return n

        # -- system -----------------------------------------------------------
        elif op is Op.HALT:
            # Safe-table variant: retire, stay on the HALT site, let the run
            # loop observe ``halted``.  The chunk table swaps in a raising
            # variant (see below).
            def cl():
                cpu.halted = True
                cpu.exit_code = iregs[0]
                return pc
        elif op is Op.OUT:
            def cl():
                out_append(("i", iregs[ra]))
                return nxt
        elif op is Op.FOUT:
            def cl():
                out_append(("f", fregs[ra]))
                return nxt
        elif op is Op.ABORT:
            def cl():
                raise Trap(
                    Signal.SIGABRT, pc=pc, instr=ins,
                    detail="application abort",
                )

        # -- inter-rank communication ----------------------------------------
        elif op is Op.RANK:
            def cl():
                iregs[rd] = cpu.rank
                return nxt
        elif op is Op.NRANKS:
            def cl():
                net = cpu.network
                iregs[rd] = net.size if net is not None else 1
                return nxt
        elif op is Op.SEND:
            def cl():
                net = cpu.network
                if net is None:
                    raise Trap(
                        Signal.SIGBUS, pc=pc, instr=ins,
                        detail="send outside a cluster",
                    )
                dst = iregs[ra]
                if not net.valid_rank(dst):
                    raise Trap(
                        Signal.SIGBUS, pc=pc, instr=ins,
                        detail=f"send to invalid rank {dst}",
                    )
                net.send(cpu.rank, dst, iregs[rb] & M)
                return nxt
        elif op is Op.FSEND:
            def cl():
                net = cpu.network
                if net is None:
                    raise Trap(
                        Signal.SIGBUS, pc=pc, instr=ins,
                        detail="fsend outside a cluster",
                    )
                dst = iregs[ra]
                if not net.valid_rank(dst):
                    raise Trap(
                        Signal.SIGBUS, pc=pc, instr=ins,
                        detail=f"fsend to invalid rank {dst}",
                    )
                net.send(cpu.rank, dst, f2p(fregs[rb]))
                return nxt
        elif op is Op.RECV:
            def cl():
                net = cpu.network
                if net is None:
                    raise Trap(
                        Signal.SIGBUS, pc=pc, instr=ins,
                        detail="recv outside a cluster",
                    )
                src = iregs[ra]
                if not net.valid_rank(src):
                    raise Trap(
                        Signal.SIGBUS, pc=pc, instr=ins,
                        detail=f"recv from invalid rank {src}",
                    )
                p = net.recv(cpu.rank, src)
                if p is None:
                    raise Blocked(pc=pc, rank=cpu.rank, src=src)
                p &= M
                iregs[rd] = p - W if p >= S else p
                return nxt
        elif op is Op.FRECV:
            def cl():
                net = cpu.network
                if net is None:
                    raise Trap(
                        Signal.SIGBUS, pc=pc, instr=ins,
                        detail="frecv outside a cluster",
                    )
                src = iregs[ra]
                if not net.valid_rank(src):
                    raise Trap(
                        Signal.SIGBUS, pc=pc, instr=ins,
                        detail=f"frecv from invalid rank {src}",
                    )
                p = net.recv(cpu.rank, src)
                if p is None:
                    raise Blocked(pc=pc, rank=cpu.rank, src=src)
                fregs[rd] = p2f(p)
                return nxt
        else:  # pragma: no cover - new opcode without a compiled template
            raise NotImplementedError(f"no compiled template for {op!r}")
        return cl

    def make_pad():
        """Slot ``n``: fetch past the image (or a parked wild target)."""
        def pad():
            t = wild[0]
            if t is None:
                t = n
            else:
                wild[0] = None
            raise _fetch_trap(t)
        return pad

    def make_halt_raising(pc: int):
        def halt():
            cpu.halted = True
            cpu.exit_code = iregs[0]
            extra[0] += 1  # HALT retires, then the chunk unwinds
            raise _HALT
        return halt

    def make_fused_cmp_branch(pc: int, ins: Instr, tail: Instr):
        cmp = _CMP_TO_OPERATOR[ins.op]
        bank = fregs if ins.op in _FCMP_OPS else iregs
        rd1, a1, b1 = ins.rd, ins.ra, ins.rb
        target = tail.imm
        nxt2 = pc + 2
        if tail.op is Op.BNEZ:
            def cl():
                if cmp(bank[a1], bank[b1]):
                    iregs[rd1] = 1
                    extra[0] += 1
                    return target
                iregs[rd1] = 0
                extra[0] += 1
                return nxt2
        else:  # BEQZ: taken when the comparison is false
            def cl():
                if cmp(bank[a1], bank[b1]):
                    iregs[rd1] = 1
                    extra[0] += 1
                    return nxt2
                iregs[rd1] = 0
                extra[0] += 1
                return target
        return cl

    def make_fused_addi_load(pc: int, ins: Instr, tail: Instr):
        d1, a1, i1 = ins.rd, ins.ra, ins.imm
        d2, a2, i2 = tail.rd, tail.ra, tail.imm
        load_pc = pc + 1
        nxt2 = pc + 2
        if tail.op is Op.LD:
            def cl():
                v = (iregs[a1] + i1) & M
                iregs[d1] = v - W if v >= S else v
                extra[0] += 1  # the ADDI is committed even if the load traps
                try:
                    p = read_pattern(iregs[a2] + i2)
                except AccessError as exc:
                    raise _mem_trap(exc, load_pc, tail) from None
                iregs[d2] = p - W if p >= S else p
                return nxt2
        else:  # FLD
            def cl():
                v = (iregs[a1] + i1) & M
                iregs[d1] = v - W if v >= S else v
                extra[0] += 1
                try:
                    value = read_float(iregs[a2] + i2)
                except AccessError as exc:
                    raise _mem_trap(exc, load_pc, tail) from None
                fregs[d2] = value
                return nxt2
        return cl

    safe = [make(pc, ins) for pc, ins in enumerate(instrs)]
    safe.append(make_pad())
    code = list(safe)
    for pc, ins in enumerate(instrs):
        if ins.op is Op.HALT:
            code[pc] = make_halt_raising(pc)
        elif plan[pc] == FUSE_CMP_BRANCH:
            code[pc] = make_fused_cmp_branch(pc, ins, instrs[pc + 1])
        elif plan[pc] == FUSE_ADDI_LOAD:
            code[pc] = make_fused_addi_load(pc, ins, instrs[pc + 1])
    return code, safe


class CompiledCPU(CPU):
    """Drop-in :class:`CPU` whose run loop dispatches compiled closures.

    Compilation is lazy (first :meth:`run`), so processes that are only
    snapshotted or inspected never pay for it; the closure tables bind the
    live register files / memory / output objects, which
    ``restore_into`` refills in place, so one compiled process can host
    any number of restored runs.

    ``run_probed`` (instret-bucketed telemetry progress probes) is
    inherited from :class:`CPU` unchanged: it slices the budget through
    the public ``run`` contract, and this backend's exact-budget chunking
    guarantees the probe sequence and final state are bit-identical to
    the interpreter's.
    """

    __slots__ = ("_code", "_safe", "_extra", "_wild")

    def __init__(self, program, memory):
        super().__init__(program, memory)
        self._code = None
        self._safe = None
        self._extra = [0]   # retirements a chunk iteration count misses
        self._wild = [None]  # out-of-image jump target awaiting its fetch fault

    def run(self, max_steps: int) -> str:
        """Exactly :meth:`CPU.run`, at compiled speed."""
        code = self._code
        if code is None:
            code, self._safe = _build_tables(self)
            self._code = code
        safe = self._safe
        extra = self._extra
        wild = self._wild
        n = self._n_instrs
        if self.halted:
            return STOP_HALT
        pc = self.pc
        retired = 0
        try:
            while True:
                remaining = max_steps - retired
                if remaining <= 0:
                    return STOP_HALT if self.halted else STOP_STEPS
                if pc < 0 or pc > n:
                    raise _fetch_trap(pc)
                if remaining == 1:
                    # The last budgeted step must not over-retire: run it
                    # unfused.
                    pc = safe[pc]()
                    retired += 1
                    continue
                # A fused pair retires two instructions, so a chunk of k
                # dispatches retires at most 2k <= remaining.
                k = remaining >> 1
                i = 0
                extra[0] = 0
                try:
                    while i < k:
                        pc = code[pc]()
                        i += 1
                finally:
                    retired += i + extra[0]
        except _HaltSignal:
            return STOP_HALT
        except Trap as trap:
            pc = trap.pc
            raise
        finally:
            if wild[0] is not None:
                # Budget expired right after an out-of-image jump: expose
                # the wild pc (the fault belongs to the *next* fetch).
                pc = wild[0]
                wild[0] = None
            self.pc = pc
            self.instret += retired


# -- backend selection -------------------------------------------------------

#: Known execution backends, name -> CPU class.
BACKENDS: dict[str, type[CPU]] = {
    "interpreter": CPU,
    "compiled": CompiledCPU,
}

#: Package default; override per call with ``backend=`` or process-wide
#: with the ``REPRO_BACKEND`` environment variable.
DEFAULT_BACKEND = "compiled"


def default_backend() -> str:
    """The backend used when no ``backend=`` is given."""
    return os.environ.get("REPRO_BACKEND", DEFAULT_BACKEND)


def cpu_class(backend: "str | type[CPU] | None") -> type[CPU]:
    """Resolve a backend name (``None`` = :func:`default_backend`).

    A :class:`CPU` subclass passes through unchanged, so callers (the
    fuzz harness's scratch mutants, experiments) can plug a custom
    engine into ``Process.load`` without registering it in
    :data:`BACKENDS`.
    """
    if isinstance(backend, type) and issubclass(backend, CPU):
        return backend
    name = default_backend() if backend is None else backend
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r} "
            f"(choose from {sorted(BACKENDS)})"
        ) from None


__all__ = [
    "CompiledCPU",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "default_backend",
    "cpu_class",
    "fusion_plan",
    "FUSE_NONE",
    "FUSE_CMP_BRANCH",
    "FUSE_ADDI_LOAD",
]
