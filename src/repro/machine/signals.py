"""POSIX-style signals raised by the machine.

Only the signals that matter to LetGo are modelled.  A hardware exception
during execution raises :class:`Trap`; the process (or an attached
debugger) decides what to do with it, mirroring how Linux turns hardware
exceptions into signals whose default disposition terminates the process.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.isa.instructions import Instr


class Signal(IntEnum):
    """Signal numbers (Linux x86-64 values, for familiarity)."""

    SIGABRT = 6   # application-level abort (failed runtime assertion)
    SIGBUS = 7    # misaligned data access
    SIGFPE = 8    # integer divide / remainder by zero
    SIGSEGV = 11  # access to an unmapped address, or PC out of the image


#: Signals LetGo's monitor redefines, per Table 1 of the paper.
LETGO_DEFAULT_SIGNALS = frozenset({Signal.SIGSEGV, Signal.SIGBUS, Signal.SIGABRT})


@dataclass
class Trap(Exception):
    """A hardware exception (precise: ``pc`` still points at the faulter).

    Attributes
    ----------
    signal:
        The signal this exception maps to.
    pc:
        PC of the faulting instruction (or the out-of-range fetch PC).
    instr:
        The faulting instruction, or ``None`` for fetch faults.
    detail:
        Human-readable description.
    address:
        Faulting data address, when the trap came from a memory access.
    """

    signal: Signal
    pc: int
    instr: Instr | None = None
    detail: str = ""
    address: int | None = None

    def __str__(self) -> str:
        where = f"pc={self.pc}"
        if self.address is not None:
            where += f" addr=0x{self.address:x}"
        return f"{self.signal.name} at {where}: {self.detail}"


@dataclass
class Blocked(Exception):
    """A RECV found no message: the process must wait (precise: ``pc``
    still points at the receive, which re-executes when rescheduled).

    Not a failure -- the cluster scheduler uses it to switch ranks; a
    standalone process that blocks is deadlocked by definition.
    """

    pc: int
    rank: int
    src: int

    def __str__(self) -> str:
        return f"rank {self.rank} blocked on recv from {self.src} at pc={self.pc}"


__all__ = ["Signal", "Trap", "Blocked", "LETGO_DEFAULT_SIGNALS"]
