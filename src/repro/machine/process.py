"""Process model: program image + memory map + CPU + signal dispositions.

A :class:`Process` is the unit everything else operates on: the loader
builds one from a :class:`~repro.isa.program.Program`, the default OS
behaviour terminates it on any trap (that is the behaviour LetGo
re-purposes), and :class:`~repro.machine.debugger.DebugSession` attaches to
one to intercept traps before the default disposition applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import LoaderError
from repro.isa.layout import CELL, DATA_BASE, STACK_LIMIT, STACK_SIZE, STACK_TOP
from repro.isa.program import Program
from repro.isa.registers import BP, SP
from repro.machine.cpu import CPU, STOP_HALT
from repro.machine.memory import Memory
from repro.machine.signals import Signal, Trap


class ProcessStatus(Enum):
    """Lifecycle of a process."""

    RUNNING = "running"
    EXITED = "exited"        # HALT reached; exit_code valid
    TERMINATED = "terminated"  # killed by a signal; term_signal valid


@dataclass
class RunResult:
    """Outcome of a :meth:`Process.run` call.

    ``reason`` is ``exited`` / ``terminated`` / ``budget``.
    """

    reason: str
    steps: int
    signal: Signal | None = None
    trap: Trap | None = None


class Process:
    """A loaded program with live architectural state."""

    def __init__(self, program: Program, cpu: CPU, memory: Memory):
        self.program = program
        self.cpu = cpu
        self.memory = memory
        self.status = ProcessStatus.RUNNING
        self.term_signal: Signal | None = None
        self.last_trap: Trap | None = None

    # -- loader ------------------------------------------------------------

    @classmethod
    def load(cls, program: Program, backend: str | None = None) -> "Process":
        """Build a fresh process image (the ``exec`` analogue).

        Maps the data segment (globals, zero-initialised except for
        ``data_init`` patterns), the stack, sets ``sp = bp = STACK_TOP``
        and the PC to the entry function.  *backend* picks the execution
        engine ("interpreter" or "compiled"); ``None`` uses the package
        default (see :func:`repro.machine.compiled.default_backend`).
        """
        from repro.machine.compiled import cpu_class

        if not program.instrs:
            raise LoaderError("cannot load an empty program")
        memory = Memory()
        data_cells = program.data_cells
        if data_cells:
            memory.map_segment("data", DATA_BASE, data_cells * CELL)
            for addr, pattern in program.data_init.items():
                memory.write_pattern(addr, pattern)
        memory.map_segment("stack", STACK_LIMIT, STACK_SIZE)
        cpu = cpu_class(backend)(program, memory)
        cpu.iregs[SP] = STACK_TOP
        cpu.iregs[BP] = STACK_TOP
        cpu.pc = program.entry_pc
        return cls(program, cpu, memory)

    @property
    def backend(self) -> str:
        """Name of the execution backend this process runs on."""
        from repro.machine.compiled import CompiledCPU

        return "compiled" if isinstance(self.cpu, CompiledCPU) else "interpreter"

    # -- execution with default signal handling -----------------------------

    def run(self, max_steps: int) -> RunResult:
        """Run with *default* dispositions: any trap terminates the process.

        This is the no-LetGo baseline: the OS delivers the signal, the
        application dies, work is lost.
        """
        if self.status is not ProcessStatus.RUNNING:
            raise LoaderError(f"process is {self.status.value}, cannot run")
        before = self.cpu.instret
        try:
            stop = self.cpu.run(max_steps)
        except Trap as trap:
            self.last_trap = trap
            self.term_signal = trap.signal
            self.status = ProcessStatus.TERMINATED
            return RunResult(
                reason="terminated",
                steps=self.cpu.instret - before,
                signal=trap.signal,
                trap=trap,
            )
        steps = self.cpu.instret - before
        if stop == STOP_HALT:
            self.status = ProcessStatus.EXITED
            return RunResult(reason="exited", steps=steps)
        return RunResult(reason="budget", steps=steps)

    # -- introspection ---------------------------------------------------------

    @property
    def exit_code(self) -> int:
        """Exit code (valid when EXITED)."""
        return self.cpu.exit_code

    @property
    def output(self) -> list[tuple[str, int | float]]:
        """The OUT/FOUT stream emitted so far."""
        return self.cpu.output

    def output_values(self) -> list[int | float]:
        """Output stream without the kind tags."""
        return [v for _, v in self.cpu.output]

    def snapshot_registers(self) -> dict[str, int | float]:
        """Named register dump (debugging / tests)."""
        from repro.isa.registers import FP_REG_NAMES, INT_REG_NAMES

        regs: dict[str, int | float] = {
            name: self.cpu.iregs[i] for i, name in enumerate(INT_REG_NAMES)
        }
        regs.update(
            {name: self.cpu.fregs[i] for i, name in enumerate(FP_REG_NAMES)}
        )
        regs["pc"] = self.cpu.pc
        return regs


__all__ = ["Process", "ProcessStatus", "RunResult"]
