"""Seeded random program generators: raw ISA sequences and MiniC sources.

Two levels, mirroring the two front doors of the substrate:

* :func:`gen_isa_program` emits weighted random instruction sequences
  directly as a :class:`~repro.isa.program.Program`.  Programs are *not*
  guaranteed to terminate or stay inside mapped memory -- that is the
  point: the differential oracles run them under a fixed step budget
  (the budget harness), so hangs become budget-stops and wild accesses
  become traps, and every one of those outcomes must classify
  identically across backends.
* :func:`gen_lang_source` composes small MiniC programs from bounded
  templates (loops over globals, arithmetic reductions, recursion,
  conditionals).  These always terminate trap-free on the golden path,
  so they can be wrapped in a :class:`~repro.fuzz.app.LangApp` and fed
  through the *campaign* metamorphic oracles (ladder, injector,
  heuristics, journal).

Everything is driven by :class:`random.Random` seeded from strings, so a
fuzz campaign's program stream is bit-reproducible across runs, jobs
counts and platforms.
"""

from __future__ import annotations

import random

from repro.isa.instructions import Instr, Op
from repro.isa.layout import CELL, DATA_BASE, INT64_MAX, INT64_MIN, STACK_TOP
from repro.isa.program import DataSymbol, Program
from repro.isa.registers import BP, NUM_FP_REGS, SP
from repro.machine.memory import float_to_pattern

#: Default differential step budget (the budget harness): generated
#: programs run at most this many instructions per execution.
DEFAULT_BUDGET = 256

# -- operand material --------------------------------------------------------

_INT_IMMS = (
    0, 1, -1, 2, 3, 7, 8, 16, 63, 64, 255, -8, 4096,
    2**31, -(2**31), 2**62, INT64_MAX, INT64_MIN,
)

_FLOAT_IMMS = (
    0.0, -0.0, 1.0, -1.0, 0.5, 1.5, 2.0, 3.141592653589793,
    1e16, 1e308, 5e-324, float("inf"), float("-inf"), float("nan"),
)

#: Weighted opcode pool.  ALU-heavy like real code, with enough memory,
#: control-flow and system traffic to reach every trap class; comm opcodes
#: appear rarely (outside a cluster they raise deterministic SIGBUS traps).
_OP_WEIGHTS: tuple[tuple[Op, float], ...] = (
    (Op.NOP, 1), (Op.MOV, 3), (Op.MOVI, 6), (Op.FMOV, 2), (Op.FMOVI, 4),
    (Op.LD, 3), (Op.ST, 3), (Op.LDX, 2), (Op.STX, 2),
    (Op.FLD, 2), (Op.FST, 2), (Op.FLDX, 1), (Op.FSTX, 1),
    (Op.PUSH, 2), (Op.POP, 2), (Op.FPUSH, 1), (Op.FPOP, 1),
    (Op.ADD, 3), (Op.SUB, 2), (Op.MUL, 2), (Op.DIV, 1), (Op.MOD, 1),
    (Op.AND, 1), (Op.OR, 1), (Op.XOR, 1), (Op.SHL, 1), (Op.SHR, 1),
    (Op.NEG, 1), (Op.NOT, 1),
    (Op.ADDI, 3), (Op.SUBI, 1), (Op.MULI, 1), (Op.ANDI, 1), (Op.ORI, 1),
    (Op.XORI, 1), (Op.SHLI, 1), (Op.SHRI, 1),
    (Op.SEQ, 1), (Op.SNE, 1), (Op.SLT, 2), (Op.SLE, 1),
    (Op.FEQ, 1), (Op.FNE, 1), (Op.FLT, 1), (Op.FLE, 1),
    (Op.FADD, 2), (Op.FSUB, 1), (Op.FMUL, 2), (Op.FDIV, 2),
    (Op.FNEG, 1), (Op.FSQRT, 1), (Op.FABS, 1), (Op.FMIN, 2), (Op.FMAX, 2),
    (Op.ITOF, 1), (Op.FTOI, 1),
    (Op.JMP, 2), (Op.BEQZ, 2), (Op.BNEZ, 2), (Op.CALL, 1), (Op.RET, 1),
    (Op.HALT, 1), (Op.OUT, 2), (Op.FOUT, 2), (Op.ABORT, 0.5),
    (Op.RANK, 0.5), (Op.NRANKS, 0.5),
    (Op.SEND, 0.3), (Op.RECV, 0.3), (Op.FSEND, 0.2), (Op.FRECV, 0.2),
)

_OPS = tuple(op for op, _ in _OP_WEIGHTS)
_WEIGHTS = tuple(w for _, w in _OP_WEIGHTS)

#: Opcodes whose operand slots follow (rd, ra, rb) with both sources int.
_R_RAB = frozenset({
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR, Op.XOR,
    Op.SHL, Op.SHR, Op.SEQ, Op.SNE, Op.SLT, Op.SLE,
})
_R_RA_IMM = frozenset({
    Op.ADDI, Op.SUBI, Op.MULI, Op.ANDI, Op.ORI, Op.XORI, Op.SHLI, Op.SHRI,
})
_F_RAB = frozenset({Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FMIN, Op.FMAX})
_FCMP = frozenset({Op.FEQ, Op.FNE, Op.FLT, Op.FLE})
_F_UNARY = frozenset({Op.FNEG, Op.FSQRT, Op.FABS, Op.FMOV})


def _ireg(rng: random.Random) -> int:
    """An integer register index, biased toward a small working set."""
    roll = rng.random()
    if roll < 0.80:
        return rng.randrange(6)
    if roll < 0.95:
        return rng.randrange(6, 14)
    return rng.choice((SP, BP))


def _freg(rng: random.Random) -> int:
    return rng.randrange(6) if rng.random() < 0.85 else rng.randrange(NUM_FP_REGS)


def _int_imm(rng: random.Random) -> int:
    if rng.random() < 0.7:
        return rng.choice(_INT_IMMS)
    return rng.randint(-1024, 1024)


def _float_imm(rng: random.Random) -> float:
    if rng.random() < 0.7:
        return rng.choice(_FLOAT_IMMS)
    return rng.uniform(-1e6, 1e6)


def _mem_offset(rng: random.Random) -> int:
    """Mostly cell-aligned small offsets; occasionally misaligned or huge."""
    roll = rng.random()
    if roll < 0.80:
        return rng.randint(-8, 8) * CELL
    if roll < 0.90:
        return rng.randint(-65, 65)  # usually misaligned -> SIGBUS material
    return rng.choice((1 << 20, -(1 << 20), 1 << 40))


def _branch_target(rng: random.Random, n: int) -> int:
    """A branch/call target: usually in-image (``[0, n]``), sometimes wild."""
    if rng.random() < 0.9:
        return rng.randint(0, n)
    return rng.choice((-3, n + 17, 1 << 40, -(1 << 40)))


def gen_isa_program(rng: random.Random, *, max_len: int = 40) -> Program:
    """One weighted random ISA program (always ends in HALT).

    The program opens with a short prologue seeding a few registers with
    plausible addresses and float values so the body's memory traffic
    lands in mapped segments often enough to make progress, while leaving
    plenty of wild accesses to exercise every trap class.
    """
    data_cells = rng.randint(1, 8)
    n_body = rng.randint(4, max(6, max_len - 6))

    prologue: list[Instr] = [
        Instr(Op.MOVI, rd=1, imm=DATA_BASE + rng.randrange(data_cells) * CELL),
        Instr(Op.MOVI, rd=2, imm=rng.choice(
            (STACK_TOP - 8 * rng.randint(1, 16),
             DATA_BASE,
             rng.choice((0, 3, 1 << 33)))
        )),
        Instr(Op.MOVI, rd=3, imm=rng.randint(0, data_cells - 1)),
        Instr(Op.MOVI, rd=4, imm=rng.choice(
            (-1, -8, -(1 << 31), INT64_MIN, INT64_MAX)
        )),
        Instr(Op.FMOVI, rd=1, imm=_float_imm(rng)),
    ]
    n = len(prologue) + n_body + 1  # +1: the terminal HALT

    instrs = list(prologue)
    for _ in range(n_body):
        op = rng.choices(_OPS, weights=_WEIGHTS, k=1)[0]
        ins = _gen_instr(rng, op, n)
        instrs.append(ins)
    instrs.append(Instr(Op.HALT))

    data_init: dict[int, int] = {}
    for cell in range(data_cells):
        roll = rng.random()
        if roll < 0.4:
            continue  # cell starts zero
        addr = DATA_BASE + cell * CELL
        if roll < 0.7:
            data_init[addr] = rng.choice((1, 2, 7, 255, (1 << 64) - 1))
        else:
            data_init[addr] = float_to_pattern(_float_imm(rng))
    return Program(
        instrs=instrs,
        functions={"main": 0},
        data_symbols={"g": DataSymbol("g", DATA_BASE, data_cells)},
        data_init=data_init,
        source_name="fuzz-isa",
    )


def _gen_instr(rng: random.Random, op: Op, n: int) -> Instr:
    """One random instruction of opcode *op* for an image of *n* slots."""
    if op in (Op.NOP, Op.RET, Op.HALT, Op.ABORT):
        return Instr(op)
    if op is Op.MOV:
        return Instr(op, rd=_ireg(rng), ra=_ireg(rng))
    if op is Op.MOVI:
        # Mostly data values; sometimes an address so loads/stores can hit.
        if rng.random() < 0.3:
            imm = DATA_BASE + rng.randint(-2, 10) * CELL
        else:
            imm = _int_imm(rng)
        return Instr(op, rd=_ireg(rng), imm=imm)
    if op is Op.FMOVI:
        return Instr(op, rd=_freg(rng), imm=_float_imm(rng))
    if op in _F_UNARY:
        return Instr(op, rd=_freg(rng), ra=_freg(rng))
    if op in (Op.LD, Op.FLD, Op.ST, Op.FST):
        bank = _freg if op in (Op.FLD, Op.FST) else _ireg
        return Instr(op, rd=bank(rng), ra=_ireg(rng), imm=_mem_offset(rng))
    if op in (Op.LDX, Op.FLDX, Op.STX, Op.FSTX):
        bank = _freg if op in (Op.FLDX, Op.FSTX) else _ireg
        return Instr(
            op, rd=bank(rng), ra=_ireg(rng), rb=_ireg(rng), imm=_mem_offset(rng)
        )
    if op in (Op.PUSH, Op.OUT):
        return Instr(op, ra=_ireg(rng))
    if op in (Op.FPUSH, Op.FOUT):
        return Instr(op, ra=_freg(rng))
    if op is Op.POP:
        return Instr(op, rd=_ireg(rng))
    if op is Op.FPOP:
        return Instr(op, rd=_freg(rng))
    if op in (Op.NEG, Op.NOT):
        return Instr(op, rd=_ireg(rng), ra=_ireg(rng))
    if op in _R_RAB:
        return Instr(op, rd=_ireg(rng), ra=_ireg(rng), rb=_ireg(rng))
    if op in _R_RA_IMM:
        return Instr(op, rd=_ireg(rng), ra=_ireg(rng), imm=_int_imm(rng))
    if op in _F_RAB:
        return Instr(op, rd=_freg(rng), ra=_freg(rng), rb=_freg(rng))
    if op in _FCMP:
        return Instr(op, rd=_ireg(rng), ra=_freg(rng), rb=_freg(rng))
    if op is Op.ITOF:
        return Instr(op, rd=_freg(rng), ra=_ireg(rng))
    if op is Op.FTOI:
        return Instr(op, rd=_ireg(rng), ra=_freg(rng))
    if op in (Op.JMP, Op.CALL):
        return Instr(op, imm=_branch_target(rng, n))
    if op in (Op.BEQZ, Op.BNEZ):
        return Instr(op, ra=_ireg(rng), imm=_branch_target(rng, n))
    if op in (Op.RANK, Op.NRANKS):
        return Instr(op, rd=_ireg(rng))
    if op in (Op.SEND, Op.RECV, Op.FSEND, Op.FRECV):
        return Instr(op, rd=_ireg(rng), ra=_ireg(rng), rb=_ireg(rng))
    raise AssertionError(f"generator missing template for {op!r}")


# -- pause schedules ---------------------------------------------------------


def gen_segments(rng: random.Random, budget: int) -> list[int]:
    """Random lockstep pause schedule summing exactly to *budget*.

    Small Fibonacci-ish steps with an occasional run-to-the-end tail, so
    pauses land inside fused pairs, right after wild jumps, on HALT
    sites -- all the places exact-budget accounting can go wrong.
    """
    segments: list[int] = []
    total = 0
    while total < budget:
        if rng.random() < 0.15:
            seg = budget - total
        else:
            seg = rng.choice((1, 1, 2, 3, 5, 8, 13, 21, 34))
        seg = min(seg, budget - total)
        segments.append(seg)
        total += seg
    return segments


def gen_breakpoints(rng: random.Random, n_instrs: int) -> list[int]:
    """0-3 distinct breakpoint pcs for the debugger oracle."""
    count = rng.randint(0, 3)
    if count == 0 or n_instrs == 0:
        return []
    return sorted(rng.sample(range(n_instrs), min(count, n_instrs)))


# -- MiniC source generation --------------------------------------------------

_INT_BINOPS = ("+", "-", "*")
_FLOAT_BINOPS = ("+", "-", "*")


def _int_expr(rng: random.Random, names: tuple[str, ...], depth: int) -> str:
    if depth <= 0 or rng.random() < 0.4:
        if rng.random() < 0.6:
            return rng.choice(names)
        return str(rng.randint(-9, 9))
    a = _int_expr(rng, names, depth - 1)
    b = _int_expr(rng, names, depth - 1)
    op = rng.choice(_INT_BINOPS)
    return f"({a} {op} {b})"


def _float_expr(rng: random.Random, names: tuple[str, ...], depth: int) -> str:
    if depth <= 0 or rng.random() < 0.4:
        if rng.random() < 0.6:
            return rng.choice(names)
        return f"{rng.choice((0.5, 1.5, 2.0, 0.25, 3.0)):.2f}"
    a = _float_expr(rng, names, depth - 1)
    b = _float_expr(rng, names, depth - 1)
    if rng.random() < 0.2:
        # Division by a never-zero positive denominator keeps golden finite.
        return f"({a} / ({b} * {b} + 1.5))"
    return f"({a} {rng.choice(_FLOAT_BINOPS)} {b})"


def gen_lang_source(rng: random.Random) -> str:
    """One bounded, golden-trap-free MiniC program.

    Structure: globals (a scalar bound + a float array), an optional
    helper (pure function or bounded recursion), and a main that fills
    the array, reduces it, branches on the reduction and emits 2-4
    ``out`` values.  Loop bounds and recursion depths are small constants
    drawn from the rng, so every program halts in a few thousand dynamic
    instructions.
    """
    n = rng.randint(3, 9)
    cells = rng.randint(max(n, 4), 14)
    helper = rng.choice(("square", "poly", "fib", "none"))
    fill = _float_expr(rng, ("x", "float(i)"), rng.randint(1, 2))
    reduce_op = rng.choice(("sum", "max", "min"))
    rec_arg = rng.randint(5, 9)

    lines = [
        f"global int n = {n};",
        f"global float a[{cells}];",
        "",
    ]
    if helper == "square":
        lines += [
            "func helper(float x) -> float {",
            f"    return {_float_expr(rng, ('x',), 1)};",
            "}",
            "",
        ]
    elif helper == "poly":
        lines += [
            "func helper(float x) -> float {",
            "    var float y = x * x;",
            f"    return y + {_float_expr(rng, ('x', 'y'), 1)};",
            "}",
            "",
        ]
    elif helper == "fib":
        lines += [
            "func fib(int k) -> int {",
            "    if (k < 2) { return k; }",
            "    return fib(k - 1) + fib(k - 2);",
            "}",
            "",
        ]
    lines += [
        "func main() -> int {",
        "    var int i;",
        "    var float t = 0.0;",
        "    var float x;",
        "    for (i = 0; i < n; i = i + 1) {",
        "        x = float(i);",
    ]
    if helper in ("square", "poly"):
        lines.append(f"        a[i] = helper({fill});")
    else:
        lines.append(f"        a[i] = {fill};")
    lines.append("    }")
    if reduce_op == "sum":
        lines += [
            "    for (i = 0; i < n; i = i + 1) {",
            "        t = t + a[i];",
            "    }",
        ]
    else:
        cmp = "<" if reduce_op == "max" else ">"
        lines += [
            "    t = a[0];",
            "    for (i = 1; i < n; i = i + 1) {",
            f"        if (t {cmp} a[i]) {{ t = a[i]; }}",
            "    }",
        ]
    lines.append("    out(t);")
    if rng.random() < 0.5:
        lines.append("    out(sqrt(t * t));")
    if helper == "fib":
        lines.append(f"    out(fib({rec_arg}));")
    else:
        lines.append(f"    out(n * {rng.randint(2, 5)});")
    if rng.random() < 0.5:
        lines += [
            "    if (t < 0.0) { out(0 - 1); } else { out(1); }",
        ]
    lines += [
        "    assert(n > 0);",
        "    return 0;",
        "}",
    ]
    return "\n".join(lines) + "\n"


__all__ = [
    "DEFAULT_BUDGET",
    "gen_isa_program",
    "gen_lang_source",
    "gen_segments",
    "gen_breakpoints",
]
