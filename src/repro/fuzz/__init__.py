"""Differential fuzzing & property verification for the repro substrate.

Generates random programs (raw ISA sequences and MiniC sources), runs
them through differential oracles (interpreter vs compiled, debugger
stepping, snapshot round-trips) and campaign metamorphic oracles
(merge/resume/jobs invariance), shrinks any divergence to a minimal
reproducer, and replays the accumulated corpus as tier-1 tests.

Entry points: the ``repro fuzz`` CLI subcommand and
:func:`repro.fuzz.runner.run_fuzz`.
"""

from repro.fuzz.generator import (
    DEFAULT_BUDGET,
    gen_isa_program,
    gen_lang_source,
)
from repro.fuzz.oracles import (
    ALL_ORACLES,
    CAMPAIGN_ORACLES,
    PROGRAM_ORACLES,
    Divergence,
    check_program,
)
from repro.fuzz.runner import (
    Finding,
    FuzzConfig,
    FuzzReport,
    mutation_selftest,
    run_fuzz,
)
from repro.fuzz.shrinker import emit_pytest, shrink

__all__ = [
    "DEFAULT_BUDGET",
    "gen_isa_program",
    "gen_lang_source",
    "ALL_ORACLES",
    "CAMPAIGN_ORACLES",
    "PROGRAM_ORACLES",
    "Divergence",
    "check_program",
    "Finding",
    "FuzzConfig",
    "FuzzReport",
    "mutation_selftest",
    "run_fuzz",
    "shrink",
    "emit_pytest",
]
