"""MiniApp wrappers for fuzz-generated MiniC programs.

Two flavours:

* :class:`LangApp` wraps an arbitrary generated source string.  It is
  perfect for the *serial* campaign oracles (merge associativity,
  journal resume), but it is **not** picklable through the engine's
  worker-spec protocol, so it cannot ride a ``jobs > 1`` pool.
* :class:`FuzzAppA` / :class:`FuzzAppB` / :class:`FuzzAppC` are fixed,
  module-level, zero-argument classes whose source is generated
  deterministically from a class-level seed at property access.  They
  satisfy the engine's importable-spec contract (rebuildable in a spawn
  or fork worker with identical source), so the jobs=1 vs jobs=N
  metamorphic oracle fuzzes over *campaign parameters* against them.

The acceptance check is structural (golden arity + all floats finite)
and the SDC slice is the whole output stream: generated apps have no
physics to verify, so every surviving bit matters.
"""

from __future__ import annotations

import math
import random

from repro.apps.base import MiniApp, Output
from repro.fuzz.generator import gen_lang_source


class _FuzzSemantics(MiniApp):
    """Shared acceptance/SDC semantics for generated apps."""

    domain = "fuzz-generated"

    def acceptance_check(self, output: Output) -> bool:
        if len(output) != len(self.golden.output):
            return False
        for kind, value in output:
            if kind == "f" and not math.isfinite(value):
                return False
        return True

    def sdc_slice(self, output: Output) -> tuple:
        return tuple(value for _, value in output)


class LangApp(_FuzzSemantics):
    """A generated MiniC source wrapped as a campaign-ready app."""

    def __init__(self, source: str, name: str = "fuzz-lang"):
        self.name = name
        self._source = source

    @property
    def source(self) -> str:
        return self._source


class _FixedLangApp(_FuzzSemantics):
    """Base for the importable fixed-seed apps (see module docstring)."""

    #: Seed of the deterministic source; subclasses override.
    lang_seed = 0

    @property
    def source(self) -> str:
        return gen_lang_source(random.Random(f"fuzz-app:{self.lang_seed}"))


class FuzzAppA(_FixedLangApp):
    name = "fuzz-app-a"
    lang_seed = 11


class FuzzAppB(_FixedLangApp):
    name = "fuzz-app-b"
    lang_seed = 23


class FuzzAppC(_FixedLangApp):
    name = "fuzz-app-c"
    lang_seed = 37


#: The importable apps the jobs-invariance oracle draws from.
FIXED_APPS: tuple[type[_FixedLangApp], ...] = (FuzzAppA, FuzzAppB, FuzzAppC)


__all__ = ["LangApp", "FuzzAppA", "FuzzAppB", "FuzzAppC", "FIXED_APPS"]
