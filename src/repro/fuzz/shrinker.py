"""Delta-debugging shrinker: divergent program -> minimal reproducer.

Classic ddmin adapted to branchy machine code: removing an instruction
shifts every later pc, so each candidate rewrite remaps in-image branch
targets (targets inside the removed span collapse onto its start;
targets past it slide down; wild targets stay wild).  The *predicate* --
"the oracle still diverges on this program" -- is re-evaluated on every
candidate, so even a rewrite that changes behaviour is acceptable as
long as it keeps reproducing.

Passes, to fixpoint:

1. chunk deletion, halving chunk sizes (ddmin proper);
2. per-instruction simplification (zero the immediate, zero the
   registers, replace with NOP);
3. data-initialiser pruning.

:func:`emit_pytest` renders the survivor as a ready-to-commit pytest
case that replays the exact oracle schedule through
:func:`repro.fuzz.oracles.check_program`.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.isa.instructions import BRANCH_OPS, FLOAT_IMM_OPS, Instr, Op
from repro.isa.program import DataSymbol, Program

Predicate = Callable[[Program], bool]


def _rebuild(program: Program, instrs: list[Instr],
             data_init: dict[int, int] | None = None) -> Program:
    return Program(
        instrs=instrs,
        functions={"main": 0},
        data_symbols=dict(program.data_symbols),
        data_init=dict(program.data_init if data_init is None else data_init),
        source_name=program.source_name,
    )


def _remove_span(program: Program, start: int, stop: int) -> Program | None:
    """*program* without instructions ``[start, stop)``, branches remapped."""
    old_n = len(program.instrs)
    removed = stop - start
    kept: list[Instr] = []
    for pc, ins in enumerate(program.instrs):
        if start <= pc < stop:
            continue
        if ins.op in BRANCH_OPS and 0 <= ins.imm <= old_n:
            target = ins.imm
            if target >= stop:
                target -= removed
            elif target > start:
                target = start
            if target != ins.imm:
                ins = Instr(ins.op, rd=ins.rd, ra=ins.ra, rb=ins.rb,
                            imm=target)
        kept.append(ins)
    if not kept:
        return None
    return _rebuild(program, kept)


def _simplified_variants(ins: Instr) -> list[Instr]:
    """Cheaper stand-ins to try for one instruction, most aggressive first."""
    variants = [Instr(Op.NOP)]
    zero_imm: int | float = 0.0 if ins.op in FLOAT_IMM_OPS else 0
    if ins.imm != zero_imm:
        variants.append(
            Instr(ins.op, rd=ins.rd, ra=ins.ra, rb=ins.rb, imm=zero_imm)
        )
    if ins.rd or ins.ra or ins.rb:
        variants.append(Instr(ins.op, imm=ins.imm))
    return variants


def shrink(
    program: Program,
    predicate: Predicate,
    *,
    max_rounds: int = 10,
) -> Program:
    """Smallest program (by ddmin passes) still satisfying *predicate*.

    *predicate* must already hold for *program*; the result is 1-minimal
    with respect to the pass vocabulary (no single chunk deletion,
    instruction simplification or data pruning keeps it diverging).
    """
    current = program
    for _ in range(max_rounds):
        changed = False

        # Pass 1: ddmin chunk deletion.
        size = max(1, len(current.instrs) // 2)
        while size >= 1:
            pc = 0
            while pc < len(current.instrs):
                candidate = _remove_span(
                    current, pc, min(pc + size, len(current.instrs))
                )
                if candidate is not None and predicate(candidate):
                    current = candidate
                    changed = True
                else:
                    pc += size
            size //= 2

        # Pass 2: per-instruction simplification.
        pc = 0
        while pc < len(current.instrs):
            for variant in _simplified_variants(current.instrs[pc]):
                if variant == current.instrs[pc]:
                    continue
                instrs = list(current.instrs)
                instrs[pc] = variant
                candidate = _rebuild(current, instrs)
                if predicate(candidate):
                    current = candidate
                    changed = True
                    break
            pc += 1

        # Pass 3: data-initialiser pruning.
        for addr in sorted(current.data_init):
            pruned = dict(current.data_init)
            del pruned[addr]
            candidate = _rebuild(current, list(current.instrs), pruned)
            if predicate(candidate):
                current = candidate
                changed = True

        if not changed:
            break
    return current


# -- pytest emission ----------------------------------------------------------


def _imm_literal(imm: int | float) -> str:
    if isinstance(imm, float):
        if math.isnan(imm) or math.isinf(imm):
            return f'float("{imm!r}")'
        return repr(imm)
    return repr(imm)


def _instr_literal(ins: Instr) -> str:
    parts = [f"Op.{ins.op.name}"]
    if ins.rd:
        parts.append(f"rd={ins.rd}")
    if ins.ra:
        parts.append(f"ra={ins.ra}")
    if ins.rb:
        parts.append(f"rb={ins.rb}")
    if ins.imm != 0 or isinstance(ins.imm, float):
        parts.append(f"imm={_imm_literal(ins.imm)}")
    return f"Instr({', '.join(parts)})"


def emit_pytest(
    name: str,
    program: Program,
    *,
    budget: int,
    segments: list[int] | None = None,
    cut: int | None = None,
    breakpoints: list[int] | None = None,
    oracles: tuple[str, ...] = ("backend", "debugger", "snapshot"),
    provenance: str = "",
) -> str:
    """A self-contained pytest module replaying the shrunk reproducer."""
    instr_lines = "\n".join(
        f"        {_instr_literal(ins)}," for ins in program.instrs
    )
    symbol_lines = "\n".join(
        f'        "{s.name}": DataSymbol("{s.name}", {s.addr}, {s.cells}),'
        for s in program.data_symbols.values()
    )
    data_lines = "\n".join(
        f"        {addr}: {pattern},"
        for addr, pattern in sorted(program.data_init.items())
    )
    test_name = name.replace("-", "_")
    header = f'"""Shrunk fuzz reproducer: {name}.'
    if provenance:
        header += f"\n\n{provenance}"
    header += '\n"""'
    kwargs = [f"budget={budget}"]
    if segments is not None:
        kwargs.append(f"segments={segments!r}")
    if cut is not None:
        kwargs.append(f"cut={cut}")
    if breakpoints is not None:
        kwargs.append(f"breakpoints={breakpoints!r}")
    kwargs.append(f"oracles={oracles!r}")
    return f"""{header}

from repro.fuzz.oracles import check_program
from repro.isa.instructions import Instr, Op
from repro.isa.program import DataSymbol, Program

PROGRAM = Program(
    instrs=[
{instr_lines}
    ],
    functions={{"main": 0}},
    data_symbols={{
{symbol_lines}
    }},
    data_init={{
{data_lines}
    }},
    source_name="{name}",
)


def test_{test_name}():
    assert check_program(PROGRAM, {", ".join(kwargs)}) == []
"""


__all__ = ["shrink", "emit_pytest"]
