"""Differential and metamorphic oracles.

Three *differential* oracles run one program two ways and demand
identical :class:`~repro.fuzz.observe.Observation` digests:

* ``backend`` -- lockstep interpreter vs compiled under a random pause
  schedule (every pause point must agree, not just the final state).
* ``debugger`` -- a :class:`~repro.machine.debugger.DebugSession` on one
  backend (single-stepping, or continuing across random breakpoints)
  against a straight budgeted run on the other.
* ``snapshot`` -- snapshot mid-run on one backend, restore onto the
  other (:func:`~repro.checkpoint.snapshot.restore`) and continue; plus
  an in-place :func:`~repro.checkpoint.snapshot.restore_into` replay of
  the same process after it finished.

Three *metamorphic* oracles check campaign-engine invariants on
generated apps: ``merge`` (shard + ``CampaignResult.merge`` equals the
unsharded run; associative and counts-commutative; telemetry counters
sum), ``resume`` (a journal pre-seeded with a prefix of results resumes
to the bit-identical campaign), and ``jobs`` (jobs=1 equals jobs=N,
telemetry counters included).

Every oracle returns a list of :class:`Divergence` records -- empty
means the property held.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.checkpoint.snapshot import restore, restore_into, snapshot
from repro.core.config import LetGoConfig
from repro.faultinject.campaign import CampaignConfig, CampaignResult
from repro.faultinject.engine import CampaignEngine
from repro.faultinject.fault_model import plan_injections
from repro.faultinject.injector import InjectionResult, run_injection
from repro.faultinject.journal import CampaignJournal, JournalHeader
from repro.fuzz.observe import Observation, observe
from repro.isa.program import Program
from repro.machine.cpu import CPU
from repro.machine.debugger import (
    STOP_BREAKPOINT,
    STOP_BUDGET,
    STOP_EXITED,
    STOP_TRAP,
    DebugSession,
)
from repro.machine.process import Process, ProcessStatus

#: Backend selectors accepted by the differential oracles: a registry
#: name ("interpreter"/"compiled") or a CPU subclass (scratch mutants).
Backend = str | type[CPU]

#: Differential oracle names (program-level).
PROGRAM_ORACLES = ("backend", "debugger", "snapshot")
#: Metamorphic oracle names (campaign-level).
CAMPAIGN_ORACLES = ("merge", "resume", "jobs")
ALL_ORACLES = PROGRAM_ORACLES + CAMPAIGN_ORACLES


@dataclass(frozen=True)
class Divergence:
    """One observed violation of an oracle's property."""

    oracle: str
    at: str        # where in the schedule/property it was observed
    detail: str    # first differing field, ``a != b``

    def to_dict(self) -> dict:
        return asdict(self)


# -- differential oracles -----------------------------------------------------


def _run_budget(process: Process, budget: int) -> None:
    """Advance *process* by up to *budget* instructions (no-op if done)."""
    if process.status is ProcessStatus.RUNNING and budget > 0:
        process.run(budget)


def classify_stop(obs: Observation) -> str:
    """Coverage bucket of a final observation: halt / budget / signal."""
    if obs.status == "exited":
        return "halt"
    if obs.status == "terminated" and obs.trap is not None:
        return obs.trap[0]
    return "budget"


def check_backends(
    program: Program,
    segments: list[int],
    a="interpreter",
    b="compiled",
) -> list[Divergence]:
    """Lockstep run across *segments*; every pause point must agree."""
    pa = Process.load(program, backend=a)
    pb = Process.load(program, backend=b)
    for k, seg in enumerate(segments):
        _run_budget(pa, seg)
        _run_budget(pb, seg)
        diff = observe(pa).diff(observe(pb))
        if diff is not None:
            return [
                Divergence(
                    "backend",
                    at=f"segment {k} (after {sum(segments[: k + 1])} steps)",
                    detail=diff,
                )
            ]
    return []


def check_debugger(
    program: Program,
    budget: int,
    breakpoints: list[int],
    a="interpreter",
    b="compiled",
) -> list[Divergence]:
    """Debug-session stepping on *a* vs one straight run on *b*.

    With breakpoints the session continues across them (gdb-style);
    without, it single-steps the whole budget.  Traps are delivered with
    the default disposition so the final status matches a plain run.
    """
    ref = Process.load(program, backend=b)
    _run_budget(ref, budget)

    session = DebugSession(Process.load(program, backend=a))
    for bp in breakpoints:
        session.set_breakpoint(bp)
    remaining = budget
    while remaining > 0:
        if breakpoints:
            event = session.cont(remaining)
        else:
            event = session.run_steps(1)
        remaining -= event.steps
        if event.kind == STOP_TRAP:
            session.deliver_default(event.trap)
            break
        if event.kind in (STOP_EXITED, STOP_BUDGET):
            break
        if event.kind == STOP_BREAKPOINT:
            continue
        if event.steps == 0:  # defensive: no progress, no stop reason
            break
    diff = observe(session.process).diff(observe(ref))
    if diff is not None:
        mode = "breakpoints" if breakpoints else "single-step"
        return [Divergence("debugger", at=mode, detail=diff)]
    return []


def check_snapshot(
    program: Program,
    cut: int,
    budget: int,
    a="interpreter",
    b="compiled",
) -> list[Divergence]:
    """Snapshot at *cut* steps, restore, continue to *budget*; must match.

    Leg 1: run *cut* on backend *a*, snapshot, restore onto a fresh
    process on backend *b*, finish there; compare against a straight
    *b* run (snapshots are backend-agnostic).  Leg 2: after the donor
    process finishes the budget itself, ``restore_into`` rewinds it to
    the snapshot and replays; compare against a straight *a* run
    (in-place restore must scrub all finished-run state).
    """
    donor = Process.load(program, backend=a)
    result = donor.run(min(cut, budget))
    if result.reason != "budget":
        return []  # finished before the cut: nothing to snapshot
    snap = snapshot(donor)
    remaining = budget - result.steps

    ref_b = Process.load(program, backend=b)
    _run_budget(ref_b, budget)
    cross = restore(program, snap, backend=b)
    _run_budget(cross, remaining)
    diff = observe(cross).diff(observe(ref_b))
    if diff is not None:
        return [Divergence("snapshot", at=f"restore@{cut}", detail=diff)]

    ref_a = Process.load(program, backend=a)
    _run_budget(ref_a, budget)
    _run_budget(donor, remaining)          # donor finishes its own budget
    restore_into(donor, snap)              # ...then rewinds in place
    _run_budget(donor, remaining)
    diff = observe(donor).diff(observe(ref_a))
    if diff is not None:
        return [Divergence("snapshot", at=f"restore_into@{cut}", detail=diff)]
    return []


def check_program(
    program: Program,
    *,
    budget: int,
    segments: list[int] | None = None,
    cut: int | None = None,
    breakpoints: list[int] | None = None,
    oracles: tuple[str, ...] = PROGRAM_ORACLES,
    a="interpreter",
    b="compiled",
) -> list[Divergence]:
    """Run the selected differential oracles on one program.

    This is the replay entry point used by corpus tests and emitted
    reproducers; defaults derive a simple schedule from *budget*.
    """
    found: list[Divergence] = []
    if "backend" in oracles:
        found += check_backends(program, segments or [budget], a=a, b=b)
    if "debugger" in oracles:
        found += check_debugger(program, budget, breakpoints or [], a=a, b=b)
    if "snapshot" in oracles:
        found += check_snapshot(
            program, cut if cut is not None else max(1, budget // 2),
            budget, a=a, b=b,
        )
    return found


# -- metamorphic campaign oracles ---------------------------------------------


def _result_key(r: InjectionResult) -> tuple:
    return (
        r.outcome.value,
        r.target_pc,
        r.target_reg,
        None if r.first_signal is None else r.first_signal.name,
        r.interventions,
        r.steps,
        r.timed_out,
    )


def _campaign_key(result: CampaignResult) -> tuple:
    counts = tuple(
        sorted((o.value, c) for o, c in result.counts.items() if c)
    )
    return (
        result.n,
        counts,
        tuple(_result_key(r) for r in result.results),
    )


def _counter_sum(counter_dicts) -> dict[str, int]:
    total: dict[str, int] = {}
    for counters in counter_dicts:
        for name, value in counters.items():
            total[name] = total.get(name, 0) + value
    return {k: v for k, v in sorted(total.items()) if v}


def _run_with_engine(app, n, seed, config, plans, campaign):
    engine = CampaignEngine(config=campaign)
    result = engine.run(app, n, seed, config, plans=plans)
    return result, engine.telemetry


def _tally(coverage, result: CampaignResult, report) -> None:
    """Fold one campaign's outcome classes and heuristics into *coverage*."""
    if coverage is None:
        return
    for outcome, count in result.counts.items():
        if count:
            coverage.outcomes[outcome.value] += count
    if report is not None:
        for name, count in report.heuristic_counts().items():
            coverage.heuristics[name] += count


def check_merge(
    app,
    n: int,
    seed: int,
    config: LetGoConfig | None,
    split: int,
    coverage=None,
) -> list[Divergence]:
    """Sharded runs + ``merge`` == unsharded run; merge laws; telemetry."""
    cc = CampaignConfig(keep_results=True, telemetry=True)
    plans = plan_injections(np.random.default_rng(seed), app.golden.instret, n)
    split = max(1, min(split, n - 1))
    full, full_tel = _run_with_engine(app, n, seed, config, plans, cc)
    _tally(coverage, full, full_tel)

    parts = [plans[:split], plans[split:]]
    shard_runs = [
        _run_with_engine(app, len(p), seed, config, p, cc) for p in parts
    ]
    shards = [r for r, _ in shard_runs]
    merged = CampaignResult.merge(shards)

    found: list[Divergence] = []
    if _campaign_key(merged) != _campaign_key(full):
        found.append(Divergence(
            "merge", at=f"shard@{split}",
            detail=f"{_campaign_key(merged)!r} != {_campaign_key(full)!r}",
        ))

    # Associativity on a 3-way split; commutativity of the counts.
    third = max(1, split // 2)
    trio = [plans[:third], plans[third:split], plans[split:]]
    trio_results = [
        _run_with_engine(app, len(p), seed, config, p, cc)[0]
        for p in trio if p
    ]
    if len(trio_results) >= 2:
        left = CampaignResult.merge(
            [CampaignResult.merge(trio_results[:-1]), trio_results[-1]]
        )
        right = CampaignResult.merge(
            [trio_results[0], CampaignResult.merge(trio_results[1:])]
        )
        if _campaign_key(left) != _campaign_key(right):
            found.append(Divergence(
                "merge", at="associativity",
                detail=f"{_campaign_key(left)!r} != {_campaign_key(right)!r}",
            ))
        forward = CampaignResult.merge(trio_results).counts
        backward = CampaignResult.merge(trio_results[::-1]).counts
        if forward != backward:
            found.append(Divergence(
                "merge", at="counts-commutativity",
                detail=f"{forward!r} != {backward!r}",
            ))

    shard_counters = _counter_sum(
        _filtered_counters(tel) for _, tel in shard_runs
    )
    full_counters = _filtered_counters(full_tel)
    if shard_counters != full_counters:
        found.append(Divergence(
            "merge", at="telemetry-counters",
            detail=f"{shard_counters!r} != {full_counters!r}",
        ))
    return found


def check_resume(
    app,
    n: int,
    seed: int,
    config: LetGoConfig | None,
    prefix: int,
    workdir: str | Path,
    coverage=None,
) -> list[Divergence]:
    """A journal pre-seeded with *prefix* results resumes bit-identically."""
    plans = plan_injections(np.random.default_rng(seed), app.golden.instret, n)
    cc = CampaignConfig(keep_results=True)
    full, _ = _run_with_engine(app, n, seed, config, plans, cc)
    _tally(coverage, full, None)

    prefix = max(0, min(prefix, n - 1))
    path = Path(workdir) / "fuzz-resume.journal"
    header = JournalHeader.for_campaign(
        app.name, config.name if config is not None else "baseline",
        n, seed, plans,
    )
    journal = CampaignJournal.create(path, header)
    if prefix:
        done = [run_injection(app, plans[i], config) for i in range(prefix)]
        journal.record_shard(list(range(prefix)), done)

    resumed = CampaignEngine(config=CampaignConfig(keep_results=True)).run(
        app, n, seed, config, plans=plans, resume=path
    )
    if _campaign_key(resumed) != _campaign_key(full):
        return [Divergence(
            "resume", at=f"prefix={prefix}",
            detail=f"{_campaign_key(resumed)!r} != {_campaign_key(full)!r}",
        )]
    return []


def check_jobs(
    app,
    n: int,
    seed: int,
    config: LetGoConfig | None,
    jobs: int = 4,
    shard_size: int | None = None,
    coverage=None,
) -> list[Divergence]:
    """jobs=1 and jobs=N produce identical results and telemetry counters.

    *app* must satisfy the engine's picklable-spec contract (see
    :mod:`repro.fuzz.app`); the engine raises otherwise.
    """
    plans = plan_injections(np.random.default_rng(seed), app.golden.instret, n)
    serial, serial_tel = _run_with_engine(
        app, n, seed, config, plans,
        CampaignConfig(jobs=1, keep_results=True, telemetry=True),
    )
    _tally(coverage, serial, serial_tel)
    fanned, fanned_tel = _run_with_engine(
        app, n, seed, config, plans,
        CampaignConfig(
            jobs=jobs, keep_results=True, telemetry=True,
            shard_size=shard_size,
        ),
    )
    found: list[Divergence] = []
    if _campaign_key(serial) != _campaign_key(fanned):
        found.append(Divergence(
            "jobs", at=f"jobs=1 vs jobs={jobs}",
            detail=f"{_campaign_key(serial)!r} != {_campaign_key(fanned)!r}",
        ))
    serial_outcomes = _filtered_counters(serial_tel)
    fanned_outcomes = _filtered_counters(fanned_tel)
    if serial_outcomes != fanned_outcomes:
        found.append(Divergence(
            "jobs", at="telemetry-counters",
            detail=f"{serial_outcomes!r} != {fanned_outcomes!r}",
        ))
    return found


def _filtered_counters(report) -> dict[str, int]:
    """Outcome/heuristic/signal counters only (scheduling events vary)."""
    if report is None:
        return {}
    keep = ("outcome:", "heuristic:", "first-signal:")
    return {
        name: value
        for name, value in sorted(report.counters.items())
        if name.startswith(keep) and value
    }


__all__ = [
    "Divergence",
    "PROGRAM_ORACLES",
    "CAMPAIGN_ORACLES",
    "ALL_ORACLES",
    "classify_stop",
    "check_backends",
    "check_debugger",
    "check_snapshot",
    "check_program",
    "check_merge",
    "check_resume",
    "check_jobs",
]
