"""Coverage accounting for fuzz runs, with a checked-in floor.

A fuzzer that silently stops exercising half the ISA still reports
"zero findings" -- the floor turns that regression into a test failure.
:class:`FuzzCoverage` tallies, per run:

* ``opcodes``   -- dynamically retired opcodes (profiled interpreter run);
* ``stops``     -- terminal classification of each differential case
  (``halt`` / ``budget`` / signal name);
* ``outcomes``  -- campaign outcome classes hit by the metamorphic
  oracles (:class:`~repro.faultinject.outcomes.Outcome` values);
* ``heuristics``-- LetGo heuristic firings observed via telemetry;
* ``oracles``   -- cases checked per oracle.

Counters merge additively and export to a stable sorted-JSON form;
``tests/fuzz/coverage_floor.json`` pins the floor a fixed-seed run must
stay above (compared on *presence and minimum count* per key).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.isa.program import Program
from repro.machine.process import Process
from repro.machine.signals import Trap

_SECTIONS = ("opcodes", "stops", "outcomes", "heuristics", "oracles")


@dataclass
class FuzzCoverage:
    """Additive coverage counters for one (or many merged) fuzz runs."""

    opcodes: Counter = field(default_factory=Counter)
    stops: Counter = field(default_factory=Counter)
    outcomes: Counter = field(default_factory=Counter)
    heuristics: Counter = field(default_factory=Counter)
    oracles: Counter = field(default_factory=Counter)

    def merge(self, other: "FuzzCoverage") -> None:
        for section in _SECTIONS:
            getattr(self, section).update(getattr(other, section))

    def record_program(self, program: Program, budget: int) -> str:
        """Profile *program* on the interpreter; tally opcodes and stop.

        Returns the stop classification that was tallied into ``stops``
        (``halt`` / ``budget`` / the trap's signal name).
        """
        process = Process.load(program, backend="interpreter")
        counts = [0] * len(program.instrs)
        stop = "budget"
        try:
            if process.cpu.run_profiled(counts, budget) == "halt":
                stop = "halt"
        except Trap as trap:
            stop = trap.signal.name
        for pc, count in enumerate(counts):
            if count:
                self.opcodes[program.instrs[pc].op.name] += count
        self.stops[stop] += 1
        return stop

    def to_dict(self) -> dict:
        return {
            section: dict(sorted(getattr(self, section).items()))
            for section in _SECTIONS
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzCoverage":
        cov = cls()
        for section in _SECTIONS:
            getattr(cov, section).update(payload.get(section, {}))
        return cov

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    def deficits(self, floor: dict) -> list[str]:
        """Floor keys this coverage misses or under-counts (empty: ok)."""
        out: list[str] = []
        for section in _SECTIONS:
            have = getattr(self, section)
            for key, minimum in floor.get(section, {}).items():
                if have.get(key, 0) < minimum:
                    out.append(
                        f"{section}:{key} = {have.get(key, 0)} < {minimum}"
                    )
        return out


def load_floor(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


__all__ = ["FuzzCoverage", "load_floor"]
