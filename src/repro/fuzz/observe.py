"""Architectural observations: what the differential oracles compare.

An :class:`Observation` is a frozen digest of everything two executions
of the same program must agree on at a pause point: lifecycle status,
program counter, retirement count, both register files, a memory digest,
the OUT/FOUT stream, trap classification, and (only once halted) the
exit code.

Floats are compared by IEEE-754 bit pattern, not ``==`` -- that is the
only comparison that catches ``-0.0`` vs ``0.0`` and NaN-payload drift
while still treating ``nan == nan`` at the same pattern as equal.

The exit code is deliberately *excluded* until the process halts:
``Snapshot`` does not capture it (it is only architecturally meaningful
at EXITED), so a restored process legitimately carries a stale value
mid-flight.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields

from repro.machine.memory import Memory, float_to_pattern
from repro.machine.process import Process
from repro.machine.signals import Trap


def memory_digest(memory: Memory) -> str:
    """Order-independent sha256 over the written cells of *memory*."""
    h = hashlib.sha256()
    for addr, pattern in sorted(memory.written_cells().items()):
        h.update(addr.to_bytes(8, "little", signed=False))
        h.update(pattern.to_bytes(8, "little", signed=False))
    return h.hexdigest()


def _pattern_output(
    output: list[tuple[str, int | float]]
) -> tuple[tuple[str, int], ...]:
    """OUT/FOUT stream with float values replaced by their bit patterns."""
    return tuple(
        (kind, float_to_pattern(v) if kind == "f" else int(v))
        for kind, v in output
    )


def _trap_key(trap: Trap | None) -> tuple[str, int, str, int | None] | None:
    if trap is None:
        return None
    return (trap.signal.name, trap.pc, trap.detail, trap.address)


@dataclass(frozen=True)
class Observation:
    """One execution's architectural state at a pause point."""

    status: str                                  # running|exited|terminated
    pc: int
    instret: int
    iregs: tuple[int, ...]
    fregs: tuple[int, ...]                       # IEEE-754 bit patterns
    memory: str                                  # sha256 of written cells
    output: tuple[tuple[str, int], ...]          # floats as bit patterns
    trap: tuple[str, int, str, int | None] | None
    exit_code: int | None                        # None unless exited

    def diff(self, other: "Observation") -> str | None:
        """First field on which the two observations disagree, or None."""
        for f in fields(self):
            a, b = getattr(self, f.name), getattr(other, f.name)
            if a != b:
                return f"{f.name}: {a!r} != {b!r}"
        return None


def observe(process: Process) -> Observation:
    """Digest the current architectural state of *process*."""
    cpu = process.cpu
    exited = process.status.value == "exited"
    return Observation(
        status=process.status.value,
        pc=cpu.pc,
        instret=cpu.instret,
        iregs=tuple(cpu.iregs),
        fregs=tuple(float_to_pattern(v) for v in cpu.fregs),
        memory=memory_digest(process.memory),
        output=_pattern_output(cpu.output),
        trap=_trap_key(process.last_trap),
        exit_code=process.exit_code if exited else None,
    )


__all__ = ["Observation", "observe", "memory_digest"]
