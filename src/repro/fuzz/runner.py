"""Fuzz campaign orchestration: case planning, fan-out, shrink, report.

Determinism contract (an acceptance criterion of the subsystem): a run
is a pure function of its :class:`FuzzConfig`.  Every case derives its
own ``random.Random(f"{seed}:{kind}:{index}")`` -- string seeding hashes
through SHA-512, so it is stable across processes, platforms and
``PYTHONHASHSEED``.  Cases never share RNG state, so partitioning them
across worker processes (``jobs``) cannot change the program stream,
the findings, or the coverage report; results are merged in case order
regardless of completion order.

Case kinds:

* ``isa``  -- a random instruction sequence through the differential
  oracles (backend lockstep, debugger, snapshot round-trip);
* ``lang`` -- a generated MiniC source: compiled (a front-end crash is
  itself a finding), run through the differential oracles, and on a
  stride wrapped as an app for the merge/resume metamorphic oracles;
* ``jobs`` -- campaign-parameter fuzz of the jobs=1 vs jobs=N oracle
  against the fixed importable apps (these spawn a process pool, so
  they always run in the parent, never inside a fuzz worker).

Any differential divergence is delta-debugged down to a minimal
reproducer and carried in the finding as a ready-to-save corpus case
plus a ready-to-commit pytest module.
"""

from __future__ import annotations

import random
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field

from repro.core.config import VARIANTS
from repro.fuzz.app import FIXED_APPS, LangApp
from repro.fuzz.corpus import case_to_dict
from repro.fuzz.coverage import FuzzCoverage
from repro.fuzz.generator import (
    DEFAULT_BUDGET,
    gen_breakpoints,
    gen_isa_program,
    gen_lang_source,
    gen_segments,
)
from repro.fuzz.mutations import MUTATIONS
from repro.fuzz.oracles import (
    ALL_ORACLES,
    CAMPAIGN_ORACLES,
    PROGRAM_ORACLES,
    Divergence,
    check_jobs,
    check_merge,
    check_program,
    check_resume,
)
from repro.fuzz.shrinker import emit_pytest, shrink

#: LetGo configurations the campaign oracles draw from (None = baseline).
_CAMPAIGN_CONFIGS = (None,) + tuple(VARIANTS.values())


@dataclass(frozen=True)
class FuzzConfig:
    """Everything a fuzz run depends on (the whole determinism domain)."""

    iterations: int = 200          # ISA cases
    lang_iterations: int = 20      # MiniC cases
    seed: int = 0
    oracles: tuple[str, ...] = ALL_ORACLES
    budget: int = DEFAULT_BUDGET   # differential step budget per ISA case
    jobs: int = 1                  # fuzz worker processes
    campaign_stride: int = 2       # merge/resume every Nth lang case
    jobs_cases: int = 1            # jobs-invariance cases (0 disables)
    campaign_n: int = 5            # injections per campaign oracle run
    mutation: str | None = None    # plant a mutant as the compiled side
    shrink: bool = True

    def backends(self) -> tuple:
        """(a, b) backend pair every differential oracle compares."""
        if self.mutation is not None:
            return ("interpreter", MUTATIONS[self.mutation])
        return ("interpreter", "compiled")


@dataclass
class Finding:
    """One oracle violation, with its shrunk reproducer when available."""

    kind: str                      # isa | lang | jobs
    index: int
    oracle: str
    at: str
    detail: str
    case: dict | None = None       # corpus-format reproducer (shrunk)
    pytest_source: str | None = None
    shrunk_len: int | None = None
    original_len: int | None = None

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    config: FuzzConfig
    cases: int
    findings: list[Finding] = field(default_factory=list)
    coverage: FuzzCoverage = field(default_factory=FuzzCoverage)

    @property
    def ok(self) -> bool:
        return not self.findings


# -- per-case execution -------------------------------------------------------


def _case_rng(config: FuzzConfig, kind: str, index: int) -> random.Random:
    return random.Random(f"{config.seed}:{kind}:{index}")


def _shrink_finding(
    finding: Finding,
    program,
    config: FuzzConfig,
    *,
    budget: int,
    segments: list[int],
    cut: int,
    breakpoints: list[int],
) -> None:
    """Attach a minimal reproducer (corpus case + pytest) to *finding*."""
    a, b = config.backends()
    oracle = finding.oracle

    def still_diverges(candidate) -> bool:
        return bool(check_program(
            candidate, budget=budget, segments=segments, cut=cut,
            breakpoints=breakpoints, oracles=(oracle,), a=a, b=b,
        ))

    finding.original_len = len(program.instrs)
    if config.shrink and still_diverges(program):
        program = shrink(program, still_diverges)
    finding.shrunk_len = len(program.instrs)
    name = f"{finding.kind}-{finding.oracle}-seed{config.seed}-{finding.index}"
    provenance = (
        f"Found by `repro fuzz --seed {config.seed}` "
        f"({finding.kind} case {finding.index}, oracle {finding.oracle}); "
        f"shrunk from {finding.original_len} instructions."
    )
    finding.case = case_to_dict(
        name,
        provenance + f" Divergence: {finding.detail}",
        program,
        budget=budget,
        segments=segments,
        cut=cut,
        breakpoints=breakpoints,
        oracles=(oracle,),
    )
    finding.pytest_source = emit_pytest(
        name, program, budget=budget, segments=segments, cut=cut,
        breakpoints=breakpoints, oracles=(oracle,), provenance=provenance,
    )


def _program_oracles(config: FuzzConfig) -> tuple[str, ...]:
    return tuple(o for o in config.oracles if o in PROGRAM_ORACLES)


def _check_generated(
    kind: str,
    index: int,
    program,
    config: FuzzConfig,
    rng: random.Random,
    budget: int,
    coverage: FuzzCoverage,
) -> list[Finding]:
    """Differential oracles + coverage for one generated program."""
    oracles = _program_oracles(config)
    if not oracles:
        return []
    segments = gen_segments(rng, budget)
    cut = rng.randint(1, max(1, budget - 1))
    breakpoints = gen_breakpoints(rng, len(program.instrs))
    a, b = config.backends()
    coverage.record_program(program, budget)
    for oracle in oracles:
        coverage.oracles[oracle] += 1
    findings = []
    for div in check_program(
        program, budget=budget, segments=segments, cut=cut,
        breakpoints=breakpoints, oracles=oracles, a=a, b=b,
    ):
        finding = Finding(kind, index, div.oracle, div.at, div.detail)
        _shrink_finding(
            finding, program, config,
            budget=budget, segments=segments, cut=cut,
            breakpoints=breakpoints,
        )
        findings.append(finding)
    return findings


def run_case(config: FuzzConfig, kind: str, index: int):
    """Run one case; returns (findings, coverage) for merge in case order."""
    rng = _case_rng(config, kind, index)
    coverage = FuzzCoverage()
    findings: list[Finding] = []

    if kind == "isa":
        program = gen_isa_program(rng)
        findings = _check_generated(
            kind, index, program, config, rng, config.budget, coverage
        )

    elif kind == "lang":
        source = gen_lang_source(rng)
        try:
            app = LangApp(source, name=f"fuzz-lang-{config.seed}-{index}")
            program = app.program
            golden_steps = app.golden.instret
        except Exception as exc:
            findings.append(Finding(
                kind, index, "lang-compile", at="compile/golden",
                detail=f"{type(exc).__name__}: {exc}\n--- source ---\n{source}",
            ))
            return findings, coverage
        budget = golden_steps + 16  # past the halt: exercises halted states
        findings = _check_generated(
            kind, index, program, config, rng, budget, coverage
        )
        if index % config.campaign_stride == 0 and config.mutation is None:
            letgo = rng.choice(_CAMPAIGN_CONFIGS)
            n = config.campaign_n
            campaign_seed = rng.randrange(1 << 30)
            if "merge" in config.oracles:
                coverage.oracles["merge"] += 1
                for div in check_merge(
                    app, n, campaign_seed, letgo,
                    split=rng.randint(1, n - 1), coverage=coverage,
                ):
                    findings.append(Finding(
                        kind, index, div.oracle, div.at, div.detail
                    ))
            if "resume" in config.oracles:
                coverage.oracles["resume"] += 1
                with tempfile.TemporaryDirectory() as workdir:
                    for div in check_resume(
                        app, n, campaign_seed, letgo,
                        prefix=rng.randint(0, n - 1), workdir=workdir,
                        coverage=coverage,
                    ):
                        findings.append(Finding(
                            kind, index, div.oracle, div.at, div.detail
                        ))

    elif kind == "jobs":
        app = FIXED_APPS[index % len(FIXED_APPS)]()
        letgo = rng.choice(_CAMPAIGN_CONFIGS)
        coverage.oracles["jobs"] += 1
        for div in check_jobs(
            app, rng.randint(4, 4 + config.campaign_n), rng.randrange(1 << 30),
            letgo, jobs=4, shard_size=rng.choice((None, 1, 2)),
            coverage=coverage,
        ):
            findings.append(Finding(kind, index, div.oracle, div.at, div.detail))

    else:  # pragma: no cover - internal misuse
        raise ValueError(f"unknown case kind {kind!r}")

    return findings, coverage


def _pool_case(args):
    return run_case(*args)


# -- the run ------------------------------------------------------------------


def plan_cases(config: FuzzConfig) -> list[tuple[str, int]]:
    """The full (kind, index) schedule of a run, in canonical order."""
    cases = [("isa", i) for i in range(config.iterations)]
    cases += [("lang", i) for i in range(config.lang_iterations)]
    if "jobs" in config.oracles and config.mutation is None:
        cases += [("jobs", i) for i in range(config.jobs_cases)]
    return cases


def run_fuzz(config: FuzzConfig, on_progress=None) -> FuzzReport:
    """Execute the whole fuzz campaign described by *config*.

    ``on_progress(done, total)`` is called as cases complete.  With
    ``jobs > 1`` the isa/lang cases fan out over a process pool; the
    jobs-invariance cases (which spawn their own campaign pools) always
    run in the parent.
    """
    report = FuzzReport(config=config, cases=0)
    cases = plan_cases(config)
    pool_cases = [c for c in cases if c[0] != "jobs"]
    local_cases = [c for c in cases if c[0] == "jobs"]
    done = 0
    total = len(cases)
    per_case: dict[tuple[str, int], tuple] = {}

    if config.jobs > 1 and pool_cases:
        with ProcessPoolExecutor(max_workers=config.jobs) as pool:
            chunk = max(1, len(pool_cases) // (config.jobs * 4))
            for case, result in zip(
                pool_cases,
                pool.map(
                    _pool_case,
                    [(config, kind, index) for kind, index in pool_cases],
                    chunksize=chunk,
                ),
            ):
                per_case[case] = result
                done += 1
                if on_progress:
                    on_progress(done, total)
    else:
        for kind, index in pool_cases:
            per_case[(kind, index)] = run_case(config, kind, index)
            done += 1
            if on_progress:
                on_progress(done, total)

    for kind, index in local_cases:
        per_case[(kind, index)] = run_case(config, kind, index)
        done += 1
        if on_progress:
            on_progress(done, total)

    for case in cases:  # canonical order, independent of completion order
        findings, coverage = per_case[case]
        report.findings.extend(findings)
        report.coverage.merge(coverage)
    report.cases = total
    return report


# -- mutation self-test -------------------------------------------------------


@dataclass
class SelftestResult:
    """Outcome of one mutant-killing run (the shrinker acceptance gate)."""

    mutation: str
    killed: bool
    found_at: int | None = None
    original_len: int | None = None
    shrunk_len: int | None = None
    finding: Finding | None = None

    @property
    def ok(self) -> bool:
        return (
            self.killed
            and self.shrunk_len is not None
            and self.shrunk_len <= 25
        )


def mutation_selftest(
    mutation: str,
    seed: int = 0,
    max_cases: int = 300,
    budget: int = 96,
) -> SelftestResult:
    """Plant *mutation* as the compiled side; the fuzzer must kill and
    shrink it to <= 25 instructions within *max_cases* programs."""
    config = FuzzConfig(
        iterations=max_cases, lang_iterations=0, seed=seed,
        oracles=PROGRAM_ORACLES, budget=budget, mutation=mutation,
    )
    for index in range(max_cases):
        findings, _ = run_case(config, "isa", index)
        if findings:
            finding = findings[0]
            return SelftestResult(
                mutation, killed=True, found_at=index,
                original_len=finding.original_len,
                shrunk_len=finding.shrunk_len, finding=finding,
            )
    return SelftestResult(mutation, killed=False)


__all__ = [
    "FuzzConfig",
    "Finding",
    "FuzzReport",
    "SelftestResult",
    "run_case",
    "plan_cases",
    "run_fuzz",
    "mutation_selftest",
]
