"""Scratch backend mutants: known-bad CPUs the fuzzer must catch.

Each class is a copy of the reference interpreter with ONE semantic
fault planted -- deliberately re-creating the bug classes PR 3 fixed by
hand (NaN min/max, HALT-pc advance, map-before-alignment) plus a
sign-extension fault.  They are strictly test scaffolding: running the
fuzzer with ``--mutation NAME`` swaps the mutant in as the "compiled"
side of every differential oracle, which must then (a) flag a
divergence and (b) shrink it to a tiny reproducer.  A fuzzer that
cannot kill these mutants would not have caught the real bugs either
(the mutation-adequacy methodology of the repair-assessment line of
work).

The interpreter builds its dispatch table per-instance with
``getattr(self, "_op_...")``, so overriding a handler in a subclass is
all a mutant needs.
"""

from __future__ import annotations

from math import isnan

from repro.isa.instructions import Instr
from repro.machine.cpu import CPU
from repro.machine.signals import Signal, Trap


class FminNanPropagates(CPU):
    """FMIN propagates NaN instead of IEEE minNum (PR-3 bug class)."""

    def _op_fmin(self, ins: Instr) -> None:
        f = self.fregs
        a, b = f[ins.ra], f[ins.rb]
        if isnan(a) or isnan(b):
            f[ins.rd] = float("nan")
        else:
            f[ins.rd] = a if a < b else b
        self.pc += 1


class HaltAdvancesPc(CPU):
    """HALT retires with pc past the halt site (PR-3 bug class)."""

    def _op_halt(self, ins: Instr) -> None:
        self.halted = True
        self.exit_code = self.iregs[0]
        self.pc += 1


class ShriLogical(CPU):
    """SHRI shifts the unsigned 64-bit pattern (drops sign extension)."""

    def _op_shri(self, ins: Instr) -> None:
        pattern = self.iregs[ins.ra] & ((1 << 64) - 1)
        self.iregs[ins.rd] = pattern >> (ins.imm & 63)
        self.pc += 1


class AlignmentBeforeMap(CPU):
    """LD checks alignment before the segment map (PR-3 bug class).

    An unaligned access to *unmapped* memory then reports SIGBUS where
    the fixed substrate reports SIGSEGV.
    """

    def _op_ld(self, ins: Instr) -> None:
        addr = self.iregs[ins.ra] + ins.imm
        if addr % 8 and not self.memory.is_mapped(addr):
            raise Trap(
                Signal.SIGBUS,
                pc=self.pc,
                instr=ins,
                detail=f"bus on read at 0x{addr & ((1 << 64) - 1):x}",
                address=addr,
            )
        super()._op_ld(ins)


#: name -> mutant class, the ``--mutation`` CLI choices.
MUTATIONS: dict[str, type[CPU]] = {
    "fmin-nan": FminNanPropagates,
    "halt-pc": HaltAdvancesPc,
    "shri-logical": ShriLogical,
    "segv-order": AlignmentBeforeMap,
}


__all__ = ["MUTATIONS"] + [cls.__name__ for cls in MUTATIONS.values()]
