"""Checked-in reproducer corpus: JSON on disk, replayed as tier-1 tests.

Every divergence the fuzzer ever shrank lives on as a corpus case under
``tests/corpus/*.json``; ``tests/fuzz/test_corpus.py`` parametrizes over
the directory so each case is an individually named tier-1 test forever.

Format (``"format": 1``)::

    {
      "format": 1,
      "name": "fmin-nan",
      "description": "why this case exists",
      "oracles": ["backend", "debugger", "snapshot"],
      "budget": 96,
      "segments": [3, 5, 88],        # optional lockstep schedule
      "cut": 7,                      # optional snapshot point
      "breakpoints": [2],            # optional debugger breakpoints
      "program": {
        "instrs": [["movi", 1, 0, 0, 65536], ["halt", 0, 0, 0, 0]],
        "data_cells": 4,
        "data_init": {"65536": 255}
      }
    }

Instruction operands are ``[opname, rd, ra, rb, imm]``.  JSON cannot
encode NaN/inf, so float immediates (FMOVI) are stored as ``repr``
strings and parsed back with ``float()`` -- the round trip is exact for
every IEEE double including NaN and the infinities.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.fuzz.oracles import PROGRAM_ORACLES, Divergence, check_program
from repro.isa.instructions import FLOAT_IMM_OPS, Instr, Op
from repro.isa.layout import DATA_BASE
from repro.isa.program import DataSymbol, Program

FORMAT_VERSION = 1


def program_to_dict(program: Program) -> dict:
    """JSON-safe encoding of a fuzz program (entry ``main`` at pc 0)."""
    instrs = []
    for ins in program.instrs:
        imm: int | float | str = ins.imm
        if isinstance(imm, float):
            imm = repr(imm)
        instrs.append([ins.op.name.lower(), ins.rd, ins.ra, ins.rb, imm])
    return {
        "instrs": instrs,
        "data_cells": program.data_cells,
        "data_init": {str(a): p for a, p in sorted(program.data_init.items())},
    }


def program_from_dict(payload: dict, name: str = "corpus") -> Program:
    """Decode :func:`program_to_dict` output."""
    instrs = []
    for opname, rd, ra, rb, imm in payload["instrs"]:
        op = Op[opname.upper()]
        if isinstance(imm, str):
            imm = float(imm)
        elif op in FLOAT_IMM_OPS:
            imm = float(imm)
        instrs.append(Instr(op, rd=rd, ra=ra, rb=rb, imm=imm))
    cells = int(payload.get("data_cells", 0))
    symbols = {"g": DataSymbol("g", DATA_BASE, cells)} if cells else {}
    return Program(
        instrs=instrs,
        functions={"main": 0},
        data_symbols=symbols,
        data_init={int(a): p for a, p in payload.get("data_init", {}).items()},
        source_name=name,
    )


def case_to_dict(
    name: str,
    description: str,
    program: Program,
    *,
    budget: int,
    segments: list[int] | None = None,
    cut: int | None = None,
    breakpoints: list[int] | None = None,
    oracles: tuple[str, ...] = PROGRAM_ORACLES,
) -> dict:
    case = {
        "format": FORMAT_VERSION,
        "name": name,
        "description": description,
        "oracles": list(oracles),
        "budget": budget,
        "program": program_to_dict(program),
    }
    if segments is not None:
        case["segments"] = list(segments)
    if cut is not None:
        case["cut"] = cut
    if breakpoints is not None:
        case["breakpoints"] = list(breakpoints)
    return case


def save_case(path: str | Path, case: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(case, indent=2, sort_keys=True) + "\n")
    return path


def load_case(path: str | Path) -> dict:
    case = json.loads(Path(path).read_text())
    version = case.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported corpus format {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    return case


def iter_corpus(directory: str | Path) -> list[tuple[str, dict]]:
    """(name, case) pairs for every ``*.json`` under *directory*, sorted."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    out = []
    for path in sorted(directory.glob("*.json")):
        case = load_case(path)
        out.append((case.get("name", path.stem), case))
    return out


def check_case(case: dict) -> list[Divergence]:
    """Replay one corpus case through its recorded oracle schedule."""
    program = program_from_dict(case["program"], name=case.get("name", "corpus"))
    return check_program(
        program,
        budget=case["budget"],
        segments=case.get("segments"),
        cut=case.get("cut"),
        breakpoints=case.get("breakpoints"),
        oracles=tuple(case.get("oracles", PROGRAM_ORACLES)),
    )


__all__ = [
    "FORMAT_VERSION",
    "program_to_dict",
    "program_from_dict",
    "case_to_dict",
    "save_case",
    "load_case",
    "iter_corpus",
    "check_case",
]
