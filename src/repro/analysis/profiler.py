"""Dynamic-instruction profiling (phase 1 of the paper's fault injection).

The paper runs each application once under PIN to (a) count total dynamic
instructions -- the population faults are drawn from -- and (b) record how
often each static instruction executes, so a fault can be placed at "the
k-th dynamic instance of instruction s".  :func:`profile_program` produces
both, plus the golden output the outcome classifier compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.isa.program import Program
from repro.machine.cpu import STOP_HALT
from repro.machine.process import Process
from repro.machine.signals import Trap


@dataclass
class Profile:
    """Result of a golden profiling run.

    ``counts[pc]`` is the execution count of static instruction *pc*;
    ``total`` their sum (total retired dynamic instructions);
    ``output`` the golden OUT/FOUT stream; ``exit_code`` the clean exit
    status.  Profiles exist only for programs that halt cleanly.
    """

    program: Program
    counts: list[int]
    total: int
    output: list[tuple[str, int | float]]
    exit_code: int
    _hot_cache: list[tuple[int, int]] | None = field(default=None, repr=False)

    def executed_pcs(self) -> list[int]:
        """Static PCs that executed at least once."""
        return [pc for pc, c in enumerate(self.counts) if c > 0]

    def coverage(self) -> float:
        """Fraction of static instructions that executed."""
        if not self.counts:
            return 0.0
        return sum(1 for c in self.counts if c > 0) / len(self.counts)

    def hottest(self, n: int = 10) -> list[tuple[int, int]]:
        """(pc, count) pairs for the n most-executed instructions."""
        if self._hot_cache is None:
            self._hot_cache = sorted(
                ((pc, c) for pc, c in enumerate(self.counts) if c > 0),
                key=lambda t: -t[1],
            )
        return self._hot_cache[:n]

    def static_site_of(self, dyn_index: int) -> int:
        """Static PC of the *dyn_index*-th (1-based) retired instruction.

        Requires re-running the program; use sparingly (tests, reports).
        """
        if not 1 <= dyn_index <= self.total:
            raise AnalysisError(
                f"dynamic index {dyn_index} outside [1, {self.total}]"
            )
        process = Process.load(self.program)
        process.cpu.run(dyn_index - 1)
        return process.cpu.pc


def profile_program(program: Program, max_steps: int = 500_000_000) -> Profile:
    """Run *program* to completion, recording per-PC execution counts.

    Raises :class:`AnalysisError` if the golden run traps or exceeds
    *max_steps* -- a program that cannot complete cleanly cannot serve as a
    fault-injection target.
    """
    process = Process.load(program)
    counts = [0] * len(program.instrs)
    try:
        stop = process.cpu.run_profiled(counts, max_steps)
    except Trap as trap:
        raise AnalysisError(f"golden run trapped: {trap}") from trap
    if stop != STOP_HALT:
        raise AnalysisError(
            f"golden run did not halt within {max_steps} instructions"
        )
    return Profile(
        program=program,
        counts=counts,
        total=process.cpu.instret,
        output=list(process.cpu.output),
        exit_code=process.cpu.exit_code,
    )


__all__ = ["Profile", "profile_program"]
