"""Static and dynamic binary analysis (the PIN substitute).

Provides exactly what LetGo needs from PIN -- next-PC is trivial in this
ISA (``pc+1``), so the load-bearing pieces are function/frame discovery
(:class:`FunctionTable`, Heuristic II) and dynamic-instruction profiling
(:func:`profile_program`, fault-injection phase 1) -- plus a CFG builder
and objdump-style reports.
"""

from repro.analysis.cfg import (
    BasicBlock,
    build_cfg,
    function_cfg,
    leaders,
    reachable_blocks,
)
from repro.analysis.functions import PROLOGUE_WINDOW, FunctionInfo, FunctionTable
from repro.analysis.objdump import cfg_summary, objdump
from repro.analysis.profiler import Profile, profile_program

__all__ = [
    "BasicBlock",
    "build_cfg",
    "function_cfg",
    "leaders",
    "reachable_blocks",
    "FunctionTable",
    "FunctionInfo",
    "PROLOGUE_WINDOW",
    "objdump",
    "cfg_summary",
    "Profile",
    "profile_program",
]
