"""objdump-style textual reports combining disassembly and analysis."""

from __future__ import annotations

from repro.analysis.cfg import build_cfg, reachable_blocks
from repro.analysis.functions import FunctionTable
from repro.isa.disassembler import dump
from repro.isa.program import Program


def objdump(program: Program) -> str:
    """Full listing: headers, function table with frame sizes, code."""
    table = FunctionTable(program)
    lines = [
        f"image: {program.source_name or '<anonymous>'}",
        f"entry: {program.entry}   instructions: {len(program.instrs)}   "
        f"data cells: {program.data_cells}",
        f"checksum: {program.checksum()[:16]}",
        "",
        "functions:",
    ]
    for info in table.functions:
        frame = f"frame={info.frame_size:5d}B" if info.has_frame else "no frame  "
        lines.append(
            f"  {info.name:24s} [{info.start:6d}, {info.end:6d})  {frame}"
        )
    lines.append("")
    lines.append(dump(program))
    return "\n".join(lines)


def cfg_summary(program: Program) -> str:
    """One-line-per-function CFG statistics."""
    graph = build_cfg(program)
    reachable = reachable_blocks(program)
    table = FunctionTable(program)
    lines = ["cfg summary (blocks / edges / reachable blocks per function):"]
    for info in table.functions:
        nodes = [n for n in graph.nodes if info.start <= n < info.end]
        sub = graph.subgraph(nodes)
        reach = sum(1 for n in nodes if n in reachable)
        lines.append(
            f"  {info.name:24s} blocks={len(nodes):4d} edges={sub.number_of_edges():4d} "
            f"reachable={reach:4d}"
        )
    return "\n".join(lines)


__all__ = ["objdump", "cfg_summary"]
