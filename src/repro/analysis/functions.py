"""Function-table and stack-frame static analysis (the PIN substitute).

LetGo's Heuristic II needs, for the function containing the faulting PC,
the stack-frame size the compiler allocated -- i.e. the ``N`` in the
x86 prologue of the paper's Listing 1::

    push %rbp
    mov  %rsp, %rbp
    sub  $0x290, %rsp

Our compiler emits the same idiom (``push bp; mov bp, sp; subi sp, sp, #N``)
and this module recovers ``N`` by scanning the first instructions of each
function, exactly how the paper describes using PIN's disassembler.  The
analysis needs only the program image -- no source, no debug info.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.isa.instructions import Instr, Op
from repro.isa.program import Program
from repro.isa.registers import BP, SP

#: How many instructions into a function the prologue scan looks.
PROLOGUE_WINDOW = 6


@dataclass(frozen=True)
class FunctionInfo:
    """Static facts about one function."""

    name: str
    start: int          # entry PC
    end: int            # one past the last instruction (next function / image end)
    frame_size: int     # bytes allocated by the prologue SUBI, 0 if none
    has_frame: bool     # True if the full push/mov/subi idiom was found

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end


def _scan_prologue(instrs: list[Instr], start: int, end: int) -> tuple[int, bool]:
    """Return (frame_size, has_full_prologue) for a function body."""
    saw_push_bp = False
    saw_mov_bp_sp = False
    for pc in range(start, min(end, start + PROLOGUE_WINDOW)):
        ins = instrs[pc]
        if ins.op is Op.PUSH and ins.ra == BP:
            saw_push_bp = True
        elif ins.op is Op.MOV and ins.rd == BP and ins.ra == SP:
            saw_mov_bp_sp = True
        elif ins.op is Op.SUBI and ins.rd == SP and ins.ra == SP:
            size = int(ins.imm)
            return (size if size > 0 else 0, saw_push_bp and saw_mov_bp_sp)
    return 0, saw_push_bp and saw_mov_bp_sp


class FunctionTable:
    """Function extents + frame sizes for a program image.

    Built once per image; lookups are O(log n) by PC.
    """

    def __init__(self, program: Program):
        if not program.functions:
            raise AnalysisError("program has no function symbols")
        self.program = program
        ordered = sorted((pc, name) for name, pc in program.functions.items())
        n_instrs = len(program.instrs)
        self._starts = [pc for pc, _ in ordered]
        self._infos: list[FunctionInfo] = []
        for i, (start, name) in enumerate(ordered):
            end = ordered[i + 1][0] if i + 1 < len(ordered) else n_instrs
            frame, full = _scan_prologue(program.instrs, start, end)
            self._infos.append(
                FunctionInfo(
                    name=name,
                    start=start,
                    end=end,
                    frame_size=frame,
                    has_frame=full or frame > 0,
                )
            )

    # -- queries ------------------------------------------------------------

    def function_at(self, pc: int) -> FunctionInfo:
        """The function whose extent contains *pc*.

        Raises :class:`AnalysisError` if *pc* precedes the first function
        or is outside the image.
        """
        if pc < 0 or pc >= len(self.program.instrs):
            raise AnalysisError(f"pc {pc} outside image")
        i = bisect_right(self._starts, pc) - 1
        if i < 0:
            raise AnalysisError(f"pc {pc} precedes the first function")
        return self._infos[i]

    def by_name(self, name: str) -> FunctionInfo:
        """Lookup by symbol name."""
        for info in self._infos:
            if info.name == name:
                return info
        raise AnalysisError(f"unknown function {name!r}")

    def frame_size_at(self, pc: int) -> int:
        """Frame bytes allocated by the function containing *pc*."""
        return self.function_at(pc).frame_size

    @property
    def functions(self) -> tuple[FunctionInfo, ...]:
        """All functions sorted by entry PC."""
        return tuple(self._infos)

    def __len__(self) -> int:
        return len(self._infos)


__all__ = ["FunctionTable", "FunctionInfo", "PROLOGUE_WINDOW"]
