"""Control-flow-graph construction over program images.

Basic blocks are maximal straight-line instruction runs; edges follow
branches, fallthroughs and function fallthrough-into-RET.  CALL/RET are
treated intraprocedurally (a CALL falls through to its return point) --
standard for binary-level CFGs.  The graph is a :class:`networkx.DiGraph`
whose nodes are block leader PCs, so the rest of the ecosystem (dominators,
reachability) is available for free in tests and tooling.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.isa.instructions import Op
from repro.isa.program import Program


@dataclass(frozen=True)
class BasicBlock:
    """A maximal single-entry straight-line region ``[start, end)``."""

    start: int
    end: int

    def __len__(self) -> int:
        return self.end - self.start


_UNCOND = frozenset({Op.JMP, Op.RET, Op.HALT, Op.ABORT})
_COND = frozenset({Op.BEQZ, Op.BNEZ})


def leaders(program: Program) -> list[int]:
    """Block leader PCs: entry points, branch targets, post-branch PCs."""
    n = len(program.instrs)
    marks = set(program.functions.values())
    marks.add(0)
    for pc, ins in enumerate(program.instrs):
        op = ins.op
        if op in _COND or op is Op.JMP or op is Op.CALL:
            target = int(ins.imm)
            if 0 <= target < n:
                marks.add(target)
        if op in _COND or op in _UNCOND or op is Op.CALL:
            if pc + 1 < n:
                marks.add(pc + 1)
    return sorted(m for m in marks if 0 <= m < n)


def build_cfg(program: Program) -> nx.DiGraph:
    """Whole-image CFG.  Node attribute ``block`` holds the BasicBlock."""
    n = len(program.instrs)
    lead = leaders(program)
    graph = nx.DiGraph()
    blocks: list[BasicBlock] = []
    for i, start in enumerate(lead):
        end = lead[i + 1] if i + 1 < len(lead) else n
        block = BasicBlock(start, end)
        blocks.append(block)
        graph.add_node(start, block=block)
    for block in blocks:
        last = program.instrs[block.end - 1]
        op = last.op
        if op is Op.JMP:
            target = int(last.imm)
            if graph.has_node(target):
                graph.add_edge(block.start, target, kind="jump")
        elif op in _COND:
            target = int(last.imm)
            if graph.has_node(target):
                graph.add_edge(block.start, target, kind="taken")
            if block.end < n:
                graph.add_edge(block.start, block.end, kind="fallthrough")
        elif op is Op.CALL:
            # Intraprocedural: the call returns to the next block.
            if block.end < n:
                graph.add_edge(block.start, block.end, kind="call-return")
        elif op in (Op.RET, Op.HALT, Op.ABORT):
            pass  # no static successor
        else:
            if block.end < n:
                graph.add_edge(block.start, block.end, kind="fallthrough")
    return graph


def function_cfg(program: Program, name: str) -> nx.DiGraph:
    """CFG restricted to one function's extent."""
    from repro.analysis.functions import FunctionTable

    info = FunctionTable(program).by_name(name)
    full = build_cfg(program)
    nodes = [n for n in full.nodes if info.start <= n < info.end]
    return full.subgraph(nodes).copy()


def reachable_blocks(program: Program) -> set[int]:
    """Leader PCs reachable from the entry function (incl. via calls)."""
    graph = build_cfg(program)
    # Add interprocedural call edges for reachability purposes only.
    for pc, ins in enumerate(program.instrs):
        if ins.op is Op.CALL:
            src = _leader_of(graph, pc)
            target = int(ins.imm)
            if graph.has_node(target) and src is not None:
                graph.add_edge(src, target, kind="call")
    entry = program.entry_pc
    start = _leader_of(graph, entry)
    if start is None:
        return set()
    return set(nx.descendants(graph, start)) | {start}


def _leader_of(graph: nx.DiGraph, pc: int) -> int | None:
    best = None
    for node in graph.nodes:
        if node <= pc and (best is None or node > best):
            block = graph.nodes[node]["block"]
            if pc < block.end:
                best = node
    return best


__all__ = ["BasicBlock", "leaders", "build_cfg", "function_cfg", "reachable_blocks"]
