"""repro: a full-stack reproduction of LetGo (HPDC 2017).

LetGo continues HPC applications past crash-causing hardware errors
instead of rolling back to a checkpoint: it intercepts the crash signal,
advances the program counter, heuristically repairs register state, and
relies on application-level acceptance checks to vouch for the result.

This package reproduces the complete system on a self-contained substrate:

``repro.isa`` / ``repro.machine``
    a 64-bit register ISA with x86-style stack discipline, protected
    memory, POSIX-style crash signals and a gdb-like debugger;
``repro.analysis``
    static function/frame analysis and dynamic profiling (the PIN role);
``repro.lang``
    the MiniC compiler the benchmark suite is built with;
``repro.core``
    LetGo itself -- monitor, modifier, Heuristics I/II, LetGo-B/E;
``repro.apps``
    six mini-app analogues (LULESH, CLAMR, HPL, CoMD, SNAP, PENNANT)
    with the paper's Table-2 acceptance checks;
``repro.faultinject``
    the single-bit-flip injection methodology and Figure-4 taxonomy;
``repro.crsim``
    the Figure-6 checkpoint/restart state-machine simulation.

Quickstart::

    from repro.apps import make_app
    from repro.core import LETGO_E, run_under_letgo
    from repro.faultinject import run_campaign

    app = make_app("lulesh")
    campaign = run_campaign(app, n=100, seed=0, config=LETGO_E)
    print(campaign.metrics().continuability)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
