"""Lexer for MiniC, the small imperative language the mini-apps are written in.

MiniC exists so the six HPC proxy applications can be *compiled* to the
repro ISA with a realistic x86-style stack discipline -- which is what makes
the paper's fault-injection results and Heuristic II meaningful.  The
surface syntax is a C subset: ``func``/``global``/``var`` declarations,
``int``/``float`` (both 64-bit), global arrays, ``if``/``while``/``for``,
and ``out``/``assert``/``abort`` statements.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import CompileError


class Tok(Enum):
    """Token kinds."""

    IDENT = auto()
    INT = auto()
    FLOAT = auto()
    KW = auto()      # keyword; value holds which
    PUNCT = auto()   # operator or delimiter; value holds the spelling
    EOF = auto()


KEYWORDS = frozenset(
    {
        "func",
        "global",
        "var",
        "int",
        "float",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
        "out",
        "abort",
        "assert",
    }
)

#: Multi-char operators, longest-match-first.
_PUNCT2 = ("&&", "||", "==", "!=", "<=", ">=", "->")
_PUNCT1 = "+-*/%<>=!(){}[];,"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source line (1-based)."""

    kind: Tok
    value: str | int | float
    line: int

    def is_punct(self, spelling: str) -> bool:
        return self.kind is Tok.PUNCT and self.value == spelling

    def is_kw(self, word: str) -> bool:
        return self.kind is Tok.KW and self.value == word

    def __str__(self) -> str:  # pragma: no cover - diagnostics only
        return f"{self.kind.name}({self.value!r})@{self.line}"


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*; raises :class:`CompileError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            i, token = _number(source, i, line)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = Tok.KW if word in KEYWORDS else Tok.IDENT
            tokens.append(Token(kind, word, line))
            i = j
            continue
        matched = False
        for punct in _PUNCT2:
            if source.startswith(punct, i):
                tokens.append(Token(Tok.PUNCT, punct, line))
                i += len(punct)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT1:
            tokens.append(Token(Tok.PUNCT, ch, line))
            i += 1
            continue
        raise CompileError(f"unexpected character {ch!r}", line)
    tokens.append(Token(Tok.EOF, "", line))
    return tokens


def _number(source: str, i: int, line: int) -> tuple[int, Token]:
    n = len(source)
    if source.startswith(("0x", "0X"), i):
        j = i + 2
        while j < n and source[j] in "0123456789abcdefABCDEF":
            j += 1
        if j == i + 2:
            raise CompileError("bad hex literal", line)
        return j, Token(Tok.INT, int(source[i:j], 16), line)
    j = i
    is_float = False
    while j < n and source[j].isdigit():
        j += 1
    if j < n and source[j] == ".":
        is_float = True
        j += 1
        while j < n and source[j].isdigit():
            j += 1
    if j < n and source[j] in "eE":
        k = j + 1
        if k < n and source[k] in "+-":
            k += 1
        if k < n and source[k].isdigit():
            is_float = True
            j = k
            while j < n and source[j].isdigit():
                j += 1
    text = source[i:j]
    if is_float:
        return j, Token(Tok.FLOAT, float(text), line)
    return j, Token(Tok.INT, int(text), line)


__all__ = ["Tok", "Token", "tokenize", "KEYWORDS"]
