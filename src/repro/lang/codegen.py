"""Code generation: typed MiniC AST -> repro ISA assembly.

Calling convention (cdecl-flavoured, chosen to exactly reproduce the x86
frame discipline LetGo's Heuristic II depends on):

* arguments are evaluated and pushed right-to-left (arg0 ends on top);
* ``call`` pushes the return address;
* every function opens with the Listing-1 prologue::

      push bp
      mov  bp, sp
      subi sp, sp, #FRAME

  so inside a function: ``[bp]`` = saved bp, ``[bp+8]`` = return address,
  ``[bp+16+8i]`` = i-th argument, ``[bp-8(j+1)]`` = j-th local;
* return values travel in ``r0`` (int) / ``f0`` (float);
* scratch registers ``r1..r9`` / ``f1..f9`` are caller-saved expression
  stacks; ``r10`` is the address temp, ``r12`` the zero-materialisation
  temp.

Expression evaluation is stack-style over the scratch pools: operand
results occupy consecutive scratch registers and operations fold the top
two.  Expressions deep enough to exhaust a pool are rejected at compile
time (7 int / 9 float live intermediates; the apps use at most ~5).

Register promotion: the hottest non-parameter locals of each function are
allocated to callee-saved registers (``r8``, ``r9``, ``r11``, ``r13`` for
ints; ``f10``..``f13`` for floats) instead of stack slots, weighted by
loop depth -- the equivalent of what ``-O3`` does to loop counters and
accumulators.  Besides speed, this matters for *fidelity of the fault
surface*: corruption of a promoted register persists across loop
iterations exactly like a corrupted x86 register, which is what produces
the paper's double-crash population.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import CompileError
from repro.lang.ast_nodes import (
    Abort,
    Assert,
    Assign,
    BinOp,
    Block,
    Break,
    Call,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDecl,
    If,
    Index,
    IntLit,
    Module,
    Name,
    Out,
    Return,
    Stmt,
    Type,
    UnOp,
    VarDecl,
    While,
)
from repro.lang.semantics import INTRINSICS, LocalInfo, ModuleInfo

#: Deepest simultaneously-live expression intermediates per bank.
INT_SCRATCH_DEPTH = 7
FLOAT_SCRATCH_DEPTH = 9
#: Backwards-compatible alias (the tighter of the two).
SCRATCH_DEPTH = INT_SCRATCH_DEPTH
_ADDR_TEMP = "r10"
_ZERO_TEMP = "r12"
#: Callee-saved registers available for local-variable promotion.
INT_PROMOTE_REGS = ("r8", "r9", "r11", "r13")
FLOAT_PROMOTE_REGS = ("f10", "f11", "f12", "f13")

_INT_CMP = {"==": "seq", "!=": "sne", "<": "slt", "<=": "sle"}
_FLT_CMP = {"==": "feq", "!=": "fne", "<": "flt", "<=": "fle"}
_INT_ARITH = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod"}
_FLT_ARITH = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}


class CodeGenerator:
    """Generates one assembly module from a checked AST."""

    def __init__(self, module: Module, info: ModuleInfo):
        self.module = module
        self.info = info
        self.lines: list[str] = []
        self._label_n = 0

    # -- driver ------------------------------------------------------------

    def generate(self) -> str:
        """Emit the full assembly text (data + _start + all functions)."""
        self._emit_data()
        self.lines.append(".text")
        self.lines.append(".entry _start")
        self.lines.append(".func _start")
        self.lines.append("_start:")
        self.lines.append("    call main")
        self.lines.append("    halt")
        for func in self.module.funcs:
            _FuncEmitter(self, func).emit()
        return "\n".join(self.lines) + "\n"

    def _emit_data(self) -> None:
        if not self.module.globals:
            return
        self.lines.append(".data")
        for decl in self.module.globals:
            if decl.size is not None:
                self.lines.append(f"{decl.name}: .space {decl.size}")
            elif decl.declared is Type.FLOAT:
                value = float(decl.init) if decl.init is not None else 0.0
                self.lines.append(f"{decl.name}: .double {value!r}")
            else:
                value = int(decl.init) if decl.init is not None else 0
                self.lines.append(f"{decl.name}: .word {value}")

    def fresh_label(self, stem: str) -> str:
        self._label_n += 1
        return f".L{stem}{self._label_n}"


def _local_use_weights(func: FuncDecl) -> Counter:
    """Static use counts of each local/param name, weighted 8x per loop level.

    Drives promotion: loop counters and in-loop accumulators dominate.
    """
    weights: Counter = Counter()

    def expr(e: Expr | None, w: int) -> None:
        if e is None:
            return
        if isinstance(e, Name):
            weights[e.name] += w
        elif isinstance(e, Index):
            expr(e.index, w)
        elif isinstance(e, BinOp):
            expr(e.left, w)
            expr(e.right, w)
        elif isinstance(e, UnOp):
            expr(e.operand, w)
        elif isinstance(e, Call):
            for a in e.args:
                expr(a, w)

    def stmt(s: Stmt, w: int) -> None:
        if isinstance(s, Block):
            for child in s.stmts:
                stmt(child, w)
        elif isinstance(s, VarDecl):
            weights[s.name] += w
            expr(s.init, w)
        elif isinstance(s, Assign):
            expr(s.target, w)
            expr(s.value, w)
        elif isinstance(s, If):
            expr(s.cond, w)
            if s.then:
                stmt(s.then, w)
            if s.orelse:
                stmt(s.orelse, w)
        elif isinstance(s, While):
            expr(s.cond, w * 8)
            if s.body:
                stmt(s.body, w * 8)
        elif isinstance(s, For):
            if s.init:
                stmt(s.init, w)
            expr(s.cond, w * 8)
            if s.body:
                stmt(s.body, w * 8)
            if s.step:
                stmt(s.step, w * 8)
        elif isinstance(s, Return):
            expr(s.value, w)
        elif isinstance(s, (ExprStmt, Out)):
            expr(s.expr, w)
        elif isinstance(s, Assert):
            expr(s.cond, w)

    assert func.body is not None
    stmt(func.body, 1)
    return weights


class _FuncEmitter:
    """Per-function state: scratch pools, local offsets, promotion, labels."""

    def __init__(self, gen: CodeGenerator, func: FuncDecl):
        self.gen = gen
        self.func = func
        self.scope: dict[str, LocalInfo] = gen.info.locals_of(func.name)
        self._di = 0  # live int scratch registers
        self._df = 0  # live float scratch registers
        self._loops: list[tuple[str, str]] = []  # (continue_label, break_label)
        self._epilogue = f".Lepi_{func.name}"
        # -- register promotion of the hottest non-param locals -----------
        weights = _local_use_weights(func)
        by_heat = sorted(
            (info for info in self.scope.values() if not info.is_param),
            key=lambda info: -weights[info.name],
        )
        self.promoted: dict[str, str] = {}
        next_int = iter(INT_PROMOTE_REGS)
        next_float = iter(FLOAT_PROMOTE_REGS)
        for info in by_heat:
            pool = next_int if info.ty is Type.INT else next_float
            reg = next(pool, None)
            if reg is not None and weights[info.name] > 1:
                self.promoted[info.name] = reg
        # stack slots only for the locals that stayed in memory
        self._slot_of: dict[str, int] = {}
        for info in self.scope.values():
            if not info.is_param and info.name not in self.promoted:
                self._slot_of[info.name] = len(self._slot_of)
        self.frame = 8 * len(self._slot_of)

    # -- emission helpers ------------------------------------------------------

    def _emit(self, text: str) -> None:
        self.gen.lines.append(f"    {text}")

    def _label(self, name: str) -> None:
        self.gen.lines.append(f"{name}:")

    # -- scratch pools -----------------------------------------------------

    def _alloc_int(self, line: int) -> str:
        if self._di >= INT_SCRATCH_DEPTH:
            raise CompileError("integer expression too deep", line)
        self._di += 1
        return f"r{self._di}"

    def _free_int(self, reg: str) -> None:
        assert reg == f"r{self._di}", f"int pool misuse: freeing {reg} at depth {self._di}"
        self._di -= 1

    def _alloc_float(self, line: int) -> str:
        if self._df >= FLOAT_SCRATCH_DEPTH:
            raise CompileError("float expression too deep", line)
        self._df += 1
        return f"f{self._df}"

    def _free_float(self, reg: str) -> None:
        assert reg == f"f{self._df}", f"float pool misuse: freeing {reg} at depth {self._df}"
        self._df -= 1

    def _free(self, reg: str) -> None:
        (self._free_float if reg.startswith("f") else self._free_int)(reg)

    # -- variable addressing ---------------------------------------------------

    def _local_ref(self, local: LocalInfo) -> str:
        if local.is_param:
            return f"[bp + {16 + 8 * local.slot}]"
        return f"[bp - {8 * (self._slot_of[local.name] + 1)}]"

    # -- function body ---------------------------------------------------------

    def emit(self) -> None:
        self.gen.lines.append(f".func {self.func.name}")
        self._label(self.func.name)
        self._emit("push bp")
        self._emit("mov bp, sp")
        self._emit(f"subi sp, sp, #{self.frame}")
        saved = sorted(self.promoted.values())
        for reg in saved:  # callee-saved promotion registers
            self._emit(f"fpush {reg}" if reg.startswith("f") else f"push {reg}")
        assert self.func.body is not None
        self._block(self.func.body)
        self._label(self._epilogue)
        for reg in reversed(saved):
            self._emit(f"fpop {reg}" if reg.startswith("f") else f"pop {reg}")
        self._emit(f"addi sp, sp, #{self.frame}")
        self._emit("pop bp")
        self._emit("ret")

    def _block(self, block: Block) -> None:
        for stmt in block.stmts:
            self._stmt(stmt)
            assert self._di == 0 and self._df == 0, (
                f"scratch leak after line {stmt.line}: di={self._di} df={self._df}"
            )

    # -- statements ------------------------------------------------------------

    def _stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, VarDecl):
            # MiniC semantics: uninitialised locals are defined to be zero
            # (so promoted and stack-resident locals behave identically).
            home = self.promoted.get(stmt.name)
            if stmt.init is not None:
                reg = self._expr(stmt.init)
                if home is not None:
                    move = "fmov" if stmt.declared is Type.FLOAT else "mov"
                    self._emit(f"{move} {home}, {reg}")
                else:
                    mnemonic = "fst" if stmt.declared is Type.FLOAT else "st"
                    self._emit(
                        f"{mnemonic} {self._local_ref(self.scope[stmt.name])}, {reg}"
                    )
                self._free(reg)
            elif home is not None:
                if stmt.declared is Type.FLOAT:
                    self._emit(f"fmovi {home}, #0.0")
                else:
                    self._emit(f"movi {home}, #0")
            else:
                self._emit(f"movi {_ZERO_TEMP}, #0")
                self._emit(f"st {self._local_ref(self.scope[stmt.name])}, {_ZERO_TEMP}")
            return
        if isinstance(stmt, Assign):
            self._assign(stmt)
            return
        if isinstance(stmt, If):
            self._if(stmt)
            return
        if isinstance(stmt, While):
            self._while(stmt)
            return
        if isinstance(stmt, For):
            self._for(stmt)
            return
        if isinstance(stmt, Return):
            assert stmt.value is not None
            reg = self._expr(stmt.value)
            if stmt.value.ty is Type.FLOAT:
                self._emit(f"fmov f0, {reg}")
            else:
                self._emit(f"mov r0, {reg}")
            self._free(reg)
            self._emit(f"jmp {self._epilogue}")
            return
        if isinstance(stmt, ExprStmt):
            assert stmt.expr is not None
            reg = self._expr(stmt.expr)
            self._free(reg)
            return
        if isinstance(stmt, Out):
            assert stmt.expr is not None
            reg = self._expr(stmt.expr)
            self._emit(f"fout {reg}" if stmt.expr.ty is Type.FLOAT else f"out {reg}")
            self._free(reg)
            return
        if isinstance(stmt, Abort):
            self._emit("abort")
            return
        if isinstance(stmt, Assert):
            assert stmt.cond is not None
            ok = self.gen.fresh_label("ok")
            reg = self._expr(stmt.cond)
            self._emit(f"bnez {reg}, {ok}")
            self._free(reg)
            self._emit("abort")
            self._label(ok)
            return
        if isinstance(stmt, Break):
            self._emit(f"jmp {self._loops[-1][1]}")
            return
        if isinstance(stmt, Continue):
            self._emit(f"jmp {self._loops[-1][0]}")
            return
        raise AssertionError(f"unhandled statement {stmt!r}")

    def _assign(self, stmt: Assign) -> None:
        assert stmt.target is not None and stmt.value is not None
        value = self._expr(stmt.value)
        is_float = stmt.value.ty is Type.FLOAT
        if isinstance(stmt.target, Name):
            home = self.promoted.get(stmt.target.name)
            local = self.scope.get(stmt.target.name)
            if home is not None:
                self._emit(f"{'fmov' if is_float else 'mov'} {home}, {value}")
            elif local is not None:
                mnemonic = "fst" if is_float else "st"
                self._emit(f"{mnemonic} {self._local_ref(local)}, {value}")
            else:
                self._emit(f"movi {_ADDR_TEMP}, @{stmt.target.name}")
                mnemonic = "fst" if is_float else "st"
                self._emit(f"{mnemonic} [{_ADDR_TEMP} + 0], {value}")
            self._free(value)
            return
        assert isinstance(stmt.target, Index) and stmt.target.index is not None
        index = self._expr(stmt.target.index)
        self._emit(f"movi {_ADDR_TEMP}, @{stmt.target.name}")
        mnemonic = "fstx" if is_float else "stx"
        self._emit(f"{mnemonic} [{_ADDR_TEMP} + {index}*8 + 0], {value}")
        self._free(index)
        self._free(value)

    def _if(self, stmt: If) -> None:
        assert stmt.cond is not None and stmt.then is not None
        l_else = self.gen.fresh_label("else")
        l_end = self.gen.fresh_label("fi")
        cond = self._expr(stmt.cond)
        self._emit(f"beqz {cond}, {l_else}")
        self._free(cond)
        self._block(stmt.then)
        if stmt.orelse is not None:
            self._emit(f"jmp {l_end}")
            self._label(l_else)
            self._block(stmt.orelse)
            self._label(l_end)
        else:
            self._label(l_else)

    def _while(self, stmt: While) -> None:
        assert stmt.cond is not None and stmt.body is not None
        l_cond = self.gen.fresh_label("wc")
        l_end = self.gen.fresh_label("we")
        self._label(l_cond)
        cond = self._expr(stmt.cond)
        self._emit(f"beqz {cond}, {l_end}")
        self._free(cond)
        self._loops.append((l_cond, l_end))
        self._block(stmt.body)
        self._loops.pop()
        self._emit(f"jmp {l_cond}")
        self._label(l_end)

    def _for(self, stmt: For) -> None:
        assert stmt.cond is not None and stmt.body is not None
        l_cond = self.gen.fresh_label("fc")
        l_step = self.gen.fresh_label("fs")
        l_end = self.gen.fresh_label("fe")
        if stmt.init is not None:
            self._assign(stmt.init)
        self._label(l_cond)
        cond = self._expr(stmt.cond)
        self._emit(f"beqz {cond}, {l_end}")
        self._free(cond)
        self._loops.append((l_step, l_end))
        self._block(stmt.body)
        self._loops.pop()
        self._label(l_step)
        if stmt.step is not None:
            self._assign(stmt.step)
        self._emit(f"jmp {l_cond}")
        self._label(l_end)

    # -- expressions --------------------------------------------------------

    def _expr(self, expr: Expr) -> str:
        assert expr.ty is not None, f"untyped expression at line {expr.line}"
        if isinstance(expr, IntLit):
            reg = self._alloc_int(expr.line)
            self._emit(f"movi {reg}, #{expr.value}")
            return reg
        if isinstance(expr, FloatLit):
            reg = self._alloc_float(expr.line)
            self._emit(f"fmovi {reg}, #{expr.value!r}")
            return reg
        if isinstance(expr, Name):
            return self._load_name(expr)
        if isinstance(expr, Index):
            return self._load_index(expr)
        if isinstance(expr, UnOp):
            return self._unop(expr)
        if isinstance(expr, BinOp):
            return self._binop(expr)
        if isinstance(expr, Call):
            return self._call(expr)
        raise AssertionError(f"unhandled expression {expr!r}")

    def _load_name(self, expr: Name) -> str:
        home = self.promoted.get(expr.name)
        local = self.scope.get(expr.name)
        if expr.ty is Type.FLOAT:
            reg = self._alloc_float(expr.line)
            if home is not None:
                self._emit(f"fmov {reg}, {home}")
            elif local is not None:
                self._emit(f"fld {reg}, {self._local_ref(local)}")
            else:
                self._emit(f"movi {_ADDR_TEMP}, @{expr.name}")
                self._emit(f"fld {reg}, [{_ADDR_TEMP} + 0]")
            return reg
        reg = self._alloc_int(expr.line)
        if home is not None:
            self._emit(f"mov {reg}, {home}")
        elif local is not None:
            self._emit(f"ld {reg}, {self._local_ref(local)}")
        else:
            self._emit(f"movi {_ADDR_TEMP}, @{expr.name}")
            self._emit(f"ld {reg}, [{_ADDR_TEMP} + 0]")
        return reg

    def _load_index(self, expr: Index) -> str:
        assert expr.index is not None
        index = self._expr(expr.index)
        self._emit(f"movi {_ADDR_TEMP}, @{expr.name}")
        if expr.ty is Type.FLOAT:
            reg = self._alloc_float(expr.line)
            self._emit(f"fldx {reg}, [{_ADDR_TEMP} + {index}*8 + 0]")
            self._free_int(index)
            return reg
        # Integer element: reuse the index register as the destination.
        self._emit(f"ldx {index}, [{_ADDR_TEMP} + {index}*8 + 0]")
        return index

    def _unop(self, expr: UnOp) -> str:
        assert expr.operand is not None
        reg = self._expr(expr.operand)
        if expr.op == "-":
            self._emit(f"fneg {reg}, {reg}" if expr.ty is Type.FLOAT else f"neg {reg}, {reg}")
            return reg
        # logical not: reg = (reg == 0)
        self._emit(f"movi {_ZERO_TEMP}, #0")
        self._emit(f"seq {reg}, {reg}, {_ZERO_TEMP}")
        return reg

    def _binop(self, expr: BinOp) -> str:
        assert expr.left is not None and expr.right is not None
        op = expr.op
        if op in ("&&", "||"):
            return self._short_circuit(expr)
        operand_ty = expr.left.ty
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        if op in ("<", "<=", ">", ">=", "==", "!="):
            return self._compare(expr, left, right, operand_ty)
        if operand_ty is Type.FLOAT:
            self._emit(f"{_FLT_ARITH[op]} {left}, {left}, {right}")
        else:
            self._emit(f"{_INT_ARITH[op]} {left}, {left}, {right}")
        self._free(right)
        return left

    def _compare(self, expr: BinOp, left: str, right: str, operand_ty: Type) -> str:
        op = expr.op
        # > and >= are < and <= with swapped operands.
        swapped = op in (">", ">=")
        base_op = {"<": "<", "<=": "<=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}[op]
        a, b = (right, left) if swapped else (left, right)
        if operand_ty is Type.FLOAT:
            result = self._alloc_int(expr.line)
            self._emit(f"{_FLT_CMP[base_op]} {result}, {a}, {b}")
            # result was allocated after both float operands; free floats
            # (stack order: right on top).
            self._free_float(right)
            self._free_float(left)
            # re-slot the int result: it is the only int alloc from this
            # subtree, already at the top of the int pool.
            return result
        self._emit(f"{_INT_CMP[base_op]} {left}, {a}, {b}")
        self._free_int(right)
        return left

    def _short_circuit(self, expr: BinOp) -> str:
        assert expr.left is not None and expr.right is not None
        l_shortcut = self.gen.fresh_label("sc")
        l_end = self.gen.fresh_label("se")
        branch = "beqz" if expr.op == "&&" else "bnez"
        left = self._expr(expr.left)
        self._emit(f"{branch} {left}, {l_shortcut}")
        self._free_int(left)
        right = self._expr(expr.right)
        self._emit(f"{branch} {right}, {l_shortcut}")
        self._free_int(right)
        result = self._alloc_int(expr.line)
        taken, shortcut = ("#1", "#0") if expr.op == "&&" else ("#0", "#1")
        self._emit(f"movi {result}, {taken}")
        self._emit(f"jmp {l_end}")
        self._label(l_shortcut)
        self._emit(f"movi {result}, {shortcut}")
        self._label(l_end)
        return result

    # -- calls ------------------------------------------------------------

    def _call(self, expr: Call) -> str:
        if expr.name in INTRINSICS:
            return self._intrinsic(expr)
        saved_i, saved_f = self._di, self._df
        for k in range(1, saved_i + 1):
            self._emit(f"push r{k}")
        for k in range(1, saved_f + 1):
            self._emit(f"fpush f{k}")
        self._di = self._df = 0
        for arg in reversed(expr.args):
            reg = self._expr(arg)
            self._emit(f"fpush {reg}" if arg.ty is Type.FLOAT else f"push {reg}")
            self._free(reg)
        self._emit(f"call {expr.name}")
        if expr.args:
            self._emit(f"addi sp, sp, #{8 * len(expr.args)}")
        for k in range(saved_f, 0, -1):
            self._emit(f"fpop f{k}")
        for k in range(saved_i, 0, -1):
            self._emit(f"pop r{k}")
        self._di, self._df = saved_i, saved_f
        if expr.ty is Type.FLOAT:
            reg = self._alloc_float(expr.line)
            self._emit(f"fmov {reg}, f0")
        else:
            reg = self._alloc_int(expr.line)
            self._emit(f"mov {reg}, r0")
        return reg

    def _intrinsic(self, expr: Call) -> str:
        name = expr.name
        if name in ("sqrt", "fabs"):
            reg = self._expr(expr.args[0])
            self._emit(f"{'fsqrt' if name == 'sqrt' else 'fabs'} {reg}, {reg}")
            return reg
        if name in ("fmin", "fmax"):
            left = self._expr(expr.args[0])
            right = self._expr(expr.args[1])
            self._emit(f"{name} {left}, {left}, {right}")
            self._free_float(right)
            return left
        if name == "float":
            operand = self._expr(expr.args[0])
            reg = self._alloc_float(expr.line)
            self._emit(f"itof {reg}, {operand}")
            self._free_int(operand)
            return reg
        if name == "int":
            operand = self._expr(expr.args[0])
            reg = self._alloc_int(expr.line)
            self._emit(f"ftoi {reg}, {operand}")
            self._free_float(operand)
            return reg
        if name in ("myrank", "nranks"):
            reg = self._alloc_int(expr.line)
            self._emit(f"{'rank' if name == 'myrank' else 'nranks'} {reg}")
            return reg
        if name == "sendi":
            rank = self._expr(expr.args[0])
            value = self._expr(expr.args[1])
            self._emit(f"send {rank}, {value}")
            self._free_int(value)
            # reuse the rank register as the dummy 0 result
            self._emit(f"movi {rank}, #0")
            return rank
        if name == "sendf":
            rank = self._expr(expr.args[0])
            value = self._expr(expr.args[1])
            self._emit(f"fsend {rank}, {value}")
            self._free_float(value)
            self._emit(f"movi {rank}, #0")
            return rank
        if name == "recvi":
            rank = self._expr(expr.args[0])
            self._emit(f"recv {rank}, {rank}")
            return rank
        if name == "recvf":
            rank = self._expr(expr.args[0])
            reg = self._alloc_float(expr.line)
            self._emit(f"frecv {reg}, {rank}")
            self._free_int(rank)
            return reg
        raise AssertionError(f"unknown intrinsic {name!r}")


def generate(module: Module, info: ModuleInfo) -> str:
    """Generate assembly text for a checked module."""
    return CodeGenerator(module, info).generate()


__all__ = [
    "CodeGenerator",
    "generate",
    "SCRATCH_DEPTH",
    "INT_SCRATCH_DEPTH",
    "FLOAT_SCRATCH_DEPTH",
    "INT_PROMOTE_REGS",
    "FLOAT_PROMOTE_REGS",
]
