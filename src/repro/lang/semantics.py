"""Semantic analysis for MiniC: symbols, types, and shape checks.

The pass annotates every expression node with its :class:`Type` (the code
generator requires it) and rejects: undeclared names, type mismatches (no
implicit conversions -- use ``float(x)`` / ``int(x)``), indexing scalars,
using arrays without an index, wrong-arity calls, ``break``/``continue``
outside loops, duplicate declarations, and functions that may fall off the
end without returning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError
from repro.lang.ast_nodes import (
    Abort,
    Assert,
    Assign,
    BinOp,
    Block,
    Break,
    Call,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDecl,
    If,
    Index,
    IntLit,
    Module,
    Name,
    Out,
    Return,
    Stmt,
    Type,
    UnOp,
    VarDecl,
    While,
)

#: Intrinsics: name -> (param types, return type).  ``float``/``int`` are
#: conversions; the rest map 1:1 to FP instructions.
INTRINSICS: dict[str, tuple[tuple[Type, ...], Type]] = {
    "sqrt": ((Type.FLOAT,), Type.FLOAT),
    "fabs": ((Type.FLOAT,), Type.FLOAT),
    "fmin": ((Type.FLOAT, Type.FLOAT), Type.FLOAT),
    "fmax": ((Type.FLOAT, Type.FLOAT), Type.FLOAT),
    "float": ((Type.INT,), Type.FLOAT),
    "int": ((Type.FLOAT,), Type.INT),
    # SPMD communication (usable only inside a cluster; see machine.cluster)
    "myrank": ((), Type.INT),
    "nranks": ((), Type.INT),
    "sendi": ((Type.INT, Type.INT), Type.INT),    # sendi(rank, v) -> 0
    "recvi": ((Type.INT,), Type.INT),             # recvi(rank) -> v
    "sendf": ((Type.INT, Type.FLOAT), Type.INT),  # sendf(rank, x) -> 0
    "recvf": ((Type.INT,), Type.FLOAT),           # recvf(rank) -> x
}


@dataclass(frozen=True)
class GlobalInfo:
    """Resolved global symbol."""

    name: str
    ty: Type
    is_array: bool
    cells: int


@dataclass(frozen=True)
class FuncInfo:
    """Resolved function signature."""

    name: str
    param_types: tuple[Type, ...]
    ret: Type


@dataclass(frozen=True)
class LocalInfo:
    """A local variable or parameter inside a function scope."""

    name: str
    ty: Type
    is_param: bool
    slot: int  # param index or local index, assigned in declaration order


class ModuleInfo:
    """Symbol tables produced by :func:`analyze` (consumed by codegen)."""

    def __init__(self) -> None:
        self.globals: dict[str, GlobalInfo] = {}
        self.funcs: dict[str, FuncInfo] = {}
        #: function name -> ordered locals (params first), name -> LocalInfo
        self.scopes: dict[str, dict[str, LocalInfo]] = {}

    def locals_of(self, func: str) -> dict[str, LocalInfo]:
        return self.scopes[func]

    def n_locals(self, func: str) -> int:
        """Number of non-param locals in *func* (frame slots)."""
        return sum(1 for v in self.scopes[func].values() if not v.is_param)


class _FuncChecker:
    def __init__(self, module_info: ModuleInfo, func: FuncDecl):
        self.info = module_info
        self.func = func
        self.scope: dict[str, LocalInfo] = {}
        self._n_params = 0
        self._n_locals = 0
        self._loop_depth = 0

    def check(self) -> None:
        for param in self.func.params:
            if param.name in self.scope:
                raise CompileError(
                    f"duplicate parameter {param.name!r}", self.func.line
                )
            self.scope[param.name] = LocalInfo(
                name=param.name, ty=param.declared, is_param=True, slot=self._n_params
            )
            self._n_params += 1
        assert self.func.body is not None
        returns = self._block(self.func.body)
        if not returns:
            raise CompileError(
                f"function {self.func.name!r} may fall off the end without return",
                self.func.line,
            )
        self.info.scopes[self.func.name] = dict(self.scope)

    # -- statements: return True if the statement definitely returns -------

    def _block(self, block: Block) -> bool:
        returns = False
        for stmt in block.stmts:
            if returns:
                raise CompileError("unreachable statement after return", stmt.line)
            returns = self._stmt(stmt)
        return returns

    def _stmt(self, stmt: Stmt) -> bool:
        if isinstance(stmt, VarDecl):
            if stmt.name in self.scope:
                raise CompileError(f"duplicate local {stmt.name!r}", stmt.line)
            if stmt.name in self.info.globals:
                # Shadowing globals is allowed but flagged strictly: forbid.
                raise CompileError(
                    f"local {stmt.name!r} shadows a global", stmt.line
                )
            if stmt.init is not None:
                ty = self._expr(stmt.init)
                if ty is not stmt.declared:
                    raise CompileError(
                        f"initializer of {stmt.name!r} is {ty}, declared {stmt.declared}",
                        stmt.line,
                    )
            self.scope[stmt.name] = LocalInfo(
                name=stmt.name, ty=stmt.declared, is_param=False, slot=self._n_locals
            )
            self._n_locals += 1
            return False
        if isinstance(stmt, Assign):
            assert stmt.target is not None and stmt.value is not None
            target_ty = self._lvalue(stmt.target)
            value_ty = self._expr(stmt.value)
            if target_ty is not value_ty:
                raise CompileError(
                    f"cannot assign {value_ty} to {target_ty} lvalue", stmt.line
                )
            return False
        if isinstance(stmt, If):
            assert stmt.cond is not None and stmt.then is not None
            self._cond(stmt.cond)
            then_returns = self._block(stmt.then)
            else_returns = self._block(stmt.orelse) if stmt.orelse else False
            return then_returns and else_returns
        if isinstance(stmt, While):
            assert stmt.cond is not None and stmt.body is not None
            self._cond(stmt.cond)
            self._loop_depth += 1
            self._block(stmt.body)
            self._loop_depth -= 1
            return False
        if isinstance(stmt, For):
            assert stmt.cond is not None and stmt.body is not None
            if stmt.init is not None:
                self._stmt(stmt.init)
            self._cond(stmt.cond)
            self._loop_depth += 1
            self._block(stmt.body)
            if stmt.step is not None:
                self._stmt(stmt.step)
            self._loop_depth -= 1
            return False
        if isinstance(stmt, Return):
            if stmt.value is None:
                raise CompileError(
                    "return must carry a value (all functions are typed)", stmt.line
                )
            ty = self._expr(stmt.value)
            if ty is not self.func.ret:
                raise CompileError(
                    f"return type {ty} does not match declared {self.func.ret}",
                    stmt.line,
                )
            return True
        if isinstance(stmt, ExprStmt):
            assert stmt.expr is not None
            if not isinstance(stmt.expr, Call):
                raise CompileError(
                    "expression statements must be calls", stmt.line
                )
            self._expr(stmt.expr)
            return False
        if isinstance(stmt, Out):
            assert stmt.expr is not None
            self._expr(stmt.expr)
            return False
        if isinstance(stmt, Abort):
            return False
        if isinstance(stmt, Assert):
            assert stmt.cond is not None
            self._cond(stmt.cond)
            return False
        if isinstance(stmt, (Break, Continue)):
            if self._loop_depth == 0:
                kind = "break" if isinstance(stmt, Break) else "continue"
                raise CompileError(f"{kind} outside a loop", stmt.line)
            return False
        raise AssertionError(f"unhandled statement {stmt!r}")

    def _cond(self, expr: Expr) -> None:
        ty = self._expr(expr)
        if ty is not Type.INT:
            raise CompileError("condition must be int (use a comparison)", expr.line)

    # -- expressions --------------------------------------------------------

    def _lvalue(self, expr: Expr) -> Type:
        if isinstance(expr, Name):
            local = self.scope.get(expr.name)
            if local is not None:
                expr.ty = local.ty
                return local.ty
            glob = self.info.globals.get(expr.name)
            if glob is not None:
                if glob.is_array:
                    raise CompileError(
                        f"array {expr.name!r} needs an index", expr.line
                    )
                expr.ty = glob.ty
                return glob.ty
            raise CompileError(f"undeclared variable {expr.name!r}", expr.line)
        if isinstance(expr, Index):
            return self._index(expr)
        raise CompileError("invalid assignment target", expr.line)

    def _index(self, expr: Index) -> Type:
        glob = self.info.globals.get(expr.name)
        if glob is None:
            raise CompileError(f"undeclared array {expr.name!r}", expr.line)
        if not glob.is_array:
            raise CompileError(f"{expr.name!r} is a scalar, not an array", expr.line)
        assert expr.index is not None
        index_ty = self._expr(expr.index)
        if index_ty is not Type.INT:
            raise CompileError("array index must be int", expr.line)
        expr.ty = glob.ty
        return glob.ty

    def _expr(self, expr: Expr) -> Type:
        if isinstance(expr, IntLit):
            expr.ty = Type.INT
            return Type.INT
        if isinstance(expr, FloatLit):
            expr.ty = Type.FLOAT
            return Type.FLOAT
        if isinstance(expr, Name):
            return self._lvalue(expr)
        if isinstance(expr, Index):
            return self._index(expr)
        if isinstance(expr, UnOp):
            assert expr.operand is not None
            ty = self._expr(expr.operand)
            if expr.op == "!":
                if ty is not Type.INT:
                    raise CompileError("'!' needs an int operand", expr.line)
                expr.ty = Type.INT
                return Type.INT
            expr.ty = ty
            return ty
        if isinstance(expr, BinOp):
            return self._binop(expr)
        if isinstance(expr, Call):
            return self._call(expr)
        raise AssertionError(f"unhandled expression {expr!r}")

    def _binop(self, expr: BinOp) -> Type:
        assert expr.left is not None and expr.right is not None
        lt = self._expr(expr.left)
        rt = self._expr(expr.right)
        op = expr.op
        if op in ("&&", "||"):
            if lt is not Type.INT or rt is not Type.INT:
                raise CompileError(f"{op!r} needs int operands", expr.line)
            expr.ty = Type.INT
            return Type.INT
        if lt is not rt:
            raise CompileError(
                f"operands of {op!r} have mixed types {lt}/{rt} "
                "(use float()/int())",
                expr.line,
            )
        if op in ("<", "<=", ">", ">=", "==", "!="):
            expr.ty = Type.INT
            return Type.INT
        if op == "%":
            if lt is not Type.INT:
                raise CompileError("'%' is integer-only", expr.line)
            expr.ty = Type.INT
            return Type.INT
        if op in ("+", "-", "*", "/"):
            expr.ty = lt
            return lt
        raise AssertionError(f"unknown operator {op!r}")

    def _call(self, expr: Call) -> Type:
        intrinsic = INTRINSICS.get(expr.name)
        if intrinsic is not None:
            param_types, ret = intrinsic
            if len(expr.args) != len(param_types):
                raise CompileError(
                    f"{expr.name}() takes {len(param_types)} argument(s)", expr.line
                )
            for arg, want in zip(expr.args, param_types):
                got = self._expr(arg)
                if got is not want:
                    raise CompileError(
                        f"{expr.name}() argument is {got}, expected {want}",
                        expr.line,
                    )
            expr.ty = ret
            return ret
        func = self.info.funcs.get(expr.name)
        if func is None:
            raise CompileError(f"call to undefined function {expr.name!r}", expr.line)
        if len(expr.args) != len(func.param_types):
            raise CompileError(
                f"{expr.name}() takes {len(func.param_types)} argument(s), "
                f"got {len(expr.args)}",
                expr.line,
            )
        for arg, want in zip(expr.args, func.param_types):
            got = self._expr(arg)
            if got is not want:
                raise CompileError(
                    f"{expr.name}() argument is {got}, expected {want}", expr.line
                )
        expr.ty = func.ret
        return func.ret


def analyze(module: Module) -> ModuleInfo:
    """Check *module* and return its symbol tables.

    Mutates the AST in place by filling expression ``ty`` slots.
    """
    info = ModuleInfo()
    for decl in module.globals:
        if decl.name in info.globals:
            raise CompileError(f"duplicate global {decl.name!r}", decl.line)
        if decl.name in INTRINSICS:
            raise CompileError(
                f"{decl.name!r} is a reserved intrinsic name", decl.line
            )
        info.globals[decl.name] = GlobalInfo(
            name=decl.name,
            ty=decl.declared,
            is_array=decl.size is not None,
            cells=decl.size if decl.size is not None else 1,
        )
    for func in module.funcs:
        if func.name in info.funcs:
            raise CompileError(f"duplicate function {func.name!r}", func.line)
        if func.name in INTRINSICS:
            raise CompileError(
                f"{func.name!r} is a reserved intrinsic name", func.line
            )
        if func.name in info.globals:
            raise CompileError(
                f"function {func.name!r} collides with a global", func.line
            )
        info.funcs[func.name] = FuncInfo(
            name=func.name,
            param_types=tuple(p.declared for p in func.params),
            ret=func.ret,
        )
    if "main" not in info.funcs:
        raise CompileError("module must define main()", 1)
    if info.funcs["main"].param_types:
        raise CompileError("main() takes no parameters", 1)
    if info.funcs["main"].ret is not Type.INT:
        raise CompileError("main() must return int", 1)
    for func in module.funcs:
        _FuncChecker(info, func).check()
    return info


__all__ = [
    "analyze",
    "ModuleInfo",
    "GlobalInfo",
    "FuncInfo",
    "LocalInfo",
    "INTRINSICS",
]
