"""Compiler driver: MiniC source -> assembled :class:`Program`.

The pipeline is lexer -> parser -> semantic analysis -> codegen ->
assembler, with every intermediate exposed on :class:`CompiledUnit` for
debugging and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.lang.ast_nodes import Module
from repro.lang.codegen import generate
from repro.lang.parser import parse
from repro.lang.semantics import ModuleInfo, analyze


@dataclass
class CompiledUnit:
    """Everything the compiler produced for one translation unit."""

    program: Program
    asm_text: str
    module: Module
    info: ModuleInfo


def compile_unit(source: str, name: str = "") -> CompiledUnit:
    """Compile MiniC *source*, keeping all intermediates."""
    module = parse(source)
    info = analyze(module)
    asm_text = generate(module, info)
    program = assemble(asm_text, source_name=name)
    return CompiledUnit(program=program, asm_text=asm_text, module=module, info=info)


def compile_source(source: str, name: str = "") -> Program:
    """Compile MiniC *source* to a loadable :class:`Program`."""
    return compile_unit(source, name).program


__all__ = ["CompiledUnit", "compile_unit", "compile_source"]
