"""MiniC: the small compiled language the HPC mini-apps are written in.

The compiler's reason to exist is fidelity: it emits the exact x86-style
function prologue (``push bp; mov bp, sp; subi sp, sp, #N``) that LetGo's
Heuristic II recovers frame sizes from, and routes all locals/arguments
through ``bp``/``sp`` so stack-pointer corruption behaves like it does in
the paper.
"""

from repro.lang.ast_nodes import Module, Type
from repro.lang.compiler import CompiledUnit, compile_source, compile_unit
from repro.lang.lexer import Tok, Token, tokenize
from repro.lang.parser import parse
from repro.lang.semantics import INTRINSICS, ModuleInfo, analyze

__all__ = [
    "Module",
    "Type",
    "CompiledUnit",
    "compile_source",
    "compile_unit",
    "tokenize",
    "Token",
    "Tok",
    "parse",
    "analyze",
    "ModuleInfo",
    "INTRINSICS",
]
