"""Abstract syntax for MiniC.

All expression nodes carry a mutable ``ty`` slot the semantic pass fills
in; the code generator relies on it and refuses untyped trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Type(Enum):
    """MiniC value types: both are 64-bit (one machine cell)."""

    INT = "int"
    FLOAT = "float"

    def __str__(self) -> str:
        return self.value


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    """Base expression; ``ty`` is assigned by semantic analysis."""

    line: int
    ty: Type | None = field(default=None, init=False, compare=False)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class Name(Expr):
    """A scalar variable reference (local, param, or global scalar)."""

    name: str = ""


@dataclass
class Index(Expr):
    """Global-array element reference ``name[index]``."""

    name: str = ""
    index: Expr | None = None


@dataclass
class BinOp(Expr):
    """Binary operation.  ``op`` is the source spelling (``+``, ``&&``...)."""

    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class UnOp(Expr):
    """Unary ``-`` or ``!``."""

    op: str = ""
    operand: Expr | None = None


@dataclass
class Call(Expr):
    """User-function or intrinsic call."""

    name: str = ""
    args: list[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------
# statements
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    name: str = ""
    declared: Type = Type.INT
    init: Expr | None = None


@dataclass
class Assign(Stmt):
    """``target = value`` where target is a Name or Index."""

    target: Expr | None = None
    value: Expr | None = None


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Block | None = None
    orelse: Block | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Block | None = None


@dataclass
class For(Stmt):
    """C-style for; init/step are Assign statements (or None)."""

    init: Assign | None = None
    cond: Expr | None = None
    step: Assign | None = None
    body: Block | None = None


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class Out(Stmt):
    """Emit a value to the process output stream (OUT/FOUT)."""

    expr: Expr | None = None


@dataclass
class Abort(Stmt):
    """Unconditional SIGABRT (models a failed application check)."""


@dataclass
class Assert(Stmt):
    """``assert(cond);`` -- SIGABRT if cond is zero."""

    cond: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------
# declarations
# --------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    declared: Type


@dataclass
class GlobalDecl:
    """``global int n = 4;`` or ``global float grid[128];``"""

    line: int
    name: str = ""
    declared: Type = Type.INT
    size: int | None = None          # None -> scalar, else array cells
    init: int | float | None = None  # scalars only


@dataclass
class FuncDecl:
    line: int
    name: str = ""
    params: list[Param] = field(default_factory=list)
    ret: Type = Type.INT
    body: Block | None = None


@dataclass
class Module:
    """A parsed MiniC translation unit."""

    globals: list[GlobalDecl] = field(default_factory=list)
    funcs: list[FuncDecl] = field(default_factory=list)


__all__ = [
    "Type",
    "Expr",
    "IntLit",
    "FloatLit",
    "Name",
    "Index",
    "BinOp",
    "UnOp",
    "Call",
    "Stmt",
    "Block",
    "VarDecl",
    "Assign",
    "If",
    "While",
    "For",
    "Return",
    "ExprStmt",
    "Out",
    "Abort",
    "Assert",
    "Break",
    "Continue",
    "Param",
    "GlobalDecl",
    "FuncDecl",
    "Module",
]
