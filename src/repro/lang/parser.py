"""Recursive-descent parser for MiniC.

Grammar (EBNF-ish)::

    module      := (global | func)*
    global      := "global" type IDENT ("[" INT "]")? ("=" literal)? ";"
    func        := "func" IDENT "(" params? ")" "->" type block
    params      := type IDENT ("," type IDENT)*
    block       := "{" stmt* "}"
    stmt        := vardecl | assign ";" | if | while | for | return ";"
                 | "out" "(" expr ")" ";" | "abort" "(" ")" ";"
                 | "assert" "(" expr ")" ";" | "break" ";" | "continue" ";"
                 | expr ";"
    vardecl     := "var" type IDENT ("=" expr)? ";"
    assign      := lvalue "=" expr
    if          := "if" "(" expr ")" block ("else" (block | if))?
    while       := "while" "(" expr ")" block
    for         := "for" "(" assign? ";" expr ";" assign? ")" block
    expr        := or
    or          := and ("||" and)*
    and         := cmp ("&&" cmp)*
    cmp         := addsub (("<"|"<="|">"|">="|"=="|"!=") addsub)?
    addsub      := muldiv (("+"|"-") muldiv)*
    muldiv      := unary (("*"|"/"|"%") unary)*
    unary       := ("-"|"!") unary | postfix
    postfix     := IDENT "(" args ")" | IDENT "[" expr "]" | IDENT
                 | literal | "(" expr ")"
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.lang.ast_nodes import (
    Abort,
    Assert,
    Assign,
    BinOp,
    Block,
    Break,
    Call,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDecl,
    GlobalDecl,
    If,
    Index,
    IntLit,
    Module,
    Name,
    Out,
    Param,
    Return,
    Stmt,
    Type,
    UnOp,
    VarDecl,
    While,
)
from repro.lang.lexer import Tok, Token, tokenize

_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")


class Parser:
    """One-token-lookahead recursive descent."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind is not Tok.EOF:
            self._pos += 1
        return token

    def _expect_punct(self, spelling: str) -> Token:
        if not self._cur.is_punct(spelling):
            raise CompileError(
                f"expected {spelling!r}, got {self._cur.value!r}", self._cur.line
            )
        return self._advance()

    def _expect_kw(self, word: str) -> Token:
        if not self._cur.is_kw(word):
            raise CompileError(
                f"expected {word!r}, got {self._cur.value!r}", self._cur.line
            )
        return self._advance()

    def _expect_ident(self) -> Token:
        if self._cur.kind is not Tok.IDENT:
            raise CompileError(
                f"expected identifier, got {self._cur.value!r}", self._cur.line
            )
        return self._advance()

    def _type(self) -> Type:
        if self._cur.is_kw("int"):
            self._advance()
            return Type.INT
        if self._cur.is_kw("float"):
            self._advance()
            return Type.FLOAT
        raise CompileError(
            f"expected a type, got {self._cur.value!r}", self._cur.line
        )

    # -- top level -----------------------------------------------------------

    def parse_module(self) -> Module:
        module = Module()
        while self._cur.kind is not Tok.EOF:
            if self._cur.is_kw("global"):
                module.globals.append(self._global())
            elif self._cur.is_kw("func"):
                module.funcs.append(self._func())
            else:
                raise CompileError(
                    f"expected 'global' or 'func', got {self._cur.value!r}",
                    self._cur.line,
                )
        return module

    def _global(self) -> GlobalDecl:
        line = self._expect_kw("global").line
        declared = self._type()
        name = self._expect_ident().value
        size: int | None = None
        init: int | float | None = None
        if self._cur.is_punct("["):
            self._advance()
            size_tok = self._advance()
            if size_tok.kind is not Tok.INT or size_tok.value <= 0:
                raise CompileError("array size must be a positive int literal", line)
            size = int(size_tok.value)
            self._expect_punct("]")
        if self._cur.is_punct("="):
            if size is not None:
                raise CompileError("array globals cannot have initializers", line)
            self._advance()
            negate = False
            if self._cur.is_punct("-"):
                negate = True
                self._advance()
            lit = self._advance()
            if lit.kind is Tok.INT and declared is Type.INT:
                init = -lit.value if negate else lit.value
            elif lit.kind in (Tok.FLOAT, Tok.INT) and declared is Type.FLOAT:
                init = -float(lit.value) if negate else float(lit.value)
            else:
                raise CompileError(
                    f"initializer type does not match 'global {declared}'", line
                )
        self._expect_punct(";")
        return GlobalDecl(line=line, name=str(name), declared=declared, size=size, init=init)

    def _func(self) -> FuncDecl:
        line = self._expect_kw("func").line
        name = self._expect_ident().value
        self._expect_punct("(")
        params: list[Param] = []
        if not self._cur.is_punct(")"):
            while True:
                declared = self._type()
                pname = self._expect_ident().value
                params.append(Param(name=str(pname), declared=declared))
                if self._cur.is_punct(","):
                    self._advance()
                    continue
                break
        self._expect_punct(")")
        self._expect_punct("->")
        ret = self._type()
        body = self._block()
        return FuncDecl(line=line, name=str(name), params=params, ret=ret, body=body)

    # -- statements ------------------------------------------------------------

    def _block(self) -> Block:
        open_tok = self._expect_punct("{")
        stmts: list[Stmt] = []
        while not self._cur.is_punct("}"):
            if self._cur.kind is Tok.EOF:
                raise CompileError("unterminated block", open_tok.line)
            stmts.append(self._stmt())
        self._advance()
        return Block(line=open_tok.line, stmts=stmts)

    def _stmt(self) -> Stmt:
        token = self._cur
        if token.is_kw("var"):
            return self._vardecl()
        if token.is_kw("if"):
            return self._if()
        if token.is_kw("while"):
            return self._while()
        if token.is_kw("for"):
            return self._for()
        if token.is_kw("return"):
            self._advance()
            value = None if self._cur.is_punct(";") else self._expr()
            self._expect_punct(";")
            return Return(line=token.line, value=value)
        if token.is_kw("out"):
            self._advance()
            self._expect_punct("(")
            expr = self._expr()
            self._expect_punct(")")
            self._expect_punct(";")
            return Out(line=token.line, expr=expr)
        if token.is_kw("abort"):
            self._advance()
            self._expect_punct("(")
            self._expect_punct(")")
            self._expect_punct(";")
            return Abort(line=token.line)
        if token.is_kw("assert"):
            self._advance()
            self._expect_punct("(")
            cond = self._expr()
            self._expect_punct(")")
            self._expect_punct(";")
            return Assert(line=token.line, cond=cond)
        if token.is_kw("break"):
            self._advance()
            self._expect_punct(";")
            return Break(line=token.line)
        if token.is_kw("continue"):
            self._advance()
            self._expect_punct(";")
            return Continue(line=token.line)
        # assignment or expression statement
        stmt = self._assign_or_expr()
        self._expect_punct(";")
        return stmt

    def _assign_or_expr(self) -> Stmt:
        line = self._cur.line
        expr = self._expr()
        if self._cur.is_punct("="):
            if not isinstance(expr, (Name, Index)):
                raise CompileError("assignment target must be a variable or element", line)
            self._advance()
            value = self._expr()
            return Assign(line=line, target=expr, value=value)
        return ExprStmt(line=line, expr=expr)

    def _vardecl(self) -> VarDecl:
        line = self._expect_kw("var").line
        declared = self._type()
        name = self._expect_ident().value
        init = None
        if self._cur.is_punct("="):
            self._advance()
            init = self._expr()
        self._expect_punct(";")
        return VarDecl(line=line, name=str(name), declared=declared, init=init)

    def _if(self) -> If:
        line = self._expect_kw("if").line
        self._expect_punct("(")
        cond = self._expr()
        self._expect_punct(")")
        then = self._block()
        orelse: Block | None = None
        if self._cur.is_kw("else"):
            self._advance()
            if self._cur.is_kw("if"):
                nested = self._if()
                orelse = Block(line=nested.line, stmts=[nested])
            else:
                orelse = self._block()
        return If(line=line, cond=cond, then=then, orelse=orelse)

    def _while(self) -> While:
        line = self._expect_kw("while").line
        self._expect_punct("(")
        cond = self._expr()
        self._expect_punct(")")
        body = self._block()
        return While(line=line, cond=cond, body=body)

    def _for(self) -> For:
        line = self._expect_kw("for").line
        self._expect_punct("(")
        init: Assign | None = None
        if not self._cur.is_punct(";"):
            stmt = self._assign_or_expr()
            if not isinstance(stmt, Assign):
                raise CompileError("for-init must be an assignment", line)
            init = stmt
        self._expect_punct(";")
        cond = self._expr()
        self._expect_punct(";")
        step: Assign | None = None
        if not self._cur.is_punct(")"):
            stmt = self._assign_or_expr()
            if not isinstance(stmt, Assign):
                raise CompileError("for-step must be an assignment", line)
            step = stmt
        self._expect_punct(")")
        body = self._block()
        return For(line=line, init=init, cond=cond, step=step, body=body)

    # -- expressions -----------------------------------------------------------

    def _expr(self) -> Expr:
        return self._or()

    def _or(self) -> Expr:
        left = self._and()
        while self._cur.is_punct("||"):
            line = self._advance().line
            right = self._and()
            left = BinOp(line=line, op="||", left=left, right=right)
        return left

    def _and(self) -> Expr:
        left = self._cmp()
        while self._cur.is_punct("&&"):
            line = self._advance().line
            right = self._cmp()
            left = BinOp(line=line, op="&&", left=left, right=right)
        return left

    def _cmp(self) -> Expr:
        left = self._addsub()
        if self._cur.kind is Tok.PUNCT and self._cur.value in _CMP_OPS:
            op_tok = self._advance()
            right = self._addsub()
            return BinOp(line=op_tok.line, op=str(op_tok.value), left=left, right=right)
        return left

    def _addsub(self) -> Expr:
        left = self._muldiv()
        while self._cur.kind is Tok.PUNCT and self._cur.value in ("+", "-"):
            op_tok = self._advance()
            right = self._muldiv()
            left = BinOp(line=op_tok.line, op=str(op_tok.value), left=left, right=right)
        return left

    def _muldiv(self) -> Expr:
        left = self._unary()
        while self._cur.kind is Tok.PUNCT and self._cur.value in ("*", "/", "%"):
            op_tok = self._advance()
            right = self._unary()
            left = BinOp(line=op_tok.line, op=str(op_tok.value), left=left, right=right)
        return left

    def _unary(self) -> Expr:
        if self._cur.kind is Tok.PUNCT and self._cur.value in ("-", "!"):
            op_tok = self._advance()
            operand = self._unary()
            return UnOp(line=op_tok.line, op=str(op_tok.value), operand=operand)
        return self._postfix()

    def _postfix(self) -> Expr:
        token = self._cur
        if token.kind is Tok.INT:
            self._advance()
            return IntLit(line=token.line, value=int(token.value))
        if token.kind is Tok.FLOAT:
            self._advance()
            return FloatLit(line=token.line, value=float(token.value))
        if token.is_punct("("):
            self._advance()
            inner = self._expr()
            self._expect_punct(")")
            return inner
        # "float(...)" / "int(...)" conversions use type keywords as names.
        if token.is_kw("float") or token.is_kw("int"):
            self._advance()
            self._expect_punct("(")
            arg = self._expr()
            self._expect_punct(")")
            return Call(line=token.line, name=str(token.value), args=[arg])
        if token.kind is Tok.IDENT:
            self._advance()
            name = str(token.value)
            if self._cur.is_punct("("):
                self._advance()
                args: list[Expr] = []
                if not self._cur.is_punct(")"):
                    while True:
                        args.append(self._expr())
                        if self._cur.is_punct(","):
                            self._advance()
                            continue
                        break
                self._expect_punct(")")
                return Call(line=token.line, name=name, args=args)
            if self._cur.is_punct("["):
                self._advance()
                index = self._expr()
                self._expect_punct("]")
                return Index(line=token.line, name=name, index=index)
            return Name(line=token.line, name=name)
        raise CompileError(f"unexpected token {token.value!r}", token.line)


def parse(source: str) -> Module:
    """Parse MiniC *source* into a :class:`Module`."""
    return Parser(tokenize(source)).parse_module()


__all__ = ["Parser", "parse"]
