"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``apps``
    List the benchmark suite with golden-run facts.
``objdump --app NAME``
    Disassemble an app image with the function/frame table.
``golden --app NAME``
    Run an app to completion and print its output + acceptance verdict.
``inject --app NAME --dyn-index K --bit B [--letgo VARIANT]``
    One fault-injection run, with or without LetGo.
``campaign --app NAME -n N [--seed S] [--letgo VARIANT] [--jobs J] [--ladder-interval K]``
    An injection campaign with the Table-3 breakdown and Eq. 1-4 metrics,
    run on the snapshot-ladder/multiprocess campaign engine.
``simulate --app NAME --t-chk SECONDS [--mtbfaults S] [--years Y]``
    The Figure-6 C/R simulation with and without LetGo.
``sites --app NAME -n N``
    Fault-site characterisation: which functions / instruction classes /
    bit positions crash, from a fresh LetGo-E campaign.
``parallel [--ranks R] [--mtbf I]``
    The SPMD heat proxy under coordinated C/R, with and without LetGo.
``fuzz [--iterations N] [--seed S] [--oracles LIST] [--findings PATH]``
    Differential fuzzing: random ISA/MiniC programs through the
    backend/debugger/snapshot oracles and the campaign metamorphic
    oracles, shrinking any divergence to a minimal reproducer.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.apps import app_names, make_app
from repro.core import VARIANTS
from repro.crsim import PAPER_APP_PARAMS, SystemParams, YEAR, compare_efficiency
from repro.crsim.params import AppParams
from repro.faultinject import (
    CampaignConfig,
    InjectionPlan,
    add_campaign_arguments,
    campaign_config_from_args,
    run_campaign,
    run_injection,
)
from repro.reporting import ascii_table, pct, pct_ci


def _cmd_apps(_args: argparse.Namespace) -> int:
    rows = []
    for name in app_names():
        app = make_app(name)
        rows.append(
            [
                app.name,
                app.domain,
                "iterative" if app.iterative else "direct",
                f"{app.golden.instret:,}",
                len(app.program.instrs),
            ]
        )
    print(
        ascii_table(
            ["name", "domain", "method", "dyn instrs", "static instrs"], rows
        )
    )
    return 0


def _cmd_objdump(args: argparse.Namespace) -> int:
    from repro.analysis import objdump

    app = make_app(args.app)
    print(objdump(app.program))
    return 0


def _cmd_golden(args: argparse.Namespace) -> int:
    app = make_app(args.app)
    process = app.load(args.backend)
    process.run(app.max_steps)
    output = list(process.output)
    print(
        f"{app.name}: exited {process.exit_code} after "
        f"{process.cpu.instret:,} instructions [{process.backend} backend]"
    )
    for kind, value in output[:20]:
        print(f"  {kind} {value!r}")
    if len(output) > 20:
        print(f"  ... {len(output) - 20} more values")
    verdict = app.acceptance_check(output)
    print(f"acceptance check: {'PASS' if verdict else 'FAIL'}")
    return 0 if verdict else 1


def _variant(name: str | None):
    if name is None:
        return None
    try:
        return VARIANTS[name]
    except KeyError:
        raise SystemExit(
            f"unknown LetGo variant {name!r}; choose from {sorted(VARIANTS)}"
        ) from None


def _cmd_inject(args: argparse.Namespace) -> int:
    app = make_app(args.app)
    plan = InjectionPlan(
        dyn_index=args.dyn_index, bit=args.bit, reg_choice=args.reg_choice
    )
    result = run_injection(app, plan, config=_variant(args.letgo), backend=args.backend)
    print(f"outcome: {result.outcome.value}")
    print(f"target: pc={result.target_pc} reg={result.target_reg}")
    if result.first_signal is not None:
        print(f"first signal: {result.first_signal.name}")
    print(f"interventions: {result.interventions}")
    print(f"instructions retired: {result.steps:,}")
    return 0


def _progress_line(done: int, total: int) -> None:
    print(
        f"\rcampaign: {done}/{total} injections", end="", file=sys.stderr,
        flush=True,
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.errors import CampaignAbortedError, JournalError
    from repro.faultinject import CampaignEngine

    app = make_app(args.app)
    config = _variant(args.letgo)
    cfg = campaign_config_from_args(args)
    engine = CampaignEngine(config=cfg)
    live = sys.stderr.isatty()
    if live:
        engine.on_progress = _progress_line
    journal_path = cfg.journal or cfg.resume
    try:
        try:
            campaign = engine.run(app, args.n, seed=args.seed, config=config)
        finally:
            if live:
                print("\r\x1b[K", end="", file=sys.stderr, flush=True)
    except KeyboardInterrupt:
        # Every completed shard was journaled durably before it counted,
        # so there is nothing left to flush -- just say where to pick up.
        if journal_path is not None:
            print(
                f"interrupted: journal flushed; resume with "
                f"--resume {journal_path}",
                file=sys.stderr,
            )
        else:
            print(
                "interrupted: no journal (use --journal PATH to make "
                "campaigns resumable)",
                file=sys.stderr,
            )
        return 130
    except (CampaignAbortedError, JournalError) as exc:
        print(f"campaign failed: {exc}", file=sys.stderr)
        return 1
    n_done = campaign.n or 1
    rows = [
        [outcome.value, count, pct(count / n_done)]
        for outcome, count in sorted(campaign.counts.items(), key=lambda kv: -kv[1])
    ]
    title = f"{app.name} under {campaign.config_name} (n={args.n}, seed={args.seed})"
    print(ascii_table(["outcome", "runs", "fraction"], rows, title=title))
    if engine.stats is not None and engine.stats.quarantined:
        print(
            f"quarantined poison plans (excluded from fractions): "
            f"{list(engine.stats.quarantined)}"
        )
    if config is not None:
        m = campaign.metrics()
        print(f"\ncontinuability    : {pct_ci(m.continuability.value, m.continuability.half_width)}")
        print(f"continued_correct : {pct_ci(m.continued_correct.value, m.continued_correct.half_width)}")
        print(f"continued_detected: {pct_ci(m.continued_detected.value, m.continued_detected.half_width)}")
        print(f"continued_sdc     : {pct_ci(m.continued_sdc.value, m.continued_sdc.half_width)}")
    print(f"crash rate        : {pct_ci(campaign.crash_rate().value, campaign.crash_rate().half_width)}")
    print(f"overall SDC rate  : {pct_ci(campaign.sdc_rate().value, campaign.sdc_rate().half_width)}")
    if engine.stats is not None:
        print(f"engine            : {engine.stats.describe()}")
    if engine.telemetry is not None:
        print()
        print(engine.telemetry.render(title=f"telemetry: {app.name}"))
        if cfg.trace is not None:
            print(f"trace written to {cfg.trace}")
        if cfg.chrome_trace is not None:
            print(f"chrome trace written to {cfg.chrome_trace}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.app in PAPER_APP_PARAMS and not args.estimate:
        params = PAPER_APP_PARAMS[args.app]
        source = "paper Table 3"
    else:
        app = make_app(args.app)
        campaign = run_campaign(
            app, args.n, seed=args.seed, config=VARIANTS["LetGo-E"]
        )
        params = AppParams(
            name=app.name,
            p_crash=campaign.estimate_p_crash(),
            p_v=campaign.estimate_p_v(),
            p_v_prime=campaign.estimate_p_v_prime(),
            p_letgo=campaign.estimate_p_letgo(),
        )
        source = f"fresh campaign (n={args.n})"
    system = SystemParams(t_chk=args.t_chk, mtbfaults=args.mtbfaults)
    comparison = compare_efficiency(
        system, params, needed=args.years * YEAR, seeds=[1, 2, 3]
    )
    print(f"parameters from {source}: P_crash={params.p_crash:.3f} "
          f"P_v={params.p_v:.3f} P_v'={params.p_v_prime:.3f} "
          f"P_letgo={params.p_letgo:.3f}")
    print(f"standard C/R efficiency: {comparison.standard:.4f}")
    print(f"with LetGo             : {comparison.letgo:.4f}")
    print(f"gain                   : {comparison.gain_absolute:+.4f} "
          f"({comparison.gain_relative:.3f}x)")
    return 0


def _cmd_sites(args: argparse.Namespace) -> int:
    from repro.faultinject import analyze_sites

    app = make_app(args.app)
    campaign = run_campaign(
        app, args.n, seed=args.seed, config=VARIANTS["LetGo-E"],
        campaign=CampaignConfig(keep_results=True),
    )
    print(analyze_sites(app, campaign).render())
    return 0


def _cmd_parallel(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core import LETGO_E
    from repro.parallel import (
        ClusterCRParams,
        ClusterPolicy,
        HeatApp,
        drive_cluster,
    )

    app = HeatApp(size=args.ranks)
    params = ClusterCRParams(
        interval=20_000,
        t_chk=3_000,
        t_sync=300 * args.ranks,
        t_letgo=100,
        mtbf_faults=args.mtbf,
    )
    rows = []
    for label, policy, kwargs in (
        ("none", ClusterPolicy.NONE, {}),
        ("cr", ClusterPolicy.CR, {}),
        ("cr+letgo", ClusterPolicy.CR_LETGO, {"letgo": LETGO_E}),
    ):
        runs = [
            drive_cluster(app, params, policy, seed=s, **kwargs)
            for s in range(args.seeds)
        ]
        rows.append(
            [
                label,
                f"{sum(r.completed for r in runs)}/{args.seeds}",
                f"{np.mean([r.efficiency for r in runs]):.3f}",
                sum(r.rollbacks for r in runs),
                sum(r.letgo_repairs for r in runs),
            ]
        )
    print(
        ascii_table(
            ["policy", "completed", "mean efficiency", "rollbacks", "repairs"],
            rows,
            title=f"{args.ranks}-rank heat proxy, MTBFaults={args.mtbf:.0f} instrs",
        )
    )
    return 0


def _fuzz_progress(done: int, total: int) -> None:
    print(f"\rfuzz: {done}/{total} cases", end="", file=sys.stderr, flush=True)


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from repro.fuzz.corpus import iter_corpus, save_case
    from repro.fuzz.mutations import MUTATIONS
    from repro.fuzz.oracles import ALL_ORACLES
    from repro.fuzz.runner import FuzzConfig, mutation_selftest, run_fuzz

    if args.selftest:
        names = [args.mutation] if args.mutation else sorted(MUTATIONS)
        rows = []
        ok = True
        for name in names:
            result = mutation_selftest(name, seed=args.seed)
            ok = ok and result.ok
            rows.append([
                name,
                "killed" if result.killed else "MISSED",
                "-" if result.found_at is None else result.found_at,
                "-" if result.original_len is None else result.original_len,
                "-" if result.shrunk_len is None else result.shrunk_len,
                "ok" if result.ok else "FAIL",
            ])
        print(ascii_table(
            ["mutation", "status", "case", "len", "shrunk", "verdict"],
            rows, title="mutation self-test (shrunk must be <= 25)",
        ))
        return 0 if ok else 1

    if args.oracles == "all":
        oracles = ALL_ORACLES
    else:
        oracles = tuple(args.oracles.split(","))
        unknown = set(oracles) - set(ALL_ORACLES)
        if unknown:
            raise SystemExit(
                f"unknown oracles {sorted(unknown)}; "
                f"choose from {list(ALL_ORACLES)}"
            )

    replayed = 0
    corpus_failures = 0
    if args.corpus_dir:
        from repro.fuzz.corpus import check_case

        for name, case in iter_corpus(args.corpus_dir):
            replayed += 1
            for div in check_case(case):
                corpus_failures += 1
                print(f"corpus {name}: {div.oracle}@{div.at}: {div.detail}")
        if replayed:
            print(f"corpus: {replayed} cases replayed, "
                  f"{corpus_failures} divergences")

    config = FuzzConfig(
        iterations=args.iterations,
        lang_iterations=(
            args.lang_iterations if args.lang_iterations is not None
            else max(1, args.iterations // 10)
        ),
        seed=args.seed,
        oracles=oracles,
        budget=args.budget,
        jobs=args.jobs,
        mutation=args.mutation,
        shrink=not args.no_shrink,
    )
    live = sys.stderr.isatty()
    report = run_fuzz(config, on_progress=_fuzz_progress if live else None)
    if live:
        print("\r\x1b[K", end="", file=sys.stderr, flush=True)

    if args.findings:
        with open(args.findings, "w") as fh:
            meta = {
                "record": "meta",
                "seed": config.seed,
                "iterations": config.iterations,
                "lang_iterations": config.lang_iterations,
                "oracles": list(config.oracles),
                "budget": config.budget,
                "mutation": config.mutation,
            }
            fh.write(json.dumps(meta, sort_keys=True) + "\n")
            for finding in report.findings:
                record = {"record": "finding", **finding.to_dict()}
                fh.write(json.dumps(record, sort_keys=True) + "\n")
            summary = {
                "record": "summary",
                "cases": report.cases,
                "findings": len(report.findings),
                "coverage": report.coverage.to_dict(),
            }
            fh.write(json.dumps(summary, sort_keys=True) + "\n")
        print(f"findings JSONL written to {args.findings}")
    if args.coverage_out:
        report.coverage.save(args.coverage_out)
        print(f"coverage written to {args.coverage_out}")

    saved = 0
    if args.save_corpus and args.corpus_dir:
        from pathlib import Path

        for finding in report.findings:
            if finding.case is not None:
                path = Path(args.corpus_dir) / f"{finding.case['name']}.json"
                save_case(path, finding.case)
                saved += 1
        if saved:
            print(f"{saved} shrunk reproducers saved under {args.corpus_dir}")

    cov = report.coverage.to_dict()
    print(
        f"fuzz: {report.cases} cases, {len(report.findings)} findings "
        f"(seed {config.seed}); {len(cov['opcodes'])} opcodes, "
        f"stops {cov['stops']}, outcomes {cov['outcomes']}, "
        f"heuristics {cov['heuristics']}"
    )
    for finding in report.findings:
        line = f"  {finding.kind}[{finding.index}] {finding.oracle}@{finding.at}"
        if finding.shrunk_len is not None:
            line += f" (shrunk {finding.original_len} -> {finding.shrunk_len})"
        print(line)
        print(f"    {finding.detail[:500]}")
    return 1 if (report.findings or corpus_failures) else 0


def _add_backend_arg(p: argparse.ArgumentParser) -> None:
    from repro.machine.compiled import BACKENDS

    p.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="execution engine (default: compiled, or $REPRO_BACKEND); "
             "outcomes are backend-invariant",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LetGo (HPDC'17) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the benchmark suite")

    p = sub.add_parser("objdump", help="disassemble an app image")
    p.add_argument("--app", required=True, choices=app_names())

    p = sub.add_parser("golden", help="run an app and check its output")
    p.add_argument("--app", required=True, choices=app_names())
    _add_backend_arg(p)

    p = sub.add_parser("inject", help="run one fault injection")
    p.add_argument("--app", required=True, choices=app_names())
    p.add_argument("--dyn-index", type=int, required=True)
    p.add_argument("--bit", type=int, default=45)
    p.add_argument("--reg-choice", type=float, default=0.5)
    p.add_argument("--letgo", choices=sorted(VARIANTS), default=None)
    _add_backend_arg(p)

    p = sub.add_parser("campaign", help="run an injection campaign")
    p.add_argument("--app", required=True, choices=app_names())
    p.add_argument("-n", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--letgo", choices=sorted(VARIANTS), default="LetGo-E")
    # Every execution/resilience/observability flag is derived from the
    # CampaignConfig fields, so config and CLI cannot drift apart.
    add_campaign_arguments(p)

    p = sub.add_parser("simulate", help="C/R efficiency with vs without LetGo")
    p.add_argument("--app", required=True, choices=list(PAPER_APP_PARAMS))
    p.add_argument("--t-chk", type=float, default=120.0)
    p.add_argument("--mtbfaults", type=float, default=21600.0)
    p.add_argument("--years", type=float, default=2.0)
    p.add_argument("--estimate", action="store_true",
                   help="estimate parameters from a fresh campaign instead "
                        "of the paper's Table 3")
    p.add_argument("-n", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("sites", help="fault-site characterisation")
    p.add_argument("--app", required=True, choices=app_names())
    p.add_argument("-n", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("parallel", help="SPMD coordinated-C/R study")
    p.add_argument("--ranks", type=int, default=4)
    p.add_argument("--mtbf", type=float, default=5_000.0)
    p.add_argument("--seeds", type=int, default=6)

    p = sub.add_parser(
        "fuzz", help="differential fuzzing across backends and oracles"
    )
    p.add_argument("--iterations", type=int, default=200,
                   help="random ISA programs to generate")
    p.add_argument("--lang-iterations", type=int, default=None,
                   help="random MiniC programs (default: iterations/10)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--oracles", default="all",
                   help="comma list: backend,debugger,snapshot,"
                        "merge,resume,jobs (default: all)")
    p.add_argument("--budget", type=int, default=256,
                   help="step budget per ISA differential case")
    p.add_argument("--jobs", type=int, default=1,
                   help="fuzz worker processes (findings are identical "
                        "for any value)")
    p.add_argument("--findings", metavar="PATH", default=None,
                   help="write findings as JSONL")
    p.add_argument("--coverage-out", metavar="PATH", default=None,
                   help="write the coverage report as JSON")
    p.add_argument("--corpus-dir", metavar="DIR", default=None,
                   help="replay this reproducer corpus before fuzzing")
    p.add_argument("--save-corpus", action="store_true",
                   help="save shrunk reproducers of new findings "
                        "into --corpus-dir")
    p.add_argument("--mutation", default=None,
                   help="plant a known-bad backend mutant "
                        "(fmin-nan, halt-pc, shri-logical, segv-order)")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip delta-debugging divergent programs")
    p.add_argument("--selftest", action="store_true",
                   help="verify the fuzzer kills and shrinks every "
                        "planted mutant (<= 25 instructions)")
    return parser


_DISPATCH = {
    "apps": _cmd_apps,
    "objdump": _cmd_objdump,
    "golden": _cmd_golden,
    "inject": _cmd_inject,
    "campaign": _cmd_campaign,
    "simulate": _cmd_simulate,
    "sites": _cmd_sites,
    "parallel": _cmd_parallel,
    "fuzz": _cmd_fuzz,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _DISPATCH[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
