"""In-vivo checkpoint/restart: snapshots + a driven C/R runtime.

Executes the paper's Figure-1 scenario for real on the substrate --
periodic checkpoints, Poisson fault arrivals, rollback vs LetGo repair --
so the analytical Figure-6 model (``repro.crsim``) can be cross-validated
against measured behaviour.
"""

from repro.checkpoint.driver import (
    CheckpointedRun,
    CRParams,
    CRRunResult,
    Policy,
    drive,
)
from repro.checkpoint.snapshot import (
    Snapshot,
    SnapshotLadder,
    build_ladder,
    restore,
    restore_into,
    snapshot,
)

__all__ = [
    "Snapshot",
    "snapshot",
    "restore",
    "restore_into",
    "SnapshotLadder",
    "build_ladder",
    "Policy",
    "CRParams",
    "CRRunResult",
    "CheckpointedRun",
    "drive",
]
