"""In-vivo checkpoint/restart driver: the Figure-1 story, executed for real.

Runs an application on the machine with periodic checkpoints, Poisson
fault arrivals (single bit flips in the register the current instruction
produces), and one of three failure policies:

* ``NONE``   -- no fault tolerance: the first crash kills the run;
* ``CR``     -- roll back to the last checkpoint on every crash;
* ``CR_LETGO`` -- attempt a LetGo repair first; roll back only if the
  repair fails (double crash) or the signal is unhandled.

Time is measured in *instructions* (the substrate's clock): checkpoint,
recovery and repair costs are charged in instruction units, so measured
efficiency = useful work / total cost is directly comparable across
policies and against the Figure-6 analytical model's predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.apps.base import MiniApp
from repro.checkpoint.snapshot import Snapshot, restore, snapshot
from repro.core.config import LetGoConfig
from repro.core.modifier import Modifier
from repro.core.monitor import Monitor
from repro.errors import SimulationError
from repro.faultinject.fault_model import flip_bit, select_target
from repro.machine.debugger import (
    STOP_EXITED,
    STOP_STEPS_DONE,
    STOP_TRAP,
    DebugSession,
)


class Policy(Enum):
    """Failure-handling policy for a run."""

    NONE = "none"
    CR = "cr"
    CR_LETGO = "cr+letgo"


@dataclass(frozen=True)
class CRParams:
    """Platform parameters, in instruction units.

    ``interval`` is the useful work between checkpoints; ``t_chk`` /
    ``t_r`` / ``t_letgo`` are the charged costs of a checkpoint write, a
    recovery, and one LetGo repair.
    """

    interval: int
    t_chk: int
    t_r: int | None = None       # default: t_chk
    t_letgo: int = 0
    mtbf_faults: float = 50_000.0  # mean instructions between faults

    def __post_init__(self) -> None:
        if self.interval <= 0 or self.t_chk < 0 or self.mtbf_faults <= 0:
            raise SimulationError("invalid CRParams")

    @property
    def recovery(self) -> int:
        return self.t_chk if self.t_r is None else self.t_r


@dataclass
class CRRunResult:
    """Everything observable about one driven run."""

    policy: Policy
    completed: bool
    outcome: str                 # 'benign' | 'sdc' | 'detected' | 'dead' | 'hung'
    useful: int                  # golden dynamic instructions (work delivered)
    cost: int                    # total charged instruction units
    checkpoints: int = 0
    rollbacks: int = 0
    faults_injected: int = 0
    letgo_repairs: int = 0
    letgo_giveups: int = 0
    output: list = field(default_factory=list, repr=False)

    @property
    def efficiency(self) -> float:
        """useful / cost; zero for runs that never completed."""
        if not self.completed or self.cost <= 0:
            return 0.0
        return self.useful / self.cost


class CheckpointedRun:
    """Drives one application run under a policy with injected faults."""

    def __init__(
        self,
        app: MiniApp,
        params: CRParams,
        policy: Policy,
        seed: int,
        letgo: LetGoConfig | None = None,
    ):
        if policy is Policy.CR_LETGO and letgo is None:
            raise SimulationError("CR_LETGO policy needs a LetGo config")
        self.app = app
        self.params = params
        self.policy = policy
        self.letgo = letgo
        self.rng = np.random.default_rng(seed)
        self._monitor = Monitor(letgo) if letgo is not None else None
        self._modifier = (
            Modifier(letgo, app.functions) if letgo is not None else None
        )

    # -- driving ------------------------------------------------------------

    def run(self) -> CRRunResult:
        app, params = self.app, self.params
        program = app.program
        process = app.load()
        session = DebugSession(process)
        result = CRRunResult(
            policy=self.policy,
            completed=False,
            outcome="dead",
            useful=app.golden.instret,
            cost=0,
        )
        ckpt: Snapshot = snapshot(process)
        since_ckpt = 0           # instructions retired since the checkpoint
        to_fault = self._next_fault()
        budget = app.max_steps * 4  # generous: rollbacks repeat work
        interventions_since_crash = 0

        takes_checkpoints = self.policy is not Policy.NONE
        while result.cost < budget:
            if takes_checkpoints:
                stride = min(params.interval - since_ckpt, to_fault)
            else:
                stride = to_fault
            event = session.run_steps(stride)
            result.cost += event.steps
            since_ckpt += event.steps
            to_fault -= event.steps

            if event.kind == STOP_EXITED:
                result.completed = True
                result.output = list(process.output)
                result.outcome = self._classify(result.output)
                return result

            if event.kind == STOP_TRAP:
                assert event.trap is not None
                handled = (
                    self.policy is Policy.CR_LETGO
                    and self._monitor is not None
                    and self._monitor.intercepts(event.trap.signal)
                    and interventions_since_crash
                    < self.letgo.max_interventions  # type: ignore[union-attr]
                )
                if handled:
                    assert self._modifier is not None
                    self._modifier.repair(session, event.trap)
                    result.cost += params.t_letgo
                    result.letgo_repairs += 1
                    interventions_since_crash += 1
                    continue
                if self.policy is Policy.NONE:
                    result.outcome = "dead"
                    return result
                if interventions_since_crash:
                    result.letgo_giveups += 1
                # roll back to the last checkpoint
                process = restore(program, ckpt)
                session = DebugSession(process)
                result.cost += params.recovery
                result.rollbacks += 1
                since_ckpt = 0
                to_fault = self._next_fault()
                interventions_since_crash = 0
                continue

            assert event.kind == STOP_STEPS_DONE
            if to_fault <= 0:
                self._inject(process)
                result.faults_injected += 1
                to_fault = self._next_fault()
            if takes_checkpoints and since_ckpt >= params.interval:
                ckpt = snapshot(process)
                result.cost += params.t_chk
                result.checkpoints += 1
                since_ckpt = 0
                # a successful checkpoint forgives the crash budget
                interventions_since_crash = 0

        result.outcome = "hung"
        return result

    # -- internals -----------------------------------------------------------

    def _next_fault(self) -> int:
        return max(1, int(self.rng.exponential(self.params.mtbf_faults)))

    def _inject(self, process) -> None:
        """Flip one bit in the register produced by the next instruction."""
        pc = process.cpu.pc
        instrs = process.program.instrs
        if not 0 <= pc < len(instrs):
            return  # wild PC: the crash is already on its way
        target = select_target(instrs[pc], float(self.rng.random()))
        if target is None:
            return
        flip_bit(process.cpu, target[0], target[1], int(self.rng.integers(64)))

    def _classify(self, output) -> str:
        if not self.app.acceptance_check(output):
            return "detected"
        if self.app.matches_golden(output):
            return "benign"
        return "sdc"


def drive(
    app: MiniApp,
    params: CRParams,
    policy: Policy,
    seed: int = 0,
    letgo: LetGoConfig | None = None,
) -> CRRunResult:
    """One-shot convenience wrapper."""
    return CheckpointedRun(app, params, policy, seed, letgo).run()


__all__ = ["Policy", "CRParams", "CRRunResult", "CheckpointedRun", "drive"]
