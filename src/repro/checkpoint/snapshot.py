"""Process snapshots: the checkpoint/restore primitive.

A snapshot captures the complete architectural state of a process --
registers, PC, memory contents, output stream, retirement counter -- and
can be restored onto a fresh process of the same program image.  This is
the in-vivo equivalent of writing a checkpoint to stable storage; the
*cost* of doing so is accounted separately by the driver (a platform
parameter), because on this substrate the copy itself is nearly free.

On top of the single-snapshot primitive this module builds the
:class:`SnapshotLadder`: one golden run captured at a fixed retirement
interval.  Replaying a prefix of the golden path to dynamic instruction D
then costs one restore plus at most ``interval`` interpreted steps instead
of D steps -- the amortization the fault-injection campaign engine is
built on.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.isa.program import Program
from repro.machine.cpu import STOP_HALT
from repro.machine.process import Process, ProcessStatus


@dataclass(frozen=True)
class Snapshot:
    """Immutable architectural state of one process at one instant."""

    checksum: str                   # program identity guard
    iregs: tuple[int, ...]
    fregs: tuple[float, ...]
    pc: int
    instret: int
    cells: dict[int, int] = field(hash=False)
    output: tuple[tuple[str, int | float], ...] = ()

    @property
    def size_cells(self) -> int:
        """Number of written memory cells captured (checkpoint 'size')."""
        return len(self.cells)


def snapshot(process: Process) -> Snapshot:
    """Capture *process* (must be running)."""
    if process.status is not ProcessStatus.RUNNING or process.cpu.halted:
        raise SimulationError("cannot checkpoint a finished or dead process")
    cpu = process.cpu
    return Snapshot(
        checksum=process.program.checksum(),
        iregs=tuple(cpu.iregs),
        fregs=tuple(cpu.fregs),
        pc=cpu.pc,
        instret=cpu.instret,
        cells=process.memory.written_cells(),
        output=tuple(cpu.output),
    )


def restore_into(process: Process, snap: Snapshot) -> Process:
    """Reset *process* (same program image) to the snapshot's state.

    The process may be mid-flight or finished; everything architectural is
    overwritten and its status returns to RUNNING.  This is the in-place
    fast path :func:`restore` is built on.
    """
    if process.program.checksum() != snap.checksum:
        raise SimulationError("snapshot belongs to a different program image")
    cpu = process.cpu
    cpu.iregs[:] = snap.iregs
    cpu.fregs[:] = snap.fregs
    cpu.pc = snap.pc
    cpu.instret = snap.instret
    cpu.output[:] = snap.output
    cpu.halted = False
    process.memory.load_cells(snap.cells)
    process.status = ProcessStatus.RUNNING
    process.term_signal = None
    process.last_trap = None
    return process


def restore(program: Program, snap: Snapshot, backend: str | None = None) -> Process:
    """Materialise a fresh process at the snapshot's state.

    The program image must be the one the snapshot was taken from.
    Snapshots are backend-agnostic; *backend* picks the execution engine
    of the restored process.
    """
    if program.checksum() != snap.checksum:
        raise SimulationError("snapshot belongs to a different program image")
    return restore_into(Process.load(program, backend=backend), snap)


@dataclass(frozen=True)
class SnapshotLadder:
    """Golden-run checkpoints at a fixed retirement interval.

    Rung *i* holds the process state after ``(i + 1) * interval`` retired
    instructions of the fault-free run (the state at instret 0 is a plain
    ``Process.load``, so it needs no rung).  ``total`` is the golden
    retirement count; rungs stop strictly before it.
    """

    checksum: str
    interval: int
    rungs: tuple[Snapshot, ...]
    total: int

    def __post_init__(self) -> None:
        instrets = [r.instret for r in self.rungs]
        if instrets != sorted(set(instrets)):
            raise SimulationError("ladder rungs must be strictly ascending")

    def __len__(self) -> int:
        return len(self.rungs)

    def nearest(self, instret: int) -> Snapshot | None:
        """Highest rung with ``rung.instret <= instret`` (None: start cold).

        The returned snapshot is the cheapest launch point for reaching
        retirement count *instret* on the golden path.
        """
        instrets = [r.instret for r in self.rungs]
        pos = bisect_right(instrets, instret)
        return self.rungs[pos - 1] if pos else None


def build_ladder(
    program: Program, interval: int, max_steps: int | None = None
) -> SnapshotLadder:
    """One golden run of *program*, snapshotted every *interval* retirements.

    ``max_steps`` bounds the run (default: 64 intervals past 2**24, a
    safety net -- golden runs of well-formed apps halt long before).  The
    golden path must be trap-free; a trap propagates to the caller.
    """
    if interval < 1:
        raise ValueError("ladder interval must be >= 1")
    process = Process.load(program)
    cpu = process.cpu
    budget = max_steps if max_steps is not None else (1 << 24)
    rungs: list[Snapshot] = []
    while cpu.instret < budget:
        stop = cpu.run(interval)
        if stop == STOP_HALT:
            break
        rungs.append(snapshot(process))
    else:
        raise SimulationError(
            f"golden run exceeded {budget} instructions while building ladder"
        )
    return SnapshotLadder(
        checksum=program.checksum(),
        interval=interval,
        rungs=tuple(rungs),
        total=cpu.instret,
    )


__all__ = [
    "Snapshot",
    "snapshot",
    "restore",
    "restore_into",
    "SnapshotLadder",
    "build_ladder",
]
