"""Process snapshots: the checkpoint/restore primitive.

A snapshot captures the complete architectural state of a process --
registers, PC, memory contents, output stream, retirement counter -- and
can be restored onto a fresh process of the same program image.  This is
the in-vivo equivalent of writing a checkpoint to stable storage; the
*cost* of doing so is accounted separately by the driver (a platform
parameter), because on this substrate the copy itself is nearly free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.isa.program import Program
from repro.machine.process import Process, ProcessStatus


@dataclass(frozen=True)
class Snapshot:
    """Immutable architectural state of one process at one instant."""

    checksum: str                   # program identity guard
    iregs: tuple[int, ...]
    fregs: tuple[float, ...]
    pc: int
    instret: int
    cells: dict[int, int] = field(hash=False)
    output: tuple[tuple[str, int | float], ...] = ()

    @property
    def size_cells(self) -> int:
        """Number of written memory cells captured (checkpoint 'size')."""
        return len(self.cells)


def snapshot(process: Process) -> Snapshot:
    """Capture *process* (must be running)."""
    if process.status is not ProcessStatus.RUNNING or process.cpu.halted:
        raise SimulationError("cannot checkpoint a finished or dead process")
    cpu = process.cpu
    return Snapshot(
        checksum=process.program.checksum(),
        iregs=tuple(cpu.iregs),
        fregs=tuple(cpu.fregs),
        pc=cpu.pc,
        instret=cpu.instret,
        cells=process.memory.written_cells(),
        output=tuple(cpu.output),
    )


def restore(program: Program, snap: Snapshot) -> Process:
    """Materialise a fresh process at the snapshot's state.

    The program image must be the one the snapshot was taken from.
    """
    if program.checksum() != snap.checksum:
        raise SimulationError("snapshot belongs to a different program image")
    process = Process.load(program)
    cpu = process.cpu
    cpu.iregs[:] = list(snap.iregs)
    cpu.fregs[:] = list(snap.fregs)
    cpu.pc = snap.pc
    cpu.instret = snap.instret
    cpu.output[:] = list(snap.output)
    process.memory.clear()
    for addr, pattern in snap.cells.items():
        process.memory.write_pattern(addr, pattern)
    return process


__all__ = ["Snapshot", "snapshot", "restore"]
