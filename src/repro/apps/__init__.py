"""The six-benchmark suite mirroring the paper's Table 2.

Five iterative/convergent applications (LULESH, CLAMR, CoMD, SNAP,
PENNANT analogues) plus one direct method (HPL analogue), each compiled
from MiniC with its own result-acceptance check and SDC-comparison data.
"""

from repro.apps.base import GoldenRun, MiniApp, Output, pack_output
from repro.apps.clamr import Clamr
from repro.apps.comd import Comd
from repro.apps.hpl import Hpl
from repro.apps.lulesh import Lulesh
from repro.apps.pennant import Pennant
from repro.apps.registry import APP_CLASSES, all_apps, app_names, make_app
from repro.apps.snap import Snap

__all__ = [
    "MiniApp",
    "GoldenRun",
    "Output",
    "pack_output",
    "Lulesh",
    "Clamr",
    "Hpl",
    "Comd",
    "Snap",
    "Pennant",
    "APP_CLASSES",
    "app_names",
    "make_app",
    "all_apps",
]
