"""CLAMR analogue: cell-based AMR shallow-water hydrodynamics.

A 1-D dam-break problem solved with Lax-Friedrichs fluxes on a cell-based
adaptively refined mesh: cells split where the height gradient is steep
(up to two refinement levels) and sibling cells re-merge where the field
is smooth, with mass and momentum conserved exactly by both the flux-form
update and the refine/coarsen operators.

CLAMR's built-in acceptance check is a *threshold on the mass change per
iteration* (Table 2); the analogue reports the largest per-iteration mass
delta and the host-side check applies the threshold.  The SDC-comparison
data is the mesh (cell count, heights, widths).
"""

from __future__ import annotations

from math import isfinite

from repro.apps.base import MiniApp, Output

#: Base cells and the hard array capacity.
N_BASE = 16
MAX_CELLS = 64
#: Fixed number of time steps.
N_STEPS = 30

_SOURCE = f"""
// CLAMR analogue: dam break + cell-based AMR, exact mass conservation.
global int nbase = {N_BASE};
global int maxc = {MAX_CELLS};
global int nsteps = {N_STEPS};
global int ncells = 0;
global float h[{MAX_CELLS}];    // water height
global float hu[{MAX_CELLS}];   // momentum
global float w[{MAX_CELLS}];    // cell width
global float fh[{MAX_CELLS + 1}];   // interface mass fluxes
global float fhu[{MAX_CELLS + 1}];  // interface momentum fluxes
global float grav = 9.8;
global float cfl = 0.4;
global float reft = 0.08;       // refine when the h jump exceeds this
global float cot = 0.02;        // coarsen when siblings differ less
global float wmin = 0.3;        // never refine below this width

func speed(int i) -> float {{
    assert(h[i] > 0.0);
    return fabs(hu[i] / h[i]) + sqrt(grav * h[i]);
}}

func cell_mass() -> float {{
    var int i;
    var float total = 0.0;
    for (i = 0; i < ncells; i = i + 1) {{ total = total + h[i] * w[i]; }}
    return total;
}}

func compute_fluxes() -> int {{
    var int i;
    // solid walls: zero mass flux, reflected pressure
    fh[0] = 0.0;
    fhu[0] = 0.5 * grav * h[0] * h[0];
    fh[ncells] = 0.0;
    fhu[ncells] = 0.5 * grav * h[ncells - 1] * h[ncells - 1];
    for (i = 1; i < ncells; i = i + 1) {{
        var float hl = h[i - 1];
        var float hr = h[i];
        var float ul = hu[i - 1] / hl;
        var float ur = hu[i] / hr;
        var float lam = fmax(fabs(ul) + sqrt(grav * hl),
                             fabs(ur) + sqrt(grav * hr));
        fh[i] = 0.5 * (hu[i - 1] + hu[i]) - 0.5 * lam * (hr - hl);
        fhu[i] = 0.5 * ((hu[i - 1] * ul + 0.5 * grav * hl * hl)
                      + (hu[i] * ur + 0.5 * grav * hr * hr))
               - 0.5 * lam * (hu[i] - hu[i - 1]);
    }}
    return 0;
}}

func refine_pass() -> int {{
    var int i = 0;
    while (i < ncells) {{
        var float gl = 0.0;
        var float gr = 0.0;
        if (i > 0) {{ gl = fabs(h[i] - h[i - 1]); }}
        if (i < ncells - 1) {{ gr = fabs(h[i + 1] - h[i]); }}
        if (fmax(gl, gr) > reft && w[i] > wmin && ncells < maxc) {{
            assert(ncells < maxc);
            var int j = ncells;
            while (j > i + 1) {{
                h[j] = h[j - 1];
                hu[j] = hu[j - 1];
                w[j] = w[j - 1];
                j = j - 1;
            }}
            w[i] = w[i] * 0.5;
            w[i + 1] = w[i];
            h[i + 1] = h[i];
            hu[i + 1] = hu[i];
            ncells = ncells + 1;
            i = i + 2;
        }} else {{
            i = i + 1;
        }}
    }}
    return 0;
}}

func coarsen_pass() -> int {{
    var int i = 0;
    while (i < ncells - 1) {{
        // a sibling pair may merge only if the whole neighbourhood is
        // smooth -- otherwise every fresh refinement (identical halves)
        // would be undone in the same step
        var float gout = 0.0;
        if (i > 0) {{ gout = fabs(h[i] - h[i - 1]); }}
        if (i + 2 < ncells) {{ gout = fmax(gout, fabs(h[i + 2] - h[i + 1])); }}
        if (w[i] < 0.9 && w[i] == w[i + 1]
            && fabs(h[i] - h[i + 1]) < cot && gout < cot) {{
            var float wm = w[i] + w[i + 1];
            h[i] = (h[i] * w[i] + h[i + 1] * w[i + 1]) / wm;
            hu[i] = (hu[i] * w[i] + hu[i + 1] * w[i + 1]) / wm;
            w[i] = wm;
            var int j;
            for (j = i + 1; j < ncells - 1; j = j + 1) {{
                h[j] = h[j + 1];
                hu[j] = hu[j + 1];
                w[j] = w[j + 1];
            }}
            ncells = ncells - 1;
        }}
        i = i + 1;
    }}
    return 0;
}}

func main() -> int {{
    var int i;
    ncells = nbase;
    for (i = 0; i < ncells; i = i + 1) {{
        if (i < ncells / 2) {{ h[i] = 2.0; }} else {{ h[i] = 1.0; }}
        hu[i] = 0.0;
        w[i] = 1.0;
    }}
    var float mass0 = cell_mass();
    var float prev = mass0;
    var float maxdelta = 0.0;
    var int step;
    for (step = 0; step < nsteps; step = step + 1) {{
        // CFL time step over the adaptive mesh
        var float lam = 0.0;
        var float wsmall = 1.0e9;
        for (i = 0; i < ncells; i = i + 1) {{
            var float s = speed(i);
            if (s > lam) {{ lam = s; }}
            if (w[i] < wsmall) {{ wsmall = w[i]; }}
        }}
        var float dt = cfl * wsmall / lam;
        compute_fluxes();
        for (i = 0; i < ncells; i = i + 1) {{
            h[i] = h[i] - dt / w[i] * (fh[i + 1] - fh[i]);
            hu[i] = hu[i] - dt / w[i] * (fhu[i + 1] - fhu[i]);
        }}
        refine_pass();
        coarsen_pass();
        var float mass = cell_mass();
        var float delta = fabs(mass - prev);
        if (delta > maxdelta) {{ maxdelta = delta; }}
        prev = mass;
    }}
    out(nsteps);
    out(ncells);
    out(mass0);
    out(prev);
    out(maxdelta);
    for (i = 0; i < ncells; i = i + 1) {{ out(h[i]); }}
    for (i = 0; i < ncells; i = i + 1) {{ out(w[i]); }}
    return 0;
}}
"""


class Clamr(MiniApp):
    """CLAMR analogue with the per-iteration mass-change acceptance check."""

    name = "clamr"
    domain = "Adaptive mesh refinement"

    #: Threshold for the mass change per iteration (Table 2), relative to
    #: the initial mass.  The flux-form update conserves to roundoff.
    MASS_DELTA_RTOL = 1e-11
    #: Initial mass of the dam-break setup: 8 cells at h=2 + 8 at h=1.
    EXPECTED_MASS0 = 24.0

    @property
    def source(self) -> str:
        return _SOURCE

    def acceptance_check(self, output: Output) -> bool:
        if len(output) < 5:
            return False
        if [k for k, _ in output[:5]] != ["i", "i", "f", "f", "f"]:
            return False
        steps, ncells, mass0, massf, maxdelta = (v for _, v in output[:5])
        if steps != N_STEPS:
            return False
        if not (N_BASE <= ncells <= MAX_CELLS):
            return False
        if len(output) != 5 + 2 * ncells:
            return False
        if any(k != "f" for k, _ in output[5:]):
            return False
        if not (isfinite(mass0) and abs(mass0 - self.EXPECTED_MASS0) < 1e-9):
            return False
        if not (isfinite(maxdelta) and maxdelta < self.MASS_DELTA_RTOL * self.EXPECTED_MASS0):
            return False
        if not (isfinite(massf) and abs(massf - mass0) < 1e-9 * mass0):
            return False
        heights = [v for _, v in output[5 : 5 + ncells]]
        widths = [v for _, v in output[5 + ncells :]]
        if not all(isfinite(v) and v > 0.0 for v in heights):
            return False
        if not all(isfinite(v) and 0.0 < v <= 1.0 for v in widths):
            return False
        # The adaptive mesh must still tile the domain.
        return abs(sum(widths) - float(N_BASE)) < 1e-9

    def sdc_slice(self, output: Output) -> tuple:
        # The mesh: cell count + heights + widths.
        return tuple(v for _, v in output[1:2] + output[5:])


__all__ = ["Clamr", "N_BASE", "MAX_CELLS", "N_STEPS"]
