"""Registry of the benchmark suite (paper Table 2)."""

from __future__ import annotations

from repro.apps.base import MiniApp
from repro.apps.clamr import Clamr
from repro.apps.comd import Comd
from repro.apps.hpl import Hpl
from repro.apps.lulesh import Lulesh
from repro.apps.pennant import Pennant
from repro.apps.snap import Snap

#: All six benchmarks, in Table-2 order.
APP_CLASSES: tuple[type[MiniApp], ...] = (
    Lulesh,
    Clamr,
    Hpl,
    Comd,
    Snap,
    Pennant,
)

_BY_NAME = {cls.name: cls for cls in APP_CLASSES}


def app_names(iterative_only: bool = False) -> list[str]:
    """Names of all apps (optionally only the iterative/convergent five)."""
    return [
        cls.name
        for cls in APP_CLASSES
        if not iterative_only or cls.iterative
    ]


def make_app(name: str) -> MiniApp:
    """Instantiate a benchmark by name."""
    try:
        return _BY_NAME[name]()
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None


def all_apps(iterative_only: bool = False) -> list[MiniApp]:
    """Fresh instances of the whole suite."""
    return [make_app(name) for name in app_names(iterative_only)]


__all__ = ["APP_CLASSES", "app_names", "make_app", "all_apps"]
