"""Mini-application framework.

Each app mirrors one of the paper's DOE proxy applications (Table 2): it
carries MiniC source, a *result acceptance check* written against the
app's own verification specification (energy conservation, residual norm,
symmetry...), and a definition of which output data is compared bitwise
against the golden run to call an undetected-wrong result an SDC.

The acceptance checks deliberately receive only the program output -- they
model the checks application developers ship, which cannot consult a
golden run.  Any reference constants they use (expected iteration counts,
analytic energies) are hard-coded per app, exactly like the "Final Origin
Energy" check in real LULESH.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass
from functools import cached_property

from typing import TYPE_CHECKING

from repro.analysis.functions import FunctionTable
from repro.analysis.profiler import Profile, profile_program
from repro.isa.program import Program
from repro.lang.compiler import CompiledUnit, compile_unit
from repro.machine.process import Process

if TYPE_CHECKING:  # checkpoint.driver imports apps.base; break the cycle
    from repro.checkpoint.snapshot import SnapshotLadder

Output = list[tuple[str, int | float]]

# Compilation, golden profiling and golden-run snapshot ladders are
# deterministic functions of the source text (plus the ladder interval);
# share them across app instances (tests, CLI, benches all instantiate
# apps freely, and campaign workers re-derive apps from their spec).
_UNIT_CACHE: dict[str, CompiledUnit] = {}
_PROFILE_CACHE: dict[str, Profile] = {}
_LADDER_CACHE: dict[tuple[str, int], "SnapshotLadder"] = {}


@dataclass(frozen=True)
class GoldenRun:
    """Reference run facts: output stream, dynamic instructions, exit code."""

    output: tuple[tuple[str, int | float], ...]
    instret: int
    exit_code: int


def pack_output(values: tuple | list, digits: int | None = None) -> bytes:
    """Bitwise-stable serialization of an output slice (SDC comparison).

    Floats compare by IEEE bit pattern (so ``-0.0 != 0.0`` and NaN compares
    equal to itself), ints by two's-complement value -- the paper's
    "bit-wise comparison" of application data.

    ``digits`` models the *printed-output* granularity the original diffed:
    real applications emit their result data with finite precision, so a
    perturbation below the last printed digit is invisible.  When set,
    floats are rounded to that many significant decimal digits before
    packing (NaNs canonicalised); ``None`` compares raw 64-bit patterns.
    """
    parts: list[bytes] = []
    for value in values:
        if isinstance(value, float):
            if digits is not None:
                try:
                    value = float(f"{value:.{digits}g}")
                except (ValueError, OverflowError):  # pragma: no cover
                    pass
            parts.append(b"f" + struct.pack("<d", value))
        else:
            # Mask to the two's-complement pattern first, then pack unsigned:
            # "<q" would reject the masked form of any negative value.
            parts.append(b"i" + struct.pack("<Q", value & ((1 << 64) - 1)))
    return b"".join(parts)


class MiniApp(ABC):
    """One benchmark application.

    Subclasses provide the MiniC source and the Table-2 semantics; this
    base class owns compilation, golden-run and analysis caching.
    """

    #: Short identifier, e.g. ``"lulesh"``.
    name: str = ""
    #: Application domain, straight from Table 2.
    domain: str = ""
    #: True for convergence-based iterative apps; False for direct methods
    #: (HPL).  Table 3 aggregates only the iterative set.
    iterative: bool = True
    #: Multiple of the golden instruction count after which a run is a hang.
    hang_factor: float = 10.0
    #: Significant decimal digits the app "prints" its SDC data with; the
    #: golden comparison happens at this granularity (see pack_output).
    sdc_digits: int = 9

    # -- source & build ---------------------------------------------------------

    @property
    @abstractmethod
    def source(self) -> str:
        """MiniC source text."""

    @cached_property
    def unit(self) -> CompiledUnit:
        """Compiled unit (cached across instances by source text)."""
        source = self.source
        unit = _UNIT_CACHE.get(source)
        if unit is None:
            unit = compile_unit(source, name=self.name)
            _UNIT_CACHE[source] = unit
        return unit

    @property
    def program(self) -> Program:
        """The linked image."""
        return self.unit.program

    def load(self, backend: str | None = None) -> Process:
        """A fresh process for one run (*backend* picks the engine)."""
        return Process.load(self.program, backend=backend)

    # -- golden facts ----------------------------------------------------------

    @cached_property
    def profile(self) -> Profile:
        """Golden profiling run (paper's one-time PIN pass), shared
        across instances of the same source."""
        source = self.source
        profile = _PROFILE_CACHE.get(source)
        if profile is None:
            profile = profile_program(self.program)
            _PROFILE_CACHE[source] = profile
        return profile

    @cached_property
    def golden(self) -> GoldenRun:
        """Reference output/instruction count."""
        prof = self.profile
        return GoldenRun(
            output=tuple(prof.output),
            instret=prof.total,
            exit_code=prof.exit_code,
        )

    @cached_property
    def functions(self) -> FunctionTable:
        """Static function/frame analysis shared by LetGo runs."""
        return FunctionTable(self.program)

    @property
    def max_steps(self) -> int:
        """Per-run instruction budget (beyond it: hang)."""
        return int(self.golden.instret * self.hang_factor) + 10_000

    # -- snapshot ladder -----------------------------------------------------

    @property
    def default_ladder_interval(self) -> int:
        """Rung spacing balancing fast-forward cost against rung count.

        ~64 rungs across the golden run: the mean fast-forward after a
        restore is interval/2 (< 1% of the run), while the ladder itself
        stays a few dozen small snapshots.
        """
        return max(256, self.golden.instret // 64)

    def ladder(self, interval: int | None = None) -> "SnapshotLadder":
        """Golden-run snapshot ladder (cached by source text + interval).

        One fault-free run per (app, interval), captured every *interval*
        retired instructions; injection runs restore the nearest rung at
        or below their target instead of replaying the prefix from zero.
        """
        from repro.checkpoint.snapshot import build_ladder

        if interval is None:
            interval = self.default_ladder_interval
        key = (self.source, interval)
        ladder = _LADDER_CACHE.get(key)
        if ladder is None:
            ladder = build_ladder(
                self.program, interval, max_steps=self.max_steps
            )
            _LADDER_CACHE[key] = ladder
        return ladder

    # -- Table 2 semantics ---------------------------------------------------

    @abstractmethod
    def acceptance_check(self, output: Output) -> bool:
        """The application's own result-acceptance check.

        Must be robust to malformed output (wrong arity or types count as
        *detected*, i.e. return False).
        """

    @abstractmethod
    def sdc_slice(self, output: Output) -> tuple:
        """The output subset compared bitwise against golden (Table 2 col 4).

        May assume :meth:`acceptance_check` already passed.
        """

    # -- derived classification helpers --------------------------------------

    def matches_golden(self, output: Output) -> bool:
        """Bitwise comparison of the SDC data against the golden run."""
        try:
            candidate = self.sdc_slice(output)
        except (IndexError, TypeError, ValueError):
            return False
        reference = self.sdc_slice(list(self.golden.output))
        return pack_output(candidate, self.sdc_digits) == pack_output(
            reference, self.sdc_digits
        )

    # -- misc ------------------------------------------------------------

    def describe(self) -> str:
        """Short multi-line description (used by the Table-2 bench)."""
        return (
            f"{self.name}: {self.domain}; golden {self.golden.instret} dynamic "
            f"instructions; {len(self.program.instrs)} static instructions"
        )


__all__ = ["MiniApp", "GoldenRun", "Output", "pack_output"]
