"""PENNANT analogue: unstructured-mesh Lagrangian staggered-grid hydro.

PENNANT's defining trait (vs. LULESH) is the *unstructured* mesh: all
connectivity goes through explicit index arrays.  Here the node storage
order is a pseudo-random permutation of the logical order, and every
gather/scatter (zone -> its two nodes) is a double indirection through the
connectivity arrays -- generating exactly the indexed load/store patterns
whose corruption LetGo has to survive.

Physics: a 1-D pressure-discontinuity (Riemann-like) problem with a
*compatible* energy update (work computed with mid-step velocities), which
conserves total energy to roundoff; per Table 2 the acceptance criterion
is **energy conservation**.  SDC data: the mesh (zone energies + node
positions in logical order).
"""

from __future__ import annotations

from math import isfinite

from repro.apps.base import MiniApp, Output

#: Zones (nodes = zones + 1).
N_ZONES = 20
N_NODES = N_ZONES + 1

_SOURCE = f"""
// PENNANT analogue: permuted-storage unstructured 1-D Lagrangian hydro.
global int nz = {N_ZONES};
global int nn = {N_NODES};
global int perm[{N_NODES}];     // logical node -> storage slot
global int zl[{N_ZONES}];       // zone -> storage slot of its left node
global int zr[{N_ZONES}];       // zone -> storage slot of its right node
global float px[{N_NODES}];     // node positions   (storage order)
global float pv[{N_NODES}];     // node velocities  (storage order)
global float pvold[{N_NODES}];
global float fx[{N_NODES}];     // nodal forces     (storage order)
global float mn[{N_NODES}];     // nodal masses     (storage order)
global float e[{N_ZONES}];      // zone specific internal energy
global float m[{N_ZONES}];      // zone mass
global float p[{N_ZONES}];      // zone pressure
global float q[{N_ZONES}];      // zone artificial viscosity
global float gamma = 1.4;
global float cfl = 0.3;
global float tend = 0.25;
global float qcoef = 1.5;
global int maxiter = 300;
global int seed = 12345;

func rndint(int bound) -> int {{
    seed = seed * 6364136223846793005 + 1442695040888963407;
    var int r = seed % bound;
    if (r < 0) {{ r = r + bound; }}
    return r;
}}

func total_energy() -> float {{
    var int z;
    var int n;
    var float tot = 0.0;
    for (z = 0; z < nz; z = z + 1) {{ tot = tot + m[z] * e[z]; }}
    for (n = 0; n < nn; n = n + 1) {{
        tot = tot + 0.5 * mn[n] * pv[n] * pv[n];
    }}
    return tot;
}}

func main() -> int {{
    var int z;
    var int n;
    var int i;
    // pseudo-random node storage permutation (Fisher-Yates)
    for (i = 0; i < nn; i = i + 1) {{ perm[i] = i; }}
    for (i = nn - 1; i > 0; i = i - 1) {{
        var int j = rndint(i + 1);
        var int tswap = perm[i];
        perm[i] = perm[j];
        perm[j] = tswap;
    }}
    for (z = 0; z < nz; z = z + 1) {{
        zl[z] = perm[z];
        zr[z] = perm[z + 1];
    }}
    // geometry + pressure-jump initial condition
    var float dx0 = 1.0 / float(nz);
    for (i = 0; i < nn; i = i + 1) {{
        px[perm[i]] = float(i) * dx0;
        pv[perm[i]] = 0.0;
    }}
    for (z = 0; z < nz; z = z + 1) {{
        m[z] = 1.0 * dx0;
        if (z < nz / 2) {{ e[z] = 2.0; }} else {{ e[z] = 1.0; }}
        q[z] = 0.0;
    }}
    // nodal masses by scatter from zones
    for (n = 0; n < nn; n = n + 1) {{ mn[n] = 0.0; }}
    for (z = 0; z < nz; z = z + 1) {{
        mn[zl[z]] = mn[zl[z]] + 0.5 * m[z];
        mn[zr[z]] = mn[zr[z]] + 0.5 * m[z];
    }}
    var float e0 = total_energy();

    var float t = 0.0;
    var int iter = 0;
    while (t < tend && iter < maxiter) {{
        // EOS + viscosity (all through connectivity gathers)
        for (z = 0; z < nz; z = z + 1) {{
            var float dxz = px[zr[z]] - px[zl[z]];
            assert(dxz > 0.0);                 // tangled mesh check
            var float rho = m[z] / dxz;
            p[z] = (gamma - 1.0) * rho * e[z];
            if (p[z] < 0.0) {{ p[z] = 0.0; }}
            var float dv = pv[zr[z]] - pv[zl[z]];
            if (dv < 0.0) {{
                q[z] = qcoef * rho * dv * dv;
            }} else {{
                q[z] = 0.0;
            }}
        }}
        // CFL scan
        var float best = 1.0;
        for (z = 0; z < nz; z = z + 1) {{
            var float dxc = px[zr[z]] - px[zl[z]];
            var float rhoc = m[z] / dxc;
            var float c = sqrt(gamma * (p[z] + 1.0e-12) / rhoc);
            var float dtz = dxc / (c + 1.0e-9);
            if (dtz < best) {{ best = dtz; }}
        }}
        var float dt = cfl * best;
        if (t + dt > tend) {{ dt = tend - t; }}
        // force scatter
        for (n = 0; n < nn; n = n + 1) {{ fx[n] = 0.0; }}
        for (z = 0; z < nz; z = z + 1) {{
            var float ptot = p[z] + q[z];
            fx[zr[z]] = fx[zr[z]] + ptot;
            fx[zl[z]] = fx[zl[z]] - ptot;
        }}
        // node kinematics (walls pinned)
        for (n = 0; n < nn; n = n + 1) {{
            pvold[n] = pv[n];
            pv[n] = pv[n] + dt * fx[n] / mn[n];
        }}
        pv[perm[0]] = 0.0;
        pvold[perm[0]] = 0.0;
        pv[perm[nn - 1]] = 0.0;
        pvold[perm[nn - 1]] = 0.0;
        for (n = 0; n < nn; n = n + 1) {{
            px[n] = px[n] + 0.5 * (pv[n] + pvold[n]) * dt;
        }}
        // compatible energy update: exact discrete conservation
        for (z = 0; z < nz; z = z + 1) {{
            var float vbr = 0.5 * (pv[zr[z]] + pvold[zr[z]]);
            var float vbl = 0.5 * (pv[zl[z]] + pvold[zl[z]]);
            e[z] = e[z] - (p[z] + q[z]) * (vbr - vbl) * dt / m[z];
        }}
        t = t + dt;
        iter = iter + 1;
    }}

    var float ef = total_energy();
    out(iter);
    out(e0);
    out(ef);
    for (z = 0; z < nz; z = z + 1) {{ out(e[z]); }}
    for (i = 0; i < nn; i = i + 1) {{ out(px[perm[i]]); }}   // logical order
    return 0;
}}
"""


class Pennant(MiniApp):
    """PENNANT analogue with the energy-conservation acceptance check."""

    name = "pennant"
    domain = "Unstructured mesh physics"

    #: Relative total-energy drift tolerance (scheme conserves to roundoff).
    ENERGY_RTOL = 1e-9
    #: Reference initial energy of the deterministic setup: 10 zones at
    #: e=2 + 10 at e=1, each of mass 0.05 (zero initial kinetic energy).
    EXPECTED_E0 = 1.5
    #: Expected iteration count of the fixed problem (golden run).
    EXPECTED_ITERATIONS = 19

    @property
    def source(self) -> str:
        return _SOURCE

    def acceptance_check(self, output: Output) -> bool:
        if len(output) != 3 + N_ZONES + N_NODES:
            return False
        kinds = [k for k, _ in output]
        if kinds[0] != "i" or any(k != "f" for k in kinds[1:]):
            return False
        if output[0][1] != self.EXPECTED_ITERATIONS:
            return False
        e0 = output[1][1]
        ef = output[2][1]
        if not (isfinite(e0) and isfinite(ef) and e0 > 0.0):
            return False
        if abs(e0 - self.EXPECTED_E0) > 1e-12:
            return False
        if abs(ef - e0) > self.ENERGY_RTOL * e0:
            return False
        energies = [v for _, v in output[3 : 3 + N_ZONES]]
        positions = [v for _, v in output[3 + N_ZONES :]]
        if not all(isfinite(v) for v in energies):
            return False
        if not all(isfinite(v) for v in positions):
            return False
        # mesh validity: node positions strictly increasing in logical order
        return all(b > a for a, b in zip(positions, positions[1:]))

    def sdc_slice(self, output: Output) -> tuple:
        # The mesh: zone energies + node positions.
        return tuple(v for _, v in output[3:])


__all__ = ["Pennant", "N_ZONES", "N_NODES"]
