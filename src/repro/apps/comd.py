"""CoMD analogue: classical molecular dynamics (Lennard-Jones chain).

A periodic 1-D Lennard-Jones system integrated with velocity Verlet: atoms
start on a slightly perturbed lattice, interact through the 12-6 potential
with a cutoff (energy-shifted so the potential is continuous), and the
verification criterion -- per CoMD's "verification correctness" section and
Table 2 -- is **energy conservation**: the total (kinetic + potential)
energy at the end must match the initial total to a tight relative
tolerance.  The SDC-comparison data is *each atom's property* (positions
and velocities), bitwise.
"""

from __future__ import annotations

from math import isfinite

from repro.apps.base import MiniApp, Output

#: Atom count and integration steps.
N_ATOMS = 14
N_STEPS = 30

_SOURCE = f"""
// CoMD analogue: 1-D periodic Lennard-Jones, velocity Verlet.
global int natoms = {N_ATOMS};
global int nsteps = {N_STEPS};
global float pos[{N_ATOMS}];
global float vel[{N_ATOMS}];
global float force[{N_ATOMS}];
global float mass = 1.0;
global float dt = 0.001;
global float boxlen = 0.0;      // natoms * r0, set in main
global float r0 = 1.122462048309373;   // 2^(1/6): LJ equilibrium spacing
global float rcut = 2.8;
global float ecut = 0.0;        // potential shift at the cutoff, set in main
global float epot = 0.0;        // filled by compute_forces
global int seed = 7;

func rnd() -> float {{
    seed = seed * 6364136223846793005 + 1442695040888963407;
    var int mant = seed % 9007199254740992;
    if (mant < 0) {{ mant = mant + 9007199254740992; }}
    return float(mant) / 9007199254740992.0 - 0.5;
}}

// minimum-image displacement in the periodic box
func minimg(float d) -> float {{
    var float r = d;
    if (r > 0.5 * boxlen) {{ r = r - boxlen; }}
    if (r < -0.5 * boxlen) {{ r = r + boxlen; }}
    return r;
}}

func lj_energy(float r2) -> float {{
    var float inv2 = 1.0 / r2;
    var float inv6 = inv2 * inv2 * inv2;
    return 4.0 * (inv6 * inv6 - inv6) - ecut;
}}

// dU/dr / r, so that force_i = -pair * dx
func lj_force_over_r(float r2) -> float {{
    var float inv2 = 1.0 / r2;
    var float inv6 = inv2 * inv2 * inv2;
    return 24.0 * inv2 * (inv6 - 2.0 * inv6 * inv6);
}}

func compute_forces() -> int {{
    var int i;
    var int j;
    epot = 0.0;
    for (i = 0; i < natoms; i = i + 1) {{ force[i] = 0.0; }}
    for (i = 0; i < natoms; i = i + 1) {{
        for (j = i + 1; j < natoms; j = j + 1) {{
            var float dx = minimg(pos[i] - pos[j]);
            var float r2 = dx * dx;
            if (r2 < rcut * rcut) {{
                assert(r2 > 0.0);          // overlapping atoms: blow up
                var float fot = lj_force_over_r(r2);
                force[i] = force[i] - fot * dx;
                force[j] = force[j] + fot * dx;
                epot = epot + lj_energy(r2);
            }}
        }}
    }}
    return 0;
}}

func kinetic() -> float {{
    var int i;
    var float ke = 0.0;
    for (i = 0; i < natoms; i = i + 1) {{
        ke = ke + 0.5 * mass * vel[i] * vel[i];
    }}
    return ke;
}}

func main() -> int {{
    var int i;
    boxlen = float(natoms) * r0;
    // shift so the potential is continuous at the cutoff
    var float inv2 = 1.0 / (rcut * rcut);
    var float inv6 = inv2 * inv2 * inv2;
    ecut = 4.0 * (inv6 * inv6 - inv6);
    // perturbed lattice, zero initial velocities
    for (i = 0; i < natoms; i = i + 1) {{
        pos[i] = float(i) * r0 + 0.05 * rnd();
        vel[i] = 0.0;
    }}
    compute_forces();
    var float e0 = kinetic() + epot;
    var int step;
    for (step = 0; step < nsteps; step = step + 1) {{
        // velocity Verlet
        for (i = 0; i < natoms; i = i + 1) {{
            vel[i] = vel[i] + 0.5 * dt * force[i] / mass;
            pos[i] = pos[i] + dt * vel[i];
            if (pos[i] >= boxlen) {{ pos[i] = pos[i] - boxlen; }}
            if (pos[i] < 0.0) {{ pos[i] = pos[i] + boxlen; }}
        }}
        compute_forces();
        for (i = 0; i < natoms; i = i + 1) {{
            vel[i] = vel[i] + 0.5 * dt * force[i] / mass;
        }}
    }}
    var float ef = kinetic() + epot;
    out(nsteps);
    out(e0);
    out(ef);
    for (i = 0; i < natoms; i = i + 1) {{ out(pos[i]); }}
    for (i = 0; i < natoms; i = i + 1) {{ out(vel[i]); }}
    return 0;
}}
"""


class Comd(MiniApp):
    """CoMD analogue with the energy-conservation acceptance check."""

    name = "comd"
    domain = "Classical molecular dynamics"

    #: Relative energy-drift tolerance (Verlet at this dt conserves to ~1e-9;
    #: the threshold is set far above golden drift yet far below corruption).
    ENERGY_RTOL = 1e-6
    #: Absolute floor for the relative-drift denominator.
    ENERGY_SCALE_MIN = 1e-3
    #: Reference initial total energy of the deterministic setup (the
    #: CoMD verification spec pins cold-start energies the same way).
    EXPECTED_E0 = -14.11993417452675
    E0_RTOL = 1e-9

    @property
    def source(self) -> str:
        return _SOURCE

    def acceptance_check(self, output: Output) -> bool:
        if len(output) != 3 + 2 * N_ATOMS:
            return False
        kinds = [k for k, _ in output]
        if kinds[0] != "i" or any(k != "f" for k in kinds[1:]):
            return False
        steps = output[0][1]
        e0 = output[1][1]
        ef = output[2][1]
        atoms = [v for _, v in output[3:]]
        if steps != N_STEPS:
            return False
        if not (isfinite(e0) and isfinite(ef)):
            return False
        if abs(e0 - self.EXPECTED_E0) > self.E0_RTOL * abs(self.EXPECTED_E0):
            return False
        scale = max(abs(e0), self.ENERGY_SCALE_MIN)
        if abs(ef - e0) > self.ENERGY_RTOL * scale:
            return False
        if not all(isfinite(v) for v in atoms):
            return False
        # positions must lie inside the periodic box
        box = N_ATOMS * 1.122462048309373
        return all(0.0 <= p < box for p in atoms[:N_ATOMS])

    def sdc_slice(self, output: Output) -> tuple:
        # Each atom's property: positions and velocities.
        return tuple(v for _, v in output[3:])


__all__ = ["Comd", "N_ATOMS", "N_STEPS"]
