"""LULESH analogue: Lagrangian shock hydrodynamics (Sedov-like problem).

A 1-D staggered-mesh Lagrangian hydro code in the spirit of LULESH: zone
state (mass, internal energy, pressure, artificial viscosity) with nodal
positions/velocities, an energy deposition at the mesh centre, a CFL
time-step scan, and reflective boundaries.  The problem is symmetric
around the centre zone, so the mesh must stay symmetric -- one of the
three acceptance criteria the LULESH verification spec defines (Table 2):

* number of iterations: exactly the expected count;
* final origin energy: correct to at least 6 digits;
* measures of symmetry: smaller than 1e-8.

The SDC-comparison data is the mesh (all zone energies), bitwise.
"""

from __future__ import annotations

from math import isfinite

from repro.apps.base import MiniApp, Output

#: Zones in the mesh (odd, so a single centre zone exists).
N_ZONES = 17

_SOURCE = f"""
// LULESH analogue: 1-D Sedov-like Lagrangian hydrodynamics.
global int nz = {N_ZONES};          // zones
global int nn = {N_ZONES + 1};      // nodes
global float x[{N_ZONES + 1}];      // node positions
global float xold[{N_ZONES + 1}];
global float v[{N_ZONES + 1}];      // node velocities
global float vold[{N_ZONES + 1}];
global float e[{N_ZONES}];          // zone specific internal energy
global float m[{N_ZONES}];          // zone mass
global float p[{N_ZONES}];          // zone pressure
global float q[{N_ZONES}];          // zone artificial viscosity
global float gamma = 1.4;
global float cfl = 0.25;
global float tend = 0.4;
global float qcoef = 2.0;
global int maxiter = 400;

func eos_pressure(float rho, float ei) -> float {{
    var float pr = (gamma - 1.0) * rho * ei;
    if (pr < 0.0) {{ pr = 0.0; }}
    return pr;
}}

func zone_rho(int z) -> float {{
    return m[z] / (x[z + 1] - x[z]);
}}

func compute_dt() -> float {{
    var int z;
    var float best = 1.0;
    for (z = 0; z < nz; z = z + 1) {{
        var float dx = x[z + 1] - x[z];
        var float rho = zone_rho(z);
        var float c = sqrt(gamma * (p[z] + 1.0e-12) / rho);
        var float dtz = dx / (c + 1.0e-9);
        if (dtz < best) {{ best = dtz; }}
    }}
    return cfl * best;
}}

func main() -> int {{
    var int z;
    var int n;
    var float dx0 = 1.0 / float(nz);
    // mesh + Sedov-style central energy deposition
    for (n = 0; n < nn; n = n + 1) {{
        x[n] = float(n) * dx0;
        v[n] = 0.0;
    }}
    for (z = 0; z < nz; z = z + 1) {{
        m[z] = 1.0 * dx0;
        e[z] = 1.0e-6;
        q[z] = 0.0;
    }}
    var int mid = (nz - 1) / 2;
    e[mid] = 0.5 / m[mid];

    var float t = 0.0;
    var int iter = 0;
    while (t < tend && iter < maxiter) {{
        // EOS + artificial viscosity
        for (z = 0; z < nz; z = z + 1) {{
            var float rho = zone_rho(z);
            p[z] = eos_pressure(rho, e[z]);
            var float dv = v[z + 1] - v[z];
            if (dv < 0.0) {{
                q[z] = qcoef * rho * dv * dv;
            }} else {{
                q[z] = 0.0;
            }}
        }}
        var float dt = compute_dt();
        if (t + dt > tend) {{ dt = tend - t; }}
        // nodal accelerations from pressure gradients; move nodes
        for (n = 0; n < nn; n = n + 1) {{
            vold[n] = v[n];
            xold[n] = x[n];
        }}
        for (n = 1; n < nn - 1; n = n + 1) {{
            var float mnode = 0.5 * (m[n - 1] + m[n]);
            var float f = (p[n - 1] + q[n - 1]) - (p[n] + q[n]);
            v[n] = v[n] + dt * f / mnode;
        }}
        v[0] = 0.0;
        v[nn - 1] = 0.0;
        for (n = 0; n < nn; n = n + 1) {{
            x[n] = x[n] + 0.5 * (v[n] + vold[n]) * dt;
        }}
        // compatible internal-energy update (work = P dV via mean velocity)
        for (z = 0; z < nz; z = z + 1) {{
            var float vbr = 0.5 * (v[z + 1] + vold[z + 1]);
            var float vbl = 0.5 * (v[z] + vold[z]);
            e[z] = e[z] - (p[z] + q[z]) * (vbr - vbl) * dt / m[z];
            if (e[z] < 0.0) {{ e[z] = 0.0; }}
        }}
        assert(x[nn - 1] > x[0]);    // mesh must not invert end-to-end
        t = t + dt;
        iter = iter + 1;
    }}

    // symmetry measure: energy field mirrored around the centre zone
    var float sym = 0.0;
    for (z = 0; z < nz; z = z + 1) {{
        var float d = fabs(e[z] - e[nz - 1 - z]);
        if (d > sym) {{ sym = d; }}
    }}
    out(iter);
    out(e[mid]);        // "final origin energy"
    out(sym);
    for (z = 0; z < nz; z = z + 1) {{ out(e[z]); }}
    return 0;
}}
"""


class Lulesh(MiniApp):
    """LULESH analogue with the Table-2 acceptance criteria."""

    name = "lulesh"
    domain = "Hydrodynamics"

    #: Reference values baked in from the verified golden run, playing the
    #: role of the analytic answers in LULESH's verification spec.
    EXPECTED_ITERATIONS = 46
    EXPECTED_ORIGIN_ENERGY = 3.2708679388477373
    SYMMETRY_TOL = 1e-8
    #: 6-significant-digit agreement, per the spec.
    ORIGIN_RTOL = 1e-6

    @property
    def source(self) -> str:
        return _SOURCE

    def acceptance_check(self, output: Output) -> bool:
        if len(output) != 3 + N_ZONES:
            return False
        kinds = [k for k, _ in output]
        if kinds[0] != "i" or any(k != "f" for k in kinds[1:]):
            return False
        iterations = output[0][1]
        origin = output[1][1]
        symmetry = output[2][1]
        energies = [v for _, v in output[3:]]
        if iterations != self.EXPECTED_ITERATIONS:
            return False
        if not (
            isfinite(origin)
            and abs(origin - self.EXPECTED_ORIGIN_ENERGY)
            <= self.ORIGIN_RTOL * abs(self.EXPECTED_ORIGIN_ENERGY)
        ):
            return False
        if not (isfinite(symmetry) and symmetry < self.SYMMETRY_TOL):
            return False
        return all(isfinite(v) and v >= 0.0 for v in energies)

    def sdc_slice(self, output: Output) -> tuple:
        # The mesh: all zone energies.
        return tuple(v for _, v in output[3:])


__all__ = ["Lulesh", "N_ZONES"]
