"""HPL analogue: dense linear solve via LU with partial pivoting.

High Performance Linpack solves ``Ax = b`` by LU decomposition and accepts
the answer when the norm-wise backward-error residual

    ``||Ax - b||_inf / (eps * (||A||_inf * ||x||_inf + ||b||_inf) * N)``

is below a threshold (16.0, the standard HPL criterion).  This is the one
*direct* (non-iterative) method in the suite -- the paper discusses it
separately in Section 8 because crash-elision hurts more and helps less
without convergence to absorb perturbations.

The matrix is generated in-program by a 64-bit LCG (HPL also generates its
own pseudo-random matrix), so the program needs no input files.
"""

from __future__ import annotations

from math import isfinite

from repro.apps.base import MiniApp, Output

#: Matrix dimension.
N_DIM = 14

_SOURCE = f"""
// HPL analogue: LU factorisation with partial pivoting + residual check.
global int n = {N_DIM};
global float a[{N_DIM * N_DIM}];      // factored in place
global float aorig[{N_DIM * N_DIM}];  // kept for the residual
global float b[{N_DIM}];
global float borig[{N_DIM}];
global float xs[{N_DIM}];             // solution vector
global int piv[{N_DIM}];
global int seed = 42;
global float eps = 2.220446049250313e-16;

// 64-bit LCG -> float in [-0.5, 0.5)
func rnd() -> float {{
    seed = seed * 6364136223846793005 + 1442695040888963407;
    var int mant = seed % 9007199254740992;    // take 53 bits
    if (mant < 0) {{ mant = mant + 9007199254740992; }}
    return float(mant) / 9007199254740992.0 - 0.5;
}}

func idx(int i, int j) -> int {{
    return i * n + j;
}}

func factor() -> int {{
    var int k;
    var int i;
    var int j;
    for (k = 0; k < n; k = k + 1) {{
        // partial pivoting: find the largest |a[i][k]|, i >= k
        var int pivot = k;
        var float best = fabs(a[idx(k, k)]);
        for (i = k + 1; i < n; i = i + 1) {{
            var float cand = fabs(a[idx(i, k)]);
            if (cand > best) {{ best = cand; pivot = i; }}
        }}
        piv[k] = pivot;
        if (pivot != k) {{
            for (j = 0; j < n; j = j + 1) {{
                var float tmp = a[idx(k, j)];
                a[idx(k, j)] = a[idx(pivot, j)];
                a[idx(pivot, j)] = tmp;
            }}
            var float tb = b[k];
            b[k] = b[pivot];
            b[pivot] = tb;
        }}
        assert(fabs(a[idx(k, k)]) > 0.0);
        for (i = k + 1; i < n; i = i + 1) {{
            var float mult = a[idx(i, k)] / a[idx(k, k)];
            a[idx(i, k)] = mult;
            for (j = k + 1; j < n; j = j + 1) {{
                a[idx(i, j)] = a[idx(i, j)] - mult * a[idx(k, j)];
            }}
            b[i] = b[i] - mult * b[k];
        }}
    }}
    return 0;
}}

func back_substitute() -> int {{
    var int i;
    var int j;
    for (i = n - 1; i >= 0; i = i - 1) {{
        var float s = b[i];
        for (j = i + 1; j < n; j = j + 1) {{
            s = s - a[idx(i, j)] * xs[j];
        }}
        xs[i] = s / a[idx(i, i)];
    }}
    return 0;
}}

func residual() -> float {{
    // ||A x - b||_inf / (eps * (||A||_inf ||x||_inf + ||b||_inf) * n)
    var int i;
    var int j;
    var float rmax = 0.0;
    var float anorm = 0.0;
    var float xnorm = 0.0;
    var float bnorm = 0.0;
    for (i = 0; i < n; i = i + 1) {{
        var float ri = 0.0 - borig[i];
        var float rowsum = 0.0;
        for (j = 0; j < n; j = j + 1) {{
            ri = ri + aorig[idx(i, j)] * xs[j];
            rowsum = rowsum + fabs(aorig[idx(i, j)]);
        }}
        rmax = fmax(rmax, fabs(ri));
        anorm = fmax(anorm, rowsum);
        xnorm = fmax(xnorm, fabs(xs[i]));
        bnorm = fmax(bnorm, fabs(borig[i]));
    }}
    return rmax / (eps * (anorm * xnorm + bnorm) * float(n));
}}

func main() -> int {{
    var int i;
    var int j;
    for (i = 0; i < n; i = i + 1) {{
        for (j = 0; j < n; j = j + 1) {{
            var float v = rnd();
            a[idx(i, j)] = v;
            aorig[idx(i, j)] = v;
        }}
        var float bv = rnd();
        b[i] = bv;
        borig[i] = bv;
    }}
    factor();
    back_substitute();
    var float res = residual();
    out(res);
    for (i = 0; i < n; i = i + 1) {{ out(xs[i]); }}
    return 0;
}}
"""


class Hpl(MiniApp):
    """HPL analogue; the residual check is the acceptance test."""

    name = "hpl"
    domain = "Dense linear solver"
    iterative = False  # direct method; discussed separately (paper sec. 8)

    #: Standard HPL pass threshold for the scaled residual.
    RESIDUAL_THRESHOLD = 16.0

    @property
    def source(self) -> str:
        return _SOURCE

    def acceptance_check(self, output: Output) -> bool:
        if len(output) != 1 + N_DIM:
            return False
        if any(k != "f" for k, _ in output):
            return False
        residual = output[0][1]
        solution = [v for _, v in output[1:]]
        if not (isfinite(residual) and 0.0 <= residual < self.RESIDUAL_THRESHOLD):
            return False
        return all(isfinite(v) for v in solution)

    def sdc_slice(self, output: Output) -> tuple:
        # The solution vector.
        return tuple(v for _, v in output[1:])


__all__ = ["Hpl", "N_DIM"]
