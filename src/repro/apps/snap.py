"""SNAP analogue: discrete-ordinates (Sn) neutral-particle transport.

A 1-D fixed-source transport problem solved by source iteration with
diamond-difference sweeps: for each discrete angle, sweep across the slab
in the flow direction (left-to-right for mu>0, right-to-left for mu<0),
accumulate the scalar flux with the quadrature weights, and iterate until
the scattering source converges.  The iteration runs to its *bitwise* fixed
point (tol = 0): source iteration is a contraction, so any in-flight
perturbation that does not crash the sweep is annihilated entirely --
the paper's observation that SNAP masks all non-crashing errors.

The problem (uniform medium + uniform source + vacuum boundaries on both
sides) is mirror-symmetric, so per SNAP's "verification of results"
section and Table 2 the acceptance criterion is **the flux solution output
should be symmetric**.  SDC data: the scalar-flux solution.
"""

from __future__ import annotations

from math import isfinite

from repro.apps.base import MiniApp, Output

#: Spatial cells, angles per half-space, and the iteration cap.
N_CELLS = 16
N_ANG = 4
MAX_ITERS = 80

_SOURCE = f"""
// SNAP analogue: 1-D Sn transport, diamond difference + source iteration.
global int nc = {N_CELLS};
global int na = {N_ANG};            // angles per half-space
global int maxit = {MAX_ITERS};
global float mu[{N_ANG}];           // Gauss-Legendre nodes on (0,1)
global float wt[{N_ANG}];           // matching weights (sum to 1 per half)
global float phi[{N_CELLS}];        // scalar flux
global float phiold[{N_CELLS}];
global float src[{N_CELLS}];        // per-angle emission density
global float sigt = 1.0;            // total cross-section
global float sigs = 0.3;            // scattering cross-section
global float q0 = 1.0;              // uniform external source
global float dx = 0.25;
global float tol = 0.0;        // iterate to the bitwise fixed point

func sweep_right(float m) -> int {{
    // mu > 0: boundary flux 0 at the left face (vacuum)
    var int i;
    var float psin = 0.0;
    for (i = 0; i < nc; i = i + 1) {{
        var float psic = (src[i] * dx + 2.0 * m * psin)
                       / (2.0 * m + sigt * dx);
        phi[i] = phi[i] + 0.5 * wt_at(m) * psic;
        psin = 2.0 * psic - psin;
        if (psin < 0.0) {{ psin = 0.0; }}   // negative-flux fixup
    }}
    return 0;
}}

func sweep_left(float m) -> int {{
    // mu < 0 (m holds |mu|): vacuum at the right face
    var int i;
    var float psin = 0.0;
    for (i = nc - 1; i >= 0; i = i - 1) {{
        var float psic = (src[i] * dx + 2.0 * m * psin)
                       / (2.0 * m + sigt * dx);
        phi[i] = phi[i] + 0.5 * wt_at(m) * psic;
        psin = 2.0 * psic - psin;
        if (psin < 0.0) {{ psin = 0.0; }}
    }}
    return 0;
}}

// weight lookup by node value (nodes are distinct)
func wt_at(float m) -> float {{
    var int k;
    for (k = 0; k < na; k = k + 1) {{
        if (mu[k] == m) {{ return wt[k]; }}
    }}
    abort();        // unknown angle: quadrature table corrupted
    return 0.0;
}}

func main() -> int {{
    var int i;
    var int k;
    // 4-point Gauss-Legendre on (0, 1)
    mu[0] = 0.0694318442029737;
    mu[1] = 0.3300094782075719;
    mu[2] = 0.6699905217924281;
    mu[3] = 0.9305681557970263;
    wt[0] = 0.1739274225687269;
    wt[1] = 0.3260725774312731;
    wt[2] = 0.3260725774312731;
    wt[3] = 0.1739274225687269;
    for (i = 0; i < nc; i = i + 1) {{ phi[i] = 0.0; }}
    var int iter = 0;
    var float err = 1.0;
    while (err > tol && iter < maxit) {{
        for (i = 0; i < nc; i = i + 1) {{
            phiold[i] = phi[i];
            src[i] = 0.5 * (sigs * phi[i] + q0);
            phi[i] = 0.0;
        }}
        for (k = 0; k < na; k = k + 1) {{
            sweep_right(mu[k]);
            sweep_left(mu[k]);
        }}
        err = 0.0;
        for (i = 0; i < nc; i = i + 1) {{
            var float d = fabs(phi[i] - phiold[i]);
            if (d > err) {{ err = d; }}
        }}
        iter = iter + 1;
    }}
    // symmetry of the flux solution
    var float asym = 0.0;
    for (i = 0; i < nc; i = i + 1) {{
        var float dd = fabs(phi[i] - phi[nc - 1 - i]);
        if (dd > asym) {{ asym = dd; }}
    }}
    out(iter);
    out(err);
    out(asym);
    for (i = 0; i < nc; i = i + 1) {{ out(phi[i]); }}
    return 0;
}}
"""


class Snap(MiniApp):
    """SNAP analogue with the flux-symmetry acceptance check."""

    name = "snap"
    domain = "Discrete ordinates transport"

    SYMMETRY_TOL = 1e-8
    #: Convergence criterion used by the in-program loop.
    CONVERGENCE_TOL = 0.0
    #: Physical upper bound on the scalar flux (infinite-medium limit
    #: q0/(sigt - sigs) ~ 1.43, with margin).
    FLUX_BOUND = 2.0

    @property
    def source(self) -> str:
        return _SOURCE

    def acceptance_check(self, output: Output) -> bool:
        if len(output) != 3 + N_CELLS:
            return False
        kinds = [k for k, _ in output]
        if kinds[0] != "i" or any(k != "f" for k in kinds[1:]):
            return False
        iterations = output[0][1]
        err = output[1][1]
        asym = output[2][1]
        flux = [v for _, v in output[3:]]
        if not (0 < iterations < MAX_ITERS):
            return False  # must have converged before the cap
        if not (isfinite(err) and err <= self.CONVERGENCE_TOL):
            return False
        if not (isfinite(asym) and asym < self.SYMMETRY_TOL):
            return False
        # physical bound: the flux cannot exceed the infinite-medium value
        # q0 / (sigt - sigs) = 1 / 0.7; allow generous margin
        return all(isfinite(v) and 0.0 < v < self.FLUX_BOUND for v in flux)

    def sdc_slice(self, output: Output) -> tuple:
        # The flux solution.
        return tuple(v for _, v in output[3:])


__all__ = ["Snap", "N_CELLS", "N_ANG", "MAX_ITERS"]
