"""Exception hierarchy shared across the repro packages.

Machine-level *traps* (hardware exceptions that become OS signals) are
deliberately NOT in this hierarchy -- they live in
:mod:`repro.machine.signals` because they model architectural events, not
library misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AssemblerError(ReproError):
    """Malformed assembly source (bad mnemonic, operand, or label)."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """Instruction cannot be encoded to / decoded from the binary image."""


class CompileError(ReproError):
    """MiniC source rejected by the lexer, parser, or semantic analysis."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LoaderError(ReproError):
    """Program image cannot be loaded into a process."""


class AnalysisError(ReproError):
    """Static analysis failed (e.g. no function table for an address)."""


class InjectionError(ReproError):
    """Fault-injection plan cannot be applied to the target run."""


class JournalError(ReproError):
    """Campaign journal is corrupt, duplicated, or from another campaign."""


class CampaignAbortedError(ReproError):
    """An injection campaign could not be completed.

    ``journal`` names the write-ahead journal holding the shards that did
    complete (None when the campaign ran without one); resuming from it
    skips the finished work.
    """

    def __init__(self, message: str, journal=None):
        self.journal = journal
        if journal is not None:
            message = f"{message} (resume with --resume {journal})"
        super().__init__(message)


class SimulationError(ReproError):
    """The C/R state-machine simulation was mis-configured."""
