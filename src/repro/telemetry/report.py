"""Aggregated telemetry: where a campaign's wall-clock actually went.

A :class:`TelemetryReport` reduces a merged event stream to per-phase
statistics (count / total / mean / max seconds) plus the counter tallies,
and renders them as the end-of-campaign breakdown table the CLI prints.

Determinism contract
--------------------
Phase *durations* are wall-clock and vary run to run; phase *counts* for
the per-injection phases and all counters are pure functions of the
campaign's plan population.  :meth:`TelemetryReport.signature` projects
out exactly that deterministic core, which is what the engine's
cross-process merge test pins: the same seed must produce an identical
signature at ``jobs=1`` and ``jobs=4``.  Engine-level phases (one
``shard`` span per shard, journal appends) are excluded because the shard
*count* legitimately depends on the fan-out geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.reporting.tables import ascii_table

#: Span names whose counts are per-injection, i.e. independent of
#: sharding and worker geometry.  These (plus all counters) form the
#: deterministic signature.
INJECTION_PHASES = frozenset(
    {
        "restore",
        "advance-to-site",
        "post-fault",
        "repair",
        "acceptance-check",
    }
)


@dataclass
class PhaseStat:
    """Aggregate of every span with one name."""

    count: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass
class TelemetryReport:
    """One campaign's aggregated telemetry."""

    phases: dict[str, PhaseStat] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    events: int = 0
    dropped: int = 0
    wall_seconds: float = 0.0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: list[dict],
        counters: dict[str, int] | None = None,
        dropped: int = 0,
        wall_seconds: float = 0.0,
    ) -> "TelemetryReport":
        """Aggregate a canonical record list (see ``Tracer.records``)."""
        report = cls(
            counters=dict(counters or {}),
            events=len(records),
            dropped=dropped,
            wall_seconds=wall_seconds,
        )
        phases = report.phases
        for record in records:
            if record["kind"] != "span":
                continue
            stat = phases.get(record["name"])
            if stat is None:
                stat = phases[record["name"]] = PhaseStat()
            stat.add(record["dur"])
        return report

    @classmethod
    def from_tracer(cls, tracer, wall_seconds: float = 0.0) -> "TelemetryReport":
        """Aggregate everything a (merged) tracer recorded."""
        return cls.from_records(
            tracer.records(),
            counters=tracer.counters,
            dropped=tracer.dropped,
            wall_seconds=wall_seconds,
        )

    # -- deterministic projection ------------------------------------------

    def signature(self) -> dict:
        """The sharding-independent core of this report.

        Counters plus per-injection phase counts: for a given (app, n,
        seed, config, plans) this dict is identical whatever ``jobs``,
        ``shard_size`` or ``ladder_interval`` the campaign ran with.
        """
        return {
            "counters": dict(sorted(self.counters.items())),
            "phase_counts": {
                name: stat.count
                for name, stat in sorted(self.phases.items())
                if name in INJECTION_PHASES
            },
        }

    # -- accessors ---------------------------------------------------------

    def outcome_counts(self) -> dict[str, int]:
        """Per-outcome tallies recorded by the injector (``outcome:*``)."""
        return {
            name.split(":", 1)[1]: value
            for name, value in sorted(self.counters.items())
            if name.startswith("outcome:")
        }

    def heuristic_counts(self) -> dict[str, int]:
        """Per-heuristic firing tallies (``heuristic:*``)."""
        return {
            name.split(":", 1)[1]: value
            for name, value in sorted(self.counters.items())
            if name.startswith("heuristic:")
        }

    def phase_seconds(self) -> dict[str, float]:
        """Total seconds per phase name."""
        return {name: stat.total_seconds for name, stat in self.phases.items()}

    # -- rendering ---------------------------------------------------------

    def render(self, title: str | None = None) -> str:
        """The end-of-campaign breakdown: phases table + counter table."""
        wall = self.wall_seconds
        phase_rows = [
            [
                name,
                stat.count,
                f"{stat.total_seconds:.3f}",
                f"{stat.mean_seconds * 1e3:.2f}",
                f"{stat.max_seconds * 1e3:.2f}",
                f"{100.0 * stat.total_seconds / wall:.1f}%" if wall > 0 else "-",
            ]
            for name, stat in sorted(
                self.phases.items(), key=lambda kv: -kv[1].total_seconds
            )
        ]
        parts = [
            ascii_table(
                ["phase", "count", "total s", "mean ms", "max ms", "of wall"],
                phase_rows,
                title=title or "phase breakdown",
            )
        ]
        counter_rows = [
            [name, value] for name, value in sorted(self.counters.items())
        ]
        if counter_rows:
            parts.append("")
            parts.append(ascii_table(["counter", "n"], counter_rows))
        tail = f"{self.events} events"
        if self.dropped:
            tail += f" ({self.dropped} dropped by the ring buffer)"
        if wall > 0:
            tail += f", {wall:.2f}s wall-clock"
        parts.append("")
        parts.append(tail)
        return "\n".join(parts)


__all__ = ["TelemetryReport", "PhaseStat", "INJECTION_PHASES"]
