"""Structured campaign telemetry: tracing, metrics, and trace export.

The paper's evaluation is an exercise in measuring what happens inside
thousands of injection runs; this package gives the reproduction the same
fine-grained accounting for itself.  A :class:`Tracer` records typed spans
(phase timings), counters (outcome / heuristic / signal tallies) and
gauges (queue depth) into a ring buffer with monotonic timestamps; a
:class:`TelemetryReport` aggregates one or many tracers into per-phase
statistics; :mod:`repro.telemetry.export` renders the raw event stream as
a JSON-lines trace file or a Chrome ``trace_event`` view.

Design contract (see docs/ARCHITECTURE.md, "Observability"):

* **Near-zero cost when disabled.**  Code instruments itself against
  :data:`NULL_TRACER`, whose methods are allocation-free no-ops; the CPU
  hot loops are never touched.
* **Picklable flushes.**  Worker processes drain their tracer per shard
  through :meth:`Tracer.export` (plain dicts/lists), and the parent
  merges the payloads with :meth:`Tracer.absorb`.
* **Deterministic aggregation.**  Counter sums and injection-phase counts
  depend only on the campaign's plans, never on sharding or wall-clock,
  so the same seed yields the same :meth:`TelemetryReport.signature`
  whether a campaign ran on 1 worker or 8.
"""

from repro.telemetry.export import (
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.report import (
    INJECTION_PHASES,
    PhaseStat,
    TelemetryReport,
)
from repro.telemetry.tracer import (
    DEFAULT_CAPACITY,
    NULL_TRACER,
    NullTracer,
    Tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "DEFAULT_CAPACITY",
    "TelemetryReport",
    "PhaseStat",
    "INJECTION_PHASES",
    "write_jsonl",
    "read_jsonl",
    "chrome_trace",
    "write_chrome_trace",
]
