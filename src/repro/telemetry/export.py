"""Trace export: JSON-lines files and the Chrome ``trace_event`` view.

Two consumers, two formats:

* **JSONL** -- one JSON object per line, header first.  Trivially
  greppable/streamable, and :func:`read_jsonl` round-trips it back into
  the canonical record list for offline aggregation (the CI smoke job
  re-derives the phase breakdown from the file alone).
* **Chrome trace** -- the ``trace_event`` JSON schema understood by
  ``chrome://tracing`` / Perfetto: spans become complete (``"X"``)
  events, instants ``"i"``, gauges counter (``"C"``) events, with
  per-stream ``thread_name`` metadata so shards appear as labelled
  tracks.  Timestamps are microseconds on the merged campaign timeline.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Schema version written into every exported trace header.
TRACE_FORMAT = 1


# -- JSON lines --------------------------------------------------------------


def write_jsonl(
    path: str | Path,
    records: list[dict],
    counters: dict[str, int] | None = None,
    meta: dict | None = None,
) -> Path:
    """Write a trace as JSON lines: one ``meta`` header, then the events."""
    path = Path(path)
    header = {
        "kind": "meta",
        "format": TRACE_FORMAT,
        "counters": dict(counters or {}),
        **(meta or {}),
    }
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(json.dumps(record, sort_keys=True) for record in records)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines) + "\n")
    return path


def read_jsonl(path: str | Path) -> tuple[dict, list[dict]]:
    """Read a JSONL trace back as ``(meta, records)``.

    Raises ``ValueError`` on a missing/foreign header so consumers fail
    loudly on a file that merely looks like a trace.
    """
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError(f"empty trace file {path}")
    meta = json.loads(lines[0])
    if not isinstance(meta, dict) or meta.get("kind") != "meta":
        raise ValueError(f"{path} does not start with a trace meta header")
    if meta.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"unsupported trace format {meta.get('format')!r} in {path}"
        )
    return meta, [json.loads(line) for line in lines[1:] if line]


# -- Chrome trace_event ------------------------------------------------------


def chrome_trace(records: list[dict], process_name: str = "repro campaign") -> dict:
    """The ``trace_event`` document for *records* (canonical tracer output).

    Stream labels (``tid`` strings) are mapped to small integers with
    ``thread_name`` metadata events, which is what the Chrome viewer
    expects; the mapping is assigned in first-appearance order of the
    (timestamp-sorted) records, so it is stable for a given trace.
    """
    tids: dict[str, int] = {}
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]

    def tid_of(label: str) -> int:
        tid = tids.get(label)
        if tid is None:
            tid = tids[label] = len(tids)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        return tid

    for record in records:
        tid = tid_of(record["tid"])
        ts = round(record["ts"] * 1e6, 3)
        kind = record["kind"]
        if kind == "span":
            events.append(
                {
                    "name": record["name"],
                    "cat": "campaign",
                    "ph": "X",
                    "ts": ts,
                    "dur": round(record["dur"] * 1e6, 3),
                    "pid": 0,
                    "tid": tid,
                }
            )
        elif kind == "instant":
            events.append(
                {
                    "name": record["name"],
                    "cat": "campaign",
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": 0,
                    "tid": tid,
                    "args": record.get("args") or {},
                }
            )
        elif kind == "gauge":
            events.append(
                {
                    "name": record["name"],
                    "cat": "campaign",
                    "ph": "C",
                    "ts": ts,
                    "pid": 0,
                    "tid": tid,
                    "args": {record["name"]: record["value"]},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | Path, records: list[dict], process_name: str = "repro campaign"
) -> Path:
    """Write the Chrome ``trace_event`` JSON for *records* to *path*."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(records, process_name)) + "\n")
    return path


__all__ = [
    "write_jsonl",
    "read_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "TRACE_FORMAT",
]
