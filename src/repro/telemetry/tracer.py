"""The tracer: a ring-buffered structured-event recorder.

A :class:`Tracer` is a cheap append-only log of what one execution stream
(the campaign parent, or one worker shard) did and when.  Three event
kinds cover the campaign engine's needs:

``span``
    A named duration with nesting depth -- one timed phase (``restore``,
    ``post-fault``, ``journal-append``).  Opened with :meth:`Tracer.span`
    as a context manager; the record is written on exit, exceptions
    included, so failed shards still account their time.
``instant``
    A point event with optional arguments (``flip``, ``retry``,
    ``quarantine``, ``progress`` probes).
``gauge``
    A sampled value over time (``queue-depth``).

Counters are kept separately in a plain dict (name -> int): they are the
deterministic backbone of the aggregated report, and summing dicts is
order-independent, which is what makes the cross-process merge reproduce
the serial campaign's tallies exactly.

Timestamps come from :func:`time.perf_counter` and are stored relative to
the tracer's birth; :meth:`export` produces a picklable payload and
:meth:`absorb` merges one into a parent tracer, shifting times by a
caller-supplied offset so worker streams land on the parent's timeline.

The ring buffer (``capacity`` events) bounds memory at large N: when full,
the oldest event is dropped and ``dropped`` incremented -- counters are
never dropped, so aggregated tallies stay exact even when the raw trace
is truncated.

Disabled tracing is the module-level :data:`NULL_TRACER` singleton: every
method is a no-op and :meth:`NullTracer.span` returns one shared, reusable
null context manager, so instrumented code costs one attribute lookup and
one method call per phase when telemetry is off.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter

#: Default ring-buffer capacity (events, not counters).
DEFAULT_CAPACITY = 100_000


class _NullSpan:
    """Shared no-op context manager returned by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    ``enabled`` is False so instrumented code can skip building event
    arguments entirely (``if tracer.enabled: ...``) on hot-ish paths.
    """

    __slots__ = ()

    enabled = False
    probe_interval = 0

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        pass

    def instant(self, name: str, **args) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def now(self) -> float:
        return 0.0


NULL_TRACER = NullTracer()


class _Span:
    """One open span; records itself on ``__exit__``."""

    __slots__ = ("tracer", "name", "t0")

    def __init__(self, tracer: "Tracer", name: str):
        self.tracer = tracer
        self.name = name

    def __enter__(self) -> "_Span":
        self.tracer._depth += 1
        self.t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        end = perf_counter()
        tracer = self.tracer
        tracer._depth -= 1
        tracer._append(
            {
                "kind": "span",
                "name": self.name,
                "ts": self.t0 - tracer._t0,
                "dur": end - self.t0,
                "depth": tracer._depth,
                "tid": tracer.tid,
            }
        )
        return False


class Tracer:
    """Enabled structured-event recorder for one execution stream.

    ``tid`` labels the stream (``"engine"``, ``"shard-0042"``);
    ``probe_interval`` > 0 asks instrumented run loops to emit
    ``progress`` instants every that many retired instructions.
    """

    __slots__ = (
        "tid",
        "probe_interval",
        "capacity",
        "counters",
        "dropped",
        "_events",
        "_foreign",
        "_depth",
        "_t0",
    )

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        tid: str = "main",
        probe_interval: int = 0,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if probe_interval < 0:
            raise ValueError("probe_interval must be >= 0")
        self.tid = tid
        self.probe_interval = probe_interval
        self.capacity = capacity
        self.counters: dict[str, int] = {}
        self.dropped = 0
        self._events: deque[dict] = deque(maxlen=capacity)
        self._foreign: list[dict] = []
        self._depth = 0
        self._t0 = perf_counter()

    # -- recording ---------------------------------------------------------

    def _append(self, record: dict) -> None:
        events = self._events
        if len(events) == self.capacity:
            self.dropped += 1  # deque(maxlen) evicts the oldest on append
        events.append(record)

    def span(self, name: str) -> _Span:
        """Open a timed span; use as ``with tracer.span("restore"):``."""
        return _Span(self, name)

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter *name* by *n* (never ring-buffered)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def instant(self, name: str, **args) -> None:
        """Record a point event, with optional structured arguments."""
        self._append(
            {
                "kind": "instant",
                "name": name,
                "ts": perf_counter() - self._t0,
                "args": args or None,
                "tid": self.tid,
            }
        )

    def gauge(self, name: str, value: float) -> None:
        """Sample a time-varying value (e.g. queue depth)."""
        self._append(
            {
                "kind": "gauge",
                "name": name,
                "ts": perf_counter() - self._t0,
                "value": float(value),
                "tid": self.tid,
            }
        )

    def now(self) -> float:
        """Seconds since this tracer was created (its timeline origin)."""
        return perf_counter() - self._t0

    # -- merge protocol ----------------------------------------------------

    def export(self) -> dict:
        """Picklable payload of everything recorded so far.

        Timestamps are relative to this tracer's birth; the receiving
        :meth:`absorb` re-bases them onto its own timeline.
        """
        return {
            "tid": self.tid,
            "records": list(self._events),
            "counters": dict(self.counters),
            "dropped": self.dropped,
        }

    def absorb(self, payload: dict, offset: float = 0.0) -> None:
        """Merge an exported payload from another tracer.

        *offset* (seconds on this tracer's timeline) shifts the payload's
        events to where its stream actually ran -- the engine passes
        ``commit_time - shard_duration`` so worker spans line up with the
        parent's view in the Chrome trace.  Counter merging is a plain
        sum, hence order-independent: absorbing shards in any completion
        order yields identical aggregated counters.
        """
        for name, value in payload["counters"].items():
            self.count(name, value)
        self.dropped += payload["dropped"]
        for record in payload["records"]:
            shifted = dict(record)
            shifted["ts"] = record["ts"] + offset
            self._foreign.append(shifted)

    def records(self) -> list[dict]:
        """All events (own + absorbed), sorted by timestamp then tid.

        The sort makes the exported trace independent of shard completion
        order, so two runs of the same campaign differ only in the
        timestamp *values*, never in record ordering logic.
        """
        merged = list(self._events) + self._foreign
        merged.sort(key=lambda r: (r["ts"], r["tid"], r["name"]))
        return merged


__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "DEFAULT_CAPACITY"]
