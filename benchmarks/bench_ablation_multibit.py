"""Ablation (extension): multi-bit upsets.

The paper's Section-8 hardware discussion notes that ~30% of uncorrectable
memory errors manifest as multiple flipped bits and that nothing in LetGo
fundamentally limits it to single flips.  This bench injects 1-, 2- and
4-bit upsets (all in the target register) and tracks how crash rate and
LetGo's metrics move.
"""

import os

import numpy as np

from repro.apps import make_app
from repro.core import LETGO_E
from repro.faultinject import plan_injections, run_campaign
from repro.reporting import ascii_table, pct

from conftest import SEED, write_artifact

N = int(os.environ.get("REPRO_BENCH_N", "150"))
APP = "pennant"


def build_table():
    app = make_app(APP)
    rows = []
    series = {}
    for n_bits in (1, 2, 4):
        rng = np.random.default_rng(SEED)
        plans = plan_injections(rng, app.golden.instret, N, n_bits=n_bits)
        campaign = run_campaign(
            app, N, seed=SEED, config=LETGO_E, plans=plans
        )
        m = campaign.metrics()
        series[n_bits] = campaign
        rows.append(
            [
                n_bits,
                pct(campaign.crash_rate().value),
                pct(m.continuability.value),
                pct(m.continued_correct.value),
                pct(campaign.sdc_rate().value),
            ]
        )
    text = ascii_table(
        ["bits", "crash rate", "continuability", "continued correct", "SDC rate"],
        rows,
        title=f"Multi-bit upset ablation on {APP.upper()} (n={N} per width)",
    )
    return series, text


def test_ablation_multibit(benchmark):
    series, text = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print("\n" + text)
    write_artifact("ablation_multibit.txt", text)

    crash1 = series[1].crash_rate().value
    crash4 = series[4].crash_rate().value
    # wider upsets crash at least as often (more high bits hit)
    assert crash4 >= crash1 - 0.05
    # LetGo still elides a substantial share even for 4-bit upsets
    assert series[4].metrics().continuability.value > 0.3
