"""Telemetry overhead and the per-phase baseline trajectory.

Times the identical (app, n, seed, config) campaign with telemetry off
and on.  Off is the default and must stay effectively free (the null
tracer is one attribute lookup + no-op call per phase); on buys the full
phase/counter accounting and is allowed a modest, bounded cost.

The enabled run's aggregated phase timings are recorded to
``results/BENCH_phases.json`` -- the baseline trajectory future perf PRs
diff against: a change that shrinks ``post-fault`` or ``restore`` seconds
per injection shows up here before it shows up in end-to-end wall-clock.

Also runnable standalone: ``python benchmarks/bench_campaign_telemetry.py``.
"""

import json
import os
import platform
import sys
from pathlib import Path
from time import perf_counter

from repro.core import LETGO_E
from repro.faultinject import CampaignConfig, CampaignEngine

from conftest import RESULTS_DIR

TELEMETRY_N = int(os.environ.get("REPRO_BENCH_TELEMETRY_N", "150"))
SEED = 20170626
APP = "pennant"

#: Enabled-telemetry slowdown ceiling (generous: CI runners are noisy;
#: the point is catching an accidental hot-path regression, not 1%).
MAX_ENABLED_OVERHEAD = 1.25


def _measure(app, telemetry: bool):
    engine = CampaignEngine(
        config=CampaignConfig(jobs=1, telemetry=telemetry)
    )
    t0 = perf_counter()
    result = engine.run(app, TELEMETRY_N, SEED, LETGO_E)
    return perf_counter() - t0, result, engine.telemetry


def run_bench(app) -> dict:
    app.golden  # keep compile/profile out of both timings
    _measure(app, False)  # warm caches (ladder, closure tables)

    t_off, result_off, report_off = _measure(app, False)
    t_on, result_on, report_on = _measure(app, True)

    assert report_off is None
    assert report_on is not None
    # Telemetry observes, never participates.
    assert result_on.counts == result_off.counts
    assert report_on.outcome_counts() == {
        outcome.value: count for outcome, count in result_on.counts.items()
    }

    overhead = t_on / t_off if t_off > 0 else 1.0
    doc = {
        "app": APP,
        "n": TELEMETRY_N,
        "seed": SEED,
        "config": "LetGo-E",
        "python": platform.python_version(),
        "wall_seconds_disabled": round(t_off, 4),
        "wall_seconds_enabled": round(t_on, 4),
        "enabled_overhead": round(overhead, 4),
        "phases": {
            name: {
                "count": stat.count,
                "total_seconds": round(stat.total_seconds, 6),
                "mean_ms": round(stat.mean_seconds * 1e3, 4),
                "max_ms": round(stat.max_seconds * 1e3, 4),
            }
            for name, stat in sorted(report_on.phases.items())
        },
        "counters": dict(sorted(report_on.counters.items())),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_phases.json"
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def test_telemetry_overhead_and_phase_baseline(apps):
    doc = run_bench(apps[APP])
    assert doc["enabled_overhead"] <= MAX_ENABLED_OVERHEAD, (
        f"telemetry-enabled campaign {doc['enabled_overhead']:.2f}x slower "
        f"than disabled (ceiling {MAX_ENABLED_OVERHEAD}x)"
    )
    # The trajectory must cover the paper loop's phases.
    for phase in ("restore", "advance-to-site", "post-fault"):
        assert doc["phases"][phase]["count"] == TELEMETRY_N


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).parent))
    from repro.apps import make_app

    doc = run_bench(make_app(APP))
    print(json.dumps(doc, indent=2))
    print(
        f"\ntelemetry overhead: {doc['enabled_overhead']:.3f}x "
        f"({doc['wall_seconds_disabled']:.2f}s -> "
        f"{doc['wall_seconds_enabled']:.2f}s), "
        f"baseline written to {RESULTS_DIR / 'BENCH_phases.json'}"
    )
