"""Section 8: LetGo on a direct method (HPL).

Paper findings to reproduce in shape:
* without LetGo, fewer faults crash HPL than the iterative apps (34% vs
  ~56%), and the residual check is far more selective;
* with LetGo, continuability is decent (~70%) but continued runs produce
  relatively more detected/SDC outcomes;
* in the C/R simulation, the standard-C/R efficiency for HPL is low
  (~40% in the paper's configuration) and LetGo's improvement is marginal
  compared to the iterative apps.
"""

from repro.apps import app_names
from repro.crsim import (
    PAPER_APP_PARAMS,
    SystemParams,
    YEAR,
    compare_efficiency,
)
from repro.reporting import ascii_table, pct

from conftest import BENCH_N, write_artifact


def build_injection_report(hpl_campaign, iterative_campaigns):
    hpl = hpl_campaign["LetGo-E"]
    m = hpl.metrics()
    rows = [
        ["crash rate (P_crash)", pct(hpl.estimate_p_crash())],
        ["acceptance selectivity P_v", pct(hpl.estimate_p_v())],
        ["continuability", pct(m.continuability.value)],
        ["continued_correct", pct(m.continued_correct.value)],
        ["continued_detected", pct(m.continued_detected.value)],
        ["continued_SDC", pct(m.continued_sdc.value)],
        ["overall SDC rate", pct(hpl.sdc_rate().value)],
    ]
    iter_crash = sum(
        iterative_campaigns[n]["LetGo-E"].estimate_p_crash()
        for n in app_names(iterative_only=True)
    ) / 5
    iter_p_v = sum(
        iterative_campaigns[n]["LetGo-E"].estimate_p_v()
        for n in app_names(iterative_only=True)
    ) / 5
    rows.append(["iterative-suite mean crash rate", pct(iter_crash)])
    rows.append(["iterative-suite mean P_v", pct(iter_p_v)])
    text = ascii_table(
        ["quantity", "value"],
        rows,
        title=f"Section 8: HPL under fault injection (n={BENCH_N})",
    )
    return hpl, iter_p_v, text


def test_sec8_hpl_injection(benchmark, hpl_campaign, iterative_campaigns):
    hpl, iter_p_v, text = benchmark.pedantic(
        build_injection_report,
        args=(hpl_campaign, iterative_campaigns),
        rounds=1,
        iterations=1,
    )
    print("\n" + text)
    write_artifact("sec8_hpl_injection.txt", text)

    metrics = hpl.metrics()
    assert metrics.crash_count > 0
    # the residual check is much more selective than the iterative apps'
    assert hpl.estimate_p_v() < iter_p_v
    # decent continuability (paper ~70%), but not perfect
    assert 0.3 < metrics.continuability.value <= 1.0


def test_sec8_hpl_efficiency_marginal(benchmark):
    system = SystemParams(t_chk=1200.0, mtbfaults=21600.0)
    app = PAPER_APP_PARAMS["hpl"]

    def run():
        import numpy as np

        from repro.crsim import simulate_letgo, young_interval

        hpl = compare_efficiency(system, app, needed=2 * YEAR, seeds=[1, 2, 3])
        lulesh = compare_efficiency(
            system, PAPER_APP_PARAMS["lulesh"], needed=2 * YEAR, seeds=[1, 2, 3]
        )
        # M-L pinned to the standard interval: with HPL's selective-but-
        # often-failing residual check, extending the checkpoint interval
        # via MTBF_letgo backfires; without the extension LetGo's gain is
        # the paper's "marginal improvement".
        t_std = young_interval(system.t_chk, app.mtbf_failures(system.mtbfaults))
        pinned = float(
            np.mean(
                [
                    simulate_letgo(
                        system, app, needed=2 * YEAR, seed=s, interval=t_std
                    ).efficiency
                    for s in (1, 2, 3)
                ]
            )
        )
        return hpl, lulesh, pinned

    hpl, lulesh, pinned = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["HPL (extended T)", f"{hpl.standard:.4f}", f"{hpl.letgo:.4f}",
         f"{hpl.gain_absolute:+.4f}"],
        ["HPL (same T)", f"{hpl.standard:.4f}", f"{pinned:.4f}",
         f"{pinned - hpl.standard:+.4f}"],
        ["LULESH", f"{lulesh.standard:.4f}", f"{lulesh.letgo:.4f}",
         f"{lulesh.gain_absolute:+.4f}"],
    ]
    text = ascii_table(
        ["App", "Standard C/R", "C/R + LetGo", "abs gain"],
        rows,
        title="Section 8: HPL efficiency (paper: standard ~40%, marginal LetGo gain)",
    )
    print("\n" + text)
    write_artifact("sec8_hpl_efficiency.txt", text)

    assert hpl.standard < lulesh.standard
    # LetGo's gain on HPL is smaller than on the iterative flagship
    assert hpl.gain_absolute < lulesh.gain_absolute
    # pinned-interval M-L reproduces the "marginal improvement" claim
    assert abs(pinned - hpl.standard) < 0.02
