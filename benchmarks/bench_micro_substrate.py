"""Microbenchmarks of the substrate (pytest-benchmark proper).

Times the building blocks every experiment leans on: interpreter
throughput, compile time, loader, profiler, one injection run, one C/R
simulation.  These are the numbers that determine how large a campaign a
given time budget can afford.
"""

import pytest

from repro.analysis import FunctionTable, profile_program
from repro.core import LETGO_E
from repro.crsim import PAPER_APP_PARAMS, SystemParams, simulate_letgo
from repro.faultinject import InjectionPlan, run_injection
from repro.isa import assemble, disassemble, encode_program, decode_program
from repro.lang import compile_unit
from repro.machine import Process

TIGHT_LOOP = """
.text
.entry main
.func main
main:
    movi r1, #0
    movi r2, #200000
loop:
    addi r1, r1, #1
    slt r3, r1, r2
    bnez r3, loop
    movi r0, #0
    halt
"""


def test_interpreter_throughput(benchmark):
    program = assemble(TIGHT_LOOP)

    def run():
        process = Process.load(program)
        process.run(10**7)
        return process.cpu.instret

    instret = benchmark(run)
    assert instret == 600_004


def test_compile_pennant(benchmark, apps):
    source = apps["pennant"].source
    unit = benchmark(lambda: compile_unit(source, "pennant"))
    assert unit.program.functions


def test_assemble_disassemble_roundtrip(benchmark, apps):
    program = apps["pennant"].program
    text = disassemble(program)
    back = benchmark(lambda: assemble(text))
    assert back.instrs == program.instrs


def test_encode_decode_image(benchmark, apps):
    program = apps["comd"].program
    blob = encode_program(program)
    back = benchmark(lambda: decode_program(blob))
    assert back.checksum() == program.checksum()


def test_loader(benchmark, apps):
    program = apps["lulesh"].program
    process = benchmark(lambda: Process.load(program))
    assert process.cpu.pc == program.entry_pc


def test_profiler_run(benchmark, apps):
    program = apps["pennant"].program
    profile = benchmark.pedantic(
        lambda: profile_program(program), rounds=2, iterations=1
    )
    assert profile.total == apps["pennant"].golden.instret


def test_function_table_build(benchmark, apps):
    program = apps["snap"].program
    table = benchmark(lambda: FunctionTable(program))
    assert len(table) > 3


def test_single_injection_run(benchmark, apps):
    app = apps["pennant"]
    plan = InjectionPlan(dyn_index=20_000, bit=45, reg_choice=0.5)
    result = benchmark.pedantic(
        lambda: run_injection(app, plan, LETGO_E), rounds=3, iterations=1
    )
    assert result.outcome is not None


def test_crsim_one_run(benchmark):
    system = SystemParams(t_chk=120.0, mtbfaults=21600.0)
    month = 30 * 24 * 3600.0
    result = benchmark.pedantic(
        lambda: simulate_letgo(system, PAPER_APP_PARAMS["lulesh"], needed=month, seed=1),
        rounds=3,
        iterations=1,
    )
    assert result.useful >= month
