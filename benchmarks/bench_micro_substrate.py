"""Microbenchmarks of the substrate (pytest-benchmark proper).

Times the building blocks every experiment leans on: execution backend
throughput, compile time, loader, profiler, one injection run, one C/R
simulation.  These are the numbers that determine how large a campaign a
given time budget can afford.

Also runnable standalone -- ``python benchmarks/bench_micro_substrate.py``
times both execution backends on the tight loop without pytest-benchmark
and records ``results/BENCH_micro.json`` (backend -> instructions/sec),
the first point of the perf trajectory CI tracks.
"""

import json
import platform
import sys
from pathlib import Path
from time import perf_counter

import pytest

from repro.analysis import FunctionTable, profile_program
from repro.core import LETGO_E
from repro.crsim import PAPER_APP_PARAMS, SystemParams, simulate_letgo
from repro.faultinject import InjectionPlan, run_injection
from repro.isa import assemble, disassemble, encode_program, decode_program
from repro.lang import compile_unit
from repro.machine import Process

TIGHT_LOOP = """
.text
.entry main
.func main
main:
    movi r1, #0
    movi r2, #200000
loop:
    addi r1, r1, #1
    slt r3, r1, r2
    bnez r3, loop
    movi r0, #0
    halt
"""


#: Retirements of one TIGHT_LOOP run.
TIGHT_LOOP_INSTRET = 600_004

BACKENDS = ("interpreter", "compiled")


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_throughput(benchmark, backend):
    program = assemble(TIGHT_LOOP)
    # Warm run: compiles the closure table once; the per-image code cache
    # makes every subsequent Process.load of the same program reuse it,
    # exactly as engine shards do.
    Process.load(program, backend=backend).run(10**7)

    def run():
        process = Process.load(program, backend=backend)
        process.run(10**7)
        return process.cpu.instret

    instret = benchmark(run)
    assert instret == TIGHT_LOOP_INSTRET


def test_compile_pennant(benchmark, apps):
    source = apps["pennant"].source
    unit = benchmark(lambda: compile_unit(source, "pennant"))
    assert unit.program.functions


def test_assemble_disassemble_roundtrip(benchmark, apps):
    program = apps["pennant"].program
    text = disassemble(program)
    back = benchmark(lambda: assemble(text))
    assert back.instrs == program.instrs


def test_encode_decode_image(benchmark, apps):
    program = apps["comd"].program
    blob = encode_program(program)
    back = benchmark(lambda: decode_program(blob))
    assert back.checksum() == program.checksum()


def test_loader(benchmark, apps):
    program = apps["lulesh"].program
    process = benchmark(lambda: Process.load(program))
    assert process.cpu.pc == program.entry_pc


def test_profiler_run(benchmark, apps):
    program = apps["pennant"].program
    profile = benchmark.pedantic(
        lambda: profile_program(program), rounds=2, iterations=1
    )
    assert profile.total == apps["pennant"].golden.instret


def test_function_table_build(benchmark, apps):
    program = apps["snap"].program
    table = benchmark(lambda: FunctionTable(program))
    assert len(table) > 3


def test_single_injection_run(benchmark, apps):
    app = apps["pennant"]
    plan = InjectionPlan(dyn_index=20_000, bit=45, reg_choice=0.5)
    result = benchmark.pedantic(
        lambda: run_injection(app, plan, LETGO_E), rounds=3, iterations=1
    )
    assert result.outcome is not None


def test_crsim_one_run(benchmark):
    system = SystemParams(t_chk=120.0, mtbfaults=21600.0)
    month = 30 * 24 * 3600.0
    result = benchmark.pedantic(
        lambda: simulate_letgo(system, PAPER_APP_PARAMS["lulesh"], needed=month, seed=1),
        rounds=3,
        iterations=1,
    )
    assert result.useful >= month


# -- standalone smoke mode ---------------------------------------------------


def _throughput(backend: str, repeats: int = 3) -> float:
    """Best-of-*repeats* instructions/sec on TIGHT_LOOP (code cache warm)."""
    program = assemble(TIGHT_LOOP)
    Process.load(program, backend=backend).run(10**7)  # warm the code cache
    best = 0.0
    for _ in range(repeats):
        process = Process.load(program, backend=backend)
        start = perf_counter()
        process.run(10**7)
        elapsed = perf_counter() - start
        assert process.cpu.instret == TIGHT_LOOP_INSTRET
        best = max(best, TIGHT_LOOP_INSTRET / elapsed)
    return best


def record_backend_throughput(path: Path | None = None) -> dict:
    """Time both backends and write ``BENCH_micro.json``."""
    if path is None:
        path = Path(__file__).parent / "results" / "BENCH_micro.json"
    backends = {
        backend: {"instructions_per_sec": round(_throughput(backend))}
        for backend in BACKENDS
    }
    payload = {
        "benchmark": "tight-loop substrate throughput",
        "workload_instret": TIGHT_LOOP_INSTRET,
        "python": platform.python_version(),
        "backends": backends,
        "compiled_speedup": round(
            backends["compiled"]["instructions_per_sec"]
            / backends["interpreter"]["instructions_per_sec"],
            2,
        ),
    }
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


if __name__ == "__main__":
    report = record_backend_throughput()
    for backend, row in report["backends"].items():
        print(f"{backend:12s} {row['instructions_per_sec'] / 1e6:6.2f} M instr/s")
    print(f"compiled speedup: {report['compiled_speedup']:.2f}x")
    if report["compiled_speedup"] < 1.5:
        print("FAIL: compiled backend below the 1.5x floor", file=sys.stderr)
        raise SystemExit(1)
