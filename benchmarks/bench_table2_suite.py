"""Table 2: benchmark suite description.

Regenerates the suite table: domain, dynamic instruction count, SDC
comparison data, and acceptance-check criterion per application.
"""

from repro.apps import APP_CLASSES
from repro.reporting import ascii_table

from conftest import write_artifact

#: Table-2 column text per app (criterion summaries match the paper's).
CRITERIA = {
    "lulesh": "iterations exact; origin energy to 6 digits; symmetry < 1e-8",
    "clamr": "threshold for the mass change per iteration",
    "hpl": "residual check on the solution vector",
    "comd": "energy conservation",
    "snap": "flux solution output symmetric",
    "pennant": "energy conservation",
}

SDC_DATA = {
    "lulesh": "Mesh (zone energies)",
    "clamr": "Mesh (cells, heights, widths)",
    "hpl": "Solution vector",
    "comd": "Each atom's property",
    "snap": "Flux solution",
    "pennant": "Mesh (energies, positions)",
}


def build_table(apps):
    rows = []
    for cls in APP_CLASSES:
        app = apps[cls.name]
        rows.append(
            [
                app.name,
                app.domain,
                f"{app.golden.instret:,}",
                SDC_DATA[app.name],
                CRITERIA[app.name],
            ]
        )
    return rows, ascii_table(
        ["App", "Domain", "Dyn. instrs", "SDC data", "Acceptance check"],
        rows,
        title="Table 2: benchmark description",
    )


def test_table2_suite_description(benchmark, apps):
    rows, text = benchmark.pedantic(
        build_table, args=(apps,), rounds=1, iterations=1
    )
    print("\n" + text)
    write_artifact("table2_suite.txt", text)
    assert len(rows) == 6
    # every app's acceptance check passes its own golden run
    for app in apps.values():
        assert app.acceptance_check(list(app.golden.output))
