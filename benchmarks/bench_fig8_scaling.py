"""Figure 8: efficiency as the system scales from 100k to 400k nodes.

MTBF shrinks inversely with node count (12 h at 100k nodes).  Shown for
CLAMR and PENNANT at T_chk = 12 s and 1200 s, as in the paper.  Expected
shape: efficiency falls with scale for both schemes, but the *rate of
decrease is lower with LetGo*.
"""

from repro.crsim import PAPER_APP_PARAMS, YEAR, sweep_system_scale
from repro.reporting import ascii_table

from conftest import write_artifact

NEEDED = 2 * YEAR
SEEDS = [1, 2, 3]


def build_figure():
    rows = []
    series = {}
    for name in ("clamr", "pennant"):
        for t_chk in (12.0, 1200.0):
            points = sweep_system_scale(
                PAPER_APP_PARAMS[name], t_chk=t_chk, needed=NEEDED, seeds=SEEDS
            )
            series[(name, t_chk)] = points
            for nodes, c in points:
                rows.append(
                    [
                        name.upper(),
                        f"{t_chk:.0f}s",
                        f"{nodes:,}",
                        f"{c.standard:.4f}",
                        f"{c.letgo:.4f}",
                        f"{c.gain_absolute:+.4f}",
                    ]
                )
    text = ascii_table(
        ["App", "T_chk", "Nodes", "Standard C/R", "C/R + LetGo", "abs gain"],
        rows,
        title="Figure 8: efficiency vs system scale (MTBF 12h at 100k nodes)",
    )
    return series, text


def test_fig8_system_scaling(benchmark):
    series, text = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    print("\n" + text)
    write_artifact("fig8_scaling.txt", text)

    for (name, t_chk), points in series.items():
        standard = [c.standard for _, c in points]
        letgo = [c.letgo for _, c in points]
        label = f"{name}@{t_chk}"
        # efficiency decreases as the system scales
        assert standard[0] > standard[-1], label
        assert letgo[0] > letgo[-1], label
        # LetGo wins at every scale
        assert all(lg > st for lg, st in zip(letgo, standard)), label
        # LetGo's efficiency degrades more slowly (the paper's key claim)
        assert (standard[0] - standard[-1]) > (letgo[0] - letgo[-1]), label
        # and the gain widens with scale
        gains = [c.gain_absolute for _, c in points]
        assert gains[-1] > gains[0], label
