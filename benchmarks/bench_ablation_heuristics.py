"""Ablation (extension beyond the paper): per-heuristic contribution and
Heuristic-I fill values.

The paper evaluates only B (none) and E (both).  This bench also runs
H1-only and H2-only on a shared fault population, and compares fill
values for Heuristic I (section 4.2 says 0 was chosen "because the memory
often contains a lot of 0s" and defers alternatives to future work).
"""

import os

from repro.apps import make_app
from repro.core import LETGO_B, LETGO_E, LETGO_H1, LETGO_H2, LetGoConfig
from repro.faultinject import run_paired_campaigns
from repro.reporting import ascii_table, pct

from conftest import SEED, write_artifact

N = int(os.environ.get("REPRO_BENCH_N", "150"))

#: The ablation target: PENNANT crashes both via data pointers (H1
#: territory) and via frame registers (H2 territory).
APP = "pennant"


def build_variant_table(app):
    results = run_paired_campaigns(
        app, N, SEED, configs=[LETGO_B, LETGO_H1, LETGO_H2, LETGO_E]
    )
    rows = []
    summary = {}
    for name in ("LetGo-B", "LetGo-H1", "LetGo-H2", "LetGo-E"):
        m = results[name].metrics()
        summary[name] = m
        rows.append(
            [
                name,
                pct(m.continuability.value),
                pct(m.continued_correct.value),
                pct(m.continued_detected.value),
                pct(m.continued_sdc.value),
            ]
        )
    text = ascii_table(
        ["Variant", "Continuability", "Correct", "Detected", "SDC"],
        rows,
        title=f"Heuristic ablation on {APP.upper()} (paired, n={N})",
    )
    return summary, text


def test_ablation_heuristic_variants(benchmark):
    app = make_app(APP)
    summary, text = benchmark.pedantic(
        build_variant_table, args=(app,), rounds=1, iterations=1
    )
    print("\n" + text)
    write_artifact("ablation_heuristics.txt", text)

    b = summary["LetGo-B"].continuability.value
    e = summary["LetGo-E"].continuability.value
    h1 = summary["LetGo-H1"].continuability.value
    h2 = summary["LetGo-H2"].continuability.value
    # E is the envelope of the single-heuristic variants (within noise)
    assert e >= max(h1, h2) - 0.05
    # all variants elide at least what plain PC-advance does (within noise)
    assert min(h1, h2) >= b - 0.10
    assert summary["LetGo-E"].crash_count == summary["LetGo-B"].crash_count


def build_fill_table(app):
    fills = [0, 1, -1]
    rows = []
    outcomes = {}
    for fill in fills:
        config = LetGoConfig(
            name=f"fill={fill}",
            heuristic1=True,
            heuristic2=True,
            fill_int=fill,
            fill_float=float(fill),
        )
        result = run_paired_campaigns(app, N, SEED, configs=[config])[config.name]
        m = result.metrics()
        outcomes[fill] = m
        rows.append(
            [
                str(fill),
                pct(m.continuability.value),
                pct(m.continued_correct.value),
                pct(m.continued_sdc.value),
            ]
        )
    text = ascii_table(
        ["Fill value", "Continuability", "Correct", "SDC"],
        rows,
        title=f"Heuristic-I fill-value ablation on {APP.upper()} (n={N})",
    )
    return outcomes, text


def test_ablation_fill_values(benchmark):
    app = make_app(APP)
    outcomes, text = benchmark.pedantic(
        build_fill_table, args=(app,), rounds=1, iterations=1
    )
    print("\n" + text)
    write_artifact("ablation_fill_values.txt", text)
    # 0 (the paper's default) is at least as good on correctness as the
    # alternatives, within noise
    zero = outcomes[0].continued_correct.value
    assert zero >= max(o.continued_correct.value for o in outcomes.values()) - 0.15
