"""Figure 7: C/R efficiency with and without LetGo vs checkpoint overhead.

Paper setup: MTBFaults = 21600 s (MTBF 12 h), sync overhead 10%, T_chk in
{12, 120, 1200} s, shown for LULESH (largest gain) and SNAP (smallest).
Expected shape: efficiency decreases as T_chk grows; the LetGo gain
*increases* with T_chk; gains between ~1% and ~11% absolute.
"""

from repro.crsim import PAPER_APP_PARAMS, YEAR, sweep_checkpoint_overhead
from repro.reporting import ascii_table

from conftest import write_artifact

NEEDED = 2 * YEAR
SEEDS = [1, 2, 3]


def build_figure():
    rows = []
    series = {}
    for name in ("lulesh", "snap"):
        comparisons = sweep_checkpoint_overhead(
            PAPER_APP_PARAMS[name], needed=NEEDED, seeds=SEEDS
        )
        series[name] = comparisons
        for c in comparisons:
            rows.append(
                [
                    name.upper(),
                    f"{c.t_chk:.0f}s",
                    f"{c.standard:.4f}",
                    f"{c.letgo:.4f}",
                    f"{c.gain_absolute:+.4f}",
                    f"{c.gain_relative:.3f}x",
                ]
            )
    text = ascii_table(
        ["App", "T_chk", "Standard C/R", "C/R + LetGo", "abs gain", "rel gain"],
        rows,
        title="Figure 7: efficiency vs checkpoint overhead (MTBFaults=21600s, sync=10%)",
    )
    return series, text


def test_fig7_checkpoint_overhead(benchmark):
    series, text = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    print("\n" + text)
    write_artifact("fig7_efficiency.txt", text)

    for name, comparisons in series.items():
        gains = [c.gain_absolute for c in comparisons]
        standards = [c.standard for c in comparisons]
        # LetGo wins everywhere
        assert all(g > 0 for g in gains), name
        # the gain grows with checkpoint overhead
        assert gains[0] < gains[2], name
        # absolute efficiency decreases with checkpoint overhead
        assert standards[0] > standards[1] > standards[2], name
        # gains live in the paper's 1%-11% ballpark (wide slack)
        assert 0.001 < gains[0] < 0.05
        assert 0.02 < gains[2] < 0.20
    # LULESH gains at least comparably to SNAP at the small-T_chk end
    assert series["lulesh"][0].gain_absolute >= series["snap"][0].gain_absolute - 0.01
