"""In-vivo Figure 1: the three failure policies executed for real.

Runs the PENNANT proxy end-to-end on the machine under Poisson fault
arrivals with (a) no fault tolerance, (b) checkpoint/restart, and
(c) C/R + LetGo -- the scenario Figure 1 illustrates -- and measures
delivered efficiency directly instead of modelling it.  Expected shape,
matching both the figure and the Section-7 model: unprotected runs die;
C/R survives through rollbacks; LetGo converts most rollbacks into cheap
repairs and delivers at least C/R's efficiency.
"""

import os

import numpy as np

from repro.apps import make_app
from repro.checkpoint import CRParams, Policy, drive
from repro.core import LETGO_E
from repro.reporting import ascii_table

from conftest import write_artifact

SEEDS = range(int(os.environ.get("REPRO_INVIVO_SEEDS", "10")))
PARAMS = CRParams(interval=15_000, t_chk=3_000, t_letgo=100, mtbf_faults=12_000.0)


def build_study():
    app = make_app("pennant")
    rows = []
    stats = {}
    for policy in (Policy.NONE, Policy.CR, Policy.CR_LETGO):
        kwargs = {"letgo": LETGO_E} if policy is Policy.CR_LETGO else {}
        runs = [drive(app, PARAMS, policy, seed=s, **kwargs) for s in SEEDS]
        completed = sum(r.completed for r in runs)
        eff = float(np.mean([r.efficiency for r in runs]))
        rollbacks = sum(r.rollbacks for r in runs)
        repairs = sum(r.letgo_repairs for r in runs)
        sdc = sum(r.outcome == "sdc" for r in runs)
        stats[policy] = dict(
            completed=completed, eff=eff, rollbacks=rollbacks,
            repairs=repairs, sdc=sdc,
        )
        rows.append(
            [
                policy.value,
                f"{completed}/{len(list(SEEDS))}",
                f"{eff:.3f}",
                rollbacks,
                repairs,
                sdc,
            ]
        )
    text = ascii_table(
        ["policy", "completed", "mean efficiency", "rollbacks", "repairs", "SDC runs"],
        rows,
        title=(
            "In-vivo Figure 1 on PENNANT "
            f"(interval={PARAMS.interval}, t_chk={PARAMS.t_chk}, "
            f"MTBFaults={PARAMS.mtbf_faults:.0f} instructions)"
        ),
    )
    return stats, text


def test_invivo_figure1(benchmark):
    stats, text = benchmark.pedantic(build_study, rounds=1, iterations=1)
    print("\n" + text)
    write_artifact("invivo_figure1.txt", text)

    none, cr, lg = stats[Policy.NONE], stats[Policy.CR], stats[Policy.CR_LETGO]
    n = len(list(SEEDS))
    # unprotected runs die at this fault rate
    assert none["completed"] < n
    # C/R completes (nearly) everything, at a rollback cost
    assert cr["completed"] >= n - 2
    assert cr["rollbacks"] > 0
    # LetGo repairs crashes instead of rolling back...
    assert lg["repairs"] > 0
    assert lg["rollbacks"] < cr["rollbacks"]
    # ...and delivers at least C/R's efficiency (the paper's headline)
    assert lg["eff"] >= cr["eff"] - 0.02
    # both protected schemes beat the unprotected mean (dead runs deliver 0)
    assert cr["eff"] > none["eff"]
