"""Table 1: gdb signal handling information redefined by LetGo.

Regenerates the signal-disposition table the monitor installs and checks
it row-by-row against the paper.
"""

from repro.core import LETGO_E, Monitor
from repro.machine import Signal
from repro.reporting import ascii_table

from conftest import write_artifact

PAPER_ROWS = {
    "SIGSEGV": ("Yes", "No", "Segfault"),
    "SIGBUS": ("Yes", "No", "Bus error"),
    "SIGABRT": ("Yes", "No", "Aborted"),
}


def build_table():
    monitor = Monitor(LETGO_E)
    rows = [policy.row() for policy in monitor.signal_table()]
    return rows, ascii_table(
        ["Signal", "Stop", "Pass to program", "Description"],
        rows,
        title="Table 1: signal handling redefined by LetGo",
    )


def test_table1_signal_dispositions(benchmark):
    rows, text = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print("\n" + text)
    write_artifact("table1_signals.txt", text)
    by_name = {r[0]: r[1:] for r in rows}
    for signal, expected in PAPER_ROWS.items():
        assert by_name[signal] == expected, signal
    # SIGFPE stays on the default path (not in the paper's table)
    assert by_name["SIGFPE"][0] == "No"
    assert len(rows) == len(Signal)
