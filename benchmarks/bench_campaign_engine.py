"""Campaign engine speedup: naive serial loop vs ladder vs fan-out.

Times the identical (app, n, seed, config) campaign three ways:

* ``naive``   -- the seed behaviour: one process per injection, golden
  prefix replayed from instruction 0, strictly serial;
* ``ladder``  -- snapshot-ladder prefix reuse, still one core (the timing
  includes building the ladder, i.e. the extra golden run);
* ``engine``  -- ladder plus multiprocess fan-out across up to 4 workers.

All three must produce identical outcome counts (the engine's determinism
guarantee); the recorded artifact is the speedup table.  The ≥3x
acceptance floor applies to the fan-out configuration on a multi-core
runner; on fewer cores only the ladder's serial win is asserted.
"""

import os
import time

from repro.core import LETGO_E
from repro.faultinject import NO_LADDER, CampaignConfig, CampaignEngine

from conftest import write_artifact

ENGINE_N = int(os.environ.get("REPRO_BENCH_ENGINE_N", "200"))
SEED = 20170626
APP = "pennant"
JOBS = max(1, min(4, os.cpu_count() or 1))


def test_campaign_engine_speedup(apps):
    app = apps[APP]
    app.golden  # keep compile/profile out of every timing

    rows = []
    counts = {}

    def measure(label, engine):
        t0 = time.perf_counter()
        result = engine.run(app, ENGINE_N, SEED, LETGO_E)
        elapsed = time.perf_counter() - t0
        counts[label] = result.counts
        rows.append((label, elapsed, engine.stats))
        return elapsed

    t_naive = measure(
        "naive",
        CampaignEngine(config=CampaignConfig(jobs=1, ladder_interval=NO_LADDER)),
    )
    t_ladder = measure("ladder", CampaignEngine(config=CampaignConfig(jobs=1)))
    t_engine = measure("engine", CampaignEngine(config=CampaignConfig(jobs=JOBS)))

    assert counts["ladder"] == counts["naive"]
    assert counts["engine"] == counts["naive"]

    ladder_speedup = t_naive / t_ladder
    engine_speedup = t_naive / t_engine
    lines = [
        f"campaign engine speedup -- app={APP} n={ENGINE_N} seed={SEED} "
        f"config=LetGo-E cores={os.cpu_count()} jobs={JOBS}",
        "",
        f"{'mode':8s} {'seconds':>9s} {'inj/s':>8s} {'speedup':>8s}  detail",
    ]
    for label, elapsed, stats in rows:
        lines.append(
            f"{label:8s} {elapsed:9.2f} {stats.injections_per_sec:8.1f} "
            f"{t_naive / elapsed:7.2f}x  {stats.describe()}"
        )
    lines += [
        "",
        f"ladder-only speedup : {ladder_speedup:.2f}x",
        f"full engine speedup : {engine_speedup:.2f}x",
        "outcome counts identical across all modes: yes",
    ]
    write_artifact("campaign_engine.txt", "\n".join(lines))

    if JOBS >= 4:
        assert engine_speedup >= 3.0, (
            f"engine {engine_speedup:.2f}x < 3x on a {JOBS}-worker run"
        )
    else:
        # Single/dual-core runner: the fan-out lever is unavailable, the
        # ladder must still pay for itself (including its build cost).
        assert ladder_speedup >= 1.3, f"ladder only {ladder_speedup:.2f}x"
    assert engine_speedup >= ladder_speedup * 0.8  # fan-out must not regress
