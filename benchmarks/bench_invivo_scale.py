"""In-vivo Figure 8: coordinated C/R vs C/R+LetGo as the cluster grows.

Runs the SPMD heat proxy at 2, 4 and 8 ranks with the per-node fault rate
held constant (so the cluster fault rate grows with scale, the Figure-8
setup) under coordinated checkpointing with global rollback.  Three
policies:

* plain coordinated C/R,
* C/R + comm-safe LetGo (crashes on send/recv instructions are never
  elided -- skipping a message tears the protocol),
* C/R + naive LetGo (elides everything, the single-process behaviour).

Expected shape: efficiency declines with scale; comm-safe LetGo beats
plain C/R at every scale because repairing one rank saves *all* ranks'
work; and comm-safe beats naive -- the parallel-specific hazard this
reproduction surfaced (elided messages become deadlocks and poisoned
checkpoints).
"""

import os

import numpy as np

from repro.core import LETGO_E
from repro.parallel import ClusterCRParams, ClusterPolicy, HeatApp, drive_cluster
from repro.reporting import ascii_table

from conftest import write_artifact

SEEDS = range(int(os.environ.get("REPRO_INVIVO_SEEDS", "10")))
#: Per-node mean instructions between faults (constant across scales).
PER_NODE_MTBF = 20_000.0
SIZES = (2, 4, 8)
TOTAL_CELLS = 48  # global problem held constant (strong scaling)

VARIANTS = (
    ("cr", ClusterPolicy.CR, {}),
    ("letgo-safe", ClusterPolicy.CR_LETGO, {"letgo": LETGO_E}),
    ("letgo-naive", ClusterPolicy.CR_LETGO, {"letgo": LETGO_E, "repair_comm": True}),
)


def build_study():
    rows = []
    stats = {}
    for size in SIZES:
        app = HeatApp(size=size, n_local=TOTAL_CELLS // size)
        app.golden
        params = ClusterCRParams(
            interval=20_000,
            t_chk=3_000,
            t_sync=300 * size,
            t_letgo=100,
            mtbf_faults=PER_NODE_MTBF / size,
        )
        for label, policy, kwargs in VARIANTS:
            runs = [
                drive_cluster(app, params, policy, seed=s, **kwargs)
                for s in SEEDS
            ]
            eff = float(np.mean([r.efficiency for r in runs]))
            stats[(size, label)] = {
                "eff": eff,
                "completed": sum(r.completed for r in runs),
                "rollbacks": sum(r.rollbacks for r in runs),
                "repairs": sum(r.letgo_repairs for r in runs),
            }
            entry = stats[(size, label)]
            rows.append(
                [size, label, f"{eff:.3f}",
                 f"{entry['completed']}/{len(list(SEEDS))}",
                 entry["rollbacks"], entry["repairs"]]
            )
    text = ascii_table(
        ["ranks", "policy", "mean efficiency", "completed", "rollbacks", "repairs"],
        rows,
        title=(
            "In-vivo Figure 8: coordinated C/R on the SPMD heat proxy "
            f"(per-node MTBF {PER_NODE_MTBF:.0f} instrs, strong scaling)"
        ),
    )
    return stats, text


def test_invivo_scaling(benchmark):
    stats, text = benchmark.pedantic(build_study, rounds=1, iterations=1)
    print("\n" + text)
    write_artifact("invivo_scale.txt", text)

    n = len(list(SEEDS))
    for size in SIZES:
        cr = stats[(size, "cr")]
        safe = stats[(size, "letgo-safe")]
        # both schemes keep the job alive
        assert cr["completed"] >= n - 2, size
        assert safe["completed"] >= n - 2, size
        # comm-safe LetGo does not lose to plain coordinated C/R
        assert safe["eff"] >= cr["eff"] - 0.02, size
    # LetGo actually repaired crashes
    assert sum(stats[(s, "letgo-safe")]["repairs"] for s in SIZES) > 0
    # efficiency declines with scale for plain C/R
    assert stats[(SIZES[0], "cr")]["eff"] > stats[(SIZES[-1], "cr")]["eff"]
    # comm-safe at least matches naive on average (the protocol hazard)
    safe_mean = np.mean([stats[(s, "letgo-safe")]["eff"] for s in SIZES])
    naive_mean = np.mean([stats[(s, "letgo-naive")]["eff"] for s in SIZES])
    assert safe_mean >= naive_mean - 0.01
