"""Table 3: fault-injection outcome breakdown for the five iterative
benchmarks under LetGo-E, normalised by total injections.

Paper reference (averages over the five iterative apps, 20 000 injections
each): crash rate ~56%; of the crashes ~62% continue; SDC 0.75% -> 1.66%
overall.  Our campaigns are smaller (REPRO_BENCH_N per app) so the check
asserts the *shape*: majority-elided crashes, small SDC share, most
continued runs correct-or-detected.
"""

from repro.apps import app_names
from repro.reporting import ascii_table, pct

from conftest import BENCH_N, write_artifact

PAPER_AVERAGE = {
    "detected": 0.0068,
    "benign": 0.4085,
    "sdc": 0.0075,
    "double_crash": 0.2162,
    "c_detected": 0.0136,
    "c_benign": 0.3402,
    "c_sdc": 0.0091,
}

COLUMNS = [
    "detected",
    "benign",
    "sdc",
    "double_crash",
    "c_detected",
    "c_benign",
    "c_sdc",
]


def build_table(iterative_campaigns):
    rows = []
    sums = {c: 0.0 for c in COLUMNS}
    for name in app_names(iterative_only=True):
        row3 = iterative_campaigns[name]["LetGo-E"].table3_row()
        rows.append([name.upper()] + [pct(row3[c]) for c in COLUMNS])
        for c in COLUMNS:
            sums[c] += row3[c]
    average = {c: sums[c] / 5 for c in COLUMNS}
    rows.append(["AVERAGE"] + [pct(average[c]) for c in COLUMNS])
    rows.append(["paper-avg"] + [pct(PAPER_AVERAGE[c]) for c in COLUMNS])
    text = ascii_table(
        ["Benchmark", "Detected", "Benign", "SDC", "DblCrash",
         "C-Detected", "C-Benign", "C-SDC"],
        rows,
        title=(
            f"Table 3: fault-injection outcomes under LetGo-E "
            f"(n={BENCH_N}/app; fractions of all injections)"
        ),
    )
    return average, text


def test_table3_outcome_breakdown(benchmark, iterative_campaigns):
    average, text = benchmark.pedantic(
        build_table, args=(iterative_campaigns,), rounds=1, iterations=1
    )
    print("\n" + text)
    write_artifact("table3_outcomes.txt", text)

    crash = (
        average["double_crash"]
        + average["c_detected"]
        + average["c_benign"]
        + average["c_sdc"]
    )
    continued = average["c_detected"] + average["c_benign"] + average["c_sdc"]
    # Shape assertions vs. the paper:
    assert 0.15 < crash < 0.85            # a large fraction of faults crash
    assert continued / crash > 0.5        # the majority of crashes elided
    assert average["c_benign"] > average["c_sdc"]  # correct >> silent-wrong
    assert average["sdc"] + average["c_sdc"] < 0.30  # SDCs stay a small share
    # every column is a valid fraction and rows summed to 1 by construction
    assert all(0.0 <= v <= 1.0 for v in average.values())
