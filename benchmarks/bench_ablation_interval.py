"""Ablation (extension): checkpoint-interval sensitivity around Young's
optimum.

Table 4 justifies Young's formula via El-Sayed & Schroeder ("checkpointing
under Young's formula achieves almost identical performance as more
sophisticated schemes").  This bench sweeps interval multipliers for both
machines and verifies the efficiency curve is flat-topped near 1.0x.
"""

from repro.crsim import (
    PAPER_APP_PARAMS,
    SystemParams,
    YEAR,
    sweep_interval_multiplier,
)
from repro.reporting import ascii_table

from conftest import write_artifact

SYSTEM = SystemParams(t_chk=120.0, mtbfaults=21600.0)
NEEDED = 2 * YEAR


def build_sweep():
    points = sweep_interval_multiplier(
        PAPER_APP_PARAMS["lulesh"],
        SYSTEM,
        multipliers=(0.25, 0.5, 1.0, 2.0, 4.0),
        needed=NEEDED,
        seed=3,
    )
    rows = [
        [f"{p.multiplier:.2f}x", f"{p.interval:,.0f}s", f"{p.standard:.4f}",
         f"{p.letgo:.4f}"]
        for p in points
    ]
    text = ascii_table(
        ["Interval", "T (std)", "Standard C/R", "C/R + LetGo"],
        rows,
        title="Interval-sensitivity ablation around Young's optimum (LULESH)",
    )
    return points, text


def test_ablation_youngs_interval(benchmark):
    points, text = benchmark.pedantic(build_sweep, rounds=1, iterations=1)
    print("\n" + text)
    write_artifact("ablation_interval.txt", text)

    by_mult = {p.multiplier: p for p in points}
    for field in ("standard", "letgo"):
        at_young = getattr(by_mult[1.0], field)
        best = max(getattr(p, field) for p in points)
        worst = min(getattr(p, field) for p in points)
        # Young's choice within 2 points of the sampled optimum...
        assert at_young >= best - 0.02, field
        # ...and the sweep actually has curvature (extremes are worse)
        assert best - worst > 0.005, field
