"""Shared benchmark fixtures: cached apps and fault-injection campaigns.

The expensive work (compiling apps, golden profiling, injection campaigns)
happens once per session in fixtures; individual benches aggregate and
assert on the shared results, and time the kernels that are theirs alone.

Campaign size is controlled with the ``REPRO_BENCH_N`` environment
variable (default 150 injections per app per config -- sized for a
single-core run; the paper used 20 000, so expect error bars of a few
percentage points, reported alongside every number).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.apps import app_names, make_app
from repro.core import LETGO_B, LETGO_E
from repro.faultinject import CampaignConfig, run_paired_campaigns

#: Injections per (app, config); see module docstring.
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "150"))
SEED = 20170626  # HPDC'17 opening day

RESULTS_DIR = Path(__file__).parent / "results"


def write_artifact(name: str, text: str) -> Path:
    """Persist a rendered table/figure so the bench log survives capture."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def apps():
    """All six apps, golden-profiled once."""
    out = {}
    for name in app_names():
        app = make_app(name)
        app.golden
        app.functions
        out[name] = app
    return out


@pytest.fixture(scope="session")
def iterative_campaigns(apps):
    """Paired LetGo-B / LetGo-E campaigns for the five iterative apps.

    Runs on the campaign engine with all cores (``jobs=None``); results
    are identical to the serial loop for the same seed.
    """
    results = {}
    for name in app_names(iterative_only=True):
        results[name] = run_paired_campaigns(
            apps[name], BENCH_N, SEED, configs=[LETGO_B, LETGO_E],
            campaign=CampaignConfig(jobs=None)
        )
    return results


@pytest.fixture(scope="session")
def hpl_campaign(apps):
    """LetGo-E campaign on the direct-method app (paper section 8)."""
    return run_paired_campaigns(
        apps["hpl"], BENCH_N, SEED, configs=[LETGO_B, LETGO_E],
        campaign=CampaignConfig(jobs=None)
    )
