"""Section 6.2: LetGo performance overhead.

Two claims to reproduce:

1. Running under the monitor costs ~nothing (<1% in the paper): attaching
   LetGo adds no per-instruction work, only a trap hook.  Measured across
   three LULESH input sizes.
2. The state-repair time is small and *constant in input size* (2-5 s
   wall-clock in the paper's gdb/PIN prototype; microseconds here since
   the repair is in-process -- the shape to check is constancy).
"""

import re
import time

from repro.analysis import FunctionTable
from repro.core import LETGO_E, run_under_letgo
from repro.lang import compile_source
from repro.machine import Process
from repro.reporting import ascii_table

from conftest import write_artifact

from repro.apps.lulesh import _SOURCE as LULESH_SOURCE


def _sized_lulesh(n_zones):
    src = re.sub(r"global int nz = \d+;", f"global int nz = {n_zones};", LULESH_SOURCE)
    src = re.sub(r"global int nn = \d+;", f"global int nn = {n_zones + 1};", src)
    src = re.sub(r"\[(\d+)\]", lambda m: f"[{max(n_zones + 1, 8)}]", src)
    return compile_source(src, f"lulesh-{n_zones}")


def _time_plain(program, budget=10**8):
    process = Process.load(program)
    start = time.perf_counter()
    process.run(budget)
    return time.perf_counter() - start, process.cpu.instret


def _time_monitored(program, functions, budget=10**8):
    process = Process.load(program)
    start = time.perf_counter()
    run_under_letgo(process, LETGO_E, functions, budget)
    return time.perf_counter() - start, process.cpu.instret


def _repair_time(program, functions, corrupt_after):
    from repro.core import Modifier
    from repro.isa.registers import SP
    from repro.machine import DebugSession

    process = Process.load(program)
    process.cpu.run(corrupt_after)
    process.cpu.iregs[SP] ^= 1 << 44  # corrupt the stack pointer -> crash
    session = DebugSession(process)
    event = session.cont(10**7)
    if event.trap is None:
        return None
    record = Modifier(LETGO_E, functions).repair(session, event.trap)
    return record.repair_seconds


def build_report():
    sizes = [9, 17, 33]
    rows = []
    overheads = []
    repair_rows = []
    for n in sizes:
        program = _sized_lulesh(n)
        functions = FunctionTable(program)
        plain_t, plain_i = _time_plain(program)
        mon_t, mon_i = _time_monitored(program, functions)
        assert plain_i == mon_i  # identical executions
        overhead = mon_t / plain_t - 1.0
        overheads.append(overhead)
        rows.append(
            [f"nz={n}", f"{plain_i:,}", f"{plain_t:.3f}s", f"{mon_t:.3f}s",
             f"{100 * overhead:+.1f}%"]
        )
    text = ascii_table(
        ["LULESH size", "dyn instrs", "plain", "under LetGo", "overhead"],
        rows,
        title="Section 6.2a: monitor overhead vs input size",
    )
    return overheads, text


def test_sec62_monitor_overhead(benchmark):
    overheads, text = benchmark.pedantic(build_report, rounds=1, iterations=1)
    print("\n" + text)
    write_artifact("sec62_monitor_overhead.txt", text)
    # paper: <1%; our monitor is in-process, allow measurement noise
    assert all(o < 0.25 for o in overheads)


def test_sec62_repair_time_constant(benchmark):
    sizes = [9, 17, 33]
    times = []
    for n in sizes:
        program = _sized_lulesh(n)
        functions = FunctionTable(program)
        t = _repair_time(program, functions, corrupt_after=500)
        if t is not None:
            times.append(t)
    assert times, "no repair opportunity found"

    # time one repair properly with pytest-benchmark
    program = _sized_lulesh(17)
    functions = FunctionTable(program)

    def one_repair():
        return _repair_time(program, functions, corrupt_after=500)

    measured = benchmark.pedantic(one_repair, rounds=3, iterations=1)
    rows = [[f"nz={n}", f"{t * 1e6:.1f} us"] for n, t in zip(sizes, times)]
    text = ascii_table(
        ["LULESH size", "repair time"],
        rows,
        title="Section 6.2b: state-repair time vs input size (constant)",
    )
    print("\n" + text)
    write_artifact("sec62_repair_time.txt", text)
    # repair must not scale with input size: max/min bounded
    assert max(times) / max(min(times), 1e-9) < 50
    # and must be far below one application run (paper: seconds vs hours)
    assert all(t < 0.05 for t in times)
    del measured
