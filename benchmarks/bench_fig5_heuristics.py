"""Figure 5 (a-d): LetGo-B vs LetGo-E on the four Eq.1-4 metrics.

Paper: LetGo-E improves Continuability by ~14 points on average and
Continued_correct by ~4-5 points, without increasing Continued_SDC on
average.  Campaigns are paired (identical fault populations), so the
comparison is tight even at moderate N.
"""

from repro.apps import app_names
from repro.reporting import ascii_table, pct_ci

from conftest import BENCH_N, write_artifact

METRICS = ["continuability", "continued_detected", "continued_correct", "continued_sdc"]


def build_figure(iterative_campaigns):
    rows = []
    means = {("LetGo-B", m): 0.0 for m in METRICS}
    means.update({("LetGo-E", m): 0.0 for m in METRICS})
    for name in app_names(iterative_only=True):
        for config in ("LetGo-B", "LetGo-E"):
            metrics = iterative_campaigns[name][config].metrics()
            cells = []
            for metric in METRICS:
                value = getattr(metrics, metric)
                cells.append(pct_ci(value.value, value.half_width))
                means[(config, metric)] += value.value / 5
            rows.append([name.upper(), config] + cells)
    for config in ("LetGo-B", "LetGo-E"):
        rows.append(
            [
                "AVERAGE",
                config,
            ]
            + [f"{100 * means[(config, m)]:.2f}%" for m in METRICS]
        )
    text = ascii_table(
        ["Benchmark", "Config", "Continuability", "Cont_detected",
         "Cont_correct", "Cont_SDC"],
        rows,
        title=f"Figure 5: LetGo-B vs LetGo-E (paired campaigns, n={BENCH_N}/app)",
    )
    return means, text


def test_fig5_b_vs_e(benchmark, iterative_campaigns):
    means, text = benchmark.pedantic(
        build_figure, args=(iterative_campaigns,), rounds=1, iterations=1
    )
    print("\n" + text)
    write_artifact("fig5_heuristics.txt", text)

    # Figure-5 shapes: E >= B on continuability and continued_correct
    assert means[("LetGo-E", "continuability")] >= means[("LetGo-B", "continuability")] - 0.02
    assert means[("LetGo-E", "continued_correct")] >= means[("LetGo-B", "continued_correct")] - 0.02
    # and E does not blow up the silent-corruption share
    assert means[("LetGo-E", "continued_sdc")] <= means[("LetGo-B", "continued_sdc")] + 0.10
    # all metrics are probabilities and continuability decomposes
    for config in ("LetGo-B", "LetGo-E"):
        total = (
            means[(config, "continued_detected")]
            + means[(config, "continued_correct")]
            + means[(config, "continued_sdc")]
        )
        assert abs(total - means[(config, "continuability")]) < 1e-9
